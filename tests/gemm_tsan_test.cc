// Thread-safety harness for the parallel GEMM path, built with
// -fsanitize=thread (see tests/CMakeLists.txt). Not a gtest: it links a
// minimal TSan-instrumented subset of the library (gemm, thread pool,
// workspace arena, device state) and hammers the 2-D tile dispatch so
// the sanitizer can observe every cross-thread access pattern —
// concurrent packing into per-thread workspaces, disjoint C-tile
// stores, and pool wakeup/join synchronization.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "tensor/device.h"
#include "tensor/gemm.h"

namespace ts = geotorch::tensor;

namespace {

int failures = 0;

void CheckGemmOnce(int64_t m, int64_t k, int64_t n, float beta, bool trans_a,
                   bool trans_b, uint64_t seed) {
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  for (auto& x : a) x = dist(engine);
  for (auto& x : b) x = dist(engine);
  std::vector<float> c(m * n);
  for (auto& x : c) x = dist(engine);
  std::vector<float> c_ref = c;

  const ts::GemmOptions opts{beta, trans_a, trans_b, true};
  ts::Gemm(a.data(), b.data(), c.data(), m, k, n, opts);
  ts::ReferenceGemm(a.data(), b.data(), c_ref.data(), m, k, n, opts);

  const double tol = 1e-4 * std::sqrt(static_cast<double>(k) + 1.0);
  for (int64_t i = 0; i < m * n; ++i) {
    if (std::abs(static_cast<double>(c[i]) - c_ref[i]) > tol) {
      std::fprintf(stderr,
                   "FAIL m=%lld k=%lld n=%lld beta=%g ta=%d tb=%d i=%lld "
                   "got=%g want=%g\n",
                   static_cast<long long>(m), static_cast<long long>(k),
                   static_cast<long long>(n), beta, trans_a, trans_b,
                   static_cast<long long>(i), c[i], c_ref[i]);
      ++failures;
      return;  // one report per shape is enough
    }
  }
}

}  // namespace

int main() {
  ts::SetDefaultDevice(ts::Device::kParallel);

  // Sizes chosen to exceed kParallelMinWork so the pool actually runs,
  // with edges that straddle MC/NC macro-tile boundaries. Repeated
  // iterations re-use the thread-local workspaces, which is exactly the
  // lifetime TSan needs to see across pool wakeups.
  struct Shape {
    int64_t m, k, n;
  };
  const Shape shapes[] = {
      {192, 128, 512},  // one M split, one N tile
      {97, 300, 1030},  // ragged edges in every dimension
      {256, 64, 256},   // square-ish, multiple tiles both ways
      {1, 4096, 640},   // single-row: N-only parallelism
  };
  uint64_t seed = 42;
  for (int iter = 0; iter < 8; ++iter) {
    for (const Shape& s : shapes) {
      CheckGemmOnce(s.m, s.k, s.n, 0.0f, false, false, seed++);
      CheckGemmOnce(s.m, s.k, s.n, 1.0f, false, false, seed++);
    }
  }
  // Transposed-operand packing reads A/B with strided access; make sure
  // that path is also raced through the pool.
  for (int iter = 0; iter < 4; ++iter) {
    CheckGemmOnce(192, 160, 512, 0.5f, true, false, seed++);
    CheckGemmOnce(192, 160, 512, 0.5f, false, true, seed++);
    CheckGemmOnce(192, 160, 512, 0.5f, true, true, seed++);
  }

  if (failures != 0) {
    std::fprintf(stderr, "gemm_tsan_test: %d shape(s) mismatched\n", failures);
    return EXIT_FAILURE;
  }
  std::printf("gemm_tsan_test: OK\n");
  return EXIT_SUCCESS;
}
