#include "tests/gradcheck.h"

#include <cmath>

namespace geotorch::testing {

double GradCheck(
    const std::function<autograd::Variable(
        const std::vector<autograd::Variable>&)>& fn,
    std::vector<tensor::Tensor> inputs, double eps,
    double* out_max_analytic) {
  // Analytic gradients.
  std::vector<autograd::Variable> vars;
  vars.reserve(inputs.size());
  for (auto& t : inputs) {
    vars.emplace_back(t.Clone(), /*requires_grad=*/true);
  }
  autograd::Variable loss = fn(vars);
  loss.Backward();

  double max_err = 0.0;
  double max_analytic = 0.0;

  auto eval = [&](const std::vector<tensor::Tensor>& ts) -> double {
    autograd::NoGradGuard guard;
    std::vector<autograd::Variable> vs;
    vs.reserve(ts.size());
    for (const auto& t : ts) vs.emplace_back(t.Clone(), false);
    return fn(vs).value().flat(0);
  };

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    const tensor::Tensor& analytic = vars[vi].has_grad()
                                         ? vars[vi].grad()
                                         : tensor::Tensor::Zeros(
                                               inputs[vi].shape());
    for (int64_t j = 0; j < inputs[vi].numel(); ++j) {
      std::vector<tensor::Tensor> plus;
      std::vector<tensor::Tensor> minus;
      for (size_t k = 0; k < inputs.size(); ++k) {
        plus.push_back(inputs[k].Clone());
        minus.push_back(inputs[k].Clone());
      }
      plus[vi].flat(j) += static_cast<float>(eps);
      minus[vi].flat(j) -= static_cast<float>(eps);
      const double numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
      const double a = analytic.flat(j);
      max_err = std::max(max_err, std::fabs(numeric - a));
      max_analytic = std::max(max_analytic, std::fabs(a));
    }
  }
  if (out_max_analytic != nullptr) *out_max_analytic = max_analytic;
  return max_err;
}

}  // namespace geotorch::testing
