#include "spatial/geometry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "spatial/grid.h"
#include "spatial/join.h"
#include "spatial/strtree.h"

namespace geotorch::spatial {
namespace {

TEST(EnvelopeTest, EmptyAndExpand) {
  Envelope e = Envelope::Empty();
  EXPECT_TRUE(e.IsEmpty());
  e.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_TRUE(e.Contains(Point{1, 2}));
  e.ExpandToInclude(Point{-1, 5});
  EXPECT_EQ(e.min_x(), -1);
  EXPECT_EQ(e.max_y(), 5);
  EXPECT_TRUE(e.Contains(Point{0, 3}));
}

TEST(EnvelopeTest, IntersectsAndContains) {
  Envelope a(0, 0, 10, 10);
  Envelope b(5, 5, 15, 15);
  Envelope c(11, 11, 12, 12);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Envelope(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(b));
}

TEST(PolygonTest, ContainsConvex) {
  Polygon square({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(square.Contains(Point{2, 2}));
  EXPECT_FALSE(square.Contains(Point{5, 2}));
  EXPECT_FALSE(square.Contains(Point{-1, -1}));
  EXPECT_NEAR(square.Area(), 16.0, 1e-9);
}

TEST(PolygonTest, ContainsConcave) {
  // L-shape.
  Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(l.Contains(Point{1, 3}));
  EXPECT_TRUE(l.Contains(Point{3, 1}));
  EXPECT_FALSE(l.Contains(Point{3, 3}));  // the notch
  EXPECT_NEAR(l.Area(), 12.0, 1e-9);
}

TEST(GeometryTest, Haversine) {
  // NYC to LA is about 3940 km.
  const double d = HaversineMeters(Point{-74.006, 40.7128},
                                   Point{-118.2437, 34.0522});
  EXPECT_NEAR(d, 3.94e6, 5e4);
  EXPECT_NEAR(HaversineMeters(Point{0, 0}, Point{0, 0}), 0.0, 1e-9);
}

TEST(GridPartitionerTest, CellAssignment) {
  GridPartitioner grid(Envelope(0, 0, 12, 16), 12, 16);
  EXPECT_EQ(grid.NumCells(), 192);
  EXPECT_EQ(*grid.CellOf(Point{0.5, 0.5}), 0);
  EXPECT_EQ(*grid.CellOf(Point{11.5, 0.5}), 11);
  EXPECT_EQ(*grid.CellOf(Point{0.5, 1.5}), 12);
  // Max-edge points clamp into the last cell.
  EXPECT_EQ(*grid.CellOf(Point{12.0, 16.0}), 191);
  EXPECT_FALSE(grid.CellOf(Point{12.1, 0}).has_value());
}

TEST(GridPartitionerTest, CellEnvelopeRoundTrips) {
  GridPartitioner grid(Envelope(-74.05, 40.6, -73.75, 40.9), 12, 16);
  for (int64_t c = 0; c < grid.NumCells(); c += 17) {
    const Envelope env = grid.CellEnvelope(c);
    EXPECT_EQ(*grid.CellOf(env.center()), c);
  }
}

TEST(GridPartitionerTest, Neighbors) {
  GridPartitioner grid(Envelope(0, 0, 4, 4), 4, 4);
  EXPECT_EQ(grid.NeighborCells(0).size(), 3u);   // corner
  EXPECT_EQ(grid.NeighborCells(1).size(), 5u);   // edge
  EXPECT_EQ(grid.NeighborCells(5).size(), 8u);   // interior
}

TEST(StrTreeTest, QueryMatchesBruteForce) {
  Rng rng(42);
  std::vector<StrTree::Entry> entries;
  for (int64_t i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    entries.push_back({Envelope(x, y, x + rng.Uniform(0, 5),
                                y + rng.Uniform(0, 5)),
                       i});
  }
  StrTree tree(entries);
  EXPECT_EQ(tree.size(), 200);

  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    Envelope query(x, y, x + 10, y + 10);
    std::vector<int64_t> got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (const auto& e : entries) {
      if (e.envelope.Intersects(query)) want.push_back(e.id);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(StrTreeTest, EmptyTree) {
  StrTree tree({});
  EXPECT_TRUE(tree.Query(Envelope(0, 0, 1, 1)).empty());
}

TEST(StrTreeTest, SingleEntry) {
  StrTree tree({{Envelope(0, 0, 1, 1), 7}});
  EXPECT_EQ(tree.Query(Envelope(0.5, 0.5, 2, 2)),
            (std::vector<int64_t>{7}));
  EXPECT_TRUE(tree.Query(Envelope(2, 2, 3, 3)).empty());
}

TEST(JoinTest, StrategiesAgreeOnInteriorPoints) {
  Rng rng(3);
  GridPartitioner grid(Envelope(0, 0, 10, 10), 5, 5);
  std::vector<Polygon> cells = grid.CellPolygons();
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) {
    // Interior points (avoid cell boundaries where closed-polygon and
    // half-open-cell semantics legitimately differ).
    const int64_t cell = rng.UniformInt(0, grid.NumCells() - 1);
    const Envelope env = grid.CellEnvelope(cell);
    points.push_back(Point{
        rng.Uniform(env.min_x() + 0.01, env.max_x() - 0.01),
        rng.Uniform(env.min_y() + 0.01, env.max_y() - 0.01)});
  }
  auto nested =
      PointInPolygonJoin(points, cells, JoinStrategy::kNestedLoop);
  auto indexed = PointInPolygonJoin(points, cells, JoinStrategy::kStrTree);
  auto hashed =
      PointInPolygonJoin(points, cells, JoinStrategy::kGridHash, &grid);

  auto normalize = [](std::vector<JoinPair> pairs) {
    std::sort(pairs.begin(), pairs.end(),
              [](const JoinPair& a, const JoinPair& b) {
                return std::tie(a.point_idx, a.polygon_idx) <
                       std::tie(b.point_idx, b.polygon_idx);
              });
    return pairs;
  };
  auto n = normalize(nested);
  auto i = normalize(indexed);
  auto h = normalize(hashed);
  ASSERT_EQ(n.size(), points.size());
  ASSERT_EQ(i.size(), n.size());
  ASSERT_EQ(h.size(), n.size());
  for (size_t k = 0; k < n.size(); ++k) {
    EXPECT_EQ(n[k].polygon_idx, i[k].polygon_idx);
    EXPECT_EQ(n[k].polygon_idx, h[k].polygon_idx);
  }
}

TEST(JoinTest, AssignPointsToCellsHandlesOutside) {
  GridPartitioner grid(Envelope(0, 0, 2, 2), 2, 2);
  std::vector<Point> points = {{0.5, 0.5}, {1.5, 1.5}, {5, 5}};
  auto cells = AssignPointsToCells(points, grid);
  EXPECT_EQ(cells[0], 0);
  EXPECT_EQ(cells[1], 3);
  EXPECT_EQ(cells[2], -1);
}

}  // namespace
}  // namespace geotorch::spatial
