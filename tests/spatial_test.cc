#include "spatial/geometry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "spatial/config.h"
#include "spatial/grid.h"
#include "spatial/join.h"
#include "spatial/strtree.h"

namespace geotorch::spatial {
namespace {

TEST(EnvelopeTest, EmptyAndExpand) {
  Envelope e = Envelope::Empty();
  EXPECT_TRUE(e.IsEmpty());
  e.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_TRUE(e.Contains(Point{1, 2}));
  e.ExpandToInclude(Point{-1, 5});
  EXPECT_EQ(e.min_x(), -1);
  EXPECT_EQ(e.max_y(), 5);
  EXPECT_TRUE(e.Contains(Point{0, 3}));
}

TEST(EnvelopeTest, IntersectsAndContains) {
  Envelope a(0, 0, 10, 10);
  Envelope b(5, 5, 15, 15);
  Envelope c(11, 11, 12, 12);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Envelope(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(b));
}

TEST(PolygonTest, ContainsConvex) {
  Polygon square({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(square.Contains(Point{2, 2}));
  EXPECT_FALSE(square.Contains(Point{5, 2}));
  EXPECT_FALSE(square.Contains(Point{-1, -1}));
  EXPECT_NEAR(square.Area(), 16.0, 1e-9);
}

TEST(PolygonTest, ContainsConcave) {
  // L-shape.
  Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(l.Contains(Point{1, 3}));
  EXPECT_TRUE(l.Contains(Point{3, 1}));
  EXPECT_FALSE(l.Contains(Point{3, 3}));  // the notch
  EXPECT_NEAR(l.Area(), 12.0, 1e-9);
}

TEST(GeometryTest, Haversine) {
  // NYC to LA is about 3940 km.
  const double d = HaversineMeters(Point{-74.006, 40.7128},
                                   Point{-118.2437, 34.0522});
  EXPECT_NEAR(d, 3.94e6, 5e4);
  EXPECT_NEAR(HaversineMeters(Point{0, 0}, Point{0, 0}), 0.0, 1e-9);
}

TEST(GridPartitionerTest, CellAssignment) {
  GridPartitioner grid(Envelope(0, 0, 12, 16), 12, 16);
  EXPECT_EQ(grid.NumCells(), 192);
  EXPECT_EQ(*grid.CellOf(Point{0.5, 0.5}), 0);
  EXPECT_EQ(*grid.CellOf(Point{11.5, 0.5}), 11);
  EXPECT_EQ(*grid.CellOf(Point{0.5, 1.5}), 12);
  // Max-edge points clamp into the last cell.
  EXPECT_EQ(*grid.CellOf(Point{12.0, 16.0}), 191);
  EXPECT_FALSE(grid.CellOf(Point{12.1, 0}).has_value());
}

TEST(GridPartitionerTest, CellEnvelopeRoundTrips) {
  GridPartitioner grid(Envelope(-74.05, 40.6, -73.75, 40.9), 12, 16);
  for (int64_t c = 0; c < grid.NumCells(); c += 17) {
    const Envelope env = grid.CellEnvelope(c);
    EXPECT_EQ(*grid.CellOf(env.center()), c);
  }
}

TEST(GridPartitionerTest, Neighbors) {
  GridPartitioner grid(Envelope(0, 0, 4, 4), 4, 4);
  EXPECT_EQ(grid.NeighborCells(0).size(), 3u);   // corner
  EXPECT_EQ(grid.NeighborCells(1).size(), 5u);   // edge
  EXPECT_EQ(grid.NeighborCells(5).size(), 8u);   // interior
}

TEST(StrTreeTest, QueryMatchesBruteForce) {
  Rng rng(42);
  std::vector<StrTree::Entry> entries;
  for (int64_t i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    entries.push_back({Envelope(x, y, x + rng.Uniform(0, 5),
                                y + rng.Uniform(0, 5)),
                       i});
  }
  StrTree tree(entries);
  EXPECT_EQ(tree.size(), 200);

  for (int q = 0; q < 20; ++q) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    Envelope query(x, y, x + 10, y + 10);
    std::vector<int64_t> got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (const auto& e : entries) {
      if (e.envelope.Intersects(query)) want.push_back(e.id);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(StrTreeTest, EmptyTree) {
  StrTree tree({});
  EXPECT_TRUE(tree.Query(Envelope(0, 0, 1, 1)).empty());
}

TEST(StrTreeTest, SingleEntry) {
  StrTree tree({{Envelope(0, 0, 1, 1), 7}});
  EXPECT_EQ(tree.Query(Envelope(0.5, 0.5, 2, 2)),
            (std::vector<int64_t>{7}));
  EXPECT_TRUE(tree.Query(Envelope(2, 2, 3, 3)).empty());
}

TEST(JoinTest, StrategiesAgreeOnInteriorPoints) {
  Rng rng(3);
  GridPartitioner grid(Envelope(0, 0, 10, 10), 5, 5);
  std::vector<Polygon> cells = grid.CellPolygons();
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) {
    // Interior points (avoid cell boundaries where closed-polygon and
    // half-open-cell semantics legitimately differ).
    const int64_t cell = rng.UniformInt(0, grid.NumCells() - 1);
    const Envelope env = grid.CellEnvelope(cell);
    points.push_back(Point{
        rng.Uniform(env.min_x() + 0.01, env.max_x() - 0.01),
        rng.Uniform(env.min_y() + 0.01, env.max_y() - 0.01)});
  }
  auto nested =
      PointInPolygonJoin(points, cells, JoinStrategy::kNestedLoop);
  auto indexed = PointInPolygonJoin(points, cells, JoinStrategy::kStrTree);
  auto hashed =
      PointInPolygonJoin(points, cells, JoinStrategy::kGridHash, &grid);

  auto normalize = [](std::vector<JoinPair> pairs) {
    std::sort(pairs.begin(), pairs.end(),
              [](const JoinPair& a, const JoinPair& b) {
                return std::tie(a.point_idx, a.polygon_idx) <
                       std::tie(b.point_idx, b.polygon_idx);
              });
    return pairs;
  };
  auto n = normalize(nested);
  auto i = normalize(indexed);
  auto h = normalize(hashed);
  ASSERT_EQ(n.size(), points.size());
  ASSERT_EQ(i.size(), n.size());
  ASSERT_EQ(h.size(), n.size());
  for (size_t k = 0; k < n.size(); ++k) {
    EXPECT_EQ(n[k].polygon_idx, i[k].polygon_idx);
    EXPECT_EQ(n[k].polygon_idx, h[k].polygon_idx);
  }
}

TEST(JoinTest, AssignPointsToCellsHandlesOutside) {
  GridPartitioner grid(Envelope(0, 0, 2, 2), 2, 2);
  std::vector<Point> points = {{0.5, 0.5}, {1.5, 1.5}, {5, 5}};
  auto cells = AssignPointsToCells(points, grid);
  EXPECT_EQ(cells[0], 0);
  EXPECT_EQ(cells[1], 3);
  EXPECT_EQ(cells[2], -1);
}

std::vector<StrTree::Entry> RandomEntries(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<StrTree::Entry> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    entries.push_back({Envelope(x, y, x + rng.Uniform(0, 4),
                                y + rng.Uniform(0, 4)),
                       i});
  }
  return entries;
}

TEST(StrTreeTest, ParallelBuildIdenticalToSerial) {
  ThreadPool pool(4);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{9}, int64_t{100},
                    int64_t{5000}, int64_t{20000}}) {
    for (int cap : {2, 10}) {
      auto entries = RandomEntries(n, static_cast<uint64_t>(n + cap));
      StrTree serial(entries, cap, StrTree::BuildOptions{false, nullptr});
      StrTree parallel(entries, cap, StrTree::BuildOptions{true, &pool});
      EXPECT_TRUE(serial.IdenticalTo(parallel))
          << "n=" << n << " cap=" << cap;
      EXPECT_TRUE(parallel.IdenticalTo(serial));
    }
  }
}

TEST(StrTreeTest, ParallelBuildQueriesMatchBruteForce) {
  ThreadPool pool(3);
  auto entries = RandomEntries(3000, 11);
  StrTree tree(entries, 10, StrTree::BuildOptions{true, &pool});
  Rng rng(5);
  for (int q = 0; q < 25; ++q) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    Envelope query(x, y, x + 7, y + 7);
    auto got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (const auto& e : entries) {
      if (e.envelope.Intersects(query)) want.push_back(e.id);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(StrTreeTest, IdenticalToDetectsDifferences) {
  auto entries = RandomEntries(300, 3);
  StrTree a(entries, 10);
  StrTree b(entries, 4);                    // different capacity
  StrTree c(RandomEntries(300, 4), 10);     // different entries
  EXPECT_FALSE(a.IdenticalTo(b));
  EXPECT_FALSE(a.IdenticalTo(c));
  EXPECT_TRUE(a.IdenticalTo(a));
}

TEST(JoinTest, AutoStrategyPicksGridWhenAvailable) {
  Rng rng(8);
  GridPartitioner grid(Envelope(0, 0, 10, 10), 4, 4);
  std::vector<Polygon> cells = grid.CellPolygons();
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Uniform(0.01, 9.99), rng.Uniform(0.01, 9.99)});
  }
  JoinOptions auto_opts;  // kAuto
  auto with_grid = PointInPolygonJoin(points, cells, auto_opts, &grid);
  auto explicit_grid =
      PointInPolygonJoin(points, cells, JoinStrategy::kGridHash, &grid);
  EXPECT_EQ(with_grid, explicit_grid);
  auto without_grid = PointInPolygonJoin(points, cells, auto_opts, nullptr);
  auto explicit_tree =
      PointInPolygonJoin(points, cells, JoinStrategy::kStrTree);
  EXPECT_EQ(without_grid, explicit_tree);
}

TEST(JoinTest, ParallelAssignMatchesSerial) {
  Rng rng(13);
  GridPartitioner grid(Envelope(0, 0, 50, 50), 10, 10);
  std::vector<Point> points;
  for (int i = 0; i < 20000; ++i) {
    // Include points outside the extent.
    points.push_back({rng.Uniform(-5, 55), rng.Uniform(-5, 55)});
  }
  ThreadPool pool(4);
  auto serial = AssignPointsToCells(points, grid, /*parallel=*/false);
  auto parallel = AssignPointsToCells(points, grid, /*parallel=*/true, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(JoinTest, DistanceJoinParallelMatchesSerial) {
  Rng rng(21);
  std::vector<Point> left;
  std::vector<Point> right;
  for (int i = 0; i < 800; ++i) {
    left.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
    right.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
  }
  ThreadPool pool(3);
  JoinOptions serial_opts;
  serial_opts.parallel = false;
  JoinOptions par_opts;
  par_opts.parallel = true;
  par_opts.pool = &pool;
  auto serial = DistanceJoin(left, right, 0.8, serial_opts);
  auto parallel = DistanceJoin(left, right, 0.8, par_opts);
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(ConfigTest, ParallelKillSwitchForcesSerialExecution) {
  // With the switch off, parallel options fall back to the serial path
  // and must produce the same result.
  Rng rng(30);
  GridPartitioner grid(Envelope(0, 0, 10, 10), 5, 5);
  std::vector<Polygon> cells = grid.CellPolygons();
  std::vector<Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({rng.Uniform(0.01, 9.99), rng.Uniform(0.01, 9.99)});
  }
  ThreadPool pool(4);
  JoinOptions opts;
  opts.strategy = JoinStrategy::kStrTree;
  opts.parallel = true;
  opts.pool = &pool;
  auto with_parallel = PointInPolygonJoin(points, cells, opts);
  const bool was_enabled = ParallelSpatialEnabled();
  SetParallelSpatialEnabled(false);
  auto with_kill_switch = PointInPolygonJoin(points, cells, opts);
  SetParallelSpatialEnabled(was_enabled);
  EXPECT_EQ(with_parallel, with_kill_switch);
}

}  // namespace
}  // namespace geotorch::spatial
