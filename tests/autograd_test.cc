#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "tensor/device.h"
#include "tensor/ops.h"
#include "tests/gradcheck.h"

namespace geotorch::autograd {
namespace {

namespace ts = ::geotorch::tensor;
using ::geotorch::testing::GradCheck;

constexpr double kTol = 2e-2;  // float32 kernels + fd eps 1e-3

TEST(VariableTest, LeafBasics) {
  Variable v(ts::Tensor::Ones({2, 2}), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.numel(), 4);
}

TEST(VariableTest, BackwardThroughAdd) {
  Variable a(ts::Tensor::FromVector({2}, {1, 2}), true);
  Variable b(ts::Tensor::FromVector({2}, {3, 4}), true);
  Variable loss = SumAll(Add(a, b));
  loss.Backward();
  EXPECT_TRUE(ts::AllClose(a.grad(), ts::Tensor::Ones({2})));
  EXPECT_TRUE(ts::AllClose(b.grad(), ts::Tensor::Ones({2})));
}

TEST(VariableTest, GradAccumulatesOnReuse) {
  Variable a(ts::Tensor::Ones({2}), true);
  Variable loss = SumAll(Add(a, a));  // d/da = 2
  loss.Backward();
  EXPECT_TRUE(ts::AllClose(a.grad(), ts::Tensor::Full({2}, 2.0f)));
}

TEST(VariableTest, NoGradGuardDetaches) {
  Variable a(ts::Tensor::Ones({2}), true);
  NoGradGuard guard;
  Variable y = MulScalar(a, 3.0f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(VariableTest, DiamondGraphGradient) {
  // loss = sum(a*a + a) — a reused along two paths.
  Variable a(ts::Tensor::FromVector({2}, {2, 3}), true);
  Variable loss = SumAll(Add(Mul(a, a), a));
  loss.Backward();
  EXPECT_TRUE(
      ts::AllClose(a.grad(), ts::Tensor::FromVector({2}, {5, 7})));
}

TEST(GradCheckTest, ElementwiseOps) {
  Rng rng(1);
  ts::Tensor a = ts::Tensor::Rand({2, 3}, rng, 0.5f, 2.0f);
  ts::Tensor b = ts::Tensor::Rand({2, 3}, rng, 0.5f, 2.0f);

  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Mul(v[0], v[1])); },
                      {a, b}),
            kTol);
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Div(v[0], v[1])); },
                      {a, b}),
            kTol);
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Exp(v[0])); }, {a}),
            kTol);
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Log(v[0])); }, {a}),
            kTol);
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Sqrt(v[0])); }, {a}),
            kTol);
  EXPECT_LT(
      GradCheck([](const auto& v) { return SumAll(Sigmoid(v[0])); }, {a}),
      kTol);
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Tanh(v[0])); }, {a}),
            kTol);
  EXPECT_LT(
      GradCheck([](const auto& v) { return SumAll(PowScalar(v[0], 1.7f)); },
                {a}),
      kTol);
}

TEST(GradCheckTest, BroadcastOps) {
  Rng rng(2);
  ts::Tensor a = ts::Tensor::Rand({2, 3}, rng, 0.5f, 2.0f);
  ts::Tensor row = ts::Tensor::Rand({3}, rng, 0.5f, 2.0f);
  ts::Tensor chan = ts::Tensor::Rand({1, 3, 1, 1}, rng, 0.5f, 2.0f);
  ts::Tensor x = ts::Tensor::Rand({2, 3, 2, 2}, rng, 0.5f, 2.0f);

  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Add(v[0], v[1])); },
                      {a, row}),
            kTol);
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Mul(v[0], v[1])); },
                      {a, row}),
            kTol);
  // The batch-norm pattern.
  EXPECT_LT(GradCheck([](const auto& v) { return SumAll(Mul(v[0], v[1])); },
                      {x, chan}),
            kTol);
}

TEST(GradCheckTest, MatMul) {
  Rng rng(3);
  ts::Tensor a = ts::Tensor::Randn({3, 4}, rng);
  ts::Tensor b = ts::Tensor::Randn({4, 2}, rng);
  EXPECT_LT(
      GradCheck([](const auto& v) { return SumAll(MatMul(v[0], v[1])); },
                {a, b}),
      kTol);
}

TEST(GradCheckTest, ReshapePermuteSliceConcat) {
  Rng rng(4);
  ts::Tensor a = ts::Tensor::Randn({2, 6}, rng);
  ts::Tensor b = ts::Tensor::Randn({2, 3}, rng);

  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable r = Reshape(v[0], {3, 4});
                  return SumAll(Mul(r, r));
                },
                {a}),
            kTol);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable p = Permute(v[0], {1, 0});
                  return SumAll(Mul(p, p));
                },
                {a}),
            kTol);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable s = Slice(v[0], 1, 1, 4);
                  return SumAll(Mul(s, s));
                },
                {a}),
            kTol);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable c = Concat({v[0], v[1]}, 1);
                  return SumAll(Mul(c, c));
                },
                {a, b}),
            kTol);
}

TEST(GradCheckTest, Reductions) {
  Rng rng(5);
  ts::Tensor a = ts::Tensor::Randn({3, 4}, rng);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable s = Sum(v[0], 0, false);
                  return SumAll(Mul(s, s));
                },
                {a}),
            kTol);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable m = Mean(v[0], 1, true);
                  return SumAll(Mul(m, m));
                },
                {a}),
            kTol);
  EXPECT_LT(
      GradCheck([](const auto& v) { return MeanAll(Mul(v[0], v[0])); }, {a}),
      kTol);
}

TEST(GradCheckTest, Conv2d) {
  Rng rng(6);
  ts::Tensor x = ts::Tensor::Randn({2, 2, 5, 5}, rng);
  ts::Tensor w = ts::Tensor::Randn({3, 2, 3, 3}, rng, 0.0f, 0.5f);
  ts::Tensor b = ts::Tensor::Randn({3}, rng);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  EXPECT_LT(GradCheck(
                [&spec](const auto& v) {
                  Variable y = Conv2d(v[0], v[1], v[2], spec);
                  return MeanAll(Mul(y, y));
                },
                {x, w, b}),
            kTol);
}

TEST(GradCheckTest, Conv2dStride2) {
  Rng rng(7);
  ts::Tensor x = ts::Tensor::Randn({1, 2, 6, 6}, rng);
  ts::Tensor w = ts::Tensor::Randn({2, 2, 3, 3}, rng, 0.0f, 0.5f);
  ts::ConvSpec spec{.stride = 2, .padding = 1};
  EXPECT_LT(GradCheck(
                [&spec](const auto& v) {
                  Variable y = Conv2d(v[0], v[1], Variable(), spec);
                  return SumAll(Mul(y, y));
                },
                {x, w}),
            kTol);
}

TEST(GradCheckTest, ConvTranspose2d) {
  Rng rng(8);
  ts::Tensor x = ts::Tensor::Randn({1, 3, 4, 4}, rng);
  ts::Tensor w = ts::Tensor::Randn({3, 2, 2, 2}, rng, 0.0f, 0.5f);
  ts::Tensor b = ts::Tensor::Randn({2}, rng);
  ts::ConvSpec spec{.stride = 2, .padding = 0};
  EXPECT_LT(GradCheck(
                [&spec](const auto& v) {
                  Variable y = ConvTranspose2d(v[0], v[1], v[2], spec);
                  return SumAll(Mul(y, y));
                },
                {x, w, b}),
            kTol);
}

TEST(GradCheckTest, Conv2dStride2PaddedParallelDevice) {
  // Same strided/padded geometry as Conv2dStride2 but on the parallel
  // backend, with bias: covers the pool-dispatched sample loop, the
  // beta=1 weight-gradient accumulation, and the transposed-operand
  // GEMM paths in Conv2dBackward.
  ts::DeviceGuard guard(ts::Device::kParallel);
  Rng rng(21);
  ts::Tensor x = ts::Tensor::Randn({2, 3, 6, 6}, rng);
  ts::Tensor w = ts::Tensor::Randn({4, 3, 3, 3}, rng, 0.0f, 0.5f);
  ts::Tensor b = ts::Tensor::Randn({4}, rng);
  ts::ConvSpec spec{.stride = 2, .padding = 1};
  EXPECT_LT(GradCheck(
                [&spec](const auto& v) {
                  Variable y = Conv2d(v[0], v[1], v[2], spec);
                  return MeanAll(Mul(y, y));
                },
                {x, w, b}),
            kTol);
}

TEST(GradCheckTest, ConvTranspose2dStride2PaddedParallelDevice) {
  ts::DeviceGuard guard(ts::Device::kParallel);
  Rng rng(22);
  ts::Tensor x = ts::Tensor::Randn({2, 3, 4, 4}, rng);
  ts::Tensor w = ts::Tensor::Randn({3, 2, 3, 3}, rng, 0.0f, 0.5f);
  ts::Tensor b = ts::Tensor::Randn({2}, rng);
  ts::ConvSpec spec{.stride = 2, .padding = 1};
  EXPECT_LT(GradCheck(
                [&spec](const auto& v) {
                  Variable y = ConvTranspose2d(v[0], v[1], v[2], spec);
                  return MeanAll(Mul(y, y));
                },
                {x, w, b}),
            kTol);
}

TEST(GradCheckTest, MaxPoolAndUpsample) {
  Rng rng(9);
  ts::Tensor x = ts::Tensor::Randn({1, 2, 4, 4}, rng);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable y = MaxPool2d(v[0], 2);
                  return SumAll(Mul(y, y));
                },
                {x}),
            kTol);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  Variable y = UpsampleNearest2x(v[0]);
                  return SumAll(Mul(y, y));
                },
                {x}),
            kTol);
}

TEST(GradCheckTest, Losses) {
  Rng rng(10);
  ts::Tensor pred = ts::Tensor::Randn({4, 3}, rng);
  ts::Tensor target = ts::Tensor::Randn({4, 3}, rng);
  EXPECT_LT(GradCheck(
                [&target](const auto& v) { return MseLoss(v[0], target); },
                {pred}),
            kTol);

  ts::Tensor labels = ts::Tensor::FromVector({4}, {0, 2, 1, 2});
  EXPECT_LT(GradCheck([&labels](const auto& v) {
              return CrossEntropyLoss(v[0], labels);
            },
                      {pred}),
            kTol);

  ts::Tensor bin = ts::Tensor::FromVector({4}, {0, 1, 1, 0});
  ts::Tensor z = ts::Tensor::Randn({4}, rng);
  EXPECT_LT(GradCheck(
                [&bin](const auto& v) { return BceWithLogitsLoss(v[0], bin); },
                {z}),
            kTol);
}

TEST(GradCheckTest, SpatialCrossEntropy) {
  Rng rng(11);
  ts::Tensor logits = ts::Tensor::Randn({2, 3, 2, 2}, rng);
  ts::Tensor labels = ts::Tensor::FromVector({2, 2, 2}, {0, 1, 2, 0, 1, 1, 2, 0});
  EXPECT_LT(GradCheck([&labels](const auto& v) {
              return CrossEntropyLoss(v[0], labels);
            },
                      {logits}),
            kTol);
}

TEST(LossTest, CrossEntropyValue) {
  // Uniform logits over 4 classes -> loss = log(4).
  ts::Tensor logits = ts::Tensor::Zeros({2, 4});
  ts::Tensor labels = ts::Tensor::FromVector({2}, {1, 3});
  Variable loss = CrossEntropyLoss(Variable(logits, true), labels);
  EXPECT_NEAR(loss.value().flat(0), std::log(4.0f), 1e-5);
}

TEST(DropoutTest, EvalIsIdentityTrainingScales) {
  Rng rng(12);
  Variable x(ts::Tensor::Ones({1000}), true);
  Variable eval_out = Dropout(x, 0.4f, /*training=*/false, rng);
  EXPECT_TRUE(ts::AllClose(eval_out.value(), x.value()));

  Variable train_out = Dropout(x, 0.4f, /*training=*/true, rng);
  // Kept entries are scaled by 1/(1-p); mean stays ~1.
  EXPECT_NEAR(ts::MeanAll(train_out.value()), 1.0f, 0.1f);
}

}  // namespace
}  // namespace geotorch::autograd
