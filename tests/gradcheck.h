#ifndef GEOTORCH_TESTS_GRADCHECK_H_
#define GEOTORCH_TESTS_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace geotorch::testing {

/// Finite-difference gradient check: builds fresh leaf variables from
/// `inputs`, evaluates `fn` (which must return a scalar Variable), runs
/// Backward, and compares each analytic gradient against central
/// differences. Returns the maximum absolute mismatch.
///
/// fn is re-invoked for every perturbed input, so it must be pure.
double GradCheck(
    const std::function<autograd::Variable(
        const std::vector<autograd::Variable>&)>& fn,
    std::vector<tensor::Tensor> inputs, double eps = 1e-3,
    double* out_max_analytic = nullptr);

}  // namespace geotorch::testing

#endif  // GEOTORCH_TESTS_GRADCHECK_H_
