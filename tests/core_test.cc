#include "core/status.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "core/env.h"
#include "core/memory.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "core/thread_pool.h"

namespace geotorch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "NotImplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, DeadlineExceededFactory) {
  Status s = Status::DeadlineExceeded("took too long");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: took too long");
}

// --- Shared GEOTORCH_* env parsing (core/env.h) -----------------------------

struct ScopedEnv {
  explicit ScopedEnv(const char* name) : name_(name) { unsetenv(name_); }
  ~ScopedEnv() { unsetenv(name_); }
  void Set(const char* value) { setenv(name_, value, 1); }
  const char* name_;
};

TEST(EnvTest, IntFallsBackWhenUnsetEmptyOrUnparsable) {
  ScopedEnv var("GEOTORCH_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("GEOTORCH_TEST_ENV_INT", 7, 0), 7);
  var.Set("");
  EXPECT_EQ(EnvInt("GEOTORCH_TEST_ENV_INT", 7, 0), 7);
  var.Set("banana");
  EXPECT_EQ(EnvInt("GEOTORCH_TEST_ENV_INT", 7, 0), 7);
}

TEST(EnvTest, IntParsesAndClampsIntoRange) {
  ScopedEnv var("GEOTORCH_TEST_ENV_INT");
  var.Set("42");
  EXPECT_EQ(EnvInt("GEOTORCH_TEST_ENV_INT", 7, 0), 42);
  var.Set("-5");
  EXPECT_EQ(EnvInt("GEOTORCH_TEST_ENV_INT", 7, 1), 1);  // clamped up
  var.Set("1000");
  EXPECT_EQ(EnvInt("GEOTORCH_TEST_ENV_INT", 7, 0, 100), 100);  // down
}

TEST(EnvTest, Int64HandlesValuesBeyondIntRange) {
  ScopedEnv var("GEOTORCH_TEST_ENV_INT64");
  var.Set("8589934592");  // 8 GiB in bytes: > INT32_MAX
  EXPECT_EQ(EnvInt64("GEOTORCH_TEST_ENV_INT64", 0, 0), 8589934592LL);
}

TEST(EnvTest, BoolFollowsKillSwitchConvention) {
  ScopedEnv var("GEOTORCH_TEST_ENV_BOOL");
  EXPECT_TRUE(EnvBool("GEOTORCH_TEST_ENV_BOOL", true));
  EXPECT_FALSE(EnvBool("GEOTORCH_TEST_ENV_BOOL", false));
  for (const char* off : {"0", "off", "false"}) {
    var.Set(off);
    EXPECT_FALSE(EnvBool("GEOTORCH_TEST_ENV_BOOL", true)) << off;
  }
  for (const char* on : {"1", "on", "yes", "anything"}) {
    var.Set(on);
    EXPECT_TRUE(EnvBool("GEOTORCH_TEST_ENV_BOOL", false)) << on;
  }
}

TEST(EnvTest, StringFallsBackWhenUnsetOrEmpty) {
  ScopedEnv var("GEOTORCH_TEST_ENV_STR");
  EXPECT_EQ(EnvString("GEOTORCH_TEST_ENV_STR", "dflt"), "dflt");
  var.Set("");
  EXPECT_EQ(EnvString("GEOTORCH_TEST_ENV_STR", "dflt"), "dflt");
  var.Set("/tmp/spill");
  EXPECT_EQ(EnvString("GEOTORCH_TEST_ENV_STR", "dflt"), "/tmp/spill");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Chained(int x) {
  GEO_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Chained(5), 11);
  EXPECT_FALSE(Chained(-5).ok());
}

TEST(ThreadPoolTest, SubmitRuns) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f1 = pool.Submit([&] { counter += 1; });
  auto f2 = pool.Submit([&] { counter += 2; });
  f1.get();
  f2.get();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int64_t i) { hits[i] += 1; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool& pool = ThreadPool::Global();
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](int64_t) {
    pool.ParallelFor(4, [&](int64_t) { count += 1; });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](int64_t) { FAIL(); });
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1);
  }
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker tracker;
  tracker.Allocate(100);
  tracker.Allocate(50);
  tracker.Release(100);
  tracker.Allocate(10);
  EXPECT_EQ(tracker.current_bytes(), 60);
  EXPECT_EQ(tracker.peak_bytes(), 150);
  tracker.Reset();
  EXPECT_EQ(tracker.peak_bytes(), 0);
}

TEST(MemoryTest, RssIsPositive) { EXPECT_GT(CurrentRssBytes(), 0); }

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1000.0 * 0.99);
}

}  // namespace
}  // namespace geotorch
