// ThreadSanitizer stress for the fused eval path's shared caches
// (DESIGN.md §13). The serving fleet's model of the world: N client
// threads forward concurrently on one LIVE model — racing to lazily
// build the mutex-guarded BatchNorm eval cache and the Conv2d folded
// weight snapshot on first touch, then sharing them read-only — while a
// reload thread mutates a separate OFFLINE model (LoadNamedParameter,
// SetPrecision) and the clients atomically switch over. Mutation never
// touches a model with in-flight forwards; TSan verifies that the
// cache builds, the version checks, and the swap handshake are clean.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"
#include "nn/layers.h"
#include "tensor/device.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace nn = ::geotorch::nn;
namespace ts = ::geotorch::tensor;

ts::Tensor RandomTensor(std::initializer_list<int64_t> shape, uint64_t seed) {
  ts::Tensor t = ts::Tensor::Uninitialized(shape);
  geotorch::Rng rng(seed);
  for (int64_t i = 0; i < t.numel(); ++i)
    t.flat(i) = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return t;
}

struct Replica {
  explicit Replica(uint64_t seed) {
    geotorch::Rng rng(seed);
    seq.Add(std::make_unique<nn::Conv2d>(3, 8, 3, rng, 1, 1));
    seq.Add(std::make_unique<nn::BatchNorm2d>(8));
    seq.Add(std::make_unique<nn::ReluLayer>());
    seq.Add(std::make_unique<nn::Conv2d>(8, 4, 1, rng));
    seq.SetTraining(true);
    ag::Variable warm(RandomTensor({2, 3, 8, 8}, seed + 1));
    (void)seq.Forward(warm);  // move the BN running stats off init
    seq.SetTraining(false);
  }
  nn::Sequential seq;
  // Quiescence latch: clients hold it shared for the duration of a
  // forward; the reloader takes it exclusive before mutating, which is
  // exactly the "no in-flight forwards during mutation" contract. On
  // the published replica the exclusive acquisition only ever happens
  // after the pointer swap has steered new requests away.
  std::shared_mutex gate;
};

}  // namespace

int main() {
  ts::SetFusionEnabled(true);
  ts::SetDefaultDevice(ts::Device::kSerial);

  auto live = std::make_unique<Replica>(11);
  auto offline = std::make_unique<Replica>(12);

  // The published model pointer: clients load it per request, the
  // reloader stores it after finishing offline mutation. Both replicas
  // outlive every thread, so a plain atomic pointer is the whole
  // copy-on-swap contract in miniature.
  std::atomic<Replica*> published(live.get());
  std::atomic<bool> stop(false);
  std::atomic<int64_t> forwards(0);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      ag::NoGradGuard no_grad;
      const ts::Tensor x = RandomTensor({1, 3, 8, 8}, 100 + t);
      while (!stop.load(std::memory_order_acquire)) {
        Replica* model = published.load();
        std::shared_lock<std::shared_mutex> in_flight(model->gate);
        ag::Variable y = model->seq.Forward(ag::Variable(x));
        if (y.value().numel() <= 0) std::abort();
        forwards.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Reloader: mutate whichever replica is NOT published, then swap.
  std::thread reloader([&] {
    Replica* a = live.get();
    Replica* b = offline.get();
    for (int round = 0; round < 20; ++round) {
      Replica* off = (published.load() == a) ? b : a;
      {
        // Drain stragglers that grabbed the pointer before the last
        // swap, then mutate with the replica provably offline.
        std::unique_lock<std::shared_mutex> quiesce(off->gate);
        const ts::Tensor neww = RandomTensor({8, 3, 3, 3}, 200 + round);
        if (!off->seq.LoadNamedParameter("layer0.weight", neww).ok())
          std::abort();
        // Exercise the precision flip path on the offline copy too: it
        // bumps the state version and forces a folded-cache rebuild
        // with requantization on the next fused forward.
        off->seq.SetPrecision(round % 2 == 0 ? nn::Precision::kBf16
                                             : nn::Precision::kF32);
      }
      published.store(off);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });

  reloader.join();
  for (auto& c : clients) c.join();

  if (forwards.load() <= 0) return 1;
  std::printf("fusion_tsan_test: %lld fused forwards across %d swaps OK\n",
              static_cast<long long>(forwards.load()), 20);
  return 0;
}
