#include "raster/raster.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "raster/glcm.h"
#include "raster/io.h"
#include "raster/ops.h"
#include "tensor/ops.h"

namespace geotorch::raster {
namespace {

RasterImage SampleImage() {
  RasterImage img(4, 4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      img.at(0, i, j) = static_cast<float>(i * 4 + j);       // 0..15
      img.at(1, i, j) = static_cast<float>(16 - (i * 4 + j));  // 16..1
    }
  }
  return img;
}

TEST(RasterImageTest, AccessorsAndLayout) {
  RasterImage img = SampleImage();
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.bands(), 2);
  EXPECT_EQ(img.at(0, 1, 2), 6.0f);
  EXPECT_EQ(img.band_data(1)[0], 16.0f);
}

TEST(RasterImageTest, TensorRoundTrip) {
  RasterImage img = SampleImage();
  tensor::Tensor t = img.ToTensor();
  EXPECT_EQ(t.shape(), (tensor::Shape{2, 4, 4}));
  RasterImage back = RasterImage::FromTensor(t);
  EXPECT_EQ(back.at(0, 3, 3), img.at(0, 3, 3));
  EXPECT_EQ(back.at(1, 0, 0), img.at(1, 0, 0));
}

TEST(RasterIoTest, GtifRoundTripPreservesMetadata) {
  RasterImage img = SampleImage();
  img.set_crs_epsg(3857);
  img.set_geotransform({-74.05, 0.025, 0.0, 40.9, 0.0, -0.019});
  const std::string path = testing::TempDir() + "/img.gtif";
  ASSERT_TRUE(WriteGeotiffImage(img, path).ok());
  auto loaded = LoadGeotiffImage(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->crs_epsg(), 3857);
  EXPECT_EQ(loaded->geotransform()[1], 0.025);
  EXPECT_EQ(loaded->at(0, 2, 2), img.at(0, 2, 2));
}

TEST(RasterIoTest, RejectsGarbage) {
  const std::string path = testing::TempDir() + "/garbage.gtif";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a raster", f);
  fclose(f);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
}

// Writes a GTIF1 file with an arbitrary (possibly hostile) header and
// `payload_floats` floats of payload.
void WriteRawGtif(const std::string& path, const char* magic, int64_t h,
                  int64_t w, int64_t b, int64_t payload_floats) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(magic, 1, 5, f);
  fwrite(&h, sizeof(h), 1, f);
  fwrite(&w, sizeof(w), 1, f);
  fwrite(&b, sizeof(b), 1, f);
  const int32_t epsg = 4326;
  fwrite(&epsg, sizeof(epsg), 1, f);
  const double gt[6] = {0, 1, 0, 0, 0, 1};
  fwrite(gt, sizeof(double), 6, f);
  const std::vector<float> payload(payload_floats, 1.0f);
  fwrite(payload.data(), sizeof(float), payload.size(), f);
  fclose(f);
}

TEST(RasterIoTest, RejectsBadMagic) {
  const std::string path = testing::TempDir() + "/bad_magic.gtif";
  WriteRawGtif(path, "GTIF9", 2, 2, 1, 4);
  auto loaded = LoadGeotiffImage(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(RasterIoTest, RejectsTruncatedHeader) {
  const std::string path = testing::TempDir() + "/short_header.gtif";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite("GTIF1", 1, 5, f);
  const int64_t h = 4;
  fwrite(&h, sizeof(h), 1, f);  // header stops mid-way
  fclose(f);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
}

TEST(RasterIoTest, RejectsTruncatedPayload) {
  // Header promises 4x4x2 = 32 floats; the file carries only 5. The
  // loader must notice before reading, not return a half-filled image.
  const std::string path = testing::TempDir() + "/short_payload.gtif";
  WriteRawGtif(path, "GTIF1", 4, 4, 2, 5);
  auto loaded = LoadGeotiffImage(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(RasterIoTest, RejectsAbsurdDims) {
  const std::string path = testing::TempDir() + "/absurd.gtif";
  // Non-positive dims.
  WriteRawGtif(path, "GTIF1", 0, 4, 1, 0);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
  WriteRawGtif(path, "GTIF1", 4, -1, 1, 0);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
  // A single huge side / band count: must be rejected without
  // attempting the (terabyte-scale) allocation the header implies.
  WriteRawGtif(path, "GTIF1", int64_t{1} << 21, 4, 1, 0);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
  WriteRawGtif(path, "GTIF1", 4, 4, int64_t{1} << 15, 0);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
  // Dims whose product overflows int64: each factor passes a naive
  // positivity check, and (2^40)^3 wraps around to something small.
  WriteRawGtif(path, "GTIF1", int64_t{1} << 40, int64_t{1} << 40,
               int64_t{1} << 40, 0);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
  // Element count just over the cap with in-range sides.
  WriteRawGtif(path, "GTIF1", int64_t{1} << 20, int64_t{1} << 20, 4, 0);
  EXPECT_FALSE(LoadGeotiffImage(path).ok());
}

TEST(RasterIoTest, TrailingBytesAreTolerated) {
  // A payload longer than promised is not an error — only shorter is.
  const std::string path = testing::TempDir() + "/padded.gtif";
  WriteRawGtif(path, "GTIF1", 2, 2, 1, 4 + 3);
  auto loaded = LoadGeotiffImage(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->height(), 2);
  EXPECT_EQ(loaded->at(0, 1, 1), 1.0f);
}

TEST(RasterOpsTest, NormalizedDifferenceIndex) {
  RasterImage img(1, 2, 2);
  img.at(0, 0, 0) = 3.0f;
  img.at(0, 0, 1) = 0.0f;
  img.at(1, 0, 0) = 1.0f;
  img.at(1, 0, 1) = 0.0f;
  std::vector<float> ndi = NormalizedDifferenceIndex(img, 0, 1);
  EXPECT_NEAR(ndi[0], 0.5f, 1e-6);  // (3-1)/(3+1)
  EXPECT_EQ(ndi[1], 0.0f);          // 0/0 -> 0
}

TEST(RasterOpsTest, AppendAndDeleteBand) {
  RasterImage img = SampleImage();
  RasterImage appended = AppendNormalizedDifferenceIndex(img, 0, 1);
  EXPECT_EQ(appended.bands(), 3);
  // Original bands intact.
  EXPECT_EQ(appended.at(0, 1, 1), img.at(0, 1, 1));
  RasterImage deleted = DeleteBand(appended, 0);
  EXPECT_EQ(deleted.bands(), 2);
  EXPECT_EQ(deleted.at(0, 1, 1), img.at(1, 1, 1));  // band 1 shifted down
}

TEST(RasterOpsTest, NormalizeBand) {
  RasterImage img = SampleImage();
  NormalizeBandInPlace(img, 0);
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_EQ(img.at(0, 3, 3), 1.0f);
}

TEST(RasterOpsTest, NormalizeConstantBand) {
  RasterImage img(2, 2, 1);
  img.at(0, 0, 0) = img.at(0, 0, 1) = img.at(0, 1, 0) = img.at(0, 1, 1) =
      5.0f;
  NormalizeBandInPlace(img, 0);
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
}

TEST(RasterOpsTest, MaskBand) {
  RasterImage img = SampleImage();
  MaskBandInPlace(img, 0, 10.0f, /*mask_upper=*/true);
  EXPECT_EQ(img.at(0, 3, 3), 0.0f);  // was 15
  EXPECT_EQ(img.at(0, 0, 1), 1.0f);  // below threshold
  MaskBandInPlace(img, 0, 1.5f, /*mask_upper=*/false);
  EXPECT_EQ(img.at(0, 0, 1), 0.0f);
}

TEST(RasterOpsTest, BandArithmetic) {
  RasterImage img = SampleImage();
  std::vector<float> sum = AddBands(img, 0, 1);
  for (float v : sum) EXPECT_EQ(v, 16.0f);
  std::vector<float> prod = MultiplyBands(img, 0, 1);
  EXPECT_EQ(prod[1], 15.0f);  // 1*15
  std::vector<float> quot = DivideBands(img, 1, 0);
  EXPECT_EQ(quot[0], 0.0f);  // divide by zero -> 0
  EXPECT_EQ(quot[1], 15.0f);
  std::vector<float> diff = SubtractBands(img, 1, 0);
  EXPECT_EQ(diff[0], 16.0f);
}

TEST(RasterOpsTest, BitwiseOps) {
  RasterImage img(1, 1, 2);
  img.at(0, 0, 0) = 6.0f;  // 0b110
  img.at(1, 0, 0) = 3.0f;  // 0b011
  EXPECT_EQ(BitwiseAndBands(img, 0, 1)[0], 2.0f);
  EXPECT_EQ(BitwiseOrBands(img, 0, 1)[0], 7.0f);
}

TEST(RasterOpsTest, BandStats) {
  RasterImage img = SampleImage();
  EXPECT_NEAR(BandMean(img, 0), 7.5f, 1e-6);
  EXPECT_NEAR(BandSquareRoot(img, 0)[4], 2.0f, 1e-6);
  EXPECT_NEAR(BandModulo(img, 0, 4.0f)[5], 1.0f, 1e-6);  // 5 mod 4

  RasterImage modal(2, 2, 1);
  modal.at(0, 0, 0) = 2.0f;
  modal.at(0, 0, 1) = 2.0f;
  modal.at(0, 1, 0) = 3.0f;
  modal.at(0, 1, 1) = 1.0f;
  EXPECT_EQ(BandMode(modal, 0), 2.0f);
}

TEST(GlcmTest, ConstantImageProperties) {
  RasterImage img(8, 8, 1);
  img.data().assign(img.data().size(), 3.0f);
  GlcmFeatures f = ComputeGlcmFeatures(img, 0);
  // All mass on the diagonal at one level.
  EXPECT_NEAR(f.contrast, 0.0f, 1e-6);
  EXPECT_NEAR(f.dissimilarity, 0.0f, 1e-6);
  EXPECT_NEAR(f.homogeneity, 1.0f, 1e-6);
  EXPECT_NEAR(f.asm_value, 1.0f, 1e-6);
  EXPECT_NEAR(f.energy, 1.0f, 1e-6);
  EXPECT_NEAR(f.entropy, 0.0f, 1e-6);
}

TEST(GlcmTest, CheckerboardHasHighContrast) {
  RasterImage board(8, 8, 1);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      board.at(0, i, j) = static_cast<float>((i + j) % 2);
    }
  }
  GlcmFeatures checker = ComputeGlcmFeatures(board, 0, /*levels=*/2);
  RasterImage smooth(8, 8, 1);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      smooth.at(0, i, j) = static_cast<float>(j) / 8.0f;
    }
  }
  GlcmFeatures grad = ComputeGlcmFeatures(smooth, 0, /*levels=*/2);
  EXPECT_GT(checker.contrast, grad.contrast);
  EXPECT_LT(checker.homogeneity, grad.homogeneity);
}

TEST(GlcmTest, FeatureVectorHasSixEntries) {
  Rng rng(1);
  RasterImage img(16, 16, 1);
  for (auto& v : img.data()) v = static_cast<float>(rng.Uniform(0, 1));
  std::vector<float> features = GlcmFeatureVector(img, 0);
  EXPECT_EQ(features.size(), 6u);
  for (float f : features) EXPECT_TRUE(std::isfinite(f));
}

}  // namespace
}  // namespace geotorch::raster
