// Serial vs parallel bitwise determinism. The blocked GEMM fixes its
// K-accumulation order regardless of how work is split across threads,
// and every parallel loop writes disjoint outputs — so one training
// step must produce bit-identical losses and gradients on
// Device::kSerial and Device::kParallel. This test runs one
// forward/backward for every grid and raster model on both devices and
// compares the float bit patterns exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "data/dataloader.h"
#include "datasets/benchmarks.h"
#include "models/grid_models.h"
#include "models/raster_models.h"
#include "models/segmentation_models.h"
#include "models/trainer.h"
#include "nn/precision.h"
#include "tensor/device.h"
#include "tensor/fusion.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;
namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace models = ::geotorch::models;

// The float bit patterns of a tensor, for exact comparison.
std::vector<uint32_t> Bits(const ts::Tensor& t) {
  std::vector<uint32_t> bits(t.numel());
  if (t.numel() > 0) {
    std::memcpy(bits.data(), t.data(), t.numel() * sizeof(uint32_t));
  }
  return bits;
}

struct StepResult {
  std::vector<uint32_t> loss_bits;
  std::vector<std::vector<uint32_t>> grad_bits;
};

// Runs one forward/backward of a freshly built model on `device` and
// captures the bit patterns of the loss and every parameter gradient.
template <typename MakeModel, typename LossFn>
StepResult RunStep(ts::Device device, const MakeModel& make_model,
                   const LossFn& loss_fn) {
  ts::DeviceGuard guard(device);
  auto model = make_model();
  ag::Variable loss = loss_fn(*model);
  loss.Backward();
  StepResult result;
  result.loss_bits = Bits(loss.value());
  for (const ag::Variable& p : model->Parameters()) {
    EXPECT_TRUE(p.has_grad()) << "parameter missing gradient";
    result.grad_bits.push_back(p.has_grad() ? Bits(p.grad())
                                            : std::vector<uint32_t>{});
  }
  return result;
}

template <typename MakeModel, typename LossFn>
void ExpectDeterministic(const std::string& label,
                         const MakeModel& make_model, const LossFn& loss_fn) {
  const StepResult serial =
      RunStep(ts::Device::kSerial, make_model, loss_fn);
  const StepResult parallel =
      RunStep(ts::Device::kParallel, make_model, loss_fn);
  EXPECT_EQ(serial.loss_bits, parallel.loss_bits)
      << label << ": loss differs between serial and parallel";
  ASSERT_EQ(serial.grad_bits.size(), parallel.grad_bits.size()) << label;
  for (size_t i = 0; i < serial.grad_bits.size(); ++i) {
    EXPECT_EQ(serial.grad_bits[i], parallel.grad_bits[i])
        << label << ": gradient of parameter " << i
        << " differs between serial and parallel";
  }
}

data::Batch FirstBatch(const data::Dataset& ds, int64_t batch_size) {
  data::DataLoader loader(&ds, batch_size, /*shuffle=*/false);
  data::Batch batch;
  EXPECT_TRUE(loader.Next(&batch));
  return batch;
}

// --- Grid models -----------------------------------------------------------

enum class GridKind { kPeriodicalCnn, kConvLstm, kStResNet, kDeepStnPlus };

void RunGridDeterminism(GridKind kind, const std::string& label) {
  // 16x32 grid: the first conv's im2col GEMM clears the parallel-path
  // work threshold, so the parallel run genuinely fans out. The trend
  // component reaches back one week (7 * 24 steps), so give the
  // synthetic series a bit more than that.
  datasets::GridDataset ds =
      datasets::MakeTemperature(/*timesteps=*/200, /*height=*/16,
                                /*width=*/32, /*seed=*/7);
  ds.MinMaxNormalize();

  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 16;
  mc.seed = 42;

  if (kind == GridKind::kConvLstm) {
    ds.SetSequentialRepresentation(/*history=*/4, /*prediction=*/1);
  } else {
    ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                   mc.len_trend);
  }
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);

  auto make_model = [&]() -> std::unique_ptr<models::GridModel> {
    switch (kind) {
      case GridKind::kPeriodicalCnn:
        return std::make_unique<models::PeriodicalCnn>(mc);
      case GridKind::kConvLstm:
        return std::make_unique<models::ConvLstm>(mc, 1);
      case GridKind::kStResNet:
        return std::make_unique<models::StResNet>(mc);
      case GridKind::kDeepStnPlus:
        return std::make_unique<models::DeepStnPlus>(mc);
    }
    return nullptr;
  };
  auto loss_fn = [&batch](models::GridModel& model) {
    return ag::MseLoss(model.Forward(batch), batch.y);
  };
  ExpectDeterministic(label, make_model, loss_fn);
}

TEST(DeterminismTest, PeriodicalCnn) {
  RunGridDeterminism(GridKind::kPeriodicalCnn, "PeriodicalCnn");
}
TEST(DeterminismTest, ConvLstm) {
  RunGridDeterminism(GridKind::kConvLstm, "ConvLstm");
}
TEST(DeterminismTest, StResNet) {
  RunGridDeterminism(GridKind::kStResNet, "StResNet");
}
TEST(DeterminismTest, DeepStnPlus) {
  RunGridDeterminism(GridKind::kDeepStnPlus, "DeepStnPlus");
}

// --- Raster classifiers ----------------------------------------------------

TEST(DeterminismTest, SatCnn) {
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/16, {}, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);

  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.base_filters = 16;
  rc.seed = 42;

  auto make_model = [&] { return std::make_unique<models::SatCnn>(rc); };
  auto loss_fn = [&batch](models::SatCnn& model) {
    ag::Variable logits = model.Forward(ag::Variable(batch.x), {});
    return ag::CrossEntropyLoss(logits,
                                batch.y.Reshape({batch.y.numel()}));
  };
  ExpectDeterministic("SatCnn", make_model, loss_fn);
}

TEST(DeterminismTest, DeepSatV2) {
  datasets::RasterDatasetOptions options;
  options.include_additional_features = true;
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/16, options, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);
  ASSERT_FALSE(batch.extras.empty());

  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.num_filtered_features = ds.num_additional_features();
  rc.base_filters = 16;
  rc.seed = 42;

  auto make_model = [&] { return std::make_unique<models::DeepSatV2>(rc); };
  auto loss_fn = [&batch](models::DeepSatV2& model) {
    ag::Variable logits = model.Forward(ag::Variable(batch.x),
                                        ag::Variable(batch.extras[0]));
    return ag::CrossEntropyLoss(logits,
                                batch.y.Reshape({batch.y.numel()}));
  };
  ExpectDeterministic("DeepSatV2", make_model, loss_fn);
}

// --- Segmentation models ---------------------------------------------------

template <typename Model>
void RunSegDeterminism(const std::string& label) {
  datasets::RasterSegmentationDataset ds =
      datasets::MakeCloud38(/*n=*/8, /*size=*/32, {}, /*seed=*/5);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  models::SegModelConfig sc;
  sc.in_channels = 4;
  sc.num_classes = 2;
  sc.base_filters = 8;
  sc.seed = 42;

  auto make_model = [&] { return std::make_unique<Model>(sc); };
  auto loss_fn = [&batch](Model& model) {
    return ag::CrossEntropyLoss(model.Forward(ag::Variable(batch.x)),
                                batch.y);
  };
  ExpectDeterministic(label, make_model, loss_fn);
}

// --- Checkpoint / resume ---------------------------------------------------

// Training N epochs straight through must be bitwise identical to
// training k epochs, checkpointing, and resuming a FRESH model from
// that checkpoint for the remaining N-k epochs. The trainer replays
// the shuffle stream for the skipped epochs and the checkpoint carries
// optimizer state (Adam moments + step clock) and early-stopping
// state, so the continued trajectory is the same trajectory.
TEST(DeterminismTest, ResumeMatchesStraightThroughTraining) {
  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/200, /*height=*/8, /*width=*/8, /*seed=*/7);
  ds.MinMaxNormalize();
  ds.SetPeriodicalRepresentation(3, 2, 1);
  data::SplitIndices split = data::ChronologicalSplit(ds.Size());
  data::SubsetDataset train(&ds, split.train);
  data::SubsetDataset val(&ds, split.val);
  data::SubsetDataset test(&ds, split.test);

  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;

  models::TrainConfig base;
  base.max_epochs = 4;
  base.patience = 100;  // run all epochs; early stopping stays armed
  base.batch_size = 8;
  base.lr = 1e-2f;
  base.seed = 9;

  // Straight-through run.
  models::PeriodicalCnn straight(mc);
  const models::RegressionResult want =
      models::TrainGridModel(straight, train, val, test, base);

  // Interrupted run: 2 epochs, checkpoint written after epoch 2.
  const std::string path = testing::TempDir() + "/resume_determinism.ckpt";
  models::TrainConfig first = base;
  first.max_epochs = 2;
  first.checkpoint_every = 2;
  first.checkpoint_path = path;
  models::PeriodicalCnn interrupted(mc);
  models::TrainGridModel(interrupted, train, val, test, first);

  // Resume into a DIFFERENTLY-initialized model: everything it knows
  // must come from the checkpoint.
  models::GridModelConfig mc2 = mc;
  mc2.seed = 77;
  models::PeriodicalCnn resumed(mc2);
  models::TrainConfig second = base;
  second.resume_from = path;
  const models::RegressionResult got =
      models::TrainGridModel(resumed, train, val, test, second);

  // Metrics bitwise equal...
  EXPECT_EQ(Bits(ts::Tensor::Scalar(want.mae)),
            Bits(ts::Tensor::Scalar(got.mae)));
  EXPECT_EQ(Bits(ts::Tensor::Scalar(want.rmse)),
            Bits(ts::Tensor::Scalar(got.rmse)));
  EXPECT_EQ(want.epochs_run, got.epochs_run);

  // ...and every parameter bitwise equal.
  const auto a = straight.NamedParameters();
  const auto b = resumed.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(Bits(a[i].second.value()), Bits(b[i].second.value()))
        << "parameter " << a[i].first
        << " differs between straight and resumed training";
  }
  std::remove(path.c_str());
}

TEST(DeterminismTest, Fcn) { RunSegDeterminism<models::Fcn>("Fcn"); }
TEST(DeterminismTest, UNet) { RunSegDeterminism<models::UNet>("UNet"); }
TEST(DeterminismTest, UNetPlusPlus) {
  RunSegDeterminism<models::UNetPlusPlus>("UNetPlusPlus");
}

// --- Low-precision eval (DESIGN.md §10) ------------------------------------
//
// Two properties per model family:
//   * bf16 eval output stays close to f32 — bf16 keeps ~3 significant
//     decimal digits per operand and the GEMMs accumulate in f32, so
//     even the deepest forward here should diverge well under 5% of
//     the output's dynamic range;
//   * the quantized paths (bf16 and int8) are bitwise deterministic
//     across serial and parallel devices, exactly like f32 — fixed
//     K-accumulation order for bf16, exact i32 accumulation for int8.

namespace nn = ::geotorch::nn;

// Runs an eval-mode forward of a freshly built model at `precision` on
// `device` and returns the output bit patterns.
template <typename MakeModel, typename ForwardFn>
std::vector<uint32_t> EvalBits(ts::Device device, nn::Precision precision,
                               const MakeModel& make_model,
                               const ForwardFn& forward) {
  ts::DeviceGuard guard(device);
  ag::NoGradGuard no_grad;
  auto model = make_model();
  model->SetTraining(false);
  model->SetPrecision(precision);
  return Bits(forward(*model));
}

// Max |a - b| over the two outputs, relative to the f32 dynamic range.
double RelDivergence(const std::vector<uint32_t>& f32_bits,
                     const std::vector<uint32_t>& lp_bits) {
  EXPECT_EQ(f32_bits.size(), lp_bits.size());
  double absmax = 0.0, diff = 0.0;
  for (size_t i = 0; i < f32_bits.size() && i < lp_bits.size(); ++i) {
    float a, b;
    std::memcpy(&a, &f32_bits[i], sizeof(a));
    std::memcpy(&b, &lp_bits[i], sizeof(b));
    absmax = std::max(absmax, static_cast<double>(std::fabs(a)));
    diff = std::max(diff, static_cast<double>(std::fabs(a - b)));
  }
  return diff / std::max(absmax, 1e-6);
}

template <typename MakeModel, typename ForwardFn>
void ExpectLowPrecisionBehaved(const std::string& label,
                               const MakeModel& make_model,
                               const ForwardFn& forward) {
  const std::vector<uint32_t> f32 =
      EvalBits(ts::Device::kSerial, nn::Precision::kF32, make_model, forward);
  const std::vector<uint32_t> bf16 =
      EvalBits(ts::Device::kSerial, nn::Precision::kBf16, make_model, forward);
  EXPECT_LT(RelDivergence(f32, bf16), 0.05)
      << label << ": bf16 eval diverges from f32 beyond bf16 rounding";
  for (nn::Precision p : {nn::Precision::kBf16, nn::Precision::kInt8}) {
    const std::vector<uint32_t> serial =
        EvalBits(ts::Device::kSerial, p, make_model, forward);
    const std::vector<uint32_t> parallel =
        EvalBits(ts::Device::kParallel, p, make_model, forward);
    EXPECT_EQ(serial, parallel)
        << label << ": " << nn::PrecisionName(p)
        << " eval differs between serial and parallel";
  }
}

void RunGridLowPrecision(GridKind kind, const std::string& label) {
  datasets::GridDataset ds =
      datasets::MakeTemperature(/*timesteps=*/200, /*height=*/16,
                                /*width=*/32, /*seed=*/7);
  ds.MinMaxNormalize();
  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 16;
  mc.seed = 42;
  if (kind == GridKind::kConvLstm) {
    ds.SetSequentialRepresentation(/*history=*/4, /*prediction=*/1);
  } else {
    ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                   mc.len_trend);
  }
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);
  auto make_model = [&]() -> std::unique_ptr<models::GridModel> {
    switch (kind) {
      case GridKind::kPeriodicalCnn:
        return std::make_unique<models::PeriodicalCnn>(mc);
      case GridKind::kConvLstm:
        return std::make_unique<models::ConvLstm>(mc, 1);
      case GridKind::kStResNet:
        return std::make_unique<models::StResNet>(mc);
      case GridKind::kDeepStnPlus:
        return std::make_unique<models::DeepStnPlus>(mc);
    }
    return nullptr;
  };
  auto forward = [&batch](models::GridModel& model) {
    return model.Forward(batch).value();
  };
  ExpectLowPrecisionBehaved(label, make_model, forward);
}

TEST(LowPrecisionEvalTest, PeriodicalCnn) {
  RunGridLowPrecision(GridKind::kPeriodicalCnn, "PeriodicalCnn");
}
TEST(LowPrecisionEvalTest, ConvLstm) {
  RunGridLowPrecision(GridKind::kConvLstm, "ConvLstm");
}
TEST(LowPrecisionEvalTest, StResNet) {
  RunGridLowPrecision(GridKind::kStResNet, "StResNet");
}
TEST(LowPrecisionEvalTest, DeepStnPlus) {
  RunGridLowPrecision(GridKind::kDeepStnPlus, "DeepStnPlus");
}

enum class RasterKind { kSatCnn, kDeepSat, kDeepSatV2 };

void RunRasterLowPrecision(RasterKind kind, const std::string& label) {
  datasets::RasterDatasetOptions options;
  options.include_additional_features = true;  // DeepSat needs features
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/16, options, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);
  ASSERT_FALSE(batch.extras.empty());

  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.num_filtered_features = ds.num_additional_features();
  rc.base_filters = 16;
  rc.seed = 42;

  auto make_model = [&]() -> std::unique_ptr<models::RasterClassifier> {
    switch (kind) {
      case RasterKind::kSatCnn:
        return std::make_unique<models::SatCnn>(rc);
      case RasterKind::kDeepSat:
        return std::make_unique<models::DeepSat>(rc);
      case RasterKind::kDeepSatV2:
        return std::make_unique<models::DeepSatV2>(rc);
    }
    return nullptr;
  };
  auto forward = [&batch](models::RasterClassifier& model) {
    return model
        .Forward(ag::Variable(batch.x), ag::Variable(batch.extras[0]))
        .value();
  };
  ExpectLowPrecisionBehaved(label, make_model, forward);
}

TEST(LowPrecisionEvalTest, SatCnn) {
  RunRasterLowPrecision(RasterKind::kSatCnn, "SatCnn");
}
TEST(LowPrecisionEvalTest, DeepSat) {
  RunRasterLowPrecision(RasterKind::kDeepSat, "DeepSat");
}
TEST(LowPrecisionEvalTest, DeepSatV2) {
  RunRasterLowPrecision(RasterKind::kDeepSatV2, "DeepSatV2");
}

template <typename Model>
void RunSegLowPrecision(const std::string& label) {
  datasets::RasterSegmentationDataset ds =
      datasets::MakeCloud38(/*n=*/8, /*size=*/32, {}, /*seed=*/5);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);
  models::SegModelConfig sc;
  sc.in_channels = 4;
  sc.num_classes = 2;
  sc.base_filters = 8;
  sc.seed = 42;
  auto make_model = [&] { return std::make_unique<Model>(sc); };
  auto forward = [&batch](Model& model) {
    return model.Forward(ag::Variable(batch.x)).value();
  };
  ExpectLowPrecisionBehaved(label, make_model, forward);
}

TEST(LowPrecisionEvalTest, Fcn) { RunSegLowPrecision<models::Fcn>("Fcn"); }
TEST(LowPrecisionEvalTest, UNet) { RunSegLowPrecision<models::UNet>("UNet"); }
TEST(LowPrecisionEvalTest, UNetPlusPlus) {
  RunSegLowPrecision<models::UNetPlusPlus>("UNetPlusPlus");
}

// --- Fused eval path (DESIGN.md §13) ---------------------------------------
//
// With GEOTORCH_FUSION on (the default), eval-mode forwards route
// through the fused kernels: GEMM epilogues, the im2col-free direct
// conv, and the 1×1 bypass. None of the shipped models place a
// BatchNorm between conv and activation, so no folding reassociation
// happens and the fused output must be BITWISE identical to the
// unfused path — at every precision, on both devices. Training is
// gated out of fusion entirely, so one training step must be bitwise
// unchanged by the toggle.

// Restores the fusion flag even when an assertion fails mid-test.
struct FusionFlagGuard {
  FusionFlagGuard() : prev(ts::FusionEnabled()) {}
  ~FusionFlagGuard() { ts::SetFusionEnabled(prev); }
  bool prev;
};

template <typename MakeModel, typename ForwardFn>
void ExpectFusionTransparentEval(const std::string& label,
                                 const MakeModel& make_model,
                                 const ForwardFn& forward) {
  FusionFlagGuard guard;
  for (nn::Precision p :
       {nn::Precision::kF32, nn::Precision::kBf16, nn::Precision::kInt8}) {
    ts::SetFusionEnabled(false);
    const std::vector<uint32_t> off =
        EvalBits(ts::Device::kSerial, p, make_model, forward);
    ts::SetFusionEnabled(true);
    const std::vector<uint32_t> on =
        EvalBits(ts::Device::kSerial, p, make_model, forward);
    EXPECT_EQ(off, on) << label << ": " << nn::PrecisionName(p)
                       << " fused eval differs from unfused";
    const std::vector<uint32_t> on_parallel =
        EvalBits(ts::Device::kParallel, p, make_model, forward);
    EXPECT_EQ(on, on_parallel)
        << label << ": " << nn::PrecisionName(p)
        << " fused eval differs between serial and parallel";
  }
}

TEST(FusedEvalTest, SatCnnFusedMatchesUnfusedBitwise) {
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/16, {}, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);
  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.base_filters = 16;
  rc.seed = 42;
  auto make_model = [&] { return std::make_unique<models::SatCnn>(rc); };
  auto forward = [&batch](models::SatCnn& model) {
    return model.Forward(ag::Variable(batch.x), {}).value();
  };
  ExpectFusionTransparentEval("SatCnn", make_model, forward);
}

TEST(FusedEvalTest, UNetFusedMatchesUnfusedBitwise) {
  datasets::RasterSegmentationDataset ds =
      datasets::MakeCloud38(/*n=*/8, /*size=*/32, {}, /*seed=*/5);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);
  models::SegModelConfig sc;
  sc.in_channels = 4;
  sc.num_classes = 2;
  sc.base_filters = 8;
  sc.seed = 42;
  auto make_model = [&] { return std::make_unique<models::UNet>(sc); };
  auto forward = [&batch](models::UNet& model) {
    return model.Forward(ag::Variable(batch.x)).value();
  };
  ExpectFusionTransparentEval("UNet", make_model, forward);
}

TEST(FusedEvalTest, PeriodicalCnnFusedMatchesUnfusedBitwise) {
  datasets::GridDataset ds =
      datasets::MakeTemperature(/*timesteps=*/200, /*height=*/16,
                                /*width=*/32, /*seed=*/7);
  ds.MinMaxNormalize();
  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 16;
  mc.seed = 42;
  ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                 mc.len_trend);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);
  auto make_model = [&] { return std::make_unique<models::PeriodicalCnn>(mc); };
  auto forward = [&batch](models::PeriodicalCnn& model) {
    return model.Forward(batch).value();
  };
  ExpectFusionTransparentEval("PeriodicalCnn", make_model, forward);
}

// The fusion gate excludes training and grad-enabled forwards, so a
// full forward/backward must be bitwise indifferent to the flag.
TEST(FusedEvalTest, TrainingStepUnchangedByFusionToggle) {
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/16, {}, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/4);
  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.base_filters = 16;
  rc.seed = 42;
  auto make_model = [&] { return std::make_unique<models::SatCnn>(rc); };
  auto loss_fn = [&batch](models::SatCnn& model) {
    ag::Variable logits = model.Forward(ag::Variable(batch.x), {});
    return ag::CrossEntropyLoss(logits, batch.y.Reshape({batch.y.numel()}));
  };
  FusionFlagGuard guard;
  ts::SetFusionEnabled(false);
  const StepResult off = RunStep(ts::Device::kSerial, make_model, loss_fn);
  ts::SetFusionEnabled(true);
  const StepResult on = RunStep(ts::Device::kSerial, make_model, loss_fn);
  EXPECT_EQ(off.loss_bits, on.loss_bits)
      << "training loss changed with fusion enabled";
  ASSERT_EQ(off.grad_bits.size(), on.grad_bits.size());
  for (size_t i = 0; i < off.grad_bits.size(); ++i) {
    EXPECT_EQ(off.grad_bits[i], on.grad_bits[i])
        << "gradient of parameter " << i << " changed with fusion enabled";
  }
}

}  // namespace
