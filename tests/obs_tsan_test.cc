// ThreadSanitizer stress for the observability subsystem: worker
// threads hammer counters, histograms, and nested spans while the main
// thread concurrently aggregates, exports JSON, toggles the runtime
// switch, and resets. Compiled with -fsanitize=thread (see
// tests/CMakeLists.txt); any data race fails the run.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace obs = ::geotorch::obs;

int main() {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        GEO_OBS_COUNT("tsan.counter", 1);
        GEO_OBS_HIST("tsan.hist", i % 1024);
        obs::SetGauge("tsan.gauge", t * kItersPerThread + i);
        GEO_OBS_SPAN(outer, "tsan_outer");
        if (i % 2 == 0) {
          GEO_OBS_SPAN(inner, "tsan_inner");
        }
      }
    });
  }

  // Reader thread: aggregate + export concurrently with the writers.
  std::thread reader([&stop] {
    size_t exports = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto roots = obs::AggregateSpans();
      const std::string json = obs::ExportJson();
      if (json.empty() || roots.size() > 64) {
        std::fprintf(stderr, "unexpected export state\n");
        std::abort();
      }
      ++exports;
      if (exports % 16 == 0) obs::Reset();
      if (exports % 32 == 0) obs::SetEnabled(false);
      if (exports % 32 == 1) obs::SetEnabled(true);
    }
  });

  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  obs::SetEnabled(true);
  obs::Reset();

  // Sequential sanity pass after the storm: the registry must still
  // record and aggregate correctly.
  obs::GetCounter("tsan.final")->Add(5);
  {
    obs::TraceSpan final_span("tsan_final");
  }
  if (obs::GetCounter("tsan.final")->value() != 5) {
    std::fprintf(stderr, "counter lost writes after stress\n");
    return 1;
  }
  bool found = false;
  for (const auto& n : obs::AggregateSpans()) {
    if (n.name == "tsan_final" && n.count == 1) found = true;
  }
  if (!found) {
    std::fprintf(stderr, "span missing after stress\n");
    return 1;
  }
  std::printf("obs_tsan_test: OK\n");
  return 0;
}
