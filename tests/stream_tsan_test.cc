// ThreadSanitizer stress for the streaming pipeline: the producer,
// aggregator, and predictor stages racing each other over the bounded
// rings, the predictor's submits racing the fleet's hot reloads
// (snapshot pointer swaps), stats pollers and hot-cell-index readers
// racing the aggregator thread, and Stop racing all of it. Built by
// recompiling the minimal source subset with -fsanitize=thread (see
// tests/CMakeLists.txt); any data race aborts the test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "serve/config.h"
#include "serve/fleet.h"
#include "spatial/geometry.h"
#include "spatial/grid.h"
#include "stream/event.h"
#include "stream/options.h"
#include "stream/pipeline.h"
#include "tensor/tensor.h"

namespace {

namespace data = ::geotorch::data;
namespace serve = ::geotorch::serve;
namespace spatial = ::geotorch::spatial;
namespace stream = ::geotorch::stream;
namespace ts = ::geotorch::tensor;
using geotorch::Rng;
using geotorch::Status;

// Synthetic ordered source: a burst of uniform events per tick, clock
// advancing one window slide every few ticks, unbounded duration (the
// test always ends via Stop). No synth dependency on purpose — this TU
// plus the stream/serve/spatial/tensor/core sources is the whole
// instrumented binary.
class BurstSource : public stream::EventSource {
 public:
  explicit BurstSource(uint64_t seed) : rng_(seed) {}

  bool NextTick(std::vector<stream::Event>* out) override {
    const int64_t n = rng_.UniformInt(8, 32);
    for (int64_t i = 0; i < n; ++i) {
      stream::Event e;
      e.lon = rng_.Uniform();
      e.lat = rng_.Uniform();
      e.time_sec = rng_.UniformInt(tick_start_, tick_start_ + 29);
      e.is_pickup = rng_.Bernoulli(0.5);
      out->push_back(e);
    }
    tick_start_ += 30;
    return true;
  }

 private:
  Rng rng_;
  int64_t tick_start_ = 0;
};

serve::SnapshotFactory ReloadableEchoFactory() {
  return [] {
    serve::ModelSnapshot snap;
    snap.forward = [](const data::Batch& batch) { return batch.x; };
    // Reloadable: the hot-swap machinery (shadow build, swap, drain)
    // runs for real; only the weight load itself is a no-op.
    snap.load = [](const std::string&) { return Status::OK(); };
    return snap;
  };
}

TEST(StreamTsanTest, StagesRaceReloadsPollersAndShutdown) {
  stream::StreamOptions opts;
  opts.window_sec = 60;
  opts.slide_sec = 60;
  opts.queue = 256;
  opts.window_queue = 8;
  opts.len_closeness = 2;
  opts.steps_per_day = 4;

  serve::FleetOptions fleet_opts;
  fleet_opts.replicas = 2;
  fleet_opts.engine.max_batch = 2;
  fleet_opts.engine.max_delay_us = 50;
  fleet_opts.engine.max_queue = 64;
  fleet_opts.engine.warmup_batches = 0;
  serve::Fleet fleet(fleet_opts);
  ASSERT_TRUE(fleet
                  .AddModel("echo", ReloadableEchoFactory(),
                            serve::SampleSpec{
                                {opts.len_closeness * 2, 3, 3}, {}})
                  .ok());

  BurstSource source(/*seed=*/77);
  spatial::GridPartitioner grid(spatial::Envelope(0.0, 0.0, 1.0, 1.0),
                                3, 3);
  stream::Pipeline pipeline(&source, &fleet, grid, "echo", opts);
  pipeline.Start();

  // Reloader: hot-swaps both replicas under live predictor traffic.
  std::atomic<bool> quit{false};
  std::atomic<int> reloads_ok{0};
  std::thread reloader([&] {
    while (!quit.load(std::memory_order_acquire)) {
      if (fleet.Reload("echo", "unused-path").ok()) {
        reloads_ok.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Pollers: stats snapshots and hot-cell-index queries from outside
  // the stage threads.
  std::thread poller([&] {
    int64_t sink = 0;
    while (!quit.load(std::memory_order_acquire)) {
      const stream::PipelineStats stats = pipeline.stats();
      sink += stats.events_ingested + stats.windows_closed;
      auto index = pipeline.aggregator().HotCellIndex();
      if (index != nullptr) {
        sink += static_cast<int64_t>(
            index->Query(spatial::Envelope(0.0, 0.0, 1.0, 1.0)).size());
      }
      std::this_thread::yield();
    }
    EXPECT_GE(sink, 0);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  pipeline.Stop();  // races the reloader and poller by design
  quit.store(true, std::memory_order_release);
  reloader.join();
  poller.join();

  const stream::PipelineStats stats = pipeline.stats();
  EXPECT_GT(stats.events_ingested, 0);
  EXPECT_EQ(stats.events_processed, stats.events_ingested);
  EXPECT_EQ(stats.windows_closed,
            stats.predictions_ok + stats.predictions_failed);
  EXPECT_GT(reloads_ok.load(), 0);
  auto version = fleet.ModelVersion("echo");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1 + reloads_ok.load());
}

}  // namespace
