// Thread-safety harness for the low-precision GEMM kernels, built with
// -fsanitize=thread (see tests/CMakeLists.txt). Not a gtest: it links a
// minimal TSan-instrumented subset of the library and drives the bf16
// and int8 paths through the same 2-D tile dispatch as the f32 kernel —
// concurrent bf16 rounding / int8 panel packing into per-thread
// workspaces, disjoint C-tile stores, and the prepacked-B read-only
// sharing that serving relies on. Both paths promise serial == parallel
// bitwise (fixed K order for bf16, exact i32 accumulation for int8), so
// every check here is a memcmp, not a tolerance.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"

namespace ts = geotorch::tensor;

namespace {

int failures = 0;

void FillUniform(std::vector<float>& v, uint64_t seed) {
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& x : v) x = dist(engine);
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b,
                  const char* what, int64_t m, int64_t k, int64_t n) {
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0) {
    return true;
  }
  std::fprintf(stderr, "FAIL %s m=%lld k=%lld n=%lld: bitwise mismatch\n",
               what, static_cast<long long>(m), static_cast<long long>(k),
               static_cast<long long>(n));
  ++failures;
  return false;
}

// Serial reference vs parallel, on-the-fly vs prepacked B — all four
// must agree bitwise while TSan watches the pool traffic.
void CheckBf16Once(int64_t m, int64_t k, int64_t n, uint64_t seed) {
  std::vector<float> a(m * k), b(k * n);
  FillUniform(a, seed);
  FillUniform(b, seed + 1);

  std::vector<float> c_serial(m * n, 0.0f);
  ts::GemmOptions serial_opts;
  serial_opts.allow_parallel = false;
  ts::GemmBf16(a.data(), b.data(), c_serial.data(), m, k, n, serial_opts);

  std::vector<float> c_parallel(m * n, 0.0f);
  ts::GemmBf16(a.data(), b.data(), c_parallel.data(), m, k, n);
  BitwiseEqual(c_serial, c_parallel, "bf16 serial vs parallel", m, k, n);

  std::vector<uint16_t> b_bf16(k * n);
  ts::ConvertToBf16(b.data(), b_bf16.data(), k * n);
  std::vector<uint16_t> packed(ts::Bf16PackedBSize(k, n));
  ts::PackBf16B(b_bf16.data(), k, n, packed.data());
  std::vector<float> c_packed(m * n, 0.0f);
  ts::GemmBf16(a.data(), ts::Bf16PackedB{packed.data()}, c_packed.data(), m,
               k, n);
  BitwiseEqual(c_serial, c_packed, "bf16 prepacked", m, k, n);
}

void CheckInt8Once(int64_t m, int64_t k, int64_t n, uint64_t seed) {
  std::vector<float> a(m * k), b(k * n);
  FillUniform(a, seed);
  FillUniform(b, seed + 1);

  const float a_scale = ts::SymmetricScale(ts::AbsMax(a.data(), m * k));
  const float b_scale = ts::SymmetricScale(ts::AbsMax(b.data(), k * n));
  std::vector<int8_t> a_q(m * k), b_q(k * n);
  ts::QuantizeInt8(a.data(), m * k, a_scale, a_q.data());
  ts::QuantizeInt8(b.data(), k * n, b_scale, b_q.data());

  ts::Int8GemmOptions opts;
  opts.a_scales = &a_scale;
  opts.a_scales_len = 1;
  opts.b_scales = &b_scale;
  opts.b_scales_len = 1;

  std::vector<float> c_serial(m * n, 0.0f);
  ts::Int8GemmOptions serial_opts = opts;
  serial_opts.allow_parallel = false;
  ts::GemmInt8(a_q.data(), b_q.data(), c_serial.data(), m, k, n, serial_opts);

  std::vector<float> c_parallel(m * n, 0.0f);
  ts::GemmInt8(a_q.data(), b_q.data(), c_parallel.data(), m, k, n, opts);
  BitwiseEqual(c_serial, c_parallel, "int8 serial vs parallel", m, k, n);

  std::vector<int8_t> packed(ts::Int8PackedBSize(k, n));
  ts::PackInt8B(b_q.data(), k, n, packed.data());
  std::vector<float> c_packed(m * n, 0.0f);
  ts::GemmInt8(a_q.data(), ts::Int8PackedB{packed.data()}, c_packed.data(), m,
               k, n, opts);
  BitwiseEqual(c_serial, c_packed, "int8 prepacked", m, k, n);
}

}  // namespace

int main() {
  ts::SetDefaultDevice(ts::Device::kParallel);

  // Sizes past kParallelMinWork so the pool actually runs, with ragged
  // edges straddling the MC/NC macro-tile boundaries. Repeats re-use
  // the thread-local pack workspaces across pool wakeups.
  struct Shape {
    int64_t m, k, n;
  };
  const Shape shapes[] = {
      {192, 128, 512},  // one M split, one N tile
      {97, 300, 1030},  // ragged edges in every dimension
      {1, 4096, 640},   // single-row: N-only parallelism (the serve shape)
      {64, 9000, 96},   // K past kKCInt8: multi-block i32 accumulation
  };
  uint64_t seed = 1234;
  for (int iter = 0; iter < 4; ++iter) {
    for (const Shape& s : shapes) {
      CheckBf16Once(s.m, s.k, s.n, seed++);
      CheckInt8Once(s.m, s.k, s.n, seed++);
    }
  }

  // Serving with several engines in one process: client threads issue
  // low-precision GEMMs against one shared read-only prepacked weight
  // blob while the pool-parallel path runs on the main thread. The
  // packed panels are written once here and only ever read afterwards;
  // TSan confirms no write leaks into the shared phase.
  {
    const int64_t m = 16, k = 1024, n = 256;
    std::vector<float> b(k * n);
    FillUniform(b, 77);
    std::vector<uint16_t> b_bf16(k * n);
    ts::ConvertToBf16(b.data(), b_bf16.data(), k * n);
    std::vector<uint16_t> packed_bf16(ts::Bf16PackedBSize(k, n));
    ts::PackBf16B(b_bf16.data(), k, n, packed_bf16.data());

    const float b_scale = ts::SymmetricScale(ts::AbsMax(b.data(), k * n));
    std::vector<int8_t> b_q(k * n);
    ts::QuantizeInt8(b.data(), k * n, b_scale, b_q.data());
    std::vector<int8_t> packed_int8(ts::Int8PackedBSize(k, n));
    ts::PackInt8B(b_q.data(), k, n, packed_int8.data());

    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        std::vector<float> a(m * k);
        FillUniform(a, 1000 + t);
        const float a_scale = ts::SymmetricScale(ts::AbsMax(a.data(), m * k));
        std::vector<int8_t> a_q(m * k);
        ts::QuantizeInt8(a.data(), m * k, a_scale, a_q.data());
        ts::Int8GemmOptions opts;
        opts.a_scales = &a_scale;
        opts.b_scales = &b_scale;
        opts.allow_parallel = false;  // each client computes serially
        std::vector<float> c(m * n);
        for (int i = 0; i < 8; ++i) {
          ts::GemmBf16(a.data(), ts::Bf16PackedB{packed_bf16.data()}, c.data(),
                       m, k, n, ts::GemmOptions{0.0f, false, false, false});
          ts::GemmInt8(a_q.data(), ts::Int8PackedB{packed_int8.data()},
                       c.data(), m, k, n, opts);
        }
      });
    }
    // Pool-parallel traffic concurrent with the serial clients.
    for (int i = 0; i < 8; ++i) {
      CheckBf16Once(192, 512, 512, seed++);
      CheckInt8Once(192, 512, 512, seed++);
    }
    for (auto& c : clients) c.join();
  }

  if (failures == 0) {
    std::printf("gemm_lp_tsan_test: OK\n");
    return 0;
  }
  std::fprintf(stderr, "gemm_lp_tsan_test: %d failure(s)\n", failures);
  return 1;
}
