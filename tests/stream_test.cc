// The streaming spatiotemporal pipeline: bounded rings must give
// backpressure and lossless close-then-drain, the incremental window
// aggregator must emit an unbroken, batch-bitwise-equal frame series
// (empty windows included) while dropping late / out-of-extent events,
// the epoch STR-tree must track exactly the active cells and rebuild
// only on change, the online predictor's stacks must mirror
// GridDataset's periodical representation with zero-padded warm-up,
// and the three-stage pipeline must account for every admitted event
// after both a natural end-of-stream and a mid-stream Stop.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "datasets/grid_dataset.h"
#include "serve/config.h"
#include "serve/fleet.h"
#include "spatial/geometry.h"
#include "spatial/grid.h"
#include "spatial/strtree.h"
#include "stream/aggregator.h"
#include "stream/event.h"
#include "stream/options.h"
#include "stream/pipeline.h"
#include "stream/predictor.h"
#include "stream/ring.h"
#include "stream/taxi_source.h"
#include "synth/taxi.h"
#include "tensor/ops.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace {

namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace serve = ::geotorch::serve;
namespace spatial = ::geotorch::spatial;
namespace stream = ::geotorch::stream;
namespace synth = ::geotorch::synth;
namespace ts = ::geotorch::tensor;
using geotorch::Rng;

bool SameBits(const ts::Tensor& a, const ts::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

spatial::Envelope UnitExtent() {
  return spatial::Envelope(0.0, 0.0, 1.0, 1.0);
}

stream::Event At(double lon, double lat, int64_t time_sec,
                 bool is_pickup = true, int64_t ingest_ns = 0) {
  stream::Event e;
  e.lon = lon;
  e.lat = lat;
  e.time_sec = time_sec;
  e.is_pickup = is_pickup;
  e.ingest_ns = ingest_ns;
  return e;
}

// --- BoundedRing ------------------------------------------------------------

TEST(BoundedRingTest, FifoPushPop) {
  stream::BoundedRing<int> ring(8);
  EXPECT_TRUE(ring.Push(1));
  EXPECT_TRUE(ring.Push(2));
  EXPECT_TRUE(ring.Push(3));
  int v = 0;
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(BoundedRingTest, TryPushRefusesWhenFull) {
  stream::BoundedRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));  // full: backpressure, not growth
  int v = 0;
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_TRUE(ring.TryPush(3));
}

TEST(BoundedRingTest, BlockedPushResumesWhenConsumerPops) {
  stream::BoundedRing<int> ring(1);
  ASSERT_TRUE(ring.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ring.Push(2));  // blocks until the pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still parked in backpressure
  int v = 0;
  EXPECT_TRUE(ring.Pop(&v));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedRingTest, CloseRefusesPushesButDrainsBuffered) {
  stream::BoundedRing<int> ring(8);
  ASSERT_TRUE(ring.Push(1));
  ASSERT_TRUE(ring.Push(2));
  ring.Close();
  EXPECT_FALSE(ring.Push(3));  // refused, NOT enqueued
  int v = 0;
  EXPECT_TRUE(ring.Pop(&v));  // buffered items survive the close
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.Pop(&v));  // closed and drained
}

TEST(BoundedRingTest, CloseWakesBlockedConsumer) {
  stream::BoundedRing<int> ring(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(ring.Pop(&v));  // wakes with "drained" on Close
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.Close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

// --- StreamOptions::FromEnv -------------------------------------------------

struct EnvVarGuard {
  explicit EnvVarGuard(std::vector<const char*> names)
      : names_(std::move(names)) {
    for (const char* n : names_) unsetenv(n);
  }
  ~EnvVarGuard() {
    for (const char* n : names_) unsetenv(n);
  }
  std::vector<const char*> names_;
};

std::vector<const char*> AllStreamEnvVars() {
  return {"GEOTORCH_STREAM_WINDOW",        "GEOTORCH_STREAM_SLIDE",
          "GEOTORCH_STREAM_QUEUE",         "GEOTORCH_STREAM_WINDOW_QUEUE",
          "GEOTORCH_STREAM_CLOSENESS",     "GEOTORCH_STREAM_PERIOD",
          "GEOTORCH_STREAM_TREND",         "GEOTORCH_STREAM_STEPS_PER_DAY",
          "GEOTORCH_STREAM_TIMEOUT_US",    "GEOTORCH_STREAM_RATE"};
}

TEST(StreamOptionsTest, FromEnvDefaultsWhenUnset) {
  EnvVarGuard guard(AllStreamEnvVars());
  const stream::StreamOptions opts = stream::StreamOptions::FromEnv();
  const stream::StreamOptions defaults;
  EXPECT_EQ(opts.window_sec, defaults.window_sec);
  EXPECT_EQ(opts.slide_sec, defaults.slide_sec);
  EXPECT_EQ(opts.queue, defaults.queue);
  EXPECT_EQ(opts.window_queue, defaults.window_queue);
  EXPECT_EQ(opts.len_closeness, defaults.len_closeness);
  EXPECT_EQ(opts.target_eps, defaults.target_eps);
  EXPECT_EQ(opts.EffectiveSlide(), defaults.window_sec);  // tumbling
}

TEST(StreamOptionsTest, FromEnvParsesAndClamps) {
  EnvVarGuard guard(AllStreamEnvVars());
  setenv("GEOTORCH_STREAM_WINDOW", "3600", 1);
  setenv("GEOTORCH_STREAM_SLIDE", "600", 1);
  setenv("GEOTORCH_STREAM_QUEUE", "0", 1);      // clamped to 1
  setenv("GEOTORCH_STREAM_CLOSENESS", "5", 1);
  setenv("GEOTORCH_STREAM_PERIOD", "-2", 1);    // clamped to 0
  setenv("GEOTORCH_STREAM_RATE", "25000", 1);
  setenv("GEOTORCH_STREAM_TIMEOUT_US", "junk", 1);  // ignored
  const stream::StreamOptions opts = stream::StreamOptions::FromEnv();
  EXPECT_EQ(opts.window_sec, 3600);
  EXPECT_EQ(opts.slide_sec, 600);
  EXPECT_EQ(opts.EffectiveSlide(), 600);
  EXPECT_EQ(opts.queue, 1);
  EXPECT_EQ(opts.len_closeness, 5);
  EXPECT_EQ(opts.len_period, 0);
  EXPECT_EQ(opts.target_eps, 25000);
  EXPECT_EQ(opts.predict_timeout_us, 0);
}

// --- TaxiEventStream --------------------------------------------------------

TEST(TaxiStreamTest, DeterministicGivenSeed) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 30.0;
  config.duration_sec = 600;
  config.tick_sec = 60;
  config.seed = 7;
  synth::TaxiEventStream a(config);
  synth::TaxiEventStream b(config);
  std::vector<synth::TripRecord> ea;
  std::vector<synth::TripRecord> eb;
  while (a.NextTick(&ea)) {
  }
  while (b.NextTick(&eb)) {
  }
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_GT(ea.size(), 0u);
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].lon, eb[i].lon);
    EXPECT_EQ(ea[i].lat, eb[i].lat);
    EXPECT_EQ(ea[i].time_sec, eb[i].time_sec);
    EXPECT_EQ(ea[i].is_pickup, eb[i].is_pickup);
  }
}

TEST(TaxiStreamTest, TicksOrderedAndBounded) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 40.0;
  config.duration_sec = 300;
  config.tick_sec = 30;
  config.seed = 3;
  synth::TaxiEventStream s(config);
  int64_t tick_start = 0;
  int64_t total = 0;
  std::vector<synth::TripRecord> tick;
  while (true) {
    tick.clear();
    if (!s.NextTick(&tick)) break;
    for (const auto& t : tick) {
      // Ordered ACROSS ticks: every event of this tick is within it.
      EXPECT_GE(t.time_sec, tick_start);
      EXPECT_LT(t.time_sec, tick_start + config.tick_sec);
      EXPECT_TRUE(config.extent.Contains({t.lon, t.lat}));
    }
    total += static_cast<int64_t>(tick.size());
    tick_start += config.tick_sec;
  }
  EXPECT_EQ(tick_start, config.duration_sec);
  EXPECT_EQ(total, s.events_emitted());
  EXPECT_GT(total, 0);
  // Exhausted stream stays exhausted and appends nothing.
  tick.clear();
  EXPECT_FALSE(s.NextTick(&tick));
  EXPECT_TRUE(tick.empty());
}

TEST(TaxiStreamTest, AdapterConvertsRecordsToEvents) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 20.0;
  config.duration_sec = 120;
  config.tick_sec = 60;
  config.seed = 11;
  stream::TaxiEventSource source(config);
  std::vector<stream::Event> events;
  while (source.NextTick(&events)) {
  }
  EXPECT_EQ(static_cast<int64_t>(events.size()),
            source.stream().events_emitted());
  for (const auto& e : events) {
    EXPECT_TRUE(config.extent.Contains({e.lon, e.lat}));
    EXPECT_EQ(e.ingest_ns, 0);  // stamped later, at ring admission
  }
}

// --- WindowAggregator -------------------------------------------------------

stream::WindowAggregator::Options AggOpts(int64_t window, int64_t slide) {
  stream::WindowAggregator::Options opts;
  opts.window_sec = window;
  opts.slide_sec = slide;
  return opts;
}

TEST(AggregatorTest, TumblingWindowCountsAndChannels) {
  spatial::GridPartitioner grid(UnitExtent(), 2, 2);
  stream::WindowAggregator agg(grid, AggOpts(10, 10));
  std::vector<stream::ClosedWindow> closed;
  // Cell ids: (0.25,0.25)->0, (0.75,0.25)->1, (0.25,0.75)->2.
  agg.Add(At(0.25, 0.25, 1, /*is_pickup=*/true), &closed);
  agg.Add(At(0.25, 0.25, 5, /*is_pickup=*/false), &closed);
  agg.Add(At(0.75, 0.25, 9, /*is_pickup=*/true), &closed);
  ASSERT_TRUE(closed.empty());
  agg.Add(At(0.25, 0.75, 10, /*is_pickup=*/true), &closed);  // closes [0,10)
  ASSERT_EQ(closed.size(), 1u);
  const stream::ClosedWindow& w = closed[0];
  EXPECT_EQ(w.window_id, 0);
  EXPECT_EQ(w.start_sec, 0);
  EXPECT_EQ(w.end_sec, 10);
  EXPECT_EQ(w.events, 3);
  EXPECT_FALSE(w.partial);
  ASSERT_EQ(w.frame.shape(), (ts::Shape{2, 2, 2}));
  const float* f = w.frame.data();
  EXPECT_EQ(f[0], 2.0f);  // counts: cell 0
  EXPECT_EQ(f[1], 1.0f);  // cell 1
  EXPECT_EQ(f[2], 0.0f);
  EXPECT_EQ(f[3], 0.0f);
  EXPECT_EQ(f[4], 1.0f);  // pickups: cell 0
  EXPECT_EQ(f[5], 1.0f);  // cell 1
  EXPECT_EQ(f[6], 0.0f);
  EXPECT_EQ(f[7], 0.0f);
}

TEST(AggregatorTest, EmitsEmptyIntermediateWindows) {
  spatial::GridPartitioner grid(UnitExtent(), 2, 2);
  stream::WindowAggregator agg(grid, AggOpts(10, 10));
  std::vector<stream::ClosedWindow> closed;
  agg.Add(At(0.5, 0.5, 3), &closed);
  // A jump to bucket 3 closes buckets 0, 1, 2 — 1 and 2 empty.
  agg.Add(At(0.5, 0.5, 35), &closed);
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].window_id, 0);
  EXPECT_EQ(closed[0].events, 1);
  EXPECT_EQ(closed[1].window_id, 1);
  EXPECT_EQ(closed[1].events, 0);
  EXPECT_EQ(closed[2].window_id, 2);
  EXPECT_EQ(closed[2].events, 0);
  for (int i = 1; i <= 2; ++i) {
    const float* f = closed[i].frame.data();
    for (int64_t j = 0; j < closed[i].frame.numel(); ++j) {
      EXPECT_EQ(f[j], 0.0f);
    }
    EXPECT_EQ(closed[i].last_ingest_ns, 0);
  }
}

TEST(AggregatorTest, LateAndOutsideEventsCountedAndDropped) {
  spatial::GridPartitioner grid(UnitExtent(), 2, 2);
  stream::WindowAggregator agg(grid, AggOpts(10, 10));
  std::vector<stream::ClosedWindow> closed;
  agg.Add(At(0.5, 0.5, 12), &closed);  // closes window 0
  ASSERT_EQ(closed.size(), 1u);
  closed.clear();
  agg.Add(At(0.5, 0.5, 4), &closed);  // behind the sealed window: late
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(agg.late_events(), 1);
  agg.Add(At(5.0, 5.0, 13), &closed);  // outside the extent
  EXPECT_EQ(agg.dropped_outside(), 1);
  agg.Flush(&closed);
  ASSERT_EQ(closed.size(), 1u);
  // Neither dropped event reached a cell: only the in-extent t=12
  // pickup is in the flushed frame (1 in the count channel + 1 in the
  // pickup channel) — exactly the rows the batch path's extent filter
  // keeps.
  EXPECT_EQ(ts::SumAll(closed[0].frame), 2.0f);
  EXPECT_EQ(closed[0].events, 1);
}

TEST(AggregatorTest, SlidingWindowSumsTrailingBuckets) {
  spatial::GridPartitioner grid(UnitExtent(), 1, 1);
  // window 30, slide 10: each window = last 3 buckets.
  stream::WindowAggregator agg(grid, AggOpts(30, 10));
  std::vector<stream::ClosedWindow> closed;
  agg.Add(At(0.5, 0.5, 5), &closed);    // bucket 0: 1 event
  agg.Add(At(0.5, 0.5, 15), &closed);   // bucket 1: 2 events
  agg.Add(At(0.5, 0.5, 16), &closed);
  agg.Add(At(0.5, 0.5, 25), &closed);   // bucket 2: 1 event
  agg.Add(At(0.5, 0.5, 35), &closed);   // bucket 3: 1 event
  agg.Flush(&closed);
  ASSERT_EQ(closed.size(), 4u);
  EXPECT_EQ(closed[0].frame.data()[0], 1.0f);  // [.. ,10): bucket 0
  EXPECT_EQ(closed[1].frame.data()[0], 3.0f);  // buckets 0+1
  EXPECT_EQ(closed[2].frame.data()[0], 4.0f);  // buckets 0+1+2
  EXPECT_EQ(closed[3].frame.data()[0], 4.0f);  // buckets 1+2+3
  EXPECT_EQ(closed[3].start_sec, 10);
  EXPECT_EQ(closed[3].end_sec, 40);
  EXPECT_TRUE(closed[3].partial);
}

TEST(AggregatorTest, FlushIsIdempotentAndOnlyClosesDirtyBuckets) {
  spatial::GridPartitioner grid(UnitExtent(), 2, 2);
  stream::WindowAggregator agg(grid, AggOpts(10, 10));
  std::vector<stream::ClosedWindow> closed;
  agg.Flush(&closed);  // nothing absorbed yet
  EXPECT_TRUE(closed.empty());
  agg.Add(At(0.5, 0.5, 2), &closed);
  agg.Flush(&closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed[0].partial);
  agg.Flush(&closed);  // idempotent between events
  EXPECT_EQ(closed.size(), 1u);
}

TEST(AggregatorTest, HotCellIndexTracksActiveSetAndRebuildsOnChangeOnly) {
  spatial::GridPartitioner grid(UnitExtent(), 4, 4);
  stream::WindowAggregator agg(grid, AggOpts(10, 10));
  std::vector<stream::ClosedWindow> closed;
  EXPECT_EQ(agg.HotCellIndex(), nullptr);  // before the first epoch

  // Window 0 activates cells 0 and 5.
  agg.Add(At(0.1, 0.1, 1), &closed);
  agg.Add(At(0.3, 0.3, 2), &closed);
  agg.Add(At(0.1, 0.1, 10), &closed);  // closes window 0
  auto index = agg.HotCellIndex();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 2);
  EXPECT_EQ(agg.active_cells(), 2);
  const int64_t rebuilds_after_first = agg.index_rebuilds();
  EXPECT_GE(rebuilds_after_first, 1);

  // The epoch tree is the same tree a from-scratch bulk-load over the
  // active cells produces.
  std::vector<spatial::StrTree::Entry> entries;
  for (int64_t cell : {int64_t{0}, int64_t{5}}) {
    entries.push_back({grid.CellEnvelope(cell), cell});
  }
  spatial::StrTree reference(entries, 10);
  EXPECT_TRUE(index->IdenticalTo(reference));

  // A query strictly inside cell 0 hits only cell 0 (the full cell
  // envelope would also touch neighbors at the shared corner).
  std::vector<int64_t> hits =
      index->Query(spatial::Envelope(0.05, 0.05, 0.2, 0.2));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0);

  // Window 1 has the SAME active set (only cell 0 carried the event at
  // t=10... plus one at cell 5) — same set, no rebuild.
  agg.Add(At(0.3, 0.3, 11), &closed);
  agg.Add(At(0.1, 0.1, 20), &closed);  // closes window 1, active {0,5}
  EXPECT_EQ(agg.index_rebuilds(), rebuilds_after_first);
  EXPECT_EQ(agg.HotCellIndex().get(), index.get());  // shared, not rebuilt

  // Window 2 activates a different set — epoch changes, tree rebuilt.
  agg.Add(At(0.9, 0.9, 30), &closed);  // closes window 2, active {0}
  EXPECT_EQ(agg.index_rebuilds(), rebuilds_after_first + 1);
  EXPECT_EQ(agg.HotCellIndex()->size(), 1);
}

// --- OnlinePredictor --------------------------------------------------------

// Fabricates the ClosedWindow stream the aggregator would emit for a
// given (T, 2, H, W) series.
std::vector<stream::ClosedWindow> WindowsOf(const ts::Tensor& st) {
  std::vector<stream::ClosedWindow> windows;
  const int64_t t_len = st.shape()[0];
  for (int64_t t = 0; t < t_len; ++t) {
    stream::ClosedWindow w;
    w.window_id = t;
    w.frame = ts::Slice(st, 0, t, t + 1)
                  .Reshape({st.shape()[1], st.shape()[2], st.shape()[3]});
    windows.push_back(w);
  }
  return windows;
}

ts::Tensor RandomSeries(int64_t t_len, int64_t h, int64_t w,
                        uint64_t seed) {
  ts::Tensor st = ts::Tensor::Zeros({t_len, 2, h, w});
  Rng rng(seed);
  float* d = st.data();
  for (int64_t i = 0; i < st.numel(); ++i) {
    d[i] = static_cast<float>(rng.UniformInt(0, 50));
  }
  return st;
}

TEST(PredictorTest, StacksMirrorGridDatasetPeriodicalRepresentation) {
  const int64_t steps_per_day = 4;
  const int64_t t_len = 2 * 7 * steps_per_day + 5;
  ts::Tensor st = RandomSeries(t_len, 3, 2, /*seed=*/17);

  datasets::GridDataset dataset(st, steps_per_day);
  dataset.SetPeriodicalRepresentation(/*len_closeness=*/3,
                                      /*len_period=*/2, /*len_trend=*/2);
  ASSERT_GT(dataset.Size(), 0);

  serve::Fleet fleet;  // never submitted to in this test
  stream::OnlinePredictor::Options opts;
  opts.model = "unused";
  opts.len_closeness = 3;
  opts.len_period = 2;
  opts.len_trend = 2;
  opts.steps_per_day = steps_per_day;
  stream::OnlinePredictor predictor(&fleet, opts);

  // Walk every target the dataset covers and compare bitwise.
  const int64_t first = 2 * 7 * steps_per_day;  // dataset FirstTarget
  std::vector<stream::ClosedWindow> windows = WindowsOf(st);
  for (int64_t t = 0; t < t_len; ++t) {
    data::Sample sample = predictor.AssembleAfter(windows[t]);
    const int64_t target = t + 1;
    if (target < first || target >= t_len) continue;
    data::Sample expected = dataset.Get(target - first);
    EXPECT_TRUE(SameBits(sample.x, expected.x)) << "target " << target;
    ASSERT_EQ(sample.extras.size(), expected.extras.size());
    for (size_t e = 0; e < sample.extras.size(); ++e) {
      EXPECT_TRUE(SameBits(sample.extras[e], expected.extras[e]))
          << "target " << target << " extra " << e;
    }
  }
}

TEST(PredictorTest, ZeroPadsMissingHistoryDuringWarmup) {
  serve::Fleet fleet;
  stream::OnlinePredictor::Options opts;
  opts.model = "unused";
  opts.len_closeness = 3;
  opts.steps_per_day = 4;
  stream::OnlinePredictor predictor(&fleet, opts);

  stream::ClosedWindow w;
  w.window_id = 0;
  w.frame = ts::Tensor::Full({2, 2, 2}, 7.0f);
  data::Sample sample = predictor.AssembleAfter(w);
  ASSERT_EQ(sample.x.shape(), (ts::Shape{6, 2, 2}));
  const float* d = sample.x.data();
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(d[i], 0.0f);  // padding
  for (int64_t i = 16; i < 24; ++i) EXPECT_EQ(d[i], 7.0f);  // window 0
}

// --- Pipeline ---------------------------------------------------------------

serve::FleetOptions FastFleet(int replicas) {
  serve::FleetOptions opts;
  opts.replicas = replicas;
  opts.engine.max_batch = 4;
  opts.engine.max_delay_us = 100;
  opts.engine.max_queue = 256;
  opts.engine.warmup_batches = 0;
  return opts;
}

serve::SnapshotFactory EchoFactory() {
  return [] {
    serve::ModelSnapshot snap;
    snap.forward = [](const data::Batch& batch) { return batch.x; };
    return snap;
  };
}

stream::StreamOptions SmallPipelineOptions() {
  stream::StreamOptions opts;
  opts.window_sec = 600;
  opts.slide_sec = 0;  // tumbling
  opts.queue = 1024;
  opts.window_queue = 8;
  opts.len_closeness = 3;
  opts.steps_per_day = 4;
  return opts;
}

TEST(PipelineTest, EndToEndLosslessDrainOnSourceEnd) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 20.0;
  config.duration_sec = 3600;
  config.tick_sec = 60;
  config.seed = 5;
  stream::TaxiEventSource source(config);

  const stream::StreamOptions opts = SmallPipelineOptions();
  spatial::GridPartitioner grid(config.extent, 4, 4);
  serve::Fleet fleet(FastFleet(2));
  ASSERT_TRUE(fleet
                  .AddModel("echo", EchoFactory(),
                            serve::SampleSpec{
                                {opts.len_closeness * 2, 4, 4}, {}})
                  .ok());

  stream::Pipeline pipeline(&source, &fleet, grid, "echo", opts);
  pipeline.Start();
  ASSERT_TRUE(pipeline.WaitFinished(30000));
  pipeline.Stop();

  const stream::PipelineStats stats = pipeline.stats();
  EXPECT_GT(stats.events_ingested, 0);
  // Every admitted event was aggregated.
  EXPECT_EQ(stats.events_processed, stats.events_ingested);
  // 3600s of events at 600s tumbling windows: 5 full closes plus the
  // final partial via drain Flush.
  EXPECT_EQ(stats.windows_closed, 6);
  // Lossless drain: every closed window got exactly one prediction.
  EXPECT_EQ(stats.windows_closed,
            stats.predictions_ok + stats.predictions_failed);
  EXPECT_EQ(stats.predictions_failed, 0);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.window_queue_depth, 0);
  EXPECT_EQ(stats.late_events, 0);
  EXPECT_GT(stats.active_cells, 0);
  EXPECT_GE(stats.index_rebuilds, 1);
  // Staleness was measured for every prediction.
  EXPECT_EQ(static_cast<int64_t>(
                pipeline.predictor().StalenessSamplesUs().size()),
            stats.windows_closed);
}

TEST(PipelineTest, StopMidStreamDrainsEverythingAdmitted) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 50.0;
  config.duration_sec = 365LL * 24 * 3600;  // effectively unbounded
  config.tick_sec = 60;
  config.seed = 9;
  stream::TaxiEventSource source(config);

  const stream::StreamOptions opts = SmallPipelineOptions();
  spatial::GridPartitioner grid(config.extent, 4, 4);
  serve::Fleet fleet(FastFleet(1));
  ASSERT_TRUE(fleet
                  .AddModel("echo", EchoFactory(),
                            serve::SampleSpec{
                                {opts.len_closeness * 2, 4, 4}, {}})
                  .ok());

  stream::Pipeline pipeline(&source, &fleet, grid, "echo", opts);
  pipeline.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pipeline.Stop();  // blocks until the drain completed

  const stream::PipelineStats stats = pipeline.stats();
  EXPECT_FALSE(pipeline.Finished());  // stopped, not exhausted
  EXPECT_EQ(stats.events_processed, stats.events_ingested);
  EXPECT_EQ(stats.windows_closed,
            stats.predictions_ok + stats.predictions_failed);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.window_queue_depth, 0);
}

TEST(PipelineTest, PredictionDeadlineBoundsStalenessWithoutLosingWindows) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 10.0;
  config.duration_sec = 2400;
  config.tick_sec = 60;
  config.seed = 13;
  stream::TaxiEventSource source(config);

  stream::StreamOptions opts = SmallPipelineOptions();
  opts.predict_timeout_us = 500;  // far below the forward's 20ms
  spatial::GridPartitioner grid(config.extent, 4, 4);

  serve::FleetOptions fleet_opts = FastFleet(1);
  fleet_opts.engine.max_batch = 1;
  serve::Fleet fleet(fleet_opts);
  auto slow_factory = [] {
    serve::ModelSnapshot snap;
    snap.forward = [](const data::Batch& batch) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return batch.x;
    };
    return snap;
  };
  ASSERT_TRUE(fleet
                  .AddModel("slow", slow_factory,
                            serve::SampleSpec{
                                {opts.len_closeness * 2, 4, 4}, {}})
                  .ok());

  stream::Pipeline pipeline(&source, &fleet, grid, "slow", opts);
  pipeline.Start();
  ASSERT_TRUE(pipeline.WaitFinished(30000));
  pipeline.Stop();

  const stream::PipelineStats stats = pipeline.stats();
  // Deadline expiries are failures the accounting still covers — the
  // drain loses no window even when the model cannot keep up.
  EXPECT_EQ(stats.windows_closed,
            stats.predictions_ok + stats.predictions_failed);
  EXPECT_GT(stats.predictions_failed, 0);
}

}  // namespace
