// End-to-end integration tests crossing module boundaries: the full
// paper workflow (raw events -> preprocessing -> tensor -> dataset ->
// model training -> metrics), plus trainer behaviours.

#include <gtest/gtest.h>

#include "baseline/geopandas_like.h"
#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "models/grid_models.h"
#include "models/trainer.h"
#include "prep/st_manager.h"
#include "synth/taxi.h"
#include "synth/weather.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "transforms/transforms.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;
namespace ds = ::geotorch::datasets;

TEST(EndToEndTest, TripsToTrainedModel) {
  // 1. Raw events.
  synth::TaxiTripConfig trip_config;
  trip_config.num_records = 20000;
  trip_config.duration_sec = 14 * 86400;
  trip_config.seed = 3;
  auto trips = synth::GenerateTaxiTrips(trip_config);

  // 2. Preprocessing module -> (T, 1, H, W) tensor.
  df::DataFrame raw = synth::TripsToDataFrame(trips, 3);
  df::DataFrame with_points =
      prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
  prep::StGridSpec spec;
  spec.partitions_x = 8;
  spec.partitions_y = 8;
  spec.step_duration_sec = 3600;
  prep::StGridResult result =
      prep::STManager::GetStGridDataFrame(with_points, spec);
  ts::Tensor st = prep::STManager::GetStGridTensor(result, {"count"});
  ASSERT_EQ(st.size(0), 14 * 24);
  ASSERT_EQ(static_cast<int64_t>(ts::SumAll(st)), 20000);

  // 3. Persist and reload.
  const std::string path = testing::TempDir() + "/e2e.gten";
  ASSERT_TRUE(ts::SaveTensor(path, st).ok());
  auto loaded = ts::LoadTensor(path);
  ASSERT_TRUE(loaded.ok());

  // 4. Dataset with the periodical representation; train DeepSTN+.
  ds::GridDataset dataset(std::move(*loaded), /*steps_per_day=*/24);
  dataset.MinMaxNormalize();
  dataset.SetPeriodicalRepresentation(3, 2, 1);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);

  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 8;
  mc.width = 8;
  mc.hidden = 8;
  models::DeepStnPlus model(mc);
  models::TrainConfig tc;
  tc.max_epochs = 8;
  tc.batch_size = 32;
  tc.lr = 5e-3f;
  models::RegressionResult run =
      models::TrainGridModel(model, train, val, test, tc);
  EXPECT_GT(run.epochs_run, 0);
  EXPECT_LT(run.mae, 0.3f);  // data in [0,1]; anything sane is << 0.3

  // 5. Trained model beats the all-zeros predictor on this sparse data.
  double zero_abs = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < test.Size(); ++i) {
    data::Sample s = test.Get(i);
    for (int64_t k = 0; k < s.y.numel(); ++k) {
      zero_abs += std::fabs(s.y.flat(k));
    }
    count += s.y.numel();
  }
  EXPECT_LT(run.mae, zero_abs / count);
}

TEST(EndToEndTest, PreprocessedEqualsBaselinePipeline) {
  synth::TaxiTripConfig config;
  config.num_records = 4000;
  config.duration_sec = 3 * 86400;
  config.seed = 9;
  auto trips = synth::GenerateTaxiTrips(config);

  ds::YellowTripConfig yt;
  yt.num_records = config.num_records;
  yt.duration_sec = config.duration_sec;
  yt.partitions_x = 12;
  yt.partitions_y = 16;
  yt.seed = config.seed;
  ds::GridDataset dataset = ds::MakeYellowTripNyc(yt);

  baseline::BaselineOptions options;
  options.partitions_x = 12;
  options.partitions_y = 16;
  options.step_duration_sec = 1800;
  baseline::BaselineOutcome outcome =
      baseline::GeoPandasLikePrepare(trips, options);
  ASSERT_FALSE(outcome.out_of_memory);
  EXPECT_TRUE(
      ts::AllClose(dataset.st_data(), outcome.st_tensor, 0.0f, 0.0f));
}

TEST(TrainerTest, CumulativeModeAlsoLearns) {
  ds::GridDataset dataset(
      synth::GenerateGridFlow(200, 1, 8, 8, 24, 6), 24);
  dataset.MinMaxNormalize();
  dataset.SetPeriodicalRepresentation(2, 1, 0);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);

  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 8;
  mc.width = 8;
  mc.len_closeness = 2;
  mc.len_period = 1;
  mc.len_trend = 0;
  mc.hidden = 8;

  models::TrainConfig tc;
  tc.max_epochs = 8;
  tc.batch_size = 16;
  tc.lr = 1e-2f;
  tc.cumulative = true;
  models::PeriodicalCnn model(mc);
  models::RegressionResult cumulative =
      models::TrainGridModel(model, train, val, test, tc);
  EXPECT_GT(cumulative.epochs_run, 0);
  // Cumulative training learns too (one update per epoch, so it needs
  // more epochs to match incremental — we only require sanity here).
  EXPECT_LT(cumulative.mae, 0.4f);
}

TEST(TrainerTest, EarlyStoppingLimitsEpochs) {
  // All-zero data: the model reaches (near-)zero loss within a few
  // epochs, after which improvements fall below min_delta and early
  // stopping must fire.
  ts::Tensor zeros = ts::Tensor::Zeros({60, 1, 4, 4});
  ds::GridDataset dataset(zeros, 24);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);

  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 4;
  mc.width = 4;
  mc.len_closeness = 1;
  mc.len_period = 0;
  mc.len_trend = 0;
  mc.hidden = 4;
  models::TrainConfig tc;
  tc.max_epochs = 50;
  tc.patience = 2;
  tc.min_delta = 1e-5f;
  tc.lr = 5e-2f;
  // Periodical representation with only closeness.
  ds::GridDataset* mutable_dataset = const_cast<ds::GridDataset*>(&dataset);
  mutable_dataset->SetPeriodicalRepresentation(1, 0, 0);

  models::PeriodicalCnn model(mc);
  models::RegressionResult run =
      models::TrainGridModel(model, train, val, test, tc);
  EXPECT_LT(run.epochs_run, 25) << "early stopping never triggered";
}

TEST(TransformIntegrationTest, OnTheFlyTransformChangesModelInput) {
  ds::RasterDatasetOptions options;
  options.transform = transforms::Compose(
      {transforms::AppendNormalizedDifferenceIndex(0, 1),
       transforms::MinMaxScale(0.0f, 1.0f)});
  ds::RasterClassificationDataset dataset = ds::MakeSat6(12, options);
  data::Sample s = dataset.Get(0);
  EXPECT_EQ(s.x.size(0), 5);
  EXPECT_GE(ts::MinAll(s.x), 0.0f);
  EXPECT_LE(ts::MaxAll(s.x), 1.0f);
}

TEST(CoarsenIntegrationTest, TrainingOnCoarsenedGridIsCheaper) {
  ts::Tensor fine =
      synth::GenerateGridFlow(100, 1, 16, 16, 24, 4);
  ts::Tensor coarse = prep::STManager::CoarsenGrid(fine, 2);
  EXPECT_EQ(coarse.size(2), 8);
  // Mass is conserved per frame.
  EXPECT_NEAR(ts::SumAll(coarse) / ts::SumAll(fine), 1.0f, 1e-4);
}

}  // namespace
}  // namespace geotorch
