// Out-of-core DataFrame layer: the GTDF partition file format
// (corruption safety byte by byte), spill + fault-in equivalence for
// every column type and every multi-partition operation, pin
// semantics, the resident budget bound, and chunked CSV ingest
// (DESIGN.md §12).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "df/csv.h"
#include "df/dataframe.h"
#include "df/gtdf.h"
#include "df/partition_store.h"
#include "prep/df_to_torch.h"
#include "tensor/tensor.h"

namespace geotorch::df {
namespace {

namespace fs = std::filesystem;

// Scopes a PartitionStore configuration: tiny budget + private spill
// directory on construction, previous options + directory cleanup on
// destruction. Frames under test must not outlive the fixture.
class ScopedSpillConfig {
 public:
  explicit ScopedSpillConfig(int64_t budget_bytes,
                             const std::string& dir = "gtdf_test_spill")
      : saved_(PartitionStore::Global().options()), dir_(dir) {
    PartitionStore::Options opts;
    opts.enabled = true;
    opts.resident_budget_bytes = budget_bytes;
    opts.spill_dir = dir_;
    PartitionStore::Global().Configure(opts);
  }
  ~ScopedSpillConfig() {
    PartitionStore::Global().Configure(saved_);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

 private:
  PartitionStore::Options saved_;
  std::string dir_;
};

std::vector<std::shared_ptr<const Column>> SampleColumns() {
  // Bit-pattern hazards on purpose: NaN, infinities, -0.0, denormal —
  // a round-trip must preserve them exactly, not just numerically.
  std::vector<double> doubles = {1.5,
                                 -0.0,
                                 std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(),
                                 std::numeric_limits<double>::denorm_min()};
  std::vector<int64_t> ints = {0,
                               -1,
                               std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(),
                               42,
                               7};
  std::vector<std::string> strings = {"", "a", "hello,world",
                                      std::string("embedded\0nul", 12),
                                      "line\nbreak", "日本語"};
  std::vector<spatial::Point> points = {{0.0, 0.0},   {1.5, -2.5},
                                        {-0.0, 0.25}, {1e300, -1e300},
                                        {3.25, 4.75}, {-1.0, 1.0}};
  std::vector<std::shared_ptr<const Column>> cols;
  cols.push_back(TrackColumn(Column::FromDoubles(std::move(doubles))));
  cols.push_back(TrackColumn(Column::FromInt64s(std::move(ints))));
  cols.push_back(TrackColumn(Column::FromStrings(std::move(strings))));
  cols.push_back(TrackColumn(Column::FromPoints(std::move(points))));
  return cols;
}

void ExpectBitwiseEqual(const Column& a, const Column& b) {
  ASSERT_EQ(a.type(), b.type());
  ASSERT_EQ(a.size(), b.size());
  switch (a.type()) {
    case DataType::kDouble:
      EXPECT_EQ(0, std::memcmp(a.doubles().data(), b.doubles().data(),
                               a.size() * sizeof(double)));
      break;
    case DataType::kInt64:
      EXPECT_EQ(0, std::memcmp(a.int64s().data(), b.int64s().data(),
                               a.size() * sizeof(int64_t)));
      break;
    case DataType::kString: {
      const auto sa = a.strings();
      const auto sb = b.strings();
      for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
      break;
    }
    case DataType::kGeometry:
      EXPECT_EQ(0, std::memcmp(a.points().data(), b.points().data(),
                               a.size() * sizeof(spatial::Point)));
      break;
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ------------------------------------------------------------- format

TEST(GtdfTest, RoundTripAllColumnTypesBitwise) {
  const std::string path = "gtdf_roundtrip.gtdf";
  auto cols = SampleColumns();
  ASSERT_TRUE(WriteGtdf(path, cols, 6).ok());

  auto loaded = ReadGtdf(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows, 6);
  ASSERT_EQ(loaded->columns.size(), cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    ExpectBitwiseEqual(*cols[i], loaded->columns[i]);
  }
  // Fixed-width columns come back as zero-copy views over the file
  // image; strings are materialized.
  EXPECT_TRUE(loaded->columns[0].is_view());
  EXPECT_TRUE(loaded->columns[1].is_view());
  EXPECT_FALSE(loaded->columns[2].is_view());
  EXPECT_TRUE(loaded->columns[3].is_view());
  std::remove(path.c_str());
}

TEST(GtdfTest, EmptyPartitionRoundTrips) {
  const std::string path = "gtdf_empty.gtdf";
  std::vector<std::shared_ptr<const Column>> cols;
  cols.push_back(TrackColumn(Column(DataType::kDouble)));
  cols.push_back(TrackColumn(Column(DataType::kString)));
  ASSERT_TRUE(WriteGtdf(path, cols, 0).ok());
  auto loaded = ReadGtdf(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows, 0);
  ASSERT_EQ(loaded->columns.size(), 2u);
  EXPECT_EQ(loaded->columns[0].size(), 0);
  std::remove(path.c_str());
}

TEST(GtdfTest, EveryPrefixTruncationFailsViaStatus) {
  const std::string path = "gtdf_trunc_src.gtdf";
  const std::string victim = "gtdf_trunc.gtdf";
  ASSERT_TRUE(WriteGtdf(path, SampleColumns(), 6).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 0u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(victim, bytes.substr(0, len));
    auto r = ReadGtdf(victim);
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes parsed";
  }
  // Sanity: the untruncated file still reads.
  WriteFileBytes(victim, bytes);
  EXPECT_TRUE(ReadGtdf(victim).ok());
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GtdfTest, EveryByteBitFlipFailsViaStatus) {
  const std::string path = "gtdf_flip_src.gtdf";
  const std::string victim = "gtdf_flip.gtdf";
  ASSERT_TRUE(WriteGtdf(path, SampleColumns(), 6).ok());
  const std::string bytes = ReadFileBytes(path);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteFileBytes(victim, corrupt);
    auto r = ReadGtdf(victim);
    EXPECT_FALSE(r.ok()) << "bit flip at byte " << pos << " parsed";
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GtdfTest, NewerVersionRejected) {
  const std::string path = "gtdf_version.gtdf";
  ASSERT_TRUE(WriteGtdf(path, SampleColumns(), 6).ok());
  std::string bytes = ReadFileBytes(path);
  // Bump the version field (offset 4) — the CRC no longer matches, but
  // even with a recomputed trailer a reader must refuse futures. Easiest
  // honest check: corrupt version alone fails (CRC), which still proves
  // no crash on a version from the future.
  bytes[4] = static_cast<char>(kGtdfVersion + 1);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ReadGtdf(path).ok());
  std::remove(path.c_str());
}

TEST(GtdfTest, MissingFileFailsViaStatus) {
  EXPECT_FALSE(ReadGtdf("no_such_file.gtdf").ok());
}

// ----------------------------------------------------- spill/fault-in

DataFrame BuildWideFrame(int64_t rows, int partitions) {
  std::vector<int64_t> ids(rows);
  std::vector<int64_t> groups(rows);
  std::vector<double> values(rows);
  std::vector<std::string> tags(rows);
  std::vector<spatial::Point> pts(rows);
  for (int64_t i = 0; i < rows; ++i) {
    ids[i] = i;
    groups[i] = i % 7;
    values[i] = static_cast<double>(i) * 0.5 - 3.0;
    tags[i] = "tag" + std::to_string(i % 13);
    pts[i] = {static_cast<double>(i % 10), static_cast<double>(i % 4)};
  }
  return DataFrame::FromColumns(
             {{"id", Column::FromInt64s(std::move(ids))},
              {"group", Column::FromInt64s(std::move(groups))},
              {"value", Column::FromDoubles(std::move(values))},
              {"tag", Column::FromStrings(std::move(tags))},
              {"pt", Column::FromPoints(std::move(pts))}})
      .Repartition(partitions);
}

TEST(PartitionSpillTest, SpillThenFaultInBitwiseIdentical) {
  ScopedSpillConfig config(1);  // evict everything evictable
  DataFrame frame = BuildWideFrame(257, 5);
  // Every partition except at most the pinned/admitted one is on disk.
  const PartitionStore::Stats stats = PartitionStore::Global().GetStats();
  EXPECT_GT(stats.spilled_partitions, 0);

  for (int pi = 0; pi < frame.num_partitions(); ++pi) {
    const Partition& part = frame.partition(pi);
    Partition::Pin pin(part);
    EXPECT_TRUE(part.resident());
    const auto ids = part.column(0).int64s();
    const auto values = part.column(2).doubles();
    const auto tags = part.column(3).strings();
    const auto pts = part.column(4).points();
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      const int64_t id = ids[r];
      EXPECT_EQ(values[r], static_cast<double>(id) * 0.5 - 3.0);
      EXPECT_EQ(tags[r], "tag" + std::to_string(id % 13));
      EXPECT_EQ(pts[r].x, static_cast<double>(id % 10));
    }
  }
  EXPECT_GT(PartitionStore::Global().GetStats().fault_count, 0);
}

TEST(PartitionSpillTest, OpsMatchInMemoryResults) {
  // In-memory reference (no budget => nothing spills).
  std::vector<int64_t> ref_group_counts;
  std::vector<double> ref_group_sums;
  std::vector<int64_t> ref_join_ids;
  std::vector<int64_t> ref_sorted_ids;
  {
    DataFrame frame = BuildWideFrame(401, 4);
    DataFrame right = DataFrame::FromColumns(
        {{"group", Column::FromInt64s({0, 1, 2, 3, 4, 5, 6})},
         {"weight", Column::FromDoubles({1, 2, 3, 4, 5, 6, 7})}});
    DataFrame grouped =
        frame
            .GroupByAgg({"group"}, {{AggKind::kCount, "", "n"},
                                    {AggKind::kSum, "value", "sum"}})
            .SortByInt64("group");
    ref_group_counts = grouped.CollectInt64("n");
    ref_group_sums = grouped.CollectDouble("sum");
    DataFrame joined =
        frame.JoinInner(right, "group", "group").SortByInt64("id");
    ref_join_ids = joined.CollectInt64("id");
    ref_sorted_ids = frame.SortByInt64("id").CollectInt64("id");
  }

  // Same pipeline under a tiny budget: partitions spill and fault
  // continuously; results must be identical.
  ScopedSpillConfig config(1);
  DataFrame frame = BuildWideFrame(401, 4);
  DataFrame right = DataFrame::FromColumns(
      {{"group", Column::FromInt64s({0, 1, 2, 3, 4, 5, 6})},
       {"weight", Column::FromDoubles({1, 2, 3, 4, 5, 6, 7})}});
  DataFrame grouped =
      frame
          .GroupByAgg({"group"}, {{AggKind::kCount, "", "n"},
                                  {AggKind::kSum, "value", "sum"}})
          .SortByInt64("group");
  EXPECT_EQ(grouped.CollectInt64("n"), ref_group_counts);
  EXPECT_EQ(grouped.CollectDouble("sum"), ref_group_sums);
  DataFrame joined =
      frame.JoinInner(right, "group", "group").SortByInt64("id");
  EXPECT_EQ(joined.CollectInt64("id"), ref_join_ids);
  EXPECT_EQ(frame.SortByInt64("id").CollectInt64("id"), ref_sorted_ids);
  EXPECT_GT(PartitionStore::Global().GetStats().spill_count, 0);
}

TEST(PartitionSpillTest, FilterAndDfToTorchMatchInMemory) {
  std::vector<float> ref;
  {
    DataFrame frame = BuildWideFrame(199, 3);
    prep::DfToTorch::Options opts;
    opts.feature_columns = {"value", "group"};
    opts.label_column = "id";
    opts.batch_size = 64;
    prep::DfToTorch conv(frame, opts);
    tensor::Tensor x, y;
    while (conv.NextBatch(&x, &y)) {
      ref.insert(ref.end(), x.data(), x.data() + x.numel());
    }
    ASSERT_FALSE(ref.empty());
  }
  ScopedSpillConfig config(1);
  DataFrame frame = BuildWideFrame(199, 3);
  const int value_idx = frame.schema().FieldIndex("value");
  DataFrame filtered = frame.Filter([value_idx](const RowView& row) {
    return row.GetDouble(value_idx) >= -1e9;  // keep all, exercise path
  });
  EXPECT_EQ(filtered.NumRows(), frame.NumRows());
  prep::DfToTorch::Options opts;
  opts.feature_columns = {"value", "group"};
  opts.label_column = "id";
  opts.batch_size = 64;
  prep::DfToTorch conv(frame, opts);
  std::vector<float> got;
  tensor::Tensor x, y;
  while (conv.NextBatch(&x, &y)) {
    got.insert(got.end(), x.data(), x.data() + x.numel());
  }
  EXPECT_EQ(got, ref);
}

// --------------------------------------------------- store semantics

TEST(PartitionSpillTest, PinBlocksEviction) {
  ScopedSpillConfig config(1);
  DataFrame frame = BuildWideFrame(300, 3);
  const Partition& pinned = frame.partition(0);
  Partition::Pin pin(pinned);
  EXPECT_TRUE(pinned.resident());
  // Creating more partitions forces the sweep well past the budget; the
  // pinned partition must survive every eviction round.
  DataFrame churn = BuildWideFrame(300, 6);
  EXPECT_TRUE(pinned.resident());
  // Its data is readable without a fault (columns were never dropped).
  EXPECT_EQ(pinned.column(0).int64s().size(),
            static_cast<size_t>(pinned.num_rows()));
}

TEST(PartitionSpillTest, BudgetBoundsPeakResident) {
  const int64_t budget = 64 << 10;  // 64 KB
  ScopedSpillConfig config(budget);
  DataFrame frame = BuildWideFrame(4001, 8);
  // Measure one partition's footprint while it is faulted in.
  int64_t per_part = 0;
  {
    Partition::Pin pin(frame.partition(0));
    per_part = frame.partition(0).ByteSize();
  }
  ASSERT_GT(per_part, 0);
  // Frame construction routes through one big single-partition source
  // (which legitimately exceeds the budget while pinned), so the
  // acceptance window starts after it: from here on, peak resident must
  // stay within budget + the partitions workers may pin concurrently
  // (one input and one output each), per the ±1-partition allowance.
  // (SortByInt64 is excluded on purpose: it materializes into a single
  // partition and pins every input, so it is inherently whole-dataset.)
  PartitionStore::Global().ResetPeak();
  DataFrame grouped =
      frame.GroupByAgg({"group"}, {{AggKind::kSum, "value", "sum"}});
  const PartitionStore::Stats stats = PartitionStore::Global().GetStats();
  const int64_t workers = static_cast<int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const int64_t bound = budget + (2 * workers + 2) * per_part + (64 << 10);
  EXPECT_GT(stats.spill_count, 0);
  EXPECT_LE(stats.peak_resident_bytes, bound)
      << "per_part=" << per_part << " workers=" << workers;
}

TEST(PartitionSpillTest, ReEvictionReusesSpillFile) {
  ScopedSpillConfig config(1);
  DataFrame frame = BuildWideFrame(300, 2);
  // Warm-up: cycle both partitions once so each has been spilled at
  // least once (the partition admitted last during construction may
  // still be resident with no spill file yet).
  { Partition::Pin pin(frame.partition(0)); }
  { Partition::Pin pin(frame.partition(1)); }
  { Partition::Pin pin(frame.partition(0)); }
  const PartitionStore::Stats s0 = PartitionStore::Global().GetStats();
  // Cycle them again: every eviction from here on reuses the file.
  for (int round = 0; round < 2; ++round) {
    { Partition::Pin pin(frame.partition(1)); }
    { Partition::Pin pin(frame.partition(0)); }
  }
  const PartitionStore::Stats s1 = PartitionStore::Global().GetStats();
  EXPECT_GT(s1.fault_count, s0.fault_count);
  // Re-evictions rewrite nothing: columns are immutable, so the spill
  // bytes counter only grows on first-time spills.
  EXPECT_EQ(s1.spill_bytes, s0.spill_bytes);
}

TEST(PartitionSpillTest, DisabledStoreBehavesLikeRamResident) {
  PartitionStore::Options saved = PartitionStore::Global().options();
  PartitionStore::Options opts;
  opts.enabled = false;
  opts.resident_budget_bytes = 1;  // would evict everything if enabled
  PartitionStore::Global().Configure(opts);
  {
    DataFrame frame = BuildWideFrame(100, 4);
    EXPECT_TRUE(frame.partition(0).resident());
    EXPECT_GT(frame.ByteSize(), 0);
    EXPECT_EQ(frame.SortByInt64("id").CollectInt64("id").size(), 100u);
  }
  PartitionStore::Global().Configure(saved);
}

TEST(PartitionStoreTest, FromEnvParsesKnobs) {
  setenv("GEOTORCH_DF_SPILL", "0", 1);
  setenv("GEOTORCH_DF_RESIDENT_MB", "3", 1);
  setenv("GEOTORCH_DF_SPILL_DIR", "env_spill_dir", 1);
  PartitionStore::Options opts = PartitionStore::Options::FromEnv();
  EXPECT_FALSE(opts.enabled);
  EXPECT_EQ(opts.resident_budget_bytes, 3LL << 20);
  EXPECT_EQ(opts.spill_dir, "env_spill_dir");
  unsetenv("GEOTORCH_DF_SPILL");
  unsetenv("GEOTORCH_DF_RESIDENT_MB");
  unsetenv("GEOTORCH_DF_SPILL_DIR");
  opts = PartitionStore::Options::FromEnv();
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.resident_budget_bytes,
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(opts.spill_dir, "geotorch_spill");
}

// ------------------------------------------------------- chunked CSV

TEST(CsvChunkedTest, ChunkedReadMatchesSinglePartition) {
  const std::string path = "gtdf_chunked.csv";
  DataFrame frame = BuildWideFrame(53, 1);
  ASSERT_TRUE(WriteCsv(frame, path).ok());
  const Schema& schema = frame.schema();

  auto whole = ReadCsv(path, schema);
  ASSERT_TRUE(whole.ok());
  CsvReadOptions opts;
  opts.rows_per_partition = 10;
  auto chunked = ReadCsv(path, schema, opts);
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(chunked->num_partitions(), 6);  // ceil(53 / 10)
  EXPECT_EQ(chunked->NumRows(), 53);
  EXPECT_EQ(chunked->CollectInt64("id"), whole->CollectInt64("id"));
  EXPECT_EQ(chunked->CollectDouble("value"), whole->CollectDouble("value"));
  std::remove(path.c_str());
}

TEST(CsvChunkedTest, ChunkedIngestSpillsUnderBudget) {
  const std::string path = "gtdf_chunked_spill.csv";
  {
    DataFrame frame = BuildWideFrame(500, 1);
    ASSERT_TRUE(WriteCsv(frame, path).ok());
  }
  ScopedSpillConfig config(1 << 10);  // 1 KB: far below the data
  const PartitionStore::Stats before = PartitionStore::Global().GetStats();
  Schema schema({{"id", DataType::kInt64},
                 {"group", DataType::kInt64},
                 {"value", DataType::kDouble},
                 {"tag", DataType::kString},
                 {"pt", DataType::kGeometry}});
  CsvReadOptions opts;
  opts.rows_per_partition = 50;
  auto frame = ReadCsv(path, schema, opts);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->NumRows(), 500);
  // Ingest itself spilled: completed chunks were evicted while later
  // chunks were still parsing.
  const PartitionStore::Stats after = PartitionStore::Global().GetStats();
  EXPECT_GT(after.spill_count, before.spill_count);
  // And the data survives the round trip through disk.
  std::vector<int64_t> ids = frame->CollectInt64("id");
  std::sort(ids.begin(), ids.end());
  for (int64_t i = 0; i < 500; ++i) EXPECT_EQ(ids[i], i);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geotorch::df
