// ThreadSanitizer stress for the out-of-core DataFrame layer: reader
// threads pinning and scanning partitions race budget-driven evictions
// triggered by other threads' admissions, plus frame destruction racing
// in-flight spills (the Unregister/evicting_ handshake). Compiled as a
// minimal-source recompile so TSan instruments the store and partition
// code itself (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "df/dataframe.h"
#include "df/partition_store.h"

namespace geotorch::df {
namespace {

constexpr const char* kSpillDir = "gtdf_tsan_spill";

class DfSpillTsanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = PartitionStore::Global().options();
    PartitionStore::Options opts;
    opts.enabled = true;
    opts.resident_budget_bytes = 16 << 10;  // 16 KB: constant churn
    opts.spill_dir = kSpillDir;
    PartitionStore::Global().Configure(opts);
  }
  void TearDown() override {
    PartitionStore::Global().Configure(saved_);
    std::error_code ec;
    std::filesystem::remove_all(kSpillDir, ec);
  }

 private:
  PartitionStore::Options saved_;
};

DataFrame MakeFrame(int64_t rows, int partitions, int64_t salt) {
  std::vector<int64_t> ids(rows);
  std::vector<double> values(rows);
  for (int64_t i = 0; i < rows; ++i) {
    ids[i] = i + salt;
    values[i] = static_cast<double>(i + salt) * 0.25;
  }
  return DataFrame::FromColumns(
             {{"id", Column::FromInt64s(std::move(ids))},
              {"value", Column::FromDoubles(std::move(values))}})
      .Repartition(partitions);
}

int64_t ExpectedIdSum(int64_t rows, int64_t salt) {
  return rows * (rows - 1) / 2 + rows * salt;
}

// Reader threads pin and scan a shared frame while a churn thread keeps
// admitting fresh partitions, forcing the store to evict the readers'
// partitions between (never during) their pins.
TEST_F(DfSpillTsanTest, ReadersRaceEviction) {
  constexpr int64_t kRows = 600;
  constexpr int kPartitions = 6;
  DataFrame frame = MakeFrame(kRows, kPartitions, 0);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> errors{0};

  std::thread churn([&] {
    for (int64_t salt = 1; !stop.load(std::memory_order_relaxed); ++salt) {
      DataFrame junk = MakeFrame(200, 2, salt * 1000);
      if (junk.NumRows() != 200) errors.fetch_add(1);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 40; ++iter) {
        int64_t sum = 0;
        for (int pi = 0; pi < kPartitions; ++pi) {
          const Partition& part =
              frame.partition((pi + t) % kPartitions);
          Partition::Pin pin(part);
          const auto ids = part.column(0).int64s();
          for (int64_t v : ids) sum += v;
        }
        if (sum != ExpectedIdSum(kRows, 0)) errors.fetch_add(1);
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(PartitionStore::Global().GetStats().fault_count, 0);
}

// ForEachPartition (pool-parallel, auto-pinning) from several client
// threads over one frame, racing the same churn-driven evictions.
TEST_F(DfSpillTsanTest, ParallelScansRaceEviction) {
  constexpr int64_t kRows = 500;
  DataFrame frame = MakeFrame(kRows, 5, 7);

  std::atomic<int64_t> errors{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      for (int iter = 0; iter < 20; ++iter) {
        std::atomic<int64_t> sum{0};
        frame.ForEachPartition([&](const Partition& part, int) {
          int64_t local = 0;
          for (int64_t v : part.column(0).int64s()) local += v;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
        if (sum.load() != ExpectedIdSum(kRows, 7)) errors.fetch_add(1);
        DataFrame junk = MakeFrame(150, 2, iter * 31 + 1);
        (void)junk;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(errors.load(), 0);
}

// Frames created and destroyed concurrently on every thread: each
// destruction can race another thread's EnforceBudget that has just
// selected one of the dying partitions as a victim — the Unregister
// handshake must make that safe.
TEST_F(DfSpillTsanTest, DestructionRacesEviction) {
  std::atomic<int64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 30; ++iter) {
        const int64_t salt = t * 10000 + iter * 100;
        DataFrame frame = MakeFrame(300, 3, salt);
        int64_t sum = 0;
        for (int pi = 0; pi < frame.num_partitions(); ++pi) {
          const Partition& part = frame.partition(pi);
          Partition::Pin pin(part);
          for (int64_t v : part.column(0).int64s()) sum += v;
        }
        if (sum != ExpectedIdSum(300, salt)) errors.fetch_add(1);
        // frame dies here, possibly mid-eviction.
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  const PartitionStore::Stats stats = PartitionStore::Global().GetStats();
  EXPECT_GT(stats.spill_count, 0);
}

}  // namespace
}  // namespace geotorch::df
