// Fused eval-path execution (DESIGN.md §13): GEMM bias+activation
// epilogues, the im2col-free direct conv kernels, BatchNorm folding
// into the preceding Conv2d, version-keyed cache invalidation, and the
// GEOTORCH_FUSION kill switch. The load-bearing contract: on models
// without BatchNorm the fused path is BITWISE identical to the unfused
// one (the epilogue replays the same per-element formulas in the same
// order), while BN folding — an algebraic reassociation — stays within
// a small relative bound of the unfused eval.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"
#include "nn/layers.h"
#include "nn/precision.h"
#include "obs/obs.h"
#include "tensor/conv.h"
#include "tensor/device.h"
#include "tensor/fusion.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace nn = ::geotorch::nn;
namespace ts = ::geotorch::tensor;

ts::Tensor RandomTensor(std::initializer_list<int64_t> shape, uint64_t seed,
                        float lo = -1.5f, float hi = 1.5f) {
  ts::Tensor t = ts::Tensor::Uninitialized(shape);
  geotorch::Rng rng(seed);
  for (int64_t i = 0; i < t.numel(); ++i)
    t.flat(i) = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

std::vector<uint32_t> BitsOf(const ts::Tensor& t) {
  std::vector<uint32_t> bits(t.numel());
  std::memcpy(bits.data(), t.data(), t.numel() * sizeof(float));
  return bits;
}

double MaxRelDiff(const ts::Tensor& a, const ts::Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  double worst = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double denom = std::max(1e-3, std::fabs(double(a.flat(i))));
    worst = std::max(worst, std::fabs(double(a.flat(i)) - b.flat(i)) / denom);
  }
  return worst;
}

// RAII toggle so a failing assertion can't leave fusion disabled for
// the rest of the suite.
struct FusionGuard {
  explicit FusionGuard(bool on) : prev(ts::FusionEnabled()) {
    ts::SetFusionEnabled(on);
  }
  ~FusionGuard() { ts::SetFusionEnabled(prev); }
  bool prev;
};

// --- kernel level -----------------------------------------------------------

// The fused conv (direct kernel, implicit gather, or materialize +
// epilogue depending on shape) must be bitwise identical to the unfused
// conv followed by separate bias and activation passes.
TEST(FusionTest, ConvFusedBitwiseMatchesUnfusedF32) {
  struct Case {
    int64_t n, c, f, hw, k, stride, pad;
  };
  const Case cases[] = {
      {2, 4, 16, 28, 3, 1, 1},   // SatCNN stage 1 (direct kernel)
      {1, 32, 32, 7, 3, 1, 1},   // ck=288: two K blocks in the chain
      {2, 3, 8, 9, 3, 2, 1},     // strided: gather / materialize path
      {2, 8, 16, 14, 1, 1, 0},   // 1x1: plain GEMM on the input plane
      {1, 2, 4, 5, 3, 1, 0},     // tiny: reference fallback
  };
  for (const Case& cs : cases) {
    SCOPED_TRACE("c=" + std::to_string(cs.c) + " f=" + std::to_string(cs.f) +
                 " hw=" + std::to_string(cs.hw) + " k=" + std::to_string(cs.k));
    const ts::Tensor x = RandomTensor({cs.n, cs.c, cs.hw, cs.hw}, 7 * cs.c);
    const ts::Tensor w =
        RandomTensor({cs.f, cs.c, cs.k, cs.k}, 11 * cs.f, -0.5f, 0.5f);
    const ts::Tensor bias = RandomTensor({cs.f}, 13, -0.2f, 0.2f);
    const ts::ConvSpec spec{cs.stride, cs.pad};
    ts::Tensor ref = ts::Conv2dForward(x, w, bias, spec);
    for (int64_t i = 0; i < ref.numel(); ++i) {
      const float v = ref.flat(i);
      ref.flat(i) = v > 0.0f ? v : 0.0f;  // the ops.cc Relu formula
    }
    const ts::Tensor fused =
        ts::Conv2dForwardFused(x, w, bias, spec, ts::EpilogueAct::kRelu, 0.01f);
    EXPECT_EQ(BitsOf(ref), BitsOf(fused));
  }
}

// Epilogue steps (row bias, col bias, activation) each run as their own
// pass over a row segment, so they match full-tensor separate passes
// bitwise — for every activation and on both the reference and blocked
// GEMM paths.
TEST(FusionTest, GemmEpilogueMatchesSeparatePasses) {
  for (const auto act : {ts::EpilogueAct::kRelu, ts::EpilogueAct::kLeakyRelu,
                         ts::EpilogueAct::kSigmoid}) {
    for (const auto [m, k, n] :
         {std::array<int64_t, 3>{5, 7, 9},        // reference path
          std::array<int64_t, 3>{64, 96, 128}}) { // blocked path
      const ts::Tensor a = RandomTensor({m, k}, 3);
      const ts::Tensor b = RandomTensor({k, n}, 5);
      const ts::Tensor row_bias = RandomTensor({m}, 17, -0.3f, 0.3f);
      const ts::Tensor col_bias = RandomTensor({n}, 19, -0.3f, 0.3f);
      ts::Tensor ref = ts::Tensor::Uninitialized({m, n});
      ts::Gemm(a.data(), b.data(), ref.data(), m, k, n, {.beta = 0.0f});
      for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) ref.flat(i * n + j) += row_bias.flat(i);
      for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) ref.flat(i * n + j) += col_bias.flat(j);
      for (int64_t i = 0; i < ref.numel(); ++i) {
        const float x = ref.flat(i);
        switch (act) {
          case ts::EpilogueAct::kRelu:
            ref.flat(i) = x > 0.0f ? x : 0.0f;
            break;
          case ts::EpilogueAct::kLeakyRelu:
            ref.flat(i) = x > 0.0f ? x : 0.125f * x;
            break;
          case ts::EpilogueAct::kSigmoid:
            ref.flat(i) = 1.0f / (1.0f + std::exp(-x));
            break;
          default:
            break;
        }
      }
      ts::GemmEpilogue ep;
      ep.row_bias = row_bias.data();
      ep.col_bias = col_bias.data();
      ep.act = act;
      ep.leaky_slope = 0.125f;
      ts::GemmOptions opts;
      opts.beta = 0.0f;
      opts.epilogue = &ep;
      ts::Tensor fused = ts::Tensor::Uninitialized({m, n});
      ts::Gemm(a.data(), b.data(), fused.data(), m, k, n, opts);
      EXPECT_EQ(BitsOf(ref), BitsOf(fused))
          << "act=" << int(act) << " m=" << m << " n=" << n;
    }
  }
}

// --- module level -----------------------------------------------------------

std::unique_ptr<nn::Sequential> MakeConvStack(bool with_bn, uint64_t seed) {
  geotorch::Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->Add(std::make_unique<nn::Conv2d>(3, 8, 3, rng, 1, 1));
  if (with_bn) seq->Add(std::make_unique<nn::BatchNorm2d>(8));
  seq->Add(std::make_unique<nn::ReluLayer>());
  seq->Add(std::make_unique<nn::Conv2d>(8, 8, 3, rng, 1, 1));
  seq->Add(std::make_unique<nn::LeakyReluLayer>(0.1f));
  return seq;
}

// Runs a few training forwards so BatchNorm's running stats move off
// their init values, then switches to eval.
void WarmStats(nn::Sequential& seq, const ts::Tensor& x) {
  seq.SetTraining(true);
  for (int step = 0; step < 3; ++step) {
    ag::Variable in(RandomTensor({x.size(0), 3, 10, 10}, 100 + step));
    (void)seq.Forward(in);
  }
  seq.SetTraining(false);
}

TEST(FusionTest, SequentialWithoutBnFusedIsBitwise) {
  auto seq = MakeConvStack(/*with_bn=*/false, 42);
  seq->SetTraining(false);
  ag::NoGradGuard no_grad;
  const ts::Tensor x = RandomTensor({2, 3, 10, 10}, 9);
  ts::Tensor off, on;
  {
    FusionGuard g(false);
    off = seq->Forward(ag::Variable(x)).value();
  }
  {
    FusionGuard g(true);
    on = seq->Forward(ag::Variable(x)).value();
  }
  EXPECT_EQ(BitsOf(off), BitsOf(on));
}

TEST(FusionTest, BnFoldStaysWithinRelativeBound) {
  auto seq = MakeConvStack(/*with_bn=*/true, 43);
  const ts::Tensor x = RandomTensor({2, 3, 10, 10}, 9);
  WarmStats(*seq, x);
  ag::NoGradGuard no_grad;
  ts::Tensor off, on;
  {
    FusionGuard g(false);
    off = seq->Forward(ag::Variable(x)).value();
  }
  {
    FusionGuard g(true);
    on = seq->Forward(ag::Variable(x)).value();
  }
  // Folding reassociates (conv ∘ affine) into one conv — not bitwise,
  // but tightly bounded.
  EXPECT_LT(MaxRelDiff(off, on), 1e-3);
}

TEST(FusionTest, EligibilityGate) {
  auto seq = MakeConvStack(/*with_bn=*/false, 44);
  FusionGuard g(true);
  seq->SetTraining(false);
  {
    ag::NoGradGuard no_grad;
    EXPECT_TRUE(nn::FusedEvalEligible(*seq));
    ts::SetFusionEnabled(false);  // the kill switch wins over everything
    EXPECT_FALSE(nn::FusedEvalEligible(*seq));
    ts::SetFusionEnabled(true);
    seq->SetCalibrating(true);
    EXPECT_FALSE(nn::FusedEvalEligible(*seq));
    seq->SetCalibrating(false);
  }
  EXPECT_FALSE(nn::FusedEvalEligible(*seq));  // grads enabled
  seq->SetTraining(true);
  ag::NoGradGuard no_grad;
  EXPECT_FALSE(nn::FusedEvalEligible(*seq));  // training mode
}

// LoadNamedParameter must land on the owning module and bump its state
// version, so the folded-weight snapshot rebuilds instead of serving
// stale weights.
TEST(FusionTest, FoldedCacheInvalidatedOnParameterLoad) {
  auto seq = MakeConvStack(/*with_bn=*/true, 45);
  const ts::Tensor x = RandomTensor({2, 3, 10, 10}, 9);
  WarmStats(*seq, x);
  ag::NoGradGuard no_grad;
  FusionGuard g(true);
  const ts::Tensor y1 = seq->Forward(ag::Variable(x)).value();  // builds cache
  const ts::Tensor neww = RandomTensor({8, 3, 3, 3}, 77, -0.4f, 0.4f);
  ASSERT_TRUE(seq->LoadNamedParameter("layer0.weight", neww).ok());
  const ts::Tensor y2 = seq->Forward(ag::Variable(x)).value();
  EXPECT_NE(BitsOf(y1), BitsOf(y2));  // stale cache would reproduce y1
  ts::SetFusionEnabled(false);
  const ts::Tensor y2_ref = seq->Forward(ag::Variable(x)).value();
  EXPECT_LT(MaxRelDiff(y2_ref, y2), 1e-3);
}

// Running-stat EMA updates during training must invalidate both the BN
// eval cache and the downstream folded conv weights.
TEST(FusionTest, BnCacheInvalidatedByTrainingStats) {
  auto seq = MakeConvStack(/*with_bn=*/true, 46);
  const ts::Tensor x = RandomTensor({2, 3, 10, 10}, 9);
  WarmStats(*seq, x);
  FusionGuard g(true);
  ts::Tensor y1;
  {
    ag::NoGradGuard no_grad;
    y1 = seq->Forward(ag::Variable(x)).value();
  }
  WarmStats(*seq, x);  // more EMA updates -> new stats
  ag::NoGradGuard no_grad;
  const ts::Tensor y2 = seq->Forward(ag::Variable(x)).value();
  EXPECT_NE(BitsOf(y1), BitsOf(y2));
  ts::SetFusionEnabled(false);
  const ts::Tensor y2_ref = seq->Forward(ag::Variable(x)).value();
  EXPECT_LT(MaxRelDiff(y2_ref, y2), 1e-3);
}

// Low-precision fused eval must match the unfused low-precision eval
// bitwise: the epilogue's dequant + bias + activation replays the same
// scalar formulas the separate passes apply.
TEST(FusionTest, LowPrecisionFusedIsBitwise) {
  for (const auto prec : {nn::Precision::kBf16, nn::Precision::kInt8}) {
    geotorch::Rng rng(47);
    nn::Sequential seq;
    seq.Add(std::make_unique<nn::Conv2d>(4, 12, 3, rng, 1, 1));
    seq.Add(std::make_unique<nn::ReluLayer>());
    seq.SetTraining(false);
    seq.SetPrecision(prec);
    ag::NoGradGuard no_grad;
    const ts::Tensor x = RandomTensor({2, 4, 12, 12}, 21);
    ts::Tensor off, on;
    {
      FusionGuard g(false);
      off = seq.Forward(ag::Variable(x)).value();
    }
    {
      FusionGuard g(true);
      on = seq.Forward(ag::Variable(x)).value();
    }
    EXPECT_EQ(BitsOf(off), BitsOf(on)) << "precision=" << int(prec);
  }
}

// The observability counters that make the fused paths visible.
TEST(FusionTest, ObsCountersTrackFusedPaths) {
  const bool was_on = geotorch::obs::Enabled();
  geotorch::obs::SetEnabled(true);
  geotorch::obs::Reset();
  const ts::Tensor x = RandomTensor({1, 8, 16, 16}, 23);
  const ts::Tensor w1 = RandomTensor({16, 8, 1, 1}, 25, -0.5f, 0.5f);
  const ts::Tensor w3 = RandomTensor({16, 8, 3, 3}, 27, -0.5f, 0.5f);
  const ts::Tensor bias;
  (void)ts::Conv2dForwardFused(x, w1, bias, {1, 0}, ts::EpilogueAct::kNone, 0.01f);
  (void)ts::Conv2dForwardFused(x, w3, bias, {1, 1}, ts::EpilogueAct::kRelu, 0.01f);
  int64_t one_by_one = 0, direct = 0, calls = 0;
  for (const auto& [name, v] : geotorch::obs::CounterValues()) {
    if (name == "fusion.conv_1x1") one_by_one = v;
    if (name == "gemm.path.conv_direct") direct = v;
    if (name == "fusion.conv_calls") calls = v;
  }
  EXPECT_EQ(one_by_one, 1);
  EXPECT_GE(direct, 1);  // the 3x3 stride-1 conv takes the direct kernel
  EXPECT_EQ(calls, 2);
  geotorch::obs::Reset();
  geotorch::obs::SetEnabled(was_on);
}

}  // namespace
