// Property-based (parameterized) tests: each suite sweeps a parameter
// space and checks an invariant against an independent reference
// implementation.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "datasets/grid_dataset.h"
#include "df/dataframe.h"
#include "spatial/join.h"
#include "spatial/strtree.h"
#include "tensor/conv.h"
#include "tensor/ops.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;

// --- Conv2d against a direct 7-loop reference -----------------------------

using ConvParams = std::tuple<int, int, int, int, int, int>;
// (in_channels, filters, kernel, stride, padding, size)

class ConvSweep : public ::testing::TestWithParam<ConvParams> {};

ts::Tensor DirectConv(const ts::Tensor& x, const ts::Tensor& w,
                      const ts::Tensor& bias, const ts::ConvSpec& spec) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  const int64_t f = w.size(0);
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t oh = ts::ConvOutSize(h, kh, spec.stride, spec.padding);
  const int64_t ow = ts::ConvOutSize(wd, kw, spec.stride, spec.padding);
  ts::Tensor out = ts::Tensor::Zeros({n, f, oh, ow});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t fi = 0; fi < f; ++fi) {
      for (int64_t oi = 0; oi < oh; ++oi) {
        for (int64_t oj = 0; oj < ow; ++oj) {
          float acc = bias.numel() > 0 ? bias.flat(fi) : 0.0f;
          for (int64_t ci = 0; ci < c; ++ci) {
            for (int64_t ki = 0; ki < kh; ++ki) {
              for (int64_t kj = 0; kj < kw; ++kj) {
                const int64_t ii = oi * spec.stride + ki - spec.padding;
                const int64_t jj = oj * spec.stride + kj - spec.padding;
                if (ii < 0 || ii >= h || jj < 0 || jj >= wd) continue;
                acc += x.at({i, ci, ii, jj}) * w.at({fi, ci, ki, kj});
              }
            }
          }
          out.at({i, fi, oi, oj}) = acc;
        }
      }
    }
  }
  return out;
}

TEST_P(ConvSweep, Im2ColMatchesDirect) {
  auto [c, f, k, stride, padding, size] = GetParam();
  Rng rng(c * 100 + f * 10 + k);
  ts::Tensor x = ts::Tensor::Randn({2, c, size, size}, rng);
  ts::Tensor w = ts::Tensor::Randn({f, c, k, k}, rng, 0.0f, 0.5f);
  ts::Tensor b = ts::Tensor::Randn({f}, rng);
  ts::ConvSpec spec{.stride = stride, .padding = padding};
  ts::Tensor fast = ts::Conv2dForward(x, w, b, spec);
  ts::Tensor slow = DirectConv(x, w, b, spec);
  EXPECT_TRUE(ts::AllClose(fast, slow, 1e-4f, 1e-4f))
      << "c=" << c << " f=" << f << " k=" << k << " s=" << stride
      << " p=" << padding << " size=" << size;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvParams{1, 1, 1, 1, 0, 4},
                      ConvParams{1, 2, 3, 1, 1, 5},
                      ConvParams{3, 4, 3, 1, 1, 8},
                      ConvParams{2, 3, 5, 1, 2, 9},
                      ConvParams{2, 2, 3, 2, 1, 8},
                      ConvParams{4, 8, 3, 2, 0, 10},
                      ConvParams{3, 2, 1, 1, 0, 6},
                      ConvParams{2, 5, 4, 2, 1, 12}));

// --- Broadcasting against an index-arithmetic reference ------------------

using BroadcastParams = std::tuple<ts::Shape, ts::Shape>;

class BroadcastSweep : public ::testing::TestWithParam<BroadcastParams> {};

TEST_P(BroadcastSweep, AddMatchesManualIndexing) {
  auto [sa, sb] = GetParam();
  Rng rng(7);
  ts::Tensor a = ts::Tensor::Randn(sa, rng);
  ts::Tensor b = ts::Tensor::Randn(sb, rng);
  ts::Tensor out = ts::Add(a, b);
  const ts::Shape os = ts::BroadcastShapes(sa, sb);
  ASSERT_EQ(out.shape(), os);

  const auto stride_a = ts::ContiguousStrides(sa);
  const auto stride_b = ts::ContiguousStrides(sb);
  const auto stride_o = ts::ContiguousStrides(os);
  for (int64_t flat = 0; flat < out.numel(); ++flat) {
    // Decompose the output index; map to each input index.
    int64_t rem = flat;
    int64_t ia = 0;
    int64_t ib = 0;
    for (size_t d = 0; d < os.size(); ++d) {
      const int64_t idx = rem / stride_o[d];
      rem %= stride_o[d];
      const int da = static_cast<int>(d) -
                     static_cast<int>(os.size() - sa.size());
      const int db = static_cast<int>(d) -
                     static_cast<int>(os.size() - sb.size());
      if (da >= 0 && sa[da] != 1) ia += idx * stride_a[da];
      if (db >= 0 && sb[db] != 1) ib += idx * stride_b[db];
    }
    EXPECT_FLOAT_EQ(out.flat(flat), a.flat(ia) + b.flat(ib));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastSweep,
    ::testing::Values(BroadcastParams{{4}, {1}},
                      BroadcastParams{{2, 3}, {3}},
                      BroadcastParams{{2, 3}, {2, 1}},
                      BroadcastParams{{4, 1, 3}, {2, 3}},
                      BroadcastParams{{2, 3, 4}, {1, 3, 1}},
                      BroadcastParams{{1, 5}, {4, 1}},
                      BroadcastParams{{2, 1, 4, 1}, {3, 1, 5}}));

// --- GridDataset representations: sizes and sample boundaries -------------

using GridRepParams = std::tuple<int, int, int, int>;
// (timesteps, len_closeness, len_period, len_trend)

class PeriodicalSweep : public ::testing::TestWithParam<GridRepParams> {};

TEST_P(PeriodicalSweep, SampleIndexingInvariants) {
  auto [t, lc, lp, lt] = GetParam();
  const int steps_per_day = 4;
  ts::Tensor data({t, 1, 2, 2});
  for (int64_t i = 0; i < t; ++i) {
    for (int p = 0; p < 4; ++p) data.flat(i * 4 + p) = static_cast<float>(i);
  }
  datasets::GridDataset dataset(data, steps_per_day);
  dataset.SetPeriodicalRepresentation(lc, lp, lt);

  int64_t first = lc;
  if (lp > 0) first = std::max<int64_t>(first, lp * steps_per_day);
  if (lt > 0) first = std::max<int64_t>(first, lt * 7 * steps_per_day);
  ASSERT_EQ(dataset.Size(), t - first);

  for (int64_t i : {int64_t{0}, dataset.Size() - 1}) {
    data::Sample s = dataset.Get(i);
    const float target = static_cast<float>(first + i);
    EXPECT_EQ(s.y.flat(0), target);
    // Closeness stack: most recent frame is target - 1.
    EXPECT_EQ(s.x.flat((lc - 1) * 4), target - 1);
    EXPECT_EQ(s.x.flat(0), target - lc);
    size_t extra = 0;
    if (lp > 0) {
      EXPECT_EQ(s.extras[extra].flat(0), target - lp * steps_per_day);
      ++extra;
    }
    if (lt > 0) {
      EXPECT_EQ(s.extras[extra].flat(0), target - lt * 7 * steps_per_day);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PeriodicalSweep,
                         ::testing::Values(GridRepParams{40, 1, 0, 0},
                                           GridRepParams{40, 3, 0, 0},
                                           GridRepParams{40, 2, 1, 0},
                                           GridRepParams{40, 2, 2, 1},
                                           GridRepParams{70, 4, 3, 2},
                                           GridRepParams{120, 3, 4, 4}));

// --- Spatial join strategies agree on random workloads --------------------

using JoinParams = std::tuple<int, int, int>;  // (grid_x, grid_y, points)

class JoinSweep : public ::testing::TestWithParam<JoinParams> {};

TEST_P(JoinSweep, AllStrategiesAgree) {
  auto [gx, gy, n] = GetParam();
  Rng rng(gx * 7 + gy * 3 + n);
  spatial::GridPartitioner grid(spatial::Envelope(-10, -5, 10, 5), gx, gy);
  std::vector<spatial::Polygon> cells = grid.CellPolygons();
  std::vector<spatial::Point> points;
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(-9.99, 9.99), rng.Uniform(-4.99, 4.99)});
  }
  auto hash = spatial::PointInPolygonJoin(points, cells,
                                          spatial::JoinStrategy::kGridHash,
                                          &grid);
  auto tree = spatial::PointInPolygonJoin(points, cells,
                                          spatial::JoinStrategy::kStrTree);
  ASSERT_EQ(hash.size(), points.size());
  ASSERT_EQ(tree.size(), points.size());
  std::map<int64_t, int64_t> hash_map;
  for (const auto& p : hash) hash_map[p.point_idx] = p.polygon_idx;
  for (const auto& p : tree) {
    EXPECT_EQ(hash_map[p.point_idx], p.polygon_idx);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, JoinSweep,
                         ::testing::Values(JoinParams{1, 1, 50},
                                           JoinParams{2, 3, 100},
                                           JoinParams{8, 8, 200},
                                           JoinParams{16, 4, 200},
                                           JoinParams{5, 20, 150}));

// --- Parallel join is row-for-row identical to serial ---------------------
// The probe-side fan-out uses per-chunk buffers concatenated in chunk
// order, so for any partition (pool) size the output must equal the
// serial join exactly — including the degenerate inputs.

using ParallelJoinParams = std::tuple<int, spatial::JoinStrategy>;
// (pool threads a.k.a. probe partitions, strategy)

class ParallelJoinSweep
    : public ::testing::TestWithParam<ParallelJoinParams> {};

TEST_P(ParallelJoinSweep, ParallelOutputIdenticalToSerial) {
  auto [threads, strategy] = GetParam();
  spatial::GridPartitioner grid(spatial::Envelope(0, 0, 8, 8), 4, 4);
  std::vector<spatial::Polygon> cells = grid.CellPolygons();
  ThreadPool pool(threads);

  Rng rng(threads * 31 + static_cast<int>(strategy));
  std::vector<std::pair<const char*, std::vector<spatial::Point>>> inputs;
  std::vector<spatial::Point> random_points;
  for (int i = 0; i < 500; ++i) {
    random_points.push_back(
        {rng.Uniform(0.01, 7.99), rng.Uniform(0.01, 7.99)});
  }
  inputs.emplace_back("random", std::move(random_points));
  inputs.emplace_back("empty", std::vector<spatial::Point>{});
  std::vector<spatial::Point> outside;
  for (int i = 0; i < 64; ++i) {
    outside.push_back({rng.Uniform(20, 30), rng.Uniform(20, 30)});
  }
  inputs.emplace_back("zero_matches", std::move(outside));
  inputs.emplace_back("single_row",
                      std::vector<spatial::Point>{{1.5, 1.5}});
  std::vector<spatial::Point> one_cell;
  for (int i = 0; i < 200; ++i) {
    one_cell.push_back({rng.Uniform(0.01, 1.99), rng.Uniform(0.01, 1.99)});
  }
  inputs.emplace_back("all_in_one_cell", std::move(one_cell));

  for (const auto& [label, points] : inputs) {
    spatial::JoinOptions serial_opts;
    serial_opts.strategy = strategy;
    serial_opts.parallel = false;
    spatial::JoinOptions parallel_opts = serial_opts;
    parallel_opts.parallel = true;
    parallel_opts.pool = &pool;
    auto serial = spatial::PointInPolygonJoin(points, cells, serial_opts,
                                              &grid);
    auto parallel = spatial::PointInPolygonJoin(points, cells,
                                                parallel_opts, &grid);
    ASSERT_EQ(serial.size(), parallel.size()) << label;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].point_idx, parallel[i].point_idx)
          << label << " row " << i;
      EXPECT_EQ(serial[i].polygon_idx, parallel[i].polygon_idx)
          << label << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PartitionsByStrategy, ParallelJoinSweep,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(spatial::JoinStrategy::kStrTree,
                                         spatial::JoinStrategy::kGridHash)));

// --- GroupBy: packed fast path vs generic path vs manual ------------------

using GroupByParams = std::tuple<int, int64_t, bool>;
// (num rows, key cardinality, force generic path with huge keys)

class GroupBySweep : public ::testing::TestWithParam<GroupByParams> {};

TEST_P(GroupBySweep, MatchesManualAggregation) {
  auto [n, cardinality, huge_keys] = GetParam();
  Rng rng(static_cast<uint64_t>(n + cardinality));
  const int64_t offset = huge_keys ? (int64_t{1} << 40) : 0;
  std::vector<int64_t> keys(n);
  std::vector<double> values(n);
  std::map<int64_t, std::pair<int64_t, double>> manual;
  for (int i = 0; i < n; ++i) {
    keys[i] = offset + rng.UniformInt(0, cardinality - 1);
    values[i] = rng.Uniform(-1, 1);
    manual[keys[i]].first += 1;
    manual[keys[i]].second += values[i];
  }
  df::DataFrame frame =
      df::DataFrame::FromColumns({{"k", df::Column::FromInt64s(keys)},
                                  {"v", df::Column::FromDoubles(values)}})
          .Repartition(3);
  df::DataFrame agg =
      frame
          .GroupByAgg({"k"}, {{df::AggKind::kCount, "", "n"},
                              {df::AggKind::kSum, "v", "s"}})
          .SortByInt64("k");
  ASSERT_EQ(agg.NumRows(), static_cast<int64_t>(manual.size()));
  auto out_k = agg.CollectInt64("k");
  auto out_n = agg.CollectInt64("n");
  auto out_s = agg.CollectDouble("s");
  for (size_t i = 0; i < out_k.size(); ++i) {
    EXPECT_EQ(out_n[i], manual[out_k[i]].first);
    EXPECT_NEAR(out_s[i], manual[out_k[i]].second, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, GroupBySweep,
                         ::testing::Values(GroupByParams{100, 5, false},
                                           GroupByParams{1000, 50, false},
                                           GroupByParams{1000, 900, false},
                                           GroupByParams{500, 20, true},
                                           GroupByParams{2000, 2000, true}));

// --- STR-tree across node capacities ---------------------------------------

class StrTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(StrTreeSweep, QueryMatchesBruteForceAtEveryCapacity) {
  const int capacity = GetParam();
  Rng rng(capacity);
  std::vector<spatial::StrTree::Entry> entries;
  for (int64_t i = 0; i < 150; ++i) {
    const double x = rng.Uniform(0, 50);
    const double y = rng.Uniform(0, 50);
    entries.push_back({spatial::Envelope(x, y, x + rng.Uniform(0, 3),
                                         y + rng.Uniform(0, 3)),
                       i});
  }
  spatial::StrTree tree(entries, capacity);
  for (int q = 0; q < 10; ++q) {
    const double x = rng.Uniform(0, 50);
    const double y = rng.Uniform(0, 50);
    spatial::Envelope query(x, y, x + 8, y + 8);
    auto got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (const auto& e : entries) {
      if (e.envelope.Intersects(query)) want.push_back(e.id);
    }
    EXPECT_EQ(got, want) << "capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, StrTreeSweep,
                         ::testing::Values(2, 3, 4, 10, 50, 200));

// --- Pooling / upsample adjointness ---------------------------------------
// <down(x), y> == <x, up(y)> must hold for adjoint pairs — the property
// the autograd backward passes rely on.

TEST(AdjointProperty, UpsampleAndItsBackwardAreAdjoint) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    ts::Tensor x = ts::Tensor::Randn({2, 3, 4, 4}, rng);
    ts::Tensor y = ts::Tensor::Randn({2, 3, 8, 8}, rng);
    const float lhs = ts::SumAll(ts::Mul(ts::UpsampleNearest2x(x), y));
    const float rhs =
        ts::SumAll(ts::Mul(x, ts::UpsampleNearest2xBackward(y)));
    EXPECT_NEAR(lhs, rhs, 1e-3f);
  }
}

TEST(AdjointProperty, Im2ColAndCol2ImAreAdjoint) {
  Rng rng(10);
  ts::ConvSpec spec{.stride = 2, .padding = 1};
  ts::Tensor x = ts::Tensor::Randn({1, 2, 6, 6}, rng);
  ts::Tensor cols = ts::Im2Col(x, 0, 3, 3, spec);
  ts::Tensor y = ts::Tensor::Randn(cols.shape(), rng);
  const float lhs = ts::SumAll(ts::Mul(cols, y));
  ts::Tensor back = ts::Tensor::Zeros({1, 2, 6, 6});
  ts::Col2ImAdd(y, back, 0, 3, 3, spec);
  const float rhs = ts::SumAll(ts::Mul(x, back));
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

}  // namespace
}  // namespace geotorch
