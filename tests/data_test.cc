#include "data/dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.h"
#include "data/metrics.h"
#include "tensor/ops.h"

namespace geotorch::data {
namespace {

namespace ts = ::geotorch::tensor;

TEST(TensorDatasetTest, GetSlicesRows) {
  ts::Tensor xs = ts::Tensor::Arange(12).Reshape({4, 3});
  ts::Tensor ys = ts::Tensor::Arange(4);
  TensorDataset dataset(xs, ys);
  EXPECT_EQ(dataset.Size(), 4);
  Sample s = dataset.Get(2);
  EXPECT_EQ(s.x.shape(), (ts::Shape{3}));
  EXPECT_EQ(s.x.flat(0), 6.0f);
  EXPECT_EQ(s.y.flat(0), 2.0f);
}

TEST(TensorDatasetTest, ExtrasCarriedThrough) {
  ts::Tensor xs = ts::Tensor::Ones({3, 2});
  ts::Tensor ys = ts::Tensor::Zeros({3});
  ts::Tensor extra = ts::Tensor::Arange(6).Reshape({3, 2});
  TensorDataset dataset(xs, ys, {extra});
  Sample s = dataset.Get(1);
  ASSERT_EQ(s.extras.size(), 1u);
  EXPECT_EQ(s.extras[0].flat(0), 2.0f);
}

TEST(SubsetDatasetTest, RemapsIndices) {
  ts::Tensor xs = ts::Tensor::Arange(5).Reshape({5, 1});
  TensorDataset base(xs, ts::Tensor::Arange(5));
  SubsetDataset subset(&base, {4, 0});
  EXPECT_EQ(subset.Size(), 2);
  EXPECT_EQ(subset.Get(0).y.flat(0), 4.0f);
  EXPECT_EQ(subset.Get(1).y.flat(0), 0.0f);
}

TEST(SplitTest, ChronologicalFractions) {
  SplitIndices split = ChronologicalSplit(100, 0.8);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.val.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
  // Chronological: train precedes val precedes test.
  EXPECT_EQ(split.train.back(), 79);
  EXPECT_EQ(split.val.front(), 80);
  EXPECT_EQ(split.test.back(), 99);
}

TEST(SplitTest, OddSizes) {
  SplitIndices split = ChronologicalSplit(7, 0.5);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), 7u);
}

TEST(DataLoaderTest, BatchesAllSamples) {
  ts::Tensor xs = ts::Tensor::Arange(10).Reshape({10, 1});
  TensorDataset dataset(xs, ts::Tensor::Arange(10));
  DataLoader loader(&dataset, 3, /*shuffle=*/false);
  EXPECT_EQ(loader.NumBatches(), 4);
  Batch batch;
  int64_t seen = 0;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    seen += batch.size;
    ++batches;
    EXPECT_EQ(batch.x.size(0), batch.size);
  }
  EXPECT_EQ(seen, 10);
  EXPECT_EQ(batches, 4);
}

TEST(DataLoaderTest, DropLast) {
  ts::Tensor xs = ts::Tensor::Arange(10).Reshape({10, 1});
  TensorDataset dataset(xs, ts::Tensor::Arange(10));
  DataLoader loader(&dataset, 3, false, 0, /*drop_last=*/true);
  EXPECT_EQ(loader.NumBatches(), 3);
  Batch batch;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    EXPECT_EQ(batch.size, 3);
    ++batches;
  }
  EXPECT_EQ(batches, 3);
}

TEST(DataLoaderTest, ShuffleIsDeterministicPerSeed) {
  ts::Tensor xs = ts::Tensor::Arange(20).Reshape({20, 1});
  TensorDataset dataset(xs, ts::Tensor::Arange(20));
  auto first_batch = [&](uint64_t seed) {
    DataLoader loader(&dataset, 20, true, seed);
    Batch b;
    loader.Next(&b);
    return b.y.ToVector();
  };
  EXPECT_EQ(first_batch(7), first_batch(7));
  EXPECT_NE(first_batch(7), first_batch(8));
}

TEST(DataLoaderTest, ShuffleCoversAllOnceAndReshuffles) {
  ts::Tensor xs = ts::Tensor::Arange(16).Reshape({16, 1});
  TensorDataset dataset(xs, ts::Tensor::Arange(16));
  DataLoader loader(&dataset, 4, true, 3);
  std::multiset<float> seen;
  Batch batch;
  std::vector<float> epoch1;
  while (loader.Next(&batch)) {
    for (float v : batch.y.ToVector()) {
      seen.insert(v);
      epoch1.push_back(v);
    }
  }
  EXPECT_EQ(seen.size(), 16u);
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(seen.count(i), 1u);

  loader.Reset();
  std::vector<float> epoch2;
  while (loader.Next(&batch)) {
    for (float v : batch.y.ToVector()) epoch2.push_back(v);
  }
  EXPECT_NE(epoch1, epoch2);  // re-shuffled
}

// Labels of every batch of one epoch, in iteration order.
std::vector<float> EpochLabels(DataLoader& loader) {
  std::vector<float> labels;
  Batch batch;
  while (loader.Next(&batch)) {
    for (float v : batch.y.ToVector()) labels.push_back(v);
  }
  return labels;
}

TEST(DataLoaderTest, PrefetchMatchesNonPrefetchShuffled) {
  ts::Tensor xs = ts::Tensor::Arange(34).Reshape({17, 2});
  TensorDataset dataset(xs, ts::Tensor::Arange(17));
  DataLoader plain(&dataset, 4, /*shuffle=*/true, /*seed=*/99,
                   /*drop_last=*/false, /*prefetch=*/false);
  DataLoader prefetched(&dataset, 4, /*shuffle=*/true, /*seed=*/99,
                        /*drop_last=*/false, /*prefetch=*/true);
  // Same seed must yield the same batch sequence whether or not batches
  // are assembled ahead of time on a worker thread — across the epoch
  // boundary too (Reset reshuffles from the same RNG stream).
  for (int epoch = 0; epoch < 2; ++epoch) {
    if (epoch > 0) {
      plain.Reset();
      prefetched.Reset();
    }
    EXPECT_EQ(EpochLabels(plain), EpochLabels(prefetched))
        << "epoch " << epoch;
  }
}

TEST(DataLoaderTest, PrefetchRaggedTailNoDropNoDup) {
  // 10 % 4 != 0: the final short batch must still arrive, and no sample
  // may be dropped or duplicated — in either of two consecutive epochs.
  ts::Tensor xs = ts::Tensor::Arange(10).Reshape({10, 1});
  TensorDataset dataset(xs, ts::Tensor::Arange(10));
  DataLoader loader(&dataset, 4, /*shuffle=*/true, /*seed=*/5,
                    /*drop_last=*/false, /*prefetch=*/true);
  for (int epoch = 0; epoch < 2; ++epoch) {
    if (epoch > 0) loader.Reset();
    std::vector<float> labels = EpochLabels(loader);
    ASSERT_EQ(labels.size(), 10u) << "epoch " << epoch;
    std::multiset<float> seen(labels.begin(), labels.end());
    for (int64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(seen.count(static_cast<float>(i)), 1u)
          << "sample " << i << " in epoch " << epoch;
    }
  }
}

TEST(DataLoaderTest, PrefetchDropLastConsistent) {
  ts::Tensor xs = ts::Tensor::Arange(10).Reshape({10, 1});
  TensorDataset dataset(xs, ts::Tensor::Arange(10));
  DataLoader plain(&dataset, 4, /*shuffle=*/false, /*seed=*/0,
                   /*drop_last=*/true, /*prefetch=*/false);
  DataLoader prefetched(&dataset, 4, /*shuffle=*/false, /*seed=*/0,
                        /*drop_last=*/true, /*prefetch=*/true);
  std::vector<float> a = EpochLabels(plain);
  std::vector<float> b = EpochLabels(prefetched);
  EXPECT_EQ(a.size(), 8u);  // 2 full batches, tail dropped
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, MaeRmse) {
  ts::Tensor pred = ts::Tensor::FromVector({4}, {1, 2, 3, 4});
  ts::Tensor target = ts::Tensor::FromVector({4}, {1, 2, 3, 8});
  EXPECT_FLOAT_EQ(Mae(pred, target), 1.0f);
  EXPECT_FLOAT_EQ(Rmse(pred, target), 2.0f);
  EXPECT_GE(Rmse(pred, target), Mae(pred, target));
}

TEST(MetricsTest, Accuracy) {
  ts::Tensor logits = ts::Tensor::FromVector(
      {3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  ts::Tensor labels = ts::Tensor::FromVector({3}, {0, 1, 1});
  EXPECT_NEAR(Accuracy(logits, labels), 2.0f / 3.0f, 1e-6);
}

TEST(MetricsTest, PixelAccuracyAndIoU) {
  // 1 sample, 2 classes, 2x2: predicted class = argmax over dim1.
  ts::Tensor logits = ts::Tensor::FromVector(
      {1, 2, 2, 2},
      {0.9f, 0.1f, 0.9f, 0.1f,    // class-0 scores
       0.1f, 0.9f, 0.1f, 0.9f});  // class-1 scores
  // Predicted mask: {0, 1, 0, 1}; truth {0, 1, 1, 1}.
  ts::Tensor labels = ts::Tensor::FromVector({1, 2, 2}, {0, 1, 1, 1});
  EXPECT_FLOAT_EQ(PixelAccuracy(logits, labels), 0.75f);
  EXPECT_FLOAT_EQ(IoU(logits, labels, 1), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(IoU(logits, labels, 0), 0.5f);
}

TEST(RunStatsTest, MeanAndDeviation) {
  RunStats stats;
  stats.Add(1.0);
  stats.Add(2.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max_deviation(), 1.0);
  EXPECT_EQ(stats.count(), 3);
}

}  // namespace
}  // namespace geotorch::data
