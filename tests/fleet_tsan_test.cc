// ThreadSanitizer stress for the serving fleet: client threads
// submitting through the least-loaded router while another thread
// hot-reloads the model between weight-panel versions, drains, and
// polls stats — the exact interleaving the snapshot-swap protocol must
// survive. Snapshots share read-only versioned panels (as replicas of
// a real model share prepacked weight buffers), so TSan also watches
// for writes racing the panel reads. Built with -fsanitize=thread
// against fleet.cc + engine.cc (see tests/CMakeLists.txt) — fleet.cc
// deliberately depends only on tensor/core/obs so this minimal
// recompile stays minimal.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/fleet.h"
#include "tensor/tensor.h"

namespace {

namespace ts = ::geotorch::tensor;
namespace data = ::geotorch::data;
namespace serve = ::geotorch::serve;

constexpr int kVersions = 4;
constexpr int64_t kDim = 8;

// Read-only weight panels, one per "checkpoint version". Every
// snapshot of a given version holds a shared_ptr to the SAME panel —
// replicas share weights read-only, which is precisely what TSan must
// see no writes against while forwards run.
const std::shared_ptr<const std::vector<float>>* Panels() {
  static const auto* panels = [] {
    auto* p = new std::shared_ptr<const std::vector<float>>[kVersions];
    for (int v = 0; v < kVersions; ++v) {
      auto panel = std::make_shared<std::vector<float>>(kDim);
      for (int64_t j = 0; j < kDim; ++j) {
        (*panel)[j] = static_cast<float>(v * 1000);
      }
      p[v] = std::move(panel);
    }
    return p;
  }();
  return panels;
}

// A snapshot whose forward adds its panel to the input. The panel is
// constant per version, so a response row is valid iff every element
// is input + v*1000 for ONE v — a torn swap (half old panel, half new)
// or a read of a panel mid-replacement would show a mixed row.
//
// The load hook parses the version straight out of the "path"
// ("panel:2" -> panels[2]); no file I/O, the fleet's swap protocol is
// what is under test.
serve::SnapshotFactory PanelFactory() {
  return [] {
    auto current = std::make_shared<std::shared_ptr<const std::vector<float>>>(
        Panels()[0]);
    serve::ModelSnapshot snap;
    snap.owner = current;
    snap.forward = [current](const data::Batch& batch) {
      const std::vector<float>& panel = **current;
      ts::Tensor out = ts::Tensor::Uninitialized(batch.x.shape());
      for (int64_t i = 0; i < batch.size; ++i) {
        for (int64_t j = 0; j < kDim; ++j) {
          out.data()[i * kDim + j] =
              batch.x.data()[i * kDim + j] + panel[j];
        }
      }
      return out;
    };
    snap.load = [current](const std::string& path) {
      const std::string prefix = "panel:";
      if (path.rfind(prefix, 0) != 0) {
        return geotorch::Status::InvalidArgument("bad panel path: " + path);
      }
      const int v = std::stoi(path.substr(prefix.size()));
      if (v < 0 || v >= kVersions) {
        return geotorch::Status::InvalidArgument("no such panel version");
      }
      *current = Panels()[v];
      return geotorch::Status::OK();
    };
    return snap;
  };
}

serve::FleetOptions SmallFleet(int replicas) {
  serve::FleetOptions opts;
  opts.replicas = replicas;
  opts.engine.max_batch = 4;
  opts.engine.max_delay_us = 50;
  opts.engine.max_queue = 64;
  opts.engine.warmup_batches = 1;
  return opts;
}

data::Sample MakeSample(float v) {
  data::Sample s;
  s.x = ts::Tensor::Full({kDim}, v);
  return s;
}

// Returns the panel version this response row is consistent with, or
// -1 if the row is torn (mixed versions / not a valid version at all).
int RowVersion(const ts::Tensor& out, float input) {
  const float base = out.data()[0] - input;
  for (int64_t j = 1; j < kDim; ++j) {
    if (out.data()[j] - input != base) return -1;
  }
  const int v = static_cast<int>(base / 1000.0f);
  if (v < 0 || v >= kVersions ||
      base != static_cast<float>(v * 1000)) {
    return -1;
  }
  return v;
}

TEST(FleetTsanTest, SubmitsRaceHotReloadsWithoutTearing) {
  serve::Fleet fleet(SmallFleet(2));
  ASSERT_TRUE(
      fleet.AddModel("m", PanelFactory(), serve::SampleSpec{{kDim}, {}}).ok());

  constexpr int kClients = 6;
  constexpr int kPerClient = 60;
  std::atomic<int> torn{0};
  std::atomic<int> failed{0};
  std::atomic<bool> stop_reloading{false};

  std::thread reloader([&fleet, &stop_reloading] {
    int v = 1;
    while (!stop_reloading.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(fleet.Reload("m", "panel:" + std::to_string(v)).ok());
      v = (v + 1) % kVersions;
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&fleet, &torn, &failed, t] {
      for (int i = 0; i < kPerClient; ++i) {
        const float input = static_cast<float>(t * 100 + i);
        auto r = fleet.Submit("m", "tenant", MakeSample(input));
        if (!r.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (RowVersion(*r, input) < 0) torn.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  stop_reloading.store(true);
  reloader.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(failed.load(), 0);  // queue of 64 never fills at this load
  EXPECT_GT(fleet.stats().reload_swaps, 0);
  EXPECT_EQ(fleet.stats().reload_failures, 0);
}

TEST(FleetTsanTest, RouterStatsAndOutstandingRaceTraffic) {
  serve::Fleet fleet(SmallFleet(3));
  ASSERT_TRUE(
      fleet.AddModel("m", PanelFactory(), serve::SampleSpec{{kDim}, {}}).ok());

  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  std::atomic<bool> stop_polling{false};
  std::thread poller([&fleet, &stop_polling] {
    while (!stop_polling.load(std::memory_order_relaxed)) {
      (void)fleet.stats();
      (void)fleet.Outstanding("m");
      (void)fleet.ReplicaStats("m");
      (void)fleet.ModelVersion("m");
    }
  });

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&fleet, &ok, t] {
      for (int i = 0; i < kPerClient; ++i) {
        auto r =
            fleet.Submit("m", "t" + std::to_string(t % 3),
                         MakeSample(static_cast<float>(i)));
        if (r.ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  stop_polling.store(true);
  poller.join();

  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_EQ(fleet.stats().routed, kClients * kPerClient);
}

TEST(FleetTsanTest, ShutdownRacesSubmitsAndReloads) {
  serve::Fleet fleet(SmallFleet(2));
  ASSERT_TRUE(
      fleet.AddModel("m", PanelFactory(), serve::SampleSpec{{kDim}, {}}).ok());

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&fleet, &stop, &torn, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const float input = static_cast<float>(t * 1000 + i++);
        auto r = fleet.Submit("m", "tenant", MakeSample(input));
        // After Shutdown wins the race, submits fail — that's fine;
        // what must never happen is a torn success.
        if (r.ok() && RowVersion(*r, input) < 0) torn.fetch_add(1);
      }
    });
  }
  std::thread reloader([&fleet, &stop] {
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Reload may fail once Shutdown drained the engines; only the
      // data race matters here.
      (void)fleet.Reload("m", "panel:" + std::to_string(v));
      v = (v + 1) % kVersions;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fleet.Shutdown();
  stop.store(true);
  for (auto& c : clients) c.join();
  reloader.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
