#include "core/storage_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "autograd/ops.h"
#include "core/memory.h"
#include "nn/layers.h"
#include "obs/obs.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;
namespace ag = ::geotorch::autograd;

// Restores pool enablement and drains cached blocks so tests do not
// leak state (pointers, stats baselines) into each other.
class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoragePool::SetEnabled(true);
    StoragePool::Global().Trim();
    StoragePool::Global().ResetStats();
  }
  void TearDown() override {
    StoragePool::SetEnabled(true);
    StoragePool::Global().Trim();
  }
};

TEST_F(PoolTest, RecyclesFreedBlockSameClass) {
  float* first = nullptr;
  {
    ts::Tensor a = ts::Tensor::Zeros({1024});
    first = a.data();
  }
  // LIFO free list: the very next same-class allocation gets the block
  // the destructor just returned.
  ts::Tensor b = ts::Tensor::Zeros({1024});
  EXPECT_EQ(b.data(), first);

  const StoragePool::Stats stats = StoragePool::Global().GetStats();
  EXPECT_GE(stats.hits, 1);
  EXPECT_GE(stats.bytes_recycled, 4096);
}

TEST_F(PoolTest, RoundsUpToSizeClassAndAligns) {
  // 1000 floats = 4000 bytes -> 4096-byte class.
  StoragePool::Global().ResetStats();
  {
    ts::Tensor a = ts::Tensor::Zeros({1000});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u);
  }
  // 1024 floats = 4096 bytes -> same class, so the block is reused.
  ts::Tensor b = ts::Tensor::Zeros({1024});
  const StoragePool::Stats stats = StoragePool::Global().GetStats();
  EXPECT_GE(stats.hits, 1);
}

TEST_F(PoolTest, KillSwitchBypassesCache) {
  StoragePool::SetEnabled(false);
  StoragePool::Global().ResetStats();
  {
    ts::Tensor a = ts::Tensor::Zeros({1024});
  }
  ts::Tensor b = ts::Tensor::Zeros({1024});
  const StoragePool::Stats stats = StoragePool::Global().GetStats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_GE(stats.bypasses, 2);
  EXPECT_EQ(stats.cached_blocks, 0);
}

TEST_F(PoolTest, TrimReleasesCachedBlocks) {
  { ts::Tensor a = ts::Tensor::Zeros({1 << 12}); }
  { ts::Tensor b = ts::Tensor::Zeros({1 << 14}); }
  StoragePool::Stats before = StoragePool::Global().GetStats();
  EXPECT_GT(before.cached_bytes, 0);
  const int64_t freed = StoragePool::Global().Trim();
  EXPECT_EQ(freed, before.cached_bytes);
  StoragePool::Stats after = StoragePool::Global().GetStats();
  EXPECT_EQ(after.cached_bytes, 0);
  EXPECT_EQ(after.cached_blocks, 0);
}

TEST_F(PoolTest, ShardCapEvicts) {
  StoragePool::Global().SetMaxCachedBytesPerShard(1 << 16);  // 64 KiB
  // Free more 16-KiB-class blocks than one shard can hold.
  std::vector<ts::Tensor> live;
  for (int i = 0; i < 8; ++i) live.push_back(ts::Tensor::Zeros({4096}));
  live.clear();
  const StoragePool::Stats stats = StoragePool::Global().GetStats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.cached_bytes, int64_t{1} << 16);
  StoragePool::Global().SetMaxCachedBytesPerShard(128 << 20);
}

TEST_F(PoolTest, PublishGaugesExportsCachedState) {
  obs::Reset();
  { ts::Tensor a = ts::Tensor::Zeros({1024}); }
  StoragePool::Global().PublishGauges();
  bool found_bytes = false;
  for (const auto& [name, value] : obs::GaugeValues()) {
    if (name == "pool.cached_bytes") {
      found_bytes = true;
      EXPECT_GE(value, 4096);
    }
  }
  EXPECT_TRUE(found_bytes);
}

// Logical live-bytes accounting must follow tensors, not pool caching:
// a freed-but-cached block is not live data.
TEST_F(PoolTest, MemoryTrackerCountsTensorsNotCachedBlocks) {
  auto& mt = MemoryTracker::Global();
  const int64_t before = mt.current_bytes();
  {
    ts::Tensor a = ts::Tensor::Zeros({1024});
    EXPECT_EQ(mt.current_bytes() - before, 4096);
  }
  EXPECT_EQ(mt.current_bytes(), before);  // cached in pool, not live
}

// The tentpole acceptance check in miniature: after warm-up, a training
// step should be served almost entirely from the pool.
TEST_F(PoolTest, TrainStepHitRateAfterWarmup) {
  Rng rng(42);
  nn::Linear l1(32, 64, rng);
  nn::Linear l2(64, 10, rng);
  auto params = l1.Parameters();
  for (auto& p : l2.Parameters()) params.push_back(p);
  optim::Adam opt(params, 1e-3f);

  ts::Tensor x = ts::Tensor::Randn({16, 32}, rng);
  ts::Tensor target = ts::Tensor::Randn({16, 10}, rng);

  auto step = [&] {
    opt.ZeroGrad();
    ag::Variable h = ag::Relu(l1.Forward(ag::Variable(x)));
    ag::Variable loss = ag::MseLoss(l2.Forward(h), target);
    loss.Backward();
    opt.Step();
  };

  for (int i = 0; i < 3; ++i) step();  // warm-up fills the free lists

  StoragePool::Global().ResetStats();
  obs::Reset();
  constexpr int kSteps = 5;
  for (int i = 0; i < kSteps; ++i) step();

  const StoragePool::Stats stats = StoragePool::Global().GetStats();
  ASSERT_GT(stats.hits + stats.misses, 0);
  const double hit_rate =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);
  EXPECT_GE(hit_rate, 0.9) << "hits=" << stats.hits
                           << " misses=" << stats.misses;
  // Allocations-per-step regression guard: a warm step must not touch
  // the system allocator (no new blocks, no oversize bypasses).
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.bypasses, 0);

  // The same numbers flow through obs counters for dashboards.
#if !defined(GEOTORCH_OBS_DISABLED)
  if (obs::Enabled()) {
    EXPECT_EQ(obs::GetCounter("pool.hit")->value(), stats.hits);
    EXPECT_EQ(obs::GetCounter("pool.miss")->value(), stats.misses);
  }
#endif
}

// Eager autograd release: backward on a deep chain should hold only the
// active gradient frontier, not one gradient per node.
TEST_F(PoolTest, EagerReleaseBoundsBackwardPeak) {
  // Pool caching would hide releases from malloc but not from the
  // logical tracker, which is what this test reads.
  constexpr int kDepth = 20;
  constexpr int64_t kSide = 128;
  const int64_t buf_bytes = kSide * kSide * 4;

  Rng rng(7);
  ts::Tensor x0 = ts::Tensor::Randn({kSide, kSide}, rng);
  ag::Variable x(x0, /*requires_grad=*/true);

  auto& mt = MemoryTracker::Global();
  ag::Variable y = x;
  for (int i = 0; i < kDepth; ++i) {
    y = ag::Relu(ag::MulScalar(y, 1.01f));
  }
  ag::Variable loss = ag::MeanAll(y);
  const int64_t peak_fwd = mt.peak_bytes();

  loss.Backward();
  const int64_t backward_growth = mt.peak_bytes() - peak_fwd;

  // Without eager release every one of the ~2*kDepth interior nodes
  // keeps its gradient until graph teardown (~40 buffers above the
  // forward peak). With it, only the frontier is live.
  EXPECT_LE(backward_growth, 6 * buf_bytes)
      << "backward held " << backward_growth / buf_bytes
      << " extra buffers; eager release should keep O(1)";
  ASSERT_TRUE(x.has_grad());
  EXPECT_EQ(x.grad().numel(), kSide * kSide);
}

// A released graph must fail loudly on a second Backward rather than
// silently producing wrong gradients.
TEST_F(PoolTest, DoubleBackwardOnReleasedGraphDies) {
  ag::Variable x(ts::Tensor::Full({4}, 2.0f), /*requires_grad=*/true);
  ag::Variable loss = ag::MeanAll(ag::Mul(x, x));
  loss.Backward();
  EXPECT_DEATH(loss.Backward(), "released");
}

}  // namespace
}  // namespace geotorch
