// Numerics of the low-precision inference path (DESIGN.md §10): the
// bf16/int8 conversion helpers, the quantization error bound, the
// low-precision GEMM kernels against references, the pre-packed
// weight-operand path (bitwise identical to on-the-fly packing), and
// the eval-only gate on Linear (training / grad-enabled forwards stay
// f32 regardless of the precision setting).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"
#include "nn/layers.h"
#include "nn/precision.h"
#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace nn = ::geotorch::nn;
namespace ts = ::geotorch::tensor;

std::vector<float> RandomVec(int64_t n, uint64_t seed, float lo = -2.0f,
                             float hi = 2.0f) {
  geotorch::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
  return v;
}

// --- conversion helpers ----------------------------------------------------

TEST(QuantTest, Bf16RoundTripsExactValues) {
  // Values with <= 8 significand bits survive the round trip exactly.
  for (float x : {0.0f, 1.0f, -1.0f, 0.5f, -0.375f, 2048.0f, 1.5f}) {
    EXPECT_EQ(ts::RoundThroughBf16(x), x) << x;
  }
  // bf16 keeps 7 fraction bits, so the ulp at 1.0 is 2^-7 and the
  // midpoint 1 + 2^-8 is exactly between 1.0 and 1 + 2^-7;
  // round-to-even picks 1.0 (even significand).
  EXPECT_EQ(ts::RoundThroughBf16(1.0f + 0x1p-8f), 1.0f);
  // A hair above the midpoint rounds up.
  EXPECT_EQ(ts::RoundThroughBf16(1.0f + 0x1p-8f + 0x1p-16f), 1.0f + 0x1p-7f);
  // NaN stays NaN, infinities stay put.
  EXPECT_TRUE(std::isnan(
      ts::F32FromBf16(ts::Bf16FromF32(std::nanf("")))));
  EXPECT_EQ(ts::RoundThroughBf16(INFINITY), INFINITY);
  EXPECT_EQ(ts::RoundThroughBf16(-INFINITY), -INFINITY);
}

TEST(QuantTest, Bf16RelativeErrorWithinHalfUlp) {
  const std::vector<float> xs = RandomVec(4096, 11, -100.0f, 100.0f);
  for (float x : xs) {
    // 7 fraction bits: the ulp at x is at most 2^-7 * |x|, and RNE
    // lands within half of that.
    EXPECT_LE(std::fabs(ts::RoundThroughBf16(x) - x),
              std::fabs(x) * 0x1p-8f);
  }
}

// --- int8 quantization error bound -----------------------------------------

TEST(QuantTest, Int8DequantErrorAtMostHalfScalePerElement) {
  const std::vector<float> xs = RandomVec(4096, 23, -3.0f, 3.0f);
  const float scale = ts::SymmetricScale(ts::AbsMax(xs.data(), xs.size()));
  std::vector<int8_t> q(xs.size());
  ts::QuantizeInt8(xs.data(), xs.size(), scale, q.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_GE(q[i], -127);
    EXPECT_LE(q[i], 127);
    EXPECT_LE(std::fabs(xs[i] - q[i] * scale), scale / 2 + 1e-7f)
        << "element " << i;
  }
}

TEST(QuantTest, PerChannelScalesBoundEveryChannel) {
  const int64_t rows = 37, cols = 19;
  const std::vector<float> w = RandomVec(rows * cols, 31, -5.0f, 5.0f);
  std::vector<int8_t> q(rows * cols);
  std::vector<float> row_scales(rows), col_scales(cols);
  ts::QuantizeRowsInt8(w.data(), rows, cols, q.data(), row_scales.data());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      EXPECT_LE(std::fabs(w[r * cols + c] - q[r * cols + c] * row_scales[r]),
                row_scales[r] / 2 + 1e-7f);
    }
  }
  ts::QuantizeColsInt8(w.data(), rows, cols, q.data(), col_scales.data());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      EXPECT_LE(std::fabs(w[r * cols + c] - q[r * cols + c] * col_scales[c]),
                col_scales[c] / 2 + 1e-7f);
    }
  }
  // An all-zero channel must not divide by zero.
  std::vector<float> zeros(8, 0.0f);
  float s;
  std::vector<int8_t> qz(8);
  ts::QuantizeRowsInt8(zeros.data(), 1, 8, qz.data(), &s);
  EXPECT_EQ(s, 1.0f);
  for (int8_t v : qz) EXPECT_EQ(v, 0);
}

// --- GEMM kernels against references ---------------------------------------

// The bf16 GEMM must agree with an f32 GEMM over bf16-rounded operands
// up to f32 accumulation-order differences.
TEST(QuantTest, GemmBf16MatchesRoundedReference) {
  for (auto [m, k, n] : {std::array<int64_t, 3>{7, 13, 9},
                         std::array<int64_t, 3>{16, 262, 33},
                         std::array<int64_t, 3>{61, 130, 70}}) {
    const std::vector<float> a = RandomVec(m * k, 7 * m + k);
    const std::vector<float> b = RandomVec(k * n, 13 * n + k);
    std::vector<float> got(m * n), want(m * n, 0.0f);
    ts::GemmBf16(a.data(), b.data(), got.data(), m, k, n);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
          acc += ts::RoundThroughBf16(a[i * k + p]) *
                 ts::RoundThroughBf16(b[p * n + j]);
        }
        want[i * n + j] = acc;
      }
    }
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-3f)
          << m << "x" << k << "x" << n << " element " << i;
    }
  }
}

TEST(QuantTest, GemmInt8MatchesInt32Reference) {
  for (auto [m, k, n] : {std::array<int64_t, 3>{7, 13, 9},
                         std::array<int64_t, 3>{16, 262, 33},
                         std::array<int64_t, 3>{61, 130, 70}}) {
    const std::vector<float> af = RandomVec(m * k, m + 3 * k);
    const std::vector<float> bf = RandomVec(k * n, n + 5 * k);
    std::vector<int8_t> a(m * k), b(k * n);
    std::vector<float> b_scales(n);
    const float a_scale = ts::SymmetricScale(ts::AbsMax(af.data(), m * k));
    ts::QuantizeInt8(af.data(), m * k, a_scale, a.data());
    ts::QuantizeColsInt8(bf.data(), k, n, b.data(), b_scales.data());
    ts::Int8GemmOptions opts;
    opts.a_scales = &a_scale;
    opts.a_scales_len = 1;
    opts.b_scales = b_scales.data();
    opts.b_scales_len = n;
    std::vector<float> got(m * n);
    ts::GemmInt8(a.data(), b.data(), got.data(), m, k, n, opts);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        int32_t acc = 0;
        for (int64_t p = 0; p < k; ++p) {
          acc += static_cast<int32_t>(a[i * k + p]) *
                 static_cast<int32_t>(b[p * n + j]);
        }
        const float want =
            static_cast<float>(acc) * (a_scale * b_scales[j]);
        EXPECT_NEAR(got[i * n + j], want,
                    1e-5f * std::max(1.0f, std::fabs(want)))
            << m << "x" << k << "x" << n;
      }
    }
  }
}

// --- pre-packed weight operand ---------------------------------------------

// Packing B once at SetPrecision time must change nothing numerically:
// the packed blob holds exactly the panels the kernel would have built
// per call, so outputs are bitwise identical, including odd tails.
TEST(QuantTest, PrepackedBf16BitwiseEqualsOnTheFly) {
  for (auto [m, k, n] : {std::array<int64_t, 3>{7, 13, 9},
                         std::array<int64_t, 3>{16, 262, 512},
                         std::array<int64_t, 3>{61, 530, 700}}) {
    const std::vector<float> a = RandomVec(m * k, k + 17);
    const std::vector<float> b = RandomVec(k * n, n + 19);
    std::vector<uint16_t> b_bf16(k * n);
    ts::ConvertToBf16(b.data(), b_bf16.data(), k * n);
    std::vector<float> unpacked(m * n), packed_out(m * n);
    ts::GemmBf16(a.data(), b_bf16.data(), unpacked.data(), m, k, n);
    std::vector<uint16_t> packed(ts::Bf16PackedBSize(k, n));
    ts::PackBf16B(b_bf16.data(), k, n, packed.data());
    ts::GemmBf16(a.data(), ts::Bf16PackedB{packed.data()}, packed_out.data(),
                 m, k, n);
    EXPECT_EQ(0, std::memcmp(unpacked.data(), packed_out.data(),
                             m * n * sizeof(float)))
        << m << "x" << k << "x" << n;
  }
}

TEST(QuantTest, PrepackedInt8BitwiseEqualsOnTheFly) {
  for (auto [m, k, n] : {std::array<int64_t, 3>{7, 13, 9},
                         std::array<int64_t, 3>{16, 262, 512},
                         std::array<int64_t, 3>{61, 530, 700}}) {
    const std::vector<float> af = RandomVec(m * k, k + 29);
    const std::vector<float> bf = RandomVec(k * n, n + 37);
    std::vector<int8_t> a(m * k), b(k * n);
    std::vector<float> b_scales(n);
    const float a_scale = ts::SymmetricScale(ts::AbsMax(af.data(), m * k));
    ts::QuantizeInt8(af.data(), m * k, a_scale, a.data());
    ts::QuantizeColsInt8(bf.data(), k, n, b.data(), b_scales.data());
    ts::Int8GemmOptions opts;
    opts.a_scales = &a_scale;
    opts.a_scales_len = 1;
    opts.b_scales = b_scales.data();
    opts.b_scales_len = n;
    std::vector<float> unpacked(m * n), packed_out(m * n);
    ts::GemmInt8(a.data(), b.data(), unpacked.data(), m, k, n, opts);
    std::vector<int8_t> packed(ts::Int8PackedBSize(k, n));
    ts::PackInt8B(b.data(), k, n, packed.data());
    ts::GemmInt8(a.data(), ts::Int8PackedB{packed.data()}, packed_out.data(),
                 m, k, n, opts);
    EXPECT_EQ(0, std::memcmp(unpacked.data(), packed_out.data(),
                             m * n * sizeof(float)))
        << m << "x" << k << "x" << n;
  }
}

// --- serial vs parallel ----------------------------------------------------

// Both low-precision kernels fix their K-accumulation order (bf16) or
// accumulate exactly in i32 (int8), so crossing the parallel-dispatch
// threshold must not change a single bit.
TEST(QuantTest, LowPrecisionGemmSerialEqualsParallelBitwise) {
  const int64_t m = 128, k = 96, n = 128;  // m*k*n > kParallelMinWork
  const std::vector<float> a = RandomVec(m * k, 41);
  const std::vector<float> b = RandomVec(k * n, 43);
  std::vector<int8_t> aq(m * k), bq(k * n);
  std::vector<float> b_scales(n);
  const float a_scale = ts::SymmetricScale(ts::AbsMax(a.data(), m * k));
  ts::QuantizeInt8(a.data(), m * k, a_scale, aq.data());
  ts::QuantizeColsInt8(b.data(), k, n, bq.data(), b_scales.data());
  ts::Int8GemmOptions iopts;
  iopts.a_scales = &a_scale;
  iopts.a_scales_len = 1;
  iopts.b_scales = b_scales.data();
  iopts.b_scales_len = n;

  std::vector<float> bf16_serial(m * n), bf16_parallel(m * n);
  std::vector<float> int8_serial(m * n), int8_parallel(m * n);
  {
    ts::DeviceGuard guard(ts::Device::kSerial);
    ts::GemmBf16(a.data(), b.data(), bf16_serial.data(), m, k, n);
    ts::GemmInt8(aq.data(), bq.data(), int8_serial.data(), m, k, n, iopts);
  }
  {
    ts::DeviceGuard guard(ts::Device::kParallel);
    ts::GemmBf16(a.data(), b.data(), bf16_parallel.data(), m, k, n);
    ts::GemmInt8(aq.data(), bq.data(), int8_parallel.data(), m, k, n, iopts);
  }
  EXPECT_EQ(0, std::memcmp(bf16_serial.data(), bf16_parallel.data(),
                           m * n * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(int8_serial.data(), int8_parallel.data(),
                           m * n * sizeof(float)));
}

// --- the eval-only gate on layers ------------------------------------------

TEST(QuantTest, LinearPrecisionOnlyAppliesInEvalWithGradsOff) {
  geotorch::Rng rng(5);
  nn::Linear layer(24, 16, rng);
  ts::Tensor x = ts::Tensor::Uninitialized({4, 24});
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.flat(i) = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }

  layer.SetTraining(false);
  ts::Tensor f32_out;
  {
    ag::NoGradGuard no_grad;
    f32_out = layer.Forward(ag::Variable(x)).value();
  }

  layer.SetPrecision(nn::Precision::kInt8);
  // Grad-enabled forward: the gate keeps it f32, bitwise.
  ts::Tensor grad_on_out = layer.Forward(ag::Variable(x)).value();
  EXPECT_EQ(0, std::memcmp(f32_out.data(), grad_on_out.data(),
                           f32_out.numel() * sizeof(float)));
  // Training-mode forward: still f32, bitwise.
  layer.SetTraining(true);
  {
    ag::NoGradGuard no_grad;
    ts::Tensor training_out = layer.Forward(ag::Variable(x)).value();
    EXPECT_EQ(0, std::memcmp(f32_out.data(), training_out.data(),
                             f32_out.numel() * sizeof(float)));
  }
  // Eval + no-grad: the int8 path engages — close to f32, not equal.
  layer.SetTraining(false);
  {
    ag::NoGradGuard no_grad;
    ts::Tensor int8_out = layer.Forward(ag::Variable(x)).value();
    double max_diff = 0.0, absmax = 0.0;
    for (int64_t i = 0; i < int8_out.numel(); ++i) {
      max_diff = std::max(
          max_diff,
          static_cast<double>(std::fabs(int8_out.flat(i) - f32_out.flat(i))));
      absmax = std::max(absmax,
                        static_cast<double>(std::fabs(f32_out.flat(i))));
    }
    EXPECT_GT(max_diff, 0.0) << "int8 path did not engage";
    EXPECT_LT(max_diff, 0.05 * std::max(absmax, 1.0));
  }
  // Back to f32: bitwise identical to the original forward.
  layer.SetPrecision(nn::Precision::kF32);
  {
    ag::NoGradGuard no_grad;
    ts::Tensor back = layer.Forward(ag::Variable(x)).value();
    EXPECT_EQ(0, std::memcmp(f32_out.data(), back.data(),
                             f32_out.numel() * sizeof(float)));
  }
}

// Calibration records a static activation scale: after calibrating on
// the same input, the int8 output must match the uncalibrated
// (dynamic-scale) output, since both resolve to the same absmax.
TEST(QuantTest, CalibratedStaticScaleMatchesDynamicOnCalibrationInput) {
  geotorch::Rng rng(9);
  nn::Linear layer(16, 8, rng);
  ts::Tensor x = ts::Tensor::Uninitialized({4, 16});
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.flat(i) = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  layer.SetTraining(false);
  ag::NoGradGuard no_grad;

  layer.SetPrecision(nn::Precision::kInt8);
  ts::Tensor dynamic_out = layer.Forward(ag::Variable(x)).value();

  layer.SetPrecision(nn::Precision::kF32);
  layer.SetCalibrating(true);
  layer.Forward(ag::Variable(x));
  layer.SetCalibrating(false);
  layer.SetPrecision(nn::Precision::kInt8);
  ts::Tensor static_out = layer.Forward(ag::Variable(x)).value();
  EXPECT_EQ(0, std::memcmp(dynamic_out.data(), static_out.data(),
                           dynamic_out.numel() * sizeof(float)));
}

}  // namespace
