// Tests for the extended API surface: LeakyReLU / AvgPool2d ops,
// RMSprop and cosine scheduling, DataFrame Union/Distinct and
// variance aggregations, STR-tree kNN, distance joins, the extra
// benchmark datasets, DeepSAT v1, and the GLCM transforms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "datasets/benchmarks.h"
#include "df/dataframe.h"
#include "models/raster_models.h"
#include "optim/optimizer.h"
#include "spatial/join.h"
#include "spatial/strtree.h"
#include "tensor/conv.h"
#include "tensor/ops.h"
#include "tests/gradcheck.h"
#include "transforms/transforms.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;
namespace ag = ::geotorch::autograd;
using ::geotorch::testing::GradCheck;

TEST(LeakyReluTest, ValuesAndGradient) {
  ts::Tensor a = ts::Tensor::FromVector({4}, {-2, -1, 0, 3});
  ts::Tensor out = ts::LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(out.flat(0), -0.2f);
  EXPECT_FLOAT_EQ(out.flat(3), 3.0f);

  Rng rng(1);
  ts::Tensor x = ts::Tensor::Randn({3, 4}, rng);
  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  return ag::SumAll(ag::Mul(ag::LeakyRelu(v[0], 0.2f),
                                            ag::LeakyRelu(v[0], 0.2f)));
                },
                {x}),
            2e-2);
}

TEST(AvgPoolTest, ValuesAndAdjoint) {
  ts::Tensor x = ts::Tensor::FromVector(
      {1, 1, 2, 2}, {1, 2, 3, 4});
  ts::Tensor out = ts::AvgPool2dForward(x, 2);
  EXPECT_FLOAT_EQ(out.flat(0), 2.5f);

  Rng rng(2);
  ts::Tensor a = ts::Tensor::Randn({2, 3, 4, 4}, rng);
  ts::Tensor b = ts::Tensor::Randn({2, 3, 2, 2}, rng);
  const float lhs = ts::SumAll(ts::Mul(ts::AvgPool2dForward(a, 2), b));
  const float rhs =
      ts::SumAll(ts::Mul(a, ts::AvgPool2dBackward(b, a.shape(), 2)));
  EXPECT_NEAR(lhs, rhs, 1e-4f);

  EXPECT_LT(GradCheck(
                [](const auto& v) {
                  ag::Variable y = ag::AvgPool2d(v[0], 2);
                  return ag::SumAll(ag::Mul(y, y));
                },
                {a}),
            2e-2);
}

TEST(RmsPropTest, ConvergesOnQuadratic) {
  ag::Variable w(ts::Tensor::Zeros({3}), true);
  ts::Tensor target = ts::Tensor::FromVector({3}, {1, -2, 0.5f});
  optim::RmsProp opt({w}, 0.05f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    ag::Variable loss = ag::MseLoss(w, target);
    loss.Backward();
    opt.Step();
  }
  EXPECT_TRUE(ts::AllClose(w.value(), target, 1e-2f, 1e-2f));
}

TEST(CosineSchedulerTest, AnnealsToMinLr) {
  ag::Variable w(ts::Tensor::Zeros({1}), true);
  optim::Sgd opt({w}, 1.0f);
  optim::CosineLrScheduler sched(&opt, /*total_epochs=*/10, /*min_lr=*/0.1f);
  float prev = opt.lr();
  for (int e = 0; e < 10; ++e) {
    sched.Step();
    EXPECT_LE(opt.lr(), prev + 1e-6f);  // monotone decay
    prev = opt.lr();
  }
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
  sched.Step();  // past the horizon: stays at min
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
}

TEST(DataFrameExtTest, UnionConcatenatesRows) {
  df::DataFrame a = df::DataFrame::FromColumns(
      {{"k", df::Column::FromInt64s({1, 2})}});
  df::DataFrame b = df::DataFrame::FromColumns(
      {{"k", df::Column::FromInt64s({3})}});
  df::DataFrame u = a.Union(b);
  EXPECT_EQ(u.NumRows(), 3);
  auto keys = u.CollectInt64("k");
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 3}));
}

TEST(DataFrameExtTest, DistinctDropsDuplicates) {
  df::DataFrame frame = df::DataFrame::FromColumns(
      {{"a", df::Column::FromInt64s({1, 1, 2, 2, 2, 3})},
       {"b", df::Column::FromInt64s({0, 0, 0, 1, 1, 0})}});
  df::DataFrame d = frame.Distinct({"a", "b"});
  EXPECT_EQ(d.NumRows(), 4);  // (1,0), (2,0), (2,1), (3,0)
  EXPECT_EQ(d.schema().num_fields(), 2);
}

TEST(DataFrameExtTest, VarianceAndStdDev) {
  df::DataFrame frame = df::DataFrame::FromColumns(
      {{"k", df::Column::FromInt64s({0, 0, 0, 0})},
       {"v", df::Column::FromDoubles({2, 4, 4, 6})}});
  df::DataFrame agg = frame.GroupByAgg(
      {"k"}, {{df::AggKind::kVariance, "v", "var"},
              {df::AggKind::kStdDev, "v", "sd"}});
  // mean 4, population variance 2.
  EXPECT_NEAR(agg.CollectDouble("var")[0], 2.0, 1e-9);
  EXPECT_NEAR(agg.CollectDouble("sd")[0], std::sqrt(2.0), 1e-9);
}

TEST(StrTreeKnnTest, NearestMatchesBruteForce) {
  Rng rng(5);
  std::vector<spatial::Point> points;
  std::vector<spatial::StrTree::Entry> entries;
  for (int64_t i = 0; i < 200; ++i) {
    spatial::Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    points.push_back(p);
    entries.push_back({spatial::Envelope(p.x, p.y, p.x, p.y), i});
  }
  spatial::StrTree tree(entries);
  for (int q = 0; q < 10; ++q) {
    spatial::Point probe{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    auto got = tree.Nearest(probe, 5);
    ASSERT_EQ(got.size(), 5u);
    // Brute-force nearest.
    std::vector<int64_t> ids(points.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int64_t>(i);
    std::sort(ids.begin(), ids.end(), [&](int64_t a, int64_t b) {
      return spatial::EuclideanDistance(points[a], probe) <
             spatial::EuclideanDistance(points[b], probe);
    });
    for (int k = 0; k < 5; ++k) EXPECT_EQ(got[k], ids[k]);
  }
}

TEST(StrTreeKnnTest, SmallTreeReturnsAll) {
  spatial::StrTree tree({{spatial::Envelope(0, 0, 1, 1), 42}});
  auto got = tree.Nearest({5, 5}, 3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
}

TEST(DistanceJoinTest, MatchesBruteForce) {
  Rng rng(6);
  std::vector<spatial::Point> left;
  std::vector<spatial::Point> right;
  for (int i = 0; i < 80; ++i) {
    left.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
    right.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const double radius = 1.5;
  auto pairs = spatial::DistanceJoin(left, right, radius);
  int64_t brute = 0;
  for (const auto& a : left) {
    for (const auto& b : right) {
      if (spatial::EuclideanDistance(a, b) <= radius) ++brute;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(pairs.size()), brute);
  for (const auto& p : pairs) {
    EXPECT_LE(spatial::EuclideanDistance(left[p.left_idx],
                                         right[p.right_idx]),
              radius + 1e-12);
  }
}

TEST(NewDatasetsTest, ShapesMatchTableII) {
  datasets::GridDataset taxi = datasets::MakeTaxiNycStdn(60);
  EXPECT_EQ(taxi.height(), 10);
  EXPECT_EQ(taxi.width(), 20);
  EXPECT_EQ(taxi.channels(), 4);
  EXPECT_EQ(taxi.steps_per_day(), 48);

  datasets::GridDataset bike = datasets::MakeBikeNycStdn(60);
  EXPECT_EQ(bike.height(), 10);
  EXPECT_EQ(bike.channels(), 4);

  datasets::RasterClassificationDataset sat4 = datasets::MakeSat4(8);
  EXPECT_EQ(sat4.Get(0).x.shape(), (ts::Shape{4, 28, 28}));
  float max_label = 0;
  for (int64_t i = 0; i < sat4.Size(); ++i) {
    max_label = std::max(max_label, sat4.Get(i).y.flat(0));
  }
  EXPECT_EQ(max_label, 3.0f);  // 4 classes
}

TEST(NewDatasetsTest, ExtraWeatherKinds) {
  datasets::GridDataset geo = datasets::MakeGeopotential(48, 8, 16);
  // Geopotential heights sit in the tens of thousands.
  EXPECT_GT(ts::MeanAll(geo.st_data()), 5e4);

  datasets::GridDataset solar = datasets::MakeSolarRadiation(48, 8, 16);
  EXPECT_GE(ts::MinAll(solar.st_data()), 0.0f);  // no negative radiation
  // Night frames are zero: hour 0 is night.
  ts::Tensor midnight = ts::Slice(solar.st_data(), 0, 0, 1);
  EXPECT_EQ(ts::MaxAll(midnight), 0.0f);
  // Some daytime frame has sun.
  EXPECT_GT(ts::MaxAll(solar.st_data()), 100.0f);
}

TEST(DeepSatV1Test, TrainsOnFeatures) {
  datasets::RasterDatasetOptions options;
  options.include_additional_features = true;
  datasets::RasterClassificationDataset dataset =
      datasets::MakeSat6(24, options);
  models::RasterModelConfig mc;
  mc.in_channels = 4;
  mc.in_height = 28;
  mc.in_width = 28;
  mc.num_classes = 6;
  mc.num_filtered_features = dataset.num_additional_features();
  mc.base_filters = 8;
  models::DeepSat model(mc);
  data::DataLoader loader(&dataset, 8, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  ag::Variable logits = model.Forward(ag::Variable(batch.x),
                                      ag::Variable(batch.extras[0]));
  EXPECT_EQ(logits.shape(), (ts::Shape{8, 6}));
  // One gradient step works.
  ag::Variable loss = ag::CrossEntropyLoss(
      logits, batch.y.Reshape({batch.y.numel()}));
  loss.Backward();
  for (auto& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(GlcmTransformTest, AppendsChannels) {
  Rng rng(7);
  ts::Tensor img = ts::Tensor::Rand({3, 16, 16}, rng);
  ts::Tensor with_contrast =
      transforms::AppendGlcmContrastChannel(0)(img);
  EXPECT_EQ(with_contrast.size(0), 4);
  // Constant channel.
  ts::Tensor chan = ts::Slice(with_contrast, 0, 3, 4);
  EXPECT_EQ(ts::MinAll(chan), ts::MaxAll(chan));

  ts::Tensor with_features =
      transforms::AppendGlcmFeatureChannels(1, 32)(img);
  EXPECT_EQ(with_features.size(0), 9);  // 3 + 6 features
}

}  // namespace
}  // namespace geotorch
