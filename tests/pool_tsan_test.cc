// ThreadSanitizer stress test for the storage pool: ThreadPool workers
// hammer Allocate/Deallocate (including cross-thread frees through a
// shared exchange), while the main thread concurrently runs Trim,
// GetStats, PublishGauges, and flips the kill switch. Compiled with
// -fsanitize=thread against the raw sources (see tests/CMakeLists.txt).
#include "core/storage_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace geotorch {
namespace {

TEST(PoolTsanTest, ConcurrentAllocFreeTrimAndToggle) {
  StoragePool& pool = StoragePool::Global();
  StoragePool::SetEnabled(true);

  // Cross-thread hand-off: workers park freed-block descriptors here so
  // *other* workers (or the final drain) return them to the pool,
  // exercising the dataloader-prefetch pattern of allocate-on-worker,
  // free-on-consumer.
  std::mutex mu;
  std::vector<std::pair<void*, size_t>> parked;

  std::atomic<bool> stop{false};
  constexpr int64_t kTasks = 4096;
  ThreadPool::Global().ParallelForRange(
      kTasks, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const size_t bytes = 256u << (i % 6);  // 256 B .. 8 KiB classes
          size_t class_bytes = 0;
          void* p = pool.Allocate(bytes, &class_bytes);
          ASSERT_NE(p, nullptr);
          std::memset(p, 0xab, bytes);  // touch: catches double-handout
          if (i % 3 == 0) {
            std::lock_guard<std::mutex> lock(mu);
            parked.emplace_back(p, class_bytes);
          } else {
            pool.Deallocate(p, class_bytes);
          }
          if (i % 7 == 0) {
            std::lock_guard<std::mutex> lock(mu);
            if (!parked.empty()) {
              auto [q, cb] = parked.back();
              parked.pop_back();
              pool.Deallocate(q, cb);
            }
          }
        }
      });

  // Main thread races maintenance against the workers above on a second
  // fan-out (ParallelForRange blocks, so interleave via another sweep).
  std::atomic<int64_t> done{0};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      pool.Trim();
      (void)pool.GetStats();
      pool.PublishGauges();
      StoragePool::SetEnabled(false);
      StoragePool::SetEnabled(true);
      done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  ThreadPool::Global().ParallelForRange(
      kTasks, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          size_t class_bytes = 0;
          void* p = pool.Allocate(1024, &class_bytes);
          std::memset(p, 0xcd, 1024);
          pool.Deallocate(p, class_bytes);
        }
      });
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  EXPECT_GT(done.load(), 0);

  // Drain any still-parked blocks and verify internal consistency.
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto [p, cb] : parked) pool.Deallocate(p, cb);
    parked.clear();
  }
  StoragePool::SetEnabled(true);
  pool.Trim();
  const StoragePool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.cached_bytes, 0);
  EXPECT_EQ(stats.cached_blocks, 0);
}

}  // namespace
}  // namespace geotorch
