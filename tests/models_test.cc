#include "models/grid_models.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "datasets/grid_dataset.h"
#include "models/raster_models.h"
#include "models/segmentation_models.h"
#include "models/trainer.h"
#include "optim/optimizer.h"
#include "synth/weather.h"
#include "tensor/ops.h"

namespace geotorch::models {
namespace {

namespace ts = ::geotorch::tensor;
namespace ds = ::geotorch::datasets;
namespace synth = ::geotorch::synth;
namespace optim = ::geotorch::optim;

GridModelConfig SmallGridConfig() {
  GridModelConfig config;
  config.channels = 2;
  config.height = 8;
  config.width = 8;
  config.len_closeness = 3;
  config.len_period = 2;
  config.len_trend = 1;
  config.hidden = 8;
  return config;
}

// A tiny periodical-representation dataset over synthetic flow.
ds::GridDataset SmallPeriodicalDataset() {
  ds::GridDataset dataset(
      synth::GenerateGridFlow(/*t=*/400, /*c=*/2, /*h=*/8, /*w=*/8,
                              /*steps_per_day=*/24, /*seed=*/5),
      /*steps_per_day=*/24);
  dataset.MinMaxNormalize();
  dataset.SetPeriodicalRepresentation(3, 2, 1);
  return dataset;
}

data::Batch MakePeriodicalBatch(const ds::GridDataset& dataset, int64_t n) {
  data::DataLoader loader(&dataset, n, /*shuffle=*/false);
  data::Batch batch;
  EXPECT_TRUE(loader.Next(&batch));
  return batch;
}

TEST(GridModelsTest, PeriodicalCnnShape) {
  ds::GridDataset dataset = SmallPeriodicalDataset();
  data::Batch batch = MakePeriodicalBatch(dataset, 4);
  PeriodicalCnn model(SmallGridConfig());
  autograd::Variable out = model.Forward(batch);
  EXPECT_EQ(out.shape(), (ts::Shape{4, 2, 8, 8}));
  EXPECT_EQ(out.shape(), batch.y.shape());
}

TEST(GridModelsTest, StResNetShape) {
  ds::GridDataset dataset = SmallPeriodicalDataset();
  data::Batch batch = MakePeriodicalBatch(dataset, 4);
  StResNet model(SmallGridConfig());
  autograd::Variable out = model.Forward(batch);
  EXPECT_EQ(out.shape(), batch.y.shape());
}

TEST(GridModelsTest, DeepStnPlusShape) {
  ds::GridDataset dataset = SmallPeriodicalDataset();
  data::Batch batch = MakePeriodicalBatch(dataset, 4);
  DeepStnPlus model(SmallGridConfig());
  autograd::Variable out = model.Forward(batch);
  EXPECT_EQ(out.shape(), batch.y.shape());
}

TEST(GridModelsTest, ConvLstmShape) {
  ds::GridDataset dataset(
      synth::GenerateGridFlow(200, 2, 8, 8, 24, 6), 24);
  dataset.MinMaxNormalize();
  dataset.SetSequentialRepresentation(/*history=*/4, /*prediction=*/1);
  data::DataLoader loader(&dataset, 3, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.x.shape(), (ts::Shape{3, 4, 2, 8, 8}));
  EXPECT_EQ(batch.y.shape(), (ts::Shape{3, 1, 2, 8, 8}));
  ConvLstm model(SmallGridConfig(), /*prediction_length=*/1);
  autograd::Variable out = model.Forward(batch);
  EXPECT_EQ(out.shape(), batch.y.shape());
}

TEST(GridModelsTest, ConvLstmMultiStepPrediction) {
  ds::GridDataset dataset(
      synth::GenerateGridFlow(200, 2, 8, 8, 24, 6), 24);
  dataset.SetSequentialRepresentation(/*history=*/4, /*prediction=*/3);
  data::DataLoader loader(&dataset, 2, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  ConvLstm model(SmallGridConfig(), /*prediction_length=*/3);
  autograd::Variable out = model.Forward(batch);
  EXPECT_EQ(out.shape(), (ts::Shape{2, 3, 2, 8, 8}));
}

TEST(GridModelsTest, TrainingReducesLoss) {
  ds::GridDataset dataset = SmallPeriodicalDataset();
  data::Batch batch = MakePeriodicalBatch(dataset, 16);
  PeriodicalCnn model(SmallGridConfig());
  optim::Adam opt(model.Parameters(), 1e-2f);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    opt.ZeroGrad();
    autograd::Variable loss =
        autograd::MseLoss(model.Forward(batch), batch.y);
    loss.Backward();
    opt.Step();
    if (step == 0) first_loss = loss.value().flat(0);
    last_loss = loss.value().flat(0);
  }
  EXPECT_LT(last_loss, first_loss * 0.5f)
      << "training failed to reduce loss: " << first_loss << " -> "
      << last_loss;
}

TEST(GridModelsTest, TrainerEndToEnd) {
  ds::GridDataset dataset = SmallPeriodicalDataset();
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);
  PeriodicalCnn model(SmallGridConfig());
  TrainConfig config;
  config.max_epochs = 3;
  config.batch_size = 32;
  RegressionResult result = TrainGridModel(model, train, val, test, config);
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_GT(result.rmse, 0.0f);
  EXPECT_GE(result.rmse, result.mae);  // RMSE >= MAE always
  EXPECT_LT(result.mae, 0.5f);         // data is in [0,1]
}

TEST(RasterModelsTest, SatCnnShapeAndTraining) {
  ds::RasterDatasetOptions options;
  ds::RasterClassificationDataset dataset =
      ds::MakeEuroSat(/*n=*/40, options, /*seed=*/1);
  data::DataLoader loader(&dataset, 8, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  RasterModelConfig config;
  config.in_channels = 13;
  config.in_height = 64;
  config.in_width = 64;
  config.num_classes = 10;
  config.base_filters = 4;
  SatCnn model(config);
  autograd::Variable logits =
      model.Forward(autograd::Variable(batch.x), autograd::Variable());
  EXPECT_EQ(logits.shape(), (ts::Shape{8, 10}));
}

TEST(RasterModelsTest, DeepSatV2UsesFeatures) {
  ds::RasterDatasetOptions options;
  options.include_additional_features = true;
  ds::RasterClassificationDataset dataset =
      ds::MakeSat6(/*n=*/24, options, /*seed=*/2);
  ASSERT_GT(dataset.num_additional_features(), 0);
  data::DataLoader loader(&dataset, 6, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  ASSERT_EQ(batch.extras.size(), 1u);

  RasterModelConfig config;
  config.in_channels = 4;
  config.in_height = 28;
  config.in_width = 28;
  config.num_classes = 6;
  config.num_filtered_features = dataset.num_additional_features();
  config.base_filters = 4;
  DeepSatV2 model(config);
  autograd::Variable logits = model.Forward(
      autograd::Variable(batch.x), autograd::Variable(batch.extras[0]));
  EXPECT_EQ(logits.shape(), (ts::Shape{6, 6}));
}

TEST(SegModelsTest, AllThreeModelsProduceFullResolutionLogits) {
  ds::RasterSegmentationDataset dataset =
      ds::MakeCloud38(/*n=*/8, /*size=*/32, {}, /*seed=*/3);
  data::DataLoader loader(&dataset, 4, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));

  SegModelConfig config;
  config.in_channels = 4;
  config.num_classes = 2;
  config.base_filters = 4;

  Fcn fcn(config);
  EXPECT_EQ(fcn.Forward(autograd::Variable(batch.x)).shape(),
            (ts::Shape{4, 2, 32, 32}));
  UNet unet(config);
  EXPECT_EQ(unet.Forward(autograd::Variable(batch.x)).shape(),
            (ts::Shape{4, 2, 32, 32}));
  UNetPlusPlus unetpp(config);
  EXPECT_EQ(unetpp.Forward(autograd::Variable(batch.x)).shape(),
            (ts::Shape{4, 2, 32, 32}));
}

TEST(SegModelsTest, SegmenterLearnsCloudMask) {
  ds::RasterSegmentationDataset dataset =
      ds::MakeCloud38(/*n=*/24, /*size=*/16, {}, /*seed=*/4);
  SegModelConfig config;
  config.in_channels = 4;
  config.num_classes = 2;
  config.base_filters = 4;
  UNet model(config);
  TrainConfig tc;
  tc.max_epochs = 4;
  tc.batch_size = 8;
  tc.lr = 5e-3f;
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);
  ClassificationResult result = TrainSegmenter(model, train, val, test, tc);
  // Clouds are bright; even a few epochs should beat random (0.5).
  EXPECT_GT(result.accuracy, 0.6f);
}

TEST(ModelsTest, ParameterCountsArePositiveAndDistinct) {
  GridModelConfig config = SmallGridConfig();
  PeriodicalCnn cnn(config);
  StResNet resnet(config);
  DeepStnPlus deepstn(config);
  ConvLstm convlstm(config);
  EXPECT_GT(cnn.NumParameters(), 0);
  // ST-ResNet has three branches: far more parameters than the CNN.
  EXPECT_GT(resnet.NumParameters(), cnn.NumParameters());
  EXPECT_GT(deepstn.NumParameters(), 0);
  EXPECT_GT(convlstm.NumParameters(), 0);
}

}  // namespace
}  // namespace geotorch::models
