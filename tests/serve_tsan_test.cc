// ThreadSanitizer stress for the serving engine: many client threads
// submitting while batches run, rejects racing accepts on a tiny
// queue, and Shutdown racing in-flight submits from several threads at
// once. Built with -fsanitize=thread against the engine sources (see
// tests/CMakeLists.txt) — the library build is uninstrumented.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "tensor/tensor.h"

namespace {

namespace ts = ::geotorch::tensor;
namespace data = ::geotorch::data;
namespace serve = ::geotorch::serve;

data::Sample MakeSample(float v) {
  data::Sample s;
  s.x = ts::Tensor::Full({8}, v);
  return s;
}

serve::EngineOptions SmallOptions(int max_queue) {
  serve::EngineOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 50;
  opts.max_queue = max_queue;
  opts.warmup_batches = 1;
  return opts;
}

TEST(ServeTsanTest, ConcurrentSubmitsAndGracefulShutdown) {
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{8}, {}}, SmallOptions(256));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&engine, &ok, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto r = engine.Submit(MakeSample(static_cast<float>(t * 100 + i)));
        if (r.ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  engine.Shutdown();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(engine.stats().requests, kThreads * kPerThread);
}

TEST(ServeTsanTest, BackpressureRacesAcceptsOnATinyQueue) {
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{8}, {}}, SmallOptions(2));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 30;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&engine, &ok, &rejected] {
      for (int i = 0; i < kPerThread; ++i) {
        auto r = engine.Submit(MakeSample(1.0f));
        if (r.ok()) {
          ok.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  const auto stats = engine.stats();
  EXPECT_EQ(ok.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(stats.requests, ok.load());
  EXPECT_EQ(stats.rejected, rejected.load());
}

TEST(ServeTsanTest, ShutdownRacesInFlightSubmits) {
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{8}, {}}, SmallOptions(64));
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&engine, &stop] {
      // Submit until the engine starts refusing; accepted requests must
      // still complete (the future resolves) even mid-shutdown.
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = engine.Submit(MakeSample(2.0f));
        if (!r.ok() &&
            r.status().code() == geotorch::StatusCode::kInvalidArgument) {
          break;  // engine shut down
        }
      }
    });
  }
  // Let the clients get going, then shut down from two threads at once.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread closer1([&engine] { engine.Shutdown(); });
  std::thread closer2([&engine] { engine.Shutdown(); });
  closer1.join();
  closer2.join();
  stop.store(true);
  for (auto& c : clients) c.join();
  SUCCEED();  // the assertion is TSan finding no races and no deadlock
}

}  // namespace
