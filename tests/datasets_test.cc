#include "datasets/grid_dataset.h"

#include <gtest/gtest.h>

#include "datasets/benchmarks.h"
#include "datasets/raster_dataset.h"
#include "tensor/ops.h"
#include "transforms/transforms.h"

namespace geotorch::datasets {
namespace {

namespace ts = ::geotorch::tensor;

// A (T, 1, 2, 2) ramp where frame t is filled with the value t.
ts::Tensor RampData(int64_t t) {
  ts::Tensor data({t, 1, 2, 2});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t p = 0; p < 4; ++p) {
      data.flat(i * 4 + p) = static_cast<float>(i);
    }
  }
  return data;
}

TEST(GridDatasetTest, BasicRepresentation) {
  GridDataset dataset(RampData(10), /*steps_per_day=*/4, /*lead_time=*/2);
  EXPECT_EQ(dataset.Size(), 8);
  data::Sample s = dataset.Get(0);
  EXPECT_EQ(s.x.shape(), (ts::Shape{1, 2, 2}));
  EXPECT_EQ(s.x.flat(0), 0.0f);  // frame 0
  EXPECT_EQ(s.y.flat(0), 2.0f);  // frame 0 + lead 2
  data::Sample last = dataset.Get(7);
  EXPECT_EQ(last.y.flat(0), 9.0f);
}

TEST(GridDatasetTest, SequentialRepresentation) {
  GridDataset dataset(RampData(10), 4);
  dataset.SetSequentialRepresentation(/*history=*/3, /*prediction=*/2);
  // Targets run from t=3 to t=8 (y needs 2 frames) -> 6 samples.
  EXPECT_EQ(dataset.Size(), 6);
  data::Sample s = dataset.Get(0);
  EXPECT_EQ(s.x.shape(), (ts::Shape{3, 1, 2, 2}));
  EXPECT_EQ(s.y.shape(), (ts::Shape{2, 1, 2, 2}));
  // x = frames 0,1,2; y = frames 3,4.
  EXPECT_EQ(s.x.flat(0), 0.0f);
  EXPECT_EQ(s.x.flat(8), 2.0f);
  EXPECT_EQ(s.y.flat(0), 3.0f);
  EXPECT_EQ(s.y.flat(4), 4.0f);
}

TEST(GridDatasetTest, PeriodicalRepresentation) {
  // steps_per_day=4, trend period = 28 steps.
  GridDataset dataset(RampData(40), 4);
  dataset.SetPeriodicalRepresentation(/*closeness=*/2, /*period=*/1,
                                      /*trend=*/1);
  // First target = max(2, 1*4, 1*28) = 28; size = 40 - 28 = 12.
  EXPECT_EQ(dataset.Size(), 12);
  data::Sample s = dataset.Get(0);
  const int64_t target = 28;
  // Closeness = frames 26, 27 stacked along channels.
  EXPECT_EQ(s.x.shape(), (ts::Shape{2, 2, 2}));
  EXPECT_EQ(s.x.flat(0), static_cast<float>(target - 2));
  EXPECT_EQ(s.x.flat(4), static_cast<float>(target - 1));
  ASSERT_EQ(s.extras.size(), 2u);
  // Period = frame 24 (one day back).
  EXPECT_EQ(s.extras[0].flat(0), static_cast<float>(target - 4));
  // Trend = frame 0 (one week back).
  EXPECT_EQ(s.extras[1].flat(0), static_cast<float>(target - 28));
  EXPECT_EQ(s.y.flat(0), static_cast<float>(target));
}

TEST(GridDatasetTest, PeriodicalWithoutTrend) {
  GridDataset dataset(RampData(20), 4);
  dataset.SetPeriodicalRepresentation(2, 2, 0);
  // First target = max(2, 2*4) = 8.
  EXPECT_EQ(dataset.Size(), 12);
  data::Sample s = dataset.Get(0);
  EXPECT_EQ(s.extras.size(), 1u);  // period only
}

TEST(GridDatasetTest, MinMaxNormalize) {
  GridDataset dataset(RampData(5), 4);
  auto [mn, mx] = dataset.MinMaxNormalize();
  EXPECT_EQ(mn, 0.0f);
  EXPECT_EQ(mx, 4.0f);
  EXPECT_EQ(ts::MinAll(dataset.st_data()), 0.0f);
  EXPECT_EQ(ts::MaxAll(dataset.st_data()), 1.0f);
}

TEST(BenchmarkDatasetsTest, WeatherShapes) {
  GridDataset temp = MakeTemperature(/*timesteps=*/100, 8, 16, 1);
  EXPECT_EQ(temp.num_timesteps(), 100);
  EXPECT_EQ(temp.height(), 8);
  EXPECT_EQ(temp.width(), 16);
  EXPECT_EQ(temp.channels(), 1);
  EXPECT_EQ(temp.steps_per_day(), 24);
}

TEST(BenchmarkDatasetsTest, TrafficShapesMatchPaper) {
  GridDataset bike = MakeBikeNycDeepStn(/*timesteps=*/60);
  EXPECT_EQ(bike.height(), 21);
  EXPECT_EQ(bike.width(), 12);
  EXPECT_EQ(bike.channels(), 2);

  GridDataset taxi = MakeTaxiBj21(/*timesteps=*/60);
  EXPECT_EQ(taxi.height(), 32);
  EXPECT_EQ(taxi.width(), 32);
  EXPECT_EQ(taxi.steps_per_day(), 48);
}

TEST(BenchmarkDatasetsTest, YellowTripEndToEnd) {
  YellowTripConfig config;
  config.num_records = 5000;
  config.duration_sec = 2 * 86400;
  config.seed = 4;
  GridDataset dataset = MakeYellowTripNyc(config);
  EXPECT_EQ(dataset.height(), 16);
  EXPECT_EQ(dataset.width(), 12);
  EXPECT_EQ(dataset.channels(), 2);
  // All trips land somewhere: total pickups+dropoffs == records.
  EXPECT_EQ(static_cast<int64_t>(ts::SumAll(dataset.st_data())),
            config.num_records);
  // Supports every representation (the paper's selling point for this
  // dataset).
  dataset.SetSequentialRepresentation(4, 2);
  EXPECT_GT(dataset.Size(), 0);
  dataset.SetPeriodicalRepresentation(2, 1, 0);
  EXPECT_GT(dataset.Size(), 0);
}

TEST(RasterDatasetTest, EuroSatShapes) {
  RasterClassificationDataset dataset = MakeEuroSat(/*n=*/20);
  EXPECT_EQ(dataset.Size(), 20);
  EXPECT_EQ(dataset.bands(), 13);
  data::Sample s = dataset.Get(3);
  EXPECT_EQ(s.x.shape(), (ts::Shape{13, 64, 64}));
  EXPECT_EQ(s.y.numel(), 1);
  EXPECT_TRUE(s.extras.empty());
}

TEST(RasterDatasetTest, BandSelection) {
  RasterDatasetOptions options;
  options.selected_bands = {3, 2, 1};
  RasterClassificationDataset dataset = MakeEuroSat(10, options);
  EXPECT_EQ(dataset.bands(), 3);
  EXPECT_EQ(dataset.Get(0).x.shape(), (ts::Shape{3, 64, 64}));
}

TEST(RasterDatasetTest, AdditionalFeatures) {
  RasterDatasetOptions options;
  options.include_additional_features = true;
  RasterClassificationDataset dataset = MakeSat6(12, options);
  // SAT-6 has 4 bands: 3 spectral + 6 GLCM = 9 features.
  EXPECT_EQ(dataset.num_additional_features(), 9);
  data::Sample s = dataset.Get(0);
  ASSERT_EQ(s.extras.size(), 1u);
  EXPECT_EQ(s.extras[0].shape(), (ts::Shape{9}));
}

TEST(RasterDatasetTest, EuroSatFeatureCountMatchesPaper) {
  RasterDatasetOptions options;
  options.include_additional_features = true;
  RasterClassificationDataset dataset = MakeEuroSat(10, options);
  // 13 bands -> capped at 7 spectral + 6 textural = 13.
  EXPECT_EQ(dataset.num_additional_features(), 13);
}

TEST(RasterDatasetTest, TransformAppliedOnTheFly) {
  RasterDatasetOptions options;
  options.transform = transforms::AppendNormalizedDifferenceIndex(0, 1);
  RasterClassificationDataset dataset = MakeSat6(6, options);
  data::Sample s = dataset.Get(0);
  EXPECT_EQ(s.x.size(0), 5);  // 4 bands + NDI
}

TEST(RasterDatasetTest, SegmentationDataset) {
  RasterSegmentationDataset dataset = MakeCloud38(/*n=*/6, /*size=*/32);
  EXPECT_EQ(dataset.Size(), 6);
  data::Sample s = dataset.Get(2);
  EXPECT_EQ(s.x.shape(), (ts::Shape{4, 32, 32}));
  EXPECT_EQ(s.y.shape(), (ts::Shape{32, 32}));
  for (int64_t i = 0; i < s.y.numel(); ++i) {
    EXPECT_TRUE(s.y.flat(i) == 0.0f || s.y.flat(i) == 1.0f);
  }
}

TEST(RasterDatasetTest, SlumDetectionBinary) {
  RasterClassificationDataset dataset = MakeSlumDetection(8);
  for (int64_t i = 0; i < dataset.Size(); ++i) {
    const float y = dataset.Get(i).y.flat(0);
    EXPECT_TRUE(y == 0.0f || y == 1.0f);
  }
}

}  // namespace
}  // namespace geotorch::datasets
