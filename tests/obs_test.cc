#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <cstdint>
#include <filesystem>

#include "core/thread_pool.h"
#include "df/dataframe.h"
#include "df/partition_store.h"
#include "spatial/grid.h"
#include "spatial/join.h"
#include "spatial/strtree.h"
#include "serve/engine.h"
#include "tensor/tensor.h"

namespace obs = ::geotorch::obs;

namespace {

// Minimal structural JSON validator: checks quote/escape handling and
// that braces/brackets balance outside of strings. Not a full parser,
// but enough to catch unescaped names and truncated output.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

const obs::SpanNode* FindNode(const std::vector<obs::SpanNode>& nodes,
                              const std::string& name) {
  for (const auto& n : nodes) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Reset();
  }
  void TearDown() override {
    obs::SetEnabled(true);
    obs::Reset();
  }
};

TEST_F(ObsTest, CounterInterningAndAdd) {
  obs::Counter* a = obs::GetCounter("test.counter_a");
  obs::Counter* a2 = obs::GetCounter("test.counter_a");
  obs::Counter* b = obs::GetCounter("test.counter_b");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  a->Add(3);
  a->Add(4);
  b->Add(1);
  EXPECT_EQ(a->value(), 7);
  EXPECT_EQ(b->value(), 1);

  const auto values = obs::CounterValues();
  ASSERT_GE(values.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      values.begin(), values.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
  auto it = std::find_if(values.begin(), values.end(), [](const auto& kv) {
    return kv.first == "test.counter_a";
  });
  ASSERT_NE(it, values.end());
  EXPECT_EQ(it->second, 7);
}

// Macro behavior differs by build flavor: live by default, fully
// compiled out under -DGEOTORCH_OBS=OFF.
#if !defined(GEOTORCH_OBS_DISABLED)
TEST_F(ObsTest, CounterMacroCachesAndAdds) {
  for (int i = 0; i < 5; ++i) {
    GEO_OBS_COUNT("test.macro_counter", 2);
  }
  EXPECT_EQ(obs::GetCounter("test.macro_counter")->value(), 10);
}
#else
TEST_F(ObsTest, MacrosCompileOut) {
  GEO_OBS_COUNT("test.macro_counter", 2);
  GEO_OBS_HIST("test.macro_hist", 1);
  GEO_OBS_SPAN(unused_span, "test_macro_span");
  EXPECT_FALSE(GEO_OBS_ON());
  EXPECT_EQ(obs::GetCounter("test.macro_counter")->value(), 0);
}
#endif

TEST_F(ObsTest, HistogramStatsAndBuckets) {
  obs::Histogram* h = obs::GetHistogram("test.hist");
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->min(), 0);  // empty -> 0
  EXPECT_EQ(h->max(), 0);

  h->Record(0);    // bucket 0 (v <= 0)
  h->Record(-5);   // bucket 0
  h->Record(1);    // bucket 1: [1, 2)
  h->Record(3);    // bucket 2: [2, 4)
  h->Record(4);    // bucket 3: [4, 8)
  h->Record(100);  // bucket 7: [64, 128)

  EXPECT_EQ(h->count(), 6);
  EXPECT_EQ(h->sum(), 0 - 5 + 1 + 3 + 4 + 100);
  EXPECT_EQ(h->min(), -5);
  EXPECT_EQ(h->max(), 100);
  EXPECT_EQ(h->bucket(0), 2);
  EXPECT_EQ(h->bucket(1), 1);
  EXPECT_EQ(h->bucket(2), 1);
  EXPECT_EQ(h->bucket(3), 1);
  EXPECT_EQ(h->bucket(7), 1);

  int64_t total = 0;
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) total += h->bucket(i);
  EXPECT_EQ(total, h->count());

  EXPECT_EQ(obs::Histogram::BucketBound(0), 0);
  EXPECT_EQ(obs::Histogram::BucketBound(1), 2);
  EXPECT_EQ(obs::Histogram::BucketBound(3), 8);

  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->sum(), 0);
  EXPECT_EQ(h->bucket(0), 0);
}

TEST_F(ObsTest, Gauges) {
  obs::SetGauge("test.gauge", 42);
  obs::SetGauge("test.gauge", 7);  // last write wins
  obs::SetGauge("test.other", -1);
  const auto gauges = obs::GaugeValues();
  auto it = std::find_if(gauges.begin(), gauges.end(), [](const auto& kv) {
    return kv.first == "test.gauge";
  });
  ASSERT_NE(it, gauges.end());
  EXPECT_EQ(it->second, 7);
}

TEST_F(ObsTest, SpanNestingAggregatesAsTree) {
  {
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
    }
    {
      obs::TraceSpan inner("inner");
    }
  }
  {
    obs::TraceSpan outer("outer");
  }
  const auto roots = obs::AggregateSpans();
  const obs::SpanNode* outer = FindNode(roots, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2);
  EXPECT_GE(outer->total_ns, 0);
  const obs::SpanNode* inner = FindNode(outer->children, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2);
  EXPECT_LE(inner->total_ns, outer->total_ns);
  // "inner" never appears as a root.
  EXPECT_EQ(FindNode(roots, "inner"), nullptr);
}

TEST_F(ObsTest, OpenSpansAreExcludedFromAggregation) {
  obs::TraceSpan open_span("still_open");
  {
    obs::TraceSpan closed("closed_child");
  }
  const auto roots = obs::AggregateSpans();
  EXPECT_EQ(FindNode(roots, "still_open"), nullptr);
  // The child of an open span is re-rooted so its time is not lost.
  const obs::SpanNode* child = FindNode(roots, "closed_child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, 1);
}

TEST_F(ObsTest, SpansMergeAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan work("worker_span");
        obs::TraceSpan sub("worker_child");
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto roots = obs::AggregateSpans();
  const obs::SpanNode* work = FindNode(roots, "worker_span");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->count, kThreads * kSpansPerThread);
  const obs::SpanNode* child = FindNode(work->children, "worker_child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, kThreads * kSpansPerThread);
}

TEST_F(ObsTest, JsonExportStructureAndContent) {
  obs::GetCounter("json.counter")->Add(5);
  obs::GetHistogram("json.hist")->Record(17);
  obs::SetGauge("json.gauge", 9);
  {
    obs::TraceSpan root("json_root");
    obs::TraceSpan leaf("json_leaf");
  }
  const std::string json = obs::ExportJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"json_root\""), std::string::npos);
  EXPECT_NE(json.find("\"json_leaf\""), std::string::npos);
}

#if !defined(GEOTORCH_OBS_DISABLED)
// The parallel spatial engine instruments its hot paths; a join driven
// through both strategies must surface its spans and counters in the
// trace export. An explicit multi-thread pool forces the parallel
// probe/merge path even on single-core machines (the global pool may
// have one worker there, which silently falls back to serial).
TEST_F(ObsTest, SpatialJoinSpansAndCountersInTrace) {
  namespace sp = ::geotorch::spatial;
  geotorch::ThreadPool pool(3);
  sp::GridPartitioner grid(sp::Envelope(0, 0, 10, 10), 4, 4);
  const std::vector<sp::Polygon> cells = grid.CellPolygons();
  std::vector<sp::Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({0.01 + 9.98 * (i % 50) / 50.0,
                      0.01 + 9.98 * (i / 50) / 10.0});
  }

  sp::JoinOptions tree_opts;
  tree_opts.strategy = sp::JoinStrategy::kStrTree;
  tree_opts.parallel = true;
  tree_opts.pool = &pool;
  const auto tree_pairs = sp::PointInPolygonJoin(points, cells, tree_opts);

  sp::JoinOptions grid_opts = tree_opts;
  grid_opts.strategy = sp::JoinStrategy::kGridHash;
  const auto grid_pairs =
      sp::PointInPolygonJoin(points, cells, grid_opts, &grid);
  ASSERT_EQ(grid_pairs, tree_pairs);

  EXPECT_EQ(obs::GetCounter("spatial.probes")->value(),
            2 * static_cast<int64_t>(points.size()));
  EXPECT_EQ(obs::GetCounter("spatial.fastpath_hits")->value(),
            static_cast<int64_t>(grid_pairs.size()));
  // Both joins took the partition-parallel probe path, so the merged
  // result bytes were counted for each.
  EXPECT_EQ(
      obs::GetCounter("spatial.merge_bytes")->value(),
      static_cast<int64_t>((tree_pairs.size() + grid_pairs.size()) *
                           sizeof(sp::JoinPair)));

  const std::string json = obs::ExportJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  for (const char* needle :
       {"\"spatial.build\"", "\"spatial.probe\"", "\"spatial.probes\"",
        "\"spatial.build_entries\"", "\"spatial.fastpath_hits\"",
        "\"spatial.merge_bytes\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST_F(ObsTest, ServeEngineCountersHistogramsAndSpans) {
  namespace serve = ::geotorch::serve;
  namespace ts = ::geotorch::tensor;
  namespace data = ::geotorch::data;

  serve::EngineOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 100;
  opts.max_queue = 64;
  opts.warmup_batches = 1;
  constexpr int kRequests = 12;
  {
    serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                         serve::SampleSpec{{4}, {}}, opts);
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&engine] {
        for (int i = 0; i < kRequests / 4; ++i) {
          data::Sample s;
          s.x = ts::Tensor::Full({4}, 1.0f);
          auto r = engine.Submit(s);
          EXPECT_TRUE(r.ok());
        }
      });
    }
    for (auto& c : clients) c.join();
  }  // engine drains and joins here

  EXPECT_EQ(obs::GetCounter("serve.requests")->value(), kRequests);
  EXPECT_EQ(obs::GetCounter("serve.rejected")->value(), 0);
  const int64_t batches = obs::GetCounter("serve.batches")->value();
  EXPECT_GE(batches, (kRequests + opts.max_batch - 1) / opts.max_batch);
  EXPECT_LE(batches, kRequests);

  // Histograms: one batch_size sample per batch summing to the request
  // count, one latency sample per served request.
  obs::Histogram* batch_size = obs::GetHistogram("serve.batch_size");
  EXPECT_EQ(batch_size->count(), batches);
  EXPECT_EQ(batch_size->sum(), kRequests);
  EXPECT_LE(batch_size->max(), opts.max_batch);
  EXPECT_EQ(obs::GetHistogram("serve.latency_us")->count(), kRequests);

  // Spans: one warmup, one serve.batch per batch with the forward
  // nested inside it.
  const auto spans = obs::AggregateSpans();
  const obs::SpanNode* warmup = FindNode(spans, "serve.warmup");
  ASSERT_NE(warmup, nullptr);
  EXPECT_EQ(warmup->count, 1);
  const obs::SpanNode* batch_span = FindNode(spans, "serve.batch");
  ASSERT_NE(batch_span, nullptr);
  EXPECT_EQ(batch_span->count, batches);
  const obs::SpanNode* fwd = FindNode(batch_span->children, "serve.forward");
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->count, batches);

  const std::string json = obs::ExportJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  for (const char* needle :
       {"\"serve.requests\"", "\"serve.batches\"", "\"serve.batch_size\"",
        "\"serve.latency_us\"", "\"serve.queue_depth\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST_F(ObsTest, DataFrameSpillCountersGaugeAndSpans) {
  namespace df = ::geotorch::df;

  const auto saved = df::PartitionStore::Global().options();
  df::PartitionStore::Options opts;
  opts.enabled = true;
  opts.resident_budget_bytes = 1;  // spill everything evictable
  opts.spill_dir = "obs_test_spill";
  df::PartitionStore::Global().Configure(opts);
  {
    std::vector<int64_t> ids(512);
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int64_t>(i);
    df::DataFrame frame =
        df::DataFrame::FromColumns(
            {{"id", df::Column::FromInt64s(std::move(ids))}})
            .Repartition(4);
    // Round-trip every partition through the spill path: cycling pins
    // under a 1-byte budget forces evictions and fault-ins.
    for (int round = 0; round < 2; ++round) {
      for (int pi = 0; pi < frame.num_partitions(); ++pi) {
        df::Partition::Pin pin(frame.partition(pi));
      }
    }
  }
  df::PartitionStore::Global().Configure(saved);
  std::error_code ec;
  std::filesystem::remove_all(opts.spill_dir, ec);

  // Counters: GTDF bytes actually written, and fault-ins from the pins.
  EXPECT_GT(obs::GetCounter("df.spill_bytes")->value(), 0);
  EXPECT_GT(obs::GetCounter("df.fault_in")->value(), 0);

  // Gauge: the store publishes its resident footprint on every change.
  const auto gauges = obs::GaugeValues();
  const auto it =
      std::find_if(gauges.begin(), gauges.end(),
                   [](const auto& g) { return g.first == "df.resident_bytes"; });
  ASSERT_NE(it, gauges.end());
  EXPECT_GE(it->second, 0);

  // Spans: one df.spill per eviction, one df.fault per fault-in.
  const auto spans = obs::AggregateSpans();
  const obs::SpanNode* spill = FindNode(spans, "df.spill");
  ASSERT_NE(spill, nullptr);
  EXPECT_GT(spill->count, 0);
  const obs::SpanNode* fault = FindNode(spans, "df.fault");
  ASSERT_NE(fault, nullptr);
  EXPECT_GT(fault->count, 0);

  const std::string json = obs::ExportJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  for (const char* needle : {"\"df.spill_bytes\"", "\"df.fault_in\"",
                             "\"df.resident_bytes\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}
#endif

TEST_F(ObsTest, JsonEscapesSpecialCharacters) {
  obs::SetGauge("quote\"back\\slash", 1);
  const std::string json = obs::ExportJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST_F(ObsTest, WriteJsonFileRoundTrip) {
  obs::GetCounter("file.counter")->Add(1);
  const std::string path =
      ::testing::TempDir() + "/obs_test_export.json";
  ASSERT_TRUE(obs::WriteJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, obs::ExportJson());
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::GetCounter("reset.counter")->Add(3);
  obs::GetHistogram("reset.hist")->Record(8);
  obs::SetGauge("reset.gauge", 1);
  {
    obs::TraceSpan s("reset_span");
  }
  obs::Reset();
  EXPECT_EQ(obs::GetCounter("reset.counter")->value(), 0);
  EXPECT_EQ(obs::GetHistogram("reset.hist")->count(), 0);
  EXPECT_TRUE(obs::GaugeValues().empty());
  EXPECT_TRUE(obs::AggregateSpans().empty());
}

TEST_F(ObsTest, SpanOpenAcrossResetDoesNotCorrupt) {
  auto* span = new obs::TraceSpan("crosses_reset");
  obs::Reset();
  delete span;  // closes after Reset; must not resurrect or crash
  EXPECT_EQ(FindNode(obs::AggregateSpans(), "crosses_reset"), nullptr);
}

TEST_F(ObsTest, RuntimeDisableStopsRecording) {
  obs::SetEnabled(false);
  EXPECT_FALSE(obs::Enabled());
  EXPECT_FALSE(GEO_OBS_ON());
  {
    obs::TraceSpan s("disabled_span");
  }
  obs::SetEnabled(true);
  EXPECT_EQ(FindNode(obs::AggregateSpans(), "disabled_span"), nullptr);

  // Direct registry access still works while disabled — only the
  // macro/span fast paths go dark.
  obs::SetEnabled(false);
  obs::GetCounter("disabled.counter")->Add(1);
  EXPECT_EQ(obs::GetCounter("disabled.counter")->value(), 1);
}

}  // namespace
