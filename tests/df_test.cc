#include "df/dataframe.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/rng.h"
#include "df/csv.h"

namespace geotorch::df {
namespace {

DataFrame SampleFrame() {
  return DataFrame::FromColumns(
      {{"id", Column::FromInt64s({1, 2, 3, 4, 5, 6})},
       {"group", Column::FromInt64s({0, 1, 0, 1, 0, 1})},
       {"value", Column::FromDoubles({1.0, 2.0, 3.0, 4.0, 5.0, 6.0})}});
}

TEST(ColumnTest, TypedAccess) {
  Column c = Column::FromDoubles({1.5, 2.5});
  EXPECT_EQ(c.type(), DataType::kDouble);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(std::get<double>(c.Get(1)), 2.5);
  c.Append(3.5);
  EXPECT_EQ(c.size(), 3);
}

TEST(ColumnTest, GeometryColumn) {
  Column c = Column::FromPoints({{1, 2}, {3, 4}});
  EXPECT_EQ(c.type(), DataType::kGeometry);
  EXPECT_EQ(c.points()[1].x, 3);
  EXPECT_GT(c.ByteSize(), 0);
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_TRUE(s.HasField("a"));
  EXPECT_FALSE(s.HasField("c"));
}

TEST(DataFrameTest, FromColumnsBasics) {
  DataFrame frame = SampleFrame();
  EXPECT_EQ(frame.NumRows(), 6);
  EXPECT_EQ(frame.num_partitions(), 1);
  EXPECT_EQ(frame.schema().num_fields(), 3);
}

TEST(DataFrameTest, RepartitionPreservesRows) {
  DataFrame frame = SampleFrame().Repartition(4);
  EXPECT_EQ(frame.num_partitions(), 4);
  EXPECT_EQ(frame.NumRows(), 6);
  std::vector<int64_t> ids = frame.CollectInt64("id");
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(DataFrameTest, SelectReordersColumns) {
  DataFrame out = SampleFrame().Select({"value", "id"});
  EXPECT_EQ(out.schema().num_fields(), 2);
  EXPECT_EQ(out.schema().name(0), "value");
  EXPECT_EQ(out.CollectInt64("id").size(), 6u);
}

TEST(DataFrameTest, Filter) {
  DataFrame frame = SampleFrame().Repartition(3);
  const int value_idx = frame.schema().FieldIndex("value");
  DataFrame out = frame.Filter(
      [value_idx](const RowView& row) { return row.GetDouble(value_idx) > 3.0; });
  EXPECT_EQ(out.NumRows(), 3);
}

TEST(DataFrameTest, WithColumnComputes) {
  DataFrame frame = SampleFrame();
  const int value_idx = frame.schema().FieldIndex("value");
  DataFrame out = frame.WithColumn(
      "doubled", DataType::kDouble,
      [value_idx](const RowView& row) -> Value {
        return row.GetDouble(value_idx) * 2.0;
      });
  std::vector<double> doubled = out.CollectDouble("doubled");
  EXPECT_EQ(doubled[0], 2.0);
  EXPECT_EQ(doubled[5], 12.0);
}

TEST(DataFrameTest, Drop) {
  DataFrame out = SampleFrame().Drop("group");
  EXPECT_EQ(out.schema().num_fields(), 2);
  EXPECT_FALSE(out.schema().HasField("group"));
}

TEST(DataFrameTest, GroupByAggMatchesManual) {
  Rng rng(5);
  std::vector<int64_t> keys;
  std::vector<double> values;
  std::map<int64_t, std::pair<int64_t, double>> manual;  // count, sum
  std::map<int64_t, double> manual_min;
  std::map<int64_t, double> manual_max;
  for (int i = 0; i < 500; ++i) {
    const int64_t k = rng.UniformInt(0, 20);
    const double v = rng.Uniform(-10, 10);
    keys.push_back(k);
    values.push_back(v);
    manual[k].first += 1;
    manual[k].second += v;
    auto [min_it, inserted] = manual_min.try_emplace(k, v);
    if (!inserted) min_it->second = std::min(min_it->second, v);
    auto [max_it, inserted2] = manual_max.try_emplace(k, v);
    if (!inserted2) max_it->second = std::max(max_it->second, v);
  }
  DataFrame frame =
      DataFrame::FromColumns({{"k", Column::FromInt64s(keys)},
                              {"v", Column::FromDoubles(values)}})
          .Repartition(4);
  DataFrame agg = frame.GroupByAgg(
      {"k"}, {{AggKind::kCount, "", "n"},
              {AggKind::kSum, "v", "sum_v"},
              {AggKind::kMin, "v", "min_v"},
              {AggKind::kMax, "v", "max_v"},
              {AggKind::kMean, "v", "mean_v"}});
  EXPECT_EQ(agg.NumRows(), static_cast<int64_t>(manual.size()));

  DataFrame sorted = agg.SortByInt64("k");
  std::vector<int64_t> out_k = sorted.CollectInt64("k");
  std::vector<int64_t> out_n = sorted.CollectInt64("n");
  std::vector<double> out_sum = sorted.CollectDouble("sum_v");
  std::vector<double> out_min = sorted.CollectDouble("min_v");
  std::vector<double> out_max = sorted.CollectDouble("max_v");
  std::vector<double> out_mean = sorted.CollectDouble("mean_v");
  for (size_t i = 0; i < out_k.size(); ++i) {
    const int64_t k = out_k[i];
    EXPECT_EQ(out_n[i], manual[k].first);
    EXPECT_NEAR(out_sum[i], manual[k].second, 1e-9);
    EXPECT_NEAR(out_min[i], manual_min[k], 1e-12);
    EXPECT_NEAR(out_max[i], manual_max[k], 1e-12);
    EXPECT_NEAR(out_mean[i], manual[k].second / manual[k].first, 1e-9);
  }
}

TEST(DataFrameTest, GroupByMultipleKeys) {
  DataFrame frame = SampleFrame();
  DataFrame agg = frame.GroupByAgg({"group", "id"},
                                   {{AggKind::kCount, "", "n"}});
  EXPECT_EQ(agg.NumRows(), 6);  // all (group, id) pairs unique
}

TEST(DataFrameTest, JoinInner) {
  DataFrame left = SampleFrame();
  DataFrame right = DataFrame::FromColumns(
      {{"group", Column::FromInt64s({0, 1})},
       {"label", Column::FromStrings({"even", "odd"})}});
  DataFrame joined = left.JoinInner(right, "group", "group");
  EXPECT_EQ(joined.NumRows(), 6);
  EXPECT_TRUE(joined.schema().HasField("label"));
  // Row with id=2 (group 1) gets "odd".
  const int id_idx = joined.schema().FieldIndex("id");
  const int label_idx = joined.schema().FieldIndex("label");
  bool found = false;
  for (int pi = 0; pi < joined.num_partitions(); ++pi) {
    const Partition& part = joined.partition(pi);
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      if (part.column(id_idx).int64s()[r] == 2) {
        EXPECT_EQ(part.column(label_idx).strings()[r], "odd");
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(DataFrameTest, JoinDropsUnmatched) {
  DataFrame left = SampleFrame();
  DataFrame right = DataFrame::FromColumns(
      {{"g", Column::FromInt64s({0})},
       {"tag", Column::FromInt64s({42})}});
  DataFrame joined = left.JoinInner(right, "group", "g");
  EXPECT_EQ(joined.NumRows(), 3);  // only group==0 rows
}

TEST(DataFrameTest, SortByInt64) {
  DataFrame frame = DataFrame::FromColumns(
      {{"k", Column::FromInt64s({3, 1, 2})},
       {"v", Column::FromDoubles({30, 10, 20})}});
  DataFrame sorted = frame.SortByInt64("k");
  EXPECT_EQ(sorted.CollectInt64("k"), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(sorted.CollectDouble("v"), (std::vector<double>{10, 20, 30}));
}

// The sort runs per-partition with a k-way merge; the result must be a
// *stable* global sort with respect to the frame's row order (its
// partitions concatenated). Tag each row so ties are observable, and
// compute the expectation from the frame's own order — Repartition is
// round-robin, so that order differs from the input vectors'.
TEST(DataFrameTest, SortByInt64StableAcrossPartitions) {
  Rng rng(29);
  const int64_t n = 4000;
  std::vector<int64_t> keys(n);
  std::vector<int64_t> tags(n);
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.UniformInt(0, 12);  // heavy ties
    tags[i] = i;
  }

  for (int parts : {1, 3, 8}) {
    DataFrame frame =
        DataFrame::FromColumns({{"k", Column::FromInt64s(keys)},
                                {"tag", Column::FromInt64s(tags)}})
            .Repartition(parts);
    const std::vector<int64_t> frame_k = frame.CollectInt64("k");
    const std::vector<int64_t> frame_tag = frame.CollectInt64("tag");
    std::vector<int64_t> order(n);
    for (int64_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(
        order.begin(), order.end(),
        [&](int64_t a, int64_t b) { return frame_k[a] < frame_k[b]; });

    DataFrame sorted = frame.SortByInt64("k");
    const std::vector<int64_t> out_k = sorted.CollectInt64("k");
    const std::vector<int64_t> out_tag = sorted.CollectInt64("tag");
    ASSERT_EQ(out_k.size(), static_cast<size_t>(n)) << parts;
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(out_k[i], frame_k[order[i]])
          << "parts=" << parts << " i=" << i;
      ASSERT_EQ(out_tag[i], frame_tag[order[i]])
          << "parts=" << parts << " i=" << i;
    }
  }
}

TEST(DataFrameTest, MemoryAccountingReleasesOnDrop) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t before = tracker.current_bytes();
  {
    std::vector<int64_t> big(100000, 7);
    DataFrame frame =
        DataFrame::FromColumns({{"x", Column::FromInt64s(std::move(big))}});
    EXPECT_GE(tracker.current_bytes(), before + 800000);
  }
  EXPECT_LE(tracker.current_bytes(), before + 1024);
}

DataFrame EmptyFrame() {
  return DataFrame::FromColumns(
      {{"k", Column::FromInt64s({})}, {"v", Column::FromDoubles({})}});
}

TEST(DataFrameTest, GroupByOnEmptyFrame) {
  DataFrame agg = EmptyFrame().GroupByAgg(
      {"k"}, {{AggKind::kCount, "", "n"}, {AggKind::kSum, "v", "sum_v"}});
  EXPECT_EQ(agg.NumRows(), 0);
  EXPECT_TRUE(agg.schema().HasField("k"));
  EXPECT_TRUE(agg.schema().HasField("n"));
  EXPECT_TRUE(agg.schema().HasField("sum_v"));
  EXPECT_TRUE(agg.CollectInt64("k").empty());
}

TEST(DataFrameTest, JoinOnEmptySides) {
  DataFrame populated = SampleFrame();
  DataFrame empty = DataFrame::FromColumns(
      {{"k", Column::FromInt64s({})}, {"tag", Column::FromInt64s({})}});

  DataFrame left_empty = EmptyFrame().JoinInner(populated, "k", "group");
  EXPECT_EQ(left_empty.NumRows(), 0);
  EXPECT_TRUE(left_empty.schema().HasField("value"));

  DataFrame right_empty = populated.JoinInner(empty, "group", "k");
  EXPECT_EQ(right_empty.NumRows(), 0);
  EXPECT_TRUE(right_empty.schema().HasField("tag"));
  EXPECT_TRUE(right_empty.CollectInt64("id").empty());
}

TEST(DataFrameTest, JoinWithZeroMatches) {
  DataFrame left = SampleFrame();
  DataFrame right = DataFrame::FromColumns(
      {{"g", Column::FromInt64s({77, 78})},
       {"tag", Column::FromInt64s({1, 2})}});
  DataFrame joined = left.JoinInner(right, "group", "g");
  EXPECT_EQ(joined.NumRows(), 0);
  // The right key column is dropped from the output schema.
  EXPECT_EQ(joined.schema().num_fields(), 4);  // id, group, value, tag
  EXPECT_TRUE(joined.CollectInt64("tag").empty());
}

TEST(DataFrameTest, SortOnEmptyFrame) {
  DataFrame sorted = EmptyFrame().SortByInt64("k");
  EXPECT_EQ(sorted.NumRows(), 0);
  EXPECT_TRUE(sorted.CollectInt64("k").empty());
}

TEST(DataFrameTest, SingleRowPartitions) {
  // More partitions than rows: some partitions hold one row, some none.
  DataFrame frame = SampleFrame().Repartition(8);
  EXPECT_EQ(frame.NumRows(), 6);

  DataFrame agg =
      frame.GroupByAgg({"group"}, {{AggKind::kCount, "", "n"},
                                   {AggKind::kSum, "value", "sum_v"}});
  DataFrame sorted = agg.SortByInt64("group");
  EXPECT_EQ(sorted.CollectInt64("n"), (std::vector<int64_t>{3, 3}));
  std::vector<double> sums = sorted.CollectDouble("sum_v");
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_NEAR(sums[0], 1.0 + 3.0 + 5.0, 1e-12);
  EXPECT_NEAR(sums[1], 2.0 + 4.0 + 6.0, 1e-12);

  DataFrame filtered = frame.Filter([](const RowView&) { return false; });
  EXPECT_EQ(filtered.NumRows(), 0);
}

TEST(DataFrameTest, PartitionByteSizesSumToTrackedTotal) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t before = tracker.current_bytes();
  {
    std::vector<int64_t> keys(5000);
    std::vector<double> values(5000);
    for (int i = 0; i < 5000; ++i) {
      keys[i] = i % 17;
      values[i] = i * 0.5;
    }
    DataFrame frame =
        DataFrame::FromColumns({{"k", Column::FromInt64s(std::move(keys))},
                                {"v", Column::FromDoubles(std::move(values))}})
            .Repartition(4);
    int64_t partition_sum = 0;
    for (int pi = 0; pi < frame.num_partitions(); ++pi) {
      partition_sum += frame.partition(pi).ByteSize();
    }
    // The tracker's delta for this frame is exactly the sum of its
    // partitions' logical byte sizes (the original single-partition
    // frame was dropped when Repartition returned).
    EXPECT_EQ(tracker.current_bytes() - before, partition_sum);
    EXPECT_GE(tracker.peak_bytes(), tracker.current_bytes());
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(CsvTest, RoundTrip) {
  DataFrame frame = DataFrame::FromColumns(
      {{"id", Column::FromInt64s({1, 2})},
       {"v", Column::FromDoubles({1.5, -2.25})},
       {"name", Column::FromStrings({"a", "b"})},
       {"pt", Column::FromPoints({{-74.0, 40.7}, {-73.9, 40.8}})}});
  const std::string path = testing::TempDir() + "/frame.csv";
  ASSERT_TRUE(WriteCsv(frame, path).ok());
  auto loaded = ReadCsv(path, frame.schema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumRows(), 2);
  EXPECT_EQ(loaded->CollectInt64("id"), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(loaded->CollectDouble("v"), (std::vector<double>{1.5, -2.25}));
  const Partition& part = loaded->partition(0);
  EXPECT_EQ(part.column(3).points()[1].y, 40.8);
}

TEST(CsvTest, MissingFile) {
  Schema schema({{"a", DataType::kInt64}});
  EXPECT_FALSE(ReadCsv("/no/such/file.csv", schema).ok());
}

}  // namespace
}  // namespace geotorch::df
