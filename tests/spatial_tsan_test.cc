// ThreadSanitizer coverage of the parallel spatial engine: threaded
// STR-tree bulk-loads, partition-parallel join probes, and the grid
// fast path, exercised concurrently from several client threads that
// share one pool (the worst case the preprocessing pipeline can
// produce). Compiled with -fsanitize=thread against the spatial and
// core sources directly (see tests/CMakeLists.txt); sizes are small
// because TSan is slow.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "spatial/join.h"
#include "spatial/strtree.h"

namespace geotorch::spatial {
namespace {

std::vector<StrTree::Entry> MakeEntries(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<StrTree::Entry> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    entries.push_back({Envelope(x, y, x + 2, y + 2), i});
  }
  return entries;
}

std::vector<Point> MakePoints(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0.01, 99.99), rng.Uniform(0.01, 99.99)});
  }
  return points;
}

TEST(SpatialTsanTest, ConcurrentParallelBuilds) {
  ThreadPool pool(4);
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &pool] {
      auto entries = MakeEntries(4000, 7);
      StrTree serial(entries, 10, StrTree::BuildOptions{false, nullptr});
      StrTree parallel(std::move(entries), 10,
                       StrTree::BuildOptions{true, &pool});
      EXPECT_TRUE(parallel.IdenticalTo(serial)) << "client " << c;
    });
  }
  for (auto& t : clients) t.join();
}

TEST(SpatialTsanTest, ConcurrentParallelJoinsAndFastPath) {
  ThreadPool pool(4);
  GridPartitioner grid(Envelope(0, 0, 100, 100), 12, 12);
  const std::vector<Polygon> cells = grid.CellPolygons();
  const std::vector<Point> points = MakePoints(8000, 3);

  JoinOptions serial_opts;
  serial_opts.strategy = JoinStrategy::kStrTree;
  serial_opts.parallel = false;
  const auto expected_tree =
      PointInPolygonJoin(points, cells, serial_opts, &grid);
  const auto expected_cells =
      AssignPointsToCells(points, grid, /*parallel=*/false);

  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      JoinOptions opts;
      opts.strategy = JoinStrategy::kStrTree;
      opts.parallel = true;
      opts.pool = &pool;
      const auto got = PointInPolygonJoin(points, cells, opts, &grid);
      EXPECT_EQ(got, expected_tree);
    });
  }
  clients.emplace_back([&] {
    const auto got = AssignPointsToCells(points, grid, true, &pool);
    EXPECT_EQ(got, expected_cells);
  });
  clients.emplace_back([&] {
    JoinOptions opts;
    opts.strategy = JoinStrategy::kGridHash;
    opts.parallel = true;
    opts.pool = &pool;
    const auto got = PointInPolygonJoin(points, cells, opts, &grid);
    ASSERT_EQ(got.size(), expected_cells.size());
  });
  for (auto& t : clients) t.join();
}

TEST(SpatialTsanTest, ParallelDistanceJoinSharedPool) {
  ThreadPool pool(3);
  const std::vector<Point> left = MakePoints(2000, 11);
  const std::vector<Point> right = MakePoints(2000, 13);
  JoinOptions serial_opts;
  serial_opts.parallel = false;
  const auto expected = DistanceJoin(left, right, 2.0, serial_opts);

  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      JoinOptions opts;
      opts.parallel = true;
      opts.pool = &pool;
      EXPECT_EQ(DistanceJoin(left, right, 2.0, opts), expected);
    });
  }
  for (auto& t : clients) t.join();
}

}  // namespace
}  // namespace geotorch::spatial
