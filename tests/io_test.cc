// Checkpoint format and state-dict round-trips. The acceptance bar is
// bitwise: save -> load into a differently-initialized clone must make
// every parameter and every forward output bit-identical to the
// original, for all nine paper models. Corrupted files (truncation,
// bad magic, bit flips caught by the CRC trailer) must come back as
// Status errors, never crashes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/dataloader.h"
#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "io/crc32.h"
#include "models/grid_models.h"
#include "models/raster_models.h"
#include "models/segmentation_models.h"
#include "nn/layers.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;
namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace io = ::geotorch::io;
namespace models = ::geotorch::models;
namespace nn = ::geotorch::nn;
using ::geotorch::Status;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint32_t> Bits(const ts::Tensor& t) {
  std::vector<uint32_t> bits(t.numel());
  if (t.numel() > 0) {
    std::memcpy(bits.data(), t.data(), t.numel() * sizeof(uint32_t));
  }
  return bits;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- CRC-32 ----------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The classic zlib check value.
  EXPECT_EQ(geotorch::io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(geotorch::io::Crc32("", 0), 0u);
}

TEST(Crc32Test, SeedChainsAcrossChunks) {
  const char* msg = "spatiotemporal";
  const uint32_t whole = geotorch::io::Crc32(msg, 14);
  const uint32_t chained =
      geotorch::io::Crc32(msg + 5, 9, geotorch::io::Crc32(msg, 5));
  EXPECT_EQ(whole, chained);
}

// --- Checkpoint container round-trip ---------------------------------------

TEST(CheckpointTest, RoundTripsTensorsAndScalars) {
  io::Checkpoint ckpt;
  geotorch::Rng rng(11);
  ckpt.tensors.emplace_back("w", ts::Tensor::Randn({3, 4}, rng));
  ckpt.tensors.emplace_back("b", ts::Tensor::Arange(7));
  ckpt.tensors.emplace_back("scalar", ts::Tensor::Scalar(-2.5f));
  ckpt.ints.emplace_back("epoch", 12);
  ckpt.ints.emplace_back("step", -3);
  ckpt.floats.emplace_back("lr", 1e-3);

  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, ckpt).ok());
  auto loaded = io::ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->tensors.size(), 3u);
  for (size_t i = 0; i < ckpt.tensors.size(); ++i) {
    EXPECT_EQ(loaded->tensors[i].first, ckpt.tensors[i].first);
    EXPECT_EQ(loaded->tensors[i].second.shape(),
              ckpt.tensors[i].second.shape());
    EXPECT_EQ(Bits(loaded->tensors[i].second), Bits(ckpt.tensors[i].second));
  }
  const int64_t* epoch = loaded->FindInt("epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(*epoch, 12);
  const int64_t* step = loaded->FindInt("step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(*step, -3);
  const double* lr = loaded->FindFloat("lr");
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(*lr, 1e-3);
  EXPECT_EQ(loaded->FindTensor("nope"), nullptr);
  EXPECT_EQ(loaded->FindInt("nope"), nullptr);
  EXPECT_EQ(loaded->FindFloat("nope"), nullptr);
}

TEST(CheckpointTest, EmptyCheckpointRoundTrips) {
  const std::string path = TempPath("empty.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, io::Checkpoint{}).ok());
  auto loaded = io::ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->tensors.empty());
  EXPECT_TRUE(loaded->ints.empty());
  EXPECT_TRUE(loaded->floats.empty());
}

// --- Corruption ------------------------------------------------------------

io::Checkpoint SmallCheckpoint() {
  io::Checkpoint ckpt;
  geotorch::Rng rng(5);
  ckpt.tensors.emplace_back("layer.weight", ts::Tensor::Randn({4, 4}, rng));
  ckpt.ints.emplace_back("epoch", 3);
  return ckpt;
}

TEST(CheckpointTest, MissingFileIsAnError) {
  auto r = io::ReadCheckpoint(TempPath("does_not_exist.ckpt"));
  EXPECT_FALSE(r.ok());
}

TEST(CheckpointTest, TruncationAtEveryPrefixIsAnErrorNotACrash) {
  const std::string path = TempPath("trunc_src.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string trunc = TempPath("trunc.ckpt");
  // Every proper prefix must be rejected (CRC or bounds), including the
  // empty file and a cut mid-header.
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    WriteFileBytes(trunc, std::vector<unsigned char>(bytes.begin(),
                                                     bytes.begin() + keep));
    auto r = io::ReadCheckpoint(trunc);
    EXPECT_FALSE(r.ok()) << "prefix of " << keep << " bytes was accepted";
  }
}

TEST(CheckpointTest, BadMagicIsAnError) {
  const std::string path = TempPath("bad_magic.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto r = io::ReadCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geotorch::StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, BitFlipFailsTheCrc) {
  const std::string path = TempPath("bitflip.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  // Flip one bit in the middle of the tensor payload.
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFileBytes(path, bytes);
  auto r = io::ReadCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos)
      << r.status().ToString();
}

TEST(CheckpointTest, TrailingGarbageIsAnError) {
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(io::ReadCheckpoint(path).ok());
}

// --- Module::LoadNamedParameter --------------------------------------------

TEST(LoadNamedParameterTest, OverwritesInPlaceAndChecksShapes) {
  geotorch::Rng rng(1);
  nn::Linear lin(3, 2, rng);
  auto named = lin.NamedParameters();
  ASSERT_FALSE(named.empty());
  const std::string name = named[0].first;
  const ts::Shape shape = named[0].second.value().shape();

  // The Variable returned by NamedParameters shares storage with the
  // module's own parameter, so an in-place load must show through it.
  ts::Tensor replacement = ts::Tensor::Full(shape, 0.25f);
  ASSERT_TRUE(lin.LoadNamedParameter(name, replacement).ok());
  EXPECT_EQ(Bits(lin.NamedParameters()[0].second.value()),
            Bits(replacement));

  Status bad_shape = lin.LoadNamedParameter(name, ts::Tensor::Zeros({5}));
  ASSERT_FALSE(bad_shape.ok());
  EXPECT_EQ(bad_shape.code(), geotorch::StatusCode::kInvalidArgument);

  Status missing =
      lin.LoadNamedParameter("no.such.param", ts::Tensor::Zeros(shape));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), geotorch::StatusCode::kNotFound);
}

// --- Strict vs permissive state-dict loading -------------------------------

TEST(StateDictTest, StrictRejectsMissingAndUnknownNames) {
  geotorch::Rng rng(1);
  nn::Linear lin(3, 2, rng);

  // Unknown extra tensor in the checkpoint.
  io::Checkpoint extra;
  for (const auto& [name, p] : lin.NamedParameters()) {
    extra.tensors.emplace_back(name, p.value());
  }
  extra.tensors.emplace_back("ghost", ts::Tensor::Zeros({2}));
  EXPECT_FALSE(io::ApplyStateDict(lin, extra).ok());
  EXPECT_TRUE(io::ApplyStateDict(lin, extra, {/*strict=*/false}).ok());

  // Checkpoint missing one of the module's parameters.
  io::Checkpoint partial;
  partial.tensors.emplace_back(lin.NamedParameters()[0].first,
                               lin.NamedParameters()[0].second.value());
  EXPECT_FALSE(io::ApplyStateDict(lin, partial).ok());
  EXPECT_TRUE(io::ApplyStateDict(lin, partial, {/*strict=*/false}).ok());
}

TEST(StateDictTest, ShapeMismatchFailsEvenPermissively) {
  geotorch::Rng rng(1);
  nn::Linear lin(3, 2, rng);
  io::Checkpoint ckpt;
  ckpt.tensors.emplace_back(lin.NamedParameters()[0].first,
                            ts::Tensor::Zeros({9, 9}));
  EXPECT_FALSE(io::ApplyStateDict(lin, ckpt).ok());
  EXPECT_FALSE(io::ApplyStateDict(lin, ckpt, {/*strict=*/false}).ok());
}

TEST(StateDictTest, LoadFromDifferentArchitectureFailsCleanly) {
  geotorch::Rng rng1(1);
  geotorch::Rng rng2(2);
  nn::Linear small(3, 2, rng1);
  nn::Linear big(8, 4, rng2);
  const std::string path = TempPath("arch_mismatch.ckpt");
  ASSERT_TRUE(io::SaveStateDict(small, path).ok());
  EXPECT_FALSE(io::LoadStateDict(big, path).ok());
}

// --- Full-model round-trips ------------------------------------------------

// Saves `src`, loads into `dst` (differently initialized, same
// architecture), and requires every named parameter to match bitwise.
void ExpectStateDictRoundTrip(const std::string& label, nn::Module& src,
                              nn::Module& dst) {
  const std::string path = TempPath(label + ".ckpt");
  ASSERT_TRUE(io::SaveStateDict(src, path).ok()) << label;
  ASSERT_TRUE(io::LoadStateDict(dst, path).ok()) << label;

  const auto a = src.NamedParameters();
  const auto b = dst.NamedParameters();
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << label;
    EXPECT_EQ(Bits(a[i].second.value()), Bits(b[i].second.value()))
        << label << ": parameter " << a[i].first << " differs after load";
  }
  std::remove(path.c_str());
}

data::Batch FirstBatch(const data::Dataset& ds, int64_t batch_size) {
  data::DataLoader loader(&ds, batch_size, /*shuffle=*/false);
  data::Batch batch;
  EXPECT_TRUE(loader.Next(&batch));
  return batch;
}

enum class GridKind { kPeriodicalCnn, kConvLstm, kStResNet, kDeepStnPlus };

std::unique_ptr<models::GridModel> MakeGridModel(
    GridKind kind, const models::GridModelConfig& mc) {
  switch (kind) {
    case GridKind::kPeriodicalCnn:
      return std::make_unique<models::PeriodicalCnn>(mc);
    case GridKind::kConvLstm:
      return std::make_unique<models::ConvLstm>(mc, 1);
    case GridKind::kStResNet:
      return std::make_unique<models::StResNet>(mc);
    case GridKind::kDeepStnPlus:
      return std::make_unique<models::DeepStnPlus>(mc);
  }
  return nullptr;
}

void RunGridRoundTrip(GridKind kind, const std::string& label) {
  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/200, /*height=*/8, /*width=*/8, /*seed=*/7);
  ds.MinMaxNormalize();

  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;
  if (kind == GridKind::kConvLstm) {
    ds.SetSequentialRepresentation(/*history=*/4, /*prediction=*/1);
  } else {
    ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                   mc.len_trend);
  }
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  auto src = MakeGridModel(kind, mc);
  models::GridModelConfig mc2 = mc;
  mc2.seed = 43;  // different init: the load must overwrite everything
  auto dst = MakeGridModel(kind, mc2);
  ExpectStateDictRoundTrip(label, *src, *dst);

  // With identical parameters, the forward outputs must be bitwise
  // identical too.
  src->SetTraining(false);
  dst->SetTraining(false);
  ag::NoGradGuard no_grad;
  EXPECT_EQ(Bits(src->Forward(batch).value()),
            Bits(dst->Forward(batch).value()))
      << label << ": forward differs after state-dict load";
}

TEST(StateDictRoundTrip, PeriodicalCnn) {
  RunGridRoundTrip(GridKind::kPeriodicalCnn, "PeriodicalCnn");
}
TEST(StateDictRoundTrip, ConvLstm) {
  RunGridRoundTrip(GridKind::kConvLstm, "ConvLstm");
}
TEST(StateDictRoundTrip, StResNet) {
  RunGridRoundTrip(GridKind::kStResNet, "StResNet");
}
TEST(StateDictRoundTrip, DeepStnPlus) {
  RunGridRoundTrip(GridKind::kDeepStnPlus, "DeepStnPlus");
}

template <typename Model>
void RunRasterRoundTrip(const std::string& label, bool with_features) {
  datasets::RasterDatasetOptions options;
  options.include_additional_features = with_features;
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/4, options, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.num_filtered_features =
      with_features ? ds.num_additional_features() : 0;
  rc.base_filters = 8;
  rc.seed = 42;

  Model src(rc);
  models::RasterModelConfig rc2 = rc;
  rc2.seed = 43;
  Model dst(rc2);
  ExpectStateDictRoundTrip(label, src, dst);

  src.SetTraining(false);
  dst.SetTraining(false);
  ag::NoGradGuard no_grad;
  ag::Variable features =
      with_features ? ag::Variable(batch.extras[0]) : ag::Variable();
  EXPECT_EQ(Bits(src.Forward(ag::Variable(batch.x), features).value()),
            Bits(dst.Forward(ag::Variable(batch.x), features).value()))
      << label << ": forward differs after state-dict load";
}

TEST(StateDictRoundTrip, SatCnn) {
  RunRasterRoundTrip<models::SatCnn>("SatCnn", /*with_features=*/false);
}
TEST(StateDictRoundTrip, DeepSatV2) {
  RunRasterRoundTrip<models::DeepSatV2>("DeepSatV2", /*with_features=*/true);
}

template <typename Model>
void RunSegRoundTrip(const std::string& label) {
  datasets::RasterSegmentationDataset ds =
      datasets::MakeCloud38(/*n=*/4, /*size=*/16, {}, /*seed=*/5);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  models::SegModelConfig sc;
  sc.in_channels = 4;
  sc.num_classes = 2;
  sc.base_filters = 4;
  sc.seed = 42;

  Model src(sc);
  models::SegModelConfig sc2 = sc;
  sc2.seed = 43;
  Model dst(sc2);
  ExpectStateDictRoundTrip(label, src, dst);

  src.SetTraining(false);
  dst.SetTraining(false);
  ag::NoGradGuard no_grad;
  EXPECT_EQ(Bits(src.Forward(ag::Variable(batch.x)).value()),
            Bits(dst.Forward(ag::Variable(batch.x)).value()))
      << label << ": forward differs after state-dict load";
}

TEST(StateDictRoundTrip, Fcn) { RunSegRoundTrip<models::Fcn>("Fcn"); }
TEST(StateDictRoundTrip, UNet) { RunSegRoundTrip<models::UNet>("UNet"); }
TEST(StateDictRoundTrip, UNetPlusPlus) {
  RunSegRoundTrip<models::UNetPlusPlus>("UNetPlusPlus");
}

}  // namespace
