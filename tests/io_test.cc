// Checkpoint format and state-dict round-trips. The acceptance bar is
// bitwise: save -> load into a differently-initialized clone must make
// every parameter and every forward output bit-identical to the
// original, for all nine paper models. Corrupted files (truncation,
// bad magic, bit flips caught by the CRC trailer) must come back as
// Status errors, never crashes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/dataloader.h"
#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "io/crc32.h"
#include "models/grid_models.h"
#include "models/raster_models.h"
#include "models/segmentation_models.h"
#include "nn/layers.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;
namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace io = ::geotorch::io;
namespace models = ::geotorch::models;
namespace nn = ::geotorch::nn;
using ::geotorch::Status;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint32_t> Bits(const ts::Tensor& t) {
  std::vector<uint32_t> bits(t.numel());
  if (t.numel() > 0) {
    std::memcpy(bits.data(), t.data(), t.numel() * sizeof(uint32_t));
  }
  return bits;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- CRC-32 ----------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The classic zlib check value.
  EXPECT_EQ(geotorch::io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(geotorch::io::Crc32("", 0), 0u);
}

TEST(Crc32Test, SeedChainsAcrossChunks) {
  const char* msg = "spatiotemporal";
  const uint32_t whole = geotorch::io::Crc32(msg, 14);
  const uint32_t chained =
      geotorch::io::Crc32(msg + 5, 9, geotorch::io::Crc32(msg, 5));
  EXPECT_EQ(whole, chained);
}

// --- Checkpoint container round-trip ---------------------------------------

TEST(CheckpointTest, RoundTripsTensorsAndScalars) {
  io::Checkpoint ckpt;
  geotorch::Rng rng(11);
  ckpt.tensors.emplace_back("w", ts::Tensor::Randn({3, 4}, rng));
  ckpt.tensors.emplace_back("b", ts::Tensor::Arange(7));
  ckpt.tensors.emplace_back("scalar", ts::Tensor::Scalar(-2.5f));
  ckpt.ints.emplace_back("epoch", 12);
  ckpt.ints.emplace_back("step", -3);
  ckpt.floats.emplace_back("lr", 1e-3);

  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, ckpt).ok());
  auto loaded = io::ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->tensors.size(), 3u);
  for (size_t i = 0; i < ckpt.tensors.size(); ++i) {
    EXPECT_EQ(loaded->tensors[i].first, ckpt.tensors[i].first);
    EXPECT_EQ(loaded->tensors[i].second.shape(),
              ckpt.tensors[i].second.shape());
    EXPECT_EQ(Bits(loaded->tensors[i].second), Bits(ckpt.tensors[i].second));
  }
  const int64_t* epoch = loaded->FindInt("epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(*epoch, 12);
  const int64_t* step = loaded->FindInt("step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(*step, -3);
  const double* lr = loaded->FindFloat("lr");
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(*lr, 1e-3);
  EXPECT_EQ(loaded->FindTensor("nope"), nullptr);
  EXPECT_EQ(loaded->FindInt("nope"), nullptr);
  EXPECT_EQ(loaded->FindFloat("nope"), nullptr);
}

TEST(CheckpointTest, EmptyCheckpointRoundTrips) {
  const std::string path = TempPath("empty.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, io::Checkpoint{}).ok());
  auto loaded = io::ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->tensors.empty());
  EXPECT_TRUE(loaded->ints.empty());
  EXPECT_TRUE(loaded->floats.empty());
}

// --- Corruption ------------------------------------------------------------

io::Checkpoint SmallCheckpoint() {
  io::Checkpoint ckpt;
  geotorch::Rng rng(5);
  ckpt.tensors.emplace_back("layer.weight", ts::Tensor::Randn({4, 4}, rng));
  ckpt.ints.emplace_back("epoch", 3);
  return ckpt;
}

TEST(CheckpointTest, MissingFileIsAnError) {
  auto r = io::ReadCheckpoint(TempPath("does_not_exist.ckpt"));
  EXPECT_FALSE(r.ok());
}

TEST(CheckpointTest, TruncationAtEveryPrefixIsAnErrorNotACrash) {
  const std::string path = TempPath("trunc_src.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  const std::vector<unsigned char> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string trunc = TempPath("trunc.ckpt");
  // Every proper prefix must be rejected (CRC or bounds), including the
  // empty file and a cut mid-header.
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    WriteFileBytes(trunc, std::vector<unsigned char>(bytes.begin(),
                                                     bytes.begin() + keep));
    auto r = io::ReadCheckpoint(trunc);
    EXPECT_FALSE(r.ok()) << "prefix of " << keep << " bytes was accepted";
  }
}

TEST(CheckpointTest, BadMagicIsAnError) {
  const std::string path = TempPath("bad_magic.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto r = io::ReadCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geotorch::StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, BitFlipFailsTheCrc) {
  const std::string path = TempPath("bitflip.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  // Flip one bit in the middle of the tensor payload.
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFileBytes(path, bytes);
  auto r = io::ReadCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos)
      << r.status().ToString();
}

TEST(CheckpointTest, TrailingGarbageIsAnError) {
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  std::vector<unsigned char> bytes = ReadFileBytes(path);
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(io::ReadCheckpoint(path).ok());
}

// --- Module::LoadNamedParameter --------------------------------------------

TEST(LoadNamedParameterTest, OverwritesInPlaceAndChecksShapes) {
  geotorch::Rng rng(1);
  nn::Linear lin(3, 2, rng);
  auto named = lin.NamedParameters();
  ASSERT_FALSE(named.empty());
  const std::string name = named[0].first;
  const ts::Shape shape = named[0].second.value().shape();

  // The Variable returned by NamedParameters shares storage with the
  // module's own parameter, so an in-place load must show through it.
  ts::Tensor replacement = ts::Tensor::Full(shape, 0.25f);
  ASSERT_TRUE(lin.LoadNamedParameter(name, replacement).ok());
  EXPECT_EQ(Bits(lin.NamedParameters()[0].second.value()),
            Bits(replacement));

  Status bad_shape = lin.LoadNamedParameter(name, ts::Tensor::Zeros({5}));
  ASSERT_FALSE(bad_shape.ok());
  EXPECT_EQ(bad_shape.code(), geotorch::StatusCode::kInvalidArgument);

  Status missing =
      lin.LoadNamedParameter("no.such.param", ts::Tensor::Zeros(shape));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), geotorch::StatusCode::kNotFound);
}

// --- Strict vs permissive state-dict loading -------------------------------

TEST(StateDictTest, StrictRejectsMissingAndUnknownNames) {
  geotorch::Rng rng(1);
  nn::Linear lin(3, 2, rng);

  // Unknown extra tensor in the checkpoint.
  io::Checkpoint extra;
  for (const auto& [name, p] : lin.NamedParameters()) {
    extra.tensors.emplace_back(name, p.value());
  }
  extra.tensors.emplace_back("ghost", ts::Tensor::Zeros({2}));
  EXPECT_FALSE(io::ApplyStateDict(lin, extra).ok());
  EXPECT_TRUE(io::ApplyStateDict(lin, extra, {/*strict=*/false}).ok());

  // Checkpoint missing one of the module's parameters.
  io::Checkpoint partial;
  partial.tensors.emplace_back(lin.NamedParameters()[0].first,
                               lin.NamedParameters()[0].second.value());
  EXPECT_FALSE(io::ApplyStateDict(lin, partial).ok());
  EXPECT_TRUE(io::ApplyStateDict(lin, partial, {/*strict=*/false}).ok());
}

TEST(StateDictTest, ShapeMismatchFailsEvenPermissively) {
  geotorch::Rng rng(1);
  nn::Linear lin(3, 2, rng);
  io::Checkpoint ckpt;
  ckpt.tensors.emplace_back(lin.NamedParameters()[0].first,
                            ts::Tensor::Zeros({9, 9}));
  EXPECT_FALSE(io::ApplyStateDict(lin, ckpt).ok());
  EXPECT_FALSE(io::ApplyStateDict(lin, ckpt, {/*strict=*/false}).ok());
}

TEST(StateDictTest, LoadFromDifferentArchitectureFailsCleanly) {
  geotorch::Rng rng1(1);
  geotorch::Rng rng2(2);
  nn::Linear small(3, 2, rng1);
  nn::Linear big(8, 4, rng2);
  const std::string path = TempPath("arch_mismatch.ckpt");
  ASSERT_TRUE(io::SaveStateDict(small, path).ok());
  EXPECT_FALSE(io::LoadStateDict(big, path).ok());
}

// --- Full-model round-trips ------------------------------------------------

// Saves `src`, loads into `dst` (differently initialized, same
// architecture), and requires every named parameter to match bitwise.
void ExpectStateDictRoundTrip(const std::string& label, nn::Module& src,
                              nn::Module& dst) {
  const std::string path = TempPath(label + ".ckpt");
  ASSERT_TRUE(io::SaveStateDict(src, path).ok()) << label;
  ASSERT_TRUE(io::LoadStateDict(dst, path).ok()) << label;

  const auto a = src.NamedParameters();
  const auto b = dst.NamedParameters();
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << label;
    EXPECT_EQ(Bits(a[i].second.value()), Bits(b[i].second.value()))
        << label << ": parameter " << a[i].first << " differs after load";
  }
  std::remove(path.c_str());
}

data::Batch FirstBatch(const data::Dataset& ds, int64_t batch_size) {
  data::DataLoader loader(&ds, batch_size, /*shuffle=*/false);
  data::Batch batch;
  EXPECT_TRUE(loader.Next(&batch));
  return batch;
}

enum class GridKind { kPeriodicalCnn, kConvLstm, kStResNet, kDeepStnPlus };

std::unique_ptr<models::GridModel> MakeGridModel(
    GridKind kind, const models::GridModelConfig& mc) {
  switch (kind) {
    case GridKind::kPeriodicalCnn:
      return std::make_unique<models::PeriodicalCnn>(mc);
    case GridKind::kConvLstm:
      return std::make_unique<models::ConvLstm>(mc, 1);
    case GridKind::kStResNet:
      return std::make_unique<models::StResNet>(mc);
    case GridKind::kDeepStnPlus:
      return std::make_unique<models::DeepStnPlus>(mc);
  }
  return nullptr;
}

void RunGridRoundTrip(GridKind kind, const std::string& label) {
  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/200, /*height=*/8, /*width=*/8, /*seed=*/7);
  ds.MinMaxNormalize();

  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;
  if (kind == GridKind::kConvLstm) {
    ds.SetSequentialRepresentation(/*history=*/4, /*prediction=*/1);
  } else {
    ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                   mc.len_trend);
  }
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  auto src = MakeGridModel(kind, mc);
  models::GridModelConfig mc2 = mc;
  mc2.seed = 43;  // different init: the load must overwrite everything
  auto dst = MakeGridModel(kind, mc2);
  ExpectStateDictRoundTrip(label, *src, *dst);

  // With identical parameters, the forward outputs must be bitwise
  // identical too.
  src->SetTraining(false);
  dst->SetTraining(false);
  ag::NoGradGuard no_grad;
  EXPECT_EQ(Bits(src->Forward(batch).value()),
            Bits(dst->Forward(batch).value()))
      << label << ": forward differs after state-dict load";
}

TEST(StateDictRoundTrip, PeriodicalCnn) {
  RunGridRoundTrip(GridKind::kPeriodicalCnn, "PeriodicalCnn");
}
TEST(StateDictRoundTrip, ConvLstm) {
  RunGridRoundTrip(GridKind::kConvLstm, "ConvLstm");
}
TEST(StateDictRoundTrip, StResNet) {
  RunGridRoundTrip(GridKind::kStResNet, "StResNet");
}
TEST(StateDictRoundTrip, DeepStnPlus) {
  RunGridRoundTrip(GridKind::kDeepStnPlus, "DeepStnPlus");
}

template <typename Model>
void RunRasterRoundTrip(const std::string& label, bool with_features) {
  datasets::RasterDatasetOptions options;
  options.include_additional_features = with_features;
  datasets::RasterClassificationDataset ds =
      datasets::MakeEuroSat(/*n=*/4, options, /*seed=*/3);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  models::RasterModelConfig rc;
  rc.in_channels = 13;
  rc.in_height = 64;
  rc.in_width = 64;
  rc.num_classes = 10;
  rc.num_filtered_features =
      with_features ? ds.num_additional_features() : 0;
  rc.base_filters = 8;
  rc.seed = 42;

  Model src(rc);
  models::RasterModelConfig rc2 = rc;
  rc2.seed = 43;
  Model dst(rc2);
  ExpectStateDictRoundTrip(label, src, dst);

  src.SetTraining(false);
  dst.SetTraining(false);
  ag::NoGradGuard no_grad;
  ag::Variable features =
      with_features ? ag::Variable(batch.extras[0]) : ag::Variable();
  EXPECT_EQ(Bits(src.Forward(ag::Variable(batch.x), features).value()),
            Bits(dst.Forward(ag::Variable(batch.x), features).value()))
      << label << ": forward differs after state-dict load";
}

TEST(StateDictRoundTrip, SatCnn) {
  RunRasterRoundTrip<models::SatCnn>("SatCnn", /*with_features=*/false);
}
TEST(StateDictRoundTrip, DeepSatV2) {
  RunRasterRoundTrip<models::DeepSatV2>("DeepSatV2", /*with_features=*/true);
}

template <typename Model>
void RunSegRoundTrip(const std::string& label) {
  datasets::RasterSegmentationDataset ds =
      datasets::MakeCloud38(/*n=*/4, /*size=*/16, {}, /*seed=*/5);
  const data::Batch batch = FirstBatch(ds, /*batch_size=*/2);

  models::SegModelConfig sc;
  sc.in_channels = 4;
  sc.num_classes = 2;
  sc.base_filters = 4;
  sc.seed = 42;

  Model src(sc);
  models::SegModelConfig sc2 = sc;
  sc2.seed = 43;
  Model dst(sc2);
  ExpectStateDictRoundTrip(label, src, dst);

  src.SetTraining(false);
  dst.SetTraining(false);
  ag::NoGradGuard no_grad;
  EXPECT_EQ(Bits(src.Forward(ag::Variable(batch.x)).value()),
            Bits(dst.Forward(ag::Variable(batch.x)).value()))
      << label << ": forward differs after state-dict load";
}

TEST(StateDictRoundTrip, Fcn) { RunSegRoundTrip<models::Fcn>("Fcn"); }
TEST(StateDictRoundTrip, UNet) { RunSegRoundTrip<models::UNet>("UNet"); }
TEST(StateDictRoundTrip, UNetPlusPlus) {
  RunSegRoundTrip<models::UNetPlusPlus>("UNetPlusPlus");
}

// --- GTCP v2: version skew and quantized records ---------------------------

template <typename T>
void Append(std::vector<unsigned char>& out, T v) {
  unsigned char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.insert(out.end(), buf, buf + sizeof(T));
}

void AppendName(std::vector<unsigned char>& out, const std::string& s) {
  Append(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Rewrites the u32 version field at byte offset 4 and recomputes the
// CRC trailer, so the reader sees a structurally-valid file from "the
// future" and the only thing that can fire is the version check.
std::vector<unsigned char> WithVersion(std::vector<unsigned char> bytes,
                                       uint32_t version) {
  EXPECT_GE(bytes.size(), 12u);
  std::memcpy(bytes.data() + 4, &version, sizeof(version));
  const uint32_t crc =
      geotorch::io::Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  return bytes;
}

uint32_t VersionField(const std::vector<unsigned char>& bytes) {
  uint32_t v = 0;
  EXPECT_GE(bytes.size(), 8u);
  std::memcpy(&v, bytes.data() + 4, sizeof(v));
  return v;
}

io::QuantTensor SmallQuantTensor() {
  io::QuantTensor q;
  q.name = "layer.weight.q";
  q.dims = {3, 5};
  q.kind = io::QuantKind::kPerCol;
  q.zero_point = 0;
  q.scales = {0.01f, 0.02f, 0.03f, 0.04f, 0.05f};
  q.data = {1, -2, 3, -4, 5, 6, -7, 8, -9, 10, 11, -12, 13, -14, 15};
  return q;
}

TEST(GtcpVersionTest, F32OnlyFilesStayVersion1) {
  // Files without quantized records must keep the pre-quantization
  // byte layout (version 1) so checkpoints written before this build —
  // and readers built before it — keep working.
  const std::string path = TempPath("v1_f32_only.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  EXPECT_EQ(VersionField(ReadFileBytes(path)), 1u);
}

TEST(GtcpVersionTest, QuantizedFilesAreVersion2) {
  io::Checkpoint ckpt = SmallCheckpoint();
  ckpt.qtensors.push_back(SmallQuantTensor());
  const std::string path = TempPath("v2_quant.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, ckpt).ok());
  EXPECT_EQ(VersionField(ReadFileBytes(path)), 2u);
}

TEST(GtcpVersionTest, NewerVersionIsRejectedWithStatusNotParsed) {
  const std::string path = TempPath("v3_future.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  const std::vector<unsigned char> original = ReadFileBytes(path);
  for (uint32_t future : {3u, 7u, 0xFFFFFFFFu}) {
    const std::string patched = TempPath("v3_future_patched.ckpt");
    WriteFileBytes(patched, WithVersion(original, future));
    auto r = io::ReadCheckpoint(patched);
    ASSERT_FALSE(r.ok()) << "version " << future << " must be rejected";
    EXPECT_NE(r.status().message().find("newer"), std::string::npos)
        << r.status().ToString();
  }
}

TEST(GtcpVersionTest, VersionZeroIsRejected) {
  const std::string path = TempPath("v0.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, SmallCheckpoint()).ok());
  const std::string patched = TempPath("v0_patched.ckpt");
  WriteFileBytes(patched, WithVersion(ReadFileBytes(path), 0));
  EXPECT_FALSE(io::ReadCheckpoint(patched).ok());
}

TEST(GtcpVersionTest, HandBuiltV1BlobStillParses) {
  // A byte-for-byte v1 file assembled by hand, guarding the PR 5
  // format against accidental layout drift: if this stops parsing,
  // every old f32 checkpoint in the wild stops loading.
  std::vector<unsigned char> bytes;
  const char magic[4] = {'G', 'T', 'C', 'P'};
  bytes.insert(bytes.end(), magic, magic + 4);
  Append(bytes, uint32_t{1});  // version
  Append(bytes, uint32_t{1});  // num tensors
  Append(bytes, uint32_t{1});  // num ints
  Append(bytes, uint32_t{1});  // num floats
  AppendName(bytes, "w");
  Append(bytes, uint32_t{1});  // rank
  Append(bytes, int64_t{2});   // dims
  Append(bytes, 1.5f);
  Append(bytes, -2.0f);
  AppendName(bytes, "epoch");
  Append(bytes, int64_t{7});
  AppendName(bytes, "lr");
  Append(bytes, 0.5);
  Append(bytes, geotorch::io::Crc32(bytes.data(), bytes.size()));

  const std::string path = TempPath("golden_v1.ckpt");
  WriteFileBytes(path, bytes);
  auto r = io::ReadCheckpoint(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tensors.size(), 1u);
  EXPECT_EQ(r->tensors[0].first, "w");
  ASSERT_EQ(r->tensors[0].second.numel(), 2);
  EXPECT_EQ(r->tensors[0].second.data()[0], 1.5f);
  EXPECT_EQ(r->tensors[0].second.data()[1], -2.0f);
  const int64_t* epoch = r->FindInt("epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(*epoch, 7);
  const double* lr = r->FindFloat("lr");
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(*lr, 0.5);
  EXPECT_TRUE(r->qtensors.empty());
}

TEST(QuantizedCheckpointTest, QuantTensorRecordRoundTrips) {
  io::Checkpoint ckpt;
  ckpt.qtensors.push_back(SmallQuantTensor());
  const std::string path = TempPath("qtensor_roundtrip.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(path, ckpt).ok());
  auto r = io::ReadCheckpoint(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->qtensors.size(), 1u);
  const io::QuantTensor& got = r->qtensors[0];
  const io::QuantTensor want = SmallQuantTensor();
  EXPECT_EQ(got.name, want.name);
  EXPECT_EQ(got.dims, want.dims);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.zero_point, want.zero_point);
  EXPECT_EQ(got.scales, want.scales);
  EXPECT_EQ(got.data, want.data);
  EXPECT_EQ(r->FindQuantTensor("layer.weight.q"), &r->qtensors[0]);
  EXPECT_EQ(r->FindQuantTensor("nope"), nullptr);
}

TEST(QuantizedCheckpointTest, SaveLoadSaveIsBitwiseIdentical) {
  // The acceptance bar for quantized files: write -> read -> write
  // must reproduce the first file byte for byte, so re-saving a loaded
  // quantized checkpoint can never silently change its contents.
  io::Checkpoint ckpt = SmallCheckpoint();
  geotorch::Rng rng(17);
  ckpt.qtensors.push_back(SmallQuantTensor());
  ckpt.qtensors.push_back(
      io::QuantizeTensor("conv.weight.q", ts::Tensor::Randn({2, 3, 3, 3}, rng)));
  ckpt.floats.emplace_back("val_loss", 0.125);

  const std::string first = TempPath("bitwise_first.ckpt");
  const std::string second = TempPath("bitwise_second.ckpt");
  ASSERT_TRUE(io::WriteCheckpoint(first, ckpt).ok());
  auto loaded = io::ReadCheckpoint(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(io::WriteCheckpoint(second, *loaded).ok());
  EXPECT_EQ(ReadFileBytes(first), ReadFileBytes(second));
}

void ExpectDequantWithinHalfScale(const ts::Tensor& t) {
  const io::QuantTensor q = io::QuantizeTensor("t", t);
  const ts::Tensor back = io::DequantizeTensor(q);
  ASSERT_EQ(back.shape(), t.shape());
  // Map flat index -> scale for this element under the record's kind.
  const int64_t cols = t.ndim() >= 2 ? t.shape().back() : 1;
  const int64_t rows = t.ndim() >= 1 ? t.shape()[0] : 1;
  const int64_t row_stride = t.numel() / std::max<int64_t>(rows, 1);
  for (int64_t i = 0; i < t.numel(); ++i) {
    float scale = q.scales[0];
    if (q.kind == io::QuantKind::kPerCol) {
      scale = q.scales[static_cast<size_t>(i % cols)];
    } else if (q.kind == io::QuantKind::kPerRow) {
      scale = q.scales[static_cast<size_t>(i / row_stride)];
    }
    EXPECT_LE(std::abs(back.data()[i] - t.data()[i]), 0.5f * scale + 1e-7f)
        << "element " << i;
  }
}

TEST(QuantizedCheckpointTest, DequantErrorAtMostHalfScaleEveryKind) {
  geotorch::Rng rng(23);
  // rank 1 -> per-tensor, rank 2 -> per-col, rank 4 -> per-row.
  ExpectDequantWithinHalfScale(ts::Tensor::Randn({37}, rng));
  ExpectDequantWithinHalfScale(ts::Tensor::Randn({12, 9}, rng));
  ExpectDequantWithinHalfScale(ts::Tensor::Randn({4, 3, 5, 5}, rng));
}

TEST(QuantizedCheckpointTest, QuantizedStateDictLoadsIntoFreshModule) {
  geotorch::Rng rng(29);
  nn::Linear src(10, 6, rng);
  geotorch::Rng rng2(31);
  nn::Linear dst(10, 6, rng2);

  const std::string path = TempPath("quant_state_dict.ckpt");
  ASSERT_TRUE(io::SaveQuantizedStateDict(src, path).ok());
  EXPECT_EQ(VersionField(ReadFileBytes(path)), 2u);
  ASSERT_TRUE(io::LoadStateDict(dst, path).ok());

  auto src_params = src.NamedParameters();
  auto dst_params = dst.NamedParameters();
  ASSERT_EQ(src_params.size(), dst_params.size());
  for (size_t p = 0; p < src_params.size(); ++p) {
    const ts::Tensor& a = src_params[p].second.value();
    const ts::Tensor& b = dst_params[p].second.value();
    ASSERT_EQ(a.shape(), b.shape()) << src_params[p].first;
    if (a.ndim() < 2) {
      // Biases stay f32 in the file: bitwise.
      EXPECT_EQ(Bits(a), Bits(b)) << src_params[p].first;
    } else {
      // Weights went through int8: per-column scale/2 bound.
      const io::QuantTensor q = io::QuantizeTensor("w", a);
      const int64_t cols = a.shape().back();
      for (int64_t i = 0; i < a.numel(); ++i) {
        const float scale = q.scales[static_cast<size_t>(i % cols)];
        EXPECT_LE(std::abs(a.data()[i] - b.data()[i]), 0.5f * scale + 1e-7f)
            << src_params[p].first << " element " << i;
      }
    }
  }
}

}  // namespace
