#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/device.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/shape.h"

namespace geotorch::tensor {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({5, 0}), 0);
}

TEST(ShapeTest, ContiguousStrides) {
  auto s = ContiguousStrides({2, 3, 4});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 12);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 1);
}

TEST(ShapeTest, BroadcastShapes) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(BroadcastShapes({1}, {5}), (Shape{5}));
}

TEST(ShapeTest, BroadcastableTo) {
  EXPECT_TRUE(BroadcastableTo({1, 3}, {2, 3}));
  EXPECT_TRUE(BroadcastableTo({3}, {2, 3}));
  EXPECT_FALSE(BroadcastableTo({2}, {2, 3}));
  EXPECT_FALSE(BroadcastableTo({2, 3, 4}, {3, 4}));
}

TEST(TensorTest, FactoriesAndAccess) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.at({1, 2}), 0.0f);

  Tensor o = Tensor::Ones({4});
  EXPECT_EQ(SumAll(o), 4.0f);

  Tensor f = Tensor::Full({2, 2}, 3.5f);
  EXPECT_EQ(f.at({0, 1}), 3.5f);

  Tensor a = Tensor::Arange(5);
  EXPECT_EQ(a.flat(3), 3.0f);

  Tensor v = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(v.at({1, 0}), 3.0f);
}

TEST(TensorTest, RandomFactoriesDeterministic) {
  Rng rng1(42);
  Rng rng2(42);
  Tensor a = Tensor::Randn({8}, rng1);
  Tensor b = Tensor::Randn({8}, rng2);
  EXPECT_TRUE(AllClose(a, b));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::Arange(6);
  Tensor b = a.Reshape({2, 3});
  EXPECT_TRUE(a.SharesStorageWith(b));
  b.at({0, 0}) = 99.0f;
  EXPECT_EQ(a.flat(0), 99.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor a = Tensor::Arange(12);
  Tensor b = a.Reshape({3, -1});
  EXPECT_EQ(b.size(1), 4);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Arange(4);
  Tensor b = a.Clone();
  EXPECT_FALSE(a.SharesStorageWith(b));
  b.flat(0) = -1.0f;
  EXPECT_EQ(a.flat(0), 0.0f);
}

TEST(TensorTest, AddInPlaceAndScale) {
  Tensor a = Tensor::Ones({3});
  Tensor b = Tensor::Full({3}, 2.0f);
  a.AddInPlace(b);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.flat(0), 6.0f);
}

TEST(OpsTest, ElementwiseBasics) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  EXPECT_TRUE(AllClose(Add(a, b), Tensor::FromVector({3}, {5, 7, 9})));
  EXPECT_TRUE(AllClose(Sub(b, a), Tensor::FromVector({3}, {3, 3, 3})));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor::FromVector({3}, {4, 10, 18})));
  EXPECT_TRUE(AllClose(Div(b, a), Tensor::FromVector({3}, {4, 2.5f, 2})));
  EXPECT_TRUE(AllClose(Maximum(a, Tensor::FromVector({3}, {2, 2, 2})),
                       Tensor::FromVector({3}, {2, 2, 3})));
}

TEST(OpsTest, BroadcastAdd) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromVector({3}, {10, 20, 30});
  Tensor col = Tensor::FromVector({2, 1}, {100, 200});
  Tensor s1 = Add(a, row);
  EXPECT_EQ(s1.at({1, 2}), 36.0f);
  Tensor s2 = Add(a, col);
  EXPECT_EQ(s2.at({0, 0}), 101.0f);
  EXPECT_EQ(s2.at({1, 0}), 204.0f);
}

TEST(OpsTest, BroadcastChannelParams) {
  // The BatchNorm pattern: (N,C,H,W) * (1,C,1,1).
  Tensor x = Tensor::Ones({2, 3, 2, 2});
  Tensor g = Tensor::FromVector({1, 3, 1, 1}, {1, 2, 3});
  Tensor y = Mul(x, g);
  EXPECT_EQ(y.at({0, 0, 0, 0}), 1.0f);
  EXPECT_EQ(y.at({1, 1, 1, 1}), 2.0f);
  EXPECT_EQ(y.at({1, 2, 0, 1}), 3.0f);
}

TEST(OpsTest, UnaryOps) {
  Tensor a = Tensor::FromVector({4}, {-1, 0, 1, 4});
  EXPECT_TRUE(AllClose(Relu(a), Tensor::FromVector({4}, {0, 0, 1, 4})));
  EXPECT_TRUE(AllClose(Abs(a), Tensor::FromVector({4}, {1, 0, 1, 4})));
  EXPECT_TRUE(AllClose(Neg(a), Tensor::FromVector({4}, {1, 0, -1, -4})));
  EXPECT_NEAR(Sqrt(a).flat(3), 2.0f, 1e-6);
  EXPECT_NEAR(Sigmoid(Tensor::Zeros({1})).flat(0), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(Tensor::Zeros({1})).flat(0), 0.0f, 1e-6);
  EXPECT_TRUE(AllClose(Clamp(a, 0.0f, 2.0f),
                       Tensor::FromVector({4}, {0, 0, 1, 2})));
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(SumAll(a), 21.0f);
  EXPECT_EQ(MeanAll(a), 3.5f);
  EXPECT_EQ(MaxAll(a), 6.0f);
  EXPECT_EQ(MinAll(a), 1.0f);
  EXPECT_TRUE(AllClose(Sum(a, 0), Tensor::FromVector({3}, {5, 7, 9})));
  EXPECT_TRUE(AllClose(Sum(a, 1), Tensor::FromVector({2}, {6, 15})));
  EXPECT_TRUE(
      AllClose(Sum(a, 1, true), Tensor::FromVector({2, 1}, {6, 15})));
  EXPECT_TRUE(AllClose(Mean(a, 0), Tensor::FromVector({3}, {2.5f, 3.5f, 4.5f})));
}

TEST(OpsTest, SumToShape) {
  Tensor a = Tensor::Ones({2, 3, 4});
  Tensor s = SumToShape(a, {3, 4});
  EXPECT_EQ(s.shape(), (Shape{3, 4}));
  EXPECT_EQ(s.flat(0), 2.0f);
  Tensor s2 = SumToShape(a, {1, 3, 1});
  EXPECT_EQ(s2.shape(), (Shape{1, 3, 1}));
  EXPECT_EQ(s2.flat(0), 8.0f);
}

TEST(OpsTest, Argmax) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 3, 7, 2, 5});
  Tensor m = Argmax(a, 1);
  EXPECT_EQ(m.flat(0), 1.0f);
  EXPECT_EQ(m.flat(1), 0.0f);
  Tensor m0 = Argmax(a, 0);
  EXPECT_EQ(m0.flat(0), 1.0f);  // 7 > 1
  EXPECT_EQ(m0.flat(1), 0.0f);  // 9 > 2
}

TEST(OpsTest, MatMul) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(
      AllClose(c, Tensor::FromVector({2, 2}, {58, 64, 139, 154})));
}

TEST(OpsTest, MatMulSerialEqualsParallel) {
  Rng rng(7);
  Tensor a = Tensor::Randn({64, 32}, rng);
  Tensor b = Tensor::Randn({32, 48}, rng);
  Tensor serial;
  Tensor parallel;
  {
    DeviceGuard guard(Device::kSerial);
    serial = MatMul(a, b);
  }
  {
    DeviceGuard guard(Device::kParallel);
    parallel = MatMul(a, b);
  }
  EXPECT_TRUE(AllClose(serial, parallel, 1e-4f, 1e-5f));
}

TEST(OpsTest, Transpose2d) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({2, 1}), 6.0f);
  EXPECT_TRUE(AllClose(Transpose2d(t), a));
}

TEST(OpsTest, Permute) {
  Tensor a = Tensor::Arange(24).Reshape({2, 3, 4});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(p.at({1, 1, 2}), a.at({1, 2, 1}));
}

TEST(OpsTest, ConcatAndSlice) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{4, 2}));
  EXPECT_EQ(c0.at({2, 0}), 5.0f);
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{2, 4}));
  EXPECT_EQ(c1.at({0, 2}), 5.0f);
  EXPECT_TRUE(AllClose(Slice(c1, 1, 0, 2), a));
  EXPECT_TRUE(AllClose(Slice(c1, 1, 2, 4), b));
  EXPECT_TRUE(AllClose(Slice(c0, 0, 2, 4), b));
}

TEST(OpsTest, Stack) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({1, 0}), 3.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 7}, rng);
  Tensor s = Softmax(a, 1);
  Tensor rows = Sum(s, 1);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(rows.flat(i), 1.0f, 1e-5);
}

TEST(OpsTest, LogSoftmaxStability) {
  // Large logits must not produce inf/nan.
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor l = LogSoftmax(a, 1);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(l.flat(i)));
  }
  EXPECT_NEAR(l.flat(2), -0.40761f, 1e-3);
}


TEST(InPlaceOpsTest, MulInPlace) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({4}, {2, 0.5f, -1, 3});
  MulInPlace(a, b);
  EXPECT_TRUE(AllClose(a, Tensor::FromVector({4}, {2, 1, -3, 12})));
}

TEST(InPlaceOpsTest, NegInPlace) {
  Tensor a = Tensor::FromVector({3}, {1, -2, 0});
  NegInPlace(a);
  EXPECT_TRUE(AllClose(a, Tensor::FromVector({3}, {-1, 2, 0})));
}

TEST(InPlaceOpsTest, AddScaledInPlace) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  AddScaledInPlace(a, b, 0.5f);
  EXPECT_TRUE(AllClose(a, Tensor::FromVector({3}, {6, 12, 18})));
}

TEST(InPlaceOpsTest, ReluMaskInPlace) {
  Tensor g = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor x = Tensor::FromVector({4}, {-1, 2, 0, 5});
  ReluMaskInPlace(g, x);
  EXPECT_TRUE(AllClose(g, Tensor::FromVector({4}, {0, 2, 0, 4})));

  Tensor g2 = Tensor::FromVector({2}, {10, 10});
  Tensor x2 = Tensor::FromVector({2}, {-1, 1});
  ReluMaskInPlace(g2, x2, 0.1f);
  EXPECT_TRUE(AllClose(g2, Tensor::FromVector({2}, {1, 10})));
}

TEST(InPlaceOpsTest, SigmoidAndTanhGradMatchExpanded) {
  Tensor x = Tensor::FromVector({4}, {-2, -0.5f, 0.5f, 2});
  Tensor y_sig = Sigmoid(x);
  Tensor g = Tensor::Ones({4});
  SigmoidGradInPlace(g, y_sig);
  Tensor expect = Mul(y_sig, Map(y_sig, [](float v) { return 1.0f - v; }));
  EXPECT_TRUE(AllClose(g, expect));

  Tensor y_tanh = Tanh(x);
  Tensor g2 = Tensor::Ones({4});
  TanhGradInPlace(g2, y_tanh);
  Tensor expect2 = Map(y_tanh, [](float v) { return 1.0f - v * v; });
  EXPECT_TRUE(AllClose(g2, expect2));
}

TEST(InPlaceOpsTest, BroadcastTo) {
  Tensor row = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor out = BroadcastTo(row, {2, 3});
  EXPECT_TRUE(AllClose(out, Tensor::FromVector({2, 3}, {1, 2, 3, 1, 2, 3})));

  Tensor col = Tensor::FromVector({2, 1}, {5, 7});
  Tensor out2 = BroadcastTo(col, {2, 3});
  EXPECT_TRUE(
      AllClose(out2, Tensor::FromVector({2, 3}, {5, 5, 5, 7, 7, 7})));

  // Same shape returns the input (shared storage, no copy).
  Tensor same = BroadcastTo(row, {1, 3});
  EXPECT_TRUE(same.SharesStorageWith(row));

  // Matches the general binary-op broadcast machinery.
  Tensor via_add = Add(Tensor::Zeros({4, 2, 3}), col);
  EXPECT_TRUE(AllClose(BroadcastTo(col, {4, 2, 3}), via_add));
}

TEST(TensorTest, UninitializedHasShapeAndWritableStorage) {
  Tensor t = Tensor::Uninitialized({3, 5});
  EXPECT_EQ(t.numel(), 15);
  t.Fill(2.5f);
  EXPECT_TRUE(AllClose(t, Tensor::Full({3, 5}, 2.5f)));
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(11);
  Tensor a = Tensor::Randn({3, 4, 5}, rng);
  const std::string path = testing::TempDir() + "/t.gten";
  ASSERT_TRUE(SaveTensor(path, a).ok());
  auto loaded = LoadTensor(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(AllClose(*loaded, a, 0.0f, 0.0f));
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto r = LoadTensor("/nonexistent/nope.gten");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace geotorch::tensor
