#include "prep/st_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "baseline/geopandas_like.h"
#include "core/rng.h"
#include "prep/df_to_torch.h"
#include "prep/raster_processing.h"
#include "raster/ops.h"
#include "spatial/grid.h"
#include "stream/aggregator.h"
#include "stream/event.h"
#include "synth/taxi.h"
#include "tensor/ops.h"

namespace geotorch::prep {
namespace {

namespace ts = ::geotorch::tensor;

df::DataFrame SmallTripFrame(int partitions = 3) {
  synth::TaxiTripConfig config;
  config.num_records = 4000;
  config.duration_sec = 2 * 86400;
  config.seed = 21;
  return synth::TripsToDataFrame(synth::GenerateTaxiTrips(config),
                                 partitions);
}

TEST(SpacePartitionTest, ComputeExtentCoversAllPoints) {
  df::DataFrame frame =
      STManager::AddSpatialPoints(SmallTripFrame(), "lat", "lon", "point");
  spatial::Envelope extent =
      SpacePartition::ComputeExtent(frame, "point");
  const int col = frame.schema().FieldIndex("point");
  for (int pi = 0; pi < frame.num_partitions(); ++pi) {
    for (const auto& p : frame.partition(pi).column(col).points()) {
      EXPECT_TRUE(extent.Contains(p));
    }
  }
}

TEST(STManagerTest, AddSpatialPointsBuildsGeometry) {
  df::DataFrame frame = SmallTripFrame();
  df::DataFrame with_points =
      STManager::AddSpatialPoints(frame, "lat", "lon", "point");
  const int pt = with_points.schema().FieldIndex("point");
  const int lon = with_points.schema().FieldIndex("lon");
  const int lat = with_points.schema().FieldIndex("lat");
  const df::Partition& part = with_points.partition(0);
  for (int64_t r = 0; r < std::min<int64_t>(part.num_rows(), 50); ++r) {
    EXPECT_EQ(part.column(pt).points()[r].x, part.column(lon).doubles()[r]);
    EXPECT_EQ(part.column(pt).points()[r].y, part.column(lat).doubles()[r]);
  }
}

TEST(STManagerTest, GridAggregationMatchesManualCount) {
  synth::TaxiTripConfig config;
  config.num_records = 3000;
  config.duration_sec = 86400;
  config.seed = 9;
  auto trips = synth::GenerateTaxiTrips(config);
  df::DataFrame frame = synth::TripsToDataFrame(trips, 4);
  df::DataFrame with_points =
      STManager::AddSpatialPoints(frame, "lat", "lon", "point");

  StGridSpec spec;
  spec.partitions_x = 6;
  spec.partitions_y = 8;
  spec.step_duration_sec = 3600;
  spec.extent = config.extent;
  StGridResult result = STManager::GetStGridDataFrame(with_points, spec);

  // Manual aggregation with the same grid.
  spatial::GridPartitioner grid(config.extent, 6, 8);
  std::map<std::pair<int64_t, int64_t>, int64_t> manual;
  for (const auto& t : trips) {
    auto cell = grid.CellOf({t.lon, t.lat});
    ASSERT_TRUE(cell.has_value());
    ++manual[{*cell, t.time_sec / 3600}];
  }
  EXPECT_EQ(result.frame.NumRows(),
            static_cast<int64_t>(manual.size()));

  df::DataFrame sorted = result.frame.SortByInt64("cell_id");
  const int cell_idx = sorted.schema().FieldIndex("cell_id");
  const int time_idx = sorted.schema().FieldIndex("time_id");
  const int count_idx = sorted.schema().FieldIndex("count");
  const df::Partition& part = sorted.partition(0);
  for (int64_t r = 0; r < part.num_rows(); ++r) {
    const auto key = std::make_pair(part.column(cell_idx).int64s()[r],
                                    part.column(time_idx).int64s()[r]);
    EXPECT_EQ(part.column(count_idx).int64s()[r], manual[key]);
  }
}

TEST(STManagerTest, TensorScatterMatchesFrame) {
  df::DataFrame with_points =
      STManager::AddSpatialPoints(SmallTripFrame(), "lat", "lon", "point");
  StGridSpec spec;
  spec.partitions_x = 4;
  spec.partitions_y = 5;
  spec.step_duration_sec = 7200;
  StGridResult result = STManager::GetStGridDataFrame(with_points, spec);
  ts::Tensor tensor = STManager::GetStGridTensor(result, {"count"});
  EXPECT_EQ(tensor.shape(),
            (ts::Shape{result.num_timesteps, 1, 5, 4}));
  // Total mass equals the number of in-extent records.
  EXPECT_EQ(static_cast<int64_t>(ts::SumAll(tensor)),
            with_points.NumRows());
  // Spot-check one frame cell against the frame rows.
  const int cell_idx = result.frame.schema().FieldIndex("cell_id");
  const int time_idx = result.frame.schema().FieldIndex("time_id");
  const int count_idx = result.frame.schema().FieldIndex("count");
  const df::Partition& part = result.frame.partition(0);
  for (int64_t r = 0; r < std::min<int64_t>(20, part.num_rows()); ++r) {
    const int64_t cell = part.column(cell_idx).int64s()[r];
    const int64_t time = part.column(time_idx).int64s()[r];
    EXPECT_EQ(tensor.at({time, 0, cell / 4, cell % 4}),
              static_cast<float>(part.column(count_idx).int64s()[r]));
  }
}

TEST(STManagerTest, MultiChannelAggregation) {
  df::DataFrame frame = SmallTripFrame();
  df::DataFrame with_points =
      STManager::AddSpatialPoints(frame, "lat", "lon", "point");
  const int pickup_idx = with_points.schema().FieldIndex("is_pickup");
  df::DataFrame channels =
      with_points
          .WithColumn("pu", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return static_cast<double>(row.GetInt64(pickup_idx));
                      })
          .WithColumn("do", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return 1.0 -
                               static_cast<double>(row.GetInt64(pickup_idx));
                      });
  StGridSpec spec;
  spec.partitions_x = 3;
  spec.partitions_y = 3;
  spec.step_duration_sec = 86400;
  spec.aggs = {{df::AggKind::kSum, "pu", "pickups"},
               {df::AggKind::kSum, "do", "dropoffs"},
               {df::AggKind::kCount, "", "total"}};
  StGridResult result = STManager::GetStGridDataFrame(channels, spec);
  ts::Tensor t =
      STManager::GetStGridTensor(result, {"pickups", "dropoffs"});
  EXPECT_EQ(t.size(1), 2);
  // pickups + dropoffs == total count.
  ts::Tensor both = ts::Add(ts::Slice(t, 1, 0, 1), ts::Slice(t, 1, 1, 2));
  EXPECT_EQ(static_cast<int64_t>(ts::SumAll(both)), frame.NumRows());
}

TEST(STManagerTest, CoarsenGridSumsBlocks) {
  ts::Tensor fine = ts::Tensor::Ones({2, 1, 4, 4});
  ts::Tensor coarse = STManager::CoarsenGrid(fine, 2);
  EXPECT_EQ(coarse.shape(), (ts::Shape{2, 1, 2, 2}));
  EXPECT_EQ(coarse.flat(0), 4.0f);
  EXPECT_EQ(ts::SumAll(coarse), ts::SumAll(fine));
}

TEST(BaselineCrossCheck, BaselineMatchesPrepModuleTensor) {
  // The GeoPandas-like baseline and the distributed module must produce
  // the identical spatiotemporal tensor from the same trips.
  synth::TaxiTripConfig config;
  config.num_records = 3000;
  config.duration_sec = 86400;
  config.seed = 33;
  auto trips = synth::GenerateTaxiTrips(config);

  baseline::BaselineOptions options;
  options.partitions_x = 4;
  options.partitions_y = 4;
  options.step_duration_sec = 3600;
  baseline::BaselineOutcome outcome =
      baseline::GeoPandasLikePrepare(trips, options);
  ASSERT_FALSE(outcome.out_of_memory);

  df::DataFrame frame = synth::TripsToDataFrame(trips, 3);
  df::DataFrame with_points =
      STManager::AddSpatialPoints(frame, "lat", "lon", "point");
  const int pickup_idx = with_points.schema().FieldIndex("is_pickup");
  df::DataFrame channels =
      with_points
          .WithColumn("pu", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return static_cast<double>(row.GetInt64(pickup_idx));
                      })
          .WithColumn("do", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return 1.0 -
                               static_cast<double>(row.GetInt64(pickup_idx));
                      });
  StGridSpec spec;
  spec.partitions_x = 4;
  spec.partitions_y = 4;
  spec.step_duration_sec = 3600;
  // The baseline derives its extent from the data; do the same here.
  spec.aggs = {{df::AggKind::kSum, "pu", "pickups"},
               {df::AggKind::kSum, "do", "dropoffs"}};
  StGridResult result = STManager::GetStGridDataFrame(channels, spec);
  ts::Tensor ours =
      STManager::GetStGridTensor(result, {"pickups", "dropoffs"});

  ASSERT_EQ(ours.shape(), outcome.st_tensor.shape());
  EXPECT_TRUE(ts::AllClose(ours, outcome.st_tensor, 0.0f, 0.0f))
      << "prep module and baseline disagree";
}

TEST(BaselineTest, OomGuardTrips) {
  synth::TaxiTripConfig config;
  config.num_records = 2000;
  config.seed = 1;
  auto trips = synth::GenerateTaxiTrips(config);
  baseline::BaselineOptions options;
  options.memory_limit_bytes = 10000;  // absurdly small
  baseline::BaselineOutcome outcome =
      baseline::GeoPandasLikePrepare(trips, options);
  EXPECT_TRUE(outcome.out_of_memory);
  EXPECT_GT(outcome.peak_logical_bytes, 10000);
}

TEST(RasterProcessingTest, ParallelNdiMatchesDirectOp) {
  std::vector<raster::RasterImage> images;
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    raster::RasterImage img(8, 8, 3);
    for (auto& v : img.data()) v = static_cast<float>(rng.Uniform(0.1, 1));
    images.push_back(std::move(img));
  }
  auto transformed =
      RasterProcessing::AppendNormalizedDifferenceIndex(images, 0, 1);
  ASSERT_EQ(transformed.size(), 5u);
  for (size_t i = 0; i < images.size(); ++i) {
    raster::RasterImage direct =
        raster::AppendNormalizedDifferenceIndex(images[i], 0, 1);
    EXPECT_EQ(transformed[i].bands(), 4);
    EXPECT_EQ(transformed[i].data(), direct.data());
  }
}

TEST(RasterProcessingTest, WriteLoadRoundTrip) {
  std::vector<raster::RasterImage> images;
  for (int i = 0; i < 3; ++i) {
    raster::RasterImage img(4, 4, 2);
    img.at(0, 0, 0) = static_cast<float>(i);
    images.push_back(std::move(img));
  }
  auto paths = RasterProcessing::WriteGeotiffImages(
      images, testing::TempDir(), "prep_test_");
  ASSERT_TRUE(paths.ok());
  auto loaded = RasterProcessing::LoadGeotiffImages(*paths);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[2].at(0, 0, 0), 2.0f);
}

TEST(DfToTorchTest, BatchesAllRows) {
  df::DataFrame frame =
      df::DataFrame::FromColumns(
          {{"a", df::Column::FromDoubles({1, 2, 3, 4, 5})},
           {"b", df::Column::FromInt64s({10, 20, 30, 40, 50})},
           {"label", df::Column::FromInt64s({0, 1, 0, 1, 0})}})
          .Repartition(2);
  DfToTorch::Options options;
  options.feature_columns = {"a", "b"};
  options.label_column = "label";
  options.batch_size = 2;
  DfToTorch converter(frame, options);
  EXPECT_EQ(converter.num_rows(), 5);

  ts::Tensor x;
  ts::Tensor y;
  int64_t rows = 0;
  int batches = 0;
  double label_sum = 0.0;
  while (converter.NextBatch(&x, &y)) {
    EXPECT_EQ(x.size(1), 2);
    EXPECT_EQ(x.size(0), y.size(0));
    rows += x.size(0);
    ++batches;
    label_sum += ts::SumAll(y);
  }
  EXPECT_EQ(rows, 5);
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(label_sum, 2.0);  // two 1-labels

  // Reset allows a second pass.
  converter.Reset();
  EXPECT_TRUE(converter.NextBatch(&x, &y));
}

TEST(DfToTorchTest, TransformApplied) {
  df::DataFrame frame = df::DataFrame::FromColumns(
      {{"a", df::Column::FromDoubles({1, 2, 3})}});
  DfToTorch::Options options;
  options.feature_columns = {"a"};
  options.batch_size = 10;
  options.transform = [](const ts::Tensor& x) {
    return ts::MulScalar(x, 10.0f);
  };
  DfToTorch converter(frame, options);
  ts::Tensor x;
  ts::Tensor y;
  ASSERT_TRUE(converter.NextBatch(&x, &y));
  EXPECT_EQ(x.flat(0), 10.0f);
  EXPECT_EQ(x.flat(2), 30.0f);
}

TEST(DfToTorchTest, ToDatasetMaterializes) {
  df::DataFrame frame =
      df::DataFrame::FromColumns(
          {{"a", df::Column::FromDoubles({1, 2, 3, 4})},
           {"y", df::Column::FromDoubles({0.1, 0.2, 0.3, 0.4})}})
          .Repartition(2);
  DfToTorch::Options options;
  options.feature_columns = {"a"};
  options.label_column = "y";
  DfToTorch converter(frame, options);
  auto dataset = converter.ToDataset();
  EXPECT_EQ(dataset->Size(), 4);
  // All labels present regardless of partition order.
  double sum = 0.0;
  for (int64_t i = 0; i < 4; ++i) sum += dataset->Get(i).y.flat(0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

// --- Streaming incremental grid vs. batch rebuild ---------------------------
//
// The window aggregator's core claim (DESIGN.md §14): the incrementally
// maintained ST grid is BITWISE equal to a from-scratch batch rebuild
// through STManager at every window boundary — empty windows, final
// partial flush, out-of-order-within-tick arrival, and out-of-extent
// events included. Integer accumulation is order-free and exact in
// float, so equality is exact, not approximate.

namespace stream = ::geotorch::stream;

// Batch reference: all `trips` through the batch preprocessing path at
// `step` resolution — (T, 2, H, W) with channel 0 = count, channel 1 =
// sum(is_pickup), T = last nonempty time slot + 1.
ts::Tensor BatchGridTensor(const std::vector<synth::TripRecord>& trips,
                           const spatial::Envelope& extent, int nx, int ny,
                           int64_t step) {
  df::DataFrame frame = synth::TripsToDataFrame(trips, 3);
  df::DataFrame with_points =
      STManager::AddSpatialPoints(frame, "lat", "lon", "point");
  StGridSpec spec;
  spec.partitions_x = nx;
  spec.partitions_y = ny;
  spec.step_duration_sec = step;
  spec.extent = extent;
  spec.aggs = {{df::AggKind::kCount, "", "count"},
               {df::AggKind::kSum, "is_pickup", "pickups"}};
  StGridResult result = STManager::GetStGridDataFrame(with_points, spec);
  return STManager::GetStGridTensor(result, {"count", "pickups"});
}

// True when `frame` equals batch frame `t` bit for bit (frames past the
// batch tensor's last nonempty slot must be all-zero).
::testing::AssertionResult FrameMatchesBatch(const ts::Tensor& frame,
                                             const ts::Tensor& batch,
                                             int64_t t) {
  const int64_t per_frame = frame.numel();
  const float* got = frame.data();
  if (t < batch.shape()[0]) {
    const float* want = batch.data() + t * per_frame;
    if (std::memcmp(got, want, per_frame * sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "window " << t << " diverges from the batch rebuild";
    }
    return ::testing::AssertionSuccess();
  }
  for (int64_t i = 0; i < per_frame; ++i) {
    if (got[i] != 0.0f) {
      return ::testing::AssertionFailure()
             << "window " << t << " past the batch horizon is nonzero";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(StreamBatchEquivalenceTest, TumblingBitwiseEqualAtEveryBoundary) {
  const spatial::Envelope extent(0.0, 0.0, 1.0, 1.0);
  const int nx = 5;
  const int ny = 4;
  const int64_t window = 100;
  spatial::GridPartitioner grid(extent, nx, ny);

  // Hand-built tick stream: ticks of 50s, events unordered WITHIN each
  // tick, buckets 3-4 left empty, plus out-of-extent strays that both
  // paths must drop identically.
  geotorch::Rng rng(41);
  std::vector<std::vector<synth::TripRecord>> ticks;
  for (int64_t tick_start = 0; tick_start < 800; tick_start += 50) {
    std::vector<synth::TripRecord> tick;
    const int64_t bucket = tick_start / window;
    if (bucket == 3 || bucket == 4) {
      ticks.push_back(tick);  // empty windows mid-stream
      continue;
    }
    const int64_t n = rng.UniformInt(5, 30);
    for (int64_t i = 0; i < n; ++i) {
      synth::TripRecord r;
      const bool outside = rng.Bernoulli(0.1);
      r.lon = outside ? 2.0 + rng.Uniform() : rng.Uniform();
      r.lat = rng.Uniform();
      // Unordered within the tick; ordered across ticks.
      r.time_sec = rng.UniformInt(tick_start, tick_start + 49);
      r.is_pickup = rng.Bernoulli(0.5) ? 1 : 0;
      tick.push_back(r);
    }
    ticks.push_back(tick);
  }

  stream::WindowAggregator::Options opts;
  opts.window_sec = window;
  opts.slide_sec = window;
  stream::WindowAggregator agg(grid, opts);

  std::vector<synth::TripRecord> fed;   // everything the stream has seen
  std::vector<stream::ClosedWindow> closed;
  int64_t compared = 0;
  auto compare_closed = [&] {
    for (const stream::ClosedWindow& w : closed) {
      // Rebuild from scratch with exactly the events at time < end_sec
      // — everything this and all earlier windows cover.
      std::vector<synth::TripRecord> upto;
      for (const auto& r : fed) {
        if (r.time_sec < w.end_sec) upto.push_back(r);
      }
      if (upto.empty()) {
        EXPECT_EQ(ts::SumAll(w.frame), 0.0f);
        ++compared;
        continue;
      }
      ts::Tensor batch = BatchGridTensor(upto, extent, nx, ny, window);
      EXPECT_TRUE(FrameMatchesBatch(w.frame, batch, w.window_id));
      ++compared;
    }
    closed.clear();
  };

  for (const auto& tick : ticks) {
    for (const auto& r : tick) {
      stream::Event e;
      e.lon = r.lon;
      e.lat = r.lat;
      e.time_sec = r.time_sec;
      e.is_pickup = r.is_pickup != 0;
      agg.Add(e, &closed);
      fed.push_back(r);
      compare_closed();
    }
  }
  agg.Flush(&closed);  // the final partial window must match too
  compare_closed();

  EXPECT_EQ(agg.late_events(), 0);
  EXPECT_GT(agg.dropped_outside(), 0);  // the strays exercised the filter
  EXPECT_EQ(compared, agg.windows_closed());
  EXPECT_GE(compared, 8);  // covered every bucket incl. the empty ones
}

TEST(StreamBatchEquivalenceTest, SlidingTaxiStreamMatchesBatchAtEverySlide) {
  synth::TaxiStreamConfig config;
  config.events_per_sec = 2.0;
  config.duration_sec = 4 * 3600;
  config.tick_sec = 600;
  config.seed = 23;
  synth::TaxiEventStream source(config);

  const int nx = 6;
  const int ny = 5;
  const int64_t slide = 1800;
  const int64_t window = 3600;  // every window spans 2 slide buckets
  spatial::GridPartitioner grid(config.extent, nx, ny);
  stream::WindowAggregator::Options opts;
  opts.window_sec = window;
  opts.slide_sec = slide;
  stream::WindowAggregator agg(grid, opts);

  std::vector<synth::TripRecord> fed;
  std::vector<stream::ClosedWindow> closed;
  std::vector<synth::TripRecord> tick;
  int64_t compared = 0;
  while (true) {
    tick.clear();
    const bool more = source.NextTick(&tick);
    for (const auto& r : tick) {
      stream::Event e;
      e.lon = r.lon;
      e.lat = r.lat;
      e.time_sec = r.time_sec;
      e.is_pickup = r.is_pickup != 0;
      agg.Add(e, &closed);
      fed.push_back(r);
    }
    if (!more) agg.Flush(&closed);
    for (const stream::ClosedWindow& w : closed) {
      // Sliding reference: the batch rebuild at `slide` resolution over
      // events at time < end_sec, with the window's trailing buckets
      // summed in int64 (every batch value is an exact integer) and
      // cast to float — the same arithmetic the aggregator commits to.
      std::vector<synth::TripRecord> upto;
      for (const auto& r : fed) {
        if (r.time_sec < w.end_sec) upto.push_back(r);
      }
      ASSERT_FALSE(upto.empty());
      ts::Tensor batch = BatchGridTensor(upto, config.extent, nx, ny, slide);
      const int64_t per_frame = 2LL * ny * nx;
      std::vector<int64_t> want(per_frame, 0);
      for (int64_t b = w.start_sec / slide; b <= w.window_id; ++b) {
        if (b >= batch.shape()[0]) continue;
        const float* src = batch.data() + b * per_frame;
        for (int64_t i = 0; i < per_frame; ++i) {
          want[i] += static_cast<int64_t>(src[i]);
        }
      }
      const float* got = w.frame.data();
      for (int64_t i = 0; i < per_frame; ++i) {
        ASSERT_EQ(got[i], static_cast<float>(want[i]))
            << "window " << w.window_id << " cell " << i;
      }
      ++compared;
    }
    closed.clear();
    if (!more) break;
  }
  EXPECT_EQ(compared, agg.windows_closed());
  EXPECT_GE(compared, config.duration_sec / slide);
  EXPECT_EQ(agg.late_events(), 0);
}

}  // namespace
}  // namespace geotorch::prep
