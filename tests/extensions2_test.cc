// Tests for the second extension batch: LstmCell, the CNN+LSTM hybrid
// model, raster georeferencing/clip/resample, and DataLoader
// prefetching.

#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "datasets/grid_dataset.h"
#include "models/grid_models.h"
#include "optim/optimizer.h"
#include "models/trainer.h"
#include "nn/layers.h"
#include "raster/ops.h"
#include "synth/weather.h"
#include "tensor/ops.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;
namespace ag = ::geotorch::autograd;

TEST(LstmCellTest, StateEvolvesAndIsBounded) {
  Rng rng(1);
  nn::LstmCell cell(6, 4, rng);
  auto state = cell.InitialState(3);
  EXPECT_EQ(state.h.shape(), (ts::Shape{3, 4}));
  EXPECT_EQ(ts::SumAll(state.h.value()), 0.0f);
  ag::Variable x(ts::Tensor::Randn({3, 6}, rng));
  auto next = cell.Step(x, state);
  EXPECT_NE(ts::SumAll(next.h.value()), 0.0f);
  EXPECT_LE(ts::MaxAll(next.h.value()), 1.0f);
  EXPECT_GE(ts::MinAll(next.h.value()), -1.0f);
}

TEST(LstmCellTest, BackpropThroughTime) {
  Rng rng(2);
  nn::LstmCell cell(3, 2, rng);
  ag::Variable x(ts::Tensor::Randn({2, 3}, rng), true);
  auto state = cell.InitialState(2);
  for (int t = 0; t < 4; ++t) state = cell.Step(x, state);
  ag::Variable loss = ag::MeanAll(ag::Mul(state.h, state.h));
  loss.Backward();
  EXPECT_TRUE(x.has_grad());
  for (auto& p : cell.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(CnnLstmTest, ForwardShapeAndLearning) {
  datasets::GridDataset dataset(
      synth::GenerateGridFlow(260, 2, 9, 11, 24, 8), 24);
  dataset.MinMaxNormalize();
  dataset.SetSequentialRepresentation(4, 1);
  data::DataLoader loader(&dataset, 6, false);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));

  models::GridModelConfig mc;
  mc.channels = 2;
  mc.height = 9;   // odd dims exercise the stride-2 shape math
  mc.width = 11;
  mc.hidden = 8;
  models::CnnLstm model(mc);
  ag::Variable out = model.Forward(batch);
  EXPECT_EQ(out.shape(), batch.y.shape());

  // A few steps reduce the loss.
  optim::Adam opt(model.Parameters(), 5e-3f);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 15; ++step) {
    opt.ZeroGrad();
    ag::Variable loss = ag::MseLoss(model.Forward(batch), batch.y);
    loss.Backward();
    opt.Step();
    if (step == 0) first = loss.value().flat(0);
    last = loss.value().flat(0);
  }
  EXPECT_LT(last, first);
}

TEST(GeoreferenceTest, PixelWorldRoundTrip) {
  raster::RasterImage img(10, 20, 1);
  img.set_geotransform({-74.0, 0.01, 0.0, 40.9, 0.0, -0.02});
  auto [x, y] = raster::PixelToWorld(img, 0, 0);
  EXPECT_NEAR(x, -74.0 + 0.005, 1e-9);
  EXPECT_NEAR(y, 40.9 - 0.01, 1e-9);
  auto [i, j] = raster::WorldToPixel(img, x, y);
  EXPECT_EQ(i, 0);
  EXPECT_EQ(j, 0);
  // Far corner.
  auto [x2, y2] = raster::PixelToWorld(img, 9, 19);
  auto [i2, j2] = raster::WorldToPixel(img, x2, y2);
  EXPECT_EQ(i2, 9);
  EXPECT_EQ(j2, 19);
  // Outside.
  auto [i3, j3] = raster::WorldToPixel(img, -80.0, 40.9);
  EXPECT_EQ(i3, -1);
  EXPECT_EQ(j3, -1);
}

TEST(ClipTest, WindowAndGeotransform) {
  raster::RasterImage img(8, 8, 2);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      img.at(0, i, j) = static_cast<float>(i * 8 + j);
    }
  }
  img.set_geotransform({100.0, 1.0, 0.0, 50.0, 0.0, -1.0});
  raster::RasterImage clipped = raster::ClipRaster(img, 2, 3, 4, 5);
  EXPECT_EQ(clipped.height(), 4);
  EXPECT_EQ(clipped.width(), 5);
  EXPECT_EQ(clipped.at(0, 0, 0), img.at(0, 2, 3));
  EXPECT_EQ(clipped.at(0, 3, 4), img.at(0, 5, 7));
  // The clipped origin is the same world point as pixel (2,3).
  auto [wx, wy] = raster::PixelToWorld(clipped, 0, 0);
  auto [ox, oy] = raster::PixelToWorld(img, 2, 3);
  EXPECT_NEAR(wx, ox, 1e-9);
  EXPECT_NEAR(wy, oy, 1e-9);
}

TEST(ResampleTest, NearestPreservesValuesAndExtent) {
  raster::RasterImage img(4, 4, 1);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      img.at(0, i, j) = static_cast<float>(i * 4 + j);
    }
  }
  raster::RasterImage up = raster::ResampleNearest(img, 8, 8);
  EXPECT_EQ(up.at(0, 0, 0), img.at(0, 0, 0));
  EXPECT_EQ(up.at(0, 7, 7), img.at(0, 3, 3));
  EXPECT_EQ(up.at(0, 2, 2), img.at(0, 1, 1));
  // Pixel size halves; total extent unchanged.
  EXPECT_NEAR(up.geotransform()[1], img.geotransform()[1] / 2.0, 1e-12);

  raster::RasterImage down = raster::ResampleNearest(img, 2, 2);
  EXPECT_EQ(down.at(0, 0, 0), img.at(0, 0, 0));
  EXPECT_EQ(down.at(0, 1, 1), img.at(0, 2, 2));
}

TEST(PrefetchTest, PrefetchingLoaderMatchesPlainLoader) {
  ts::Tensor xs = ts::Tensor::Arange(60).Reshape({20, 3});
  data::TensorDataset dataset(xs, ts::Tensor::Arange(20));
  data::DataLoader plain(&dataset, 7, /*shuffle=*/true, /*seed=*/5);
  data::DataLoader pre(&dataset, 7, /*shuffle=*/true, /*seed=*/5,
                       /*drop_last=*/false, /*prefetch=*/true);
  for (int epoch = 0; epoch < 3; ++epoch) {
    plain.Reset();
    pre.Reset();
    data::Batch a;
    data::Batch b;
    while (true) {
      const bool has_a = plain.Next(&a);
      const bool has_b = pre.Next(&b);
      ASSERT_EQ(has_a, has_b);
      if (!has_a) break;
      EXPECT_EQ(a.size, b.size);
      EXPECT_TRUE(ts::AllClose(a.x, b.x));
      EXPECT_TRUE(ts::AllClose(a.y, b.y));
    }
  }
}

TEST(PrefetchTest, ResetMidEpochIsSafe) {
  ts::Tensor xs = ts::Tensor::Ones({10, 2});
  data::TensorDataset dataset(xs, ts::Tensor::Arange(10));
  data::DataLoader loader(&dataset, 3, false, 0, false, /*prefetch=*/true);
  data::Batch batch;
  ASSERT_TRUE(loader.Next(&batch));  // leaves a batch in flight
  loader.Reset();
  int64_t rows = 0;
  while (loader.Next(&batch)) rows += batch.size;
  EXPECT_EQ(rows, 10);
}

}  // namespace
}  // namespace geotorch
