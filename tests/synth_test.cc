#include "synth/taxi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/noise.h"
#include "synth/satimage.h"
#include "synth/weather.h"
#include "tensor/ops.h"

namespace geotorch::synth {
namespace {

namespace ts = ::geotorch::tensor;

TEST(NoiseTest, SmoothNoiseIsBoundedAndSmooth) {
  Rng rng(1);
  std::vector<float> field = SmoothNoise(32, 32, 8, rng);
  float max_jump = 0.0f;
  for (int64_t i = 0; i < 32; ++i) {
    for (int64_t j = 1; j < 32; ++j) {
      EXPECT_LE(std::fabs(field[i * 32 + j]), 1.0f);
      max_jump =
          std::max(max_jump,
                   std::fabs(field[i * 32 + j] - field[i * 32 + j - 1]));
    }
  }
  // Lattice spacing 8 bounds the per-pixel delta to ~2/8.
  EXPECT_LE(max_jump, 0.5f);
}

TEST(NoiseTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(SmoothNoise(16, 16, 4, a), SmoothNoise(16, 16, 4, b));
}

TEST(NoiseTest, FractalAddsDetail) {
  Rng a(7);
  Rng b(7);
  std::vector<float> single = SmoothNoise(64, 64, 16, a);
  std::vector<float> fractal = FractalNoise(64, 64, 16, 3, b);
  EXPECT_EQ(fractal.size(), single.size());
  for (float v : fractal) EXPECT_LE(std::fabs(v), 1.001f);
}

TEST(TaxiTest, GeneratesRequestedCount) {
  TaxiTripConfig config;
  config.num_records = 5000;
  config.seed = 11;
  auto trips = GenerateTaxiTrips(config);
  EXPECT_EQ(trips.size(), 5000u);
  for (const auto& t : trips) {
    EXPECT_TRUE(config.extent.Contains({t.lon, t.lat}));
    EXPECT_GE(t.time_sec, 0);
    EXPECT_LT(t.time_sec, config.duration_sec);
    EXPECT_TRUE(t.is_pickup == 0 || t.is_pickup == 1);
  }
}

TEST(TaxiTest, Deterministic) {
  TaxiTripConfig config;
  config.num_records = 100;
  config.seed = 5;
  auto a = GenerateTaxiTrips(config);
  auto b = GenerateTaxiTrips(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lon, b[i].lon);
    EXPECT_EQ(a[i].time_sec, b[i].time_sec);
  }
}

TEST(TaxiTest, DiurnalProfileHasRushHours) {
  // 6pm on a weekday beats 3am.
  const int64_t weekday = 1 * 86400;
  EXPECT_GT(TripIntensity(weekday + 18 * 3600),
            2.0 * TripIntensity(weekday + 3 * 3600));
  // Weekends are quieter than weekdays at the same hour.
  const int64_t saturday = 5 * 86400;  // epoch day 0 = Thursday-like; day%7>=5
  EXPECT_LT(TripIntensity(saturday + 18 * 3600),
            TripIntensity(weekday + 18 * 3600));
}

TEST(TaxiTest, RushHoursShowUpInGeneratedData) {
  TaxiTripConfig config;
  config.num_records = 20000;
  config.duration_sec = 14 * 86400;
  config.seed = 3;
  auto trips = GenerateTaxiTrips(config);
  std::vector<int64_t> by_hour(24, 0);
  for (const auto& t : trips) ++by_hour[(t.time_sec % 86400) / 3600];
  EXPECT_GT(by_hour[18], 2 * by_hour[3]);
}

TEST(TaxiTest, DataFrameConversion) {
  TaxiTripConfig config;
  config.num_records = 1000;
  auto trips = GenerateTaxiTrips(config);
  df::DataFrame frame = TripsToDataFrame(trips, 4);
  EXPECT_EQ(frame.NumRows(), 1000);
  EXPECT_EQ(frame.num_partitions(), 4);
  EXPECT_TRUE(frame.schema().HasField("lon"));
  EXPECT_TRUE(frame.schema().HasField("is_pickup"));
}

TEST(WeatherTest, TemperatureShapeAndRange) {
  ts::Tensor field = GenerateWeatherField(WeatherKind::kTemperature, 48, 8,
                                          16, /*seed=*/2);
  EXPECT_EQ(field.shape(), (ts::Shape{48, 1, 8, 16}));
  EXPECT_GT(ts::MaxAll(field), 0.0f);    // warm somewhere
  EXPECT_LT(ts::MinAll(field), 15.0f);   // cold somewhere
  EXPECT_GT(ts::MinAll(field), -60.0f);  // physically plausible
}

TEST(WeatherTest, TemperatureIsAutocorrelated) {
  ts::Tensor field =
      GenerateWeatherField(WeatherKind::kTemperature, 100, 8, 8, 4);
  // Persistence (frame t predicts t+1) must beat the climatological
  // spread: |x_{t+1} - x_t| << |x_{t+1} - mean|.
  ts::Tensor next = ts::Slice(field, 0, 1, 100);
  ts::Tensor cur = ts::Slice(field, 0, 0, 99);
  const float step_mae = ts::MeanAll(ts::Abs(ts::Sub(next, cur)));
  const float mean = ts::MeanAll(field);
  const float clim_mae =
      ts::MeanAll(ts::Abs(ts::AddScalar(field, -mean)));
  EXPECT_LT(step_mae, 0.5f * clim_mae);
}

TEST(WeatherTest, PrecipitationSparseNonNegative) {
  ts::Tensor field =
      GenerateWeatherField(WeatherKind::kPrecipitation, 48, 8, 16, 3);
  EXPECT_GE(ts::MinAll(field), 0.0f);
  // Most cells are dry.
  int64_t wet = 0;
  for (int64_t i = 0; i < field.numel(); ++i) {
    if (field.flat(i) > 0.0f) ++wet;
  }
  EXPECT_LT(wet, field.numel() / 2);
  EXPECT_GT(wet, 0);
}

TEST(WeatherTest, CloudCoverInUnitInterval) {
  ts::Tensor field =
      GenerateWeatherField(WeatherKind::kCloudCover, 24, 8, 16, 5);
  EXPECT_GE(ts::MinAll(field), 0.0f);
  EXPECT_LE(ts::MaxAll(field), 1.0f);
}

TEST(GridFlowTest, ShapeNonNegativeAndPeriodic) {
  ts::Tensor flow = GenerateGridFlow(/*t=*/7 * 24, /*c=*/2, /*h=*/6,
                                     /*w=*/6, /*steps_per_day=*/24, 9);
  EXPECT_EQ(flow.shape(), (ts::Shape{168, 2, 6, 6}));
  EXPECT_GE(ts::MinAll(flow), 0.0f);
  // Daily periodicity: same-hour frames correlate more than offset
  // frames. Compare hour-18 across days vs hour-18 against hour-3.
  auto frame_mean = [&](int64_t t) {
    return ts::MeanAll(ts::Slice(flow, 0, t, t + 1));
  };
  const float rush1 = frame_mean(18);
  const float rush2 = frame_mean(18 + 24);
  const float night = frame_mean(3 + 24);
  EXPECT_GT((rush1 + rush2) / 2, 1.5f * night);
}

TEST(SatImageTest, SceneShapesAndRange) {
  SceneConfig config;
  config.size = 16;
  config.bands = 4;
  config.num_classes = 6;
  raster::RasterImage img = GenerateScene(config, 2, /*image_seed=*/7);
  EXPECT_EQ(img.height(), 16);
  EXPECT_EQ(img.bands(), 4);
  for (float v : img.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SatImageTest, ClassesAreSpectrallySeparable) {
  SceneConfig config;
  config.size = 16;
  config.bands = 4;
  config.num_classes = 6;
  // Per-band means of two images from the same class are closer than
  // two images from different classes (averaged over pairs).
  auto band_means = [&](int cls, uint64_t seed) {
    raster::RasterImage img = GenerateScene(config, cls, seed);
    std::vector<float> m(config.bands);
    for (int64_t b = 0; b < config.bands; ++b) {
      double s = 0;
      for (int64_t i = 0; i < img.PixelsPerBand(); ++i) {
        s += img.band_data(b)[i];
      }
      m[b] = static_cast<float>(s / img.PixelsPerBand());
    }
    return m;
  };
  auto dist = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
  };
  double same = 0.0;
  double diff = 0.0;
  int same_n = 0;
  int diff_n = 0;
  for (int c1 = 0; c1 < 4; ++c1) {
    for (int c2 = 0; c2 < 4; ++c2) {
      const double d =
          dist(band_means(c1, 100 + c1), band_means(c2, 200 + c2));
      if (c1 == c2) {
        same += d;
        ++same_n;
      } else {
        diff += d;
        ++diff_n;
      }
    }
  }
  EXPECT_LT(same / same_n, diff / diff_n);
}

TEST(SatImageTest, ClassificationSetBalancedLabels) {
  SceneConfig config;
  config.size = 8;
  config.bands = 3;
  config.num_classes = 5;
  auto [images, labels] = GenerateClassificationSet(25, config);
  EXPECT_EQ(images.shape(), (ts::Shape{25, 3, 8, 8}));
  std::vector<int> counts(5, 0);
  for (int64_t i = 0; i < 25; ++i) {
    ++counts[static_cast<int>(labels.flat(i))];
  }
  for (int c : counts) EXPECT_EQ(c, 5);
}

TEST(SatImageTest, CloudMasksBinaryAndCorrelated) {
  auto [images, masks] = GenerateCloudSegmentationSet(6, 16, 4, /*seed=*/8);
  EXPECT_EQ(images.shape(), (ts::Shape{6, 4, 16, 16}));
  EXPECT_EQ(masks.shape(), (ts::Shape{6, 16, 16}));
  double cloud_sum = 0.0;
  double clear_sum = 0.0;
  int64_t cloud_n = 0;
  int64_t clear_n = 0;
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t p = 0; p < 16 * 16; ++p) {
      const float m = masks.flat(i * 256 + p);
      EXPECT_TRUE(m == 0.0f || m == 1.0f);
      const float v = images.flat(i * 4 * 256 + p);  // band 0
      if (m > 0.5f) {
        cloud_sum += v;
        ++cloud_n;
      } else {
        clear_sum += v;
        ++clear_n;
      }
    }
  }
  ASSERT_GT(cloud_n, 0);
  ASSERT_GT(clear_n, 0);
  // Clouds are brighter.
  EXPECT_GT(cloud_sum / cloud_n, clear_sum / clear_n + 0.1);
}

}  // namespace
}  // namespace geotorch::synth
