#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace geotorch::optim {
namespace {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

// Minimizes ||w - target||^2 with the given optimizer; returns final w.
template <typename Opt>
ts::Tensor Minimize(Opt& opt, ag::Variable& w, const ts::Tensor& target,
                    int steps) {
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    ag::Variable loss = ag::MseLoss(w, target);
    loss.Backward();
    opt.Step();
  }
  return w.value();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ag::Variable w(ts::Tensor::Zeros({4}), true);
  ts::Tensor target = ts::Tensor::FromVector({4}, {1, -2, 3, 0.5f});
  Sgd opt({w}, /*lr=*/0.5f);
  ts::Tensor result = Minimize(opt, w, target, 100);
  EXPECT_TRUE(ts::AllClose(result, target, 1e-3f, 1e-3f));
}

TEST(SgdTest, MomentumAccelerates) {
  ts::Tensor target = ts::Tensor::Full({4}, 2.0f);
  ag::Variable w1(ts::Tensor::Zeros({4}), true);
  Sgd plain({w1}, 0.05f);
  Minimize(plain, w1, target, 30);

  ag::Variable w2(ts::Tensor::Zeros({4}), true);
  Sgd momentum({w2}, 0.05f, /*momentum=*/0.9f);
  Minimize(momentum, w2, target, 30);

  const float err1 = ts::MeanAll(ts::Abs(ts::Sub(w1.value(), target)));
  const float err2 = ts::MeanAll(ts::Abs(ts::Sub(w2.value(), target)));
  EXPECT_LT(err2, err1);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::Variable w(ts::Tensor::Zeros({3}), true);
  ts::Tensor target = ts::Tensor::FromVector({3}, {4, -4, 0.25f});
  Adam opt({w}, /*lr=*/0.2f);
  ts::Tensor result = Minimize(opt, w, target, 200);
  EXPECT_TRUE(ts::AllClose(result, target, 1e-2f, 1e-2f));
}

TEST(AdamTest, WeightDecayShrinksSolution) {
  ts::Tensor target = ts::Tensor::Full({2}, 10.0f);
  ag::Variable w1(ts::Tensor::Zeros({2}), true);
  Adam plain({w1}, 0.3f);
  Minimize(plain, w1, target, 300);
  ag::Variable w2(ts::Tensor::Zeros({2}), true);
  Adam decayed({w2}, 0.3f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  Minimize(decayed, w2, target, 300);
  EXPECT_LT(ts::MeanAll(w2.value()), ts::MeanAll(w1.value()));
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  ag::Variable used(ts::Tensor::Zeros({2}), true);
  ag::Variable unused(ts::Tensor::Full({2}, 7.0f), true);
  Adam opt({used, unused}, 0.1f);
  ag::Variable loss = ag::MseLoss(used, ts::Tensor::Ones({2}));
  loss.Backward();
  opt.Step();
  EXPECT_TRUE(ts::AllClose(unused.value(), ts::Tensor::Full({2}, 7.0f)));
  EXPECT_GT(used.value().flat(0), 0.0f);
}

TEST(OptimizerTest, ClipGradNorm) {
  ag::Variable w(ts::Tensor::Zeros({4}), true);
  Sgd opt({w}, 0.1f);
  // Gradient of sum(100*w) is 100 per element -> norm 200.
  ag::Variable loss = ag::SumAll(ag::MulScalar(w, 100.0f));
  loss.Backward();
  const float norm = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 200.0f, 1e-2);
  // Post-clip norm is 1.
  double post = 0;
  for (int64_t i = 0; i < 4; ++i) {
    post += w.grad().flat(i) * w.grad().flat(i);
  }
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

TEST(StepLrSchedulerTest, DecaysOnSchedule) {
  ag::Variable w(ts::Tensor::Zeros({1}), true);
  Sgd opt({w}, 1.0f);
  StepLrScheduler sched(&opt, /*step_size=*/2, /*gamma=*/0.1f);
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  sched.Step();
  EXPECT_FLOAT_EQ(opt.lr(), 0.1f);
  sched.Step();
  sched.Step();
  EXPECT_NEAR(opt.lr(), 0.01f, 1e-6);
}

TEST(EarlyStoppingTest, StopsAfterPatience) {
  EarlyStopping stopper(/*patience=*/2);
  EXPECT_FALSE(stopper.Update(1.0f));
  EXPECT_FALSE(stopper.Update(0.5f));  // improvement
  EXPECT_FALSE(stopper.Update(0.6f));  // bad 1
  EXPECT_TRUE(stopper.Update(0.7f));   // bad 2 -> stop
  EXPECT_TRUE(stopper.should_stop());
  EXPECT_FLOAT_EQ(stopper.best(), 0.5f);
}

TEST(EarlyStoppingTest, ImprovementResetsCounter) {
  EarlyStopping stopper(2);
  stopper.Update(1.0f);
  stopper.Update(1.1f);   // bad 1
  stopper.Update(0.9f);   // improvement resets
  stopper.Update(1.0f);   // bad 1
  EXPECT_FALSE(stopper.should_stop());
}

}  // namespace
}  // namespace geotorch::optim
