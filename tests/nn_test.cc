#include "nn/layers.h"

#include <gtest/gtest.h>

#include "nn/init.h"
#include "tensor/ops.h"
#include "tests/gradcheck.h"

namespace geotorch::nn {
namespace {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

TEST(ModuleTest, ParameterRegistration) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // weight + bias
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
  auto named = layer.NamedParameters();
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, ChildModulesAggregate) {
  Rng rng(2);
  Sequential seq;
  seq.Emplace<Linear>(4, 8, rng).Emplace<ReluLayer>().Emplace<Linear>(8, 2,
                                                                      rng);
  EXPECT_EQ(seq.Parameters().size(), 4u);
  auto named = seq.NamedParameters();
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[2].first, "layer2.weight");
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(3);
  Sequential seq;
  seq.Emplace<Linear>(2, 2, rng).Emplace<Dropout>(0.5f);
  seq.SetTraining(false);
  EXPECT_FALSE(seq.training());
  // Dropout in eval mode is identity.
  ag::Variable x(ts::Tensor::Ones({4, 2}));
  ag::Variable y1 = seq.Forward(x);
  ag::Variable y2 = seq.Forward(x);
  EXPECT_TRUE(ts::AllClose(y1.value(), y2.value()));
}

TEST(InitTest, KaimingBounds) {
  Rng rng(4);
  ts::Tensor w = KaimingUniform({100, 100}, 100, rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  EXPECT_LE(ts::MaxAll(w), bound);
  EXPECT_GE(ts::MinAll(w), -bound);
  EXPECT_NEAR(ts::MeanAll(w), 0.0f, 0.02f);
}

TEST(InitTest, ConvFanIn) {
  EXPECT_EQ(ConvFanIn({16, 3, 5, 5}), 75);
  EXPECT_EQ(ConvFanIn({10, 20}), 20);
}

TEST(LinearTest, ForwardShapeAndValue) {
  Rng rng(5);
  Linear layer(3, 2, rng);
  ag::Variable x(ts::Tensor::Ones({4, 3}));
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (ts::Shape{4, 2}));
  // All rows identical for identical inputs.
  EXPECT_EQ(y.value().at({0, 0}), y.value().at({3, 0}));
}

TEST(Conv2dTest, ShapesWithStridePadding) {
  Rng rng(6);
  Conv2d same(3, 8, 3, rng, 1, 1);
  ag::Variable x(ts::Tensor::Ones({2, 3, 10, 10}));
  EXPECT_EQ(same.Forward(x).shape(), (ts::Shape{2, 8, 10, 10}));

  Conv2d down(3, 8, 3, rng, 2, 1);
  EXPECT_EQ(down.Forward(x).shape(), (ts::Shape{2, 8, 5, 5}));
}

TEST(ConvTranspose2dTest, UpsamplesByStride) {
  Rng rng(7);
  ConvTranspose2d up(4, 2, 2, rng, 2, 0);
  ag::Variable x(ts::Tensor::Ones({1, 4, 5, 5}));
  EXPECT_EQ(up.Forward(x).shape(), (ts::Shape{1, 2, 10, 10}));
}

TEST(BatchNormTest, NormalizesTrainingBatch) {
  BatchNorm2d bn(3);
  Rng rng(8);
  ag::Variable x(ts::Tensor::Randn({8, 3, 4, 4}, rng, 5.0f, 2.0f));
  bn.SetTraining(true);
  ag::Variable y = bn.Forward(x);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  ts::Tensor m =
      ts::Mean(ts::Mean(ts::Mean(y.value(), 0, true), 2, true), 3, true);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(m.flat(c), 0.0f, 1e-4);
  }
  ts::Tensor sq = ts::Mul(y.value(), y.value());
  ts::Tensor v =
      ts::Mean(ts::Mean(ts::Mean(sq, 0, true), 2, true), 3, true);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(v.flat(c), 1.0f, 0.05f);
  }
}

TEST(BatchNormTest, RunningStatsConvergeAndEvalUsesThem) {
  BatchNorm2d bn(1);
  Rng rng(9);
  bn.SetTraining(true);
  for (int i = 0; i < 60; ++i) {
    ag::Variable x(ts::Tensor::Randn({16, 1, 2, 2}, rng, 3.0f, 1.0f));
    bn.Forward(x);
  }
  EXPECT_NEAR(bn.running_mean().flat(0), 3.0f, 0.3f);
  EXPECT_NEAR(bn.running_var().flat(0), 1.0f, 0.3f);

  bn.SetTraining(false);
  // A constant eval input normalizes against the running stats.
  ag::Variable x(ts::Tensor::Full({2, 1, 2, 2}, 3.0f));
  ag::Variable y = bn.Forward(x);
  EXPECT_NEAR(y.value().flat(0), 0.0f, 0.3f);
}

TEST(BatchNormTest, GradientFlowsThroughTraining) {
  using ::geotorch::testing::GradCheck;
  Rng rng(10);
  ts::Tensor x = ts::Tensor::Randn({4, 2, 3, 3}, rng);
  BatchNorm2d bn(2);
  bn.SetTraining(true);
  const double err = GradCheck(
      [&bn](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(ag::Mul(bn.Forward(v[0]), bn.Forward(v[0])));
      },
      {x}, 1e-3);
  EXPECT_LT(err, 5e-2);
}

TEST(ConvLstmCellTest, StateShapesAndEvolution) {
  Rng rng(11);
  ConvLstmCell cell(2, 4, 3, rng);
  auto state = cell.InitialState(3, 8, 8);
  EXPECT_EQ(state.h.shape(), (ts::Shape{3, 4, 8, 8}));
  EXPECT_EQ(ts::SumAll(state.h.value()), 0.0f);

  ag::Variable x(ts::Tensor::Randn({3, 2, 8, 8}, rng));
  auto next = cell.Step(x, state);
  EXPECT_EQ(next.h.shape(), (ts::Shape{3, 4, 8, 8}));
  EXPECT_NE(ts::SumAll(next.h.value()), 0.0f);
  // Hidden state is bounded by tanh.
  EXPECT_LE(ts::MaxAll(next.h.value()), 1.0f);
  EXPECT_GE(ts::MinAll(next.h.value()), -1.0f);
}

TEST(ConvLstmCellTest, BackpropThroughTime) {
  Rng rng(12);
  ConvLstmCell cell(1, 2, 3, rng);
  ag::Variable x(ts::Tensor::Randn({1, 1, 4, 4}, rng), true);
  auto state = cell.InitialState(1, 4, 4);
  for (int t = 0; t < 3; ++t) state = cell.Step(x, state);
  ag::Variable loss = ag::MeanAll(ag::Mul(state.h, state.h));
  loss.Backward();
  EXPECT_TRUE(x.has_grad());
  // Every cell parameter received a gradient.
  for (auto& p : cell.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(SequentialTest, RunsLayersInOrder) {
  Rng rng(13);
  Sequential seq;
  seq.Emplace<Conv2d>(1, 2, 3, rng, 1, 1)
      .Emplace<ReluLayer>()
      .Emplace<MaxPool2d>(2)
      .Emplace<Flatten>();
  ag::Variable x(ts::Tensor::Ones({2, 1, 8, 8}));
  ag::Variable y = seq.Forward(x);
  EXPECT_EQ(y.shape(), (ts::Shape{2, 2 * 4 * 4}));
  EXPECT_GE(ts::MinAll(y.value()), 0.0f);  // post-ReLU
}

}  // namespace
}  // namespace geotorch::nn
