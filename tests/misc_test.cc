// Coverage of smaller API surfaces: Status macros, RowView access,
// scoped allocations, ConvTranspose shape math, DfToTorch without
// labels, and assorted edge cases.

#include <gtest/gtest.h>

#include "core/memory.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "df/dataframe.h"
#include "nn/layers.h"
#include "prep/df_to_torch.h"
#include "tensor/conv.h"
#include "tensor/ops.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;
namespace ag = ::geotorch::autograd;

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  GEO_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ScopedAllocationTest, ReleasesOnScopeExit) {
  MemoryTracker tracker;
  {
    ScopedAllocation a(&tracker, 1000);
    EXPECT_EQ(tracker.current_bytes(), 1000);
    {
      ScopedAllocation b(&tracker, 500);
      EXPECT_EQ(tracker.current_bytes(), 1500);
    }
    EXPECT_EQ(tracker.current_bytes(), 1000);
  }
  EXPECT_EQ(tracker.current_bytes(), 0);
  EXPECT_EQ(tracker.peak_bytes(), 1500);
}

TEST(ThreadPoolTest, ParallelForRangeCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelForRange(64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i] += 1;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RowViewTest, TypedAccessors) {
  df::DataFrame frame = df::DataFrame::FromColumns(
      {{"d", df::Column::FromDoubles({1.5})},
       {"i", df::Column::FromInt64s({7})},
       {"s", df::Column::FromStrings({"hi"})},
       {"p", df::Column::FromPoints({{2.0, 3.0}})}});
  df::RowView row(&frame.partition(0), &frame.schema(), 0);
  EXPECT_EQ(row.GetDouble(0), 1.5);
  EXPECT_EQ(row.GetInt64(1), 7);
  EXPECT_EQ(row.GetString(2), "hi");
  EXPECT_EQ(row.GetPoint(3).y, 3.0);
  EXPECT_EQ(row.ColumnIndex("s"), 2);
  EXPECT_EQ(std::get<int64_t>(row.Get(1)), 7);
}

TEST(DataFrameTest, ByteSizeTracksColumns) {
  df::DataFrame frame = df::DataFrame::FromColumns(
      {{"x", df::Column::FromInt64s(std::vector<int64_t>(1000, 1))}});
  EXPECT_GE(frame.ByteSize(), 8000);
  // Select shares the column: same bytes, no growth in the tracker.
  const int64_t before = MemoryTracker::Global().current_bytes();
  df::DataFrame view = frame.Select({"x"});
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), before);
  EXPECT_EQ(view.ByteSize(), frame.ByteSize());
}

TEST(ConvShapeTest, ConvOutSizeFormula) {
  EXPECT_EQ(ts::ConvOutSize(32, 3, 1, 1), 32);
  EXPECT_EQ(ts::ConvOutSize(32, 3, 2, 1), 16);
  EXPECT_EQ(ts::ConvOutSize(28, 5, 1, 0), 24);
  EXPECT_EQ(ts::ConvOutSize(7, 7, 1, 0), 1);
}

TEST(ConvTransposeShapeTest, InvertsStridedConv) {
  // convT output dims: (in-1)*s - 2p + k.
  Rng rng(1);
  ts::Tensor x = ts::Tensor::Randn({1, 2, 5, 5}, rng);
  ts::Tensor w = ts::Tensor::Randn({2, 3, 4, 4}, rng);
  ts::ConvSpec spec{.stride = 2, .padding = 1};
  ts::Tensor y = ts::ConvTranspose2dForward(x, w, ts::Tensor(), spec);
  EXPECT_EQ(y.shape(), (ts::Shape{1, 3, 10, 10}));
}

TEST(NnModulesTest, FlattenAndUpsample) {
  nn::Flatten flatten;
  ag::Variable x(ts::Tensor::Ones({3, 2, 4, 4}));
  EXPECT_EQ(flatten.Forward(x).shape(), (ts::Shape{3, 32}));

  nn::Upsample2x up;
  EXPECT_EQ(up.Forward(x).shape(), (ts::Shape{3, 2, 8, 8}));
}

TEST(TensorEdgeTest, ScalarAndEmpty) {
  ts::Tensor s = ts::Tensor::Scalar(3.0f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.flat(0), 3.0f);

  ts::Tensor empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.numel(), 0);
}

TEST(TensorEdgeTest, ToStringTruncates) {
  ts::Tensor t = ts::Tensor::Arange(100);
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("(100)"), std::string::npos);
}

TEST(OpsEdgeTest, MapAppliesFunction) {
  ts::Tensor t = ts::Tensor::Arange(4);
  ts::Tensor doubled = ts::Map(t, [](float v) { return v * 2; });
  EXPECT_EQ(doubled.flat(3), 6.0f);
}

TEST(OpsEdgeTest, ConcatSingleTensor) {
  ts::Tensor t = ts::Tensor::Arange(4).Reshape({2, 2});
  EXPECT_TRUE(ts::AllClose(ts::Concat({t}, 0), t));
}

TEST(OpsEdgeTest, SliceFullRangeIsIdentity) {
  ts::Tensor t = ts::Tensor::Arange(6).Reshape({2, 3});
  EXPECT_TRUE(ts::AllClose(ts::Slice(t, 1, 0, 3), t));
  ts::Tensor empty_slice = ts::Slice(t, 0, 1, 1);
  EXPECT_EQ(empty_slice.numel(), 0);
}

TEST(DfToTorchTest, NoLabelColumnYieldsZeros) {
  df::DataFrame frame = df::DataFrame::FromColumns(
      {{"a", df::Column::FromDoubles({1, 2, 3})}});
  prep::DfToTorch::Options options;
  options.feature_columns = {"a"};
  prep::DfToTorch converter(frame, options);
  ts::Tensor x;
  ts::Tensor y;
  ASSERT_TRUE(converter.NextBatch(&x, &y));
  EXPECT_EQ(ts::SumAll(y), 0.0f);
  EXPECT_EQ(y.numel(), 3);
}

TEST(AutogradEdgeTest, BackwardTwiceAccumulates) {
  ag::Variable a(ts::Tensor::Ones({2}), true);
  ag::Variable loss = ag::SumAll(ag::MulScalar(a, 2.0f));
  loss.Backward();
  EXPECT_TRUE(ts::AllClose(a.grad(), ts::Tensor::Full({2}, 2.0f)));
  // ZeroGrad then reuse the leaf in a fresh graph.
  a.ZeroGrad();
  ag::Variable loss2 = ag::SumAll(ag::MulScalar(a, 3.0f));
  loss2.Backward();
  EXPECT_TRUE(ts::AllClose(a.grad(), ts::Tensor::Full({2}, 3.0f)));
}

TEST(AutogradEdgeTest, DetachedBranchGetsNoGrad) {
  ag::Variable a(ts::Tensor::Ones({2}), true);
  ag::Variable b(ts::Tensor::Ones({2}), false);  // no grad wanted
  ag::Variable loss = ag::SumAll(ag::Mul(a, b));
  loss.Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_FALSE(b.has_grad());
}

}  // namespace
}  // namespace geotorch
