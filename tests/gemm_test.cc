// Correctness of the blocked, packed GEMM kernel against the reference
// triple loop: randomized shapes (including degenerate k=1/m=1/n=1 and
// non-multiples of the register tile), transposed operands, beta
// accumulation, and serial/parallel device dispatch.

#include "tensor/gemm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/device.h"

namespace geotorch::tensor {
namespace {

using ::geotorch::Rng;
using ::geotorch::tensor::gemm_internal::kMR;
using ::geotorch::tensor::gemm_internal::kNR;

void FillRandom(std::vector<float>& v, Rng& rng) {
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
}

// Runs Gemm and ReferenceGemm on identical inputs and compares. The
// tolerance scales with sqrt(k): the blocked kernel reassociates the
// reduction (and may contract to FMA), so results are close but not
// bitwise equal to the naive loop.
void ExpectMatchesReference(int64_t m, int64_t k, int64_t n, float beta,
                            bool trans_a, bool trans_b, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  FillRandom(a, rng);
  FillRandom(b, rng);
  std::vector<float> c_blocked(m * n);
  FillRandom(c_blocked, rng);
  std::vector<float> c_ref = c_blocked;

  const GemmOptions opts{beta, trans_a, trans_b, true};
  Gemm(a.data(), b.data(), c_blocked.data(), m, k, n, opts);
  ReferenceGemm(a.data(), b.data(), c_ref.data(), m, k, n, opts);

  const double tol = 1e-4 * std::sqrt(static_cast<double>(k) + 1.0);
  for (int64_t i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c_blocked[i], c_ref[i], tol)
        << "i=" << i << " m=" << m << " k=" << k << " n=" << n
        << " beta=" << beta << " ta=" << trans_a << " tb=" << trans_b;
  }
}

TEST(GemmTest, RandomizedShapesAgainstReference) {
  // Mix of tile multiples, off-by-one sizes, and degenerate dims. Large
  // enough shapes cross the blocked-path cutoff.
  const int64_t dims[] = {1, 2, 3, kMR, kMR + 1, kNR, kNR + 1, 31, 64, 97};
  uint64_t seed = 1;
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : dims) {
        ExpectMatchesReference(m, k, n, 0.0f, false, false, seed++);
      }
    }
  }
}

TEST(GemmTest, DegenerateDimsOnBlockedPath) {
  // Force m*n*k past the small-size cutoff with one degenerate dim so
  // the packed kernel (not the reference fallback) handles k=1 / m=1 /
  // n=1.
  ExpectMatchesReference(256, 1, 256, 0.0f, false, false, 101);
  ExpectMatchesReference(1, 300, 200, 0.0f, false, false, 102);
  ExpectMatchesReference(200, 300, 1, 0.0f, false, false, 103);
}

TEST(GemmTest, BetaAccumulate) {
  for (float beta : {0.0f, 1.0f, 0.5f}) {
    ExpectMatchesReference(67, 130, 75, beta, false, false, 200);
    ExpectMatchesReference(128, 128, 128, beta, false, false, 201);
  }
}

TEST(GemmTest, TransposedOperands) {
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      ExpectMatchesReference(66, 129, 80, 0.0f, ta, tb, 300);
      ExpectMatchesReference(97, 55, 97, 1.0f, ta, tb, 301);
    }
  }
}

TEST(GemmTest, MultipleKBlocks) {
  // k spans several KC blocks, exercising the first-block beta handling
  // and the accumulate path across K panels.
  ExpectMatchesReference(64, 3 * gemm_internal::kKC + 17, 64, 0.5f, false,
                         false, 400);
}

TEST(GemmTest, SerialAndParallelDevicesAgreeExactly) {
  Rng rng(7);
  const int64_t m = 192;
  const int64_t k = 160;
  const int64_t n = 1030;  // several NC tiles plus an edge
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  FillRandom(a, rng);
  FillRandom(b, rng);
  std::vector<float> c_serial(m * n, 0.0f);
  std::vector<float> c_parallel(m * n, 0.0f);
  {
    DeviceGuard guard(Device::kSerial);
    Gemm(a.data(), b.data(), c_serial.data(), m, k, n);
  }
  {
    DeviceGuard guard(Device::kParallel);
    Gemm(a.data(), b.data(), c_parallel.data(), m, k, n);
  }
  // The K-accumulation order is device-independent, so the parallel
  // tiling must reproduce the serial result bit for bit.
  for (int64_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(c_serial[i], c_parallel[i]) << "i=" << i;
  }
}

TEST(GemmTest, ZeroKScalesC) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(nullptr, nullptr, c.data(), 2, 0, 2, {.beta = 0.5f});
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
  Gemm(nullptr, nullptr, c.data(), 2, 0, 2, {.beta = 0.0f});
  for (float v : c) EXPECT_FLOAT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace geotorch::tensor
