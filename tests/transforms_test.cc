#include "transforms/transforms.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/ops.h"

namespace geotorch::transforms {
namespace {

namespace ts = ::geotorch::tensor;

ts::Tensor SampleImage() {
  // 2 bands of 2x2.
  return ts::Tensor::FromVector({2, 2, 2}, {3, 1, 2, 4,    // band 0
                                            1, 1, 2, 0});  // band 1
}

TEST(TransformsTest, AppendNdi) {
  ts::Tensor out = AppendNormalizedDifferenceIndex(0, 1)(SampleImage());
  EXPECT_EQ(out.shape(), (ts::Shape{3, 2, 2}));
  EXPECT_NEAR(out.at({2, 0, 0}), 0.5f, 1e-6);   // (3-1)/4
  EXPECT_NEAR(out.at({2, 0, 1}), 0.0f, 1e-6);   // (1-1)/2
  EXPECT_NEAR(out.at({2, 1, 1}), 1.0f, 1e-6);   // (4-0)/4
  // Original bands untouched.
  EXPECT_EQ(out.at({0, 0, 0}), 3.0f);
}

TEST(TransformsTest, NormalizePerChannel) {
  Transform t = Normalize({2.0f, 1.0f}, {2.0f, 0.5f});
  ts::Tensor out = t(SampleImage());
  EXPECT_NEAR(out.at({0, 0, 0}), 0.5f, 1e-6);   // (3-2)/2
  EXPECT_NEAR(out.at({1, 0, 0}), 0.0f, 1e-6);   // (1-1)/0.5
  EXPECT_NEAR(out.at({1, 1, 0}), 2.0f, 1e-6);   // (2-1)/0.5
}

TEST(TransformsTest, MinMaxScale) {
  ts::Tensor out = MinMaxScale(0.0f, 1.0f)(SampleImage());
  EXPECT_EQ(ts::MinAll(out), 0.0f);
  EXPECT_EQ(ts::MaxAll(out), 1.0f);
  ts::Tensor constant = ts::Tensor::Full({1, 2, 2}, 9.0f);
  ts::Tensor flat = MinMaxScale(0.0f, 1.0f)(constant);
  EXPECT_EQ(ts::MaxAll(flat), 0.0f);
}

TEST(TransformsTest, SelectBands) {
  ts::Tensor out = SelectBands({1})(SampleImage());
  EXPECT_EQ(out.shape(), (ts::Shape{1, 2, 2}));
  EXPECT_EQ(out.at({0, 1, 0}), 2.0f);
  ts::Tensor swapped = SelectBands({1, 0})(SampleImage());
  EXPECT_EQ(swapped.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(swapped.at({1, 0, 0}), 3.0f);
}

TEST(TransformsTest, ComposeChains) {
  Transform t = Compose({AppendNormalizedDifferenceIndex(0, 1),
                         SelectBands({2})});
  ts::Tensor out = t(SampleImage());
  EXPECT_EQ(out.shape(), (ts::Shape{1, 2, 2}));
  EXPECT_NEAR(out.at({0, 0, 0}), 0.5f, 1e-6);
}

TEST(TransformsTest, RandomFlipAlwaysAndNever) {
  ts::Tensor img = SampleImage();
  ts::Tensor never = RandomHorizontalFlip(0.0f)(img);
  EXPECT_TRUE(ts::AllClose(never, img));
  ts::Tensor always = RandomHorizontalFlip(1.0f)(img);
  EXPECT_EQ(always.at({0, 0, 0}), img.at({0, 0, 1}));
  EXPECT_EQ(always.at({0, 0, 1}), img.at({0, 0, 0}));
  // Double flip is identity.
  EXPECT_TRUE(ts::AllClose(RandomHorizontalFlip(1.0f)(always), img));
}

TEST(TransformsTest, GaussianNoisePerturbsDeterministically) {
  ts::Tensor img = ts::Tensor::Zeros({1, 8, 8});
  ts::Tensor a = GaussianNoise(0.1f, 3)(img);
  ts::Tensor b = GaussianNoise(0.1f, 3)(img);
  EXPECT_TRUE(ts::AllClose(a, b));
  EXPECT_GT(ts::MaxAll(ts::Abs(a)), 0.0f);
  EXPECT_NEAR(ts::MeanAll(a), 0.0f, 0.05f);
}

}  // namespace
}  // namespace geotorch::transforms
