// The dynamically-batched serving engine: concurrent submits must come
// back with exactly their own output row (bitwise equal to a direct
// single-sample forward), the bounded queue must reject — not block —
// when full, and shutdown must drain everything already accepted.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "models/grid_models.h"
#include "nn/precision.h"
#include "serve/adapters.h"
#include "serve/config.h"
#include "serve/engine.h"
#include "tensor/device.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;
namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace models = ::geotorch::models;
namespace nn = ::geotorch::nn;
namespace serve = ::geotorch::serve;

std::vector<uint32_t> Bits(const ts::Tensor& t) {
  std::vector<uint32_t> bits(t.numel());
  if (t.numel() > 0) {
    std::memcpy(bits.data(), t.data(), t.numel() * sizeof(uint32_t));
  }
  return bits;
}

serve::EngineOptions FastOptions() {
  serve::EngineOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 100;
  opts.max_queue = 64;
  opts.warmup_batches = 1;
  return opts;
}

// --- EngineOptions::FromEnv -------------------------------------------------

struct EnvVarGuard {
  explicit EnvVarGuard(std::vector<const char*> names)
      : names_(std::move(names)) {}
  ~EnvVarGuard() {
    for (const char* n : names_) unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST(EngineOptionsTest, FromEnvDefaultsWhenUnset) {
  EnvVarGuard guard({"GEOTORCH_SERVE_MAX_BATCH", "GEOTORCH_SERVE_MAX_DELAY_US",
                     "GEOTORCH_SERVE_MAX_QUEUE", "GEOTORCH_SERVE_WARMUP"});
  const serve::EngineOptions opts = serve::EngineOptions::FromEnv();
  const serve::EngineOptions defaults;
  EXPECT_EQ(opts.max_batch, defaults.max_batch);
  EXPECT_EQ(opts.max_delay_us, defaults.max_delay_us);
  EXPECT_EQ(opts.max_queue, defaults.max_queue);
  EXPECT_EQ(opts.warmup_batches, defaults.warmup_batches);
}

TEST(EngineOptionsTest, FromEnvParsesAndClamps) {
  EnvVarGuard guard({"GEOTORCH_SERVE_MAX_BATCH", "GEOTORCH_SERVE_MAX_DELAY_US",
                     "GEOTORCH_SERVE_MAX_QUEUE", "GEOTORCH_SERVE_WARMUP"});
  setenv("GEOTORCH_SERVE_MAX_BATCH", "32", 1);
  setenv("GEOTORCH_SERVE_MAX_DELAY_US", "1500", 1);
  setenv("GEOTORCH_SERVE_MAX_QUEUE", "0", 1);     // clamped to 1
  setenv("GEOTORCH_SERVE_WARMUP", "bogus", 1);    // unparsable -> default
  const serve::EngineOptions opts = serve::EngineOptions::FromEnv();
  EXPECT_EQ(opts.max_batch, 32);
  EXPECT_EQ(opts.max_delay_us, 1500);
  EXPECT_EQ(opts.max_queue, 1);
  EXPECT_EQ(opts.warmup_batches, serve::EngineOptions{}.warmup_batches);
}

TEST(EngineOptionsTest, FromEnvParsesPrecision) {
  EnvVarGuard guard({"GEOTORCH_SERVE_PRECISION"});
  unsetenv("GEOTORCH_SERVE_PRECISION");
  EXPECT_EQ(serve::EngineOptions::FromEnv().precision, nn::Precision::kF32);
  setenv("GEOTORCH_SERVE_PRECISION", "bf16", 1);
  EXPECT_EQ(serve::EngineOptions::FromEnv().precision, nn::Precision::kBf16);
  setenv("GEOTORCH_SERVE_PRECISION", "int8", 1);
  EXPECT_EQ(serve::EngineOptions::FromEnv().precision, nn::Precision::kInt8);
  setenv("GEOTORCH_SERVE_PRECISION", "float32", 1);
  EXPECT_EQ(serve::EngineOptions::FromEnv().precision, nn::Precision::kF32);
  setenv("GEOTORCH_SERVE_PRECISION", "fp7", 1);  // unknown -> keep default
  EXPECT_EQ(serve::EngineOptions::FromEnv().precision, nn::Precision::kF32);
}

// --- Echo engine: scatter correctness under concurrency ---------------------

TEST(EngineTest, ConcurrentSubmitsGetTheirOwnRows) {
  // Identity forward: output row i == input row i, so every client can
  // verify it got exactly its own sample back even when coalesced.
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{4}, {}}, FastOptions());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&engine, &mismatches, t] {
      for (int i = 0; i < kPerThread; ++i) {
        data::Sample s;
        s.x = ts::Tensor::Full({4}, static_cast<float>(t * 1000 + i));
        auto out = engine.Submit(s);
        if (!out.ok() || Bits(*out) != Bits(s.x)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches, (kThreads * kPerThread + 3) / 4);
}

TEST(EngineTest, SingleClientBatchedKeepsBatchOneThroughput) {
  // Regression test for the batcher's singleton skip: a lone
  // sequential client submits only after the previous reply, so it
  // never coalesces, and a batched engine must not charge it the
  // fill-wait quiet window on every request. Compare wall time against
  // an identical engine at max_batch = 1 (which never waits). Without
  // the skip, the batched run pays ~kRequests quiet windows (1.25 ms
  // each here, ~50 ms total) — an order of magnitude past the bound.
  constexpr int kRequests = 40;
  auto run_us = [](int max_batch) {
    serve::EngineOptions opts;
    opts.max_batch = max_batch;
    opts.max_delay_us = 20000;  // quiet window = 1.25 ms
    opts.max_queue = 64;
    opts.warmup_batches = 1;
    serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                         serve::SampleSpec{{4}, {}}, opts);
    data::Sample s;
    s.x = ts::Tensor::Full({4}, 1.0f);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequests; ++i) {
      auto out = engine.Submit(s);
      EXPECT_TRUE(out.ok());
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const int64_t batched_us = run_us(/*max_batch=*/16);
  const int64_t unbatched_us = run_us(/*max_batch=*/1);
  EXPECT_LE(batched_us, 3 * unbatched_us + 5000)
      << "batched " << batched_us << " us vs batch-1 " << unbatched_us
      << " us";
}

TEST(EngineTest, ScalarOutputRowsComeBackAsSingletons) {
  // Forward returning shape (B): each caller gets a {1} tensor.
  serve::Engine engine(
      [](const data::Batch& batch) {
        ts::Tensor out = ts::Tensor::Uninitialized({batch.size});
        for (int64_t i = 0; i < batch.size; ++i) {
          out.data()[i] = batch.x.data()[i * 3];  // first element of row i
        }
        return out;
      },
      serve::SampleSpec{{3}, {}}, FastOptions());
  data::Sample s;
  s.x = ts::Tensor::Full({3}, 7.5f);
  auto out = engine.Submit(s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), ts::Shape({1}));
  EXPECT_EQ(out->data()[0], 7.5f);
}

// --- Validation -------------------------------------------------------------

TEST(EngineTest, RejectsShapeMismatches) {
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{4}, {{2}}}, FastOptions());
  data::Sample bad_x;
  bad_x.x = ts::Tensor::Zeros({5});
  bad_x.extras.push_back(ts::Tensor::Zeros({2}));
  auto r1 = engine.Submit(bad_x);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), geotorch::StatusCode::kInvalidArgument);

  data::Sample missing_extra;
  missing_extra.x = ts::Tensor::Zeros({4});
  auto r2 = engine.Submit(missing_extra);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), geotorch::StatusCode::kInvalidArgument);

  data::Sample bad_extra;
  bad_extra.x = ts::Tensor::Zeros({4});
  bad_extra.extras.push_back(ts::Tensor::Zeros({3}));
  auto r3 = engine.Submit(bad_extra);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), geotorch::StatusCode::kInvalidArgument);
}

TEST(EngineTest, SubmitAfterShutdownFails) {
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{2}, {}}, FastOptions());
  engine.Shutdown();
  engine.Shutdown();  // idempotent
  data::Sample s;
  s.x = ts::Tensor::Zeros({2});
  auto r = engine.Submit(s);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geotorch::StatusCode::kInvalidArgument);
}

// --- Backpressure and drain -------------------------------------------------

// A forward that blocks until the test opens a gate, so the queue can
// be filled deterministically while the batcher is stuck mid-batch.
class GatedForward {
 public:
  ts::Tensor operator()(const data::Batch& batch) {
    in_forward_.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
    return batch.x;
  }
  void WaitUntilInForward(int n) {
    while (in_forward_.load() < n) std::this_thread::yield();
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<int> in_forward_{0};
};

TEST(EngineTest, FullQueueRejectsWithBackpressure) {
  auto gate = std::make_shared<GatedForward>();
  serve::EngineOptions opts;
  opts.max_batch = 1;
  opts.max_delay_us = 0;
  opts.max_queue = 2;
  opts.warmup_batches = 0;  // warmup would block on the gate
  serve::Engine engine(
      [gate](const data::Batch& batch) { return (*gate)(batch); },
      serve::SampleSpec{{2}, {}}, opts);

  data::Sample s;
  s.x = ts::Tensor::Full({2}, 1.0f);

  // First submit: picked up by the batcher, which blocks in forward.
  std::thread first([&engine, s] {
    auto r = engine.Submit(s);
    EXPECT_TRUE(r.ok());
  });
  gate->WaitUntilInForward(1);

  // Fill the queue behind the stuck batch.
  std::vector<std::thread> queued;
  for (int i = 0; i < 2; ++i) {
    queued.emplace_back([&engine, s] {
      auto r = engine.Submit(s);
      EXPECT_TRUE(r.ok());
    });
  }
  while (engine.stats().requests < 3) std::this_thread::yield();

  // Queue is full now: the next submit must be rejected, not block.
  auto rejected = engine.Submit(s);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), geotorch::StatusCode::kOutOfRange);
  EXPECT_EQ(engine.stats().rejected, 1);

  gate->Open();
  first.join();
  for (auto& t : queued) t.join();
  EXPECT_EQ(engine.stats().requests, 3);
}

TEST(EngineTest, DeadlineExpiresBehindStalledBatcherThenDrains) {
  auto gate = std::make_shared<GatedForward>();
  serve::EngineOptions opts;
  opts.max_batch = 1;
  opts.max_delay_us = 0;
  opts.max_queue = 16;
  opts.warmup_batches = 0;
  serve::Engine engine(
      [gate](const data::Batch& batch) { return (*gate)(batch); },
      serve::SampleSpec{{2}, {}}, opts);

  data::Sample s;
  s.x = ts::Tensor::Full({2}, 4.0f);

  // First request occupies the batcher, which blocks at the gate.
  std::thread first([&engine, s] {
    auto r = engine.Submit(s);
    EXPECT_TRUE(r.ok());
  });
  gate->WaitUntilInForward(1);

  // Queued behind a stalled batcher with a tight deadline: the caller
  // must get DeadlineExceeded instead of blocking forever.
  auto expired = engine.Submit(s, /*deadline_us=*/2000);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(),
            geotorch::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.stats().deadline_exceeded, 1);
  // The request was ADMITTED — it still counts and still gets served
  // in the background once the batcher unsticks.
  EXPECT_EQ(engine.stats().requests, 2);

  gate->Open();
  first.join();
  engine.Drain();  // covers the abandoned request too
  EXPECT_GE(engine.stats().batches, 2);

  // With the batcher healthy, a generous deadline never fires.
  auto prompt = engine.Submit(s, /*deadline_us=*/5'000'000);
  ASSERT_TRUE(prompt.ok());
  EXPECT_TRUE(Bits(*prompt) == Bits(s.x));
  EXPECT_EQ(engine.stats().deadline_exceeded, 1);
}

TEST(EngineTest, ShutdownDrainsAcceptedRequests) {
  auto gate = std::make_shared<GatedForward>();
  serve::EngineOptions opts;
  opts.max_batch = 2;
  opts.max_delay_us = 0;
  opts.max_queue = 16;
  opts.warmup_batches = 0;
  serve::Engine engine(
      [gate](const data::Batch& batch) { return (*gate)(batch); },
      serve::SampleSpec{{2}, {}}, opts);

  data::Sample s;
  s.x = ts::Tensor::Full({2}, 3.0f);

  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 5; ++i) {
    clients.emplace_back([&engine, &served, s] {
      auto r = engine.Submit(s);
      if (r.ok()) served.fetch_add(1);
    });
  }
  // Wait until all five are accepted (queued or mid-batch), then shut
  // down while the gate still blocks the batcher.
  while (engine.stats().requests < 5) std::this_thread::yield();
  std::thread closer([&engine] { engine.Shutdown(); });
  gate->Open();
  closer.join();
  for (auto& c : clients) c.join();
  // Every accepted request was served before the batcher exited.
  EXPECT_EQ(served.load(), 5);
}

TEST(EngineTest, DrainWaitsForInFlightAnswersNotJustAnEmptyQueue) {
  // Drain()'s contract is "answered, not dequeued": a request the
  // batcher has already pulled into a batch leaves the queue empty, but
  // its caller has not been answered yet. A drain that only watched the
  // queue would return here — and a fleet reload using it would retire
  // the model while the forward still runs on it. Pin the strong
  // semantics: Drain must block until the gated forward completes and
  // the promise is fulfilled.
  auto gate = std::make_shared<GatedForward>();
  serve::EngineOptions opts;
  opts.max_batch = 1;
  opts.max_delay_us = 0;
  opts.max_queue = 16;
  opts.warmup_batches = 0;
  serve::Engine engine(
      [gate](const data::Batch& batch) { return (*gate)(batch); },
      serve::SampleSpec{{2}, {}}, opts);

  data::Sample s;
  s.x = ts::Tensor::Full({2}, 1.0f);
  std::thread client([&engine, s] { EXPECT_TRUE(engine.Submit(s).ok()); });
  gate->WaitUntilInForward(1);
  ASSERT_EQ(engine.queue_depth(), 0);  // dequeued — but not answered

  std::atomic<bool> drained{false};
  std::thread drainer([&engine, &drained] {
    engine.Drain();
    drained.store(true, std::memory_order_release);
  });
  // Give the drainer ample time to (wrongly) return early.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(drained.load(std::memory_order_acquire));

  gate->Open();
  drainer.join();
  client.join();
  EXPECT_TRUE(drained.load());
  // The engine keeps serving after a drain — this is not a shutdown.
  EXPECT_TRUE(engine.Submit(s).ok());
}

TEST(EngineTest, DrainOnIdleEngineReturnsImmediately) {
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{2}, {}}, FastOptions());
  engine.Drain();  // nothing accepted, nothing to wait for
  data::Sample s;
  s.x = ts::Tensor::Full({2}, 2.0f);
  ASSERT_TRUE(engine.Submit(s).ok());
  engine.Drain();  // everything accepted so far is already answered
}

TEST(EngineTest, DrainRacingSubmitsNeitherDeadlocksNorStarves) {
  // Drain snapshots its target at entry: requests accepted AFTER the
  // Drain call starts are not waited for, so a steady stream of new
  // submits cannot starve a drainer. Hammer submits from several
  // threads while draining repeatedly from another.
  serve::Engine engine([](const data::Batch& batch) { return batch.x; },
                       serve::SampleSpec{{2}, {}}, FastOptions());
  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&engine, &stop, &served] {
      data::Sample s;
      s.x = ts::Tensor::Full({2}, 4.0f);
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.Submit(s).ok()) served.fetch_add(1);
      }
    });
  }
  // Keep draining until real traffic has flowed through the races.
  while (served.load(std::memory_order_relaxed) < 200) engine.Drain();
  stop.store(true);
  for (auto& c : clients) c.join();
  EXPECT_GT(served.load(), 0);
  engine.Drain();  // full quiesce: everything accepted is now answered
  EXPECT_EQ(engine.queue_depth(), 0);
}

// --- Against a real model ---------------------------------------------------

TEST(EngineTest, BatchedForwardMatchesDirectSingleSampleForward) {
  ts::DeviceGuard device(ts::Device::kParallel);

  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/200, /*height=*/8, /*width=*/8, /*seed=*/7);
  ds.MinMaxNormalize();
  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;
  ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                 mc.len_trend);
  models::PeriodicalCnn model(mc);

  serve::SampleSpec spec;
  {
    data::Sample probe = ds.Get(0);
    spec.x = probe.x.shape();
    for (const auto& e : probe.extras) spec.extras.push_back(e.shape());
  }

  serve::EngineOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 2000;  // encourage real coalescing
  opts.max_queue = 64;
  opts.warmup_batches = 1;
  serve::Engine engine(serve::GridForward(model), spec, opts);

  // Direct single-sample forwards as ground truth. The engine batches
  // requests together, so this also checks that a row of a size-B
  // forward is bitwise identical to the same sample at B=1 (the
  // blocked GEMM fixes its K-accumulation order).
  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<data::Sample> samples;
  std::vector<std::vector<uint32_t>> expected;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    samples.push_back(ds.Get(i));
    // Build a B=1 batch from the sample for the ground-truth forward.
    data::Batch one;
    ts::Shape xb = samples[i].x.shape();
    xb.insert(xb.begin(), 1);
    one.x = samples[i].x.Reshape(xb);
    for (const auto& e : samples[i].extras) {
      ts::Shape eb = e.shape();
      eb.insert(eb.begin(), 1);
      one.extras.push_back(e.Reshape(eb));
    }
    one.size = 1;
    ag::NoGradGuard no_grad;
    ts::Tensor out = model.Forward(one).value();
    ts::Shape row(out.shape().begin() + 1, out.shape().end());
    if (row.empty()) row = {1};
    expected.push_back(Bits(out.Reshape(row)));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int idx = c * kPerClient + i;
        auto out = engine.Submit(samples[idx]);
        if (!out.ok() || Bits(*out) != expected[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.stats().requests, kClients * kPerClient);
}

// --- Checkpoint + serve integration -----------------------------------------

TEST(AdapterTest, WrappingAppliesRequestedPrecisionToTheModel) {
  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/60, /*height=*/4, /*width=*/4, /*seed=*/9);
  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 4;
  mc.seed = 11;
  models::PeriodicalCnn model(mc);
  EXPECT_EQ(model.precision(), nn::Precision::kF32);

  // Wrapping quantizes (and packs) once at adapter-construction time,
  // and puts the model in eval mode so the low-precision gate engages.
  auto forward = serve::GridForward(model, nn::Precision::kInt8);
  EXPECT_EQ(model.precision(), nn::Precision::kInt8);
  EXPECT_FALSE(model.training());
  (void)forward;
}

TEST(EngineTest, ServesFromALoadedCheckpoint) {
  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/200, /*height=*/8, /*width=*/8, /*seed=*/7);
  ds.MinMaxNormalize();
  models::GridModelConfig mc;
  mc.channels = ds.channels();
  mc.height = ds.height();
  mc.width = ds.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;
  ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                 mc.len_trend);

  models::PeriodicalCnn trained(mc);
  const std::string path = testing::TempDir() + "/served_model.ckpt";
  ASSERT_TRUE(geotorch::io::SaveStateDict(trained, path).ok());

  models::GridModelConfig mc2 = mc;
  mc2.seed = 99;
  models::PeriodicalCnn fresh(mc2);
  ASSERT_TRUE(geotorch::io::LoadStateDict(fresh, path).ok());

  serve::SampleSpec spec;
  data::Sample sample = ds.Get(0);
  spec.x = sample.x.shape();
  for (const auto& e : sample.extras) spec.extras.push_back(e.shape());
  serve::Engine engine(serve::GridForward(fresh), spec, FastOptions());

  auto served = engine.Submit(sample);
  ASSERT_TRUE(served.ok());

  // The engine must answer with the trained model's output.
  data::Batch one;
  ts::Shape xb = sample.x.shape();
  xb.insert(xb.begin(), 1);
  one.x = sample.x.Reshape(xb);
  for (const auto& e : sample.extras) {
    ts::Shape eb = e.shape();
    eb.insert(eb.begin(), 1);
    one.extras.push_back(e.Reshape(eb));
  }
  one.size = 1;
  trained.SetTraining(false);
  ag::NoGradGuard no_grad;
  ts::Tensor direct = trained.Forward(one).value();
  ts::Shape row(direct.shape().begin() + 1, direct.shape().end());
  EXPECT_EQ(Bits(*served), Bits(direct.Reshape(row)));
  std::remove(path.c_str());
}

}  // namespace
