// The sharded, replicated serving fleet: routing must answer every
// request exactly once (bitwise equal to a direct forward, on every
// replica), tenant quotas must reject at the router while other
// tenants keep flowing, saturation of every replica must propagate as
// OutOfRange backpressure, and hot reload must swap checkpoints under
// sustained concurrent load with every in-flight response bitwise-
// consistent with exactly one checkpoint version — never a torn mix —
// while a corrupt checkpoint fails cleanly and leaves the old model
// serving.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/rng.h"
#include "io/checkpoint.h"
#include "models/grid_models.h"
#include "nn/layers.h"
#include "serve/adapters.h"
#include "serve/config.h"
#include "serve/engine.h"
#include "serve/fleet.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::geotorch::autograd;
namespace io = ::geotorch::io;
namespace data = ::geotorch::data;
namespace models = ::geotorch::models;
namespace nn = ::geotorch::nn;
namespace serve = ::geotorch::serve;
namespace ts = ::geotorch::tensor;

std::vector<uint32_t> Bits(const ts::Tensor& t) {
  std::vector<uint32_t> bits(t.numel());
  if (t.numel() > 0) {
    std::memcpy(bits.data(), t.data(), t.numel() * sizeof(uint32_t));
  }
  return bits;
}

serve::FleetOptions FastFleet(int replicas) {
  serve::FleetOptions opts;
  opts.replicas = replicas;
  opts.engine.max_batch = 4;
  opts.engine.max_delay_us = 100;
  opts.engine.max_queue = 256;
  opts.engine.warmup_batches = 0;
  return opts;
}

// An echo snapshot factory: forward is the identity, so every client
// can verify it got exactly its own sample back from whichever replica
// served it. Not reloadable (no load hook).
serve::SnapshotFactory EchoFactory() {
  return [] {
    serve::ModelSnapshot snap;
    snap.forward = [](const data::Batch& batch) { return batch.x; };
    return snap;
  };
}

data::Sample MakeSample(int64_t dim, float v) {
  data::Sample s;
  s.x = ts::Tensor::Full({dim}, v);
  return s;
}

// --- FleetOptions::FromEnv --------------------------------------------------

struct EnvVarGuard {
  explicit EnvVarGuard(std::vector<const char*> names)
      : names_(std::move(names)) {
    for (const char* n : names_) unsetenv(n);
  }
  ~EnvVarGuard() {
    for (const char* n : names_) unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST(FleetOptionsTest, FromEnvDefaultsWhenUnset) {
  EnvVarGuard guard({"GEOTORCH_FLEET_REPLICAS", "GEOTORCH_FLEET_TENANT_QPS",
                     "GEOTORCH_FLEET_TENANT_BURST"});
  const serve::FleetOptions opts = serve::FleetOptions::FromEnv();
  const serve::FleetOptions defaults;
  EXPECT_EQ(opts.replicas, defaults.replicas);
  EXPECT_EQ(opts.tenant_qps, defaults.tenant_qps);
  EXPECT_EQ(opts.tenant_burst, defaults.tenant_burst);
}

TEST(FleetOptionsTest, FromEnvParsesClampsAndNestsEngineOptions) {
  EnvVarGuard guard({"GEOTORCH_FLEET_REPLICAS", "GEOTORCH_FLEET_TENANT_QPS",
                     "GEOTORCH_FLEET_TENANT_BURST",
                     "GEOTORCH_SERVE_MAX_BATCH"});
  setenv("GEOTORCH_FLEET_REPLICAS", "0", 1);      // clamped to 1
  setenv("GEOTORCH_FLEET_TENANT_QPS", "50", 1);
  setenv("GEOTORCH_FLEET_TENANT_BURST", "-3", 1);  // clamped to 0
  setenv("GEOTORCH_SERVE_MAX_BATCH", "32", 1);     // nested engine family
  const serve::FleetOptions opts = serve::FleetOptions::FromEnv();
  EXPECT_EQ(opts.replicas, 1);
  EXPECT_EQ(opts.tenant_qps, 50);
  EXPECT_EQ(opts.tenant_burst, 0);
  EXPECT_EQ(opts.engine.max_batch, 32);
}

// --- Routing ----------------------------------------------------------------

TEST(FleetTest, UnknownModelIsNotFound) {
  serve::Fleet fleet(FastFleet(1));
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{4}, {}}).ok());
  auto r = fleet.Submit("nope", "tenant", MakeSample(4, 1.0f));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geotorch::StatusCode::kNotFound);
}

TEST(FleetTest, DuplicateModelNameIsAlreadyExists) {
  serve::Fleet fleet(FastFleet(1));
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{4}, {}}).ok());
  auto s =
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{4}, {}});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), geotorch::StatusCode::kAlreadyExists);
}

TEST(FleetTest, SequentialSubmitsRoundRobinAcrossIdleReplicas) {
  // One request in flight at a time: every replica is idle at each
  // routing decision, so the round-robin tie-break must spread the
  // stream exactly evenly.
  serve::Fleet fleet(FastFleet(3));
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{4}, {}}).ok());
  for (int i = 0; i < 9; ++i) {
    auto r = fleet.Submit("echo", "t", MakeSample(4, static_cast<float>(i)));
    ASSERT_TRUE(r.ok());
  }
  const std::vector<serve::EngineStats> stats = fleet.ReplicaStats("echo");
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) EXPECT_EQ(s.requests, 3);
  EXPECT_EQ(fleet.stats().routed, 9);
}

TEST(FleetTest, EveryRequestAnsweredExactlyOnceAcrossThreads) {
  serve::Fleet fleet(FastFleet(3));
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{4}, {}}).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&fleet, &mismatches, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        data::Sample s = MakeSample(4, static_cast<float>(t * 1000 + i));
        auto r = fleet.Submit("echo", "tenant-" + std::to_string(t), s);
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (Bits(*r) != Bits(s.x)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Exactly once: the engines collectively accepted every routed
  // request, and nothing was double-submitted.
  int64_t engine_requests = 0;
  for (const auto& s : fleet.ReplicaStats("echo")) {
    engine_requests += s.requests;
  }
  EXPECT_EQ(engine_requests, kThreads * kPerThread);
  EXPECT_EQ(fleet.stats().routed, kThreads * kPerThread);
  EXPECT_EQ(fleet.stats().tenant_rejected, 0);
}

// A forward that blocks until the test opens a gate; lets the test
// wedge chosen replicas deterministically.
class Gate {
 public:
  ts::Tensor Hold(const data::Batch& batch) {
    in_forward_.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
    return batch.x;
  }
  void WaitUntilInForward(int n) {
    while (in_forward_.load() < n) std::this_thread::yield();
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<int> in_forward_{0};
};

TEST(FleetTest, LeastLoadedRoutingSteersAroundABusyReplica) {
  // Wedge one replica in a long forward; every subsequent sequential
  // submit must be routed to the other (its outstanding count is 0 vs
  // the wedged replica's 1).
  auto gate = std::make_shared<Gate>();
  serve::FleetOptions opts = FastFleet(2);
  opts.engine.max_batch = 1;
  opts.engine.max_delay_us = 0;
  serve::Fleet fleet(opts);
  // Value 42 blocks on the gate; everything else echoes immediately.
  ASSERT_TRUE(fleet
                  .AddModel("m",
                            [gate] {
                              serve::ModelSnapshot snap;
                              snap.forward =
                                  [gate](const data::Batch& batch) {
                                    if (batch.x.data()[0] == 42.0f) {
                                      return gate->Hold(batch);
                                    }
                                    return batch.x;
                                  };
                              return snap;
                            },
                            serve::SampleSpec{{2}, {}})
                  .ok());

  std::thread wedged([&fleet] {
    auto r = fleet.Submit("m", "t", MakeSample(2, 42.0f));
    EXPECT_TRUE(r.ok());
  });
  gate->WaitUntilInForward(1);

  constexpr int kFollowUps = 10;
  for (int i = 0; i < kFollowUps; ++i) {
    auto r = fleet.Submit("m", "t", MakeSample(2, static_cast<float>(i)));
    ASSERT_TRUE(r.ok());
  }
  gate->Open();
  wedged.join();

  // One replica served exactly the wedged request, the other all of
  // the follow-ups.
  std::vector<int64_t> per_replica;
  for (const auto& s : fleet.ReplicaStats("m")) {
    per_replica.push_back(s.requests);
  }
  ASSERT_EQ(per_replica.size(), 2u);
  std::sort(per_replica.begin(), per_replica.end());
  EXPECT_EQ(per_replica[0], 1);
  EXPECT_EQ(per_replica[1], kFollowUps);
}

// --- Tenant quotas ----------------------------------------------------------

TEST(FleetTest, TenantQuotaRejectsBeyondBurstAndIsPerTenant) {
  serve::FleetOptions opts = FastFleet(1);
  opts.tenant_qps = 1;
  opts.tenant_burst = 2;
  serve::Fleet fleet(opts);
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{2}, {}}).ok());

  // Burst capacity: two immediate requests pass, the third (arriving
  // well inside the 1s refill window) is rejected at the router.
  EXPECT_TRUE(fleet.Submit("echo", "alice", MakeSample(2, 1.0f)).ok());
  EXPECT_TRUE(fleet.Submit("echo", "alice", MakeSample(2, 2.0f)).ok());
  auto rejected = fleet.Submit("echo", "alice", MakeSample(2, 3.0f));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            geotorch::StatusCode::kResourceExhausted);

  // Quotas are per tenant: bob's bucket is untouched.
  EXPECT_TRUE(fleet.Submit("echo", "bob", MakeSample(2, 4.0f)).ok());

  const serve::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.tenant_rejected, 1);
  EXPECT_EQ(stats.routed, 3);  // rejected submits are not routed
}

TEST(FleetTest, ZeroQpsDisablesQuotas) {
  serve::Fleet fleet(FastFleet(1));  // tenant_qps = 0
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{2}, {}}).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        fleet.Submit("echo", "hammer", MakeSample(2, 1.0f)).ok());
  }
  EXPECT_EQ(fleet.stats().tenant_rejected, 0);
}

// --- Backpressure -----------------------------------------------------------

TEST(FleetTest, BackpressurePropagatesWhenAllReplicasSaturate) {
  auto gate = std::make_shared<Gate>();
  serve::FleetOptions opts = FastFleet(2);
  opts.engine.max_batch = 1;
  opts.engine.max_delay_us = 0;
  opts.engine.max_queue = 1;
  serve::Fleet fleet(opts);
  ASSERT_TRUE(fleet
                  .AddModel("m",
                            [gate] {
                              serve::ModelSnapshot snap;
                              snap.forward =
                                  [gate](const data::Batch& batch) {
                                    return gate->Hold(batch);
                                  };
                              return snap;
                            },
                            serve::SampleSpec{{2}, {}})
                  .ok());

  // Two submits wedge one batch per replica (least-loaded routing
  // spreads them); two more fill each replica's 1-deep queue.
  std::vector<std::thread> held;
  for (int i = 0; i < 2; ++i) {
    held.emplace_back([&fleet] {
      EXPECT_TRUE(fleet.Submit("m", "t", MakeSample(2, 1.0f)).ok());
    });
  }
  gate->WaitUntilInForward(2);
  for (int i = 0; i < 2; ++i) {
    held.emplace_back([&fleet] {
      EXPECT_TRUE(fleet.Submit("m", "t", MakeSample(2, 2.0f)).ok());
    });
  }
  int64_t accepted = 0;
  while (accepted < 4) {
    accepted = 0;
    for (const auto& s : fleet.ReplicaStats("m")) accepted += s.requests;
    std::this_thread::yield();
  }

  // Every queue is full: the router tries both replicas, both reject,
  // and the caller sees OutOfRange — backpressure, not a deadlock.
  auto r = fleet.Submit("m", "t", MakeSample(2, 3.0f));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geotorch::StatusCode::kOutOfRange);

  gate->Open();
  for (auto& t : held) t.join();
}

// --- Engine-vs-direct bitwise across replicas on a real model ---------------

TEST(FleetTest, ReplicasServeBitwiseIdenticalToDirectForward) {
  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 8;
  mc.width = 8;
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;

  serve::FleetOptions opts = FastFleet(2);
  opts.engine.max_delay_us = 1000;  // encourage real coalescing
  serve::Fleet fleet(opts);
  ASSERT_TRUE(fleet
                  .AddModel("grid",
                            [mc] {
                              auto model =
                                  std::make_shared<models::PeriodicalCnn>(mc);
                              serve::ModelSnapshot snap;
                              snap.owner = model;
                              snap.forward = serve::GridForward(*model);
                              return snap;
                            },
                            serve::SampleSpec{
                                {3, 8, 8}, {{2, 8, 8}, {1, 8, 8}}})
                  .ok());

  models::PeriodicalCnn direct(mc);  // same seed => same weights
  direct.SetTraining(false);

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<data::Sample> samples;
  std::vector<std::vector<uint32_t>> expected;
  geotorch::Rng rng(7);
  for (int i = 0; i < kClients * kPerClient; ++i) {
    data::Sample s;
    s.x = ts::Tensor::Uninitialized({3, 8, 8});
    for (int64_t j = 0; j < s.x.numel(); ++j) {
      s.x.data()[j] = static_cast<float>(rng.Uniform());
    }
    s.extras.push_back(ts::Tensor::Full({2, 8, 8}, 0.25f + 0.01f * i));
    s.extras.push_back(ts::Tensor::Full({1, 8, 8}, 0.75f - 0.01f * i));
    data::Batch one;
    one.x = s.x.Reshape({1, 3, 8, 8});
    one.extras.push_back(s.extras[0].Reshape({1, 2, 8, 8}));
    one.extras.push_back(s.extras[1].Reshape({1, 1, 8, 8}));
    one.size = 1;
    ag::NoGradGuard no_grad;
    ts::Tensor out = direct.Forward(one).value();
    ts::Shape row(out.shape().begin() + 1, out.shape().end());
    expected.push_back(Bits(out.Reshape(row)));
    samples.push_back(std::move(s));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int idx = c * kPerClient + i;
        auto r = fleet.Submit("grid", "t", samples[idx]);
        if (!r.ok() || Bits(*r) != expected[idx]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Both replicas took part and answered bitwise-identically.
  for (const auto& s : fleet.ReplicaStats("grid")) EXPECT_GT(s.requests, 0);
}

// --- Hot reload -------------------------------------------------------------

// A reloadable Linear snapshot factory: each snapshot owns a fresh
// Linear(8, 8) whose weights come from a GTCP checkpoint; load wires
// io::LoadStateDict plus the SetPrecision re-derivation of any packed
// low-precision panels (a no-op in f32, but the pattern production
// factories must follow).
serve::SnapshotFactory LinearFactory(const std::string& initial_ckpt) {
  return [initial_ckpt] {
    geotorch::Rng rng(12345);
    auto model = std::make_shared<nn::Linear>(8, 8, rng);
    serve::ModelSnapshot snap;
    snap.owner = model;
    snap.forward = serve::UnaryForward(*model);
    snap.load = [model](const std::string& path) {
      geotorch::Status st = io::LoadStateDict(*model, path);
      if (st.ok()) model->SetPrecision(model->precision());
      return st;
    };
    if (!initial_ckpt.empty()) {
      GEO_CHECK(snap.load(initial_ckpt).ok());
    }
    return snap;
  };
}

std::string WriteLinearCheckpoint(uint64_t seed, const std::string& name) {
  geotorch::Rng rng(seed);
  nn::Linear model(8, 8, rng);
  const std::string path = testing::TempDir() + "/" + name;
  GEO_CHECK(io::SaveStateDict(model, path).ok());
  return path;
}

// Ground truth: the bitwise output of a direct eval forward of the
// checkpointed Linear on `sample`, as a {8} row.
std::vector<uint32_t> DirectLinearRow(const std::string& ckpt,
                                      const data::Sample& sample) {
  geotorch::Rng rng(999);
  nn::Linear model(8, 8, rng);
  GEO_CHECK(io::LoadStateDict(model, ckpt).ok());
  auto forward = serve::UnaryForward(model);
  data::Batch one;
  one.x = sample.x.Reshape({1, 8});
  one.size = 1;
  ts::Tensor out = forward(one);
  return Bits(out.Reshape({8}));
}

TEST(FleetTest, HotReloadUnderLoadServesExactlyOneVersionPerResponse) {
  // The acceptance scenario: >= 1000 requests served across a
  // checkpoint swap with zero dropped responses and zero torn ones —
  // every response is bitwise equal to version 1's output or version
  // 2's output, and every response issued after Reload() returned is
  // version 2's.
  const std::string ckpt_v1 = WriteLinearCheckpoint(1, "fleet_v1.ckpt");
  const std::string ckpt_v2 = WriteLinearCheckpoint(2, "fleet_v2.ckpt");

  data::Sample sample = MakeSample(8, 0.0f);
  for (int64_t i = 0; i < 8; ++i) {
    sample.x.data()[i] = 0.125f * static_cast<float>(i + 1);
  }
  const std::vector<uint32_t> want_v1 = DirectLinearRow(ckpt_v1, sample);
  const std::vector<uint32_t> want_v2 = DirectLinearRow(ckpt_v2, sample);
  ASSERT_NE(want_v1, want_v2);  // the swap must be observable

  serve::FleetOptions opts = FastFleet(2);
  opts.engine.max_batch = 8;
  opts.engine.max_delay_us = 50;
  serve::Fleet fleet(opts);
  ASSERT_TRUE(fleet
                  .AddModel("linear", LinearFactory(ckpt_v1),
                            serve::SampleSpec{{8}, {}})
                  .ok());
  ASSERT_TRUE(fleet.ModelVersion("linear").ok());
  EXPECT_EQ(*fleet.ModelVersion("linear"), 1);

  constexpr int kClients = 4;
  constexpr int kTarget = 1200;
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> torn{0};
  std::atomic<int64_t> v1_count{0};
  std::atomic<int64_t> v2_count{0};
  std::atomic<int64_t> stale_after_reload{0};
  std::atomic<bool> reload_done{false};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (served.load(std::memory_order_relaxed) < kTarget) {
        const bool after_reload =
            reload_done.load(std::memory_order_acquire);
        auto r = fleet.Submit("linear", "t", sample);
        if (!r.ok()) {
          dropped.fetch_add(1);
          continue;
        }
        served.fetch_add(1);
        const std::vector<uint32_t> got = Bits(*r);
        if (got == want_v1) {
          v1_count.fetch_add(1);
          // A request submitted after Reload() returned must be served
          // by version 2: the reload drained every replica before
          // returning, so no batch formed afterwards can see v1.
          if (after_reload) stale_after_reload.fetch_add(1);
        } else if (got == want_v2) {
          v2_count.fetch_add(1);
        } else {
          torn.fetch_add(1);
        }
      }
    });
  }

  // Let traffic build, then swap mid-stream.
  while (served.load() < kTarget / 4) std::this_thread::yield();
  ASSERT_TRUE(fleet.Reload("linear", ckpt_v2).ok());
  reload_done.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();

  EXPECT_GE(served.load(), kTarget);
  EXPECT_EQ(dropped.load(), 0);
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(stale_after_reload.load(), 0);
  EXPECT_GT(v1_count.load(), 0);  // traffic flowed before the swap...
  EXPECT_GT(v2_count.load(), 0);  // ...and after it
  EXPECT_EQ(*fleet.ModelVersion("linear"), 2);
  const serve::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.reload_swaps, 2);  // one per replica
  EXPECT_EQ(stats.reload_failures, 0);
}

TEST(FleetTest, CorruptCheckpointReloadFailsCleanlyUnderLoad) {
  // Fault injection: reloads from a truncated file, a bit-flipped
  // file, and a missing file must all fail via Status, leave the
  // version untouched, and keep every concurrent response on the old
  // weights; a subsequent good reload still works.
  const std::string ckpt_v1 = WriteLinearCheckpoint(3, "fleet_f1.ckpt");
  const std::string ckpt_v2 = WriteLinearCheckpoint(4, "fleet_f2.ckpt");

  data::Sample sample = MakeSample(8, 0.5f);
  const std::vector<uint32_t> want_v1 = DirectLinearRow(ckpt_v1, sample);
  const std::vector<uint32_t> want_v2 = DirectLinearRow(ckpt_v2, sample);

  // Truncated copy: drop the tail (which also removes the CRC).
  std::string blob;
  {
    std::ifstream in(ckpt_v2, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(blob.size(), 16u);
  const std::string truncated_path =
      testing::TempDir() + "/fleet_truncated.ckpt";
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  }
  // Bit-flipped copy: corrupt one payload byte, CRC catches it.
  std::string flipped = blob;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  const std::string flipped_path =
      testing::TempDir() + "/fleet_flipped.ckpt";
  {
    std::ofstream out(flipped_path, std::ios::binary);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }

  serve::Fleet fleet(FastFleet(2));
  ASSERT_TRUE(fleet
                  .AddModel("linear", LinearFactory(ckpt_v1),
                            serve::SampleSpec{{8}, {}})
                  .ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> wrong{0};
  std::atomic<int64_t> saw_v2{0};
  std::thread client([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = fleet.Submit("linear", "t", sample);
      if (!r.ok()) {
        wrong.fetch_add(1);
        continue;
      }
      const std::vector<uint32_t> got = Bits(*r);
      if (got == want_v2) {
        saw_v2.fetch_add(1);
      } else if (got != want_v1) {
        wrong.fetch_add(1);
      }
    }
  });

  EXPECT_FALSE(fleet.Reload("linear", truncated_path).ok());
  EXPECT_FALSE(fleet.Reload("linear", flipped_path).ok());
  EXPECT_FALSE(fleet.Reload("linear", testing::TempDir() +
                                          "/does_not_exist.ckpt")
                   .ok());
  EXPECT_EQ(*fleet.ModelVersion("linear"), 1);
  EXPECT_EQ(fleet.stats().reload_swaps, 0);
  EXPECT_EQ(fleet.stats().reload_failures, 3);
  EXPECT_EQ(saw_v2.load(), 0);  // old model kept serving throughout

  // The failed attempts must not have poisoned anything: a good
  // reload still swaps cleanly.
  ASSERT_TRUE(fleet.Reload("linear", ckpt_v2).ok());
  auto r = fleet.Submit("linear", "t", sample);
  stop.store(true);
  client.join();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bits(*r), want_v2);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(*fleet.ModelVersion("linear"), 2);
}

TEST(FleetTest, ReloadOfNonReloadableModelIsNotImplemented) {
  serve::Fleet fleet(FastFleet(1));
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{2}, {}}).ok());
  auto s = fleet.Reload("echo", "/tmp/whatever.ckpt");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), geotorch::StatusCode::kNotImplemented);
  EXPECT_EQ(fleet.stats().reload_failures, 1);
}

// --- Transactional state-dict application -----------------------------------

TEST(FleetTest, FailedStateDictLoadLeavesLiveModuleUntouched) {
  // The io-side half of the reload contract: ApplyStateDict validates
  // the whole plan before writing anything, so a checkpoint whose
  // SECOND tensor is bad must not apply its first. (Before this was
  // transactional, 'weight' was overwritten and then the 'bias' error
  // left the module half-updated.)
  geotorch::Rng rng(5);
  nn::Linear model(4, 4, rng);
  std::vector<std::vector<uint32_t>> before;
  for (const auto& [name, p] : model.NamedParameters()) {
    before.push_back(Bits(p.value()));
  }

  io::Checkpoint ckpt;
  ckpt.tensors.emplace_back("weight", ts::Tensor::Full({4, 4}, 7.0f));
  ckpt.tensors.emplace_back("bias", ts::Tensor::Full({5}, 7.0f));  // bad shape
  auto s = io::ApplyStateDict(model, ckpt);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), geotorch::StatusCode::kInvalidArgument);

  std::vector<std::vector<uint32_t>> after;
  for (const auto& [name, p] : model.NamedParameters()) {
    after.push_back(Bits(p.value()));
  }
  EXPECT_EQ(before, after);

  // Same for a missing-parameter strict failure.
  io::Checkpoint missing;
  missing.tensors.emplace_back("weight", ts::Tensor::Full({4, 4}, 9.0f));
  s = io::ApplyStateDict(model, missing);
  ASSERT_FALSE(s.ok());
  after.clear();
  for (const auto& [name, p] : model.NamedParameters()) {
    after.push_back(Bits(p.value()));
  }
  EXPECT_EQ(before, after);
}

// --- Shutdown ---------------------------------------------------------------

TEST(FleetTest, SubmitAfterShutdownFails) {
  serve::Fleet fleet(FastFleet(2));
  ASSERT_TRUE(
      fleet.AddModel("echo", EchoFactory(), serve::SampleSpec{{2}, {}}).ok());
  ASSERT_TRUE(fleet.Submit("echo", "t", MakeSample(2, 1.0f)).ok());
  fleet.Shutdown();
  fleet.Shutdown();  // idempotent
  auto r = fleet.Submit("echo", "t", MakeSample(2, 2.0f));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geotorch::StatusCode::kInvalidArgument);
}

}  // namespace
