# Empty dependencies file for geo_tensor.
# This may be replaced when dependencies are built.
