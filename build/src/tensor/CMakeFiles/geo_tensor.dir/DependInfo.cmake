
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/conv.cc" "src/tensor/CMakeFiles/geo_tensor.dir/conv.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/conv.cc.o.d"
  "/root/repo/src/tensor/device.cc" "src/tensor/CMakeFiles/geo_tensor.dir/device.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/device.cc.o.d"
  "/root/repo/src/tensor/gemm.cc" "src/tensor/CMakeFiles/geo_tensor.dir/gemm.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/gemm.cc.o.d"
  "/root/repo/src/tensor/gemm_ref.cc" "src/tensor/CMakeFiles/geo_tensor.dir/gemm_ref.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/gemm_ref.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/tensor/CMakeFiles/geo_tensor.dir/ops.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/ops.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/tensor/CMakeFiles/geo_tensor.dir/serialize.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/serialize.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/tensor/CMakeFiles/geo_tensor.dir/shape.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/geo_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/geo_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
