file(REMOVE_RECURSE
  "libgeo_tensor.a"
)
