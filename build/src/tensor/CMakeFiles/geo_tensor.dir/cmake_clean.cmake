file(REMOVE_RECURSE
  "CMakeFiles/geo_tensor.dir/conv.cc.o"
  "CMakeFiles/geo_tensor.dir/conv.cc.o.d"
  "CMakeFiles/geo_tensor.dir/device.cc.o"
  "CMakeFiles/geo_tensor.dir/device.cc.o.d"
  "CMakeFiles/geo_tensor.dir/gemm.cc.o"
  "CMakeFiles/geo_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/geo_tensor.dir/gemm_ref.cc.o"
  "CMakeFiles/geo_tensor.dir/gemm_ref.cc.o.d"
  "CMakeFiles/geo_tensor.dir/ops.cc.o"
  "CMakeFiles/geo_tensor.dir/ops.cc.o.d"
  "CMakeFiles/geo_tensor.dir/serialize.cc.o"
  "CMakeFiles/geo_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/geo_tensor.dir/shape.cc.o"
  "CMakeFiles/geo_tensor.dir/shape.cc.o.d"
  "CMakeFiles/geo_tensor.dir/tensor.cc.o"
  "CMakeFiles/geo_tensor.dir/tensor.cc.o.d"
  "libgeo_tensor.a"
  "libgeo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
