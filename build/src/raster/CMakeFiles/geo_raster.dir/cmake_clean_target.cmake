file(REMOVE_RECURSE
  "libgeo_raster.a"
)
