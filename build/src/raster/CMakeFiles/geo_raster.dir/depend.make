# Empty dependencies file for geo_raster.
# This may be replaced when dependencies are built.
