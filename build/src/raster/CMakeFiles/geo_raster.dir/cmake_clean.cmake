file(REMOVE_RECURSE
  "CMakeFiles/geo_raster.dir/glcm.cc.o"
  "CMakeFiles/geo_raster.dir/glcm.cc.o.d"
  "CMakeFiles/geo_raster.dir/io.cc.o"
  "CMakeFiles/geo_raster.dir/io.cc.o.d"
  "CMakeFiles/geo_raster.dir/ops.cc.o"
  "CMakeFiles/geo_raster.dir/ops.cc.o.d"
  "CMakeFiles/geo_raster.dir/raster.cc.o"
  "CMakeFiles/geo_raster.dir/raster.cc.o.d"
  "libgeo_raster.a"
  "libgeo_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
