# Empty compiler generated dependencies file for geo_models.
# This may be replaced when dependencies are built.
