
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/grid_models.cc" "src/models/CMakeFiles/geo_models.dir/grid_models.cc.o" "gcc" "src/models/CMakeFiles/geo_models.dir/grid_models.cc.o.d"
  "/root/repo/src/models/raster_models.cc" "src/models/CMakeFiles/geo_models.dir/raster_models.cc.o" "gcc" "src/models/CMakeFiles/geo_models.dir/raster_models.cc.o.d"
  "/root/repo/src/models/segmentation_models.cc" "src/models/CMakeFiles/geo_models.dir/segmentation_models.cc.o" "gcc" "src/models/CMakeFiles/geo_models.dir/segmentation_models.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/models/CMakeFiles/geo_models.dir/trainer.cc.o" "gcc" "src/models/CMakeFiles/geo_models.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/geo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/geo_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/geo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/geo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/geo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
