file(REMOVE_RECURSE
  "CMakeFiles/geo_models.dir/grid_models.cc.o"
  "CMakeFiles/geo_models.dir/grid_models.cc.o.d"
  "CMakeFiles/geo_models.dir/raster_models.cc.o"
  "CMakeFiles/geo_models.dir/raster_models.cc.o.d"
  "CMakeFiles/geo_models.dir/segmentation_models.cc.o"
  "CMakeFiles/geo_models.dir/segmentation_models.cc.o.d"
  "CMakeFiles/geo_models.dir/trainer.cc.o"
  "CMakeFiles/geo_models.dir/trainer.cc.o.d"
  "libgeo_models.a"
  "libgeo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
