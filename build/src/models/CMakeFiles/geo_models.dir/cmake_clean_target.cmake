file(REMOVE_RECURSE
  "libgeo_models.a"
)
