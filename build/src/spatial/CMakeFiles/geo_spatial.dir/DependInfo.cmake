
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/geometry.cc" "src/spatial/CMakeFiles/geo_spatial.dir/geometry.cc.o" "gcc" "src/spatial/CMakeFiles/geo_spatial.dir/geometry.cc.o.d"
  "/root/repo/src/spatial/grid.cc" "src/spatial/CMakeFiles/geo_spatial.dir/grid.cc.o" "gcc" "src/spatial/CMakeFiles/geo_spatial.dir/grid.cc.o.d"
  "/root/repo/src/spatial/join.cc" "src/spatial/CMakeFiles/geo_spatial.dir/join.cc.o" "gcc" "src/spatial/CMakeFiles/geo_spatial.dir/join.cc.o.d"
  "/root/repo/src/spatial/strtree.cc" "src/spatial/CMakeFiles/geo_spatial.dir/strtree.cc.o" "gcc" "src/spatial/CMakeFiles/geo_spatial.dir/strtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
