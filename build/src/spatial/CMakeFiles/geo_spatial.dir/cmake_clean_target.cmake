file(REMOVE_RECURSE
  "libgeo_spatial.a"
)
