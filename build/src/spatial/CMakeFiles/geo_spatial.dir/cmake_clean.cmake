file(REMOVE_RECURSE
  "CMakeFiles/geo_spatial.dir/geometry.cc.o"
  "CMakeFiles/geo_spatial.dir/geometry.cc.o.d"
  "CMakeFiles/geo_spatial.dir/grid.cc.o"
  "CMakeFiles/geo_spatial.dir/grid.cc.o.d"
  "CMakeFiles/geo_spatial.dir/join.cc.o"
  "CMakeFiles/geo_spatial.dir/join.cc.o.d"
  "CMakeFiles/geo_spatial.dir/strtree.cc.o"
  "CMakeFiles/geo_spatial.dir/strtree.cc.o.d"
  "libgeo_spatial.a"
  "libgeo_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
