# Empty compiler generated dependencies file for geo_spatial.
# This may be replaced when dependencies are built.
