# Empty dependencies file for geo_autograd.
# This may be replaced when dependencies are built.
