file(REMOVE_RECURSE
  "CMakeFiles/geo_autograd.dir/ops.cc.o"
  "CMakeFiles/geo_autograd.dir/ops.cc.o.d"
  "CMakeFiles/geo_autograd.dir/variable.cc.o"
  "CMakeFiles/geo_autograd.dir/variable.cc.o.d"
  "libgeo_autograd.a"
  "libgeo_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
