file(REMOVE_RECURSE
  "libgeo_autograd.a"
)
