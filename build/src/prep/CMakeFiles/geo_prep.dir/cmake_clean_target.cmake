file(REMOVE_RECURSE
  "libgeo_prep.a"
)
