file(REMOVE_RECURSE
  "CMakeFiles/geo_prep.dir/df_to_torch.cc.o"
  "CMakeFiles/geo_prep.dir/df_to_torch.cc.o.d"
  "CMakeFiles/geo_prep.dir/raster_processing.cc.o"
  "CMakeFiles/geo_prep.dir/raster_processing.cc.o.d"
  "CMakeFiles/geo_prep.dir/st_manager.cc.o"
  "CMakeFiles/geo_prep.dir/st_manager.cc.o.d"
  "libgeo_prep.a"
  "libgeo_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
