# Empty dependencies file for geo_prep.
# This may be replaced when dependencies are built.
