# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("tensor")
subdirs("autograd")
subdirs("nn")
subdirs("optim")
subdirs("data")
subdirs("spatial")
subdirs("df")
subdirs("raster")
subdirs("synth")
subdirs("baseline")
subdirs("prep")
subdirs("datasets")
subdirs("transforms")
subdirs("models")
