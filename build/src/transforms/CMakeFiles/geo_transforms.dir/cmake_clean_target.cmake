file(REMOVE_RECURSE
  "libgeo_transforms.a"
)
