# Empty dependencies file for geo_transforms.
# This may be replaced when dependencies are built.
