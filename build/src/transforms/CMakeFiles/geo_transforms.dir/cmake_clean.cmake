file(REMOVE_RECURSE
  "CMakeFiles/geo_transforms.dir/transforms.cc.o"
  "CMakeFiles/geo_transforms.dir/transforms.cc.o.d"
  "libgeo_transforms.a"
  "libgeo_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
