file(REMOVE_RECURSE
  "CMakeFiles/geo_nn.dir/init.cc.o"
  "CMakeFiles/geo_nn.dir/init.cc.o.d"
  "CMakeFiles/geo_nn.dir/layers.cc.o"
  "CMakeFiles/geo_nn.dir/layers.cc.o.d"
  "CMakeFiles/geo_nn.dir/module.cc.o"
  "CMakeFiles/geo_nn.dir/module.cc.o.d"
  "libgeo_nn.a"
  "libgeo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
