# Empty compiler generated dependencies file for geo_nn.
# This may be replaced when dependencies are built.
