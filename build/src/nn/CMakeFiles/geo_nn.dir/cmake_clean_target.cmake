file(REMOVE_RECURSE
  "libgeo_nn.a"
)
