file(REMOVE_RECURSE
  "CMakeFiles/geo_data.dir/dataloader.cc.o"
  "CMakeFiles/geo_data.dir/dataloader.cc.o.d"
  "CMakeFiles/geo_data.dir/dataset.cc.o"
  "CMakeFiles/geo_data.dir/dataset.cc.o.d"
  "CMakeFiles/geo_data.dir/metrics.cc.o"
  "CMakeFiles/geo_data.dir/metrics.cc.o.d"
  "libgeo_data.a"
  "libgeo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
