file(REMOVE_RECURSE
  "libgeo_data.a"
)
