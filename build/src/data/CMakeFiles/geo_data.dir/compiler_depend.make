# Empty compiler generated dependencies file for geo_data.
# This may be replaced when dependencies are built.
