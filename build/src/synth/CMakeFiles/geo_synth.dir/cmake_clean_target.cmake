file(REMOVE_RECURSE
  "libgeo_synth.a"
)
