
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/noise.cc" "src/synth/CMakeFiles/geo_synth.dir/noise.cc.o" "gcc" "src/synth/CMakeFiles/geo_synth.dir/noise.cc.o.d"
  "/root/repo/src/synth/satimage.cc" "src/synth/CMakeFiles/geo_synth.dir/satimage.cc.o" "gcc" "src/synth/CMakeFiles/geo_synth.dir/satimage.cc.o.d"
  "/root/repo/src/synth/taxi.cc" "src/synth/CMakeFiles/geo_synth.dir/taxi.cc.o" "gcc" "src/synth/CMakeFiles/geo_synth.dir/taxi.cc.o.d"
  "/root/repo/src/synth/weather.cc" "src/synth/CMakeFiles/geo_synth.dir/weather.cc.o" "gcc" "src/synth/CMakeFiles/geo_synth.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/geo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/geo_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/df/CMakeFiles/geo_df.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/geo_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
