# Empty dependencies file for geo_synth.
# This may be replaced when dependencies are built.
