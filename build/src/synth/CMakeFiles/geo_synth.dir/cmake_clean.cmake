file(REMOVE_RECURSE
  "CMakeFiles/geo_synth.dir/noise.cc.o"
  "CMakeFiles/geo_synth.dir/noise.cc.o.d"
  "CMakeFiles/geo_synth.dir/satimage.cc.o"
  "CMakeFiles/geo_synth.dir/satimage.cc.o.d"
  "CMakeFiles/geo_synth.dir/taxi.cc.o"
  "CMakeFiles/geo_synth.dir/taxi.cc.o.d"
  "CMakeFiles/geo_synth.dir/weather.cc.o"
  "CMakeFiles/geo_synth.dir/weather.cc.o.d"
  "libgeo_synth.a"
  "libgeo_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
