file(REMOVE_RECURSE
  "CMakeFiles/geo_optim.dir/optimizer.cc.o"
  "CMakeFiles/geo_optim.dir/optimizer.cc.o.d"
  "libgeo_optim.a"
  "libgeo_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
