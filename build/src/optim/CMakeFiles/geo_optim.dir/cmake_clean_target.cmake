file(REMOVE_RECURSE
  "libgeo_optim.a"
)
