# Empty compiler generated dependencies file for geo_optim.
# This may be replaced when dependencies are built.
