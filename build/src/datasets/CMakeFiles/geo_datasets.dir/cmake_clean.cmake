file(REMOVE_RECURSE
  "CMakeFiles/geo_datasets.dir/benchmarks.cc.o"
  "CMakeFiles/geo_datasets.dir/benchmarks.cc.o.d"
  "CMakeFiles/geo_datasets.dir/grid_dataset.cc.o"
  "CMakeFiles/geo_datasets.dir/grid_dataset.cc.o.d"
  "CMakeFiles/geo_datasets.dir/raster_dataset.cc.o"
  "CMakeFiles/geo_datasets.dir/raster_dataset.cc.o.d"
  "libgeo_datasets.a"
  "libgeo_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
