file(REMOVE_RECURSE
  "libgeo_datasets.a"
)
