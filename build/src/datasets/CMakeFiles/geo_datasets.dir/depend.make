# Empty dependencies file for geo_datasets.
# This may be replaced when dependencies are built.
