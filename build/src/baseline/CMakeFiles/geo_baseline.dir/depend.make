# Empty dependencies file for geo_baseline.
# This may be replaced when dependencies are built.
