file(REMOVE_RECURSE
  "CMakeFiles/geo_baseline.dir/geopandas_like.cc.o"
  "CMakeFiles/geo_baseline.dir/geopandas_like.cc.o.d"
  "libgeo_baseline.a"
  "libgeo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
