file(REMOVE_RECURSE
  "libgeo_baseline.a"
)
