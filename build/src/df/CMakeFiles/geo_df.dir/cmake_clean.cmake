file(REMOVE_RECURSE
  "CMakeFiles/geo_df.dir/column.cc.o"
  "CMakeFiles/geo_df.dir/column.cc.o.d"
  "CMakeFiles/geo_df.dir/csv.cc.o"
  "CMakeFiles/geo_df.dir/csv.cc.o.d"
  "CMakeFiles/geo_df.dir/dataframe.cc.o"
  "CMakeFiles/geo_df.dir/dataframe.cc.o.d"
  "libgeo_df.a"
  "libgeo_df.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_df.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
