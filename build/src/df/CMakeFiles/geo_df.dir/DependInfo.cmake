
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/df/column.cc" "src/df/CMakeFiles/geo_df.dir/column.cc.o" "gcc" "src/df/CMakeFiles/geo_df.dir/column.cc.o.d"
  "/root/repo/src/df/csv.cc" "src/df/CMakeFiles/geo_df.dir/csv.cc.o" "gcc" "src/df/CMakeFiles/geo_df.dir/csv.cc.o.d"
  "/root/repo/src/df/dataframe.cc" "src/df/CMakeFiles/geo_df.dir/dataframe.cc.o" "gcc" "src/df/CMakeFiles/geo_df.dir/dataframe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/geo_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
