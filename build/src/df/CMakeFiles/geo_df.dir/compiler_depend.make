# Empty compiler generated dependencies file for geo_df.
# This may be replaced when dependencies are built.
