file(REMOVE_RECURSE
  "libgeo_df.a"
)
