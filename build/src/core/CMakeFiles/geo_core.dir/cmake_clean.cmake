file(REMOVE_RECURSE
  "CMakeFiles/geo_core.dir/memory.cc.o"
  "CMakeFiles/geo_core.dir/memory.cc.o.d"
  "CMakeFiles/geo_core.dir/status.cc.o"
  "CMakeFiles/geo_core.dir/status.cc.o.d"
  "CMakeFiles/geo_core.dir/thread_pool.cc.o"
  "CMakeFiles/geo_core.dir/thread_pool.cc.o.d"
  "libgeo_core.a"
  "libgeo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
