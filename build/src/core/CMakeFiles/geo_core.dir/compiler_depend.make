# Empty compiler generated dependencies file for geo_core.
# This may be replaced when dependencies are built.
