file(REMOVE_RECURSE
  "libgeo_core.a"
)
