# Empty dependencies file for table6_raster_accuracy.
# This may be replaced when dependencies are built.
