file(REMOVE_RECURSE
  "CMakeFiles/table6_raster_accuracy.dir/table6_raster_accuracy.cc.o"
  "CMakeFiles/table6_raster_accuracy.dir/table6_raster_accuracy.cc.o.d"
  "table6_raster_accuracy"
  "table6_raster_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_raster_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
