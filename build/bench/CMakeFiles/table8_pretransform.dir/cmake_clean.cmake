file(REMOVE_RECURSE
  "CMakeFiles/table8_pretransform.dir/table8_pretransform.cc.o"
  "CMakeFiles/table8_pretransform.dir/table8_pretransform.cc.o.d"
  "table8_pretransform"
  "table8_pretransform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_pretransform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
