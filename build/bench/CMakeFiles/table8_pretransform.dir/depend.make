# Empty dependencies file for table8_pretransform.
# This may be replaced when dependencies are built.
