# Empty compiler generated dependencies file for ablation_spatial_join.
# This may be replaced when dependencies are built.
