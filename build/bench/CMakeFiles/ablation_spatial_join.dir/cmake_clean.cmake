file(REMOVE_RECURSE
  "CMakeFiles/ablation_spatial_join.dir/ablation_spatial_join.cc.o"
  "CMakeFiles/ablation_spatial_join.dir/ablation_spatial_join.cc.o.d"
  "ablation_spatial_join"
  "ablation_spatial_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spatial_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
