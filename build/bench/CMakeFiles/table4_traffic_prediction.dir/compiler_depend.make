# Empty compiler generated dependencies file for table4_traffic_prediction.
# This may be replaced when dependencies are built.
