file(REMOVE_RECURSE
  "CMakeFiles/table4_traffic_prediction.dir/table4_traffic_prediction.cc.o"
  "CMakeFiles/table4_traffic_prediction.dir/table4_traffic_prediction.cc.o.d"
  "table4_traffic_prediction"
  "table4_traffic_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_traffic_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
