file(REMOVE_RECURSE
  "CMakeFiles/table5_weather_forecasting.dir/table5_weather_forecasting.cc.o"
  "CMakeFiles/table5_weather_forecasting.dir/table5_weather_forecasting.cc.o.d"
  "table5_weather_forecasting"
  "table5_weather_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_weather_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
