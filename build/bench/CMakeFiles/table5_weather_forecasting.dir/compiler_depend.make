# Empty compiler generated dependencies file for table5_weather_forecasting.
# This may be replaced when dependencies are built.
