# Empty dependencies file for table7_training_time.
# This may be replaced when dependencies are built.
