file(REMOVE_RECURSE
  "CMakeFiles/table7_training_time.dir/table7_training_time.cc.o"
  "CMakeFiles/table7_training_time.dir/table7_training_time.cc.o.d"
  "table7_training_time"
  "table7_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
