file(REMOVE_RECURSE
  "CMakeFiles/fig9_bands_gridsize.dir/fig9_bands_gridsize.cc.o"
  "CMakeFiles/fig9_bands_gridsize.dir/fig9_bands_gridsize.cc.o.d"
  "fig9_bands_gridsize"
  "fig9_bands_gridsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bands_gridsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
