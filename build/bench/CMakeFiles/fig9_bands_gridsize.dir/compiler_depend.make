# Empty compiler generated dependencies file for fig9_bands_gridsize.
# This may be replaced when dependencies are built.
