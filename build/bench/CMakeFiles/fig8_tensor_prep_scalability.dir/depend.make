# Empty dependencies file for fig8_tensor_prep_scalability.
# This may be replaced when dependencies are built.
