file(REMOVE_RECURSE
  "CMakeFiles/fig8_tensor_prep_scalability.dir/fig8_tensor_prep_scalability.cc.o"
  "CMakeFiles/fig8_tensor_prep_scalability.dir/fig8_tensor_prep_scalability.cc.o.d"
  "fig8_tensor_prep_scalability"
  "fig8_tensor_prep_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tensor_prep_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
