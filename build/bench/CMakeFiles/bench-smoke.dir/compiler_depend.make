# Empty custom commands generated dependencies file for bench-smoke.
# This may be replaced when dependencies are built.
