file(REMOVE_RECURSE
  "CMakeFiles/bench-smoke"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench-smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
