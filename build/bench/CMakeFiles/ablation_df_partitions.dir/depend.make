# Empty dependencies file for ablation_df_partitions.
# This may be replaced when dependencies are built.
