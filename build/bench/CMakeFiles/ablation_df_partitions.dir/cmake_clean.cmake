file(REMOVE_RECURSE
  "CMakeFiles/ablation_df_partitions.dir/ablation_df_partitions.cc.o"
  "CMakeFiles/ablation_df_partitions.dir/ablation_df_partitions.cc.o.d"
  "ablation_df_partitions"
  "ablation_df_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_df_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
