# Empty compiler generated dependencies file for ablation_conv_backend.
# This may be replaced when dependencies are built.
