file(REMOVE_RECURSE
  "CMakeFiles/ablation_conv_backend.dir/ablation_conv_backend.cc.o"
  "CMakeFiles/ablation_conv_backend.dir/ablation_conv_backend.cc.o.d"
  "ablation_conv_backend"
  "ablation_conv_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conv_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
