# Empty dependencies file for datasets_test.
# This may be replaced when dependencies are built.
