file(REMOVE_RECURSE
  "CMakeFiles/raster_test.dir/raster_test.cc.o"
  "CMakeFiles/raster_test.dir/raster_test.cc.o.d"
  "raster_test"
  "raster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
