# Empty compiler generated dependencies file for raster_test.
# This may be replaced when dependencies are built.
