
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/memory.cc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/core/memory.cc.o" "gcc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/core/memory.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/core/thread_pool.cc.o" "gcc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/core/thread_pool.cc.o.d"
  "/root/repo/src/tensor/device.cc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/tensor/device.cc.o" "gcc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/tensor/device.cc.o.d"
  "/root/repo/src/tensor/gemm.cc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm.cc.o" "gcc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm.cc.o.d"
  "/root/repo/src/tensor/gemm_ref.cc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm_ref.cc.o" "gcc" "tests/CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm_ref.cc.o.d"
  "/root/repo/tests/gemm_tsan_test.cc" "tests/CMakeFiles/gemm_tsan_test.dir/gemm_tsan_test.cc.o" "gcc" "tests/CMakeFiles/gemm_tsan_test.dir/gemm_tsan_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
