# Empty dependencies file for gemm_tsan_test.
# This may be replaced when dependencies are built.
