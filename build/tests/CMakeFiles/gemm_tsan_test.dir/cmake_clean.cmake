file(REMOVE_RECURSE
  "CMakeFiles/gemm_tsan_test.dir/__/src/core/memory.cc.o"
  "CMakeFiles/gemm_tsan_test.dir/__/src/core/memory.cc.o.d"
  "CMakeFiles/gemm_tsan_test.dir/__/src/core/thread_pool.cc.o"
  "CMakeFiles/gemm_tsan_test.dir/__/src/core/thread_pool.cc.o.d"
  "CMakeFiles/gemm_tsan_test.dir/__/src/tensor/device.cc.o"
  "CMakeFiles/gemm_tsan_test.dir/__/src/tensor/device.cc.o.d"
  "CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm.cc.o"
  "CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm.cc.o.d"
  "CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm_ref.cc.o"
  "CMakeFiles/gemm_tsan_test.dir/__/src/tensor/gemm_ref.cc.o.d"
  "CMakeFiles/gemm_tsan_test.dir/gemm_tsan_test.cc.o"
  "CMakeFiles/gemm_tsan_test.dir/gemm_tsan_test.cc.o.d"
  "gemm_tsan_test"
  "gemm_tsan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_tsan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
