file(REMOVE_RECURSE
  "libgeo_gradcheck.a"
)
