file(REMOVE_RECURSE
  "CMakeFiles/geo_gradcheck.dir/gradcheck.cc.o"
  "CMakeFiles/geo_gradcheck.dir/gradcheck.cc.o.d"
  "libgeo_gradcheck.a"
  "libgeo_gradcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
