# Empty dependencies file for geo_gradcheck.
# This may be replaced when dependencies are built.
