# Empty dependencies file for extensions2_test.
# This may be replaced when dependencies are built.
