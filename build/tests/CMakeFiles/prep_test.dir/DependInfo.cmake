
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prep_test.cc" "tests/CMakeFiles/prep_test.dir/prep_test.cc.o" "gcc" "tests/CMakeFiles/prep_test.dir/prep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prep/CMakeFiles/geo_prep.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/geo_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/geo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/geo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/df/CMakeFiles/geo_df.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/geo_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/geo_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/geo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/geo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
