file(REMOVE_RECURSE
  "CMakeFiles/prep_test.dir/prep_test.cc.o"
  "CMakeFiles/prep_test.dir/prep_test.cc.o.d"
  "prep_test"
  "prep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
