file(REMOVE_RECURSE
  "CMakeFiles/df_test.dir/df_test.cc.o"
  "CMakeFiles/df_test.dir/df_test.cc.o.d"
  "df_test"
  "df_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
