# Empty compiler generated dependencies file for df_test.
# This may be replaced when dependencies are built.
