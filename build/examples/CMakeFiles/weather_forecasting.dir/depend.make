# Empty dependencies file for weather_forecasting.
# This may be replaced when dependencies are built.
