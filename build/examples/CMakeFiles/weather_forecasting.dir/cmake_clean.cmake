file(REMOVE_RECURSE
  "CMakeFiles/weather_forecasting.dir/weather_forecasting.cpp.o"
  "CMakeFiles/weather_forecasting.dir/weather_forecasting.cpp.o.d"
  "weather_forecasting"
  "weather_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
