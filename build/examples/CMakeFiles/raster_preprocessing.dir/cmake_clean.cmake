file(REMOVE_RECURSE
  "CMakeFiles/raster_preprocessing.dir/raster_preprocessing.cpp.o"
  "CMakeFiles/raster_preprocessing.dir/raster_preprocessing.cpp.o.d"
  "raster_preprocessing"
  "raster_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
