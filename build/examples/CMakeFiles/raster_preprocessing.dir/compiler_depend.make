# Empty compiler generated dependencies file for raster_preprocessing.
# This may be replaced when dependencies are built.
