# Empty dependencies file for taxi_trip_pipeline.
# This may be replaced when dependencies are built.
