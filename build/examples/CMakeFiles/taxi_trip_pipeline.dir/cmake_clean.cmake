file(REMOVE_RECURSE
  "CMakeFiles/taxi_trip_pipeline.dir/taxi_trip_pipeline.cpp.o"
  "CMakeFiles/taxi_trip_pipeline.dir/taxi_trip_pipeline.cpp.o.d"
  "taxi_trip_pipeline"
  "taxi_trip_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_trip_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
