# Empty compiler generated dependencies file for feature_classification.
# This may be replaced when dependencies are built.
