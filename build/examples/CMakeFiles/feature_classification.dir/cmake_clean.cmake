file(REMOVE_RECURSE
  "CMakeFiles/feature_classification.dir/feature_classification.cpp.o"
  "CMakeFiles/feature_classification.dir/feature_classification.cpp.o.d"
  "feature_classification"
  "feature_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
