// Reproduces Table VI: classification accuracy of DeepSAT-V2 and
// SatCNN on EuroSAT / SAT-6, and segmentation accuracy of UNet, FCN,
// and UNet++ on 38-Cloud. Synthetic datasets with the originals'
// shapes; DeepSAT-V2 gets the handcrafted spectral + GLCM features.
// Expected shape (paper): the two classifiers are comparable on both
// datasets; UNet++ is the most accurate segmenter.
//
// Flags: --iterations=N (default 2), --scale=paper.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "data/metrics.h"
#include "datasets/benchmarks.h"
#include "models/raster_models.h"
#include "models/segmentation_models.h"
#include "models/trainer.h"

namespace geotorch::bench {
namespace {

namespace ds = ::geotorch::datasets;

struct ClsSpec {
  const char* dataset;
  int64_t n;
  int64_t size;
  int64_t bands;
  int64_t classes;
  std::function<ds::RasterClassificationDataset(ds::RasterDatasetOptions,
                                                uint64_t)>
      make;
};

data::RunStats RunClassifier(const char* model_name, const ClsSpec& spec,
                             const models::TrainConfig& tc, int iterations) {
  data::RunStats stats;
  for (int it = 0; it < iterations; ++it) {
    ds::RasterDatasetOptions options;
    const bool deepsat = std::string(model_name) == "DeepSAT V2";
    options.include_additional_features = deepsat;
    ds::RasterClassificationDataset dataset =
        spec.make(options, static_cast<uint64_t>(it));
    data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
    data::SubsetDataset train(&dataset, split.train);
    data::SubsetDataset val(&dataset, split.val);
    data::SubsetDataset test(&dataset, split.test);

    models::RasterModelConfig mc;
    mc.in_channels = spec.bands;
    mc.in_height = spec.size;
    mc.in_width = spec.size;
    mc.num_classes = spec.classes;
    mc.num_filtered_features =
        deepsat ? dataset.num_additional_features() : 0;
    mc.base_filters = 8;
    mc.seed = 500 + it;

    std::unique_ptr<models::RasterClassifier> model;
    if (deepsat) {
      model = std::make_unique<models::DeepSatV2>(mc);
    } else {
      model = std::make_unique<models::SatCnn>(mc);
    }
    models::TrainConfig run_tc = tc;
    run_tc.seed = 31 + it;
    models::ClassificationResult result =
        models::TrainClassifier(*model, train, val, test, run_tc);
    stats.Add(100.0 * result.accuracy);
  }
  return stats;
}

data::RunStats RunSegmenter(const char* model_name, int64_t n, int64_t size,
                            const models::TrainConfig& tc, int iterations) {
  data::RunStats stats;
  for (int it = 0; it < iterations; ++it) {
    ds::RasterSegmentationDataset dataset =
        ds::MakeCloud38(n, size, {}, static_cast<uint64_t>(it));
    data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
    data::SubsetDataset train(&dataset, split.train);
    data::SubsetDataset val(&dataset, split.val);
    data::SubsetDataset test(&dataset, split.test);

    models::SegModelConfig mc;
    mc.in_channels = 4;
    mc.num_classes = 2;
    mc.base_filters = 8;
    mc.seed = 800 + it;

    std::unique_ptr<nn::UnaryModule> model;
    const std::string name = model_name;
    if (name == "UNet") {
      model = std::make_unique<models::UNet>(mc);
    } else if (name == "FCN") {
      model = std::make_unique<models::Fcn>(mc);
    } else {
      model = std::make_unique<models::UNetPlusPlus>(mc);
    }
    models::TrainConfig run_tc = tc;
    run_tc.seed = 61 + it;
    models::ClassificationResult result =
        models::TrainSegmenter(*model, train, val, test, run_tc);
    stats.Add(100.0 * result.accuracy);
  }
  return stats;
}

void Run(const BenchArgs& args) {
  const int64_t n_eurosat = args.paper_scale ? 2000 : 300;
  const int64_t n_sat6 = args.paper_scale ? 3000 : 500;
  const int64_t n_cloud = args.paper_scale ? 300 : 48;
  const int64_t cloud_size = args.paper_scale ? 128 : 32;

  ClsSpec eurosat{"EuroSAT", n_eurosat, 64, 13, 10,
                  [n_eurosat](ds::RasterDatasetOptions o, uint64_t s) {
                    return ds::MakeEuroSat(n_eurosat, std::move(o), s);
                  }};
  ClsSpec sat6{"SAT6", n_sat6, 28, 4, 6,
               [n_sat6](ds::RasterDatasetOptions o, uint64_t s) {
                 return ds::MakeSat6(n_sat6, std::move(o), s);
               }};

  models::TrainConfig cls_tc;
  cls_tc.max_epochs = args.paper_scale ? 40 : 14;
  cls_tc.patience = 3;
  cls_tc.batch_size = 16;
  cls_tc.lr = 2e-3f;

  models::TrainConfig seg_tc = cls_tc;
  seg_tc.max_epochs = args.paper_scale ? 30 : 6;
  seg_tc.batch_size = 8;

  std::printf("TABLE VI: Accuracy of Raster Models on Satellite Image\n");
  std::printf("Classification and Segmentation (%d iteration(s))\n",
              args.iterations);
  PrintRule();
  std::printf("%-12s %-10s %-16s %-16s\n", "Model", "Dataset",
              "Application", "Accuracy");
  PrintRule();
  for (const char* model : {"DeepSAT V2", "SatCNN"}) {
    for (const ClsSpec* spec : {&eurosat, &sat6}) {
      data::RunStats stats =
          RunClassifier(model, *spec, cls_tc, args.iterations);
      std::printf("%-12s %-10s %-16s %s%%\n", model, spec->dataset,
                  "Classification",
                  PlusMinus(stats.mean(), stats.max_deviation()).c_str());
    }
  }
  for (const char* model : {"UNet", "FCN", "UNet++"}) {
    data::RunStats stats =
        RunSegmenter(model, n_cloud, cloud_size, seg_tc, args.iterations);
    std::printf("%-12s %-10s %-16s %s%%\n", model, "38-Cloud",
                "Segmentation",
                PlusMinus(stats.mean(), stats.max_deviation()).c_str());
  }
  PrintRule();
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
