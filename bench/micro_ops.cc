// Google-benchmark microbenchmarks of the kernels that dominate the
// end-to-end experiments: elementwise ops, GEMM, im2col convolution,
// GLCM extraction, STR-tree probes, and DataFrame group-by.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "df/dataframe.h"
#include "raster/glcm.h"
#include "spatial/strtree.h"
#include "tensor/conv.h"
#include "tensor/device.h"
#include "tensor/ops.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;

void BM_ElementwiseAdd(benchmark::State& state) {
  Rng rng(1);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseAdd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BroadcastChannelMul(benchmark::State& state) {
  Rng rng(2);
  ts::Tensor x = ts::Tensor::Randn({16, 32, 16, 16}, rng);
  ts::Tensor g = ts::Tensor::Randn({1, 32, 1, 1}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Mul(x, g));
  }
}
BENCHMARK(BM_BroadcastChannelMul);

void BM_MatMul(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  const int64_t hw = state.range(0);
  ts::Tensor x = ts::Tensor::Randn({8, 8, hw, hw}, rng);
  ts::Tensor w = ts::Tensor::Randn({16, 8, 3, 3}, rng, 0, 0.1f);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dForward(x, w, ts::Tensor(), spec));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(5);
  const int64_t hw = state.range(0);
  ts::Tensor x = ts::Tensor::Randn({8, 8, hw, hw}, rng);
  ts::Tensor w = ts::Tensor::Randn({16, 8, 3, 3}, rng, 0, 0.1f);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  ts::Tensor g = ts::Tensor::Randn({8, 16, hw, hw}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dBackward(g, x, w, false, spec));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(32);

void BM_GlcmFeatures(benchmark::State& state) {
  Rng rng(6);
  const int64_t size = state.range(0);
  raster::RasterImage img(size, size, 1);
  for (auto& v : img.data()) v = static_cast<float>(rng.Uniform(0, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster::GlcmFeatureVector(img, 0));
  }
}
BENCHMARK(BM_GlcmFeatures)->Arg(28)->Arg(64)->Arg(128);

void BM_StrTreeBuildAndProbe(benchmark::State& state) {
  Rng rng(7);
  const int64_t n = state.range(0);
  std::vector<spatial::StrTree::Entry> entries;
  for (int64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    entries.push_back({spatial::Envelope(x, y, x + 1, y + 1), i});
  }
  spatial::StrTree tree(entries);
  std::vector<spatial::Point> probes;
  for (int i = 0; i < 1000; ++i) {
    probes.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  for (auto _ : state) {
    int64_t hits = 0;
    for (const auto& p : probes) {
      tree.Visit(spatial::Envelope(p.x, p.y, p.x, p.y),
                 [&hits](int64_t) { ++hits; });
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StrTreeBuildAndProbe)->Arg(1000)->Arg(100000);

void BM_DataFrameGroupBy(benchmark::State& state) {
  Rng rng(8);
  const int64_t n = state.range(0);
  std::vector<int64_t> keys(n);
  std::vector<double> values(n);
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.UniformInt(0, 500);
    values[i] = rng.Uniform(0, 1);
  }
  df::DataFrame frame =
      df::DataFrame::FromColumns({{"k", df::Column::FromInt64s(keys)},
                                  {"v", df::Column::FromDoubles(values)}})
          .Repartition(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.GroupByAgg(
        {"k"}, {{df::AggKind::kCount, "", "n"},
                {df::AggKind::kSum, "v", "s"}}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataFrameGroupBy)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace geotorch

BENCHMARK_MAIN();
