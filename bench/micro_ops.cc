// Google-benchmark microbenchmarks of the kernels that dominate the
// end-to-end experiments: elementwise ops, GEMM, im2col convolution,
// GLCM extraction, STR-tree probes, and DataFrame group-by.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "core/stopwatch.h"
#include "models/raster_models.h"
#include "nn/precision.h"
#include "tensor/fusion.h"
#include "tensor/quant.h"

#include "bench/bench_util.h"
#include "core/rng.h"
#include "core/storage_pool.h"
#include "core/thread_pool.h"
#include "datasets/benchmarks.h"
#include "models/grid_models.h"
#include "models/trainer.h"
#include "df/dataframe.h"
#include "obs/obs.h"
#include "raster/glcm.h"
#include "spatial/strtree.h"
#include "tensor/conv.h"
#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;

void BM_ElementwiseAdd(benchmark::State& state) {
  Rng rng(1);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseAdd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BroadcastChannelMul(benchmark::State& state) {
  Rng rng(2);
  ts::Tensor x = ts::Tensor::Randn({16, 32, 16, 16}, rng);
  ts::Tensor g = ts::Tensor::Randn({1, 32, 1, 1}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Mul(x, g));
  }
}
BENCHMARK(BM_BroadcastChannelMul);

void BM_MatMul(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlockedSerial(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor c({n, n});
  ts::DeviceGuard guard(ts::Device::kSerial);
  for (auto _ : state) {
    ts::Gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedSerial)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmBlockedParallel(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor c({n, n});
  ts::DeviceGuard guard(ts::Device::kParallel);
  for (auto _ : state) {
    ts::Gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedParallel)->Arg(256)->Arg(512);

void BM_GemmReference(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor c({n, n});
  for (auto _ : state) {
    ts::ReferenceGemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  const int64_t hw = state.range(0);
  ts::Tensor x = ts::Tensor::Randn({8, 8, hw, hw}, rng);
  ts::Tensor w = ts::Tensor::Randn({16, 8, 3, 3}, rng, 0, 0.1f);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dForward(x, w, ts::Tensor(), spec));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(5);
  const int64_t hw = state.range(0);
  ts::Tensor x = ts::Tensor::Randn({8, 8, hw, hw}, rng);
  ts::Tensor w = ts::Tensor::Randn({16, 8, 3, 3}, rng, 0, 0.1f);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  ts::Tensor g = ts::Tensor::Randn({8, 16, hw, hw}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dBackward(g, x, w, false, spec));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(32);

void BM_GlcmFeatures(benchmark::State& state) {
  Rng rng(6);
  const int64_t size = state.range(0);
  raster::RasterImage img(size, size, 1);
  for (auto& v : img.data()) v = static_cast<float>(rng.Uniform(0, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster::GlcmFeatureVector(img, 0));
  }
}
BENCHMARK(BM_GlcmFeatures)->Arg(28)->Arg(64)->Arg(128);

void BM_StrTreeBuildAndProbe(benchmark::State& state) {
  Rng rng(7);
  const int64_t n = state.range(0);
  std::vector<spatial::StrTree::Entry> entries;
  for (int64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    entries.push_back({spatial::Envelope(x, y, x + 1, y + 1), i});
  }
  spatial::StrTree tree(entries);
  std::vector<spatial::Point> probes;
  for (int i = 0; i < 1000; ++i) {
    probes.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  for (auto _ : state) {
    int64_t hits = 0;
    for (const auto& p : probes) {
      tree.Visit(spatial::Envelope(p.x, p.y, p.x, p.y),
                 [&hits](int64_t) { ++hits; });
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StrTreeBuildAndProbe)->Arg(1000)->Arg(100000);

void BM_DataFrameGroupBy(benchmark::State& state) {
  Rng rng(8);
  const int64_t n = state.range(0);
  std::vector<int64_t> keys(n);
  std::vector<double> values(n);
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.UniformInt(0, 500);
    values[i] = rng.Uniform(0, 1);
  }
  df::DataFrame frame =
      df::DataFrame::FromColumns({{"k", df::Column::FromInt64s(keys)},
                                  {"v", df::Column::FromDoubles(values)}})
          .Repartition(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.GroupByAgg(
        {"k"}, {{df::AggKind::kCount, "", "n"},
                {df::AggKind::kSum, "v", "s"}}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataFrameGroupBy)->Arg(100000)->Arg(1000000);

// ---------------------------------------------------------------------------
// GEMM sweep: naive baseline vs blocked kernel (serial and parallel),
// written to a JSON report. Invoked by --gemm_json=PATH; sizes cover the
// acceptance shape (512^3) plus rectangular shapes taken from the paper
// models' hot GEMMs (conv im2col products and linear/RNN projections).
// ---------------------------------------------------------------------------

struct GemmShape {
  const char* label;
  int64_t m, k, n;
};

// Times `fn` (one full GEMM) and returns best-of-reps GFLOP/s. Repeats
// until ~200 ms of accumulated runtime so fast shapes are not in the
// timer noise.
template <typename Fn>
double MeasureGflops(int64_t m, int64_t k, int64_t n, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  const double flop = 2.0 * static_cast<double>(m) * k * n;
  double best_sec = 1e30;
  double total_sec = 0.0;
  int reps = 0;
  while ((total_sec < 0.2 || reps < 3) && reps < 200) {
    const auto t0 = Clock::now();
    fn();
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    best_sec = std::min(best_sec, sec);
    total_sec += sec;
    ++reps;
  }
  return flop / best_sec * 1e-9;
}

int RunGemmSweep(const std::string& json_path, bool smoke) {
  // Fail before measuring, not after: a full sweep takes minutes.
  bench::BenchJsonWriter json(json_path, "gemm");
  if (!json.ok()) return 1;
  // Full sizes: 512^3 is the acceptance shape; 256^3 sits near the L2
  // capacity knee; the rectangular shapes are im2col products
  // (F x C*KH*KW @ C*KH*KW x OH*OW) and batched linear projections from
  // the paper's models (SatCNN/DeepSatV2 convs, LSTM gates).
  std::vector<GemmShape> shapes;
  if (smoke) {
    shapes = {
        {"square_64", 64, 64, 64},
        {"conv_tiny", 16, 72, 256},
    };
  } else {
    shapes = {
        {"square_256", 256, 256, 256},
        {"square_512", 512, 512, 512},
        {"conv_first_layer", 32, 117, 4096},
        {"conv_mid_layer", 64, 576, 1024},
        {"conv_backward_gw", 576, 4096, 64},
        {"linear_head", 64, 1024, 128},
        {"lstm_gates", 32, 256, 1024},
    };
  }

  Rng rng(11);
  std::string rows;
  std::printf("%-18s %10s %10s %10s %8s %8s\n", "shape", "naive", "serial",
              "parallel", "ser_x", "par_x");
  for (const GemmShape& s : shapes) {
    ts::Tensor a = ts::Tensor::Randn({s.m, s.k}, rng);
    ts::Tensor b = ts::Tensor::Randn({s.k, s.n}, rng);
    ts::Tensor c({s.m, s.n});

    const double naive = MeasureGflops(s.m, s.k, s.n, [&] {
      ts::ReferenceGemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    });
    double serial = 0.0;
    {
      ts::DeviceGuard guard(ts::Device::kSerial);
      serial = MeasureGflops(s.m, s.k, s.n, [&] {
        ts::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
      });
    }
    double parallel = 0.0;
    {
      ts::DeviceGuard guard(ts::Device::kParallel);
      parallel = MeasureGflops(s.m, s.k, s.n, [&] {
        ts::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
      });
    }

    std::printf("%-18s %10.2f %10.2f %10.2f %7.2fx %7.2fx\n", s.label, naive,
                serial, parallel, serial / naive, parallel / naive);

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"label\": \"%s\", \"m\": %lld, \"k\": %lld, "
                  "\"n\": %lld, \"naive_gflops\": %.3f, "
                  "\"blocked_serial_gflops\": %.3f, "
                  "\"blocked_parallel_gflops\": %.3f, "
                  "\"serial_speedup\": %.3f, \"parallel_speedup\": %.3f}",
                  s.label, static_cast<long long>(s.m),
                  static_cast<long long>(s.k), static_cast<long long>(s.n),
                  naive, serial, parallel, serial / naive, parallel / naive);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }

  std::fprintf(json.stream(),
               "  \"flop_formula\": \"2*m*k*n, best-of-reps timing\",\n"
               "  \"pool_threads\": %d,\n  \"smoke\": %s,\n"
               "  \"shapes\": [\n%s\n  ],\n",
               ThreadPool::Global().num_threads(), smoke ? "true" : "false",
               rows.c_str());
  json.Finish();
  return 0;
}

// ---------------------------------------------------------------------------
// Observability overhead A/B: the same GEMM workload with the
// instrumentation runtime-enabled vs runtime-disabled. The disabled
// path is one relaxed atomic load per instrumented site, so it stands
// in for a GEOTORCH_OBS=OFF compile-out build; the acceptance budget
// for the delta is <2%. Invoked by --obs_ab[=PATH] (PATH gets a small
// JSON report).
// ---------------------------------------------------------------------------

int RunObsAb(const std::string& json_path, bool smoke) {
  const std::vector<GemmShape> shapes =
      smoke ? std::vector<GemmShape>{{"square_128", 128, 128, 128}}
            : std::vector<GemmShape>{{"square_256", 256, 256, 256},
                                     {"conv_mid_layer", 64, 576, 1024}};
  Rng rng(13);
  std::string rows;
  double worst_delta_pct = 0.0;
  std::printf("%-18s %12s %12s %9s\n", "shape", "obs_off", "obs_on",
              "delta");
  for (const GemmShape& s : shapes) {
    ts::Tensor a = ts::Tensor::Randn({s.m, s.k}, rng);
    ts::Tensor b = ts::Tensor::Randn({s.k, s.n}, rng);
    ts::Tensor c({s.m, s.n});
    const auto run = [&] {
      ts::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    };
    // Interleave the two arms so thermal / frequency drift hits both.
    double off = 0.0;
    double on = 0.0;
    for (int round = 0; round < 3; ++round) {
      obs::SetEnabled(false);
      off = std::max(off, MeasureGflops(s.m, s.k, s.n, run));
      obs::SetEnabled(true);
      on = std::max(on, MeasureGflops(s.m, s.k, s.n, run));
    }
    const double delta_pct = (off - on) / off * 100.0;
    worst_delta_pct = std::max(worst_delta_pct, delta_pct);
    std::printf("%-18s %10.2f %10.2f %+8.2f%%\n", s.label, off, on,
                delta_pct);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"label\": \"%s\", \"obs_off_gflops\": %.3f, "
                  "\"obs_on_gflops\": %.3f, \"delta_pct\": %.3f}",
                  s.label, off, on, delta_pct);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }
  std::printf("worst overhead: %.2f%% (budget 2%%)\n", worst_delta_pct);
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"obs_ab\",\n"
                 "  \"worst_delta_pct\": %.3f,\n  \"budget_pct\": 2.0,\n"
                 "  \"shapes\": [\n%s\n  ]\n}\n",
                 worst_delta_pct, rows.c_str());
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Allocation A/B: one epoch of the Table VII Periodical-CNN training
// loop (Temperature, small scale, batch 16) with the storage pool
// enabled vs disabled. Reports epoch time for both arms plus the pool
// hit-rate of the enabled arm, and writes BENCH_alloc.json. The
// acceptance gate is a >= 90% hit-rate after the warm-up epoch and a
// measurable epoch-time reduction over the pool-off arm.
// ---------------------------------------------------------------------------

int RunAllocAb(const std::string& json_path, bool smoke) {
  namespace ds = ::geotorch::datasets;
  const int64_t steps = smoke ? 120 : 400;
  ds::GridDataset dataset = ds::MakeTemperature(steps, 16, 32, 3);
  dataset.MinMaxNormalize();
  dataset.SetPeriodicalRepresentation(3, 2, 1);

  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 16;
  mc.width = 32;
  mc.hidden = 16;
  models::PeriodicalCnn model(mc);
  models::TrainConfig tc;
  tc.batch_size = 16;

  StoragePool& pool = StoragePool::Global();
  const bool was_enabled = StoragePool::Enabled();

  // Warm-up epoch fills the free lists (and JITs page faults, caches).
  StoragePool::SetEnabled(true);
  models::TimeOneEpochGrid(model, dataset, tc);

  const int kReps = smoke ? 1 : 3;
  double on_secs = 1e30;
  double off_secs = 1e30;
  double hit_rate = 0.0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t bytes_recycled = 0;
  // Interleave arms so thermal / frequency drift hits both equally.
  for (int rep = 0; rep < kReps; ++rep) {
    StoragePool::SetEnabled(true);
    pool.ResetStats();
    obs::Reset();
    on_secs = std::min(on_secs, models::TimeOneEpochGrid(model, dataset, tc));
    const StoragePool::Stats stats = pool.GetStats();
    if (stats.hits + stats.misses > 0) {
      hits = stats.hits;
      misses = stats.misses;
      bytes_recycled = stats.bytes_recycled;
      hit_rate = static_cast<double>(stats.hits) /
                 static_cast<double>(stats.hits + stats.misses);
    }

    StoragePool::SetEnabled(false);
    pool.Trim();  // the off arm must not benefit from warm lists
    off_secs =
        std::min(off_secs, models::TimeOneEpochGrid(model, dataset, tc));
  }
  StoragePool::SetEnabled(was_enabled);

  const double speedup_pct = (off_secs - on_secs) / off_secs * 100.0;
  std::printf("alloc A/B (Periodical CNN, Temperature %lldx16x32, "
              "batch %d):\n",
              static_cast<long long>(steps), static_cast<int>(tc.batch_size));
  std::printf("  pool on : %.3f s/epoch (hit-rate %.1f%%, %lld hits, "
              "%lld misses, %.1f MiB recycled)\n",
              on_secs, 100.0 * hit_rate, static_cast<long long>(hits),
              static_cast<long long>(misses),
              static_cast<double>(bytes_recycled) / (1024.0 * 1024.0));
  std::printf("  pool off: %.3f s/epoch\n", off_secs);
  std::printf("  epoch-time reduction: %.1f%% (hit-rate gate: 90%%)\n",
              speedup_pct);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"alloc_ab\",\n"
                 "  \"config\": \"table7 Periodical CNN, Temperature "
                 "%lldx16x32, batch %d\",\n"
                 "  \"pool_on_epoch_secs\": %.4f,\n"
                 "  \"pool_off_epoch_secs\": %.4f,\n"
                 "  \"epoch_time_reduction_pct\": %.2f,\n"
                 "  \"pool_hit_rate\": %.4f,\n"
                 "  \"pool_hits\": %lld,\n  \"pool_misses\": %lld,\n"
                 "  \"bytes_recycled\": %lld,\n"
                 "  \"hit_rate_gate\": 0.9\n}\n",
                 static_cast<long long>(steps),
                 static_cast<int>(tc.batch_size), on_secs,
                 off_secs, speedup_pct, hit_rate,
                 static_cast<long long>(hits),
                 static_cast<long long>(misses),
                 static_cast<long long>(bytes_recycled));
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return hit_rate >= 0.9 ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Fused eval-path A/B (DESIGN.md §13): the fused conv entry points
// (bias+activation GEMM epilogues, implicit-im2col / direct kernels,
// 1x1 bypass) against the unfused Conv2dForward* + separate bias/relu
// passes, per precision, on the conv shapes SatCNN and DeepSAT actually
// run — plus a model-level SatCNN eval forward toggling
// ts::SetFusionEnabled. Invoked by --fusion_ab[=PATH]; the acceptance
// gate is the batch-1 f32 SatCNN speedup (>= 1.3x).
// ---------------------------------------------------------------------------

struct FusionOpShape {
  const char* name;
  int64_t c, f, hw, k, stride, pad;
};

template <typename Fn>
double TimeBestUs(Fn&& fn, int reps, int blocks) {
  fn();
  fn();  // warm caches, lazy workspaces, folded snapshots
  double best = 1e30;
  for (int b = 0; b < blocks; ++b) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, sw.ElapsedSeconds() * 1e6 / reps);
  }
  return best;
}

int RunFusionAb(const std::string& json_path, bool smoke) {
  namespace ag = ::geotorch::autograd;
  ts::DeviceGuard device(ts::Device::kParallel);
  const bool fusion_was = ts::FusionEnabled();

  static const FusionOpShape kShapes[] = {
      {"satcnn_conv1a", 4, 16, 28, 3, 1, 1},
      {"satcnn_conv1b", 16, 16, 28, 3, 1, 1},
      {"satcnn_conv2a", 16, 32, 14, 3, 1, 1},
      {"satcnn_conv2b", 32, 32, 14, 3, 1, 1},
      {"satcnn_conv3", 32, 32, 7, 3, 1, 1},
      {"deepsat_conv1", 4, 64, 28, 3, 1, 1},
      {"pointwise_1x1", 32, 16, 14, 1, 1, 0},
  };
  const int n_shapes =
      smoke ? 2 : static_cast<int>(sizeof(kShapes) / sizeof(kShapes[0]));
  const int64_t batch = smoke ? 2 : 4;
  const int op_reps = smoke ? 5 : 100;
  const int blocks = smoke ? 1 : 3;

  // us[precision][0]=unfused, [1]=fused; precision 0=f32 1=bf16 2=int8.
  std::vector<std::array<std::array<double, 2>, 3>> op_us(n_shapes);

  std::printf("fusion A/B, op level (batch %lld, best of %d x %d reps):\n",
              static_cast<long long>(batch), blocks, op_reps);
  std::printf("  %-14s %9s %9s %6s | %9s %6s | %9s %6s\n", "shape",
              "f32 unf", "f32 fus", "x", "bf16 fus", "x", "int8 fus", "x");
  for (int s = 0; s < n_shapes; ++s) {
    const FusionOpShape& sh = kShapes[s];
    Rng rng(40 + static_cast<uint64_t>(s));
    const ts::Tensor x =
        ts::Tensor::Randn({batch, sh.c, sh.hw, sh.hw}, rng);
    const ts::Tensor w =
        ts::Tensor::Randn({sh.f, sh.c, sh.k, sh.k}, rng, 0.0f, 0.2f);
    const ts::Tensor bias = ts::Tensor::Randn({sh.f}, rng, 0.0f, 0.1f);
    const ts::ConvSpec spec{sh.stride, sh.pad};
    const int64_t ck = sh.c * sh.k * sh.k;
    std::vector<uint16_t> w_bf16(static_cast<size_t>(w.numel()));
    ts::ConvertToBf16(w.data(), w_bf16.data(), w.numel());
    std::vector<int8_t> w_q(static_cast<size_t>(w.numel()));
    std::vector<float> w_scales(static_cast<size_t>(sh.f));
    ts::QuantizeRowsInt8(w.data(), sh.f, ck, w_q.data(), w_scales.data());

    op_us[s][0][0] = TimeBestUs(
        [&] { (void)ts::Relu(ts::Conv2dForward(x, w, bias, spec)); },
        op_reps, blocks);
    op_us[s][0][1] = TimeBestUs(
        [&] {
          (void)ts::Conv2dForwardFused(x, w, bias, spec,
                                       ts::EpilogueAct::kRelu, 0.01f);
        },
        op_reps, blocks);
    op_us[s][1][0] = TimeBestUs(
        [&] {
          (void)ts::Relu(ts::Conv2dForwardBf16(x, w_bf16.data(), sh.f, sh.c,
                                               sh.k, sh.k, bias, spec));
        },
        op_reps, blocks);
    op_us[s][1][1] = TimeBestUs(
        [&] {
          (void)ts::Conv2dForwardFusedBf16(x, w_bf16.data(), sh.f, sh.c,
                                           sh.k, sh.k, bias, spec,
                                           ts::EpilogueAct::kRelu, 0.01f);
        },
        op_reps, blocks);
    op_us[s][2][0] = TimeBestUs(
        [&] {
          (void)ts::Relu(ts::Conv2dForwardInt8(x, w_q.data(),
                                               w_scales.data(), sh.f, sh.c,
                                               sh.k, sh.k, 0.0f, bias, spec));
        },
        op_reps, blocks);
    op_us[s][2][1] = TimeBestUs(
        [&] {
          (void)ts::Conv2dForwardFusedInt8(x, w_q.data(), w_scales.data(),
                                           sh.f, sh.c, sh.k, sh.k, 0.0f,
                                           bias, spec, ts::EpilogueAct::kRelu,
                                           0.01f);
        },
        op_reps, blocks);
    std::printf(
        "  %-14s %9.1f %9.1f %5.2fx | %9.1f %5.2fx | %9.1f %5.2fx\n",
        sh.name, op_us[s][0][0], op_us[s][0][1],
        op_us[s][0][0] / op_us[s][0][1], op_us[s][1][1],
        op_us[s][1][0] / op_us[s][1][1], op_us[s][2][1],
        op_us[s][2][0] / op_us[s][2][1]);
  }

  // Model level: the acceptance shape — SatCNN eval forward, fused vs
  // unfused, per precision. int8 needs one calibration pass first so
  // the activation scales exist before either arm runs.
  models::RasterModelConfig cfg;
  cfg.in_channels = 4;
  cfg.in_height = 28;
  cfg.in_width = 28;
  cfg.num_classes = 6;
  cfg.base_filters = 16;
  cfg.seed = 17;
  models::SatCnn model(cfg);
  model.SetTraining(false);
  {
    ag::NoGradGuard no_grad;
    Rng rng(7);
    model.SetCalibrating(true);
    (void)model.Forward(
        ag::Variable(ts::Tensor::Randn({8, 4, 28, 28}, rng)), ag::Variable());
    model.SetCalibrating(false);
  }

  static const char* kPrecNames[] = {"f32", "bf16", "int8"};
  static const nn::Precision kPrecs[] = {
      nn::Precision::kF32, nn::Precision::kBf16, nn::Precision::kInt8};
  const int64_t batches[] = {1, 8};
  // model_us[precision][batch index][0]=unfused, [1]=fused
  double model_us[3][2][2] = {};
  std::printf("fusion A/B, SatCNN eval forward (4ch 28x28, base 16):\n");
  for (int p = 0; p < 3; ++p) {
    model.SetPrecision(kPrecs[p]);
    for (int bi = 0; bi < 2; ++bi) {
      Rng rng(90 + static_cast<uint64_t>(bi));
      const ts::Tensor xt =
          ts::Tensor::Randn({batches[bi], 4, 28, 28}, rng);
      for (int fused = 0; fused < 2; ++fused) {
        ts::SetFusionEnabled(fused == 1);
        ag::NoGradGuard no_grad;
        ag::Variable xv(xt);
        ag::Variable feat;
        const int reps = smoke ? 3 : (bi == 0 ? 300 : 120);
        model_us[p][bi][fused] = TimeBestUs(
            [&] { (void)model.Forward(xv, feat); }, reps, blocks);
      }
      std::printf("  %-5s batch %lld: unfused %8.1f us  fused %8.1f us"
                  "  (%.2fx)\n",
                  kPrecNames[p], static_cast<long long>(batches[bi]),
                  model_us[p][bi][0], model_us[p][bi][1],
                  model_us[p][bi][0] / model_us[p][bi][1]);
    }
  }
  model.SetPrecision(nn::Precision::kF32);
  ts::SetFusionEnabled(fusion_was);

  const double satcnn_f32_speedup = model_us[0][0][0] / model_us[0][0][1];
  std::printf("  satcnn_f32_speedup (batch 1): %.2fx (gate: 1.30x)\n",
              satcnn_f32_speedup);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"fusion_ab\",\n"
                 "  \"schema_version\": 2,\n"
                 "  \"config\": \"fused vs unfused eval conv, batch %lld op "
                 "level; SatCNN 4ch 28x28 base16 model level\",\n"
                 "  \"pool_threads\": %d,\n  \"smoke\": %s,\n"
                 "  \"conv_ops\": [\n",
                 static_cast<long long>(batch),
                 ThreadPool::Global().num_threads(), smoke ? "true" : "false");
    for (int s = 0; s < n_shapes; ++s) {
      const FusionOpShape& sh = kShapes[s];
      std::fprintf(
          out,
          "    {\"shape\": \"%s\", \"c\": %lld, \"f\": %lld, \"hw\": %lld, "
          "\"k\": %lld, \"stride\": %lld, \"pad\": %lld,\n"
          "     \"f32_unfused_us\": %.1f, \"f32_fused_us\": %.1f, "
          "\"f32_speedup\": %.3f,\n"
          "     \"bf16_unfused_us\": %.1f, \"bf16_fused_us\": %.1f, "
          "\"bf16_speedup\": %.3f,\n"
          "     \"int8_unfused_us\": %.1f, \"int8_fused_us\": %.1f, "
          "\"int8_speedup\": %.3f}%s\n",
          sh.name, static_cast<long long>(sh.c), static_cast<long long>(sh.f),
          static_cast<long long>(sh.hw), static_cast<long long>(sh.k),
          static_cast<long long>(sh.stride), static_cast<long long>(sh.pad),
          op_us[s][0][0], op_us[s][0][1], op_us[s][0][0] / op_us[s][0][1],
          op_us[s][1][0], op_us[s][1][1], op_us[s][1][0] / op_us[s][1][1],
          op_us[s][2][0], op_us[s][2][1], op_us[s][2][0] / op_us[s][2][1],
          s + 1 < n_shapes ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"model\": [\n");
    for (int p = 0; p < 3; ++p) {
      for (int bi = 0; bi < 2; ++bi) {
        std::fprintf(
            out,
            "    {\"model\": \"SatCNN\", \"precision\": \"%s\", "
            "\"batch\": %lld, \"unfused_us\": %.1f, \"fused_us\": %.1f, "
            "\"speedup\": %.3f}%s\n",
            kPrecNames[p], static_cast<long long>(batches[bi]),
            model_us[p][bi][0], model_us[p][bi][1],
            model_us[p][bi][0] / model_us[p][bi][1],
            (p == 2 && bi == 1) ? "" : ",");
      }
    }
    std::fprintf(out,
                 "  ],\n  \"summary\": {\n"
                 "    \"satcnn_f32_speedup\": %.3f,\n"
                 "    \"speedup_gate\": 1.3\n  }\n}\n",
                 satcnn_f32_speedup);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (smoke) return 0;
  return satcnn_f32_speedup >= 1.3 ? 0 : 2;
}

}  // namespace
}  // namespace geotorch

// Custom main: `--gemm_json=PATH [--gemm_smoke]` runs the GEMM sweep
// and writes the JSON report; `--obs_ab[=PATH]` measures observability
// overhead on the GEMM hot path; `--alloc_ab[=PATH]` A/B-tests the
// storage pool on the table7 epoch loop (default PATH
// BENCH_alloc.json, smoke-sized with --gemm_smoke);
// `--fusion_ab[=PATH]` A/B-tests the fused eval path (DESIGN.md §13)
// on SatCNN/DeepSAT conv shapes and the SatCNN model forward (default
// PATH BENCH_fusion.json); any other invocation behaves exactly
// like BENCHMARK_MAIN(). `--trace_json=PATH` additionally dumps the
// observability snapshot (counters, histograms, spans) after any mode.
int main(int argc, char** argv) {
  std::string gemm_json;
  std::string trace_json;
  std::string obs_ab_json;
  std::string alloc_ab_json = "BENCH_alloc.json";
  std::string fusion_ab_json = "BENCH_fusion.json";
  bool gemm_smoke = false;
  bool obs_ab = false;
  bool alloc_ab = false;
  bool fusion_ab = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gemm_json=", 12) == 0) {
      gemm_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--gemm_smoke") == 0) {
      gemm_smoke = true;
    } else if (std::strncmp(argv[i], "--trace_json=", 13) == 0) {
      trace_json = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--obs_ab=", 9) == 0) {
      obs_ab = true;
      obs_ab_json = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--obs_ab") == 0) {
      obs_ab = true;
    } else if (std::strncmp(argv[i], "--alloc_ab=", 11) == 0) {
      alloc_ab = true;
      alloc_ab_json = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--alloc_ab") == 0) {
      alloc_ab = true;
    } else if (std::strncmp(argv[i], "--fusion_ab=", 12) == 0) {
      fusion_ab = true;
      fusion_ab_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--fusion_ab") == 0) {
      fusion_ab = true;
    }
  }
  int rc = 0;
  if (fusion_ab) {
    rc = geotorch::RunFusionAb(fusion_ab_json, gemm_smoke);
  } else if (alloc_ab) {
    rc = geotorch::RunAllocAb(alloc_ab_json, gemm_smoke);
  } else if (obs_ab) {
    rc = geotorch::RunObsAb(obs_ab_json, gemm_smoke);
  } else if (!gemm_json.empty()) {
    rc = geotorch::RunGemmSweep(gemm_json, gemm_smoke);
  } else {
    // Strip --trace_json before handing argv to google-benchmark, which
    // rejects flags it does not know.
    std::vector<char*> bench_argv;
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--trace_json=", 13) != 0) {
        bench_argv.push_back(argv[i]);
      }
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!trace_json.empty()) {
    if (geotorch::obs::WriteJsonFile(trace_json)) {
      std::printf("wrote %s\n", trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
