// Google-benchmark microbenchmarks of the kernels that dominate the
// end-to-end experiments: elementwise ops, GEMM, im2col convolution,
// GLCM extraction, STR-tree probes, and DataFrame group-by.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/rng.h"
#include "core/storage_pool.h"
#include "core/thread_pool.h"
#include "datasets/benchmarks.h"
#include "models/grid_models.h"
#include "models/trainer.h"
#include "df/dataframe.h"
#include "obs/obs.h"
#include "raster/glcm.h"
#include "spatial/strtree.h"
#include "tensor/conv.h"
#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace geotorch {
namespace {

namespace ts = ::geotorch::tensor;

void BM_ElementwiseAdd(benchmark::State& state) {
  Rng rng(1);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseAdd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BroadcastChannelMul(benchmark::State& state) {
  Rng rng(2);
  ts::Tensor x = ts::Tensor::Randn({16, 32, 16, 16}, rng);
  ts::Tensor g = ts::Tensor::Randn({1, 32, 1, 1}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Mul(x, g));
  }
}
BENCHMARK(BM_BroadcastChannelMul);

void BM_MatMul(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlockedSerial(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor c({n, n});
  ts::DeviceGuard guard(ts::Device::kSerial);
  for (auto _ : state) {
    ts::Gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedSerial)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmBlockedParallel(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor c({n, n});
  ts::DeviceGuard guard(ts::Device::kParallel);
  for (auto _ : state) {
    ts::Gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedParallel)->Arg(256)->Arg(512);

void BM_GemmReference(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor b = ts::Tensor::Randn({n, n}, rng);
  ts::Tensor c({n, n});
  for (auto _ : state) {
    ts::ReferenceGemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  const int64_t hw = state.range(0);
  ts::Tensor x = ts::Tensor::Randn({8, 8, hw, hw}, rng);
  ts::Tensor w = ts::Tensor::Randn({16, 8, 3, 3}, rng, 0, 0.1f);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dForward(x, w, ts::Tensor(), spec));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(5);
  const int64_t hw = state.range(0);
  ts::Tensor x = ts::Tensor::Randn({8, 8, hw, hw}, rng);
  ts::Tensor w = ts::Tensor::Randn({16, 8, 3, 3}, rng, 0, 0.1f);
  ts::ConvSpec spec{.stride = 1, .padding = 1};
  ts::Tensor g = ts::Tensor::Randn({8, 16, hw, hw}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dBackward(g, x, w, false, spec));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(32);

void BM_GlcmFeatures(benchmark::State& state) {
  Rng rng(6);
  const int64_t size = state.range(0);
  raster::RasterImage img(size, size, 1);
  for (auto& v : img.data()) v = static_cast<float>(rng.Uniform(0, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster::GlcmFeatureVector(img, 0));
  }
}
BENCHMARK(BM_GlcmFeatures)->Arg(28)->Arg(64)->Arg(128);

void BM_StrTreeBuildAndProbe(benchmark::State& state) {
  Rng rng(7);
  const int64_t n = state.range(0);
  std::vector<spatial::StrTree::Entry> entries;
  for (int64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    entries.push_back({spatial::Envelope(x, y, x + 1, y + 1), i});
  }
  spatial::StrTree tree(entries);
  std::vector<spatial::Point> probes;
  for (int i = 0; i < 1000; ++i) {
    probes.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  for (auto _ : state) {
    int64_t hits = 0;
    for (const auto& p : probes) {
      tree.Visit(spatial::Envelope(p.x, p.y, p.x, p.y),
                 [&hits](int64_t) { ++hits; });
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StrTreeBuildAndProbe)->Arg(1000)->Arg(100000);

void BM_DataFrameGroupBy(benchmark::State& state) {
  Rng rng(8);
  const int64_t n = state.range(0);
  std::vector<int64_t> keys(n);
  std::vector<double> values(n);
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.UniformInt(0, 500);
    values[i] = rng.Uniform(0, 1);
  }
  df::DataFrame frame =
      df::DataFrame::FromColumns({{"k", df::Column::FromInt64s(keys)},
                                  {"v", df::Column::FromDoubles(values)}})
          .Repartition(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.GroupByAgg(
        {"k"}, {{df::AggKind::kCount, "", "n"},
                {df::AggKind::kSum, "v", "s"}}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataFrameGroupBy)->Arg(100000)->Arg(1000000);

// ---------------------------------------------------------------------------
// GEMM sweep: naive baseline vs blocked kernel (serial and parallel),
// written to a JSON report. Invoked by --gemm_json=PATH; sizes cover the
// acceptance shape (512^3) plus rectangular shapes taken from the paper
// models' hot GEMMs (conv im2col products and linear/RNN projections).
// ---------------------------------------------------------------------------

struct GemmShape {
  const char* label;
  int64_t m, k, n;
};

// Times `fn` (one full GEMM) and returns best-of-reps GFLOP/s. Repeats
// until ~200 ms of accumulated runtime so fast shapes are not in the
// timer noise.
template <typename Fn>
double MeasureGflops(int64_t m, int64_t k, int64_t n, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  const double flop = 2.0 * static_cast<double>(m) * k * n;
  double best_sec = 1e30;
  double total_sec = 0.0;
  int reps = 0;
  while ((total_sec < 0.2 || reps < 3) && reps < 200) {
    const auto t0 = Clock::now();
    fn();
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    best_sec = std::min(best_sec, sec);
    total_sec += sec;
    ++reps;
  }
  return flop / best_sec * 1e-9;
}

int RunGemmSweep(const std::string& json_path, bool smoke) {
  // Fail before measuring, not after: a full sweep takes minutes.
  bench::BenchJsonWriter json(json_path, "gemm");
  if (!json.ok()) return 1;
  // Full sizes: 512^3 is the acceptance shape; 256^3 sits near the L2
  // capacity knee; the rectangular shapes are im2col products
  // (F x C*KH*KW @ C*KH*KW x OH*OW) and batched linear projections from
  // the paper's models (SatCNN/DeepSatV2 convs, LSTM gates).
  std::vector<GemmShape> shapes;
  if (smoke) {
    shapes = {
        {"square_64", 64, 64, 64},
        {"conv_tiny", 16, 72, 256},
    };
  } else {
    shapes = {
        {"square_256", 256, 256, 256},
        {"square_512", 512, 512, 512},
        {"conv_first_layer", 32, 117, 4096},
        {"conv_mid_layer", 64, 576, 1024},
        {"conv_backward_gw", 576, 4096, 64},
        {"linear_head", 64, 1024, 128},
        {"lstm_gates", 32, 256, 1024},
    };
  }

  Rng rng(11);
  std::string rows;
  std::printf("%-18s %10s %10s %10s %8s %8s\n", "shape", "naive", "serial",
              "parallel", "ser_x", "par_x");
  for (const GemmShape& s : shapes) {
    ts::Tensor a = ts::Tensor::Randn({s.m, s.k}, rng);
    ts::Tensor b = ts::Tensor::Randn({s.k, s.n}, rng);
    ts::Tensor c({s.m, s.n});

    const double naive = MeasureGflops(s.m, s.k, s.n, [&] {
      ts::ReferenceGemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    });
    double serial = 0.0;
    {
      ts::DeviceGuard guard(ts::Device::kSerial);
      serial = MeasureGflops(s.m, s.k, s.n, [&] {
        ts::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
      });
    }
    double parallel = 0.0;
    {
      ts::DeviceGuard guard(ts::Device::kParallel);
      parallel = MeasureGflops(s.m, s.k, s.n, [&] {
        ts::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
      });
    }

    std::printf("%-18s %10.2f %10.2f %10.2f %7.2fx %7.2fx\n", s.label, naive,
                serial, parallel, serial / naive, parallel / naive);

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"label\": \"%s\", \"m\": %lld, \"k\": %lld, "
                  "\"n\": %lld, \"naive_gflops\": %.3f, "
                  "\"blocked_serial_gflops\": %.3f, "
                  "\"blocked_parallel_gflops\": %.3f, "
                  "\"serial_speedup\": %.3f, \"parallel_speedup\": %.3f}",
                  s.label, static_cast<long long>(s.m),
                  static_cast<long long>(s.k), static_cast<long long>(s.n),
                  naive, serial, parallel, serial / naive, parallel / naive);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }

  std::fprintf(json.stream(),
               "  \"flop_formula\": \"2*m*k*n, best-of-reps timing\",\n"
               "  \"pool_threads\": %d,\n  \"smoke\": %s,\n"
               "  \"shapes\": [\n%s\n  ],\n",
               ThreadPool::Global().num_threads(), smoke ? "true" : "false",
               rows.c_str());
  json.Finish();
  return 0;
}

// ---------------------------------------------------------------------------
// Observability overhead A/B: the same GEMM workload with the
// instrumentation runtime-enabled vs runtime-disabled. The disabled
// path is one relaxed atomic load per instrumented site, so it stands
// in for a GEOTORCH_OBS=OFF compile-out build; the acceptance budget
// for the delta is <2%. Invoked by --obs_ab[=PATH] (PATH gets a small
// JSON report).
// ---------------------------------------------------------------------------

int RunObsAb(const std::string& json_path, bool smoke) {
  const std::vector<GemmShape> shapes =
      smoke ? std::vector<GemmShape>{{"square_128", 128, 128, 128}}
            : std::vector<GemmShape>{{"square_256", 256, 256, 256},
                                     {"conv_mid_layer", 64, 576, 1024}};
  Rng rng(13);
  std::string rows;
  double worst_delta_pct = 0.0;
  std::printf("%-18s %12s %12s %9s\n", "shape", "obs_off", "obs_on",
              "delta");
  for (const GemmShape& s : shapes) {
    ts::Tensor a = ts::Tensor::Randn({s.m, s.k}, rng);
    ts::Tensor b = ts::Tensor::Randn({s.k, s.n}, rng);
    ts::Tensor c({s.m, s.n});
    const auto run = [&] {
      ts::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    };
    // Interleave the two arms so thermal / frequency drift hits both.
    double off = 0.0;
    double on = 0.0;
    for (int round = 0; round < 3; ++round) {
      obs::SetEnabled(false);
      off = std::max(off, MeasureGflops(s.m, s.k, s.n, run));
      obs::SetEnabled(true);
      on = std::max(on, MeasureGflops(s.m, s.k, s.n, run));
    }
    const double delta_pct = (off - on) / off * 100.0;
    worst_delta_pct = std::max(worst_delta_pct, delta_pct);
    std::printf("%-18s %10.2f %10.2f %+8.2f%%\n", s.label, off, on,
                delta_pct);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"label\": \"%s\", \"obs_off_gflops\": %.3f, "
                  "\"obs_on_gflops\": %.3f, \"delta_pct\": %.3f}",
                  s.label, off, on, delta_pct);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }
  std::printf("worst overhead: %.2f%% (budget 2%%)\n", worst_delta_pct);
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"obs_ab\",\n"
                 "  \"worst_delta_pct\": %.3f,\n  \"budget_pct\": 2.0,\n"
                 "  \"shapes\": [\n%s\n  ]\n}\n",
                 worst_delta_pct, rows.c_str());
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Allocation A/B: one epoch of the Table VII Periodical-CNN training
// loop (Temperature, small scale, batch 16) with the storage pool
// enabled vs disabled. Reports epoch time for both arms plus the pool
// hit-rate of the enabled arm, and writes BENCH_alloc.json. The
// acceptance gate is a >= 90% hit-rate after the warm-up epoch and a
// measurable epoch-time reduction over the pool-off arm.
// ---------------------------------------------------------------------------

int RunAllocAb(const std::string& json_path, bool smoke) {
  namespace ds = ::geotorch::datasets;
  const int64_t steps = smoke ? 120 : 400;
  ds::GridDataset dataset = ds::MakeTemperature(steps, 16, 32, 3);
  dataset.MinMaxNormalize();
  dataset.SetPeriodicalRepresentation(3, 2, 1);

  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 16;
  mc.width = 32;
  mc.hidden = 16;
  models::PeriodicalCnn model(mc);
  models::TrainConfig tc;
  tc.batch_size = 16;

  StoragePool& pool = StoragePool::Global();
  const bool was_enabled = StoragePool::Enabled();

  // Warm-up epoch fills the free lists (and JITs page faults, caches).
  StoragePool::SetEnabled(true);
  models::TimeOneEpochGrid(model, dataset, tc);

  const int kReps = smoke ? 1 : 3;
  double on_secs = 1e30;
  double off_secs = 1e30;
  double hit_rate = 0.0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t bytes_recycled = 0;
  // Interleave arms so thermal / frequency drift hits both equally.
  for (int rep = 0; rep < kReps; ++rep) {
    StoragePool::SetEnabled(true);
    pool.ResetStats();
    obs::Reset();
    on_secs = std::min(on_secs, models::TimeOneEpochGrid(model, dataset, tc));
    const StoragePool::Stats stats = pool.GetStats();
    if (stats.hits + stats.misses > 0) {
      hits = stats.hits;
      misses = stats.misses;
      bytes_recycled = stats.bytes_recycled;
      hit_rate = static_cast<double>(stats.hits) /
                 static_cast<double>(stats.hits + stats.misses);
    }

    StoragePool::SetEnabled(false);
    pool.Trim();  // the off arm must not benefit from warm lists
    off_secs =
        std::min(off_secs, models::TimeOneEpochGrid(model, dataset, tc));
  }
  StoragePool::SetEnabled(was_enabled);

  const double speedup_pct = (off_secs - on_secs) / off_secs * 100.0;
  std::printf("alloc A/B (Periodical CNN, Temperature %lldx16x32, "
              "batch %d):\n",
              static_cast<long long>(steps), static_cast<int>(tc.batch_size));
  std::printf("  pool on : %.3f s/epoch (hit-rate %.1f%%, %lld hits, "
              "%lld misses, %.1f MiB recycled)\n",
              on_secs, 100.0 * hit_rate, static_cast<long long>(hits),
              static_cast<long long>(misses),
              static_cast<double>(bytes_recycled) / (1024.0 * 1024.0));
  std::printf("  pool off: %.3f s/epoch\n", off_secs);
  std::printf("  epoch-time reduction: %.1f%% (hit-rate gate: 90%%)\n",
              speedup_pct);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"alloc_ab\",\n"
                 "  \"config\": \"table7 Periodical CNN, Temperature "
                 "%lldx16x32, batch %d\",\n"
                 "  \"pool_on_epoch_secs\": %.4f,\n"
                 "  \"pool_off_epoch_secs\": %.4f,\n"
                 "  \"epoch_time_reduction_pct\": %.2f,\n"
                 "  \"pool_hit_rate\": %.4f,\n"
                 "  \"pool_hits\": %lld,\n  \"pool_misses\": %lld,\n"
                 "  \"bytes_recycled\": %lld,\n"
                 "  \"hit_rate_gate\": 0.9\n}\n",
                 static_cast<long long>(steps),
                 static_cast<int>(tc.batch_size), on_secs,
                 off_secs, speedup_pct, hit_rate,
                 static_cast<long long>(hits),
                 static_cast<long long>(misses),
                 static_cast<long long>(bytes_recycled));
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return hit_rate >= 0.9 ? 0 : 2;
}

}  // namespace
}  // namespace geotorch

// Custom main: `--gemm_json=PATH [--gemm_smoke]` runs the GEMM sweep
// and writes the JSON report; `--obs_ab[=PATH]` measures observability
// overhead on the GEMM hot path; `--alloc_ab[=PATH]` A/B-tests the
// storage pool on the table7 epoch loop (default PATH
// BENCH_alloc.json, smoke-sized with --gemm_smoke); any other
// invocation behaves exactly
// like BENCHMARK_MAIN(). `--trace_json=PATH` additionally dumps the
// observability snapshot (counters, histograms, spans) after any mode.
int main(int argc, char** argv) {
  std::string gemm_json;
  std::string trace_json;
  std::string obs_ab_json;
  std::string alloc_ab_json = "BENCH_alloc.json";
  bool gemm_smoke = false;
  bool obs_ab = false;
  bool alloc_ab = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gemm_json=", 12) == 0) {
      gemm_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--gemm_smoke") == 0) {
      gemm_smoke = true;
    } else if (std::strncmp(argv[i], "--trace_json=", 13) == 0) {
      trace_json = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--obs_ab=", 9) == 0) {
      obs_ab = true;
      obs_ab_json = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--obs_ab") == 0) {
      obs_ab = true;
    } else if (std::strncmp(argv[i], "--alloc_ab=", 11) == 0) {
      alloc_ab = true;
      alloc_ab_json = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--alloc_ab") == 0) {
      alloc_ab = true;
    }
  }
  int rc = 0;
  if (alloc_ab) {
    rc = geotorch::RunAllocAb(alloc_ab_json, gemm_smoke);
  } else if (obs_ab) {
    rc = geotorch::RunObsAb(obs_ab_json, gemm_smoke);
  } else if (!gemm_json.empty()) {
    rc = geotorch::RunGemmSweep(gemm_json, gemm_smoke);
  } else {
    // Strip --trace_json before handing argv to google-benchmark, which
    // rejects flags it does not know.
    std::vector<char*> bench_argv;
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--trace_json=", 13) != 0) {
        bench_argv.push_back(argv[i]);
      }
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!trace_json.empty()) {
    if (geotorch::obs::WriteJsonFile(trace_json)) {
      std::printf("wrote %s\n", trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
