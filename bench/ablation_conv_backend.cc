// Ablation: convolution algorithm and execution backend. The deep
// learning module implements Conv2d with im2col + GEMM dispatched to
// either backend; this bench compares it against a direct 7-loop
// convolution to justify the design choice that dominates the Table
// VII / Fig. 9 runtimes.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "tensor/conv.h"
#include "tensor/device.h"
#include "tensor/ops.h"

namespace geotorch::bench {
namespace {

namespace ts = ::geotorch::tensor;

// Reference direct convolution (no im2col), serial.
ts::Tensor DirectConv2d(const ts::Tensor& x, const ts::Tensor& w,
                        const ts::ConvSpec& spec) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  const int64_t f = w.size(0);
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t oh = ts::ConvOutSize(h, kh, spec.stride, spec.padding);
  const int64_t ow = ts::ConvOutSize(wd, kw, spec.stride, spec.padding);
  ts::Tensor out = ts::Tensor::Zeros({n, f, oh, ow});
  const float* px = x.data();
  const float* pw = w.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t fi = 0; fi < f; ++fi) {
      for (int64_t oi = 0; oi < oh; ++oi) {
        for (int64_t oj = 0; oj < ow; ++oj) {
          float acc = 0.0f;
          for (int64_t ci = 0; ci < c; ++ci) {
            for (int64_t ki = 0; ki < kh; ++ki) {
              const int64_t ii = oi * spec.stride + ki - spec.padding;
              if (ii < 0 || ii >= h) continue;
              for (int64_t kj = 0; kj < kw; ++kj) {
                const int64_t jj = oj * spec.stride + kj - spec.padding;
                if (jj < 0 || jj >= wd) continue;
                acc += px[((i * c + ci) * h + ii) * wd + jj] *
                       pw[((fi * c + ci) * kh + ki) * kw + kj];
              }
            }
          }
          po[((i * f + fi) * oh + oi) * ow + oj] = acc;
        }
      }
    }
  }
  return out;
}

void Run(const BenchArgs& args) {
  const int reps = args.paper_scale ? 20 : 5;
  Rng rng(2);
  std::printf("ABLATION: Convolution Algorithm and Backend (%d reps)\n",
              reps);
  PrintRule();
  std::printf("%-26s %-12s %-14s %-14s\n", "workload", "direct (s)",
              "im2col-ser (s)", "im2col-par (s)");
  PrintRule();
  struct Case {
    int64_t n, c, hw, f, k;
  };
  for (const Case& c : {Case{8, 8, 32, 16, 3}, Case{8, 16, 64, 16, 3},
                        Case{4, 32, 64, 32, 3}}) {
    ts::Tensor x = ts::Tensor::Randn({c.n, c.c, c.hw, c.hw}, rng);
    ts::Tensor w = ts::Tensor::Randn({c.f, c.c, c.k, c.k}, rng, 0, 0.1f);
    ts::ConvSpec spec{.stride = 1, .padding = 1};

    Stopwatch t1;
    ts::Tensor ref;
    for (int r = 0; r < reps; ++r) ref = DirectConv2d(x, w, spec);
    const double direct = t1.ElapsedSeconds();

    double serial;
    double parallel;
    ts::Tensor got;
    {
      ts::DeviceGuard guard(ts::Device::kSerial);
      Stopwatch t2;
      for (int r = 0; r < reps; ++r) {
        got = ts::Conv2dForward(x, w, ts::Tensor(), spec);
      }
      serial = t2.ElapsedSeconds();
    }
    {
      ts::DeviceGuard guard(ts::Device::kParallel);
      Stopwatch t3;
      for (int r = 0; r < reps; ++r) {
        got = ts::Conv2dForward(x, w, ts::Tensor(), spec);
      }
      parallel = t3.ElapsedSeconds();
    }
    if (!ts::AllClose(ref, got, 1e-3f, 1e-4f)) {
      std::printf("WARNING: conv results differ!\n");
    }
    char label[64];
    std::snprintf(label, sizeof(label), "n%lldc%lld %lldx%lld f%lld k%lld",
                  static_cast<long long>(c.n), static_cast<long long>(c.c),
                  static_cast<long long>(c.hw), static_cast<long long>(c.hw),
                  static_cast<long long>(c.f), static_cast<long long>(c.k));
    std::printf("%-26s %-12.3f %-14.3f %-14.3f\n", label, direct, serial,
                parallel);
  }
  PrintRule();
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
