// Reproduces Table VII: training time per epoch for all nine models on
// their respective workloads (grid models on Temperature, classifiers
// on EuroSAT, segmenters on 38-Cloud). Absolute numbers differ from
// the paper's GPU testbed; the shape to check is the ordering:
// Periodical CNN fastest of the grid models and ConvLSTM by far the
// slowest; DeepSAT-V2 much faster than SatCNN; FCN < UNet < UNet++.
//
// Flags: --scale=paper for full-size datasets; --trace_json=PATH to
// dump the aggregated trace-span tree and counters of the whole run.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/grid_bench_common.h"
#include "datasets/benchmarks.h"
#include "models/segmentation_models.h"
#include "obs/obs.h"

namespace geotorch::bench {
namespace {

namespace ds = ::geotorch::datasets;
namespace obs = ::geotorch::obs;

// Prints the trainer phase breakdown from the aggregated span tree and
// writes the full observability snapshot to args.trace_json. The
// per-phase times (load/forward/backward/step) should cover nearly all
// of the measured epoch wall-clock — the gap is loop overhead.
void DumpTrace(const BenchArgs& args, double measured_epoch_secs) {
  const auto roots = obs::AggregateSpans();
  const obs::SpanNode* epoch = nullptr;
  for (const auto& r : roots) {
    if (r.name == "trainer.epoch") epoch = &r;
  }
  if (epoch != nullptr) {
    std::printf("\nTrace breakdown (%lld epochs, %.3f s inside "
                "trainer.epoch, %.3f s measured):\n",
                static_cast<long long>(epoch->count),
                epoch->total_ns * 1e-9, measured_epoch_secs);
    double phase_sum_ns = 0.0;
    for (const auto& child : epoch->children) {
      phase_sum_ns += static_cast<double>(child.total_ns);
      std::printf("  %-18s %8lld calls %10.3f s\n", child.name.c_str(),
                  static_cast<long long>(child.count),
                  child.total_ns * 1e-9);
    }
    std::printf("  %-18s %19s %10.3f s (%.1f%% of measured wall-clock)\n",
                "phase sum", "", phase_sum_ns * 1e-9,
                100.0 * phase_sum_ns * 1e-9 / measured_epoch_secs);
  }
  if (obs::WriteJsonFile(args.trace_json)) {
    std::printf("wrote %s\n", args.trace_json.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", args.trace_json.c_str());
  }
}

void Run(const BenchArgs& args) {
  // Clean capture window: only this run's activity lands in the dump.
  if (!args.trace_json.empty()) obs::Reset();
  double total_epoch_secs = 0.0;
  const int64_t weather_t = args.paper_scale ? 2000 : 400;
  const int64_t wh = args.paper_scale ? 32 : 16;
  const int64_t ww = args.paper_scale ? 64 : 32;
  const int64_t n_eurosat = args.paper_scale ? 2000 : 128;
  const int64_t n_cloud = args.paper_scale ? 200 : 24;
  const int64_t cloud_size = args.paper_scale ? 192 : 48;

  std::printf("TABLE VII: Training Time of Various Models for a Single "
              "Epoch\n");
  PrintRule();
  std::printf("%-12s %-15s %-15s %s\n", "Dataset", "Application", "Model",
              "Time/Epoch");
  PrintRule();

  // --- Grid models on Temperature -----------------------------------
  {
    ds::GridDataset base = ds::MakeTemperature(weather_t, wh, ww, 3);
    base.MinMaxNormalize();
    models::TrainConfig tc;
    tc.batch_size = 16;
    const GridModelKind kinds[] = {
        GridModelKind::kPeriodicalCnn, GridModelKind::kConvLstm,
        GridModelKind::kStResNet, GridModelKind::kDeepStnPlus};
    for (GridModelKind kind : kinds) {
      ds::GridDataset dataset = base;  // cheap copy (shared tensor)
      models::GridModelConfig mc;
      mc.channels = 1;
      mc.height = wh;
      mc.width = ww;
      mc.hidden = 16;
      if (kind == GridModelKind::kConvLstm) {
        dataset.SetSequentialRepresentation(6, 1);
      } else {
        dataset.SetPeriodicalRepresentation(3, 2, 1);
      }
      std::unique_ptr<models::GridModel> model = MakeGridModel(kind, mc);
      const double secs = models::TimeOneEpochGrid(*model, dataset, tc);
      total_epoch_secs += secs;
      std::printf("%-12s %-15s %-15s %.3f s\n", "Temperature", "Prediction",
                  GridModelName(kind), secs);
    }
  }

  // --- Classifiers on EuroSAT ------------------------------------------
  {
    models::TrainConfig tc;
    tc.batch_size = 16;
    for (const char* name : {"DeepSAT V2", "SatCNN"}) {
      const bool deepsat = std::string(name) == "DeepSAT V2";
      ds::RasterDatasetOptions options;
      options.include_additional_features = deepsat;
      ds::RasterClassificationDataset dataset =
          ds::MakeEuroSat(n_eurosat, options, 4);
      models::RasterModelConfig mc;
      mc.in_channels = 13;
      mc.in_height = 64;
      mc.in_width = 64;
      mc.num_classes = 10;
      mc.num_filtered_features =
          deepsat ? dataset.num_additional_features() : 0;
      mc.base_filters = 8;
      std::unique_ptr<models::RasterClassifier> model;
      if (deepsat) {
        model = std::make_unique<models::DeepSatV2>(mc);
      } else {
        model = std::make_unique<models::SatCnn>(mc);
      }
      const double secs =
          models::TimeOneEpochClassifier(*model, dataset, tc);
      total_epoch_secs += secs;
      std::printf("%-12s %-15s %-15s %.3f s\n", "EuroSAT", "Classification",
                  name, secs);
    }
  }

  // --- Segmenters on 38-Cloud ------------------------------------------
  {
    models::TrainConfig tc;
    tc.batch_size = 4;
    ds::RasterSegmentationDataset dataset =
        ds::MakeCloud38(n_cloud, cloud_size, {}, 5);
    models::SegModelConfig mc;
    mc.in_channels = 4;
    mc.num_classes = 2;
    mc.base_filters = 8;
    for (const char* name : {"FCN", "UNet", "UNet++"}) {
      std::unique_ptr<nn::UnaryModule> model;
      const std::string n = name;
      if (n == "FCN") {
        model = std::make_unique<models::Fcn>(mc);
      } else if (n == "UNet") {
        model = std::make_unique<models::UNet>(mc);
      } else {
        model = std::make_unique<models::UNetPlusPlus>(mc);
      }
      const double secs = models::TimeOneEpochSegmenter(*model, dataset, tc);
      total_epoch_secs += secs;
      std::printf("%-12s %-15s %-15s %.3f s\n", "38-Cloud", "Segmentation",
                  name, secs);
    }
  }
  PrintRule();
  if (!args.trace_json.empty()) DumpTrace(args, total_epoch_secs);
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
