// Streaming pipeline sweep: event-to-prediction staleness versus
// sustained ingest throughput. Each level runs the full three-stage
// pipeline (synthetic ordered taxi stream → windowed ST-grid
// aggregation → online PeriodicalCnn prediction through a
// serve::Fleet) over a fixed span of dataset time, either paced to a
// target wall-clock event rate (GEOTORCH_STREAM_RATE's knob) or
// unthrottled so backpressure is the only brake. Sustained events/sec
// is admitted events over wall time; staleness is the predictor's
// per-window histogram (last event ingest → prediction resolved), so
// the unthrottled row exposes how far queueing pushes p99 once the
// producer outruns the aggregator. The dataset event rate per level is
// scaled to keep every run at the same window count — the levels
// differ in wall-clock pressure, not in stream shape. Writes a
// machine-readable report with --json=PATH (the committed
// BENCH_stream.json); --smoke shrinks the sweep for CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/check.h"
#include "core/stopwatch.h"
#include "models/grid_models.h"
#include "obs/obs.h"
#include "serve/adapters.h"
#include "serve/config.h"
#include "serve/fleet.h"
#include "spatial/geometry.h"
#include "spatial/grid.h"
#include "stream/options.h"
#include "stream/pipeline.h"
#include "stream/taxi_source.h"
#include "synth/taxi.h"

namespace geotorch::bench {
namespace {

namespace models = ::geotorch::models;
namespace serve = ::geotorch::serve;
namespace spatial = ::geotorch::spatial;
namespace stream = ::geotorch::stream;
namespace synth = ::geotorch::synth;

constexpr int64_t kGridX = 12;
constexpr int64_t kGridY = 12;
constexpr int64_t kWindowSec = 600;
constexpr int64_t kTickSec = 60;

// One sweep level: pace the producer at target_eps wall events/sec
// (0 = unthrottled) over a taxi stream emitting dataset_eps events per
// dataset second for duration_sec of dataset time. dataset_eps is
// chosen so the throttled levels finish in a few wall seconds while
// every level closes the same number of windows.
struct RateLevel {
  const char* name;
  int64_t target_eps;
  double dataset_eps;
  int64_t duration_sec;
};

struct Record {
  std::string level;
  int64_t target_eps = 0;
  int64_t events = 0;
  double seconds = 0.0;
  double sustained_eps = 0.0;
  int64_t windows = 0;
  int64_t predictions_ok = 0;
  int64_t predictions_failed = 0;
  int64_t staleness_p50_us = 0;
  int64_t staleness_p99_us = 0;
  int64_t index_rebuilds = 0;
  int64_t dropped_outside = 0;
};

int64_t Percentile(std::vector<int64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

// A PeriodicalCnn snapshot over the aggregator's 2-channel pickup/count
// frames; closeness-only stacks keep the warmup short.
serve::SnapshotFactory CnnFactory(models::GridModelConfig config) {
  return [config] {
    auto model = std::make_shared<models::PeriodicalCnn>(config);
    serve::ModelSnapshot snap;
    snap.owner = model;
    snap.forward = serve::GridForward(*model);
    snap.load = [](const std::string&) { return Status::OK(); };
    return snap;
  };
}

Record RunLevel(const RateLevel& level) {
  stream::StreamOptions opts;
  opts.window_sec = kWindowSec;
  opts.slide_sec = 0;  // tumbling
  opts.queue = 8192;
  opts.window_queue = 64;
  opts.len_closeness = 3;
  opts.len_period = 0;
  opts.len_trend = 0;
  opts.target_eps = level.target_eps;

  models::GridModelConfig config;
  config.channels = 2;
  config.height = kGridY;
  config.width = kGridX;
  config.len_closeness = opts.len_closeness;
  config.len_period = 0;
  config.len_trend = 0;
  config.hidden = 8;
  config.seed = 42;

  serve::FleetOptions fleet_opts;
  fleet_opts.replicas = 1;  // bench host has one hardware thread
  fleet_opts.tenant_qps = 0;
  fleet_opts.engine.max_batch = 4;
  fleet_opts.engine.max_delay_us = 200;
  fleet_opts.engine.max_queue = 64;
  fleet_opts.engine.warmup_batches = 1;
  serve::Fleet fleet(fleet_opts);
  GEO_CHECK(fleet
                .AddModel("taxi-cnn", CnnFactory(config),
                          serve::SampleSpec{
                              {opts.len_closeness * 2, kGridY, kGridX}, {}})
                .ok());

  synth::TaxiStreamConfig stream_config;
  stream_config.events_per_sec = level.dataset_eps;
  stream_config.duration_sec = level.duration_sec;
  stream_config.tick_sec = kTickSec;
  stream_config.seed = 17;
  stream::TaxiEventSource source(stream_config);
  spatial::GridPartitioner grid(stream_config.extent, kGridX, kGridY);

  stream::Pipeline pipeline(&source, &fleet, grid, "taxi-cnn", opts);
  Stopwatch timer;
  pipeline.Start();
  GEO_CHECK(pipeline.WaitFinished(/*timeout_ms=*/600000))
      << "level " << level.name << " did not drain";
  const double seconds = timer.ElapsedSeconds();
  pipeline.Stop();

  const stream::PipelineStats stats = pipeline.stats();
  GEO_CHECK_EQ(stats.events_processed, stats.events_ingested);
  GEO_CHECK_EQ(stats.windows_closed,
               stats.predictions_ok + stats.predictions_failed);

  std::vector<int64_t> staleness = pipeline.predictor().StalenessSamplesUs();
  std::sort(staleness.begin(), staleness.end());

  Record rec;
  rec.level = level.name;
  rec.target_eps = level.target_eps;
  rec.events = stats.events_ingested;
  rec.seconds = seconds;
  rec.sustained_eps = stats.events_ingested / std::max(seconds, 1e-9);
  rec.windows = stats.windows_closed;
  rec.predictions_ok = stats.predictions_ok;
  rec.predictions_failed = stats.predictions_failed;
  rec.staleness_p50_us = Percentile(staleness, 0.50);
  rec.staleness_p99_us = Percentile(staleness, 0.99);
  rec.index_rebuilds = stats.index_rebuilds;
  rec.dropped_outside = stats.dropped_outside;
  fleet.Shutdown();
  return rec;
}

void WriteJson(const std::string& path, const std::vector<Record>& records) {
  BenchJsonWriter json(path, "stream_bench");
  if (!json.ok()) return;
  std::FILE* f = json.stream();
  std::fprintf(f, "  \"window_sec\": %lld,\n",
               static_cast<long long>(kWindowSec));
  std::fprintf(f, "  \"grid\": [%lld, %lld],\n",
               static_cast<long long>(kGridY), static_cast<long long>(kGridX));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "    {\"level\": \"%s\", \"target_eps\": %lld, \"events\": %lld, "
        "\"seconds\": %.6f, \"sustained_eps\": %.1f, \"windows\": %lld, "
        "\"predictions_ok\": %lld, \"predictions_failed\": %lld, "
        "\"staleness_p50_us\": %lld, \"staleness_p99_us\": %lld, "
        "\"index_rebuilds\": %lld, \"dropped_outside\": %lld}%s\n",
        r.level.c_str(), static_cast<long long>(r.target_eps),
        static_cast<long long>(r.events), r.seconds, r.sustained_eps,
        static_cast<long long>(r.windows),
        static_cast<long long>(r.predictions_ok),
        static_cast<long long>(r.predictions_failed),
        static_cast<long long>(r.staleness_p50_us),
        static_cast<long long>(r.staleness_p99_us),
        static_cast<long long>(r.index_rebuilds),
        static_cast<long long>(r.dropped_outside),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  json.Finish();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  // Every level spans the same dataset time (same window count); the
  // throttled levels scale the dataset event rate down so pacing, not
  // generation, dominates wall time.
  std::vector<RateLevel> levels;
  if (smoke) {
    levels = {
        {"eps_4k", 4000, 2.0, 3000},
        {"unthrottled", 0, 10.0, 3000},
    };
  } else {
    levels = {
        {"eps_2k", 2000, 0.4, 14400},
        {"eps_8k", 8000, 1.6, 14400},
        {"unthrottled", 0, 40.0, 14400},
    };
  }

  std::printf("stream_bench: staleness vs throughput "
              "(window=%llds, grid=%lldx%lld, tick=%llds)\n",
              static_cast<long long>(kWindowSec),
              static_cast<long long>(kGridY), static_cast<long long>(kGridX),
              static_cast<long long>(kTickSec));
  PrintRule();
  std::printf("%-12s %10s %10s %12s %8s %12s %12s\n", "level", "target",
              "events", "sustained", "windows", "stale p50", "stale p99");
  PrintRule();

  std::vector<Record> records;
  for (const RateLevel& level : levels) {
    Record rec = RunLevel(level);
    std::printf("%-12s %10lld %10lld %10.0f/s %8lld %10lldus %10lldus\n",
                rec.level.c_str(), static_cast<long long>(rec.target_eps),
                static_cast<long long>(rec.events), rec.sustained_eps,
                static_cast<long long>(rec.windows),
                static_cast<long long>(rec.staleness_p50_us),
                static_cast<long long>(rec.staleness_p99_us));
    records.push_back(std::move(rec));
  }
  PrintRule();

  if (!json_path.empty()) WriteJson(json_path, records);
  return 0;
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  return geotorch::bench::Main(argc, argv);
}
