// Reproduces Table VIII: elapsed time for training with on-the-fly
// raster transforms vs pre-transforming offline with the preprocessing
// module and then training, for transform counts 1..5. Following the
// paper's Limitation 4, each transformation both appends a normalized
// difference index band and extracts a GLCM texture feature channel —
// the feature-extraction work the paper argues should happen offline.
// Expected shape (paper): on-the-fly training time grows with the
// transform count and sits well above the pre-transformed runs; the
// pre-transformed training time stays flat; pre-transformation itself
// is cheap.
//
// Flags: --scale=paper for more/larger images and epochs.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "data/dataset.h"
#include "datasets/raster_dataset.h"
#include "models/raster_models.h"
#include "models/trainer.h"
#include "prep/raster_processing.h"
#include "raster/glcm.h"
#include "raster/ops.h"
#include "synth/satimage.h"
#include "tensor/ops.h"
#include "transforms/transforms.h"

namespace geotorch::bench {
namespace {

namespace ds = ::geotorch::datasets;
namespace tr = ::geotorch::transforms;
namespace ts = ::geotorch::tensor;

// Band pairs for the k-th appended index, referencing original bands.
std::pair<int64_t, int64_t> NdiPair(int k) {
  return {k % 4, (k + 1) % 4};
}

double TrainEpochs(const data::Dataset& dataset, int64_t bands,
                   int64_t size, int epochs, int num_classes) {
  models::RasterModelConfig mc;
  mc.in_channels = bands;
  mc.in_height = size;
  mc.in_width = size;
  mc.num_classes = num_classes;
  mc.base_filters = 4;
  models::SatCnn model(mc);
  models::TrainConfig tc;
  tc.batch_size = 16;
  Stopwatch timer;
  for (int e = 0; e < epochs; ++e) {
    models::TimeOneEpochClassifier(model, dataset, tc);
  }
  return timer.ElapsedSeconds();
}

void Run(const BenchArgs& args) {
  const int64_t n = args.paper_scale ? 512 : 96;
  const int64_t size = args.paper_scale ? 64 : 48;
  const int epochs = args.paper_scale ? 5 : 3;
  const int num_classes = 6;

  synth::SceneConfig scene;
  scene.size = size;
  scene.bands = 4;
  scene.num_classes = num_classes;
  scene.seed = 7;
  auto [images, labels] = synth::GenerateClassificationSet(n, scene);

  std::vector<raster::RasterImage> collection;
  collection.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    collection.push_back(raster::RasterImage::FromTensor(
        ts::Slice(images, 0, i, i + 1).Reshape({4, size, size})));
  }

  std::printf("TABLE VIII: Elapsed Time in Seconds for Various Training "
              "and Preprocessing Settings\n");
  std::printf("(%lld images of %lldx%lldx4, %d epochs; each transform = NDI band\n"
              " + 6 GLCM texture channels at 256 gray levels)\n",
              static_cast<long long>(n), static_cast<long long>(size),
              static_cast<long long>(size), epochs);
  PrintRule();
  std::printf("%-10s %-18s %-22s %-14s\n", "Transforms", "Train w/",
              "Train w/", "Pretransforms");
  std::printf("%-10s %-18s %-22s %-14s\n", "Count", "Transforms",
              "Pretransforms", "");
  PrintRule();

  // Warm-up: one full pass of each path so first-touch page faults do
  // not pollute the k=1 rows.
  {
    ds::RasterDatasetOptions warm;
    warm.transform = tr::AppendNormalizedDifferenceIndex(0, 1);
    ds::RasterClassificationDataset warm_dataset(images, labels, warm);
    TrainEpochs(warm_dataset, 5, size, 1, num_classes);
  }

  for (int k = 1; k <= 5; ++k) {
    // (a) On the fly: the transform chain runs inside every Get().
    std::vector<tr::Transform> chain;
    for (int j = 0; j < k; ++j) {
      auto [b1, b2] = NdiPair(j);
      chain.push_back(tr::AppendNormalizedDifferenceIndex(b1, b2));
      chain.push_back(tr::AppendGlcmFeatureChannels(j % 4));
    }
    ds::RasterDatasetOptions fly_options;
    fly_options.transform = tr::Compose(chain);
    ds::RasterClassificationDataset fly_dataset(images, labels,
                                                fly_options);
    const double fly_secs =
        TrainEpochs(fly_dataset, 4 + 7 * k, size, epochs, num_classes);

    // (b) Offline: pre-transform in parallel, write to disk, reload,
    // train without per-sample transforms.
    Stopwatch pre_timer;
    std::vector<raster::RasterImage> transformed = collection;
    for (int j = 0; j < k; ++j) {
      auto [b1, b2] = NdiPair(j);
      transformed = prep::RasterProcessing::AppendNormalizedDifferenceIndex(
          transformed, b1, b2);
      const int64_t glcm_band = j % 4;
      transformed = prep::RasterProcessing::TransformParallel(
          transformed, [glcm_band](const raster::RasterImage& img) {
            const std::vector<float> features =
                raster::GlcmFeatureVector(img, glcm_band, /*levels=*/256);
            raster::RasterImage out = img;
            for (float f : features) {
              std::vector<float> plane(out.PixelsPerBand(), f);
              out = raster::AppendBand(out, plane);
            }
            return out;
          });
    }
    auto paths = prep::RasterProcessing::WriteGeotiffImages(
        transformed, "/tmp", "table8_");
    const double pre_secs = pre_timer.ElapsedSeconds();
    if (!paths.ok()) {
      std::printf("pretransform write failed: %s\n",
                  paths.status().ToString().c_str());
      return;
    }
    auto reloaded = prep::RasterProcessing::LoadGeotiffImages(*paths);
    if (!reloaded.ok()) {
      std::printf("pretransform load failed: %s\n",
                  reloaded.status().ToString().c_str());
      return;
    }
    std::vector<ts::Tensor> stacked;
    stacked.reserve(reloaded->size());
    for (const auto& img : *reloaded) stacked.push_back(img.ToTensor());
    ds::RasterClassificationDataset pre_dataset(ts::Stack(stacked), labels,
                                                {});
    const double pre_train_secs =
        TrainEpochs(pre_dataset, 4 + 7 * k, size, epochs, num_classes);

    std::printf("%-10d %-18.2f %-22.2f %-14.2f\n", k, fly_secs,
                pre_train_secs, pre_secs);
  }
  PrintRule();
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
