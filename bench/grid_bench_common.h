#ifndef GEOTORCH_BENCH_GRID_BENCH_COMMON_H_
#define GEOTORCH_BENCH_GRID_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "data/metrics.h"
#include "datasets/grid_dataset.h"
#include "models/grid_models.h"
#include "models/trainer.h"

namespace geotorch::bench {

/// The four spatiotemporal models of Tables IV/V, instantiated per run.
enum class GridModelKind { kPeriodicalCnn, kConvLstm, kStResNet, kDeepStnPlus };

inline const char* GridModelName(GridModelKind kind) {
  switch (kind) {
    case GridModelKind::kPeriodicalCnn:
      return "Periodical CNN";
    case GridModelKind::kConvLstm:
      return "ConvLSTM";
    case GridModelKind::kStResNet:
      return "ST-ResNet";
    case GridModelKind::kDeepStnPlus:
      return "DeepSTN+";
  }
  return "?";
}

inline std::unique_ptr<models::GridModel> MakeGridModel(
    GridModelKind kind, const models::GridModelConfig& config) {
  switch (kind) {
    case GridModelKind::kPeriodicalCnn:
      return std::make_unique<models::PeriodicalCnn>(config);
    case GridModelKind::kConvLstm:
      return std::make_unique<models::ConvLstm>(config, 1);
    case GridModelKind::kStResNet:
      return std::make_unique<models::StResNet>(config);
    case GridModelKind::kDeepStnPlus:
      return std::make_unique<models::DeepStnPlus>(config);
  }
  return nullptr;
}

struct GridRunResult {
  data::RunStats mae;
  data::RunStats rmse;
};

/// Per-model training budget. Epoch costs differ by ~40x across the
/// four models (Table VII), and the paper's protocol explicitly lets
/// epoch counts differ per model ("the number of epochs is not fixed
/// for all models", Section V-C): every model here gets a comparable
/// wall-clock training budget. The returned config also applies the
/// per-model learning rate (ST-ResNet's three-branch fusion needs a
/// higher rate to converge within the budget).
inline models::TrainConfig BudgetFor(GridModelKind kind,
                                     const models::TrainConfig& base) {
  models::TrainConfig tc = base;
  switch (kind) {
    case GridModelKind::kPeriodicalCnn:
      tc.max_epochs = base.max_epochs * 7;
      break;
    case GridModelKind::kConvLstm:
      tc.max_epochs = std::max(2, base.max_epochs * 4 / 5);
      break;
    case GridModelKind::kStResNet:
      tc.max_epochs = base.max_epochs * 4;
      tc.lr = base.lr * 2.0f;
      break;
    case GridModelKind::kDeepStnPlus:
      tc.max_epochs = base.max_epochs * 6;
      break;
  }
  return tc;
}

/// Trains `kind` on `make_dataset()` for `iterations` seeded runs using
/// the representation the model needs (sequential for ConvLSTM,
/// periodical otherwise), following the Section V-C protocol. Errors
/// are reported on min-max-normalized data (see EXPERIMENTS.md).
inline GridRunResult RunGridModel(
    GridModelKind kind,
    const std::function<datasets::GridDataset(uint64_t)>& make_dataset,
    const models::TrainConfig& base_config, int iterations) {
  GridRunResult result;
  for (int it = 0; it < iterations; ++it) {
    datasets::GridDataset dataset = make_dataset(static_cast<uint64_t>(it));
    dataset.MinMaxNormalize();

    models::GridModelConfig mc;
    mc.channels = dataset.channels();
    mc.height = dataset.height();
    mc.width = dataset.width();
    mc.len_closeness = 3;
    mc.len_period = 2;
    mc.len_trend = 1;
    mc.hidden = 16;
    mc.seed = 1000 + it;

    if (kind == GridModelKind::kConvLstm) {
      dataset.SetSequentialRepresentation(/*history=*/4, /*prediction=*/1);
    } else {
      dataset.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                          mc.len_trend);
    }
    data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
    data::SubsetDataset train(&dataset, split.train);
    data::SubsetDataset val(&dataset, split.val);
    data::SubsetDataset test(&dataset, split.test);

    std::unique_ptr<models::GridModel> model = MakeGridModel(kind, mc);
    models::TrainConfig tc = BudgetFor(kind, base_config);
    tc.seed = 77 + it;
    models::RegressionResult run =
        models::TrainGridModel(*model, train, val, test, tc);
    result.mae.Add(run.mae);
    result.rmse.Add(run.rmse);
  }
  return result;
}

}  // namespace geotorch::bench

#endif  // GEOTORCH_BENCH_GRID_BENCH_COMMON_H_
