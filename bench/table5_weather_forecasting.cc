// Reproduces Table V: weather forecasting MAE/RMSE of the four grid
// models on the Temperature, Total Precipitation, and Total Cloud
// Cover datasets (WeatherBench-style synthetic fields). Errors are on
// min-max-normalized data. Expected shape (paper): DeepSTN+ and
// ConvLSTM close together in front (weather has little weekly-trend
// structure), Periodical CNN and ST-ResNet behind.
//
// Flags: --iterations=N (default 2), --scale=paper.

#include <cstdio>
#include <vector>

#include "bench/grid_bench_common.h"
#include "datasets/benchmarks.h"

namespace geotorch::bench {
namespace {

void Run(const BenchArgs& args) {
  const int64_t t = args.paper_scale ? 8760 : 500;
  const int64_t h = args.paper_scale ? 32 : 16;
  const int64_t w = args.paper_scale ? 64 : 32;

  struct DatasetSpec {
    const char* name;
    std::function<datasets::GridDataset(uint64_t)> make;
  };
  std::vector<DatasetSpec> specs = {
      {"Temperature",
       [=](uint64_t seed) {
         return datasets::MakeTemperature(t, h, w, seed);
       }},
      {"Precipitation",
       [=](uint64_t seed) {
         return datasets::MakePrecipitation(t, h, w, seed);
       }},
      {"CloudCover", [=](uint64_t seed) {
         return datasets::MakeTotalCloudCover(t, h, w, seed);
       }}};

  models::TrainConfig tc;
  tc.max_epochs = args.paper_scale ? 12 : 4;
  tc.patience = 4;
  tc.batch_size = 16;
  tc.lr = 5e-3f;

  std::printf("TABLE V: Weather Forecasting with Spatiotemporal Models\n");
  std::printf("(normalized units; %d iteration(s) per cell)\n",
              args.iterations);
  PrintRule();
  std::printf("%-15s %-6s %-16s %-16s %-16s %-16s\n", "Dataset", "Metric",
              "Periodical CNN", "ConvLSTM", "ST-ResNet", "DeepSTN+");
  PrintRule();

  const GridModelKind kinds[] = {
      GridModelKind::kPeriodicalCnn, GridModelKind::kConvLstm,
      GridModelKind::kStResNet, GridModelKind::kDeepStnPlus};
  for (const auto& spec : specs) {
    std::vector<GridRunResult> results;
    for (GridModelKind kind : kinds) {
      results.push_back(RunGridModel(kind, spec.make, tc, args.iterations));
    }
    std::printf("%-15s %-6s %-16s %-16s %-16s %-16s\n", spec.name, "MAE",
                PlusMinus(results[0].mae.mean(),
                          results[0].mae.max_deviation(), 4).c_str(),
                PlusMinus(results[1].mae.mean(),
                          results[1].mae.max_deviation(), 4).c_str(),
                PlusMinus(results[2].mae.mean(),
                          results[2].mae.max_deviation(), 4).c_str(),
                PlusMinus(results[3].mae.mean(),
                          results[3].mae.max_deviation(), 4).c_str());
    std::printf("%-15s %-6s %-16s %-16s %-16s %-16s\n", "", "RMSE",
                PlusMinus(results[0].rmse.mean(),
                          results[0].rmse.max_deviation(), 4).c_str(),
                PlusMinus(results[1].rmse.mean(),
                          results[1].rmse.max_deviation(), 4).c_str(),
                PlusMinus(results[2].rmse.mean(),
                          results[2].rmse.max_deviation(), 4).c_str(),
                PlusMinus(results[3].rmse.mean(),
                          results[3].rmse.max_deviation(), 4).c_str());
  }
  PrintRule();
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
