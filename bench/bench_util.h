#ifndef GEOTORCH_BENCH_BENCH_UTIL_H_
#define GEOTORCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace geotorch::bench {

/// Command-line knobs shared by the table/figure harnesses. Every bench
/// defaults to a laptop-scale configuration; pass --iterations=N to
/// average over more seeds (the paper uses 5) and --scale=paper to use
/// the paper's full dataset shapes (slower). --trace_json=PATH dumps
/// the observability snapshot (counters, histograms, span tree) of the
/// run to PATH.
struct BenchArgs {
  int iterations = 1;
  bool paper_scale = false;
  std::string trace_json;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--iterations=", 13) == 0) {
        args.iterations = std::atoi(argv[i] + 13);
      } else if (std::strcmp(argv[i], "--scale=paper") == 0) {
        args.paper_scale = true;
      } else if (std::strncmp(argv[i], "--trace_json=", 13) == 0) {
        args.trace_json = argv[i] + 13;
      }
    }
    if (args.iterations < 1) args.iterations = 1;
    return args;
  }
};

/// "12.345±0.678" formatting used by the paper's tables.
inline std::string PlusMinus(double mean, double dev, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean,
                precision, dev);
  return buf;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace geotorch::bench

#endif  // GEOTORCH_BENCH_BENCH_UTIL_H_
