#ifndef GEOTORCH_BENCH_BENCH_UTIL_H_
#define GEOTORCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/memory.h"

namespace geotorch::bench {

/// Command-line knobs shared by the table/figure harnesses. Every bench
/// defaults to a laptop-scale configuration; pass --iterations=N to
/// average over more seeds (the paper uses 5) and --scale=paper to use
/// the paper's full dataset shapes (slower). --trace_json=PATH dumps
/// the observability snapshot (counters, histograms, span tree) of the
/// run to PATH.
struct BenchArgs {
  int iterations = 1;
  bool paper_scale = false;
  std::string trace_json;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--iterations=", 13) == 0) {
        args.iterations = std::atoi(argv[i] + 13);
      } else if (std::strcmp(argv[i], "--scale=paper") == 0) {
        args.paper_scale = true;
      } else if (std::strncmp(argv[i], "--trace_json=", 13) == 0) {
        args.trace_json = argv[i] + 13;
      }
    }
    if (args.iterations < 1) args.iterations = 1;
    return args;
  }
};

/// Streams one BENCH_*.json report with the envelope every committed
/// result carries: the bench name, the report schema version, and the
/// machine's hardware thread count up front; the process peak
/// resident-set size (VmHWM) stamped at Finish(). The envelope makes
/// reports comparable across hosts and revisions without parsing
/// bench-specific fields.
///
///   BenchJsonWriter json(path, "my_bench");
///   if (json.ok()) {
///     std::fprintf(json.stream(), "  \"rows\": %d,\n", rows);  // body
///     json.Finish();
///   }
///
/// Body fields written through stream() must each end with ",\n" —
/// Finish() appends the peak-RSS field and the closing brace.
class BenchJsonWriter {
 public:
  /// Bump when the shared envelope changes shape.
  static constexpr int kSchemaVersion = 2;

  BenchJsonWriter(const std::string& path, const char* bench)
      : path_(path), f_(std::fopen(path.c_str(), "wb")) {
    if (f_ == nullptr) {
      std::printf("WARNING: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f_, "{\n  \"bench\": \"%s\",\n", bench);
    std::fprintf(f_, "  \"schema_version\": %d,\n", kSchemaVersion);
    std::fprintf(f_, "  \"hardware_threads\": %u,\n",
                 std::max(1u, std::thread::hardware_concurrency()));
  }
  ~BenchJsonWriter() {
    if (f_ != nullptr) Finish();
  }
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* stream() { return f_; }

  void Finish() {
    if (f_ == nullptr) return;
    std::fprintf(f_, "  \"peak_rss_mb\": %.1f\n}\n",
                 static_cast<double>(PeakRssBytes()) / (1 << 20));
    std::fclose(f_);
    f_ = nullptr;
    std::printf("wrote %s\n", path_.c_str());
  }

 private:
  std::string path_;
  std::FILE* f_;
};

/// "12.345±0.678" formatting used by the paper's tables.
inline std::string PlusMinus(double mean, double dev, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean,
                precision, dev);
  return buf;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace geotorch::bench

#endif  // GEOTORCH_BENCH_BENCH_UTIL_H_
