// Fleet serving sweep: client concurrency x models x replica counts
// through one serve::Fleet — the least-loaded router in front of N
// dynamically-batching engines per model. On a single-hardware-thread
// host extra replicas buy no forward parallelism (engines time-slice
// one core), so the numbers quantify the ROUTER'S cost/benefit:
// per-request routing overhead, queue-depth balancing, and what a
// hot reload costs while traffic keeps flowing (measured separately).
// Writes a machine-readable report with --json=PATH (the committed
// BENCH_fleet.json); --smoke shrinks the sweep for CI.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/check.h"
#include "core/stopwatch.h"
#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "models/grid_models.h"
#include "obs/obs.h"
#include "serve/adapters.h"
#include "serve/config.h"
#include "serve/fleet.h"
#include "tensor/device.h"

namespace geotorch::bench {
namespace {

namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace io = ::geotorch::io;
namespace models = ::geotorch::models;
namespace serve = ::geotorch::serve;
namespace ts = ::geotorch::tensor;

struct ModelSpec {
  std::string name;
  models::GridModelConfig config;
  std::vector<data::Sample> samples;
  serve::SampleSpec spec;
};

ModelSpec MakeModelSpec(const std::string& name, int64_t grid,
                        int64_t hidden) {
  datasets::GridDataset ds = datasets::MakeTemperature(
      /*timesteps=*/240, grid, grid, /*seed=*/7);
  ds.MinMaxNormalize();
  ModelSpec m;
  m.name = name;
  m.config.channels = ds.channels();
  m.config.height = ds.height();
  m.config.width = ds.width();
  m.config.len_closeness = 3;
  m.config.len_period = 2;
  m.config.len_trend = 1;
  m.config.hidden = hidden;
  m.config.seed = 42;
  ds.SetPeriodicalRepresentation(m.config.len_closeness, m.config.len_period,
                                 m.config.len_trend);
  for (int64_t i = 0; i < std::min<int64_t>(ds.Size(), 32); ++i) {
    m.samples.push_back(ds.Get(i));
  }
  m.spec.x = m.samples[0].x.shape();
  for (const auto& e : m.samples[0].extras) m.spec.extras.push_back(e.shape());
  return m;
}

// A hot-reloadable PeriodicalCnn snapshot: fresh module per replica,
// load = state dict + precision panel re-derivation.
serve::SnapshotFactory CnnFactory(models::GridModelConfig config) {
  return [config] {
    auto model = std::make_shared<models::PeriodicalCnn>(config);
    serve::ModelSnapshot snap;
    snap.owner = model;
    snap.forward = serve::GridForward(*model);
    snap.load = [model](const std::string& path) {
      Status st = io::LoadStateDict(*model, path);
      if (st.ok()) model->SetPrecision(model->precision());
      return st;
    };
    return snap;
  };
}

struct Record {
  std::string model;
  int replicas = 0;
  int clients = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
};

int64_t Percentile(std::vector<int64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

serve::FleetOptions BenchFleetOptions(int replicas) {
  serve::FleetOptions opts;
  opts.replicas = replicas;
  opts.tenant_qps = 0;  // measure the router, not admission control
  opts.engine.max_batch = 8;
  opts.engine.max_delay_us = 200;
  opts.engine.max_queue = 1024;
  opts.engine.warmup_batches = 1;
  return opts;
}

// One fleet serving every model at `replicas` replicas; `clients`
// closed-loop threads PER MODEL submit back-to-back. Returns one
// record per model.
std::vector<Record> RunOnce(const std::vector<ModelSpec>& zoo, int replicas,
                            int clients, int requests_per_client) {
  serve::Fleet fleet(BenchFleetOptions(replicas));
  for (const auto& m : zoo) {
    GEO_CHECK(fleet.AddModel(m.name, CnnFactory(m.config), m.spec).ok());
  }

  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(zoo.size()) * clients);
  std::atomic<int64_t> errors{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (size_t mi = 0; mi < zoo.size(); ++mi) {
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, mi, c] {
        const ModelSpec& m = zoo[mi];
        auto& lat = latencies[mi * clients + c];
        lat.reserve(requests_per_client);
        const std::string tenant = "client-" + std::to_string(c);
        for (int i = 0; i < requests_per_client; ++i) {
          const data::Sample& s =
              m.samples[(c * requests_per_client + i) % m.samples.size()];
          const int64_t t0 = obs::NowNs();
          auto r = fleet.Submit(m.name, tenant, s);
          if (!r.ok()) {
            errors.fetch_add(1);
            continue;
          }
          lat.push_back((obs::NowNs() - t0) / 1000);
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  fleet.Shutdown();
  if (errors.load() > 0) {
    std::printf("WARNING: %lld submits failed\n",
                static_cast<long long>(errors.load()));
  }

  std::vector<Record> records;
  for (size_t mi = 0; mi < zoo.size(); ++mi) {
    Record rec;
    rec.model = zoo[mi].name;
    rec.replicas = replicas;
    rec.clients = clients;
    std::vector<int64_t> all;
    for (int c = 0; c < clients; ++c) {
      const auto& lat = latencies[mi * clients + c];
      all.insert(all.end(), lat.begin(), lat.end());
    }
    rec.requests = static_cast<int64_t>(all.size());
    rec.seconds = seconds;
    rec.throughput_rps = rec.requests / std::max(seconds, 1e-9);
    std::sort(all.begin(), all.end());
    rec.p50_us = Percentile(all, 0.50);
    rec.p99_us = Percentile(all, 0.99);
    records.push_back(rec);
  }
  return records;
}

struct ReloadRecord {
  int replicas = 0;
  int clients = 0;
  double reload_ms = 0.0;
  int64_t requests_during = 0;
  int64_t dropped = 0;
};

// Hot reload under sustained load: clients hammer one model while a
// checkpoint swap runs; reload_ms is the full copy-on-swap cycle
// (shadow load per replica + swap + drain), requests_during how many
// responses the fleet produced while the swap was in flight.
ReloadRecord RunReload(const ModelSpec& m, int replicas, int clients,
                       const std::string& ckpt_path) {
  serve::Fleet fleet(BenchFleetOptions(replicas));
  GEO_CHECK(fleet.AddModel(m.name, CnnFactory(m.config), m.spec).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> dropped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const data::Sample& s = m.samples[(c + i++) % m.samples.size()];
        if (fleet.Submit(m.name, "client", s).ok()) {
          served.fetch_add(1);
        } else {
          dropped.fetch_add(1);
        }
      }
    });
  }
  // Let traffic reach steady state before swapping.
  while (served.load() < 16) std::this_thread::yield();

  const int64_t before = served.load();
  Stopwatch timer;
  GEO_CHECK(fleet.Reload(m.name, ckpt_path).ok());
  const double reload_ms = timer.ElapsedSeconds() * 1000.0;
  const int64_t during = served.load() - before;

  stop.store(true);
  for (auto& t : threads) t.join();
  fleet.Shutdown();

  ReloadRecord rec;
  rec.replicas = replicas;
  rec.clients = clients;
  rec.reload_ms = reload_ms;
  rec.requests_during = during;
  rec.dropped = dropped.load();
  return rec;
}

void WriteJson(const std::string& path, const std::vector<Record>& records,
               const std::vector<ReloadRecord>& reloads) {
  BenchJsonWriter json(path, "fleet_bench");
  if (!json.ok()) return;
  std::FILE* f = json.stream();
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"replicas\": %d, \"clients\": %d, "
        "\"requests\": %lld, \"seconds\": %.6f, \"throughput_rps\": %.1f, "
        "\"p50_us\": %lld, \"p99_us\": %lld}%s\n",
        r.model.c_str(), r.replicas, r.clients,
        static_cast<long long>(r.requests), r.seconds, r.throughput_rps,
        static_cast<long long>(r.p50_us), static_cast<long long>(r.p99_us),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"reload_under_load\": [\n");
  for (size_t i = 0; i < reloads.size(); ++i) {
    const ReloadRecord& r = reloads[i];
    std::fprintf(f,
                 "    {\"replicas\": %d, \"clients\": %d, "
                 "\"reload_ms\": %.3f, \"requests_during_reload\": %lld, "
                 "\"dropped\": %lld}%s\n",
                 r.replicas, r.clients, r.reload_ms,
                 static_cast<long long>(r.requests_during),
                 static_cast<long long>(r.dropped),
                 i + 1 < reloads.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  json.Finish();
}

void Run(const BenchArgs& args, const std::string& json_path, bool smoke) {
  (void)args;
  ts::DeviceGuard device(ts::Device::kParallel);

  const int requests_per_client = smoke ? 16 : 120;
  const std::vector<int> replica_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{2, 4, 8};

  std::vector<ModelSpec> zoo;
  zoo.push_back(MakeModelSpec("cnn-8x8", 8, 8));
  zoo.push_back(MakeModelSpec(smoke ? "cnn-8x8-wide" : "cnn-16x16",
                              smoke ? 8 : 16, smoke ? 16 : 16));

  std::printf("FLEET BENCH: %zu models, %d req/client/model\n", zoo.size(),
              requests_per_client);
  PrintRule();
  std::printf("%-14s %-9s %-8s %-12s %-9s %-9s\n", "model", "replicas",
              "clients", "rps", "p50(us)", "p99(us)");
  PrintRule();

  std::vector<Record> records;
  for (int replicas : replica_counts) {
    for (int clients : client_counts) {
      for (Record& rec :
           RunOnce(zoo, replicas, clients, requests_per_client)) {
        std::printf("%-14s %-9d %-8d %-12.1f %-9lld %-9lld\n",
                    rec.model.c_str(), rec.replicas, rec.clients,
                    rec.throughput_rps, static_cast<long long>(rec.p50_us),
                    static_cast<long long>(rec.p99_us));
        records.push_back(rec);
      }
    }
  }
  PrintRule();

  // Reload-under-load: a checkpoint with the zoo head's own shapes.
  const std::string ckpt_path = "fleet_bench_reload.ckpt";
  {
    models::PeriodicalCnn donor(zoo.front().config);
    GEO_CHECK(io::SaveStateDict(donor, ckpt_path).ok());
  }
  std::printf("hot reload under load (model=%s)\n", zoo.front().name.c_str());
  std::printf("%-9s %-8s %-12s %-16s %-8s\n", "replicas", "clients",
              "reload(ms)", "served during", "dropped");
  std::vector<ReloadRecord> reloads;
  for (int replicas : replica_counts) {
    ReloadRecord rec = RunReload(zoo.front(), replicas,
                                 smoke ? 2 : 4, ckpt_path);
    std::printf("%-9d %-8d %-12.3f %-16lld %-8lld\n", rec.replicas,
                rec.clients, rec.reload_ms,
                static_cast<long long>(rec.requests_during),
                static_cast<long long>(rec.dropped));
    reloads.push_back(rec);
  }
  std::remove(ckpt_path.c_str());
  PrintRule();

  if (!json_path.empty()) {
    WriteJson(json_path, records, reloads);
  }
  if (!args.trace_json.empty()) {
    geotorch::obs::WriteJsonFile(args.trace_json);
  }
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  auto args = geotorch::bench::BenchArgs::Parse(argc, argv);
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  geotorch::bench::Run(args, json_path, smoke);
  return 0;
}
