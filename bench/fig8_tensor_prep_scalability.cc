// Reproduces Fig. 8: elapsed time and peak memory of grid-based
// spatiotemporal tensor preparation, GeoTorchAI preprocessing module
// vs the GeoPandas-style baseline, over growing record counts. The
// paper sweeps 1.4M / 14M / 100M / 250M records and sees GeoPandas
// blow up in time and memory, OOMing on the largest input while
// GeoTorchAI stays flat; this harness reproduces that shape at a
// laptop-scaled sweep (x100 smaller by default; --scale=paper runs the
// two smaller paper sizes).
//
// Memory is the engines' logical-bytes accounting (both sides use the
// same accounting; see DESIGN.md §6); the baseline's simulated heap
// budget makes the largest run fail with OOM like GeoPandas does.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "baseline/geopandas_like.h"
#include "bench/bench_util.h"
#include "core/memory.h"
#include "core/stopwatch.h"
#include "df/dataframe.h"
#include "prep/st_manager.h"
#include "synth/taxi.h"
#include "tensor/ops.h"

namespace geotorch::bench {
namespace {

namespace ts = ::geotorch::tensor;

struct RunOutcome {
  double seconds = 0.0;
  double peak_mb = 0.0;
  bool oom = false;
};

RunOutcome RunGeoTorch(const std::vector<synth::TripRecord>& trips,
                       int num_partitions = 4) {
  MemoryTracker& tracker = MemoryTracker::Global();
  tracker.Reset();
  Stopwatch timer;
  df::DataFrame raw = synth::TripsToDataFrame(trips, num_partitions);
  df::DataFrame with_points =
      prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
  const int pickup_idx = with_points.schema().FieldIndex("is_pickup");
  df::DataFrame channels =
      with_points
          .WithColumn("pu", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return static_cast<double>(row.GetInt64(pickup_idx));
                      })
          .WithColumn("do", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return 1.0 -
                               static_cast<double>(row.GetInt64(pickup_idx));
                      });
  // Release the intermediates as Spark would (narrow dependencies are
  // not retained): reassigning drops the earlier frames' partitions.
  raw = df::DataFrame();
  with_points = df::DataFrame();

  prep::StGridSpec spec;
  spec.partitions_x = 12;
  spec.partitions_y = 16;
  spec.step_duration_sec = 1800;
  spec.aggs = {{df::AggKind::kSum, "pu", "pickups"},
               {df::AggKind::kSum, "do", "dropoffs"}};
  prep::StGridResult result =
      prep::STManager::GetStGridDataFrame(channels, spec);
  ts::Tensor tensor =
      prep::STManager::GetStGridTensor(result, {"pickups", "dropoffs"});
  RunOutcome outcome;
  outcome.seconds = timer.ElapsedSeconds();
  outcome.peak_mb = static_cast<double>(tracker.peak_bytes()) / (1 << 20);
  // Sanity: every trip landed in the tensor.
  if (static_cast<int64_t>(ts::SumAll(tensor)) !=
      static_cast<int64_t>(trips.size())) {
    std::printf("WARNING: tensor mass mismatch\n");
  }
  return outcome;
}

RunOutcome RunBaseline(const std::vector<synth::TripRecord>& trips,
                       int64_t memory_limit) {
  baseline::BaselineOptions options;
  options.partitions_x = 12;
  options.partitions_y = 16;
  options.step_duration_sec = 1800;
  options.memory_limit_bytes = memory_limit;
  baseline::BaselineOutcome outcome =
      baseline::GeoPandasLikePrepare(trips, options);
  RunOutcome run;
  run.seconds = outcome.elapsed_sec;
  run.peak_mb =
      static_cast<double>(outcome.peak_logical_bytes) / (1 << 20);
  run.oom = outcome.out_of_memory;
  return run;
}

void Run(const BenchArgs& args) {
  // Laptop-scaled sweep (paper: 1.4M / 14M / 100M / 250M records). The
  // simulated heap budget plays the role of the testbed's 120 GB RAM,
  // scaled so the largest input OOMs the baseline like in the paper.
  std::vector<int64_t> sizes;
  int64_t budget;
  if (args.paper_scale) {
    sizes = {1400000, 14000000};
    budget = 6LL << 30;
  } else {
    sizes = {20000, 100000, 500000, 2500000};
    budget = 600LL << 20;  // 600 MB simulated heap
  }

  std::printf("FIG 8: Grid-Based Spatiotemporal Tensor Preparation\n");
  std::printf("(baseline heap budget: %lld MB)\n",
              static_cast<long long>(budget >> 20));
  PrintRule();
  std::printf("%-10s | %-12s %-12s | %-12s %-12s\n", "", "GeoTorch-CPP",
              "", "GeoPandas-like", "");
  std::printf("%-10s | %-12s %-12s | %-12s %-12s\n", "records", "time (s)",
              "peak (MB)", "time (s)", "peak (MB)");
  PrintRule();
  for (int64_t n : sizes) {
    synth::TaxiTripConfig config;
    config.num_records = n;
    config.duration_sec = 92LL * 24 * 3600;
    config.seed = 17;
    auto trips = synth::GenerateTaxiTrips(config);

    // Warm-up pass: the first allocation burst of a given size pays
    // kernel page-fault cost that later identical runs do not; running
    // both engines once untimed gives each a warm allocator.
    RunGeoTorch(trips);
    RunBaseline(trips, budget);

    RunOutcome ours = RunGeoTorch(trips);
    RunOutcome base = RunBaseline(trips, budget);

    char base_time[32];
    char base_mem[32];
    if (base.oom) {
      std::snprintf(base_time, sizeof(base_time), "OOM@%.2f", base.seconds);
      std::snprintf(base_mem, sizeof(base_mem), ">%lld",
                    static_cast<long long>(budget >> 20));
    } else {
      std::snprintf(base_time, sizeof(base_time), "%.2f", base.seconds);
      std::snprintf(base_mem, sizeof(base_mem), "%.1f", base.peak_mb);
    }
    std::printf("%-10lld | %-12.2f %-12.1f | %-12s %-12s\n",
                static_cast<long long>(n), ours.seconds, ours.peak_mb,
                base_time, base_mem);
  }
  PrintRule();
  std::printf("shape check: baseline time and memory grow steeply and OOM "
              "on the largest input;\nGeoTorch-CPP stays near-flat in "
              "memory (partitioned, no row objects).\n");

  // Partition-parallel scalability of the preprocessing pipeline: the
  // same prep (spatial join via the grid fast path + group-by +
  // scatter) over a growing partition count. Partitions are the unit
  // of parallel work, so this is the thread-sweep analogue of the
  // paper's cluster scaling (limited by the hardware threads of this
  // machine).
  const int64_t sweep_n = sizes[std::min<size_t>(1, sizes.size() - 1)];
  synth::TaxiTripConfig sweep_config;
  sweep_config.num_records = sweep_n;
  sweep_config.duration_sec = 92LL * 24 * 3600;
  sweep_config.seed = 17;
  auto sweep_trips = synth::GenerateTaxiTrips(sweep_config);
  std::printf("\nprep scalability vs partitions (%lld records, %u hw "
              "threads)\n",
              static_cast<long long>(sweep_n),
              std::max(1u, std::thread::hardware_concurrency()));
  PrintRule();
  std::printf("%-12s %-12s %-12s\n", "partitions", "time (s)", "speedup");
  PrintRule();
  double base_secs = 0.0;
  for (int p : {1, 2, 4, 8}) {
    RunGeoTorch(sweep_trips, p);  // warm-up
    RunOutcome outcome = RunGeoTorch(sweep_trips, p);
    if (p == 1) base_secs = outcome.seconds;
    std::printf("%-12d %-12.2f %-12.2f\n", p, outcome.seconds,
                base_secs / outcome.seconds);
  }
  PrintRule();
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
