// Reproduces Fig. 8: elapsed time and peak memory of grid-based
// spatiotemporal tensor preparation, GeoTorchAI preprocessing module
// vs the GeoPandas-style baseline, over growing record counts. The
// paper sweeps 1.4M / 14M / 100M / 250M records and sees GeoPandas
// blow up in time and memory, OOMing on the largest input while
// GeoTorchAI stays flat; this harness reproduces that shape at a
// laptop-scaled sweep (x100 smaller by default; --scale=paper runs the
// two smaller paper sizes).
//
// Memory is the engines' logical-bytes accounting (both sides use the
// same accounting; see DESIGN.md §6); the baseline's simulated heap
// budget makes the largest run fail with OOM like GeoPandas does.
//
// The out-of-core sweep at the end re-runs the pipeline under a
// PartitionStore resident budget *below* the dataset size: partitions
// spill to GTDF files and fault back in on demand, the run completes
// with bounded peak resident bytes, and the RAM-only baseline given the
// same budget OOMs (DESIGN.md §12). --json=PATH writes BENCH_df.json;
// --smoke shrinks the sweep for CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "baseline/geopandas_like.h"
#include "bench/bench_util.h"
#include "core/memory.h"
#include "core/stopwatch.h"
#include "core/thread_pool.h"
#include "df/dataframe.h"
#include "df/partition_store.h"
#include "prep/st_manager.h"
#include "synth/taxi.h"
#include "tensor/ops.h"

namespace geotorch::bench {
namespace {

namespace ts = ::geotorch::tensor;

struct RunOutcome {
  double seconds = 0.0;
  double peak_mb = 0.0;
  bool oom = false;
};

RunOutcome RunGeoTorch(const std::vector<synth::TripRecord>& trips,
                       int num_partitions = 4) {
  MemoryTracker& tracker = MemoryTracker::Global();
  tracker.Reset();
  Stopwatch timer;
  df::DataFrame raw = synth::TripsToDataFrame(trips, num_partitions);
  df::DataFrame with_points =
      prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
  const int pickup_idx = with_points.schema().FieldIndex("is_pickup");
  df::DataFrame channels =
      with_points
          .WithColumn("pu", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return static_cast<double>(row.GetInt64(pickup_idx));
                      })
          .WithColumn("do", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return 1.0 -
                               static_cast<double>(row.GetInt64(pickup_idx));
                      });
  // Release the intermediates as Spark would (narrow dependencies are
  // not retained): reassigning drops the earlier frames' partitions.
  raw = df::DataFrame();
  with_points = df::DataFrame();

  prep::StGridSpec spec;
  spec.partitions_x = 12;
  spec.partitions_y = 16;
  spec.step_duration_sec = 1800;
  spec.aggs = {{df::AggKind::kSum, "pu", "pickups"},
               {df::AggKind::kSum, "do", "dropoffs"}};
  prep::StGridResult result =
      prep::STManager::GetStGridDataFrame(channels, spec);
  ts::Tensor tensor =
      prep::STManager::GetStGridTensor(result, {"pickups", "dropoffs"});
  RunOutcome outcome;
  outcome.seconds = timer.ElapsedSeconds();
  outcome.peak_mb = static_cast<double>(tracker.peak_bytes()) / (1 << 20);
  // Sanity: every trip landed in the tensor.
  if (static_cast<int64_t>(ts::SumAll(tensor)) !=
      static_cast<int64_t>(trips.size())) {
    std::printf("WARNING: tensor mass mismatch\n");
  }
  return outcome;
}

// One out-of-core run: the same pipeline under a PartitionStore budget
// smaller than the dataset, so cold partitions spill to GTDF and fault
// back in on demand. The headline claim is the bound: the store's peak
// resident bytes never exceed budget + the partitions concurrently
// pinned by workers (one input + one output per worker — the "±1
// partition" allowance of the admission policy).
struct SpillOutcome {
  double seconds = 0.0;
  int64_t dataset_bytes = 0;   ///< widest intermediate frame, unrestricted
  int64_t budget_bytes = 0;
  int64_t peak_resident = 0;
  int64_t bound_bytes = 0;
  int64_t spills = 0;
  int64_t faults = 0;
  int64_t spill_bytes = 0;
  bool bounded = false;
  bool mass_ok = false;
};

SpillOutcome RunOutOfCore(const std::vector<synth::TripRecord>& trips,
                          int num_partitions, double budget_fraction) {
  df::PartitionStore& store = df::PartitionStore::Global();
  const df::PartitionStore::Options saved = store.options();

  SpillOutcome out;
  {
    // Size the widest intermediate (points + derived channels) with no
    // budget; this is what a RAM-only engine must hold at once.
    df::DataFrame raw = synth::TripsToDataFrame(trips, num_partitions);
    df::DataFrame with_points =
        prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
    out.dataset_bytes =
        with_points.ByteSize() +
        2 * static_cast<int64_t>(sizeof(double)) * with_points.NumRows();
  }

  df::PartitionStore::Options opts;
  opts.enabled = true;
  opts.resident_budget_bytes = std::max<int64_t>(
      1 << 20, static_cast<int64_t>(budget_fraction *
                                    static_cast<double>(out.dataset_bytes)));
  opts.spill_dir = "geotorch_spill_fig8";
  store.Configure(opts);
  store.ResetPeak();
  const df::PartitionStore::Stats before = store.GetStats();
  out.budget_bytes = opts.resident_budget_bytes;

  {
    Stopwatch timer;
    df::DataFrame raw = synth::TripsToDataFrame(trips, num_partitions);
    df::DataFrame with_points =
        prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
    const int pickup_idx = with_points.schema().FieldIndex("is_pickup");
    df::DataFrame channels =
        with_points
            .WithColumn("pu", df::DataType::kDouble,
                        [pickup_idx](const df::RowView& row) -> df::Value {
                          return static_cast<double>(row.GetInt64(pickup_idx));
                        })
            .WithColumn("do", df::DataType::kDouble,
                        [pickup_idx](const df::RowView& row) -> df::Value {
                          return 1.0 - static_cast<double>(
                                           row.GetInt64(pickup_idx));
                        });
    raw = df::DataFrame();
    with_points = df::DataFrame();

    prep::StGridSpec spec;
    spec.partitions_x = 12;
    spec.partitions_y = 16;
    spec.step_duration_sec = 1800;
    spec.aggs = {{df::AggKind::kSum, "pu", "pickups"},
                 {df::AggKind::kSum, "do", "dropoffs"}};
    prep::StGridResult result =
        prep::STManager::GetStGridDataFrame(channels, spec);
    ts::Tensor tensor =
        prep::STManager::GetStGridTensor(result, {"pickups", "dropoffs"});
    out.seconds = timer.ElapsedSeconds();
    out.mass_ok = static_cast<int64_t>(ts::SumAll(tensor)) ==
                  static_cast<int64_t>(trips.size());
  }

  const df::PartitionStore::Stats after = store.GetStats();
  out.peak_resident = after.peak_resident_bytes;
  out.spills = after.spill_count - before.spill_count;
  out.faults = after.fault_count - before.fault_count;
  out.spill_bytes = after.spill_bytes - before.spill_bytes;
  // Widest frame per partition, doubled (one pinned input + one output
  // being built), per concurrent worker.
  const int64_t part_bytes = out.dataset_bytes / num_partitions;
  const int workers = std::max(1, ThreadPool::Global().num_threads());
  out.bound_bytes = out.budget_bytes + 2 * part_bytes * workers;
  out.bounded = out.peak_resident <= out.bound_bytes;

  store.Configure(saved);
  std::error_code ec;
  std::filesystem::remove_all(opts.spill_dir, ec);
  return out;
}

RunOutcome RunBaseline(const std::vector<synth::TripRecord>& trips,
                       int64_t memory_limit) {
  baseline::BaselineOptions options;
  options.partitions_x = 12;
  options.partitions_y = 16;
  options.step_duration_sec = 1800;
  options.memory_limit_bytes = memory_limit;
  baseline::BaselineOutcome outcome =
      baseline::GeoPandasLikePrepare(trips, options);
  RunOutcome run;
  run.seconds = outcome.elapsed_sec;
  run.peak_mb =
      static_cast<double>(outcome.peak_logical_bytes) / (1 << 20);
  run.oom = outcome.out_of_memory;
  return run;
}

void Run(const BenchArgs& args, const std::string& json_path, bool smoke) {
  // Laptop-scaled sweep (paper: 1.4M / 14M / 100M / 250M records). The
  // simulated heap budget plays the role of the testbed's 120 GB RAM,
  // scaled so the largest input OOMs the baseline like in the paper.
  std::vector<int64_t> sizes;
  int64_t budget;
  if (args.paper_scale) {
    sizes = {1400000, 14000000};
    budget = 6LL << 30;
  } else if (smoke) {
    sizes = {20000, 100000};
    budget = 30LL << 20;
  } else {
    sizes = {20000, 100000, 500000, 2500000};
    budget = 600LL << 20;  // 600 MB simulated heap
  }

  std::printf("FIG 8: Grid-Based Spatiotemporal Tensor Preparation\n");
  std::printf("(baseline heap budget: %lld MB)\n",
              static_cast<long long>(budget >> 20));
  PrintRule();
  std::printf("%-10s | %-12s %-12s | %-12s %-12s\n", "", "GeoTorch-CPP",
              "", "GeoPandas-like", "");
  std::printf("%-10s | %-12s %-12s | %-12s %-12s\n", "records", "time (s)",
              "peak (MB)", "time (s)", "peak (MB)");
  PrintRule();
  for (int64_t n : sizes) {
    synth::TaxiTripConfig config;
    config.num_records = n;
    config.duration_sec = 92LL * 24 * 3600;
    config.seed = 17;
    auto trips = synth::GenerateTaxiTrips(config);

    // Warm-up pass: the first allocation burst of a given size pays
    // kernel page-fault cost that later identical runs do not; running
    // both engines once untimed gives each a warm allocator.
    RunGeoTorch(trips);
    RunBaseline(trips, budget);

    RunOutcome ours = RunGeoTorch(trips);
    RunOutcome base = RunBaseline(trips, budget);

    char base_time[32];
    char base_mem[32];
    if (base.oom) {
      std::snprintf(base_time, sizeof(base_time), "OOM@%.2f", base.seconds);
      std::snprintf(base_mem, sizeof(base_mem), ">%lld",
                    static_cast<long long>(budget >> 20));
    } else {
      std::snprintf(base_time, sizeof(base_time), "%.2f", base.seconds);
      std::snprintf(base_mem, sizeof(base_mem), "%.1f", base.peak_mb);
    }
    std::printf("%-10lld | %-12.2f %-12.1f | %-12s %-12s\n",
                static_cast<long long>(n), ours.seconds, ours.peak_mb,
                base_time, base_mem);
  }
  PrintRule();
  std::printf("shape check: baseline time and memory grow steeply and OOM "
              "on the largest input;\nGeoTorch-CPP stays near-flat in "
              "memory (partitioned, no row objects).\n");

  // Partition-parallel scalability of the preprocessing pipeline: the
  // same prep (spatial join via the grid fast path + group-by +
  // scatter) over a growing partition count. Partitions are the unit
  // of parallel work, so this is the thread-sweep analogue of the
  // paper's cluster scaling (limited by the hardware threads of this
  // machine).
  const int64_t sweep_n = sizes[std::min<size_t>(1, sizes.size() - 1)];
  synth::TaxiTripConfig sweep_config;
  sweep_config.num_records = sweep_n;
  sweep_config.duration_sec = 92LL * 24 * 3600;
  sweep_config.seed = 17;
  auto sweep_trips = synth::GenerateTaxiTrips(sweep_config);
  std::printf("\nprep scalability vs partitions (%lld records, %u hw "
              "threads)\n",
              static_cast<long long>(sweep_n),
              std::max(1u, std::thread::hardware_concurrency()));
  PrintRule();
  std::printf("%-12s %-12s %-12s\n", "partitions", "time (s)", "speedup");
  PrintRule();
  double base_secs = 0.0;
  const std::vector<int> part_sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (int p : part_sweep) {
    RunGeoTorch(sweep_trips, p);  // warm-up
    RunOutcome outcome = RunGeoTorch(sweep_trips, p);
    if (p == 1) base_secs = outcome.seconds;
    std::printf("%-12d %-12.2f %-12.2f\n", p, outcome.seconds,
                base_secs / outcome.seconds);
  }
  PrintRule();

  // Out-of-core sweep: same pipeline, resident budget below the dataset
  // size. The engine spills cold partitions to GTDF and completes with
  // peak resident bytes bounded by the budget plus pinned partitions; a
  // RAM-only engine given the same budget (the baseline's simulated
  // heap) dies with OOM.
  const int64_t spill_n = sweep_n;
  const int spill_parts = 16;
  std::printf("\nout-of-core: resident budget below dataset size "
              "(%lld records, %d partitions)\n",
              static_cast<long long>(spill_n), spill_parts);
  PrintRule();
  std::printf("%-10s %-10s %-10s %-10s %-8s %-8s %-9s %-9s\n", "budget%",
              "data MB", "budgetMB", "peak MB", "spills", "faults",
              "bounded", "baseline");
  PrintRule();
  struct SpillRow {
    double fraction;
    SpillOutcome oc;
    bool baseline_oom;
  };
  std::vector<SpillRow> spill_rows;
  for (double fraction : {0.5, 0.25}) {
    SpillOutcome oc = RunOutOfCore(sweep_trips, spill_parts, fraction);
    RunOutcome base = RunBaseline(sweep_trips, oc.budget_bytes);
    spill_rows.push_back({fraction, oc, base.oom});
    std::printf("%-10.0f %-10.1f %-10.1f %-10.1f %-8lld %-8lld %-9s %-9s\n",
                fraction * 100.0,
                static_cast<double>(oc.dataset_bytes) / (1 << 20),
                static_cast<double>(oc.budget_bytes) / (1 << 20),
                static_cast<double>(oc.peak_resident) / (1 << 20),
                static_cast<long long>(oc.spills),
                static_cast<long long>(oc.faults),
                oc.bounded ? "yes" : "NO",
                base.oom ? "OOM" : "survived");
    if (!oc.mass_ok) std::printf("WARNING: tensor mass mismatch\n");
    if (!oc.bounded) {
      std::printf("WARNING: peak resident %.1f MB exceeds bound %.1f MB\n",
                  static_cast<double>(oc.peak_resident) / (1 << 20),
                  static_cast<double>(oc.bound_bytes) / (1 << 20));
    }
  }
  PrintRule();

  if (!json_path.empty()) {
    BenchJsonWriter json(json_path, "fig8_tensor_prep");
    if (json.ok()) {
      std::FILE* f = json.stream();
      std::fprintf(f, "  \"records\": %lld,\n",
                   static_cast<long long>(spill_n));
      std::fprintf(f, "  \"spill_partitions\": %d,\n", spill_parts);
      std::fprintf(f, "  \"out_of_core\": [\n");
      for (size_t i = 0; i < spill_rows.size(); ++i) {
        const SpillRow& r = spill_rows[i];
        std::fprintf(
            f,
            "    {\"budget_fraction\": %.2f, \"dataset_mb\": %.2f, "
            "\"budget_mb\": %.2f, \"peak_resident_mb\": %.2f, "
            "\"bound_mb\": %.2f, \"bounded\": %s, \"spills\": %lld, "
            "\"faults\": %lld, \"spilled_mb\": %.2f, \"seconds\": %.3f, "
            "\"mass_ok\": %s, \"baseline_oom\": %s}%s\n",
            r.fraction,
            static_cast<double>(r.oc.dataset_bytes) / (1 << 20),
            static_cast<double>(r.oc.budget_bytes) / (1 << 20),
            static_cast<double>(r.oc.peak_resident) / (1 << 20),
            static_cast<double>(r.oc.bound_bytes) / (1 << 20),
            r.oc.bounded ? "true" : "false",
            static_cast<long long>(r.oc.spills),
            static_cast<long long>(r.oc.faults),
            static_cast<double>(r.oc.spill_bytes) / (1 << 20), r.oc.seconds,
            r.oc.mass_ok ? "true" : "false",
            r.baseline_oom ? "true" : "false",
            i + 1 < spill_rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      json.Finish();
    }
  }
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv),
                       json_path, smoke);
  return 0;
}
