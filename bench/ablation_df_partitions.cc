// Ablation: DataFrame partition count. The preprocessing module's
// scalability rests on partition-parallel execution (one partition per
// simulated executor). This bench sweeps the partition count through
// the full trip-aggregation pipeline.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "df/dataframe.h"
#include "prep/st_manager.h"
#include "synth/taxi.h"

namespace geotorch::bench {
namespace {

void Run(const BenchArgs& args) {
  const int64_t n = args.paper_scale ? 5000000 : 800000;
  synth::TaxiTripConfig config;
  config.num_records = n;
  config.seed = 4;
  auto trips = synth::GenerateTaxiTrips(config);

  std::printf("ABLATION: ST Aggregation Pipeline vs Partition Count "
              "(%lld records)\n",
              static_cast<long long>(n));
  PrintRule();
  std::printf("%-12s %-12s %-10s\n", "partitions", "time (s)", "speedup");
  PrintRule();
  // Warm-up: one unmeasured pipeline run so first-touch page faults do
  // not pollute the first measured row.
  {
    df::DataFrame warm_raw = synth::TripsToDataFrame(trips, 4);
    df::DataFrame warm =
        prep::STManager::AddSpatialPoints(warm_raw, "lat", "lon", "point");
    prep::StGridSpec spec;
    spec.partitions_x = 12;
    spec.partitions_y = 16;
    spec.step_duration_sec = 1800;
    prep::STManager::GetStGridDataFrame(warm, spec);
  }
  double base_secs = 0.0;
  for (int parts : {1, 2, 4, 8}) {
    Stopwatch timer;
    df::DataFrame raw = synth::TripsToDataFrame(trips, parts);
    df::DataFrame with_points =
        prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
    prep::StGridSpec spec;
    spec.partitions_x = 12;
    spec.partitions_y = 16;
    spec.step_duration_sec = 1800;
    prep::StGridResult result =
        prep::STManager::GetStGridDataFrame(with_points, spec);
    prep::STManager::GetStGridTensor(result, {"count"});
    const double secs = timer.ElapsedSeconds();
    if (parts == 1) base_secs = secs;
    std::printf("%-12d %-12.3f %-10.2fx\n", parts, secs,
                base_secs / secs);
  }
  PrintRule();
  std::printf("shape check: time falls with partitions until the core "
              "count, then flattens.\n");
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
