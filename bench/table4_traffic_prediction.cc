// Reproduces Table IV: traffic prediction MAE/RMSE of the four grid
// models on BikeNYC-DeepSTN, TaxiBJ21, and YellowTrip-NYC (the latter
// produced end-to-end by the preprocessing module). Datasets are
// synthetic with the originals' shapes and periodic structure; errors
// are on min-max-normalized data. Expected shape (paper): DeepSTN+
// best, ST-ResNet second, Periodical CNN / ConvLSTM behind.
//
// Flags: --iterations=N (default 2; paper uses 5), --scale=paper.

#include <cstdio>
#include <vector>

#include "bench/grid_bench_common.h"
#include "datasets/benchmarks.h"
#include "synth/weather.h"

namespace geotorch::bench {
namespace {

namespace synth = ::geotorch::synth;

void Run(const BenchArgs& args) {
  const int64_t bike_t = args.paper_scale ? 4392 : 480;
  const int64_t taxi_t = args.paper_scale ? 4320 : 480;
  const int64_t trip_records = args.paper_scale ? 2000000 : 60000;

  struct DatasetSpec {
    const char* name;
    std::function<datasets::GridDataset(uint64_t)> make;
  };
  std::vector<DatasetSpec> specs = {
      {"BikeNYC-DeepSTN",
       [bike_t](uint64_t seed) {
         return datasets::MakeBikeNycDeepStn(bike_t, seed);
       }},
      {"TaxiBJ21",
       [taxi_t, &args](uint64_t seed) {
         // 32x32 at paper scale; 16x16 for the quick run.
         if (args.paper_scale) return datasets::MakeTaxiBj21(taxi_t, seed);
         return datasets::GridDataset(
             synth::GenerateGridFlow(taxi_t, 2, 16, 16, 48, seed), 48);
       }},
      {"YellowTrip-NYC", [trip_records](uint64_t seed) {
         datasets::YellowTripConfig config;
         config.num_records = trip_records;
         config.duration_sec = 10LL * 24 * 3600;
         config.seed = seed;
         return datasets::MakeYellowTripNyc(config);
       }}};

  models::TrainConfig tc;
  tc.max_epochs = args.paper_scale ? 12 : 5;
  tc.patience = 4;
  tc.batch_size = 16;
  tc.lr = 5e-3f;

  std::printf("TABLE IV: Traffic Prediction with Spatiotemporal Models\n");
  std::printf("(normalized units; %d iteration(s) per cell)\n",
              args.iterations);
  PrintRule();
  std::printf("%-18s %-6s %-16s %-16s %-16s %-16s\n", "Dataset", "Metric",
              "Periodical CNN", "ConvLSTM", "ST-ResNet", "DeepSTN+");
  PrintRule();

  const GridModelKind kinds[] = {
      GridModelKind::kPeriodicalCnn, GridModelKind::kConvLstm,
      GridModelKind::kStResNet, GridModelKind::kDeepStnPlus};
  for (const auto& spec : specs) {
    std::vector<GridRunResult> results;
    for (GridModelKind kind : kinds) {
      results.push_back(
          RunGridModel(kind, spec.make, tc, args.iterations));
    }
    std::printf("%-18s %-6s %-16s %-16s %-16s %-16s\n", spec.name, "MAE",
                PlusMinus(results[0].mae.mean(),
                          results[0].mae.max_deviation()).c_str(),
                PlusMinus(results[1].mae.mean(),
                          results[1].mae.max_deviation()).c_str(),
                PlusMinus(results[2].mae.mean(),
                          results[2].mae.max_deviation()).c_str(),
                PlusMinus(results[3].mae.mean(),
                          results[3].mae.max_deviation()).c_str());
    std::printf("%-18s %-6s %-16s %-16s %-16s %-16s\n", "", "RMSE",
                PlusMinus(results[0].rmse.mean(),
                          results[0].rmse.max_deviation()).c_str(),
                PlusMinus(results[1].rmse.mean(),
                          results[1].rmse.max_deviation()).c_str(),
                PlusMinus(results[2].rmse.mean(),
                          results[2].rmse.max_deviation()).c_str(),
                PlusMinus(results[3].rmse.mean(),
                          results[3].rmse.max_deviation()).c_str());
  }
  PrintRule();
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
