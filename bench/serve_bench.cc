// Serving-engine throughput/latency sweep: client concurrency x
// max_batch over Table-VII grid models. Closed-loop clients submit
// single samples back-to-back; the engine coalesces them into dynamic
// micro-batches, so the sweep quantifies what batching buys over
// batch-size-1 serving (per-forward overhead amortization plus larger
// GEMMs — on a single-hardware-thread host the win is all
// amortization). Writes a machine-readable report with --json=PATH
// (the committed BENCH_serve.json); --smoke shrinks the sweep for CI.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "models/grid_models.h"
#include "nn/precision.h"
#include "obs/obs.h"
#include "serve/adapters.h"
#include "serve/engine.h"
#include "tensor/device.h"

namespace geotorch::bench {
namespace {

namespace data = ::geotorch::data;
namespace datasets = ::geotorch::datasets;
namespace models = ::geotorch::models;
namespace serve = ::geotorch::serve;
namespace ts = ::geotorch::tensor;

struct Record {
  std::string model;
  std::string precision = "f32";
  int max_batch = 0;
  int clients = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  double mean_batch = 0.0;
  int64_t batches = 0;
};

int64_t Percentile(std::vector<int64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

Record RunOnce(const std::string& model_name, models::GridModel& model,
               const std::vector<data::Sample>& samples, int max_batch,
               int clients, int requests_per_client,
               nn::Precision precision = nn::Precision::kF32) {
  serve::EngineOptions opts;
  opts.max_batch = max_batch;
  opts.max_delay_us = 200;
  opts.max_queue = 1024;
  opts.warmup_batches = 2;
  opts.precision = precision;
  serve::SampleSpec spec;
  spec.x = samples[0].x.shape();
  for (const auto& e : samples[0].extras) spec.extras.push_back(e.shape());
  serve::Engine engine(serve::GridForward(model, opts.precision), spec, opts);

  std::vector<std::vector<int64_t>> latencies(clients);
  std::atomic<int64_t> errors{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const data::Sample& s =
            samples[(c * requests_per_client + i) % samples.size()];
        const int64_t t0 = obs::NowNs();
        auto r = engine.Submit(s);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        latencies[c].push_back((obs::NowNs() - t0) / 1000);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  engine.Shutdown();

  Record rec;
  rec.model = model_name;
  rec.precision = nn::PrecisionName(precision);
  rec.max_batch = max_batch;
  rec.clients = clients;
  rec.requests = static_cast<int64_t>(clients) * requests_per_client -
                 errors.load();
  rec.seconds = seconds;
  rec.throughput_rps = rec.requests / std::max(seconds, 1e-9);
  std::vector<int64_t> all;
  for (auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  rec.p50_us = Percentile(all, 0.50);
  rec.p99_us = Percentile(all, 0.99);
  const serve::EngineStats stats = engine.stats();
  rec.batches = stats.batches;
  rec.mean_batch =
      stats.batches > 0
          ? static_cast<double>(stats.requests) / stats.batches
          : 0.0;
  if (errors.load() > 0) {
    std::printf("WARNING: %lld submits failed\n",
                static_cast<long long>(errors.load()));
  }
  return rec;
}

// Single-hardware-thread hosts jitter by ~10% run to run, which is the
// same order as the effect being measured; take the best of `reps`
// runs so each configuration is judged at its achievable throughput.
Record RunOne(const std::string& model_name, models::GridModel& model,
              const std::vector<data::Sample>& samples, int max_batch,
              int clients, int requests_per_client, int reps) {
  Record best;
  for (int r = 0; r < reps; ++r) {
    Record rec = RunOnce(model_name, model, samples, max_batch, clients,
                         requests_per_client);
    if (r == 0 || rec.throughput_rps > best.throughput_rps) best = rec;
  }
  return best;
}

void WriteJson(const std::string& path, const std::vector<Record>& records,
               const std::string& speedup_model, double batching_speedup,
               int speedup_clients, int speedup_batch) {
  BenchJsonWriter json(path, "serve_bench");
  if (!json.ok()) return;
  std::FILE* f = json.stream();
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"precision\": \"%s\", \"max_batch\": %d, "
        "\"clients\": %d, "
        "\"requests\": %lld, \"seconds\": %.6f, \"throughput_rps\": %.1f, "
        "\"p50_us\": %lld, \"p99_us\": %lld, \"mean_batch\": %.2f, "
        "\"batches\": %lld}%s\n",
        r.model.c_str(), r.precision.c_str(), r.max_batch, r.clients,
        static_cast<long long>(r.requests), r.seconds, r.throughput_rps,
        static_cast<long long>(r.p50_us), static_cast<long long>(r.p99_us),
        r.mean_batch, static_cast<long long>(r.batches),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"speedup_model\": \"%s\",\n",
               speedup_model.c_str());
  std::fprintf(f, "    \"speedup_clients\": %d,\n", speedup_clients);
  std::fprintf(f, "    \"speedup_max_batch\": %d,\n", speedup_batch);
  std::fprintf(f, "    \"batching_speedup_vs_batch1\": %.3f\n",
               batching_speedup);
  std::fprintf(f, "  },\n");
  json.Finish();
}

void Run(const BenchArgs& args, const std::string& json_path, bool smoke) {
  (void)args;
  // Batching wins must come from the engine, not from thread-level
  // parallelism inside one forward, so pin the parallel backend and
  // report hardware_threads in the JSON for context.
  ts::DeviceGuard device(ts::Device::kParallel);

  const int requests_per_client = smoke ? 24 : 160;
  const int reps = smoke ? 1 : 3;
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 16};
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};

  // Each zoo entry owns its dataset and samples: grid size changes the
  // compute/dispatch balance, which is the axis batching lives on.
  // Small grids spend a large fraction of each forward on per-dispatch
  // graph setup that a batch amortizes; large grids are GEMM-bound
  // with near-linear batch scaling, so they bound the worst case.
  struct ZooEntry {
    std::string name;
    std::unique_ptr<models::GridModel> model;
    std::vector<data::Sample> samples;
  };
  std::vector<ZooEntry> zoo;
  auto add_entry = [&zoo](const char* kind, int64_t grid, int64_t hidden) {
    datasets::GridDataset ds = datasets::MakeTemperature(
        /*timesteps=*/240, grid, grid, /*seed=*/7);
    ds.MinMaxNormalize();
    models::GridModelConfig mc;
    mc.channels = ds.channels();
    mc.height = ds.height();
    mc.width = ds.width();
    mc.len_closeness = 3;
    mc.len_period = 2;
    mc.len_trend = 1;
    mc.hidden = hidden;
    mc.seed = 42;
    ds.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                   mc.len_trend);
    ZooEntry entry;
    entry.name = std::string(kind) + "-" + std::to_string(grid) + "x" +
                 std::to_string(grid);
    if (std::strcmp(kind, "StResNet") == 0) {
      entry.model = std::make_unique<models::StResNet>(mc);
    } else {
      entry.model = std::make_unique<models::PeriodicalCnn>(mc);
    }
    for (int64_t i = 0; i < std::min<int64_t>(ds.Size(), 64); ++i) {
      entry.samples.push_back(ds.Get(i));
    }
    zoo.push_back(std::move(entry));
  };
  add_entry("PeriodicalCnn", smoke ? 8 : 8, 8);
  if (!smoke) {
    add_entry("PeriodicalCnn", 16, 16);
    add_entry("StResNet", 16, 16);
  }

  std::printf("SERVE BENCH: dynamic batching sweep (%d req/client)\n",
              requests_per_client);
  PrintRule();
  std::printf("%-14s %-10s %-8s %-12s %-9s %-9s %-10s\n", "model",
              "max_batch", "clients", "rps", "p50(us)", "p99(us)",
              "mean_batch");
  PrintRule();

  std::vector<Record> records;
  for (auto& m : zoo) {
    for (int clients : client_counts) {
      for (int max_batch : batch_sizes) {
        Record rec = RunOne(m.name, *m.model, m.samples, max_batch, clients,
                            requests_per_client, reps);
        std::printf("%-14s %-10d %-8d %-12.1f %-9lld %-9lld %-10.2f\n",
                    rec.model.c_str(), rec.max_batch, rec.clients,
                    rec.throughput_rps, static_cast<long long>(rec.p50_us),
                    static_cast<long long>(rec.p99_us), rec.mean_batch);
        records.push_back(rec);
      }
    }
  }
  PrintRule();

  // Per-precision rows over the first zoo model (the f32 row above is
  // the baseline; these serve the same model through the adapters'
  // precision path — GEOTORCH_SERVE_PRECISION in production). Grid
  // models are conv-heavy, so the weight operand rides the GEMM's A
  // side and cannot be pre-packed: expect bf16 near 1x here and int8
  // winning on compute alone; quant_bench has the classifier story.
  std::printf("per-precision (model=%s, clients=4, max_batch=8)\n",
              zoo.front().name.c_str());
  for (nn::Precision p : {nn::Precision::kBf16, nn::Precision::kInt8}) {
    Record rec;
    for (int r = 0; r < reps; ++r) {
      Record one = RunOnce(zoo.front().name, *zoo.front().model,
                           zoo.front().samples, /*max_batch=*/8,
                           /*clients=*/4, requests_per_client, p);
      if (r == 0 || one.throughput_rps > rec.throughput_rps) rec = one;
    }
    std::printf("%-14s %-10d %-8d %-12.1f %-9lld %-9lld %-10.2f  [%s]\n",
                rec.model.c_str(), rec.max_batch, rec.clients,
                rec.throughput_rps, static_cast<long long>(rec.p50_us),
                static_cast<long long>(rec.p99_us), rec.mean_batch,
                rec.precision.c_str());
    records.push_back(rec);
  }
  zoo.front().model->SetPrecision(nn::Precision::kF32);
  PrintRule();

  // Acceptance headline: coalescing (max_batch >= 8) vs batch-size-1
  // at >= 4 concurrent clients — best batched config over the
  // batch-1 row with the same model and client count. On a host with
  // no spare hardware threads the batched forward has no per-row
  // compute advantage, so the win comes from amortizing per-request
  // engine overhead across full batches: expect it where clients >=
  // max_batch keeps batches full.
  std::string speedup_model;
  int speedup_clients = 0;
  int speedup_batch = 0;
  double speedup = 0.0;
  for (const Record& r : records) {
    if (r.clients < 4 || r.max_batch < 8 || r.precision != "f32") continue;
    for (const Record& base : records) {
      if (base.max_batch == 1 && base.precision == "f32" &&
          base.clients == r.clients && base.model == r.model &&
          base.throughput_rps > 0) {
        const double s = r.throughput_rps / base.throughput_rps;
        if (s > speedup) {
          speedup = s;
          speedup_model = r.model;
          speedup_clients = r.clients;
          speedup_batch = r.max_batch;
        }
      }
    }
  }
  std::printf("dynamic batching (%s, max_batch=%d) vs batch 1 at %d "
              "clients: %.2fx\n",
              speedup_model.c_str(), speedup_batch, speedup_clients, speedup);

  if (!json_path.empty()) {
    WriteJson(json_path, records, speedup_model, speedup, speedup_clients,
              speedup_batch);
  }
  if (!args.trace_json.empty()) {
    geotorch::obs::WriteJsonFile(args.trace_json);
  }
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  auto args = geotorch::bench::BenchArgs::Parse(argc, argv);
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  geotorch::bench::Run(args, json_path, smoke);
  return 0;
}
