// Low-precision inference ablation (DESIGN.md §10): what bf16 and int8
// buy — and cost — end to end. Three sections:
//
//   1. per-GEMM sweep over serving-shaped matmuls: f32 vs bf16 vs int8,
//      each low-precision kernel measured both with the weight operand
//      packed per call and pre-packed into the panel layout (the
//      serving configuration — weights are constant, so SetPrecision
//      hoists the B pack out of the request path). int8 rows include
//      the per-call activation quantization, which is what a Linear
//      forward actually pays.
//   2. classifier accuracy ablation: train DeepSAT (pure-MLP) and
//      SatCNN on synthetic SAT-6 in f32, then evaluate top-1 at f32 /
//      bf16 / int8 (static activation scales calibrated on the val
//      set), plus through an int8-quantized GTCP checkpoint
//      (save -> load -> eval), with on-disk sizes for both formats.
//   3. end-to-end serving throughput: the dynamic-batching engine over
//      the same trained models, one row per precision, closed-loop
//      clients as in serve_bench.
//
// On this repo's single-hardware-thread bench host the f32 kernel
// already saturates the FMA pipes, and AVX512-BF16's vdpbf16ps
// sustains fewer multiply-accumulates per cycle than f32 FMA — so the
// bf16 win comes from halving the memory the kernel streams plus the
// hoisted weight pack, not from raw compute; int8 wins on both counts
// (vdpwssd) and compounds with pre-packing. hardware_threads is
// reported so multi-core results are read in context.
//
// Flags: --json=PATH (the committed BENCH_quant.json), --smoke for CI.

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "bench/bench_util.h"
#include "core/stopwatch.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "models/raster_models.h"
#include "models/trainer.h"
#include "nn/precision.h"
#include "obs/obs.h"
#include "serve/adapters.h"
#include "serve/engine.h"
#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace geotorch::bench {
namespace {

namespace ag = ::geotorch::autograd;
namespace data = ::geotorch::data;
namespace ds = ::geotorch::datasets;
namespace io = ::geotorch::io;
namespace models = ::geotorch::models;
namespace nn = ::geotorch::nn;
namespace serve = ::geotorch::serve;
namespace ts = ::geotorch::tensor;

// ---------------------------------------------------------------- GEMM

struct GemmRow {
  int64_t m = 0, k = 0, n = 0;
  double f32_ns = 0, bf16_ns = 0, bf16p_ns = 0, int8_ns = 0, int8p_ns = 0;
};

// Best-of-3 timing windows, reps sized so each window runs ~25 ms.
template <typename Fn>
double TimeNs(const Fn& fn) {
  fn();  // warm caches / workspaces
  Stopwatch est;
  fn();
  const double est_ns = std::max(1.0, est.ElapsedSeconds() * 1e9);
  const int64_t reps =
      std::max<int64_t>(3, static_cast<int64_t>(25e6 / est_ns));
  double best = 0.0;
  for (int w = 0; w < 3; ++w) {
    Stopwatch timer;
    for (int64_t r = 0; r < reps; ++r) fn();
    const double ns = timer.ElapsedSeconds() * 1e9 / reps;
    if (w == 0 || ns < best) best = ns;
  }
  return best;
}

GemmRow RunGemmRow(int64_t m, int64_t k, int64_t n) {
  std::vector<float> a(m * k), b(k * n), c(m * n);
  uint64_t state = 0x9E3779B97F4A7C15ull + m * 131 + k * 31 + n;
  auto rnd = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>(static_cast<int64_t>(state >> 40) % 2001 -
                              1000) /
           1000.0f;
  };
  for (auto& x : a) x = rnd();
  for (auto& x : b) x = rnd();

  GemmRow row;
  row.m = m;
  row.k = k;
  row.n = n;
  row.f32_ns = TimeNs([&] { ts::Gemm(a.data(), b.data(), c.data(), m, k, n); });
  row.bf16_ns =
      TimeNs([&] { ts::GemmBf16(a.data(), b.data(), c.data(), m, k, n); });

  std::vector<uint16_t> b_bf16(k * n);
  ts::ConvertToBf16(b.data(), b_bf16.data(), k * n);
  std::vector<uint16_t> b_packed(ts::Bf16PackedBSize(k, n));
  ts::PackBf16B(b_bf16.data(), k, n, b_packed.data());
  row.bf16p_ns = TimeNs([&] {
    ts::GemmBf16(a.data(), ts::Bf16PackedB{b_packed.data()}, c.data(), m, k,
                 n);
  });

  std::vector<int8_t> bq(k * n);
  std::vector<float> b_scales(n);
  ts::QuantizeColsInt8(b.data(), k, n, bq.data(), b_scales.data());
  std::vector<int8_t> aq(m * k);
  const float a_scale = ts::SymmetricScale(ts::AbsMax(a.data(), m * k));
  ts::Int8GemmOptions iopts;
  iopts.a_scales = &a_scale;
  iopts.a_scales_len = 1;
  iopts.b_scales = b_scales.data();
  iopts.b_scales_len = n;
  // Activation quantization inside the timed region: the layer pays it
  // on every forward. Weight quantization stays outside (done once).
  row.int8_ns = TimeNs([&] {
    ts::QuantizeInt8(a.data(), m * k, a_scale, aq.data());
    ts::GemmInt8(aq.data(), bq.data(), c.data(), m, k, n, iopts);
  });
  std::vector<int8_t> bq_packed(ts::Int8PackedBSize(k, n));
  ts::PackInt8B(bq.data(), k, n, bq_packed.data());
  row.int8p_ns = TimeNs([&] {
    ts::QuantizeInt8(a.data(), m * k, a_scale, aq.data());
    ts::GemmInt8(aq.data(), ts::Int8PackedB{bq_packed.data()}, c.data(), m, k,
                 n, iopts);
  });
  return row;
}

// ----------------------------------------------------------- accuracy

struct ModelRow {
  std::string model;
  std::string dataset;
  double acc_f32 = 0, acc_bf16 = 0, acc_int8 = 0, acc_int8_ckpt = 0;
  int64_t ckpt_f32_bytes = 0, ckpt_int8_bytes = 0;
};

float EvalAccuracy(models::RasterClassifier& model, const data::Dataset& test,
                   int64_t batch_size) {
  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader loader(&test, batch_size, /*shuffle=*/false);
  data::Batch batch;
  int64_t correct = 0, total = 0;
  while (loader.Next(&batch)) {
    ag::Variable features;
    if (!batch.extras.empty()) features = ag::Variable(batch.extras[0]);
    ts::Tensor logits =
        model.Forward(ag::Variable(batch.x), features).value();
    ts::Tensor pred = ts::Argmax(logits, 1);
    for (int64_t i = 0; i < pred.numel(); ++i) {
      if (static_cast<int64_t>(pred.flat(i)) ==
          static_cast<int64_t>(batch.y.flat(i))) {
        ++correct;
      }
    }
    total += pred.numel();
  }
  return total > 0 ? static_cast<float>(correct) / total : 0.0f;
}

// Static activation scales: run the val set forward in f32 with
// calibration on; every Linear/Conv records its input absmax.
void Calibrate(models::RasterClassifier& model, const data::Dataset& val,
               int64_t batch_size) {
  ag::NoGradGuard guard;
  model.SetTraining(false);
  model.SetCalibrating(true);
  data::DataLoader loader(&val, batch_size, /*shuffle=*/false);
  data::Batch batch;
  while (loader.Next(&batch)) {
    ag::Variable features;
    if (!batch.extras.empty()) features = ag::Variable(batch.extras[0]);
    model.Forward(ag::Variable(batch.x), features);
  }
  model.SetCalibrating(false);
}

int64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : size;
}

// ------------------------------------------------------------ serving

struct ServeRow {
  std::string model;
  std::string precision;
  int clients = 0;
  int max_batch = 0;
  int64_t requests = 0;
  double rps = 0;
  int64_t p50_us = 0;
  double mean_batch = 0;
};

int64_t Percentile(std::vector<int64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

ServeRow ServeOnce(const std::string& model_name,
                   models::RasterClassifier& model, nn::Precision precision,
                   const std::vector<data::Sample>& samples, int clients,
                   int max_batch, int requests_per_client) {
  serve::EngineOptions opts;
  opts.max_batch = max_batch;
  opts.max_delay_us = 200;
  opts.max_queue = 1024;
  opts.warmup_batches = 2;
  opts.precision = precision;
  serve::SampleSpec spec;
  spec.x = samples[0].x.shape();
  for (const auto& e : samples[0].extras) spec.extras.push_back(e.shape());
  serve::Engine engine(serve::ClassifierForward(model, opts.precision), spec,
                       opts);

  std::vector<std::vector<int64_t>> latencies(clients);
  std::atomic<int64_t> errors{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const data::Sample& s =
            samples[(c * requests_per_client + i) % samples.size()];
        const int64_t t0 = obs::NowNs();
        auto r = engine.Submit(s);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        latencies[c].push_back((obs::NowNs() - t0) / 1000);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  engine.Shutdown();

  ServeRow row;
  row.model = model_name;
  row.precision = nn::PrecisionName(precision);
  row.clients = clients;
  row.max_batch = max_batch;
  row.requests =
      static_cast<int64_t>(clients) * requests_per_client - errors.load();
  row.rps = row.requests / std::max(seconds, 1e-9);
  std::vector<int64_t> all;
  for (auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  row.p50_us = Percentile(all, 0.50);
  const serve::EngineStats stats = engine.stats();
  row.mean_batch =
      stats.batches > 0 ? static_cast<double>(stats.requests) / stats.batches
                        : 0.0;
  return row;
}

ServeRow ServeBest(const std::string& model_name,
                   models::RasterClassifier& model, nn::Precision precision,
                   const std::vector<data::Sample>& samples, int clients,
                   int max_batch, int requests_per_client, int reps) {
  ServeRow best;
  for (int r = 0; r < reps; ++r) {
    ServeRow row = ServeOnce(model_name, model, precision, samples, clients,
                             max_batch, requests_per_client);
    if (r == 0 || row.rps > best.rps) best = row;
  }
  return best;
}

// ---------------------------------------------------------------- JSON

void WriteJson(const std::string& path, const std::vector<GemmRow>& gemms,
               const std::vector<ModelRow>& model_rows,
               const std::vector<ServeRow>& serve_rows,
               const std::string& headline_model, int headline_clients,
               int headline_batch, double bf16_speedup, double int8_speedup,
               double bf16_acc_delta, double int8_acc_delta) {
  BenchJsonWriter json(path, "quant_bench");
  if (!json.ok()) return;
  std::FILE* f = json.stream();
  std::fprintf(f, "  \"gemm\": [\n");
  for (size_t i = 0; i < gemms.size(); ++i) {
    const GemmRow& g = gemms[i];
    std::fprintf(
        f,
        "    {\"m\": %lld, \"k\": %lld, \"n\": %lld, \"f32_ns\": %.0f, "
        "\"bf16_ns\": %.0f, \"bf16_prepacked_ns\": %.0f, \"int8_ns\": %.0f, "
        "\"int8_prepacked_ns\": %.0f, \"bf16_prepacked_speedup\": %.2f, "
        "\"int8_prepacked_speedup\": %.2f}%s\n",
        static_cast<long long>(g.m), static_cast<long long>(g.k),
        static_cast<long long>(g.n), g.f32_ns, g.bf16_ns, g.bf16p_ns,
        g.int8_ns, g.int8p_ns, g.f32_ns / std::max(1.0, g.bf16p_ns),
        g.f32_ns / std::max(1.0, g.int8p_ns),
        i + 1 < gemms.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"models\": [\n");
  for (size_t i = 0; i < model_rows.size(); ++i) {
    const ModelRow& m = model_rows[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"dataset\": \"%s\", \"top1_f32\": %.4f, "
        "\"top1_bf16\": %.4f, \"top1_int8\": %.4f, "
        "\"top1_int8_checkpoint\": %.4f, \"checkpoint_f32_bytes\": %lld, "
        "\"checkpoint_int8_bytes\": %lld}%s\n",
        m.model.c_str(), m.dataset.c_str(), m.acc_f32, m.acc_bf16, m.acc_int8,
        m.acc_int8_ckpt, static_cast<long long>(m.ckpt_f32_bytes),
        static_cast<long long>(m.ckpt_int8_bytes),
        i + 1 < model_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"serving\": [\n");
  for (size_t i = 0; i < serve_rows.size(); ++i) {
    const ServeRow& s = serve_rows[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"precision\": \"%s\", \"clients\": %d, "
        "\"max_batch\": %d, \"requests\": %lld, \"throughput_rps\": %.1f, "
        "\"p50_us\": %lld, \"mean_batch\": %.2f}%s\n",
        s.model.c_str(), s.precision.c_str(), s.clients, s.max_batch,
        static_cast<long long>(s.requests), s.rps,
        static_cast<long long>(s.p50_us), s.mean_batch,
        i + 1 < serve_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"serve_model\": \"%s\",\n", headline_model.c_str());
  std::fprintf(f, "    \"serve_clients\": %d,\n", headline_clients);
  std::fprintf(f, "    \"serve_max_batch\": %d,\n", headline_batch);
  std::fprintf(f, "    \"bf16_serving_speedup_vs_f32\": %.3f,\n",
               bf16_speedup);
  std::fprintf(f, "    \"int8_serving_speedup_vs_f32\": %.3f,\n",
               int8_speedup);
  std::fprintf(f, "    \"bf16_top1_delta_pct\": %.3f,\n",
               100.0 * bf16_acc_delta);
  std::fprintf(f, "    \"int8_top1_delta_pct\": %.3f\n",
               100.0 * int8_acc_delta);
  std::fprintf(f, "  },\n");
  json.Finish();
}

// ----------------------------------------------------------------- run

void Run(const BenchArgs& args, const std::string& json_path, bool smoke) {
  ts::DeviceGuard device(ts::Device::kParallel);

  // --- 1. per-GEMM sweep ---------------------------------------------
  std::vector<std::array<int64_t, 3>> shapes =
      smoke ? std::vector<std::array<int64_t, 3>>{{16, 256, 128}}
            : std::vector<std::array<int64_t, 3>>{{16, 1024, 1024},
                                                  {16, 512, 512},
                                                  {16, 4096, 128},
                                                  {64, 2048, 512},
                                                  {256, 256, 256},
                                                  {16, 1024, 6}};
  std::printf("QUANT BENCH 1/3: GEMM precision sweep (prepacked = weight "
              "operand packed once, the serving path)\n");
  PrintRule();
  std::printf("%-18s %-10s %-10s %-10s %-10s %-10s %-8s %-8s\n", "m x k x n",
              "f32(ns)", "bf16", "bf16pre", "int8", "int8pre", "bf16x",
              "int8x");
  PrintRule();
  std::vector<GemmRow> gemms;
  for (const auto& s : shapes) {
    GemmRow g = RunGemmRow(s[0], s[1], s[2]);
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                  static_cast<long long>(g.m), static_cast<long long>(g.k),
                  static_cast<long long>(g.n));
    std::printf("%-18s %-10.0f %-10.0f %-10.0f %-10.0f %-10.0f %-8.2f "
                "%-8.2f\n",
                shape, g.f32_ns, g.bf16_ns, g.bf16p_ns, g.int8_ns, g.int8p_ns,
                g.f32_ns / std::max(1.0, g.bf16p_ns),
                g.f32_ns / std::max(1.0, g.int8p_ns));
    gemms.push_back(g);
  }
  PrintRule();

  // --- 2. classifier accuracy ablation -------------------------------
  // DeepSAT is the pure-MLP classifier: every FLOP of its forward is a
  // Linear GEMM, so it shows what the low-precision path buys when the
  // kernel dominates. SatCNN adds the conv-heavy counterpoint (its
  // weights ride the GEMM A operand, which cannot be pre-packed).
  ds::RasterDatasetOptions dopts;
  dopts.include_additional_features = true;  // DeepSAT needs features
  const int64_t n_samples = smoke ? 180 : 600;
  ds::RasterClassificationDataset dataset =
      ds::MakeSat6(n_samples, dopts, /*seed=*/3);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);

  models::TrainConfig tc;
  tc.max_epochs = smoke ? 3 : 14;
  tc.patience = 3;
  tc.batch_size = 16;
  tc.lr = 2e-3f;
  tc.seed = 71;

  struct Entry {
    std::string name;
    std::unique_ptr<models::RasterClassifier> model;
  };
  std::vector<Entry> zoo;
  {
    models::RasterModelConfig mc;
    mc.in_channels = 4;
    mc.in_height = 28;
    mc.in_width = 28;
    mc.num_classes = 6;
    mc.num_filtered_features = dataset.num_additional_features();
    mc.base_filters = smoke ? 64 : 256;  // DeepSAT hidden = 4 * filters
    mc.seed = 17;
    zoo.push_back({"DeepSAT", std::make_unique<models::DeepSat>(mc)});
    if (!smoke) {
      models::RasterModelConfig cc = mc;
      cc.base_filters = 16;
      zoo.push_back({"SatCNN", std::make_unique<models::SatCnn>(cc)});
    }
  }

  std::printf("QUANT BENCH 2/3: top-1 per precision on SAT-6 (n=%lld)\n",
              static_cast<long long>(n_samples));
  PrintRule();
  std::printf("%-10s %-8s %-8s %-8s %-10s %-12s %-12s\n", "model", "f32",
              "bf16", "int8", "int8ckpt", "f32_bytes", "int8_bytes");
  PrintRule();
  std::vector<ModelRow> model_rows;
  for (auto& e : zoo) {
    models::ClassificationResult trained =
        models::TrainClassifier(*e.model, train, val, test, tc);
    Calibrate(*e.model, val, tc.batch_size);

    ModelRow row;
    row.model = e.name;
    row.dataset = "SAT6";
    row.acc_f32 = trained.accuracy;
    e.model->SetPrecision(nn::Precision::kBf16);
    row.acc_bf16 = EvalAccuracy(*e.model, test, tc.batch_size);
    e.model->SetPrecision(nn::Precision::kInt8);
    row.acc_int8 = EvalAccuracy(*e.model, test, tc.batch_size);
    e.model->SetPrecision(nn::Precision::kF32);

    const std::string f32_path = "quant_bench_" + e.name + "_f32.gtcp";
    const std::string q_path = "quant_bench_" + e.name + "_int8.gtcp";
    io::SaveStateDict(*e.model, f32_path);
    io::SaveQuantizedStateDict(*e.model, q_path);
    row.ckpt_f32_bytes = FileBytes(f32_path);
    row.ckpt_int8_bytes = FileBytes(q_path);
    // Round-trip: load the quantized checkpoint into a fresh model and
    // measure top-1 with the dequantized weights — the accuracy a
    // deployment restarting from the small checkpoint actually sees.
    {
      models::RasterModelConfig mc;
      mc.in_channels = 4;
      mc.in_height = 28;
      mc.in_width = 28;
      mc.num_classes = 6;
      mc.num_filtered_features = dataset.num_additional_features();
      mc.base_filters =
          e.name == "SatCNN" ? 16 : (smoke ? int64_t{64} : int64_t{256});
      mc.seed = 999;
      std::unique_ptr<models::RasterClassifier> fresh;
      if (e.name == "SatCNN") {
        fresh = std::make_unique<models::SatCnn>(mc);
      } else {
        fresh = std::make_unique<models::DeepSat>(mc);
      }
      const Status st = io::LoadStateDict(*fresh, q_path);
      if (!st.ok()) {
        std::printf("WARNING: quantized load failed: %s\n",
                    st.message().c_str());
      } else {
        row.acc_int8_ckpt = EvalAccuracy(*fresh, test, tc.batch_size);
      }
    }
    std::printf("%-10s %-8.4f %-8.4f %-8.4f %-10.4f %-12lld %-12lld\n",
                row.model.c_str(), row.acc_f32, row.acc_bf16, row.acc_int8,
                row.acc_int8_ckpt, static_cast<long long>(row.ckpt_f32_bytes),
                static_cast<long long>(row.ckpt_int8_bytes));
    model_rows.push_back(row);
  }
  PrintRule();

  // --- 3. end-to-end serving throughput per precision ----------------
  const int requests_per_client = smoke ? 24 : 160;
  const int reps = smoke ? 1 : 3;
  const std::vector<std::pair<int, int>> serve_configs =
      smoke ? std::vector<std::pair<int, int>>{{1, 16}}
            : std::vector<std::pair<int, int>>{{1, 16}, {8, 16}};
  std::vector<data::Sample> samples;
  for (int64_t i = 0; i < std::min<int64_t>(dataset.Size(), 64); ++i) {
    samples.push_back(dataset.Get(i));
  }

  std::printf("QUANT BENCH 3/3: engine throughput per precision "
              "(%d req/client)\n",
              requests_per_client);
  PrintRule();
  std::printf("%-10s %-10s %-8s %-10s %-12s %-9s %-10s\n", "model",
              "precision", "clients", "max_batch", "rps", "p50(us)",
              "mean_batch");
  PrintRule();
  std::vector<ServeRow> serve_rows;
  for (auto& e : zoo) {
    for (const auto& [clients, max_batch] : serve_configs) {
      for (nn::Precision p : {nn::Precision::kF32, nn::Precision::kBf16,
                              nn::Precision::kInt8}) {
        ServeRow row = ServeBest(e.name, *e.model, p, samples, clients,
                                 max_batch, requests_per_client, reps);
        std::printf("%-10s %-10s %-8d %-10d %-12.1f %-9lld %-10.2f\n",
                    row.model.c_str(), row.precision.c_str(), row.clients,
                    row.max_batch, row.rps,
                    static_cast<long long>(row.p50_us), row.mean_batch);
        serve_rows.push_back(row);
      }
    }
    e.model->SetPrecision(nn::Precision::kF32);
  }
  PrintRule();

  // Headline: the config (model, clients, max_batch) whose int8 row
  // gains the most over its f32 row, with the bf16 gain at the same
  // config — so both speedups come from one like-for-like comparison.
  std::string headline_model;
  int headline_clients = 0, headline_batch = 0;
  double int8_speedup = 0.0, bf16_speedup = 0.0;
  for (const ServeRow& r : serve_rows) {
    if (r.precision != "int8") continue;
    for (const ServeRow& base : serve_rows) {
      if (base.precision != "f32" || base.model != r.model ||
          base.clients != r.clients || base.max_batch != r.max_batch ||
          base.rps <= 0) {
        continue;
      }
      const double s = r.rps / base.rps;
      if (s <= int8_speedup) continue;
      int8_speedup = s;
      headline_model = r.model;
      headline_clients = r.clients;
      headline_batch = r.max_batch;
      for (const ServeRow& b16 : serve_rows) {
        if (b16.precision == "bf16" && b16.model == r.model &&
            b16.clients == r.clients && b16.max_batch == r.max_batch) {
          bf16_speedup = b16.rps / base.rps;
        }
      }
    }
  }
  double bf16_acc_delta = 0.0, int8_acc_delta = 0.0;
  for (const ModelRow& m : model_rows) {
    if (m.model != headline_model) continue;
    bf16_acc_delta = std::abs(m.acc_bf16 - m.acc_f32);
    int8_acc_delta = std::abs(m.acc_int8 - m.acc_f32);
  }
  std::printf("serving %s (clients=%d, max_batch=%d): bf16 %.2fx, int8 "
              "%.2fx vs f32; top-1 delta bf16 %.2f%%, int8 %.2f%%\n",
              headline_model.c_str(), headline_clients, headline_batch,
              bf16_speedup, int8_speedup, 100.0 * bf16_acc_delta,
              100.0 * int8_acc_delta);

  if (!json_path.empty()) {
    WriteJson(json_path, gemms, model_rows, serve_rows, headline_model,
              headline_clients, headline_batch, bf16_speedup, int8_speedup,
              bf16_acc_delta, int8_acc_delta);
  }
  if (!args.trace_json.empty()) {
    geotorch::obs::WriteJsonFile(args.trace_json);
  }
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  auto args = geotorch::bench::BenchArgs::Parse(argc, argv);
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  geotorch::bench::Run(args, json_path, smoke);
  return 0;
}
