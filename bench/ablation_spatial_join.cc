// Ablation: spatial-join strategy. The preprocessing module assigns
// points to grid cells with an O(1) grid-hash lookup; Sedona-style
// systems use an STR-tree; the naive baseline is a nested loop. This
// bench quantifies why the module's choice matters as the grid grows.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "spatial/join.h"

namespace geotorch::bench {
namespace {

namespace sp = ::geotorch::spatial;

void Run(const BenchArgs& args) {
  const int64_t num_points = args.paper_scale ? 2000000 : 200000;
  Rng rng(1);
  sp::Envelope extent(0, 0, 100, 100);
  std::vector<sp::Point> points;
  points.reserve(num_points);
  for (int64_t i = 0; i < num_points; ++i) {
    points.push_back(
        {rng.Uniform(0.001, 99.999), rng.Uniform(0.001, 99.999)});
  }

  std::printf("ABLATION: Point-in-Grid Spatial Join Strategies (%lld "
              "points)\n",
              static_cast<long long>(num_points));
  PrintRule();
  std::printf("%-10s %-16s %-16s %-16s\n", "grid", "nested-loop (s)",
              "str-tree (s)", "grid-hash (s)");
  PrintRule();
  // Warm-up pass (allocator page faults).
  {
    sp::GridPartitioner warm_grid(extent, 8, 8);
    sp::PointInPolygonJoin(points, warm_grid.CellPolygons(),
                           sp::JoinStrategy::kStrTree);
  }
  for (int g : {8, 16, 32}) {
    sp::GridPartitioner grid(extent, g, g);
    std::vector<sp::Polygon> cells = grid.CellPolygons();
    // Nested loop only on a subsample — it is quadratic-ish.
    const int64_t nested_points = std::min<int64_t>(num_points, 20000);
    std::vector<sp::Point> sample(points.begin(),
                                  points.begin() + nested_points);
    Stopwatch t1;
    auto nested =
        sp::PointInPolygonJoin(sample, cells, sp::JoinStrategy::kNestedLoop);
    const double nested_scaled = t1.ElapsedSeconds() *
                                 static_cast<double>(num_points) /
                                 static_cast<double>(nested_points);
    Stopwatch t2;
    auto indexed =
        sp::PointInPolygonJoin(points, cells, sp::JoinStrategy::kStrTree);
    const double tree_secs = t2.ElapsedSeconds();
    Stopwatch t3;
    auto hashed = sp::PointInPolygonJoin(points, cells,
                                         sp::JoinStrategy::kGridHash, &grid);
    const double hash_secs = t3.ElapsedSeconds();
    if (indexed.size() != hashed.size()) {
      std::printf("WARNING: join cardinality mismatch (%zu vs %zu)\n",
                  indexed.size(), hashed.size());
    }
    std::printf("%2dx%-7d %-16.3f %-16.3f %-16.3f   (nested extrapolated)\n",
                g, g, nested_scaled, tree_secs, hash_secs);
  }
  PrintRule();
  std::printf("shape check: grid-hash is flat in grid size; the tree pays "
              "a log factor;\nnested loop scales with cell count.\n");
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
