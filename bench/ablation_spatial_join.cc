// Ablation: spatial-join strategy and parallelism. The preprocessing
// module assigns points to grid cells; Sedona-style systems use an
// STR-tree, the naive baseline is a nested loop, and the module's
// uniform-grid fast path maps points to cells in O(1). This bench
// quantifies (a) why the strategy choice matters as the grid grows and
// (b) what the partition-parallel probe engine buys over the serial
// one, sweeping worker counts. Writes a machine-readable summary with
// --json=PATH (the committed BENCH_spatial.json); --smoke shrinks the
// sweep for CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "spatial/join.h"

namespace geotorch::bench {
namespace {

namespace sp = ::geotorch::spatial;

struct Record {
  int grid = 0;
  const char* strategy = "";
  const char* mode = "";  // "serial" or "parallel"
  int threads = 1;
  double seconds = 0.0;
  int64_t pairs = 0;
  double speedup_vs_serial = 1.0;
};

double TimeJoin(const std::vector<sp::Point>& points,
                const std::vector<sp::Polygon>& cells,
                const sp::GridPartitioner* grid, const sp::JoinOptions& opts,
                int iterations, std::vector<sp::JoinPair>* out) {
  double best = 1e30;
  for (int it = 0; it < iterations; ++it) {
    Stopwatch timer;
    *out = sp::PointInPolygonJoin(points, cells, opts, grid);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

bool SameResult(const std::vector<sp::JoinPair>& a,
                const std::vector<sp::JoinPair>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

void WriteJson(const std::string& path, int64_t num_points,
               const std::vector<Record>& records, int largest_grid,
               double best_parallel_speedup, double grid_vs_tree) {
  BenchJsonWriter json(path, "ablation_spatial_join");
  if (!json.ok()) return;
  std::FILE* f = json.stream();
  std::fprintf(f, "  \"num_points\": %lld,\n",
               static_cast<long long>(num_points));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"grid\": %d, \"strategy\": \"%s\", \"mode\": "
                 "\"%s\", \"threads\": %d, \"seconds\": %.6f, \"pairs\": "
                 "%lld, \"speedup_vs_serial\": %.3f}%s\n",
                 r.grid, r.strategy, r.mode, r.threads, r.seconds,
                 static_cast<long long>(r.pairs), r.speedup_vs_serial,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"largest_grid\": %d,\n", largest_grid);
  std::fprintf(f, "    \"best_parallel_speedup_strtree\": %.3f,\n",
               best_parallel_speedup);
  std::fprintf(f, "    \"grid_fastpath_vs_strtree_serial\": %.3f\n",
               grid_vs_tree);
  std::fprintf(f, "  },\n");
  json.Finish();
}

void Run(const BenchArgs& args, const std::string& json_path, bool smoke) {
  const int64_t num_points =
      smoke ? 20000 : (args.paper_scale ? 2000000 : 400000);
  const std::vector<int> grids = smoke ? std::vector<int>{8}
                                       : std::vector<int>{16, 32};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};
  const int iterations = std::max(1, args.iterations);

  Rng rng(1);
  sp::Envelope extent(0, 0, 100, 100);
  std::vector<sp::Point> points;
  points.reserve(num_points);
  for (int64_t i = 0; i < num_points; ++i) {
    points.push_back(
        {rng.Uniform(0.001, 99.999), rng.Uniform(0.001, 99.999)});
  }

  std::printf("ABLATION: Point-in-Grid Spatial Join (%lld points, "
              "best of %d)\n",
              static_cast<long long>(num_points), iterations);
  PrintRule();
  std::printf("%-8s %-10s %-10s %-8s %-12s %-10s\n", "grid", "strategy",
              "mode", "threads", "time (s)", "speedup");
  PrintRule();

  std::vector<Record> records;
  double best_parallel_speedup = 0.0;
  double grid_vs_tree = 0.0;
  // Warm-up pass (allocator page faults).
  {
    sp::GridPartitioner warm_grid(extent, 8, 8);
    sp::PointInPolygonJoin(points, warm_grid.CellPolygons(),
                           sp::JoinStrategy::kStrTree);
  }
  for (int g : grids) {
    sp::GridPartitioner grid(extent, g, g);
    std::vector<sp::Polygon> cells = grid.CellPolygons();

    // Nested loop only on a subsample — it is quadratic-ish.
    const int64_t nested_points = std::min<int64_t>(num_points, 20000);
    std::vector<sp::Point> sample(points.begin(),
                                  points.begin() + nested_points);
    std::vector<sp::JoinPair> nested_out;
    sp::JoinOptions nested_opts;
    nested_opts.strategy = sp::JoinStrategy::kNestedLoop;
    nested_opts.parallel = false;
    const double nested_scaled =
        TimeJoin(sample, cells, nullptr, nested_opts, 1, &nested_out) *
        static_cast<double>(num_points) / static_cast<double>(nested_points);
    std::printf("%2dx%-5d %-10s %-10s %-8s %-12.3f %-10s\n", g, g, "nested",
                "serial", "1", nested_scaled, "(extrapolated)");
    records.push_back({g, "nested", "serial", 1, nested_scaled,
                       static_cast<int64_t>(nested_out.size()) *
                           num_points / nested_points,
                       1.0});

    for (const char* strategy : {"strtree", "grid"}) {
      sp::JoinOptions serial_opts;
      serial_opts.strategy = std::strcmp(strategy, "strtree") == 0
                                 ? sp::JoinStrategy::kStrTree
                                 : sp::JoinStrategy::kGridHash;
      serial_opts.parallel = false;
      std::vector<sp::JoinPair> serial_out;
      const double serial_secs = TimeJoin(points, cells, &grid, serial_opts,
                                          iterations, &serial_out);
      std::printf("%2dx%-5d %-10s %-10s %-8s %-12.3f %-10.2f\n", g, g,
                  strategy, "serial", "1", serial_secs, 1.0);
      records.push_back({g, strategy, "serial", 1, serial_secs,
                         static_cast<int64_t>(serial_out.size()), 1.0});

      for (int t : thread_counts) {
        ThreadPool pool(t);
        sp::JoinOptions par_opts = serial_opts;
        par_opts.parallel = true;
        par_opts.pool = &pool;
        std::vector<sp::JoinPair> par_out;
        const double par_secs =
            TimeJoin(points, cells, &grid, par_opts, iterations, &par_out);
        if (!SameResult(serial_out, par_out)) {
          std::printf("WARNING: parallel result differs from serial "
                      "(%s, %d threads)\n",
                      strategy, t);
        }
        const double speedup = serial_secs / par_secs;
        std::printf("%2dx%-5d %-10s %-10s %-8d %-12.3f %-10.2f\n", g, g,
                    strategy, "parallel", t, par_secs, speedup);
        records.push_back({g, strategy, "parallel", t, par_secs,
                           static_cast<int64_t>(par_out.size()), speedup});
        if (std::strcmp(strategy, "strtree") == 0 && g == grids.back()) {
          best_parallel_speedup = std::max(best_parallel_speedup, speedup);
        }
      }
    }
    // Grid fast path vs STR-tree, both serial, at the largest grid.
    if (g == grids.back()) {
      double tree_serial = 0.0;
      double grid_serial = 0.0;
      for (const Record& r : records) {
        if (r.grid != g || std::strcmp(r.mode, "serial") != 0) continue;
        if (std::strcmp(r.strategy, "strtree") == 0) tree_serial = r.seconds;
        if (std::strcmp(r.strategy, "grid") == 0) grid_serial = r.seconds;
      }
      if (grid_serial > 0) grid_vs_tree = tree_serial / grid_serial;
    }
  }
  PrintRule();
  std::printf("largest grid: parallel STR-tree best speedup %.2fx; grid "
              "fast path %.2fx over serial STR-tree\n",
              best_parallel_speedup, grid_vs_tree);
  if (!json_path.empty()) {
    WriteJson(json_path, num_points, records, grids.back(),
              best_parallel_speedup, grid_vs_tree);
  }
  if (!args.trace_json.empty()) {
    geotorch::obs::WriteJsonFile(args.trace_json);
  }
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  auto args = geotorch::bench::BenchArgs::Parse(argc, argv);
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  geotorch::bench::Run(args, json_path, smoke);
  return 0;
}
