// Reproduces Fig. 9: time to train SatCNN for one epoch while varying
// (a) the number of spectral bands {3, 5, 8, 10, 13} at a fixed grid
// and (b) the grid size, each on both execution backends. The paper
// compares CPU vs GPU; this repo's accelerated device is the
// multi-threaded backend (DESIGN.md §1). Grid sizes are {16, 32, 64}
// (the paper's 28 is not divisible by SatCNN's three 2x poolings in
// this implementation). Expected shape: grid size dominates epoch
// time, band count has little effect, and the parallel backend is
// uniformly faster.
//
// Flags: --scale=paper for more images.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/raster_dataset.h"
#include "models/raster_models.h"
#include "models/trainer.h"
#include "synth/satimage.h"
#include "tensor/device.h"

namespace geotorch::bench {
namespace {

namespace ds = ::geotorch::datasets;
namespace ts = ::geotorch::tensor;

double EpochSeconds(int64_t n, int64_t size, int64_t bands,
                    ts::Device device) {
  synth::SceneConfig scene;
  scene.size = size;
  scene.bands = bands;
  scene.num_classes = 10;
  scene.seed = 3;
  auto [images, labels] = synth::GenerateClassificationSet(n, scene);
  ds::RasterClassificationDataset dataset(std::move(images),
                                          std::move(labels), {});
  models::RasterModelConfig mc;
  mc.in_channels = bands;
  mc.in_height = size;
  mc.in_width = size;
  mc.num_classes = 10;
  mc.base_filters = 8;
  models::SatCnn model(mc);
  models::TrainConfig tc;
  tc.batch_size = 16;
  ts::DeviceGuard guard(device);
  return models::TimeOneEpochClassifier(model, dataset, tc);
}

void Run(const BenchArgs& args) {
  const int64_t n = args.paper_scale ? 512 : 96;

  std::printf("FIG 9a: Epoch Time vs Number of Bands (grid 32x32, %lld "
              "images)\n",
              static_cast<long long>(n));
  PrintRule();
  std::printf("%-8s %-22s %-22s\n", "bands", "serial-cpu (s)",
              "parallel-accel (s)");
  PrintRule();
  for (int64_t bands : {3, 5, 8, 10, 13}) {
    const double serial =
        EpochSeconds(n, 32, bands, ts::Device::kSerial);
    const double parallel =
        EpochSeconds(n, 32, bands, ts::Device::kParallel);
    std::printf("%-8lld %-22.3f %-22.3f\n", static_cast<long long>(bands),
                serial, parallel);
  }
  PrintRule();

  std::printf("\nFIG 9b: Epoch Time vs Grid Size (3 bands, %lld images)\n",
              static_cast<long long>(n));
  PrintRule();
  std::printf("%-8s %-22s %-22s\n", "grid", "serial-cpu (s)",
              "parallel-accel (s)");
  PrintRule();
  for (int64_t size : {16, 32, 64}) {
    const double serial = EpochSeconds(n, size, 3, ts::Device::kSerial);
    const double parallel =
        EpochSeconds(n, size, 3, ts::Device::kParallel);
    std::printf("%-8lld %-22.3f %-22.3f\n", static_cast<long long>(size),
                serial, parallel);
  }
  PrintRule();
  std::printf("shape check: grid size dominates epoch time; band count is "
              "nearly flat;\nthe parallel backend wins everywhere.\n");
}

}  // namespace
}  // namespace geotorch::bench

int main(int argc, char** argv) {
  geotorch::bench::Run(geotorch::bench::BenchArgs::Parse(argc, argv));
  return 0;
}
