// Quickstart: the GeoTorchAI workflow from the paper's Listings 1 and 6
// in C++ — load a ready-to-use raster benchmark dataset (EuroSAT-like),
// keep the handcrafted spectral/GLCM features, train DeepSAT-V2, and
// report test accuracy.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "models/raster_models.h"
#include "models/trainer.h"

namespace ds = geotorch::datasets;
namespace models = geotorch::models;
namespace data = geotorch::data;

int main() {
  std::printf("== GeoTorch-CPP quickstart ==\n");

  // 1. Dataset with automatic feature extraction (Listing 1:
  //    EuroSAT(root=..., include_additional_features=True)).
  ds::RasterDatasetOptions options;
  options.include_additional_features = true;
  ds::RasterClassificationDataset eurosat =
      ds::MakeEuroSat(/*n=*/300, options, /*seed=*/7);
  std::printf("dataset: %lld images, %lld bands, %lld extra features\n",
              static_cast<long long>(eurosat.Size()),
              static_cast<long long>(eurosat.bands()),
              static_cast<long long>(eurosat.num_additional_features()));

  // 2. Train/val/test split (80/10/10).
  data::SplitIndices split = data::ChronologicalSplit(eurosat.Size());
  data::SubsetDataset train(&eurosat, split.train);
  data::SubsetDataset val(&eurosat, split.val);
  data::SubsetDataset test(&eurosat, split.test);

  // 3. Model (Listing 6: DeepSatV2(in_channels, in_height, in_width,
  //    num_classes, num_filtered_features)).
  models::RasterModelConfig config;
  config.in_channels = 13;
  config.in_height = 64;
  config.in_width = 64;
  config.num_classes = 10;
  config.num_filtered_features = eurosat.num_additional_features();
  config.base_filters = 8;
  models::DeepSatV2 model(config);
  std::printf("model: DeepSAT-V2 with %lld parameters\n",
              static_cast<long long>(model.NumParameters()));

  // 4. Train with Adam + early stopping (the paper's protocol).
  models::TrainConfig tc;
  tc.max_epochs = 6;
  tc.batch_size = 16;
  tc.lr = 1e-3f;
  tc.verbose = true;
  models::ClassificationResult result =
      models::TrainClassifier(model, train, val, test, tc);

  std::printf("test accuracy: %.2f%% (after %d epochs, %.2f s/epoch)\n",
              100.0 * result.accuracy, result.epochs_run,
              result.seconds_per_epoch);
  return 0;
}
