// Weather forecasting with the sequential representation (the paper's
// Listing 3 + Section V-D): a WeatherBench-style temperature dataset is
// iterated as (history, prediction) frame sequences and used to train
// the ConvLSTM nowcasting model, compared against the persistence
// baseline (tomorrow == today).
//
// Run:  ./build/examples/weather_forecasting

#include <cstdio>

#include "data/dataset.h"
#include "data/metrics.h"
#include "datasets/benchmarks.h"
#include "models/grid_models.h"
#include "models/trainer.h"
#include "tensor/ops.h"

namespace ds = geotorch::datasets;
namespace models = geotorch::models;
namespace data = geotorch::data;
namespace ts = geotorch::tensor;

int main() {
  std::printf("== ConvLSTM temperature forecasting ==\n");

  // Scaled-down WeatherBench temperature: 16x32 grid, ~25 days hourly.
  ds::GridDataset dataset = ds::MakeTemperature(/*timesteps=*/600,
                                                /*height=*/16,
                                                /*width=*/32, /*seed=*/11);
  auto [mn, mx] = dataset.MinMaxNormalize();
  std::printf("temperature range: %.1f .. %.1f C (normalized to [0,1])\n",
              mn, mx);

  dataset.SetSequentialRepresentation(/*history_length=*/6,
                                      /*prediction_length=*/1);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);

  // Persistence baseline: predict frame t to be frame t-1.
  {
    double abs_sum = 0.0;
    int64_t count = 0;
    for (int64_t i = 0; i < test.Size(); ++i) {
      data::Sample s = test.Get(i);
      // Last history frame vs target frame.
      ts::Tensor last = ts::Slice(s.x, 0, 5, 6);
      ts::Tensor diff = ts::Sub(last, s.y);
      for (int64_t k = 0; k < diff.numel(); ++k) {
        abs_sum += std::fabs(diff.flat(k));
      }
      count += diff.numel();
    }
    std::printf("persistence baseline MAE: %.4f (normalized)\n",
                abs_sum / count);
  }

  models::GridModelConfig mc;
  mc.channels = 1;
  mc.height = 16;
  mc.width = 32;
  mc.hidden = 12;
  models::ConvLstm model(mc, /*prediction_length=*/1);
  std::printf("ConvLSTM parameters: %lld\n",
              static_cast<long long>(model.NumParameters()));

  models::TrainConfig tc;
  tc.max_epochs = 3;
  tc.batch_size = 8;
  tc.lr = 3e-3f;
  tc.verbose = true;
  models::RegressionResult result =
      models::TrainGridModel(model, train, val, test, tc);
  std::printf("ConvLSTM test MAE=%.4f RMSE=%.4f (normalized units)\n",
              result.mae, result.rmse);
  std::printf("denormalized MAE: %.2f C\n", result.mae * (mx - mn));
  return 0;
}
