// Scalable raster preprocessing (the paper's Listing 9 + Section
// III-B2): load GeoTIFF-format images, append normalized-difference
// bands offline on the worker pool, extract GLCM texture features, and
// write the transformed rasters back to disk. Finishes with the
// DFtoTorch converter mapping a preprocessed DataFrame into tensor
// batches (Fig. 7).
//
// Run:  ./build/examples/raster_preprocessing

#include <cstdio>

#include "df/dataframe.h"
#include "prep/df_to_torch.h"
#include "prep/raster_processing.h"
#include "raster/glcm.h"
#include "raster/io.h"
#include "raster/ops.h"
#include "synth/satimage.h"

namespace prep = geotorch::prep;
namespace raster = geotorch::raster;
namespace synth = geotorch::synth;
namespace df = geotorch::df;
namespace ts = geotorch::tensor;

int main() {
  std::printf("== Raster preprocessing pipeline ==\n");

  // 0. Materialize a small scene collection on disk as GTIF1 files
  //    (standing in for a directory of downloaded GeoTIFFs).
  synth::SceneConfig scene;
  scene.size = 32;
  scene.bands = 6;
  scene.num_classes = 4;
  std::vector<raster::RasterImage> scenes;
  for (int i = 0; i < 12; ++i) {
    scenes.push_back(synth::GenerateScene(scene, i % 4, 1000 + i));
  }
  auto written =
      prep::RasterProcessing::WriteGeotiffImages(scenes, "/tmp", "scene_");
  if (!written.ok()) {
    std::printf("write failed: %s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu GTIF1 rasters to /tmp\n", written->size());

  // 1. load_geotiff_image (Listing 9 line 5).
  auto images = prep::RasterProcessing::LoadGeotiffImages(*written);
  if (!images.ok()) {
    std::printf("load failed: %s\n", images.status().ToString().c_str());
    return 1;
  }

  // 2. append_normalized_difference_index, executed in parallel across
  //    the collection (Listing 9 line 6).
  auto transformed =
      prep::RasterProcessing::AppendNormalizedDifferenceIndex(*images, 0, 1);
  std::printf("appended NDI band: %lld -> %lld bands\n",
              static_cast<long long>((*images)[0].bands()),
              static_cast<long long>(transformed[0].bands()));

  // 3. GLCM texture features of band 0 (the DeepSAT-V2 ingredients).
  raster::GlcmFeatures glcm =
      raster::ComputeGlcmFeatures(transformed[0], 0);
  std::printf("GLCM of image 0: contrast=%.3f dissimilarity=%.3f "
              "homogeneity=%.3f energy=%.3f correlation=%.3f\n",
              glcm.contrast, glcm.dissimilarity, glcm.homogeneity,
              glcm.energy, glcm.correlation);

  // 4. write_geotiff_image (Listing 9 line 9).
  auto out_paths = prep::RasterProcessing::WriteGeotiffImages(
      transformed, "/tmp", "scene_ndi_");
  if (!out_paths.ok()) {
    std::printf("write failed: %s\n",
                out_paths.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu transformed rasters\n", out_paths->size());

  // 5. DFtoTorch: a preprocessed per-image feature DataFrame becomes
  //    tensor batches without a master collect (Fig. 7).
  std::vector<double> mean_ndi;
  std::vector<double> contrast;
  std::vector<int64_t> label;
  for (size_t i = 0; i < transformed.size(); ++i) {
    mean_ndi.push_back(
        raster::BandMean(transformed[i], transformed[i].bands() - 1));
    contrast.push_back(
        raster::ComputeGlcmFeatures(transformed[i], 0).contrast);
    label.push_back(static_cast<int64_t>(i % 4));
  }
  df::DataFrame features =
      df::DataFrame::FromColumns(
          {{"mean_ndi", df::Column::FromDoubles(std::move(mean_ndi))},
           {"glcm_contrast", df::Column::FromDoubles(std::move(contrast))},
           {"label", df::Column::FromInt64s(std::move(label))}})
          .Repartition(3);
  prep::DfToTorch::Options options;
  options.feature_columns = {"mean_ndi", "glcm_contrast"};
  options.label_column = "label";
  options.batch_size = 5;
  prep::DfToTorch converter(features, options);
  ts::Tensor x;
  ts::Tensor y;
  int batch_no = 0;
  while (converter.NextBatch(&x, &y)) {
    std::printf("batch %d: x=%s labels=%lld\n", batch_no++,
                ts::ShapeToString(x.shape()).c_str(),
                static_cast<long long>(y.numel()));
  }
  std::printf("done.\n");
  return 0;
}
