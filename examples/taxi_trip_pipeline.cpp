// End-to-end spatiotemporal pipeline — the paper's flagship workflow
// (Listing 8 + Section V-B/V-C): raw taxi trip records are converted
// into a grid-based spatiotemporal tensor with the scalable
// preprocessing module, persisted to disk, reloaded as a GeoTorchAI
// grid dataset with the periodical representation, and used to train
// the DeepSTN+ traffic predictor.
//
// Run:  ./build/examples/taxi_trip_pipeline

#include <cstdio>

#include "core/stopwatch.h"
#include "data/dataset.h"
#include "datasets/grid_dataset.h"
#include "df/dataframe.h"
#include "models/grid_models.h"
#include "models/trainer.h"
#include "prep/st_manager.h"
#include "synth/taxi.h"
#include "tensor/serialize.h"

namespace prep = geotorch::prep;
namespace synth = geotorch::synth;
namespace df = geotorch::df;
namespace ds = geotorch::datasets;
namespace models = geotorch::models;
namespace data = geotorch::data;
namespace ts = geotorch::tensor;

int main() {
  std::printf("== Raw trips -> ST tensor -> DeepSTN+ ==\n");
  geotorch::Stopwatch timer;

  // 1. Raw data: one month of synthetic NYC-like trip events, loaded
  //    as a partitioned DataFrame (4 "executors").
  synth::TaxiTripConfig trip_config;
  trip_config.num_records = 150000;
  trip_config.duration_sec = 30LL * 24 * 3600;
  trip_config.seed = 42;
  df::DataFrame raw = synth::TripsToDataFrame(
      synth::GenerateTaxiTrips(trip_config), /*num_partitions=*/4);
  std::printf("raw trips: %lld rows in %d partitions (%.2f s)\n",
              static_cast<long long>(raw.NumRows()), raw.num_partitions(),
              timer.ElapsedSeconds());

  // 2. Preprocessing (Listing 8): lat/lon -> geometry column, then the
  //    12x16 grid / 30-minute aggregation, with pickup and dropoff
  //    channels.
  timer.Restart();
  df::DataFrame spatial =
      prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
  const int pickup_idx = spatial.schema().FieldIndex("is_pickup");
  df::DataFrame channels =
      spatial
          .WithColumn("pu", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return static_cast<double>(row.GetInt64(pickup_idx));
                      })
          .WithColumn("do", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return 1.0 -
                               static_cast<double>(row.GetInt64(pickup_idx));
                      });
  prep::StGridSpec spec;
  spec.geometry_column = "point";
  spec.partitions_x = 12;
  spec.partitions_y = 16;
  spec.time_column = "time";
  spec.step_duration_sec = 1800;
  spec.aggs = {{df::AggKind::kSum, "pu", "pickups"},
               {df::AggKind::kSum, "do", "dropoffs"}};
  prep::StGridResult grid = prep::STManager::GetStGridDataFrame(channels, spec);
  ts::Tensor st =
      prep::STManager::GetStGridTensor(grid, {"pickups", "dropoffs"});
  std::printf("ST tensor: (%lld, %lld, %lld, %lld) in %.2f s\n",
              static_cast<long long>(st.size(0)),
              static_cast<long long>(st.size(1)),
              static_cast<long long>(st.size(2)),
              static_cast<long long>(st.size(3)), timer.ElapsedSeconds());

  // 3. Persist and reload (the "write the tensor to disk for further
  //    usage" step of Section III-B1).
  const std::string path = "/tmp/yellowtrip_nyc.gten";
  if (auto s = ts::SaveTensor(path, st); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = ts::LoadTensor(path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("tensor round-tripped through %s\n", path.c_str());

  // 4. Grid dataset with the periodical representation (Listing 4).
  ds::GridDataset dataset(std::move(*loaded), /*steps_per_day=*/48);
  dataset.MinMaxNormalize();
  dataset.SetPeriodicalRepresentation(/*len_closeness=*/3, /*len_period=*/2,
                                      /*len_trend=*/1);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);
  std::printf("periodical dataset: %lld samples (train %zu / val %zu / "
              "test %zu)\n",
              static_cast<long long>(dataset.Size()), split.train.size(),
              split.val.size(), split.test.size());

  // 5. DeepSTN+ (Listing 5 analogue).
  models::GridModelConfig mc;
  mc.channels = 2;
  mc.height = 16;
  mc.width = 12;
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 16;
  models::DeepStnPlus model(mc);

  models::TrainConfig tc;
  tc.max_epochs = 5;
  tc.batch_size = 32;
  tc.verbose = true;
  models::RegressionResult result =
      models::TrainGridModel(model, train, val, test, tc);
  std::printf("DeepSTN+ on YellowTrip-NYC: MAE=%.4f RMSE=%.4f "
              "(normalized units, %d epochs)\n",
              result.mae, result.rmse, result.epochs_run);
  return 0;
}
