// Serving: train a grid predictor, checkpoint it with the GTCP format,
// load the weights into a fresh model, and serve single-sample requests
// from concurrent clients through the dynamically-batched inference
// engine (DESIGN.md §9).
//
// Run:  ./build/examples/serving

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "models/grid_models.h"
#include "models/trainer.h"
#include "obs/obs.h"
#include "serve/adapters.h"
#include "serve/engine.h"

namespace data = geotorch::data;
namespace ds = geotorch::datasets;
namespace io = geotorch::io;
namespace models = geotorch::models;
namespace serve = geotorch::serve;

int main() {
  std::printf("== GeoTorch-CPP serving ==\n");

  // 1. A small spatiotemporal grid dataset and a trained PeriodicalCnn.
  ds::GridDataset grid = ds::MakeTemperature(
      /*timesteps=*/240, /*height=*/8, /*width=*/8, /*seed=*/7);
  grid.MinMaxNormalize();
  models::GridModelConfig mc;
  mc.channels = grid.channels();
  mc.height = grid.height();
  mc.width = grid.width();
  mc.len_closeness = 3;
  mc.len_period = 2;
  mc.len_trend = 1;
  mc.hidden = 8;
  mc.seed = 42;
  grid.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                   mc.len_trend);
  data::SplitIndices split = data::ChronologicalSplit(grid.Size());
  data::SubsetDataset train(&grid, split.train);
  data::SubsetDataset val(&grid, split.val);
  data::SubsetDataset test(&grid, split.test);

  models::PeriodicalCnn model(mc);
  models::TrainConfig tc;
  tc.max_epochs = 3;
  tc.batch_size = 16;
  tc.lr = 1e-2f;
  tc.seed = 9;
  models::RegressionResult fit =
      models::TrainGridModel(model, train, val, test, tc);
  std::printf("trained %d epochs, test MAE %.4f\n", fit.epochs_run,
              fit.mae);

  // 2. Checkpoint the weights, then restore them into a FRESH model —
  //    the one that will actually serve. Production deployments only
  //    ever see this path: weights arrive as a GTCP file.
  const std::string ckpt = "serving_example.ckpt";
  geotorch::Status saved = io::SaveStateDict(model, ckpt);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.message().c_str());
    return 1;
  }
  models::PeriodicalCnn served_model(mc);  // fresh random weights...
  geotorch::Status loaded = io::LoadStateDict(served_model, ckpt);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.message().c_str());
    return 1;
  }
  std::printf("checkpoint round-tripped through %s\n", ckpt.c_str());

  // 3. Stand up the engine. The spec pins each request's tensor
  //    shapes; GridForward serves the model in eval mode under
  //    NoGradGuard. Knobs also come from GEOTORCH_SERVE_* env vars via
  //    EngineOptions::FromEnv().
  serve::EngineOptions opts;
  opts.max_batch = 8;       // coalesce up to 8 requests per forward
  opts.max_delay_us = 200;  // wait at most 200us for a batch to fill
  opts.max_queue = 64;      // then reject with OutOfRange (backpressure)
  // GEOTORCH_SERVE_PRECISION=bf16|int8 serves the checkpointed model
  // through the low-precision GEMM path (DESIGN.md §10); the adapter
  // quantizes and prepacks the weights once, here at wrap time.
  opts.precision = serve::EngineOptions::FromEnv().precision;
  data::Sample probe = grid.Get(0);
  serve::SampleSpec spec;
  spec.x = probe.x.shape();
  for (const auto& e : probe.extras) spec.extras.push_back(e.shape());
  serve::Engine engine(serve::GridForward(served_model, opts.precision), spec,
                       opts);

  // 4. Concurrent clients submit single samples and block for their
  //    row of the batched forward.
  const int kClients = 4, kRequestsPerClient = 50;
  std::vector<std::vector<int64_t>> lat(kClients);
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        data::Sample s = grid.Get((c * kRequestsPerClient + i) % grid.Size());
        const int64_t t0 = geotorch::obs::NowNs();
        geotorch::Result<geotorch::tensor::Tensor> out = engine.Submit(s);
        if (!out.ok()) {
          errors.fetch_add(1);
          continue;
        }
        lat[c].push_back((geotorch::obs::NowNs() - t0) / 1000);
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.Shutdown();

  std::vector<int64_t> all;
  for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  const serve::EngineStats stats = engine.stats();
  std::printf("served %lld requests in %lld batches (mean batch %.1f), "
              "%d errors\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches),
              stats.batches ? static_cast<double>(stats.requests) /
                                  static_cast<double>(stats.batches)
                            : 0.0,
              errors.load());
  if (!all.empty()) {
    std::printf("latency p50 %lldus  p99 %lldus\n",
                static_cast<long long>(all[all.size() / 2]),
                static_cast<long long>(all[all.size() * 99 / 100]));
  }
  std::remove(ckpt.c_str());
  return 0;
}
