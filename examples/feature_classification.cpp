// Feature-engineering pipeline with the DFtoTorch converter: spectral
// and GLCM features are extracted offline into a DataFrame with the
// preprocessing module, converted into tensors without a master
// collect (Fig. 7), and used to train the feature-driven DeepSAT
// classifier — the scalable counterpart of the quickstart.
//
// Run:  ./build/examples/feature_classification

#include <cstdio>

#include "data/dataloader.h"
#include "datasets/benchmarks.h"
#include "df/dataframe.h"
#include "models/raster_models.h"
#include "models/trainer.h"
#include "prep/df_to_torch.h"
#include "raster/glcm.h"
#include "raster/raster.h"
#include "synth/satimage.h"
#include "tensor/ops.h"

namespace ds = geotorch::datasets;
namespace df = geotorch::df;
namespace prep = geotorch::prep;
namespace models = geotorch::models;
namespace data = geotorch::data;
namespace raster = geotorch::raster;
namespace synth = geotorch::synth;
namespace ts = geotorch::tensor;

int main() {
  std::printf("== Offline features -> DFtoTorch -> DeepSAT ==\n");

  // 1. Scenes.
  geotorch::synth::SceneConfig scene;
  scene.size = 28;
  scene.bands = 4;
  scene.num_classes = 6;
  scene.seed = 13;
  const int64_t n = 360;
  auto [images, labels] = synth::GenerateClassificationSet(n, scene);

  // 2. Offline feature extraction into a DataFrame (one row per image:
  //    3 mean-NDI features + 6 GLCM features + label), partitioned.
  std::vector<std::vector<double>> feature_cols(9);
  std::vector<int64_t> label_col;
  for (int64_t i = 0; i < n; ++i) {
    ts::Tensor img =
        ts::Slice(images, 0, i, i + 1).Reshape({4, 28, 28});
    const std::vector<float> features = ds::ExtractImageFeatures(img);
    for (size_t f = 0; f < feature_cols.size(); ++f) {
      feature_cols[f].push_back(features[f]);
    }
    label_col.push_back(static_cast<int64_t>(labels.flat(i)));
  }
  std::vector<std::pair<std::string, df::Column>> columns;
  std::vector<std::string> feature_names;
  for (size_t f = 0; f < feature_cols.size(); ++f) {
    const std::string name = "f" + std::to_string(f);
    feature_names.push_back(name);
    columns.emplace_back(name,
                         df::Column::FromDoubles(std::move(feature_cols[f])));
  }
  columns.emplace_back("label", df::Column::FromInt64s(std::move(label_col)));
  df::DataFrame features_df =
      df::DataFrame::FromColumns(std::move(columns)).Repartition(4);
  std::printf("feature frame: %lld rows x %d columns in %d partitions\n",
              static_cast<long long>(features_df.NumRows()),
              features_df.schema().num_fields(),
              features_df.num_partitions());

  // 3. DFtoTorch conversion (no master collect) into a Dataset the
  //    trainer can consume — but DeepSAT also wants the images, so we
  //    verify the converter batches first, then assemble the dataset.
  prep::DfToTorch::Options options;
  options.feature_columns = feature_names;
  options.label_column = "label";
  options.batch_size = 64;
  prep::DfToTorch converter(features_df, options);
  ts::Tensor bx;
  ts::Tensor by;
  int64_t rows = 0;
  while (converter.NextBatch(&bx, &by)) rows += bx.size(0);
  std::printf("DFtoTorch streamed %lld rows of %lld features\n",
              static_cast<long long>(rows),
              static_cast<long long>(converter.num_features()));

  // 4. Train DeepSAT (v1, feature-driven) on images + features.
  ds::RasterDatasetOptions dso;
  dso.include_additional_features = true;
  ds::RasterClassificationDataset dataset =
      ds::MakeSat6(n, dso, /*seed=*/13);
  data::SplitIndices split = data::ChronologicalSplit(dataset.Size());
  data::SubsetDataset train(&dataset, split.train);
  data::SubsetDataset val(&dataset, split.val);
  data::SubsetDataset test(&dataset, split.test);

  models::RasterModelConfig mc;
  mc.in_channels = 4;
  mc.in_height = 28;
  mc.in_width = 28;
  mc.num_classes = 6;
  mc.num_filtered_features = dataset.num_additional_features();
  mc.base_filters = 16;
  models::DeepSat model(mc);
  models::TrainConfig tc;
  tc.max_epochs = 12;
  tc.batch_size = 32;
  tc.lr = 2e-3f;
  models::ClassificationResult result =
      models::TrainClassifier(model, train, val, test, tc);
  std::printf("DeepSAT (feature MLP) test accuracy: %.1f%% after %d "
              "epochs\n",
              100.0 * result.accuracy, result.epochs_run);
  return 0;
}
