// Fleet serving: run a replicated serving fleet — two models, each
// behind N dynamically-batched engine replicas and a least-loaded
// router — with per-tenant admission control, then hot-reload one
// model to a new checkpoint while concurrent clients keep submitting
// (DESIGN.md §11). No response is ever dropped or computed against a
// half-loaded model: the fleet loads the new weights into shadow
// modules and swaps each replica between batches.
//
// Run:  ./build/examples/fleet_serving

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "datasets/benchmarks.h"
#include "io/checkpoint.h"
#include "models/grid_models.h"
#include "serve/adapters.h"
#include "serve/config.h"
#include "serve/fleet.h"

namespace data = geotorch::data;
namespace ds = geotorch::datasets;
namespace io = geotorch::io;
namespace models = geotorch::models;
namespace serve = geotorch::serve;

namespace {

// A reloadable snapshot factory: each fleet replica gets its own
// PeriodicalCnn, and Reload() streams a GTCP checkpoint into a shadow
// copy before any replica swaps. SetPrecision re-derives packed
// low-precision panels after a load (a no-op for f32).
serve::SnapshotFactory MakeFactory(models::GridModelConfig config) {
  return [config] {
    auto model = std::make_shared<models::PeriodicalCnn>(config);
    serve::ModelSnapshot snap;
    snap.owner = model;
    snap.forward = serve::GridForward(*model);
    snap.load = [model](const std::string& path) {
      geotorch::Status st = io::LoadStateDict(*model, path);
      if (st.ok()) model->SetPrecision(model->precision());
      return st;
    };
    return snap;
  };
}

}  // namespace

int main() {
  std::printf("== GeoTorch-CPP fleet serving ==\n");

  // 1. Two grid workloads sharing one fleet (think: two cities, or a
  // stable model and a canary).
  ds::GridDataset small = ds::MakeTemperature(240, 8, 8, /*seed=*/7);
  small.MinMaxNormalize();
  ds::GridDataset large = ds::MakeTemperature(240, 16, 16, /*seed=*/11);
  large.MinMaxNormalize();

  auto configure = [](ds::GridDataset& grid, int hidden, uint64_t seed) {
    models::GridModelConfig mc;
    mc.channels = grid.channels();
    mc.height = grid.height();
    mc.width = grid.width();
    mc.len_closeness = 3;
    mc.len_period = 2;
    mc.len_trend = 1;
    mc.hidden = hidden;
    mc.seed = seed;
    grid.SetPeriodicalRepresentation(mc.len_closeness, mc.len_period,
                                     mc.len_trend);
    return mc;
  };
  models::GridModelConfig small_mc = configure(small, 8, 42);
  models::GridModelConfig large_mc = configure(large, 16, 43);

  // 2. The fleet: 2 replicas per model, 100 requests/s/tenant. All of
  // this is also reachable via GEOTORCH_FLEET_* (FleetOptions::FromEnv).
  serve::FleetOptions opts;
  opts.replicas = 2;
  opts.tenant_qps = 100;
  opts.engine.max_batch = 8;
  opts.engine.max_delay_us = 200;
  serve::Fleet fleet(opts);

  auto spec_of = [](const data::Sample& probe) {
    serve::SampleSpec spec;
    spec.x = probe.x.shape();
    for (const auto& e : probe.extras) spec.extras.push_back(e.shape());
    return spec;
  };
  if (!fleet.AddModel("city-small", MakeFactory(small_mc),
                      spec_of(small.Get(0))).ok() ||
      !fleet.AddModel("city-large", MakeFactory(large_mc),
                      spec_of(large.Get(0))).ok()) {
    std::printf("AddModel failed\n");
    return 1;
  }
  std::printf("fleet up: %d replicas x {city-small, city-large}\n",
              fleet.ReplicaCount("city-small"));

  // 3. Concurrent tenants submit against both models.
  std::atomic<int> served{0};
  std::atomic<int> throttled{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t % 2);
      const std::string model = t % 2 == 0 ? "city-small" : "city-large";
      ds::GridDataset& grid = t % 2 == 0 ? small : large;
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = fleet.Submit(model, tenant,
                              grid.Get(i++ % grid.Size()));
        if (r.ok()) {
          served.fetch_add(1);
        } else if (r.status().code() ==
                   geotorch::StatusCode::kResourceExhausted) {
          throttled.fetch_add(1);  // token bucket pushed back
        }
      }
    });
  }
  while (served.load() < 200) std::this_thread::yield();

  // 4. Hot reload city-small to "retrained" weights mid-traffic. The
  // checkpoint loads into shadows first; on any error (truncated file,
  // shape mismatch) nothing swaps and the old weights keep serving.
  const std::string ckpt = "fleet_example.ckpt";
  {
    models::GridModelConfig retrained = small_mc;
    retrained.seed = 99;  // stand-in for an actual retraining run
    models::PeriodicalCnn donor(retrained);
    if (!io::SaveStateDict(donor, ckpt).ok()) return 1;
  }
  const int before = served.load();
  geotorch::Status st = fleet.Reload("city-small", ckpt);
  std::printf("reload: %s (version %lld), ~%d responses served during it\n",
              st.ok() ? "ok" : st.message().c_str(),
              static_cast<long long>(*fleet.ModelVersion("city-small")),
              served.load() - before);

  while (served.load() < 400) std::this_thread::yield();
  stop.store(true);
  for (auto& c : clients) c.join();
  fleet.Shutdown();
  std::remove(ckpt.c_str());

  const serve::FleetStats stats = fleet.stats();
  std::printf("served %d requests (%lld routed, %lld throttled, "
              "%lld replica swaps)\n",
              served.load(), static_cast<long long>(stats.routed),
              static_cast<long long>(stats.tenant_rejected),
              static_cast<long long>(stats.reload_swaps));
  return 0;
}
