#ifndef GEOTORCH_SYNTH_NOISE_H_
#define GEOTORCH_SYNTH_NOISE_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace geotorch::synth {

/// Smooth value noise: a coarse random lattice bilinearly interpolated
/// to h x w. `scale` is the lattice spacing in output pixels — larger
/// scale, smoother field. Values are roughly in [-1, 1].
std::vector<float> SmoothNoise(int64_t h, int64_t w, int64_t scale, Rng& rng);

/// Fractal (multi-octave) value noise: sum of SmoothNoise octaves with
/// halving scale and amplitude. Used for cloud shapes and land texture.
std::vector<float> FractalNoise(int64_t h, int64_t w, int64_t base_scale,
                                int octaves, Rng& rng);

}  // namespace geotorch::synth

#endif  // GEOTORCH_SYNTH_NOISE_H_
