#ifndef GEOTORCH_SYNTH_WEATHER_H_
#define GEOTORCH_SYNTH_WEATHER_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace geotorch::synth {

/// Weather variables mirroring the WeatherBench-derived datasets the
/// paper evaluates (temperature, total precipitation, total cloud
/// cover).
enum class WeatherKind {
  kTemperature,     ///< degrees C; lat gradient + diurnal/annual cycles
  kPrecipitation,   ///< meters/hour; sparse, heavy-tailed, tiny values
  kCloudCover,      ///< fraction in [0, 1]
  kGeopotential,    ///< m^2/s^2 at 500 hPa; large values, smooth waves
  kSolarRadiation,  ///< W/m^2 incident shortwave; zero at night
};

/// Generates a (T, C=1, H, W) field with one-hour timesteps on an
/// H x W lat/lon grid (the paper's grids are 32 x 64). The field has
/// strong hour-to-hour autocorrelation (advected smooth noise) plus a
/// deterministic diurnal component, giving the sequential models real
/// short-range predictability.
tensor::Tensor GenerateWeatherField(WeatherKind kind, int64_t t, int64_t h,
                                    int64_t w, uint64_t seed);

/// Generates a grid traffic-flow dataset: a (T, C, H, W) tensor of
/// per-cell in/out flow counts driven by per-cell base demand times
/// diurnal and weekly profiles plus autocorrelated noise — the
/// statistical shape of BikeNYC / TaxiBJ (Table II). `steps_per_day`
/// controls the time interval (24 = hourly, 48 = 30 minutes).
tensor::Tensor GenerateGridFlow(int64_t t, int64_t c, int64_t h, int64_t w,
                                int64_t steps_per_day, uint64_t seed);

}  // namespace geotorch::synth

#endif  // GEOTORCH_SYNTH_WEATHER_H_
