#ifndef GEOTORCH_SYNTH_SATIMAGE_H_
#define GEOTORCH_SYNTH_SATIMAGE_H_

#include <cstdint>
#include <utility>

#include "raster/raster.h"
#include "tensor/tensor.h"

namespace geotorch::synth {

/// Configuration of the multispectral scene generator — the stand-in
/// for EuroSAT (64x64, 13 bands, 10 classes), SAT-6 (28x28, 4 bands,
/// 6 classes), and SlumDetection (32x32, 4 bands, 2 classes).
struct SceneConfig {
  int64_t size = 64;
  int64_t bands = 13;
  int num_classes = 10;
  uint64_t seed = 0;
  /// Additive sensor noise stddev (relative to the 0..1 reflectances).
  float noise = 0.2f;
};

/// Generates one labeled scene. Each class has a distinct spectral
/// signature (so spectral indices separate classes) and a distinct
/// texture scale (so GLCM features separate classes), plus per-image
/// illumination jitter and sensor noise.
raster::RasterImage GenerateScene(const SceneConfig& config, int cls,
                                  uint64_t image_seed);

/// Generates a classification set: images (N, bands, size, size) and
/// labels (N) with a balanced class distribution.
std::pair<tensor::Tensor, tensor::Tensor> GenerateClassificationSet(
    int64_t n, const SceneConfig& config);

/// Generates a cloud-segmentation set — the 38-Cloud stand-in:
/// images (N, bands, size, size) and binary masks (N, size, size)
/// where cloudy pixels brighten every band.
std::pair<tensor::Tensor, tensor::Tensor> GenerateCloudSegmentationSet(
    int64_t n, int64_t size, int64_t bands, uint64_t seed);

}  // namespace geotorch::synth

#endif  // GEOTORCH_SYNTH_SATIMAGE_H_
