#include "synth/noise.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace geotorch::synth {

std::vector<float> SmoothNoise(int64_t h, int64_t w, int64_t scale,
                               Rng& rng) {
  GEO_CHECK(h > 0 && w > 0 && scale > 0);
  const int64_t gh = h / scale + 2;
  const int64_t gw = w / scale + 2;
  std::vector<float> lattice(gh * gw);
  for (auto& v : lattice) v = static_cast<float>(rng.Uniform(-1.0, 1.0));

  std::vector<float> out(h * w);
  for (int64_t i = 0; i < h; ++i) {
    const double gy = static_cast<double>(i) / scale;
    const int64_t y0 = static_cast<int64_t>(gy);
    const float fy = static_cast<float>(gy - y0);
    for (int64_t j = 0; j < w; ++j) {
      const double gx = static_cast<double>(j) / scale;
      const int64_t x0 = static_cast<int64_t>(gx);
      const float fx = static_cast<float>(gx - x0);
      const float v00 = lattice[y0 * gw + x0];
      const float v01 = lattice[y0 * gw + x0 + 1];
      const float v10 = lattice[(y0 + 1) * gw + x0];
      const float v11 = lattice[(y0 + 1) * gw + x0 + 1];
      const float top = v00 * (1 - fx) + v01 * fx;
      const float bot = v10 * (1 - fx) + v11 * fx;
      out[i * w + j] = top * (1 - fy) + bot * fy;
    }
  }
  return out;
}

std::vector<float> FractalNoise(int64_t h, int64_t w, int64_t base_scale,
                                int octaves, Rng& rng) {
  GEO_CHECK_GE(octaves, 1);
  std::vector<float> out(h * w, 0.0f);
  float amplitude = 1.0f;
  float total_amp = 0.0f;
  int64_t scale = base_scale;
  for (int o = 0; o < octaves && scale >= 1; ++o) {
    std::vector<float> layer = SmoothNoise(h, w, scale, rng);
    for (int64_t i = 0; i < h * w; ++i) out[i] += amplitude * layer[i];
    total_amp += amplitude;
    amplitude *= 0.5f;
    scale = std::max<int64_t>(1, scale / 2);
  }
  for (auto& v : out) v /= total_amp;
  return out;
}

}  // namespace geotorch::synth
