#include "synth/satimage.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.h"
#include "core/rng.h"
#include "synth/noise.h"
#include "tensor/ops.h"

namespace geotorch::synth {
namespace {

// Deterministic per-class spectral signature in [0.1, 0.9]: each class
// gets a distinct reflectance curve over the bands, so band ratios
// (normalized difference indices) carry class information.
float ClassSignature(int cls, int64_t band, int64_t bands) {
  const double phase = 0.9 * cls + 0.4;
  const double freq = 1.0 + 0.15 * (cls % 5);
  const double x = static_cast<double>(band) / static_cast<double>(bands);
  return static_cast<float>(0.5 + 0.35 * std::sin(2.0 * M_PI * freq * x +
                                                  phase));
}

// Per-class texture scale (lattice spacing of the noise): classes
// differ in GLCM statistics.
int64_t ClassTextureScale(int cls, int64_t size) {
  const int64_t scales[] = {2, 3, 4, 6, 8, 12};
  return std::min<int64_t>(size / 2,
                           scales[cls % (sizeof(scales) / sizeof(int64_t))]);
}

}  // namespace

raster::RasterImage GenerateScene(const SceneConfig& config, int cls,
                                  uint64_t image_seed) {
  GEO_CHECK(cls >= 0 && cls < config.num_classes);
  Rng rng(image_seed);
  const int64_t s = config.size;
  raster::RasterImage img(s, s, config.bands);

  // Shared texture field: the same spatial pattern modulates every
  // band (real scenes are spatially coherent across bands).
  const int64_t scale = ClassTextureScale(cls, s);
  std::vector<float> texture = FractalNoise(s, s, scale, 3, rng);
  // Illumination jitter per image.
  const float illum = static_cast<float>(rng.Uniform(0.85, 1.15));

  for (int64_t b = 0; b < config.bands; ++b) {
    const float sig = ClassSignature(cls, b, config.bands);
    // Texture modulation strength also varies per band.
    const float tex_amp = 0.12f + 0.08f * static_cast<float>(b % 3);
    float* plane = img.band_data(b);
    for (int64_t i = 0; i < s * s; ++i) {
      float v = illum * (sig + tex_amp * texture[i]) +
                static_cast<float>(rng.Normal(0.0, config.noise));
      plane[i] = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return img;
}

std::pair<tensor::Tensor, tensor::Tensor> GenerateClassificationSet(
    int64_t n, const SceneConfig& config) {
  GEO_CHECK_GT(n, 0);
  tensor::Tensor images({n, config.bands, config.size, config.size});
  tensor::Tensor labels({n});
  const int64_t per_image = config.bands * config.size * config.size;
  Rng seeder(config.seed);
  for (int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % config.num_classes);
    const uint64_t image_seed =
        static_cast<uint64_t>(seeder.UniformInt(0, (1LL << 62)));
    raster::RasterImage img = GenerateScene(config, cls, image_seed);
    std::copy(img.data().begin(), img.data().end(),
              images.data() + i * per_image);
    labels.flat(i) = static_cast<float>(cls);
  }
  return {images, labels};
}

std::pair<tensor::Tensor, tensor::Tensor> GenerateCloudSegmentationSet(
    int64_t n, int64_t size, int64_t bands, uint64_t seed) {
  GEO_CHECK(n > 0 && size > 0 && bands > 0);
  tensor::Tensor images({n, bands, size, size});
  tensor::Tensor masks({n, size, size});
  Rng rng(seed);
  const int64_t per_image = bands * size * size;
  for (int64_t i = 0; i < n; ++i) {
    // Land background: textured reflectance per band.
    std::vector<float> land = FractalNoise(size, size, size / 4, 3, rng);
    // Cloud field: smooth blobs; threshold controls coverage (~20-60%).
    std::vector<float> cloud = FractalNoise(size, size, size / 3, 2, rng);
    const float threshold = static_cast<float>(rng.Uniform(0.05, 0.35));
    float* mask = masks.data() + i * size * size;
    for (int64_t p = 0; p < size * size; ++p) {
      mask[p] = cloud[p] > threshold ? 1.0f : 0.0f;
    }
    for (int64_t b = 0; b < bands; ++b) {
      const float land_base = 0.25f + 0.05f * b;
      float* plane = images.data() + i * per_image + b * size * size;
      for (int64_t p = 0; p < size * size; ++p) {
        float v = land_base + 0.15f * land[p];
        if (mask[p] > 0.5f) {
          // Clouds are bright in every band, with soft edges.
          const float density =
              std::min(1.0f, (cloud[p] - threshold) * 4.0f);
          v = v * (1.0f - density) + density * 0.9f;
        }
        v += static_cast<float>(rng.Normal(0.0, 0.03));
        plane[p] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return {images, masks};
}

}  // namespace geotorch::synth
