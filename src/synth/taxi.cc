#include "synth/taxi.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace geotorch::synth {
namespace {

// Hour-of-day intensity: low at night, peaks at the 8am and 6pm rush.
double DiurnalFactor(double hour) {
  const double morning = std::exp(-(hour - 8.0) * (hour - 8.0) / 8.0);
  const double evening = std::exp(-(hour - 18.0) * (hour - 18.0) / 10.0);
  return 0.25 + morning + 1.2 * evening;
}

// Weekday factor: weekends carry less commuter traffic.
double WeeklyFactor(int day_of_week) {
  return (day_of_week >= 5) ? 0.6 : 1.0;
}

using HotSpot = TaxiEventStream::HotSpot;

// Draws the activity centers. Both the batch generator and the event
// stream call this with a fresh seed-initialized Rng, so a stream and a
// batch over the same seed share one spatial world.
std::vector<HotSpot> SampleHotSpots(Rng& rng, const spatial::Envelope& extent,
                                    int num_hotspots) {
  std::vector<HotSpot> spots;
  spots.reserve(num_hotspots);
  for (int s = 0; s < num_hotspots; ++s) {
    HotSpot h;
    h.lon = rng.Uniform(extent.min_x() + 0.1 * extent.width(),
                        extent.max_x() - 0.1 * extent.width());
    h.lat = rng.Uniform(extent.min_y() + 0.1 * extent.height(),
                        extent.max_y() - 0.1 * extent.height());
    h.sigma = rng.Uniform(0.003, 0.02);
    h.weight = rng.Uniform(0.5, 2.0);
    spots.push_back(h);
  }
  return spots;
}

// Hot-spot mixture draw: 85% from a weighted spot (clamped into the
// extent), 15% uniform background traffic.
void DrawLocation(Rng& rng, const std::vector<HotSpot>& spots,
                  const std::vector<double>& weights,
                  const spatial::Envelope& extent, TripRecord* rec) {
  if (rng.Bernoulli(0.85)) {
    const HotSpot& h = spots[rng.Categorical(weights)];
    rec->lon = rng.Normal(h.lon, h.sigma);
    rec->lat = rng.Normal(h.lat, h.sigma);
    rec->lon = std::clamp(rec->lon, extent.min_x(), extent.max_x());
    rec->lat = std::clamp(rec->lat, extent.min_y(), extent.max_y());
  } else {
    rec->lon = rng.Uniform(extent.min_x(), extent.max_x());
    rec->lat = rng.Uniform(extent.min_y(), extent.max_y());
  }
}

}  // namespace

double TripIntensity(int64_t time_sec) {
  const double hour =
      static_cast<double>(time_sec % 86400) / 3600.0;
  const int dow = static_cast<int>((time_sec / 86400) % 7);
  return DiurnalFactor(hour) * WeeklyFactor(dow);
}

std::vector<TripRecord> GenerateTaxiTrips(const TaxiTripConfig& config) {
  GEO_CHECK_GT(config.num_records, 0);
  Rng rng(config.seed);

  // Hot spots: fixed activity centers inside the extent with
  // per-spot spread and weight.
  std::vector<HotSpot> spots =
      SampleHotSpots(rng, config.extent, config.num_hotspots);
  std::vector<double> weights;
  weights.reserve(spots.size());
  for (const HotSpot& h : spots) weights.push_back(h.weight);

  // Rejection-free time sampling: draw a uniform time, accept with
  // probability proportional to intensity (thinning); loop until
  // enough records.
  const double max_intensity = 2.8;  // upper bound of the profile
  std::vector<TripRecord> records;
  records.reserve(config.num_records);
  while (static_cast<int64_t>(records.size()) < config.num_records) {
    const int64_t t =
        rng.UniformInt(0, config.duration_sec - 1);
    if (rng.Uniform(0.0, max_intensity) > TripIntensity(t)) continue;
    TripRecord rec;
    rec.time_sec = t;
    rec.is_pickup = rng.Bernoulli(0.5) ? 1 : 0;
    DrawLocation(rng, spots, weights, config.extent, &rec);
    records.push_back(rec);
  }
  return records;
}

TaxiEventStream::TaxiEventStream(const TaxiStreamConfig& config)
    : config_(config), rng_(config.seed) {
  GEO_CHECK_GT(config_.events_per_sec, 0.0);
  GEO_CHECK_GT(config_.duration_sec, 0);
  GEO_CHECK_GT(config_.tick_sec, 0);
  spots_ = SampleHotSpots(rng_, config_.extent, config_.num_hotspots);
  weights_.reserve(spots_.size());
  for (const HotSpot& h : spots_) weights_.push_back(h.weight);
}

bool TaxiEventStream::NextTick(std::vector<TripRecord>* out) {
  if (next_tick_sec_ >= config_.duration_sec) return false;
  const int64_t t0 = next_tick_sec_;
  const int64_t t1 =
      std::min(config_.duration_sec, t0 + config_.tick_sec);
  next_tick_sec_ = t0 + config_.tick_sec;

  // Poisson arrival count at the intensity-modulated rate, evaluated at
  // the tick start — fine for ticks much shorter than the diurnal
  // profile's features (hours).
  const double mean = config_.events_per_sec *
                      static_cast<double>(t1 - t0) * TripIntensity(t0);
  const int64_t n = rng_.Poisson(mean);
  for (int64_t i = 0; i < n; ++i) {
    TripRecord rec;
    // Uniform WITHIN the tick: ticks are ordered, events inside one
    // tick are not — downstream bucketing must not rely on intra-tick
    // order (and cannot, as long as slide >= tick_sec).
    rec.time_sec = rng_.UniformInt(t0, t1 - 1);
    rec.is_pickup = rng_.Bernoulli(0.5) ? 1 : 0;
    DrawLocation(rng_, spots_, weights_, config_.extent, &rec);
    out->push_back(rec);
  }
  events_emitted_ += n;
  return true;
}

df::DataFrame TripsToDataFrame(const std::vector<TripRecord>& trips,
                               int num_partitions) {
  GEO_CHECK_GE(num_partitions, 1);
  // Build the partitions directly from contiguous record chunks (a
  // "parallel read" of the raw files) rather than loading into one
  // partition and shuffling.
  auto schema = std::make_shared<df::Schema>(
      std::vector<std::pair<std::string, df::DataType>>{
          {"lon", df::DataType::kDouble},
          {"lat", df::DataType::kDouble},
          {"time", df::DataType::kInt64},
          {"is_pickup", df::DataType::kInt64}});
  const int64_t n = static_cast<int64_t>(trips.size());
  const int64_t per = (n + num_partitions - 1) / num_partitions;
  std::vector<std::shared_ptr<const df::Partition>> parts;
  for (int64_t begin = 0; begin < n || parts.empty(); begin += per) {
    const int64_t end = std::min(n, begin + per);
    std::vector<double> lon;
    std::vector<double> lat;
    std::vector<int64_t> time;
    std::vector<int64_t> is_pickup;
    lon.reserve(end - begin);
    lat.reserve(end - begin);
    time.reserve(end - begin);
    is_pickup.reserve(end - begin);
    for (int64_t i = begin; i < end; ++i) {
      lon.push_back(trips[i].lon);
      lat.push_back(trips[i].lat);
      time.push_back(trips[i].time_sec);
      is_pickup.push_back(trips[i].is_pickup);
    }
    std::vector<df::Column> cols;
    cols.push_back(df::Column::FromDoubles(std::move(lon)));
    cols.push_back(df::Column::FromDoubles(std::move(lat)));
    cols.push_back(df::Column::FromInt64s(std::move(time)));
    cols.push_back(df::Column::FromInt64s(std::move(is_pickup)));
    parts.push_back(std::make_shared<df::Partition>(std::move(cols)));
    if (n == 0) break;
  }
  return df::DataFrame::FromPartitions(std::move(schema), std::move(parts));
}

}  // namespace geotorch::synth
