#include "synth/taxi.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace geotorch::synth {
namespace {

// Hour-of-day intensity: low at night, peaks at the 8am and 6pm rush.
double DiurnalFactor(double hour) {
  const double morning = std::exp(-(hour - 8.0) * (hour - 8.0) / 8.0);
  const double evening = std::exp(-(hour - 18.0) * (hour - 18.0) / 10.0);
  return 0.25 + morning + 1.2 * evening;
}

// Weekday factor: weekends carry less commuter traffic.
double WeeklyFactor(int day_of_week) {
  return (day_of_week >= 5) ? 0.6 : 1.0;
}

}  // namespace

double TripIntensity(int64_t time_sec) {
  const double hour =
      static_cast<double>(time_sec % 86400) / 3600.0;
  const int dow = static_cast<int>((time_sec / 86400) % 7);
  return DiurnalFactor(hour) * WeeklyFactor(dow);
}

std::vector<TripRecord> GenerateTaxiTrips(const TaxiTripConfig& config) {
  GEO_CHECK_GT(config.num_records, 0);
  Rng rng(config.seed);

  // Hot spots: fixed activity centers inside the extent with
  // per-spot spread and weight.
  struct HotSpot {
    double lon;
    double lat;
    double sigma;
    double weight;
  };
  std::vector<HotSpot> spots;
  std::vector<double> weights;
  for (int s = 0; s < config.num_hotspots; ++s) {
    HotSpot h;
    h.lon = rng.Uniform(config.extent.min_x() + 0.1 * config.extent.width(),
                        config.extent.max_x() - 0.1 * config.extent.width());
    h.lat =
        rng.Uniform(config.extent.min_y() + 0.1 * config.extent.height(),
                    config.extent.max_y() - 0.1 * config.extent.height());
    h.sigma = rng.Uniform(0.003, 0.02);
    h.weight = rng.Uniform(0.5, 2.0);
    spots.push_back(h);
    weights.push_back(h.weight);
  }

  // Rejection-free time sampling: draw a uniform time, accept with
  // probability proportional to intensity (thinning); loop until
  // enough records.
  const double max_intensity = 2.8;  // upper bound of the profile
  std::vector<TripRecord> records;
  records.reserve(config.num_records);
  while (static_cast<int64_t>(records.size()) < config.num_records) {
    const int64_t t =
        rng.UniformInt(0, config.duration_sec - 1);
    if (rng.Uniform(0.0, max_intensity) > TripIntensity(t)) continue;
    TripRecord rec;
    rec.time_sec = t;
    rec.is_pickup = rng.Bernoulli(0.5) ? 1 : 0;
    if (rng.Bernoulli(0.85)) {
      // Hot-spot draw.
      const auto& h = spots[rng.Categorical(weights)];
      rec.lon = rng.Normal(h.lon, h.sigma);
      rec.lat = rng.Normal(h.lat, h.sigma);
      // Clamp stragglers into the extent.
      rec.lon = std::clamp(rec.lon, config.extent.min_x(),
                           config.extent.max_x());
      rec.lat = std::clamp(rec.lat, config.extent.min_y(),
                           config.extent.max_y());
    } else {
      // Background uniform traffic.
      rec.lon = rng.Uniform(config.extent.min_x(), config.extent.max_x());
      rec.lat = rng.Uniform(config.extent.min_y(), config.extent.max_y());
    }
    records.push_back(rec);
  }
  return records;
}

df::DataFrame TripsToDataFrame(const std::vector<TripRecord>& trips,
                               int num_partitions) {
  GEO_CHECK_GE(num_partitions, 1);
  // Build the partitions directly from contiguous record chunks (a
  // "parallel read" of the raw files) rather than loading into one
  // partition and shuffling.
  auto schema = std::make_shared<df::Schema>(
      std::vector<std::pair<std::string, df::DataType>>{
          {"lon", df::DataType::kDouble},
          {"lat", df::DataType::kDouble},
          {"time", df::DataType::kInt64},
          {"is_pickup", df::DataType::kInt64}});
  const int64_t n = static_cast<int64_t>(trips.size());
  const int64_t per = (n + num_partitions - 1) / num_partitions;
  std::vector<std::shared_ptr<const df::Partition>> parts;
  for (int64_t begin = 0; begin < n || parts.empty(); begin += per) {
    const int64_t end = std::min(n, begin + per);
    std::vector<double> lon;
    std::vector<double> lat;
    std::vector<int64_t> time;
    std::vector<int64_t> is_pickup;
    lon.reserve(end - begin);
    lat.reserve(end - begin);
    time.reserve(end - begin);
    is_pickup.reserve(end - begin);
    for (int64_t i = begin; i < end; ++i) {
      lon.push_back(trips[i].lon);
      lat.push_back(trips[i].lat);
      time.push_back(trips[i].time_sec);
      is_pickup.push_back(trips[i].is_pickup);
    }
    std::vector<df::Column> cols;
    cols.push_back(df::Column::FromDoubles(std::move(lon)));
    cols.push_back(df::Column::FromDoubles(std::move(lat)));
    cols.push_back(df::Column::FromInt64s(std::move(time)));
    cols.push_back(df::Column::FromInt64s(std::move(is_pickup)));
    parts.push_back(std::make_shared<df::Partition>(std::move(cols)));
    if (n == 0) break;
  }
  return df::DataFrame::FromPartitions(std::move(schema), std::move(parts));
}

}  // namespace geotorch::synth
