#ifndef GEOTORCH_SYNTH_TAXI_H_
#define GEOTORCH_SYNTH_TAXI_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "df/dataframe.h"
#include "spatial/geometry.h"

namespace geotorch::synth {

/// One synthetic taxi trip event — the stand-in for a row of the NYC
/// TLC yellow-trip record files (DESIGN.md §1).
struct TripRecord {
  double lon;
  double lat;
  int64_t time_sec;  ///< seconds since the dataset epoch
  int64_t is_pickup; ///< 1 = pickup, 0 = dropoff
};

struct TaxiTripConfig {
  int64_t num_records = 100000;
  /// Temporal span of the dataset; the paper's YellowTrip-NYC covers
  /// three months (Oct-Dec 2010) at 30-minute intervals.
  int64_t duration_sec = 92LL * 24 * 3600;
  /// Spatial extent; default approximates the NYC bounding box.
  spatial::Envelope extent =
      spatial::Envelope(-74.05, 40.60, -73.75, 40.90);
  /// Number of pickup/dropoff activity hot spots (midtown, airports...).
  int num_hotspots = 8;
  uint64_t seed = 0;
};

/// Generates trip events with the spatiotemporal structure the paper's
/// experiments rely on: hot-spot spatial mixture, rush-hour diurnal
/// profile, and a weekday/weekend cycle — so that the aggregated grid
/// tensor carries closeness, period, and trend signal.
std::vector<TripRecord> GenerateTaxiTrips(const TaxiTripConfig& config);

/// Loads trips into a DataFrame with columns lon (double), lat
/// (double), time (int64), is_pickup (int64) split into
/// `num_partitions` partitions — the shape of the raw data the
/// preprocessing module ingests.
df::DataFrame TripsToDataFrame(const std::vector<TripRecord>& trips,
                               int num_partitions);

/// The relative trip intensity at a given second (diurnal x weekly),
/// exposed for tests.
double TripIntensity(int64_t time_sec);

/// Knobs of the ordered-event-stream mode (DESIGN.md §14): the same
/// hot-spot + diurnal model as GenerateTaxiTrips, but emitted tick by
/// tick in nondecreasing event time — the shape a streaming ingest
/// consumes. Deterministic given the seed.
struct TaxiStreamConfig {
  /// Mean event rate at intensity 1.0; the instantaneous rate is
  /// events_per_sec * TripIntensity(t).
  double events_per_sec = 100.0;
  /// Stream end (exclusive) in dataset seconds; ticks past it return
  /// false.
  int64_t duration_sec = 24LL * 3600;
  /// Emission granularity: each NextTick call covers [t, t + tick_sec).
  /// Event timestamps are drawn uniformly WITHIN the tick, so events of
  /// one tick are unordered among themselves while ticks stay ordered —
  /// the out-of-order-within-tick contract downstream aggregation must
  /// tolerate.
  int64_t tick_sec = 1;
  spatial::Envelope extent =
      spatial::Envelope(-74.05, 40.60, -73.75, 40.90);
  int num_hotspots = 8;
  uint64_t seed = 0;
};

/// Ordered trip-event source: each NextTick appends the events of the
/// next tick_sec span (Poisson count at the intensity-modulated rate,
/// hot-spot spatial mixture) and advances. Event times never decrease
/// across ticks. Deterministic: two streams with the same config emit
/// identical sequences.
class TaxiEventStream {
 public:
  explicit TaxiEventStream(const TaxiStreamConfig& config);

  /// Appends this tick's events to `out` (which is NOT cleared) and
  /// advances the clock. Returns false — appending nothing — once the
  /// stream is exhausted (tick start >= duration_sec).
  bool NextTick(std::vector<TripRecord>* out);

  /// Dataset-clock start of the next tick to be emitted.
  int64_t next_tick_sec() const { return next_tick_sec_; }
  int64_t events_emitted() const { return events_emitted_; }
  const TaxiStreamConfig& config() const { return config_; }

  /// One activity center of the spatial mixture (shared with the batch
  /// generator).
  struct HotSpot {
    double lon;
    double lat;
    double sigma;
    double weight;
  };

 private:
  TaxiStreamConfig config_;
  Rng rng_;
  std::vector<HotSpot> spots_;
  std::vector<double> weights_;
  int64_t next_tick_sec_ = 0;
  int64_t events_emitted_ = 0;
};

}  // namespace geotorch::synth

#endif  // GEOTORCH_SYNTH_TAXI_H_
