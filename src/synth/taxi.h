#ifndef GEOTORCH_SYNTH_TAXI_H_
#define GEOTORCH_SYNTH_TAXI_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "df/dataframe.h"
#include "spatial/geometry.h"

namespace geotorch::synth {

/// One synthetic taxi trip event — the stand-in for a row of the NYC
/// TLC yellow-trip record files (DESIGN.md §1).
struct TripRecord {
  double lon;
  double lat;
  int64_t time_sec;  ///< seconds since the dataset epoch
  int64_t is_pickup; ///< 1 = pickup, 0 = dropoff
};

struct TaxiTripConfig {
  int64_t num_records = 100000;
  /// Temporal span of the dataset; the paper's YellowTrip-NYC covers
  /// three months (Oct-Dec 2010) at 30-minute intervals.
  int64_t duration_sec = 92LL * 24 * 3600;
  /// Spatial extent; default approximates the NYC bounding box.
  spatial::Envelope extent =
      spatial::Envelope(-74.05, 40.60, -73.75, 40.90);
  /// Number of pickup/dropoff activity hot spots (midtown, airports...).
  int num_hotspots = 8;
  uint64_t seed = 0;
};

/// Generates trip events with the spatiotemporal structure the paper's
/// experiments rely on: hot-spot spatial mixture, rush-hour diurnal
/// profile, and a weekday/weekend cycle — so that the aggregated grid
/// tensor carries closeness, period, and trend signal.
std::vector<TripRecord> GenerateTaxiTrips(const TaxiTripConfig& config);

/// Loads trips into a DataFrame with columns lon (double), lat
/// (double), time (int64), is_pickup (int64) split into
/// `num_partitions` partitions — the shape of the raw data the
/// preprocessing module ingests.
df::DataFrame TripsToDataFrame(const std::vector<TripRecord>& trips,
                               int num_partitions);

/// The relative trip intensity at a given second (diurnal x weekly),
/// exposed for tests.
double TripIntensity(int64_t time_sec);

}  // namespace geotorch::synth

#endif  // GEOTORCH_SYNTH_TAXI_H_
