#include "synth/weather.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"
#include "synth/noise.h"

namespace geotorch::synth {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

}  // namespace

tensor::Tensor GenerateWeatherField(WeatherKind kind, int64_t t, int64_t h,
                                    int64_t w, uint64_t seed) {
  GEO_CHECK(t > 0 && h > 0 && w > 0);
  Rng rng(seed);
  tensor::Tensor out({t, 1, h, w});
  float* po = out.data();

  // AR(1) evolution of a smooth spatial field: state = rho*state + eps.
  const float rho = 0.95f;
  std::vector<float> state = SmoothNoise(h, w, std::max<int64_t>(4, h / 4),
                                         rng);
  // Static latitude profile (row-dependent).
  std::vector<float> lat_profile(h);
  for (int64_t i = 0; i < h; ++i) {
    // Warmest near the "equator" row at h/2.
    const double x = (static_cast<double>(i) - h / 2.0) / (h / 2.0);
    lat_profile[i] = static_cast<float>(1.0 - x * x);
  }

  for (int64_t step = 0; step < t; ++step) {
    std::vector<float> eps =
        SmoothNoise(h, w, std::max<int64_t>(4, h / 4), rng);
    for (int64_t i = 0; i < h * w; ++i) {
      state[i] = rho * state[i] + std::sqrt(1 - rho * rho) * eps[i];
    }
    const double hour = static_cast<double>(step % 24);
    const double day = static_cast<double>(step) / 24.0;
    const double diurnal = std::sin(kTwoPi * (hour - 14.0) / 24.0);
    const double annual = std::sin(kTwoPi * day / 365.0);
    float* frame = po + step * h * w;
    for (int64_t i = 0; i < h; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        const float s = state[i * w + j];
        float v = 0.0f;
        switch (kind) {
          case WeatherKind::kTemperature:
            // Mean ~ -10..25C depending on latitude, +-4C diurnal,
            // +-6C seasonal, +-3C weather noise.
            v = static_cast<float>(-10.0 + 35.0 * lat_profile[i] +
                                   4.0 * diurnal + 6.0 * annual + 3.0 * s);
            break;
          case WeatherKind::kPrecipitation:
            // Rain only where the field exceeds a threshold; tiny
            // magnitudes (meters), matching the paper's ~1e-4 MAEs.
            v = s > 0.8f ? 2e-3f * (s - 0.8f) : 0.0f;
            break;
          case WeatherKind::kCloudCover:
            // Logistic squashing of the field into [0, 1].
            v = 1.0f / (1.0f + std::exp(-4.0f * s));
            break;
          case WeatherKind::kGeopotential:
            // 500 hPa height field: ~5.5e4 m^2/s^2 base, latitude
            // gradient, large smooth synoptic waves.
            v = static_cast<float>(5.5e4 + 2.5e3 * lat_profile[i] +
                                   8e2 * s + 1e2 * annual);
            break;
          case WeatherKind::kSolarRadiation:
            // Incident shortwave: zero at night, clear-sky diurnal arc
            // scaled by latitude and damped by the cloud field.
            {
              const double arc =
                  std::max(0.0, std::sin(kTwoPi * (hour - 6.0) / 24.0));
              const double clouds = 1.0 / (1.0 + std::exp(-4.0 * s));
              v = static_cast<float>(1000.0 * arc * lat_profile[i] *
                                     (1.0 - 0.7 * clouds));
            }
            break;
        }
        frame[i * w + j] = v;
      }
    }
  }
  return out;
}

tensor::Tensor GenerateGridFlow(int64_t t, int64_t c, int64_t h, int64_t w,
                                int64_t steps_per_day, uint64_t seed) {
  GEO_CHECK(t > 0 && c > 0 && h > 0 && w > 0 && steps_per_day > 0);
  Rng rng(seed);
  tensor::Tensor out({t, c, h, w});
  float* po = out.data();

  // Per-cell, per-channel base demand: hot spots over a low floor.
  std::vector<float> base(c * h * w);
  for (int64_t ci = 0; ci < c; ++ci) {
    std::vector<float> field =
        FractalNoise(h, w, std::max<int64_t>(2, h / 3), 2, rng);
    for (int64_t i = 0; i < h * w; ++i) {
      // Skewed positive demand.
      base[ci * h * w + i] =
          2.0f + 30.0f * std::max(0.0f, field[i]) * std::max(0.0f, field[i]);
    }
  }

  // Disturbances: a weak AR(1) component (predictable from recent
  // frames) plus i.i.d. observation noise (the count noise of real
  // trip data, unpredictable from any history). The deterministic
  // diurnal/weekly structure carries most of the signal, which is what
  // makes the closeness/period/trend features valuable (Section II-B).
  std::vector<float> ar(c * h * w, 0.0f);
  const float rho = 0.7f;

  for (int64_t step = 0; step < t; ++step) {
    const double day_frac =
        static_cast<double>(step % steps_per_day) / steps_per_day;
    const double hour = day_frac * 24.0;
    const int dow = static_cast<int>((step / steps_per_day) % 7);
    // Sharp rush-hour peaks: high curvature punishes pure short-range
    // extrapolation.
    const double morning = std::exp(-(hour - 8.0) * (hour - 8.0) / 3.0);
    const double evening = std::exp(-(hour - 18.0) * (hour - 18.0) / 4.0);
    const double weekly = (dow >= 5) ? 0.55 : 1.0;
    float* frame = po + step * c * h * w;
    for (int64_t k = 0; k < c * h * w; ++k) {
      ar[k] = rho * ar[k] + static_cast<float>(rng.Normal(0.0, 0.04));
      // Channels alternate morning-heavy / evening-heavy (in vs out
      // flow), like pickup vs dropoff asymmetry.
      const int64_t ci = k / (h * w);
      const double diurnal = (ci % 2 == 0)
                                 ? 0.2 + morning + 0.7 * evening
                                 : 0.2 + 0.7 * morning + evening;
      const double mean_v = base[k] * diurnal * weekly * (1.0 + ar[k]);
      const double v = mean_v * (1.0 + 0.1 * rng.Normal(0.0, 1.0));
      frame[k] = static_cast<float>(std::max(0.0, v));
    }
  }
  return out;
}

}  // namespace geotorch::synth
