#include "autograd/ops.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "core/check.h"
#include "tensor/ops.h"

namespace geotorch::autograd {

namespace {

namespace ts = ::geotorch::tensor;

using internal::Node;

// Expands `t` to `shape` by broadcasting (one strided copy).
ts::Tensor Broadcast(const ts::Tensor& t, const ts::Shape& shape) {
  return ts::BroadcastTo(t, shape);
}

// Note on the in-place backward kernels below: a node's grad is fully
// accumulated before its backward_fn runs (reverse topological order),
// it is privately owned (AccumulateGrad copies incoming gradients), and
// PushGrad copies out of its argument immediately — so a backward_fn may
// freely mutate n.grad after (or instead of) materializing a temporary.

// Accumulates `g` into parent i of `n` when that parent wants a grad.
void PushGrad(Node& n, size_t i, const ts::Tensor& g) {
  Node* parent = n.parents[i].get();
  if (parent->requires_grad) parent->AccumulateGrad(g);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  ts::Tensor out = ts::Add(a.value(), b.value());
  ts::Shape sa = a.shape();
  ts::Shape sb = b.shape();
  return Variable::FromOp(std::move(out), {a, b}, [sa, sb](Node& n) {
    PushGrad(n, 0, ts::SumToShape(n.grad, sa));
    PushGrad(n, 1, ts::SumToShape(n.grad, sb));
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  ts::Tensor out = ts::Sub(a.value(), b.value());
  ts::Shape sa = a.shape();
  ts::Shape sb = b.shape();
  return Variable::FromOp(std::move(out), {a, b}, [sa, sb](Node& n) {
    PushGrad(n, 0, ts::SumToShape(n.grad, sa));
    ts::NegInPlace(n.grad);
    PushGrad(n, 1, ts::SumToShape(n.grad, sb));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  ts::Tensor va = a.value();
  ts::Tensor vb = b.value();
  ts::Tensor out = ts::Mul(va, vb);
  return Variable::FromOp(std::move(out), {a, b}, [va, vb](Node& n) {
    PushGrad(n, 0, ts::SumToShape(ts::Mul(n.grad, vb), va.shape()));
    if (ts::SameShape(n.grad.shape(), va.shape())) {
      ts::MulInPlace(n.grad, va);
      PushGrad(n, 1, ts::SumToShape(n.grad, vb.shape()));
    } else {
      PushGrad(n, 1, ts::SumToShape(ts::Mul(n.grad, va), vb.shape()));
    }
  });
}

Variable Div(const Variable& a, const Variable& b) {
  ts::Tensor va = a.value();
  ts::Tensor vb = b.value();
  ts::Tensor out = ts::Div(va, vb);
  return Variable::FromOp(std::move(out), {a, b}, [va, vb](Node& n) {
    PushGrad(n, 0, ts::SumToShape(ts::Div(n.grad, vb), va.shape()));
    ts::Tensor gb = ts::Neg(ts::Div(ts::Mul(n.grad, va), ts::Mul(vb, vb)));
    PushGrad(n, 1, ts::SumToShape(gb, vb.shape()));
  });
}

Variable AddScalar(const Variable& a, float s) {
  return Variable::FromOp(ts::AddScalar(a.value(), s), {a},
                          [](Node& n) { PushGrad(n, 0, n.grad); });
}

Variable MulScalar(const Variable& a, float s) {
  return Variable::FromOp(ts::MulScalar(a.value(), s), {a}, [s](Node& n) {
    n.grad.ScaleInPlace(s);
    PushGrad(n, 0, n.grad);
  });
}

Variable PowScalar(const Variable& a, float p) {
  ts::Tensor va = a.value();
  return Variable::FromOp(ts::PowScalar(va, p), {a}, [va, p](Node& n) {
    PushGrad(n, 0,
             ts::Mul(n.grad, ts::MulScalar(ts::PowScalar(va, p - 1.0f), p)));
  });
}

Variable Neg(const Variable& a) {
  return Variable::FromOp(ts::Neg(a.value()), {a}, [](Node& n) {
    ts::NegInPlace(n.grad);
    PushGrad(n, 0, n.grad);
  });
}

Variable Exp(const Variable& a) {
  ts::Tensor out = ts::Exp(a.value());
  ts::Tensor y = out;
  return Variable::FromOp(std::move(out), {a}, [y](Node& n) {
    ts::MulInPlace(n.grad, y);
    PushGrad(n, 0, n.grad);
  });
}

Variable Log(const Variable& a) {
  ts::Tensor va = a.value();
  return Variable::FromOp(ts::Log(va), {a}, [va](Node& n) {
    PushGrad(n, 0, ts::Div(n.grad, va));
  });
}

Variable Sqrt(const Variable& a) {
  ts::Tensor out = ts::Sqrt(a.value());
  ts::Tensor y = out;
  return Variable::FromOp(std::move(out), {a}, [y](Node& n) {
    PushGrad(n, 0, ts::Div(ts::MulScalar(n.grad, 0.5f), y));
  });
}

Variable Relu(const Variable& a) {
  ts::Tensor va = a.value();
  return Variable::FromOp(ts::Relu(va), {a}, [va](Node& n) {
    ts::ReluMaskInPlace(n.grad, va);
    PushGrad(n, 0, n.grad);
  });
}

Variable LeakyRelu(const Variable& a, float slope) {
  ts::Tensor va = a.value();
  return Variable::FromOp(ts::LeakyRelu(va, slope), {a}, [va, slope](Node& n) {
    ts::ReluMaskInPlace(n.grad, va, slope);
    PushGrad(n, 0, n.grad);
  });
}

Variable Sigmoid(const Variable& a) {
  ts::Tensor out = ts::Sigmoid(a.value());
  ts::Tensor y = out;
  return Variable::FromOp(std::move(out), {a}, [y](Node& n) {
    ts::SigmoidGradInPlace(n.grad, y);
    PushGrad(n, 0, n.grad);
  });
}

Variable Tanh(const Variable& a) {
  ts::Tensor out = ts::Tanh(a.value());
  ts::Tensor y = out;
  return Variable::FromOp(std::move(out), {a}, [y](Node& n) {
    ts::TanhGradInPlace(n.grad, y);
    PushGrad(n, 0, n.grad);
  });
}

Variable MatMul(const Variable& a, const Variable& b) {
  ts::Tensor va = a.value();
  ts::Tensor vb = b.value();
  ts::Tensor out = ts::MatMul(va, vb);
  return Variable::FromOp(std::move(out), {a, b}, [va, vb](Node& n) {
    // dA = g·B^T, dB = A^T·g; the kernel consumes the transposed
    // operand in place, so neither transpose is materialized.
    PushGrad(n, 0, ts::MatMulT(n.grad, vb, false, true));
    PushGrad(n, 1, ts::MatMulT(va, n.grad, true, false));
  });
}

Variable Reshape(const Variable& a, tensor::Shape shape) {
  ts::Shape in_shape = a.shape();
  return Variable::FromOp(a.value().Reshape(std::move(shape)).Clone(), {a},
                          [in_shape](Node& n) {
                            PushGrad(n, 0, n.grad.Reshape(in_shape));
                          });
}

Variable Permute(const Variable& a, const std::vector<int>& perm) {
  std::vector<int> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = static_cast<int>(i);
  return Variable::FromOp(ts::Permute(a.value(), perm), {a},
                          [inverse](Node& n) {
                            PushGrad(n, 0, ts::Permute(n.grad, inverse));
                          });
}

Variable Concat(const std::vector<Variable>& parts, int dim) {
  GEO_CHECK(!parts.empty());
  std::vector<ts::Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  ts::Tensor out = ts::Concat(values, dim);
  const int rank = parts[0].value().ndim();
  const int norm_dim = dim < 0 ? dim + rank : dim;
  std::vector<int64_t> sizes;
  sizes.reserve(parts.size());
  for (const Variable& p : parts) sizes.push_back(p.shape()[norm_dim]);
  return Variable::FromOp(
      std::move(out), parts, [sizes, norm_dim](Node& n) {
        int64_t offset = 0;
        for (size_t i = 0; i < sizes.size(); ++i) {
          PushGrad(n, i,
                   ts::Slice(n.grad, norm_dim, offset, offset + sizes[i]));
          offset += sizes[i];
        }
      });
}

Variable Slice(const Variable& a, int dim, int64_t start, int64_t end) {
  ts::Tensor out = ts::Slice(a.value(), dim, start, end);
  ts::Shape in_shape = a.shape();
  const int rank = a.value().ndim();
  const int norm_dim = dim < 0 ? dim + rank : dim;
  return Variable::FromOp(
      std::move(out), {a}, [in_shape, norm_dim, start](Node& n) {
        // Scatter the slice gradient back into a zero tensor.
        ts::Tensor gin = ts::Tensor::Zeros(in_shape);
        int64_t outer = 1;
        for (int d = 0; d < norm_dim; ++d) outer *= in_shape[d];
        int64_t inner = 1;
        for (int d = norm_dim + 1; d < static_cast<int>(in_shape.size()); ++d) {
          inner *= in_shape[d];
        }
        const int64_t in_dim = in_shape[norm_dim];
        const int64_t out_dim = n.grad.shape()[norm_dim];
        const float* pg = n.grad.data();
        float* po = gin.data();
        for (int64_t o = 0; o < outer; ++o) {
          std::memcpy(po + (o * in_dim + start) * inner,
                      pg + o * out_dim * inner,
                      sizeof(float) * out_dim * inner);
        }
        PushGrad(n, 0, gin);
      });
}

Variable Sum(const Variable& a, int dim, bool keepdim) {
  ts::Tensor out = ts::Sum(a.value(), dim, keepdim);
  ts::Shape in_shape = a.shape();
  const int rank = a.value().ndim();
  const int norm_dim = dim < 0 ? dim + rank : dim;
  return Variable::FromOp(
      std::move(out), {a}, [in_shape, norm_dim, keepdim](Node& n) {
        ts::Tensor g = n.grad;
        if (!keepdim) {
          ts::Shape kd = in_shape;
          kd[norm_dim] = 1;
          g = g.Reshape(kd);
        }
        PushGrad(n, 0, Broadcast(g, in_shape));
      });
}

Variable Mean(const Variable& a, int dim, bool keepdim) {
  const int rank = a.value().ndim();
  const int norm_dim = dim < 0 ? dim + rank : dim;
  const float inv = 1.0f / static_cast<float>(a.shape()[norm_dim]);
  return MulScalar(Sum(a, dim, keepdim), inv);
}

Variable SumAll(const Variable& a) {
  ts::Tensor out = ts::Tensor::Scalar(ts::SumAll(a.value()));
  ts::Shape in_shape = a.shape();
  return Variable::FromOp(std::move(out), {a}, [in_shape](Node& n) {
    PushGrad(n, 0, ts::Tensor::Full(in_shape, n.grad.flat(0)));
  });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return MulScalar(SumAll(a), inv);
}

Variable Conv2d(const Variable& x, const Variable& w, const Variable& bias,
                const tensor::ConvSpec& spec) {
  const bool has_bias = bias.defined() && bias.numel() > 0;
  ts::Tensor out = ts::Conv2dForward(
      x.value(), w.value(), has_bias ? bias.value() : ts::Tensor(), spec);
  ts::Tensor vx = x.value();
  ts::Tensor vw = w.value();
  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(bias);
  return Variable::FromOp(
      std::move(out), std::move(parents),
      [vx, vw, has_bias, spec](Node& n) {
        ts::Conv2dGrads grads =
            ts::Conv2dBackward(n.grad, vx, vw, has_bias, spec);
        PushGrad(n, 0, grads.grad_x);
        PushGrad(n, 1, grads.grad_w);
        if (has_bias) PushGrad(n, 2, grads.grad_bias);
      });
}

Variable ConvTranspose2d(const Variable& x, const Variable& w,
                         const Variable& bias,
                         const tensor::ConvSpec& spec) {
  const bool has_bias = bias.defined() && bias.numel() > 0;
  ts::Tensor out = ts::ConvTranspose2dForward(
      x.value(), w.value(), has_bias ? bias.value() : ts::Tensor(), spec);
  ts::Tensor vx = x.value();
  ts::Tensor vw = w.value();
  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(bias);
  return Variable::FromOp(
      std::move(out), std::move(parents),
      [vx, vw, has_bias, spec](Node& n) {
        ts::ConvTranspose2dGrads grads =
            ts::ConvTranspose2dBackward(n.grad, vx, vw, has_bias, spec);
        PushGrad(n, 0, grads.grad_x);
        PushGrad(n, 1, grads.grad_w);
        if (has_bias) PushGrad(n, 2, grads.grad_bias);
      });
}

Variable MaxPool2d(const Variable& x, int64_t kernel) {
  auto [out, argmax] = ts::MaxPool2dForward(x.value(), kernel);
  ts::Shape in_shape = x.shape();
  return Variable::FromOp(
      std::move(out), {x},
      [in_shape, argmax = std::move(argmax)](Node& n) {
        PushGrad(n, 0, ts::MaxPool2dBackward(n.grad, in_shape, argmax));
      });
}

Variable AvgPool2d(const Variable& x, int64_t kernel) {
  ts::Tensor out = ts::AvgPool2dForward(x.value(), kernel);
  ts::Shape in_shape = x.shape();
  return Variable::FromOp(std::move(out), {x}, [in_shape, kernel](Node& n) {
    PushGrad(n, 0, ts::AvgPool2dBackward(n.grad, in_shape, kernel));
  });
}

Variable UpsampleNearest2x(const Variable& x) {
  return Variable::FromOp(ts::UpsampleNearest2x(x.value()), {x},
                          [](Node& n) {
                            PushGrad(n, 0,
                                     ts::UpsampleNearest2xBackward(n.grad));
                          });
}

Variable Dropout(const Variable& x, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return x;
  GEO_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  ts::Tensor mask = ts::Tensor::Uninitialized(x.shape());
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng.Bernoulli(p) ? 0.0f : scale;
  }
  ts::Tensor out = ts::Mul(x.value(), mask);
  return Variable::FromOp(std::move(out), {x}, [mask](Node& n) {
    ts::MulInPlace(n.grad, mask);
    PushGrad(n, 0, n.grad);
  });
}

Variable MseLoss(const Variable& pred, const tensor::Tensor& target) {
  GEO_CHECK(ts::SameShape(pred.shape(), target.shape()))
      << "MseLoss shapes " << ts::ShapeToString(pred.shape()) << " vs "
      << ts::ShapeToString(target.shape());
  ts::Tensor diff = ts::Sub(pred.value(), target);
  const float n_inv = 1.0f / static_cast<float>(diff.numel());
  ts::Tensor out =
      ts::Tensor::Scalar(ts::SumAll(ts::Mul(diff, diff)) * n_inv);
  return Variable::FromOp(std::move(out), {pred}, [diff, n_inv](Node& n) {
    const float s = 2.0f * n_inv * n.grad.flat(0);
    PushGrad(n, 0, ts::MulScalar(diff, s));
  });
}

Variable CrossEntropyLoss(const Variable& logits,
                          const tensor::Tensor& target) {
  const ts::Tensor& z = logits.value();
  GEO_CHECK_GE(z.ndim(), 2);
  const int64_t c = z.size(1);
  // Positions = batch x spatial.
  int64_t outer = z.size(0);
  int64_t inner = 1;
  for (int d = 2; d < z.ndim(); ++d) inner *= z.size(d);
  GEO_CHECK_EQ(target.numel(), outer * inner)
      << "CrossEntropyLoss target count mismatch";

  ts::Tensor logp = ts::LogSoftmax(z, 1);
  const float* plp = logp.data();
  const float* pt = target.data();
  double loss = 0.0;
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      const int64_t cls = static_cast<int64_t>(pt[o * inner + i]);
      GEO_CHECK(cls >= 0 && cls < c) << "class id " << cls << " out of range";
      loss -= plp[(o * c + cls) * inner + i];
    }
  }
  const int64_t count = outer * inner;
  ts::Tensor out =
      ts::Tensor::Scalar(static_cast<float>(loss / static_cast<double>(count)));
  ts::Tensor tgt = target;
  return Variable::FromOp(
      std::move(out), {logits}, [logp, tgt, c, outer, inner, count](Node& n) {
        // d/dz = (softmax - onehot) / count.
        ts::Tensor grad = ts::Exp(logp);
        float* pg = grad.data();
        const float* pt2 = tgt.data();
        for (int64_t o = 0; o < outer; ++o) {
          for (int64_t i = 0; i < inner; ++i) {
            const int64_t cls = static_cast<int64_t>(pt2[o * inner + i]);
            pg[(o * c + cls) * inner + i] -= 1.0f;
          }
        }
        const float s = n.grad.flat(0) / static_cast<float>(count);
        grad.ScaleInPlace(s);
        PushGrad(n, 0, grad);
      });
}

Variable BceWithLogitsLoss(const Variable& logits,
                           const tensor::Tensor& target) {
  const ts::Tensor& z = logits.value();
  GEO_CHECK(ts::SameShape(z.shape(), target.shape()));
  const float* pz = z.data();
  const float* pt = target.data();
  double loss = 0.0;
  for (int64_t i = 0; i < z.numel(); ++i) {
    const double zi = pz[i];
    const double yi = pt[i];
    loss += std::max(zi, 0.0) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
  }
  const int64_t count = z.numel();
  ts::Tensor out =
      ts::Tensor::Scalar(static_cast<float>(loss / static_cast<double>(count)));
  ts::Tensor vz = z;
  ts::Tensor tgt = target;
  return Variable::FromOp(std::move(out), {logits},
                          [vz, tgt, count](Node& n) {
                            ts::Tensor grad = ts::Sub(ts::Sigmoid(vz), tgt);
                            grad.ScaleInPlace(n.grad.flat(0) /
                                              static_cast<float>(count));
                            PushGrad(n, 0, grad);
                          });
}

}  // namespace geotorch::autograd
