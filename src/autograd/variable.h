#ifndef GEOTORCH_AUTOGRAD_VARIABLE_H_
#define GEOTORCH_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace geotorch::autograd {

namespace internal {

/// A node of the reverse-mode tape. Holds the forward value, the
/// (lazily allocated) gradient accumulator, the parent edges, and the
/// closure that pushes this node's gradient into its parents.
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;  // empty until first accumulation
  bool requires_grad = false;
  bool is_leaf = true;
  /// Set once this node's backward has run and its saved state (the
  /// backward closure and, for interior nodes, the gradient) has been
  /// eagerly released. A released graph cannot run Backward() again.
  bool released = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Reads `grad` (guaranteed allocated) and accumulates into parents.
  std::function<void(Node&)> backward_fn;

  /// grad += g, allocating a zero tensor on first use.
  void AccumulateGrad(const tensor::Tensor& g);
  bool has_grad() const { return grad.numel() > 0; }
};

}  // namespace internal

/// True unless a NoGradGuard is active on this thread. Ops skip tape
/// construction while disabled (inference mode).
bool GradEnabled();

/// RAII scope that disables tape recording (like torch.no_grad()).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool saved_;
};

/// A tensor tracked by the autograd tape. Cheap to copy (shared node).
///
/// Leaves are created from data (`Variable(t, /*requires_grad=*/true)`
/// for parameters); interior variables are produced by the ops in
/// autograd/ops.h. Call Backward() on a scalar result to populate
/// grad() on every parameter that contributed to it.
class Variable {
 public:
  /// An empty variable (no node). Usable only as a placeholder.
  Variable();
  /// Wraps a value as a leaf.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  /// Builds an interior node from an op result. `backward` accumulates
  /// node.grad into the parents (only called when grad is enabled and
  /// some parent requires grad).
  static Variable FromOp(tensor::Tensor value,
                         std::vector<Variable> parents,
                         std::function<void(internal::Node&)> backward);

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const;
  tensor::Tensor& mutable_value();
  const tensor::Shape& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  bool requires_grad() const;
  void set_requires_grad(bool requires_grad);

  /// The accumulated gradient. Check has_grad() first.
  const tensor::Tensor& grad() const;
  bool has_grad() const;
  /// Clears the gradient accumulator.
  void ZeroGrad();

  /// Reverse pass seeded with ones (the variable is typically a scalar
  /// loss). Traverses the tape once in reverse topological order.
  void Backward();

  std::shared_ptr<internal::Node> node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

}  // namespace geotorch::autograd

#endif  // GEOTORCH_AUTOGRAD_VARIABLE_H_
