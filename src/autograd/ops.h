#ifndef GEOTORCH_AUTOGRAD_OPS_H_
#define GEOTORCH_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"
#include "tensor/conv.h"

namespace geotorch::autograd {

// Differentiable ops over Variables. Each mirrors the tensor-level op of
// the same name and registers a tape node when gradients are enabled.

// --- Elementwise (NumPy broadcasting) ------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
/// a^p with scalar p (a must stay positive for non-integral p).
Variable PowScalar(const Variable& a, float p);

Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float slope = 0.01f);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);

// --- Linear algebra & layout ----------------------------------------------
Variable MatMul(const Variable& a, const Variable& b);
Variable Reshape(const Variable& a, tensor::Shape shape);
Variable Permute(const Variable& a, const std::vector<int>& perm);
Variable Concat(const std::vector<Variable>& parts, int dim);
Variable Slice(const Variable& a, int dim, int64_t start, int64_t end);

// --- Reductions --------------------------------------------------------------
Variable Sum(const Variable& a, int dim, bool keepdim);
Variable Mean(const Variable& a, int dim, bool keepdim);
/// Reduces everything to a single-element tensor.
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

// --- Spatial ops ---------------------------------------------------------------
/// x: (N,C,H,W), w: (F,C,KH,KW), bias: (F)-shaped Variable or empty.
Variable Conv2d(const Variable& x, const Variable& w, const Variable& bias,
                const tensor::ConvSpec& spec);
/// x: (N,C,H,W), w: (C,F,KH,KW).
Variable ConvTranspose2d(const Variable& x, const Variable& w,
                         const Variable& bias, const tensor::ConvSpec& spec);
Variable MaxPool2d(const Variable& x, int64_t kernel);
Variable AvgPool2d(const Variable& x, int64_t kernel);
Variable UpsampleNearest2x(const Variable& x);

// --- Regularization --------------------------------------------------------
/// Inverted dropout: active only when `training`; scales by 1/(1-p).
Variable Dropout(const Variable& x, float p, bool training, Rng& rng);

// --- Losses (targets are plain tensors: no gradient flows into them) ----
/// mean((pred - target)^2), a scalar.
Variable MseLoss(const Variable& pred, const tensor::Tensor& target);
/// Softmax cross entropy over dim 1. logits: (N,C) or (N,C,H,W);
/// target holds integer class ids, shaped (N) or (N,H,W).
Variable CrossEntropyLoss(const Variable& logits,
                          const tensor::Tensor& target);
/// Numerically stable binary cross entropy on logits; target in {0,1}
/// with the same shape.
Variable BceWithLogitsLoss(const Variable& logits,
                           const tensor::Tensor& target);

}  // namespace geotorch::autograd

#endif  // GEOTORCH_AUTOGRAD_OPS_H_
