#include "autograd/variable.h"

#include <unordered_set>

#include "core/check.h"

namespace geotorch::autograd {
namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

namespace internal {

void Node::AccumulateGrad(const tensor::Tensor& g) {
  GEO_CHECK(tensor::SameShape(g.shape(), value.shape()))
      << "gradient shape " << tensor::ShapeToString(g.shape())
      << " does not match value shape "
      << tensor::ShapeToString(value.shape());
  if (!has_grad()) {
    grad = g.Clone();
  } else {
    grad.AddInPlace(g);
  }
}

}  // namespace internal

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : saved_(t_grad_enabled) {
  t_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { t_grad_enabled = saved_; }

Variable::Variable() = default;

Variable::Variable(tensor::Tensor value, bool requires_grad)
    : node_(std::make_shared<internal::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

Variable Variable::FromOp(tensor::Tensor value,
                          std::vector<Variable> parents,
                          std::function<void(internal::Node&)> backward) {
  bool any_requires = false;
  for (const Variable& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_requires = true;
      break;
    }
  }
  if (!GradEnabled() || !any_requires) {
    // Detached result: no tape edge.
    return Variable(std::move(value), /*requires_grad=*/false);
  }
  Variable out;
  out.node_ = std::make_shared<internal::Node>();
  out.node_->value = std::move(value);
  out.node_->requires_grad = true;
  out.node_->is_leaf = false;
  for (const Variable& p : parents) {
    if (p.defined()) out.node_->parents.push_back(p.node_);
  }
  out.node_->backward_fn = std::move(backward);
  return out;
}

const tensor::Tensor& Variable::value() const {
  GEO_CHECK(defined()) << "value() on empty Variable";
  return node_->value;
}

tensor::Tensor& Variable::mutable_value() {
  GEO_CHECK(defined());
  return node_->value;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::set_requires_grad(bool requires_grad) {
  GEO_CHECK(defined());
  GEO_CHECK(node_->is_leaf) << "set_requires_grad on interior node";
  node_->requires_grad = requires_grad;
}

const tensor::Tensor& Variable::grad() const {
  GEO_CHECK(defined() && node_->has_grad()) << "grad() before Backward()";
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->has_grad(); }

void Variable::ZeroGrad() {
  if (defined()) node_->grad = tensor::Tensor();
}

void Variable::Backward() {
  GEO_CHECK(defined());
  GEO_CHECK(node_->requires_grad)
      << "Backward() on a variable that requires no grad";
  GEO_CHECK(!node_->released)
      << "Backward() twice through the same graph: saved intermediates "
         "were eagerly released by the first pass";

  // Iterative post-order DFS over parents -> topological order.
  std::vector<internal::Node*> topo;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::Node* parent =
          frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  node_->AccumulateGrad(tensor::Tensor::Ones(node_->value.shape()));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward_fn && n->has_grad()) {
      n->backward_fn(*n);
    }
    // Eager release: once this node's gradient has been pushed into its
    // parents, neither its backward closure (which captures the saved
    // forward tensors) nor its interior gradient are needed again —
    // drop them now instead of at graph teardown, so peak memory tracks
    // the backward frontier rather than the whole graph. The `parents`
    // edges must stay: `topo` holds raw pointers into them.
    n->backward_fn = nullptr;
    n->released = true;
    if (!n->is_leaf) n->grad = tensor::Tensor();
  }
}

}  // namespace geotorch::autograd
