#include "io/crc32.h"

#include <array>

namespace geotorch::io {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace geotorch::io
