#ifndef GEOTORCH_IO_CHECKPOINT_H_
#define GEOTORCH_IO_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace geotorch::io {

/// How the int8 payload of a QuantTensor maps back to real values.
enum class QuantKind : uint8_t {
  kPerTensor = 0,  ///< one scale for the whole tensor
  kPerRow = 1,     ///< scales[dims[0]] — conv weights (F, C, KH, KW)
  kPerCol = 2,     ///< scales[dims.back()] — linear weights (in, out)
};

/// A symmetric int8-quantized tensor record (GTCP v2, DESIGN.md §10):
/// real value = data[i] * scale_for(i); zero_point is stored for format
/// completeness and is always 0 under the symmetric scheme.
struct QuantTensor {
  std::string name;
  std::vector<int64_t> dims;
  QuantKind kind = QuantKind::kPerTensor;
  int32_t zero_point = 0;
  std::vector<float> scales;
  std::vector<int8_t> data;  ///< row-major, product(dims) elements

  int64_t numel() const;
};

/// An in-memory checkpoint: named float32 tensors, optional int8
/// quantized tensors, plus named int64 / float64 scalars (epoch
/// counters, optimizer clocks, config fields). The on-disk format
/// (DESIGN.md §9–10) is a single versioned binary blob:
///
///   "GTCP" magic | u32 version | u32 counts (tensors/ints/floats,
///   + qtensors when version >= 2)
///   per tensor:  u32 name_len | name | u32 rank | i64 dims | f32 payload
///   per qtensor: u32 name_len | name | u8 kind | u32 rank | i64 dims |
///                i32 zero_point | u32 nscales | f32 scales | i8 payload
///   per int:     u32 name_len | name | i64 value
///   per float:   u32 name_len | name | f64 value
///   u32 CRC-32 trailer over every preceding byte
///
/// A checkpoint with no qtensors is written as version 1 — byte-for-
/// byte the pre-quantization format — so old readers (and old files)
/// keep working; files claiming a version newer than this build are
/// rejected with a Status, never parsed speculatively.
///
/// Readers validate the magic, version, CRC, and every record bound
/// before touching tensor storage, so truncated or bit-flipped files
/// come back as Status errors, never crashes.
struct Checkpoint {
  std::vector<std::pair<std::string, tensor::Tensor>> tensors;
  std::vector<QuantTensor> qtensors;
  std::vector<std::pair<std::string, int64_t>> ints;
  std::vector<std::pair<std::string, double>> floats;

  /// Linear lookups (checkpoints hold tens of entries, not millions).
  const tensor::Tensor* FindTensor(const std::string& name) const;
  const QuantTensor* FindQuantTensor(const std::string& name) const;
  const int64_t* FindInt(const std::string& name) const;
  const double* FindFloat(const std::string& name) const;
};

/// Serializes `ckpt` to `path` (atomically enough for our purposes:
/// buffer fully in memory, then one write).
Status WriteCheckpoint(const std::string& path, const Checkpoint& ckpt);

/// Parses a checkpoint written by WriteCheckpoint. Any structural
/// problem — wrong magic, unsupported version, truncation, CRC
/// mismatch, out-of-bounds record — returns an error Status.
Result<Checkpoint> ReadCheckpoint(const std::string& path);

struct LoadOptions {
  /// Strict (the default) requires the checkpoint's tensor names and
  /// the module's parameter names to match exactly. Permissive loads
  /// the intersection and ignores the rest. Shape mismatches on a
  /// matched name are an error in both modes.
  bool strict = true;
};

/// Writes every named parameter of `module` to `path`.
Status SaveStateDict(const nn::Module& module, const std::string& path);

/// Symmetric int8 quantization of one f32 tensor: per output channel
/// for weights (rank 2 → per column, rank >= 3 → per first dim), per
/// tensor otherwise.
QuantTensor QuantizeTensor(const std::string& name, const tensor::Tensor& t);

/// Reconstructs the f32 tensor a QuantTensor approximates.
tensor::Tensor DequantizeTensor(const QuantTensor& q);

/// Like SaveStateDict but stores every parameter of rank >= 2 as an
/// int8 QuantTensor (per-output-channel scales, ~4x smaller on disk);
/// rank-0/1 parameters (biases, norm affines) stay f32. The file is
/// GTCP version 2; LoadStateDict dequantizes transparently on load.
Status SaveQuantizedStateDict(const nn::Module& module,
                              const std::string& path);

/// Loads a state dict produced by SaveStateDict into `module`,
/// overwriting parameter values in place (existing storage, existing
/// autograd nodes — optimizers holding the parameters stay valid).
Status LoadStateDict(nn::Module& module, const std::string& path,
                     const LoadOptions& options = {});

/// In-memory half of LoadStateDict, reused by the trainer's resume
/// path: applies `ckpt.tensors` (filtered by `prefix`, which is
/// stripped before the name lookup) to the module's parameters.
Status ApplyStateDict(nn::Module& module, const Checkpoint& ckpt,
                      const LoadOptions& options = {},
                      const std::string& prefix = "");

}  // namespace geotorch::io

#endif  // GEOTORCH_IO_CHECKPOINT_H_
