#ifndef GEOTORCH_IO_CHECKPOINT_H_
#define GEOTORCH_IO_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace geotorch::io {

/// An in-memory checkpoint: named float32 tensors plus named int64 /
/// float64 scalars (epoch counters, optimizer clocks, config fields).
/// The on-disk format (DESIGN.md §9) is a single versioned binary blob:
///
///   "GTCP" magic | u32 version | u32 counts (tensors/ints/floats)
///   per tensor:  u32 name_len | name | u32 rank | i64 dims | f32 payload
///   per int:     u32 name_len | name | i64 value
///   per float:   u32 name_len | name | f64 value
///   u32 CRC-32 trailer over every preceding byte
///
/// Readers validate the magic, version, CRC, and every record bound
/// before touching tensor storage, so truncated or bit-flipped files
/// come back as Status errors, never crashes.
struct Checkpoint {
  std::vector<std::pair<std::string, tensor::Tensor>> tensors;
  std::vector<std::pair<std::string, int64_t>> ints;
  std::vector<std::pair<std::string, double>> floats;

  /// Linear lookups (checkpoints hold tens of entries, not millions).
  const tensor::Tensor* FindTensor(const std::string& name) const;
  const int64_t* FindInt(const std::string& name) const;
  const double* FindFloat(const std::string& name) const;
};

/// Serializes `ckpt` to `path` (atomically enough for our purposes:
/// buffer fully in memory, then one write).
Status WriteCheckpoint(const std::string& path, const Checkpoint& ckpt);

/// Parses a checkpoint written by WriteCheckpoint. Any structural
/// problem — wrong magic, unsupported version, truncation, CRC
/// mismatch, out-of-bounds record — returns an error Status.
Result<Checkpoint> ReadCheckpoint(const std::string& path);

struct LoadOptions {
  /// Strict (the default) requires the checkpoint's tensor names and
  /// the module's parameter names to match exactly. Permissive loads
  /// the intersection and ignores the rest. Shape mismatches on a
  /// matched name are an error in both modes.
  bool strict = true;
};

/// Writes every named parameter of `module` to `path`.
Status SaveStateDict(const nn::Module& module, const std::string& path);

/// Loads a state dict produced by SaveStateDict into `module`,
/// overwriting parameter values in place (existing storage, existing
/// autograd nodes — optimizers holding the parameters stay valid).
Status LoadStateDict(nn::Module& module, const std::string& path,
                     const LoadOptions& options = {});

/// In-memory half of LoadStateDict, reused by the trainer's resume
/// path: applies `ckpt.tensors` (filtered by `prefix`, which is
/// stripped before the name lookup) to the module's parameters.
Status ApplyStateDict(nn::Module& module, const Checkpoint& ckpt,
                      const LoadOptions& options = {},
                      const std::string& prefix = "");

}  // namespace geotorch::io

#endif  // GEOTORCH_IO_CHECKPOINT_H_
