#ifndef GEOTORCH_IO_CRC32_H_
#define GEOTORCH_IO_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace geotorch::io {

/// IEEE CRC-32 (reflected polynomial 0xEDB88320 — the zlib/PNG
/// variant) over `n` bytes. Pass a previous return value as `seed` to
/// chain incremental computations over split buffers.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace geotorch::io

#endif  // GEOTORCH_IO_CRC32_H_
