#include "io/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "io/crc32.h"
#include "tensor/shape.h"

namespace geotorch::io {
namespace {

constexpr char kMagic[4] = {'G', 'T', 'C', 'P'};
constexpr uint32_t kVersion = 1;
// Sanity bounds: a record that claims more than this is corrupt, not
// merely large (the biggest real model here is ~1M parameters).
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 16;

// --- Little binary buffer helpers -------------------------------------------

class Writer {
 public:
  template <typename T>
  void Put(const T& v) {
    const size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(buf_.data() + at, &v, sizeof(T));
  }
  void PutBytes(const void* p, size_t n) {
    const size_t at = buf_.size();
    buf_.resize(at + n);
    if (n > 0) std::memcpy(buf_.data() + at, p, n);
  }
  void PutName(const std::string& name) {
    Put(static_cast<uint32_t>(name.size()));
    PutBytes(name.data(), name.size());
  }
  const std::vector<unsigned char>& buffer() const { return buf_; }

 private:
  std::vector<unsigned char> buf_;
};

// Bounds-checked cursor over the file image; every Get reports
// truncation via ok() instead of reading past the end.
class Reader {
 public:
  Reader(const unsigned char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Get(T* out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool GetBytes(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    if (n > 0) std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool GetName(std::string* out) {
    uint32_t len = 0;
    if (!Get(&len) || len > kMaxNameLen) return false;
    out->resize(len);
    return GetBytes(out->data(), len);
  }
  size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IoError("corrupt checkpoint " + path + ": " + what);
}

}  // namespace

const tensor::Tensor* Checkpoint::FindTensor(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

const int64_t* Checkpoint::FindInt(const std::string& name) const {
  for (const auto& [n, v] : ints) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* Checkpoint::FindFloat(const std::string& name) const {
  for (const auto& [n, v] : floats) {
    if (n == name) return &v;
  }
  return nullptr;
}

Status WriteCheckpoint(const std::string& path, const Checkpoint& ckpt) {
  Writer w;
  w.PutBytes(kMagic, sizeof(kMagic));
  w.Put(kVersion);
  w.Put(static_cast<uint32_t>(ckpt.tensors.size()));
  w.Put(static_cast<uint32_t>(ckpt.ints.size()));
  w.Put(static_cast<uint32_t>(ckpt.floats.size()));
  for (const auto& [name, t] : ckpt.tensors) {
    w.PutName(name);
    w.Put(static_cast<uint32_t>(t.ndim()));
    for (int64_t d : t.shape()) w.Put(d);
    w.PutBytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
  }
  for (const auto& [name, v] : ckpt.ints) {
    w.PutName(name);
    w.Put(v);
  }
  for (const auto& [name, v] : ckpt.floats) {
    w.PutName(name);
    w.Put(v);
  }
  const uint32_t crc = Crc32(w.buffer().data(), w.buffer().size());

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(w.buffer().data(), 1, w.buffer().size(), f.get()) !=
          w.buffer().size() ||
      std::fwrite(&crc, sizeof(crc), 1, f.get()) != 1) {
    return Status::IoError("write failed: " + path);
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("flush failed: " + path);
  }
  return Status::OK();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("seek failed: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::IoError("tell failed: " + path);
  std::rewind(f.get());
  std::vector<unsigned char> image(static_cast<size_t>(file_size));
  if (!image.empty() &&
      std::fread(image.data(), 1, image.size(), f.get()) != image.size()) {
    return Status::IoError("read failed: " + path);
  }

  // Header + trailer must fit before anything is interpreted.
  const size_t header_size = sizeof(kMagic) + 4 * sizeof(uint32_t);
  if (image.size() < header_size + sizeof(uint32_t)) {
    return Corrupt(path, "file shorter than header + CRC trailer");
  }
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a GTCP checkpoint: " + path);
  }
  const size_t body_size = image.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + body_size, sizeof(stored_crc));
  const uint32_t actual_crc = Crc32(image.data(), body_size);
  if (stored_crc != actual_crc) {
    return Corrupt(path, "CRC mismatch (file damaged or truncated)");
  }

  Reader r(image.data(), body_size);
  char magic[4];
  uint32_t version = 0;
  uint32_t num_tensors = 0;
  uint32_t num_ints = 0;
  uint32_t num_floats = 0;
  r.GetBytes(magic, sizeof(magic));
  if (!r.Get(&version) || version != kVersion) {
    return Status::IoError("unsupported checkpoint version in " + path);
  }
  if (!r.Get(&num_tensors) || !r.Get(&num_ints) || !r.Get(&num_floats)) {
    return Corrupt(path, "truncated section counts");
  }

  Checkpoint ckpt;
  ckpt.tensors.reserve(num_tensors);
  for (uint32_t i = 0; i < num_tensors; ++i) {
    std::string name;
    uint32_t rank = 0;
    if (!r.GetName(&name) || !r.Get(&rank) || rank > kMaxRank) {
      return Corrupt(path, "bad tensor record header");
    }
    tensor::Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!r.Get(&shape[d]) || shape[d] < 0) {
        return Corrupt(path, "bad tensor dims for '" + name + "'");
      }
    }
    const int64_t n = tensor::NumElements(shape);
    if (static_cast<size_t>(n) * sizeof(float) > r.remaining()) {
      return Corrupt(path, "truncated payload for '" + name + "'");
    }
    tensor::Tensor t = tensor::Tensor::Uninitialized(std::move(shape));
    if (!r.GetBytes(t.data(), static_cast<size_t>(n) * sizeof(float))) {
      return Corrupt(path, "truncated payload for '" + name + "'");
    }
    ckpt.tensors.emplace_back(std::move(name), std::move(t));
  }
  for (uint32_t i = 0; i < num_ints; ++i) {
    std::string name;
    int64_t v = 0;
    if (!r.GetName(&name) || !r.Get(&v)) {
      return Corrupt(path, "bad int record");
    }
    ckpt.ints.emplace_back(std::move(name), v);
  }
  for (uint32_t i = 0; i < num_floats; ++i) {
    std::string name;
    double v = 0.0;
    if (!r.GetName(&name) || !r.Get(&v)) {
      return Corrupt(path, "bad float record");
    }
    ckpt.floats.emplace_back(std::move(name), v);
  }
  if (r.remaining() != 0) {
    return Corrupt(path, "trailing bytes after last record");
  }
  return ckpt;
}

Status SaveStateDict(const nn::Module& module, const std::string& path) {
  Checkpoint ckpt;
  for (auto& [name, p] : module.NamedParameters()) {
    ckpt.tensors.emplace_back(name, p.value());
  }
  return WriteCheckpoint(path, ckpt);
}

Status ApplyStateDict(nn::Module& module, const Checkpoint& ckpt,
                      const LoadOptions& options, const std::string& prefix) {
  std::set<std::string> loaded;
  for (const auto& [full_name, t] : ckpt.tensors) {
    if (full_name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string name = full_name.substr(prefix.size());
    Status s = module.LoadNamedParameter(name, t);
    if (s.code() == StatusCode::kNotFound) {
      if (options.strict) {
        return Status::InvalidArgument(
            "state dict has unknown parameter '" + name +
            "' (strict mode; module has no such parameter)");
      }
      continue;
    }
    GEO_RETURN_NOT_OK(s);
    loaded.insert(name);
  }
  if (options.strict) {
    for (const auto& [name, p] : module.NamedParameters()) {
      if (loaded.count(name) == 0) {
        return Status::InvalidArgument(
            "state dict is missing parameter '" + name + "' (strict mode)");
      }
    }
  }
  return Status::OK();
}

Status LoadStateDict(nn::Module& module, const std::string& path,
                     const LoadOptions& options) {
  GEO_ASSIGN_OR_RETURN(Checkpoint ckpt, ReadCheckpoint(path));
  return ApplyStateDict(module, ckpt, options);
}

}  // namespace geotorch::io
