#include "io/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "core/check.h"
#include "io/crc32.h"
#include "tensor/quant.h"
#include "tensor/shape.h"

namespace geotorch::io {
namespace {

constexpr char kMagic[4] = {'G', 'T', 'C', 'P'};
// Version 2 added the quantized-tensor section; files without
// qtensors are still written as version 1 (identical bytes to the
// pre-quantization writer) and version-1 files parse forever.
constexpr uint32_t kVersion = 2;
// Sanity bounds: a record that claims more than this is corrupt, not
// merely large (the biggest real model here is ~1M parameters).
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 16;

// --- Little binary buffer helpers -------------------------------------------

class Writer {
 public:
  template <typename T>
  void Put(const T& v) {
    const size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(buf_.data() + at, &v, sizeof(T));
  }
  void PutBytes(const void* p, size_t n) {
    const size_t at = buf_.size();
    buf_.resize(at + n);
    if (n > 0) std::memcpy(buf_.data() + at, p, n);
  }
  void PutName(const std::string& name) {
    Put(static_cast<uint32_t>(name.size()));
    PutBytes(name.data(), name.size());
  }
  const std::vector<unsigned char>& buffer() const { return buf_; }

 private:
  std::vector<unsigned char> buf_;
};

// Bounds-checked cursor over the file image; every Get reports
// truncation via ok() instead of reading past the end.
class Reader {
 public:
  Reader(const unsigned char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Get(T* out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool GetBytes(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    if (n > 0) std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool GetName(std::string* out) {
    uint32_t len = 0;
    if (!Get(&len) || len > kMaxNameLen) return false;
    out->resize(len);
    return GetBytes(out->data(), len);
  }
  size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IoError("corrupt checkpoint " + path + ": " + what);
}

}  // namespace

int64_t QuantTensor::numel() const {
  int64_t n = 1;
  for (int64_t d : dims) n *= d;
  return n;
}

const tensor::Tensor* Checkpoint::FindTensor(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

const QuantTensor* Checkpoint::FindQuantTensor(const std::string& name) const {
  for (const auto& q : qtensors) {
    if (q.name == name) return &q;
  }
  return nullptr;
}

const int64_t* Checkpoint::FindInt(const std::string& name) const {
  for (const auto& [n, v] : ints) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* Checkpoint::FindFloat(const std::string& name) const {
  for (const auto& [n, v] : floats) {
    if (n == name) return &v;
  }
  return nullptr;
}

Status WriteCheckpoint(const std::string& path, const Checkpoint& ckpt) {
  Writer w;
  w.PutBytes(kMagic, sizeof(kMagic));
  // A checkpoint with no qtensors serializes as version 1 so f32-only
  // files stay byte-identical to the pre-quantization format.
  const uint32_t version = ckpt.qtensors.empty() ? 1u : kVersion;
  w.Put(version);
  w.Put(static_cast<uint32_t>(ckpt.tensors.size()));
  w.Put(static_cast<uint32_t>(ckpt.ints.size()));
  w.Put(static_cast<uint32_t>(ckpt.floats.size()));
  if (version >= 2) w.Put(static_cast<uint32_t>(ckpt.qtensors.size()));
  for (const auto& [name, t] : ckpt.tensors) {
    w.PutName(name);
    w.Put(static_cast<uint32_t>(t.ndim()));
    for (int64_t d : t.shape()) w.Put(d);
    w.PutBytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
  }
  for (const auto& q : ckpt.qtensors) {
    w.PutName(q.name);
    w.Put(static_cast<uint8_t>(q.kind));
    w.Put(static_cast<uint32_t>(q.dims.size()));
    for (int64_t d : q.dims) w.Put(d);
    w.Put(q.zero_point);
    w.Put(static_cast<uint32_t>(q.scales.size()));
    w.PutBytes(q.scales.data(), q.scales.size() * sizeof(float));
    w.PutBytes(q.data.data(), q.data.size());
  }
  for (const auto& [name, v] : ckpt.ints) {
    w.PutName(name);
    w.Put(v);
  }
  for (const auto& [name, v] : ckpt.floats) {
    w.PutName(name);
    w.Put(v);
  }
  const uint32_t crc = Crc32(w.buffer().data(), w.buffer().size());

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(w.buffer().data(), 1, w.buffer().size(), f.get()) !=
          w.buffer().size() ||
      std::fwrite(&crc, sizeof(crc), 1, f.get()) != 1) {
    return Status::IoError("write failed: " + path);
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("flush failed: " + path);
  }
  return Status::OK();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("seek failed: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::IoError("tell failed: " + path);
  std::rewind(f.get());
  std::vector<unsigned char> image(static_cast<size_t>(file_size));
  if (!image.empty() &&
      std::fread(image.data(), 1, image.size(), f.get()) != image.size()) {
    return Status::IoError("read failed: " + path);
  }

  // Header + trailer must fit before anything is interpreted.
  const size_t header_size = sizeof(kMagic) + 4 * sizeof(uint32_t);
  if (image.size() < header_size + sizeof(uint32_t)) {
    return Corrupt(path, "file shorter than header + CRC trailer");
  }
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a GTCP checkpoint: " + path);
  }
  const size_t body_size = image.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + body_size, sizeof(stored_crc));
  const uint32_t actual_crc = Crc32(image.data(), body_size);
  if (stored_crc != actual_crc) {
    return Corrupt(path, "CRC mismatch (file damaged or truncated)");
  }

  Reader r(image.data(), body_size);
  char magic[4];
  uint32_t version = 0;
  uint32_t num_tensors = 0;
  uint32_t num_ints = 0;
  uint32_t num_floats = 0;
  uint32_t num_qtensors = 0;
  r.GetBytes(magic, sizeof(magic));
  if (!r.Get(&version)) {
    return Corrupt(path, "truncated version field");
  }
  if (version > kVersion) {
    return Status::IoError("checkpoint version " + std::to_string(version) +
                           " in " + path + " is newer than this build's " +
                           std::to_string(kVersion) +
                           " (refusing to guess at the format)");
  }
  if (version < 1) {
    return Status::IoError("unsupported checkpoint version in " + path);
  }
  if (!r.Get(&num_tensors) || !r.Get(&num_ints) || !r.Get(&num_floats)) {
    return Corrupt(path, "truncated section counts");
  }
  if (version >= 2 && !r.Get(&num_qtensors)) {
    return Corrupt(path, "truncated section counts");
  }

  Checkpoint ckpt;
  ckpt.tensors.reserve(num_tensors);
  for (uint32_t i = 0; i < num_tensors; ++i) {
    std::string name;
    uint32_t rank = 0;
    if (!r.GetName(&name) || !r.Get(&rank) || rank > kMaxRank) {
      return Corrupt(path, "bad tensor record header");
    }
    tensor::Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!r.Get(&shape[d]) || shape[d] < 0) {
        return Corrupt(path, "bad tensor dims for '" + name + "'");
      }
    }
    const int64_t n = tensor::NumElements(shape);
    if (static_cast<size_t>(n) * sizeof(float) > r.remaining()) {
      return Corrupt(path, "truncated payload for '" + name + "'");
    }
    tensor::Tensor t = tensor::Tensor::Uninitialized(std::move(shape));
    if (!r.GetBytes(t.data(), static_cast<size_t>(n) * sizeof(float))) {
      return Corrupt(path, "truncated payload for '" + name + "'");
    }
    ckpt.tensors.emplace_back(std::move(name), std::move(t));
  }
  ckpt.qtensors.reserve(num_qtensors);
  for (uint32_t i = 0; i < num_qtensors; ++i) {
    QuantTensor q;
    uint8_t kind = 0;
    uint32_t rank = 0;
    if (!r.GetName(&q.name) || !r.Get(&kind) ||
        kind > static_cast<uint8_t>(QuantKind::kPerCol) || !r.Get(&rank) ||
        rank > kMaxRank) {
      return Corrupt(path, "bad quantized tensor record header");
    }
    q.kind = static_cast<QuantKind>(kind);
    q.dims.resize(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!r.Get(&q.dims[d]) || q.dims[d] < 0) {
        return Corrupt(path, "bad quantized dims for '" + q.name + "'");
      }
    }
    uint32_t nscales = 0;
    if (!r.Get(&q.zero_point) || !r.Get(&nscales)) {
      return Corrupt(path, "bad quantized scale header for '" + q.name + "'");
    }
    const int64_t n = q.numel();
    int64_t want_scales = 1;
    if (q.kind == QuantKind::kPerRow) {
      want_scales = q.dims.empty() ? 1 : q.dims.front();
    } else if (q.kind == QuantKind::kPerCol) {
      want_scales = q.dims.empty() ? 1 : q.dims.back();
    }
    if (nscales != static_cast<uint32_t>(want_scales)) {
      return Corrupt(path, "scale count does not match the quantization "
                           "kind for '" + q.name + "'");
    }
    if (static_cast<size_t>(nscales) * sizeof(float) +
            static_cast<size_t>(n) >
        r.remaining()) {
      return Corrupt(path, "truncated quantized payload for '" + q.name + "'");
    }
    q.scales.resize(nscales);
    q.data.resize(n);
    if (!r.GetBytes(q.scales.data(), nscales * sizeof(float)) ||
        !r.GetBytes(q.data.data(), n)) {
      return Corrupt(path, "truncated quantized payload for '" + q.name + "'");
    }
    ckpt.qtensors.push_back(std::move(q));
  }
  for (uint32_t i = 0; i < num_ints; ++i) {
    std::string name;
    int64_t v = 0;
    if (!r.GetName(&name) || !r.Get(&v)) {
      return Corrupt(path, "bad int record");
    }
    ckpt.ints.emplace_back(std::move(name), v);
  }
  for (uint32_t i = 0; i < num_floats; ++i) {
    std::string name;
    double v = 0.0;
    if (!r.GetName(&name) || !r.Get(&v)) {
      return Corrupt(path, "bad float record");
    }
    ckpt.floats.emplace_back(std::move(name), v);
  }
  if (r.remaining() != 0) {
    return Corrupt(path, "trailing bytes after last record");
  }
  return ckpt;
}

Status SaveStateDict(const nn::Module& module, const std::string& path) {
  Checkpoint ckpt;
  for (auto& [name, p] : module.NamedParameters()) {
    ckpt.tensors.emplace_back(name, p.value());
  }
  return WriteCheckpoint(path, ckpt);
}

QuantTensor QuantizeTensor(const std::string& name, const tensor::Tensor& t) {
  QuantTensor q;
  q.name = name;
  q.dims.assign(t.shape().begin(), t.shape().end());
  const int64_t n = t.numel();
  q.data.resize(n);
  if (t.ndim() == 2) {
    // Linear weights (in, out): per output column.
    q.kind = QuantKind::kPerCol;
    q.scales.resize(t.size(1));
    tensor::QuantizeColsInt8(t.data(), t.size(0), t.size(1), q.data.data(),
                             q.scales.data());
  } else if (t.ndim() >= 3) {
    // Conv-style weights (F, ...): per output filter row.
    q.kind = QuantKind::kPerRow;
    const int64_t rows = t.size(0);
    q.scales.resize(rows);
    tensor::QuantizeRowsInt8(t.data(), rows, rows > 0 ? n / rows : 0,
                             q.data.data(), q.scales.data());
  } else {
    q.kind = QuantKind::kPerTensor;
    q.scales.resize(1);
    q.scales[0] = tensor::SymmetricScale(tensor::AbsMax(t.data(), n));
    tensor::QuantizeInt8(t.data(), n, q.scales[0], q.data.data());
  }
  return q;
}

tensor::Tensor DequantizeTensor(const QuantTensor& q) {
  tensor::Shape shape(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) shape[i] = q.dims[i];
  tensor::Tensor t = tensor::Tensor::Uninitialized(std::move(shape));
  const int64_t n = q.numel();
  float* out = t.data();
  if (q.kind == QuantKind::kPerTensor) {
    const float s = q.scales[0];
    for (int64_t i = 0; i < n; ++i) out[i] = s * q.data[i];
  } else if (q.kind == QuantKind::kPerRow) {
    const int64_t rows = q.dims.front();
    const int64_t cols = rows > 0 ? n / rows : 0;
    for (int64_t r = 0; r < rows; ++r) {
      const float s = q.scales[r];
      for (int64_t c = 0; c < cols; ++c) {
        out[r * cols + c] = s * q.data[r * cols + c];
      }
    }
  } else {
    const int64_t cols = q.dims.back();
    const int64_t rows = cols > 0 ? n / cols : 0;
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        out[r * cols + c] = q.scales[c] * q.data[r * cols + c];
      }
    }
  }
  return t;
}

Status SaveQuantizedStateDict(const nn::Module& module,
                              const std::string& path) {
  Checkpoint ckpt;
  for (auto& [name, p] : module.NamedParameters()) {
    if (p.value().ndim() >= 2) {
      ckpt.qtensors.push_back(QuantizeTensor(name, p.value()));
    } else {
      ckpt.tensors.emplace_back(name, p.value());
    }
  }
  return WriteCheckpoint(path, ckpt);
}

Status ApplyStateDict(nn::Module& module, const Checkpoint& ckpt,
                      const LoadOptions& options, const std::string& prefix) {
  // Transactional: validate the WHOLE plan — every name resolution and
  // shape check, in both strict and permissive mode — before a single
  // parameter is written. A checkpoint that fails partway (unknown
  // name, shape mismatch, missing parameter) must leave the module
  // exactly as it was: the serving fleet's hot-reload contract is that
  // a failed load keeps the old model serving, and a half-applied
  // state dict would silently corrupt it. (The write pass below cannot
  // fail: everything LoadNamedParameter checks was checked here.)
  std::vector<std::pair<std::string, const tensor::Tensor*>> plan;
  std::vector<std::pair<std::string, const QuantTensor*>> qplan;
  std::set<std::string> loaded;
  const auto params = module.NamedParameters();
  auto find_param = [&params](const std::string& name)
      -> const autograd::Variable* {
    for (const auto& [pname, p] : params) {
      if (pname == name) return &p;
    }
    return nullptr;
  };
  auto check_one = [&](const std::string& name,
                       const tensor::Shape& shape) -> Result<bool> {
    const autograd::Variable* p = find_param(name);
    if (p == nullptr) {
      if (options.strict) {
        return Status::InvalidArgument(
            "state dict has unknown parameter '" + name +
            "' (strict mode; module has no such parameter)");
      }
      return false;  // permissive: skip
    }
    if (!tensor::SameShape(p->shape(), shape)) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + name + "': module has " +
          tensor::ShapeToString(p->shape()) + ", value has " +
          tensor::ShapeToString(shape));
    }
    return true;
  };

  for (const auto& [full_name, t] : ckpt.tensors) {
    if (full_name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string name = full_name.substr(prefix.size());
    GEO_ASSIGN_OR_RETURN(const bool apply, check_one(name, t.shape()));
    if (!apply) continue;
    plan.emplace_back(name, &t);
    loaded.insert(name);
  }
  for (const QuantTensor& q : ckpt.qtensors) {
    if (q.name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string name = q.name.substr(prefix.size());
    const tensor::Shape shape(q.dims.begin(), q.dims.end());
    GEO_ASSIGN_OR_RETURN(const bool apply, check_one(name, shape));
    if (!apply) continue;
    qplan.emplace_back(name, &q);
    loaded.insert(name);
  }
  if (options.strict) {
    for (const auto& [name, p] : params) {
      if (loaded.count(name) == 0) {
        return Status::InvalidArgument(
            "state dict is missing parameter '" + name + "' (strict mode)");
      }
    }
  }

  for (const auto& [name, t] : plan) {
    Status s = module.LoadNamedParameter(name, *t);
    GEO_CHECK(s.ok()) << "validated state-dict write failed: "
                      << s.ToString();
  }
  for (const auto& [name, q] : qplan) {
    Status s = module.LoadNamedParameter(name, DequantizeTensor(*q));
    GEO_CHECK(s.ok()) << "validated state-dict write failed: "
                      << s.ToString();
  }
  return Status::OK();
}

Status LoadStateDict(nn::Module& module, const std::string& path,
                     const LoadOptions& options) {
  GEO_ASSIGN_OR_RETURN(Checkpoint ckpt, ReadCheckpoint(path));
  return ApplyStateDict(module, ckpt, options);
}

}  // namespace geotorch::io
