#include "stream/options.h"

#include "core/env.h"

namespace geotorch::stream {

StreamOptions StreamOptions::FromEnv() {
  StreamOptions opts;
  opts.window_sec = EnvInt64("GEOTORCH_STREAM_WINDOW", opts.window_sec, 1);
  opts.slide_sec = EnvInt64("GEOTORCH_STREAM_SLIDE", opts.slide_sec, 0);
  opts.queue = EnvInt("GEOTORCH_STREAM_QUEUE", opts.queue, 1);
  opts.window_queue =
      EnvInt("GEOTORCH_STREAM_WINDOW_QUEUE", opts.window_queue, 1);
  opts.len_closeness =
      EnvInt("GEOTORCH_STREAM_CLOSENESS", opts.len_closeness, 1);
  opts.len_period = EnvInt("GEOTORCH_STREAM_PERIOD", opts.len_period, 0);
  opts.len_trend = EnvInt("GEOTORCH_STREAM_TREND", opts.len_trend, 0);
  opts.steps_per_day =
      EnvInt64("GEOTORCH_STREAM_STEPS_PER_DAY", opts.steps_per_day, 1);
  opts.predict_timeout_us =
      EnvInt64("GEOTORCH_STREAM_TIMEOUT_US", opts.predict_timeout_us, 0);
  opts.target_eps = EnvInt64("GEOTORCH_STREAM_RATE", opts.target_eps, 0);
  return opts;
}

}  // namespace geotorch::stream
