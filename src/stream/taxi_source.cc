#include "stream/taxi_source.h"

namespace geotorch::stream {

bool TaxiEventSource::NextTick(std::vector<Event>* out) {
  scratch_.clear();
  if (!stream_.NextTick(&scratch_)) return false;
  out->reserve(out->size() + scratch_.size());
  for (const synth::TripRecord& trip : scratch_) {
    Event e;
    e.lon = trip.lon;
    e.lat = trip.lat;
    e.time_sec = trip.time_sec;
    e.is_pickup = trip.is_pickup != 0;
    // ingest_ns is stamped by the pipeline producer at ring admission.
    out->push_back(e);
  }
  return true;
}

}  // namespace geotorch::stream
