#include "stream/pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/check.h"
#include "obs/obs.h"

namespace geotorch::stream {

Pipeline::Pipeline(EventSource* source, serve::Fleet* fleet,
                   spatial::GridPartitioner grid, std::string model,
                   StreamOptions options)
    : source_(source),
      fleet_(fleet),
      model_(std::move(model)),
      options_(options) {
  GEO_CHECK(source_ != nullptr);
  GEO_CHECK(fleet_ != nullptr);
  event_ring_ = std::make_unique<BoundedRing<Event>>(
      static_cast<size_t>(options_.queue));
  window_ring_ = std::make_unique<BoundedRing<ClosedWindow>>(
      static_cast<size_t>(options_.window_queue));

  WindowAggregator::Options agg_opts;
  agg_opts.window_sec = options_.window_sec;
  agg_opts.slide_sec = options_.EffectiveSlide();
  aggregator_ =
      std::make_unique<WindowAggregator>(std::move(grid), agg_opts);

  OnlinePredictor::Options pred_opts;
  pred_opts.model = model_;
  pred_opts.len_closeness = options_.len_closeness;
  pred_opts.len_period = options_.len_period;
  pred_opts.len_trend = options_.len_trend;
  pred_opts.steps_per_day = options_.steps_per_day;
  pred_opts.deadline_us = options_.predict_timeout_us;
  predictor_ = std::make_unique<OnlinePredictor>(fleet_, pred_opts);
}

Pipeline::~Pipeline() { Stop(); }

void Pipeline::Start() {
  GEO_CHECK(!started_.exchange(true)) << "Start called twice";
  producer_ = std::thread([this] { ProducerLoop(); });
  agg_thread_ = std::thread([this] { AggregatorLoop(); });
  predict_thread_ = std::thread([this] { PredictorLoop(); });
}

void Pipeline::ProducerLoop() {
  GEO_OBS_SPAN(ingest_span, "stream.ingest");
  const int64_t start_ns = obs::NowNs();
  std::vector<Event> tick;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    tick.clear();
    if (!source_->NextTick(&tick)) {
      source_done_.store(true, std::memory_order_release);
      break;
    }
    // One wall-clock stamp per tick: the staleness metric's resolution
    // is the window span, so per-event stamps would be pure overhead.
    const int64_t ingest_ns = obs::NowNs();
    bool closed = false;
    for (Event& e : tick) {
      e.ingest_ns = ingest_ns;
      if (!event_ring_->Push(std::move(e))) {
        closed = true;  // Stop() closed the ring mid-tick
        break;
      }
      events_ingested_.fetch_add(1, std::memory_order_relaxed);
    }
    if (closed) break;
    obs::SetGauge("stream.queue_depth",
                  static_cast<int64_t>(event_ring_->size()));
    if (options_.target_eps > 0) {
      // Pace admitted events to target_eps wall-clock, sleeping in
      // short slices so Stop stays responsive.
      const int64_t due_ns =
          start_ns + events_ingested_.load(std::memory_order_relaxed) *
                         1000000000 / options_.target_eps;
      while (!stop_requested_.load(std::memory_order_acquire)) {
        const int64_t wait_ns = due_ns - obs::NowNs();
        if (wait_ns <= 0) break;
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min<int64_t>(wait_ns, 5000000)));
      }
    }
  }
  event_ring_->Close();
}

void Pipeline::AggregatorLoop() {
  Event event;
  std::vector<ClosedWindow> closed;
  while (event_ring_->Pop(&event)) {
    {
      GEO_OBS_SPAN(agg_span, "stream.aggregate");
      closed.clear();
      aggregator_->Add(event, &closed);
    }
    events_processed_.fetch_add(1, std::memory_order_relaxed);
    for (ClosedWindow& w : closed) {
      window_ring_->Push(std::move(w));
      obs::SetGauge("stream.window_queue_depth",
                    static_cast<int64_t>(window_ring_->size()));
    }
  }
  // Event ring drained: seal the tail as a final partial window so no
  // admitted event is unrepresented downstream.
  closed.clear();
  aggregator_->Flush(&closed);
  for (ClosedWindow& w : closed) window_ring_->Push(std::move(w));
  window_ring_->Close();
}

void Pipeline::PredictorLoop() {
  ClosedWindow window;
  while (window_ring_->Pop(&window)) {
    predictor_->Predict(window);  // failures counted inside
  }
  if (source_done_.load(std::memory_order_acquire)) {
    finished_.store(true, std::memory_order_release);
  }
}

void Pipeline::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) {
    // A second caller (e.g. the destructor after an explicit Stop)
    // still needs the joins below to have finished; the first call
    // joined everything before returning, so nothing remains.
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  // Unblocks a producer stalled in backpressure; already-admitted
  // events stay poppable (Close refuses pushes, not pops).
  event_ring_->Close();
  if (producer_.joinable()) producer_.join();
  if (agg_thread_.joinable()) agg_thread_.join();
  if (predict_thread_.joinable()) predict_thread_.join();
}

bool Pipeline::Finished() const {
  return finished_.load(std::memory_order_acquire);
}

bool Pipeline::WaitFinished(int64_t timeout_ms) const {
  const int64_t deadline_ns = obs::NowNs() + timeout_ms * 1000000;
  while (!Finished() && obs::NowNs() < deadline_ns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Finished();
}

PipelineStats Pipeline::stats() const {
  PipelineStats s;
  s.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  s.events_processed = events_processed_.load(std::memory_order_relaxed);
  s.late_events = aggregator_->late_events();
  s.dropped_outside = aggregator_->dropped_outside();
  s.windows_closed = aggregator_->windows_closed();
  s.predictions_ok = predictor_->predictions_ok();
  s.predictions_failed = predictor_->predictions_failed();
  s.index_rebuilds = aggregator_->index_rebuilds();
  s.active_cells = aggregator_->active_cells();
  s.queue_depth = static_cast<int64_t>(event_ring_->size());
  s.window_queue_depth = static_cast<int64_t>(window_ring_->size());
  return s;
}

}  // namespace geotorch::stream
