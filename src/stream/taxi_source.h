#ifndef GEOTORCH_STREAM_TAXI_SOURCE_H_
#define GEOTORCH_STREAM_TAXI_SOURCE_H_

#include <vector>

#include "stream/event.h"
#include "synth/taxi.h"

namespace geotorch::stream {

/// Adapts synth::TaxiEventStream to the pipeline's EventSource
/// contract. Lives in its own TU so the stream stages themselves stay
/// free of the synth dependency (the TSan harness compiles the stage
/// sources directly and substitutes its own inline source).
class TaxiEventSource : public EventSource {
 public:
  explicit TaxiEventSource(const synth::TaxiStreamConfig& config)
      : stream_(config) {}

  bool NextTick(std::vector<Event>* out) override;

  const synth::TaxiEventStream& stream() const { return stream_; }

 private:
  synth::TaxiEventStream stream_;
  std::vector<synth::TripRecord> scratch_;
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_TAXI_SOURCE_H_
