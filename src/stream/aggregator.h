#ifndef GEOTORCH_STREAM_AGGREGATOR_H_
#define GEOTORCH_STREAM_AGGREGATOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "spatial/grid.h"
#include "spatial/strtree.h"
#include "stream/event.h"
#include "tensor/tensor.h"

namespace geotorch::stream {

/// One closed aggregation window, ready for prediction (DESIGN.md §14).
/// `frame` is (kChannels, H, W): channel 0 = event count per cell,
/// channel 1 = pickup count per cell — float images of exact integer
/// accumulators, which is what makes the incremental path bitwise-equal
/// to a batch StManager rebuild.
struct ClosedWindow {
  int64_t window_id = 0;  ///< slide-bucket index of the newest bucket
  int64_t start_sec = 0;  ///< window coverage [start_sec, end_sec)
  int64_t end_sec = 0;
  tensor::Tensor frame;
  int64_t events = 0;          ///< events aggregated into the frame
  int64_t last_ingest_ns = 0;  ///< newest ingest stamp in the window (0
                               ///< for an empty window)
  int64_t close_ns = 0;        ///< wall clock at close
  bool partial = false;        ///< closed by Flush before its span elapsed
};

/// Maintains the spatiotemporal grid INCREMENTALLY over an ordered
/// event stream: per-cell integer deltas applied on event arrival, a
/// ring of per-slide buckets, and a window emission at every bucket
/// close summing the last window/slide buckets in fixed ascending
/// order. Because every accumulator is an integer (exact in both int64
/// and float/double arithmetic), the emitted frames are bitwise
/// identical to a from-scratch batch rebuild via
/// prep::STManager::GetStGridDataFrame/GetStGridTensor with
/// step_duration == slide and aggs {count, sum(is_pickup)} — gated in
/// prep_test/stream_test.
///
/// Window clock semantics: bucket b covers dataset time
/// [b*slide, (b+1)*slide). An event in bucket b > current closes every
/// bucket in (current, b) first — one ClosedWindow per slide, INCLUDING
/// empty ones (a quiet grid is a forecastable state, and skipping them
/// would desynchronize the closeness stack). Events are ordered across
/// source ticks but not within one; any intra-tick order yields the
/// same frames since integer accumulation commutes. An event older
/// than the current bucket (contract violation) is counted and dropped,
/// never applied to an already-closed window.
///
/// Incremental spatial indexing: the point→cell assignment on the hot
/// path is the O(1) uniform-grid hash (spatial::GridPartitioner::
/// CellOf — the same fast path the batch join engine uses). On top of
/// that the aggregator keeps an epoch-based STR-tree over the ACTIVE
/// cells (nonzero count in the current window): each window close is an
/// epoch boundary, and the tree is rebuilt — reusing
/// StrTree::BuildOptions — only when the active-cell set actually
/// changed since the previous epoch. Consumers query it for "where is
/// the load right now" without scanning the grid.
///
/// Threading: Add/Flush run on the aggregator stage's thread only;
/// HotCellIndex()/counters may be read from any thread.
class WindowAggregator {
 public:
  struct Options {
    int64_t window_sec = 1800;
    int64_t slide_sec = 1800;  ///< must divide window_sec
    /// Build options for the epoch STR-tree rebuilds.
    spatial::StrTree::BuildOptions index_build;
  };

  static constexpr int64_t kChannels = 2;

  WindowAggregator(spatial::GridPartitioner grid, Options options);

  /// Feeds one event; appends every window the event's timestamp
  /// closes (possibly several, possibly none) to `closed`.
  void Add(const Event& event, std::vector<ClosedWindow>* closed);

  /// Drain: closes the in-progress bucket as a final, `partial` window
  /// iff it has absorbed at least one event. Idempotent between events.
  void Flush(std::vector<ClosedWindow>* closed);

  /// Snapshot of the active-cell STR-tree after the newest epoch;
  /// nullptr before the first window close. Entry ids are cell ids.
  std::shared_ptr<const spatial::StrTree> HotCellIndex() const;

  const spatial::GridPartitioner& grid() const { return grid_; }
  const Options& options() const { return options_; }
  int64_t events() const { return events_.load(std::memory_order_relaxed); }
  int64_t dropped_outside() const {
    return dropped_outside_.load(std::memory_order_relaxed);
  }
  int64_t late_events() const {
    return late_events_.load(std::memory_order_relaxed);
  }
  int64_t windows_closed() const {
    return windows_closed_.load(std::memory_order_relaxed);
  }
  int64_t index_rebuilds() const {
    return index_rebuilds_.load(std::memory_order_relaxed);
  }
  /// Active cells in the newest closed window.
  int64_t active_cells() const {
    return active_cells_.load(std::memory_order_relaxed);
  }

 private:
  struct Bucket {
    std::vector<int64_t> counts;   ///< per-cell events
    std::vector<int64_t> pickups;  ///< per-cell pickups
    int64_t events = 0;
    int64_t last_ingest_ns = 0;
  };

  /// Seals the current bucket, emits the window ending at its boundary,
  /// advances the epoch index, and resets the accumulator.
  void CloseBucket(bool partial, std::vector<ClosedWindow>* closed);
  void RebuildIndexIfChanged(const std::vector<int64_t>& window_counts);

  spatial::GridPartitioner grid_;
  Options options_;
  int64_t num_cells_ = 0;
  int64_t buckets_per_window_ = 1;

  Bucket current_;
  int64_t current_bucket_ = 0;
  bool current_dirty_ = false;    ///< events since the last close
  std::deque<Bucket> history_;    ///< last closed buckets, oldest first

  std::vector<int64_t> last_active_;  ///< active cells of the last epoch
  mutable std::mutex index_mu_;
  std::shared_ptr<const spatial::StrTree> index_;

  // Written by the aggregator thread, polled by stats readers.
  std::atomic<int64_t> events_{0};
  std::atomic<int64_t> dropped_outside_{0};
  std::atomic<int64_t> late_events_{0};
  std::atomic<int64_t> windows_closed_{0};
  std::atomic<int64_t> index_rebuilds_{0};
  std::atomic<int64_t> active_cells_{0};
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_AGGREGATOR_H_
