#ifndef GEOTORCH_STREAM_PREDICTOR_H_
#define GEOTORCH_STREAM_PREDICTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "serve/fleet.h"
#include "stream/aggregator.h"
#include "tensor/tensor.h"

namespace geotorch::stream {

/// Online prediction stage (DESIGN.md §14): consumes ClosedWindows in
/// window_id order, maintains just enough frame history to assemble the
/// periodical representation the grid models train on (closeness /
/// period / trend stacks, mirroring datasets::GridDataset::FrameStack —
/// oldest frame first, frames t-k*stride for k=len..1 where t is the
/// NEXT frame index), and submits each assembled sample to a
/// serve::Fleet.
///
/// Frames the history does not hold yet (stream warm-up, or a period /
/// trend lookback past the start of time) are ZERO frames, so every
/// closed window produces exactly one Submit — that one-to-one mapping
/// is what makes the pipeline's lossless-drain accounting (windows
/// closed == predictions attempted) checkable.
///
/// Event-to-prediction staleness is measured per window when the Submit
/// resolves: wall clock now minus the window's newest ingest stamp
/// (close time for an empty window). Recorded into the
/// `stream.staleness_us` histogram and kept as raw samples for exact
/// bench percentiles.
///
/// Threading: Predict runs on the predictor stage's thread only;
/// counters and StalenessSamplesUs may be read from any thread.
class OnlinePredictor {
 public:
  struct Options {
    std::string model;           ///< fleet model name to submit to
    std::string tenant = "stream";
    int len_closeness = 3;
    int len_period = 0;          ///< 0 disables the period input
    int len_trend = 0;           ///< 0 disables the trend input
    int64_t steps_per_day = 48;  ///< period stride, in window slides
    /// Per-request deadline for Fleet::Submit; 0 waits forever. A
    /// bounded deadline caps staleness even when a batcher stalls.
    int64_t deadline_us = 0;
  };

  OnlinePredictor(serve::Fleet* fleet, Options options);

  /// Feeds one closed window (must arrive in window_id order), submits
  /// the assembled sample, and records staleness. Returns the Submit
  /// status; failures are counted, not fatal — the frame history still
  /// advances so one rejected request cannot skew every later stack.
  Status Predict(const ClosedWindow& window);

  /// The sample Predict would submit AFTER absorbing `window` — the
  /// input for forecasting frame window_id + 1. Exposed so tests can
  /// pin the stacking layout without a fleet.
  data::Sample AssembleAfter(const ClosedWindow& window);

  int64_t predictions_ok() const {
    return predictions_ok_.load(std::memory_order_relaxed);
  }
  int64_t predictions_failed() const {
    return predictions_failed_.load(std::memory_order_relaxed);
  }
  /// Raw per-window staleness samples, in microseconds.
  std::vector<int64_t> StalenessSamplesUs() const;

  const Options& options() const { return options_; }

 private:
  /// Appends the window's frame and trims history to the deepest
  /// lookback any stack needs.
  void Absorb(const ClosedWindow& window);
  /// Frame at absolute window index `id`; zeros outside the history.
  const tensor::Tensor* FrameAt(int64_t id) const;
  /// (len*C, H, W) stack of frames next-k*stride for k=len..1.
  tensor::Tensor Stack(int64_t next, int64_t len, int64_t stride) const;

  serve::Fleet* fleet_;
  Options options_;
  int64_t max_lookback_ = 1;

  int64_t height_ = 0;  ///< learned from the first frame
  int64_t width_ = 0;
  std::deque<tensor::Tensor> frames_;  ///< history, oldest first
  int64_t base_id_ = 0;                ///< window_id of frames_.front()

  std::atomic<int64_t> predictions_ok_{0};
  std::atomic<int64_t> predictions_failed_{0};
  mutable std::mutex staleness_mu_;
  std::vector<int64_t> staleness_us_;
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_PREDICTOR_H_
