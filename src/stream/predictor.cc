#include "stream/predictor.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/check.h"
#include "obs/obs.h"

namespace geotorch::stream {

namespace ts = ::geotorch::tensor;

OnlinePredictor::OnlinePredictor(serve::Fleet* fleet, Options options)
    : fleet_(fleet), options_(std::move(options)) {
  GEO_CHECK(fleet_ != nullptr);
  GEO_CHECK_GE(options_.len_closeness, 1);
  GEO_CHECK_GE(options_.len_period, 0);
  GEO_CHECK_GE(options_.len_trend, 0);
  GEO_CHECK_GE(options_.steps_per_day, 1);
  max_lookback_ = options_.len_closeness;
  if (options_.len_period > 0) {
    max_lookback_ = std::max<int64_t>(
        max_lookback_, options_.len_period * options_.steps_per_day);
  }
  if (options_.len_trend > 0) {
    max_lookback_ = std::max<int64_t>(
        max_lookback_, options_.len_trend * 7 * options_.steps_per_day);
  }
}

void OnlinePredictor::Absorb(const ClosedWindow& window) {
  GEO_CHECK_EQ(window.frame.ndim(), 3);
  GEO_CHECK_EQ(window.frame.shape()[0], WindowAggregator::kChannels);
  if (frames_.empty()) {
    height_ = window.frame.shape()[1];
    width_ = window.frame.shape()[2];
    base_id_ = window.window_id;
  } else {
    GEO_CHECK_EQ(window.window_id,
                 base_id_ + static_cast<int64_t>(frames_.size()))
        << "windows must arrive in order";
  }
  frames_.push_back(window.frame);
  while (static_cast<int64_t>(frames_.size()) > max_lookback_) {
    frames_.pop_front();
    ++base_id_;
  }
}

const ts::Tensor* OnlinePredictor::FrameAt(int64_t id) const {
  if (id < base_id_ ||
      id >= base_id_ + static_cast<int64_t>(frames_.size())) {
    return nullptr;
  }
  return &frames_[id - base_id_];
}

ts::Tensor OnlinePredictor::Stack(int64_t next, int64_t len,
                                  int64_t stride) const {
  // Mirrors GridDataset::FrameStack: frames next - k*stride for
  // k = len..1, oldest first, stacked along channels. Missing history
  // is zero — Tensor::Zeros covers the gaps, and the memcpy below
  // (rather than tensor/ops Concat) keeps the stream TU buildable in
  // the minimal-source TSan rebuild.
  const int64_t c = WindowAggregator::kChannels;
  const int64_t frame_elems = c * height_ * width_;
  ts::Tensor out = ts::Tensor::Zeros({len * c, height_, width_});
  float* dst = out.data();
  for (int64_t k = len; k >= 1; --k) {
    const ts::Tensor* frame = FrameAt(next - k * stride);
    if (frame != nullptr) {
      std::memcpy(dst, frame->data(), frame_elems * sizeof(float));
    }
    dst += frame_elems;
  }
  return out;
}

data::Sample OnlinePredictor::AssembleAfter(const ClosedWindow& window) {
  Absorb(window);
  const int64_t next = window.window_id + 1;
  data::Sample sample;
  sample.x = Stack(next, options_.len_closeness, 1);
  if (options_.len_period > 0) {
    sample.extras.push_back(
        Stack(next, options_.len_period, options_.steps_per_day));
  }
  if (options_.len_trend > 0) {
    sample.extras.push_back(
        Stack(next, options_.len_trend, 7 * options_.steps_per_day));
  }
  return sample;
}

Status OnlinePredictor::Predict(const ClosedWindow& window) {
  GEO_OBS_SPAN(predict_span, "stream.predict");
  const data::Sample sample = AssembleAfter(window);
  auto result = fleet_->Submit(options_.model, options_.tenant, sample,
                               options_.deadline_us);

  // Staleness of the answer relative to the newest event it covers;
  // an empty window is as fresh as its close.
  const int64_t anchor_ns =
      window.last_ingest_ns > 0 ? window.last_ingest_ns : window.close_ns;
  const int64_t staleness_us = (obs::NowNs() - anchor_ns) / 1000;
  GEO_OBS_HIST("stream.staleness_us", staleness_us);
  {
    std::lock_guard<std::mutex> lock(staleness_mu_);
    staleness_us_.push_back(staleness_us);
  }

  if (result.ok()) {
    predictions_ok_.fetch_add(1, std::memory_order_relaxed);
    GEO_OBS_COUNT("stream.predictions", 1);
    return Status::OK();
  }
  predictions_failed_.fetch_add(1, std::memory_order_relaxed);
  GEO_OBS_COUNT("stream.prediction_failures", 1);
  return result.status();
}

std::vector<int64_t> OnlinePredictor::StalenessSamplesUs() const {
  std::lock_guard<std::mutex> lock(staleness_mu_);
  return staleness_us_;
}

}  // namespace geotorch::stream
