#ifndef GEOTORCH_STREAM_RING_H_
#define GEOTORCH_STREAM_RING_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "core/check.h"

namespace geotorch::stream {

/// Bounded MPSC/SPSC handoff queue between pipeline stages — the
/// backpressure primitive of DESIGN.md §14. Push blocks while the ring
/// is full (producers slow to the consumer's pace instead of growing an
/// unbounded buffer); Pop blocks while it is empty. Close() starts the
/// drain: pushes are refused from then on, pops keep succeeding until
/// the buffered items are gone, and only then does Pop return false.
/// That ordering is what makes a pipeline drain lossless — every item
/// admitted before Close is consumed.
///
/// A mutex + two condvars rather than a lock-free ring on purpose: the
/// consumers do tensor-sized work per item, so the handoff is never the
/// bottleneck, and the blocking semantics (backpressure, drain) are the
/// actual product here.
template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(size_t capacity) : capacity_(capacity) {
    GEO_CHECK_GE(capacity, 1u);
  }
  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Blocks until there is room (backpressure) or the ring is closed;
  /// false means closed-and-refused (the item was NOT enqueued).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed. Lets producers count
  /// would-block events instead of stalling.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the ring is closed AND empty;
  /// false only in the latter case (drain complete).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Refuses further pushes; buffered items remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_RING_H_
