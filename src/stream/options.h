#ifndef GEOTORCH_STREAM_OPTIONS_H_
#define GEOTORCH_STREAM_OPTIONS_H_

#include <cstdint>

namespace geotorch::stream {

/// Knobs of the streaming spatiotemporal pipeline (DESIGN.md §14).
/// FromEnv() reads the GEOTORCH_STREAM_* family through the shared
/// core/env.h helpers, following the serve/fleet conventions:
///
///   GEOTORCH_STREAM_WINDOW       aggregation window in dataset seconds:
///                                each emitted frame covers the last
///                                WINDOW seconds of events (default 1800,
///                                the paper's 30-minute slot)
///   GEOTORCH_STREAM_SLIDE        seconds between window closes; 0 (the
///                                default) means == WINDOW, i.e. tumbling
///                                windows. Must divide WINDOW
///   GEOTORCH_STREAM_QUEUE        event-ring capacity between producer
///                                and aggregator; a full ring blocks the
///                                producer (backpressure), it never grows
///                                (default 8192)
///   GEOTORCH_STREAM_WINDOW_QUEUE closed-window queue capacity between
///                                aggregator and predictor (default 64)
///   GEOTORCH_STREAM_CLOSENESS    frames in the closeness stack the
///                                online predictor submits (default 3)
///   GEOTORCH_STREAM_PERIOD       frames in the period stack; 0 disables
///                                the period input (default 0)
///   GEOTORCH_STREAM_TREND        frames in the trend stack; 0 disables
///                                the trend input (default 0)
///   GEOTORCH_STREAM_STEPS_PER_DAY window slides per day, the period
///                                stride (default 48 = 30-minute slides)
///   GEOTORCH_STREAM_TIMEOUT_US   per-prediction deadline handed to
///                                Fleet::Submit; 0 waits forever
///                                (default 0). Setting it bounds
///                                event-to-prediction staleness even if
///                                a batcher stalls
///   GEOTORCH_STREAM_RATE         producer pacing in events per
///                                wall-clock second; 0 runs unthrottled
///                                (default 0). The staleness-vs-
///                                throughput ablation sweeps this
struct StreamOptions {
  int64_t window_sec = 1800;
  int64_t slide_sec = 0;  ///< 0 = window_sec (tumbling)
  int queue = 8192;
  int window_queue = 64;
  int len_closeness = 3;
  int len_period = 0;
  int len_trend = 0;
  int64_t steps_per_day = 48;
  int64_t predict_timeout_us = 0;
  int64_t target_eps = 0;

  /// Effective slide (resolves the 0 default).
  int64_t EffectiveSlide() const {
    return slide_sec > 0 ? slide_sec : window_sec;
  }

  /// Defaults overridden by any GEOTORCH_STREAM_* variables present,
  /// range-validated by clamping (window/slide >= 1s where set, queues
  /// >= 1, stack lengths >= 0).
  static StreamOptions FromEnv();
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_OPTIONS_H_
