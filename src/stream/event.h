#ifndef GEOTORCH_STREAM_EVENT_H_
#define GEOTORCH_STREAM_EVENT_H_

#include <cstdint>
#include <vector>

namespace geotorch::stream {

/// One spatiotemporal event on the streaming pipeline's wire format
/// (DESIGN.md §14). `time_sec` is dataset time (the window clock);
/// `ingest_ns` is the wall-clock stamp the producer applies at ring
/// admission, which is what event-to-prediction staleness is measured
/// against.
struct Event {
  double lon = 0.0;
  double lat = 0.0;
  int64_t time_sec = 0;
  bool is_pickup = false;
  int64_t ingest_ns = 0;
};

/// Pull-driven source of ordered event ticks. Contract: event times
/// never decrease ACROSS ticks; within one tick they may be in any
/// order. NextTick appends (never clears) and returns false — appending
/// nothing — once the source is exhausted. Called from the pipeline's
/// producer thread only.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual bool NextTick(std::vector<Event>* out) = 0;
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_EVENT_H_
