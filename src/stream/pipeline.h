#ifndef GEOTORCH_STREAM_PIPELINE_H_
#define GEOTORCH_STREAM_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/fleet.h"
#include "spatial/grid.h"
#include "stream/aggregator.h"
#include "stream/event.h"
#include "stream/options.h"
#include "stream/predictor.h"
#include "stream/ring.h"

namespace geotorch::stream {

/// Point-in-time pipeline counters; every field is a monotonic total.
struct PipelineStats {
  int64_t events_ingested = 0;   ///< events admitted to the event ring
  int64_t events_processed = 0;  ///< events the aggregator consumed
  int64_t late_events = 0;
  int64_t dropped_outside = 0;
  int64_t windows_closed = 0;
  int64_t predictions_ok = 0;
  int64_t predictions_failed = 0;
  int64_t index_rebuilds = 0;
  int64_t active_cells = 0;
  int64_t queue_depth = 0;        ///< event ring occupancy right now
  int64_t window_queue_depth = 0;
};

/// The streaming spatiotemporal pipeline (DESIGN.md §14): three
/// pull-driven stages over two bounded rings,
///
///   EventSource → [event ring] → WindowAggregator → [window ring]
///                                                 → OnlinePredictor
///
/// each on its own thread. Backpressure is structural: a full ring
/// blocks the upstream stage, so a slow predictor throttles the
/// aggregator and a slow aggregator throttles ingest — memory stays
/// bounded at queue + window_queue items no matter the event rate.
///
/// Shutdown/drain ordering (what makes the drain lossless): Stop —
/// or source exhaustion — stops the producer, which closes the event
/// ring; the aggregator pops until the ring reports closed-and-empty,
/// flushes the final partial window, and closes the window ring; the
/// predictor pops until that ring drains. Each stage therefore
/// processes everything admitted upstream before exiting, and
/// windows_closed == predictions_ok + predictions_failed holds after
/// Stop returns.
///
/// Producer pacing: options.target_eps > 0 sleeps the producer so
/// admitted events per wall-clock second stay at the target — the knob
/// the staleness-vs-throughput ablation sweeps. 0 runs unthrottled
/// (backpressure is then the only brake).
class Pipeline {
 public:
  /// `source`, `fleet` must outlive the pipeline. `model` names a
  /// fleet model whose SampleSpec matches the predictor's stacks.
  Pipeline(EventSource* source, serve::Fleet* fleet,
           spatial::GridPartitioner grid, std::string model,
           StreamOptions options = StreamOptions::FromEnv());
  ~Pipeline();  ///< implies Stop()
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Launches the three stage threads. Call once.
  void Start();

  /// Requests producer stop, then joins the stages in pipeline order,
  /// draining both rings (see class comment). Idempotent; also invoked
  /// by the destructor. Blocks until the last prediction resolved.
  void Stop();

  /// True once the source is exhausted and every stage has drained.
  bool Finished() const;

  /// Blocks until Finished() (source end) or `timeout_ms` elapsed;
  /// returns Finished(). Does not stop a still-running pipeline.
  bool WaitFinished(int64_t timeout_ms) const;

  PipelineStats stats() const;
  const WindowAggregator& aggregator() const { return *aggregator_; }
  const OnlinePredictor& predictor() const { return *predictor_; }
  const StreamOptions& options() const { return options_; }

 private:
  void ProducerLoop();
  void AggregatorLoop();
  void PredictorLoop();

  EventSource* source_;
  serve::Fleet* fleet_;
  std::string model_;
  StreamOptions options_;

  std::unique_ptr<BoundedRing<Event>> event_ring_;
  std::unique_ptr<BoundedRing<ClosedWindow>> window_ring_;
  std::unique_ptr<WindowAggregator> aggregator_;
  std::unique_ptr<OnlinePredictor> predictor_;

  std::thread producer_;
  std::thread agg_thread_;
  std::thread predict_thread_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> source_done_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int64_t> events_ingested_{0};
  std::atomic<int64_t> events_processed_{0};
};

}  // namespace geotorch::stream

#endif  // GEOTORCH_STREAM_PIPELINE_H_
