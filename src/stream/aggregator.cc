#include "stream/aggregator.h"

#include <algorithm>
#include <utility>

#include "core/check.h"
#include "obs/obs.h"
#include "spatial/geometry.h"

namespace geotorch::stream {

namespace ts = ::geotorch::tensor;

WindowAggregator::WindowAggregator(spatial::GridPartitioner grid,
                                   Options options)
    : grid_(std::move(grid)), options_(options) {
  GEO_CHECK_GT(options_.window_sec, 0);
  GEO_CHECK_GT(options_.slide_sec, 0);
  GEO_CHECK(options_.window_sec % options_.slide_sec == 0)
      << "slide " << options_.slide_sec << " must divide window "
      << options_.window_sec;
  num_cells_ = grid_.NumCells();
  buckets_per_window_ = options_.window_sec / options_.slide_sec;
  current_.counts.assign(num_cells_, 0);
  current_.pickups.assign(num_cells_, 0);
}

void WindowAggregator::Add(const Event& event,
                           std::vector<ClosedWindow>* closed) {
  const int64_t bucket = event.time_sec / options_.slide_sec;
  if (event.time_sec < 0 || bucket < current_bucket_) {
    // Behind an already-sealed window: applying it would silently
    // diverge from the batch rebuild, so count and drop instead.
    late_events_.fetch_add(1, std::memory_order_relaxed);
    GEO_OBS_COUNT("stream.late_events", 1);
    return;
  }
  // Time advances close intervening buckets first — one window per
  // slide, empty ones included, so the frame history downstream stays
  // an unbroken time series.
  while (bucket > current_bucket_) CloseBucket(/*partial=*/false, closed);

  events_.fetch_add(1, std::memory_order_relaxed);
  GEO_OBS_COUNT("stream.events", 1);
  current_.last_ingest_ns =
      std::max(current_.last_ingest_ns, event.ingest_ns);
  current_dirty_ = true;
  const auto cell = grid_.CellOf(spatial::Point{event.lon, event.lat});
  if (!cell.has_value()) {
    // Outside the extent — exactly the rows the batch path's
    // cell_id >= 0 filter drops.
    dropped_outside_.fetch_add(1, std::memory_order_relaxed);
    GEO_OBS_COUNT("stream.dropped_outside", 1);
    return;
  }
  ++current_.events;
  ++current_.counts[*cell];
  if (event.is_pickup) ++current_.pickups[*cell];
}

void WindowAggregator::Flush(std::vector<ClosedWindow>* closed) {
  if (!current_dirty_) return;
  CloseBucket(/*partial=*/true, closed);
}

void WindowAggregator::CloseBucket(bool partial,
                                   std::vector<ClosedWindow>* closed) {
  GEO_OBS_SPAN(close_span, "stream.window_close");

  history_.push_back(std::move(current_));
  if (static_cast<int64_t>(history_.size()) > buckets_per_window_) {
    history_.pop_front();
  }
  current_ = Bucket{};
  current_.counts.assign(num_cells_, 0);
  current_.pickups.assign(num_cells_, 0);
  current_dirty_ = false;

  // Window frame = sum of the retained buckets in ascending bucket
  // order. All values are integers, so this sum — and therefore the
  // float frame — is independent of arrival order and bitwise equal to
  // any other grouping of the same events.
  std::vector<int64_t> counts(num_cells_, 0);
  std::vector<int64_t> pickups(num_cells_, 0);
  int64_t window_events = 0;
  int64_t last_ingest_ns = 0;
  for (const Bucket& b : history_) {
    for (int64_t c = 0; c < num_cells_; ++c) {
      counts[c] += b.counts[c];
      pickups[c] += b.pickups[c];
    }
    window_events += b.events;
    last_ingest_ns = std::max(last_ingest_ns, b.last_ingest_ns);
  }

  const int64_t h = grid_.ny();
  const int64_t w = grid_.nx();
  ClosedWindow out;
  out.window_id = current_bucket_;
  out.end_sec = (current_bucket_ + 1) * options_.slide_sec;
  out.start_sec = std::max<int64_t>(0, out.end_sec - options_.window_sec);
  out.frame = ts::Tensor::Zeros({kChannels, h, w});
  float* p = out.frame.data();
  for (int64_t c = 0; c < num_cells_; ++c) {
    // cell id = iy * nx + ix, identical to the (C, H, W) plane layout.
    p[c] = static_cast<float>(counts[c]);
    p[num_cells_ + c] = static_cast<float>(pickups[c]);
  }
  out.events = window_events;
  out.last_ingest_ns = last_ingest_ns;
  out.close_ns = obs::NowNs();
  out.partial = partial;

  ++current_bucket_;
  windows_closed_.fetch_add(1, std::memory_order_relaxed);

  RebuildIndexIfChanged(counts);
  closed->push_back(std::move(out));
}

void WindowAggregator::RebuildIndexIfChanged(
    const std::vector<int64_t>& window_counts) {
  std::vector<int64_t> active;
  for (int64_t c = 0; c < num_cells_; ++c) {
    if (window_counts[c] > 0) active.push_back(c);
  }
  active_cells_.store(static_cast<int64_t>(active.size()),
                      std::memory_order_relaxed);
  if (active == last_active_) return;  // epoch unchanged: reuse the tree

  GEO_OBS_SPAN(rebuild_span, "stream.index_rebuild");
  std::vector<spatial::StrTree::Entry> entries;
  entries.reserve(active.size());
  for (int64_t cell : active) {
    entries.push_back({grid_.CellEnvelope(cell), cell});
  }
  auto tree = std::make_shared<const spatial::StrTree>(
      std::move(entries), /*node_capacity=*/10, options_.index_build);
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    index_ = std::move(tree);
  }
  last_active_ = std::move(active);
  index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  GEO_OBS_COUNT("stream.index_rebuilds", 1);
}

std::shared_ptr<const spatial::StrTree> WindowAggregator::HotCellIndex()
    const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_;
}

}  // namespace geotorch::stream
