#ifndef GEOTORCH_BASELINE_GEOPANDAS_LIKE_H_
#define GEOTORCH_BASELINE_GEOPANDAS_LIKE_H_

#include <cstdint>
#include <vector>

#include "synth/taxi.h"
#include "tensor/tensor.h"

namespace geotorch::baseline {

/// Configuration of the baseline pipeline.
struct BaselineOptions {
  int partitions_x = 12;
  int partitions_y = 16;
  int64_t step_duration_sec = 1800;
  /// Simulated heap budget: when the pipeline's logical allocations
  /// exceed this, it aborts with out_of_memory = true — reproducing the
  /// OOM GeoPandas hits on the paper's largest dataset (Fig. 8).
  /// 0 disables the guard.
  int64_t memory_limit_bytes = 0;
};

/// Result of the baseline run.
struct BaselineOutcome {
  bool out_of_memory = false;
  tensor::Tensor st_tensor;        ///< (T, 2, H, W); empty on OOM
  int64_t peak_logical_bytes = 0;  ///< peak of the pipeline's accounting
  double elapsed_sec = 0.0;
};

/// A GeoPandas-style spatiotemporal tensor preparation: the comparison
/// system of Fig. 8. Reproduces the cost profile that makes GeoPandas
/// slow and memory-hungry on this task (DESIGN.md §1):
///   * one heap-allocated geometry object and a per-row attribute
///     dictionary per record (Python object model),
///   * a fully materialized sjoin product (every matched row copied
///     into a new frame),
///   * materialized group lists before aggregation,
///   * strictly single-threaded execution.
BaselineOutcome GeoPandasLikePrepare(
    const std::vector<synth::TripRecord>& trips,
    const BaselineOptions& options);

}  // namespace geotorch::baseline

#endif  // GEOTORCH_BASELINE_GEOPANDAS_LIKE_H_
