#include "baseline/geopandas_like.h"

#include <map>
#include <memory>
#include <string>

#include "core/check.h"
#include "core/stopwatch.h"
#include "spatial/grid.h"
#include "spatial/strtree.h"

namespace geotorch::baseline {
namespace {

// A GeoSeries-style row: boxed geometry plus an attribute dictionary,
// mimicking the per-row Python object overhead of a GeoDataFrame.
struct RowObject {
  std::unique_ptr<spatial::Point> geometry;
  std::map<std::string, double> attributes;
};

// Approximate logical bytes of one RowObject (pointer boxes, map nodes,
// string keys) — the quantity a Python heap would actually pay.
constexpr int64_t kRowOverheadBytes =
    sizeof(RowObject) + sizeof(spatial::Point) + 16 /* allocator */ +
    3 * (48 /* map node */ + 24 /* key */ + 8 /* value */);

class Accountant {
 public:
  explicit Accountant(int64_t limit) : limit_(limit) {}

  // Returns false when the allocation would exceed the budget (OOM).
  bool Allocate(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
    return limit_ <= 0 || current_ <= limit_;
  }
  void Release(int64_t bytes) { current_ -= bytes; }
  int64_t peak() const { return peak_; }

 private:
  int64_t limit_;
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

}  // namespace

BaselineOutcome GeoPandasLikePrepare(
    const std::vector<synth::TripRecord>& trips,
    const BaselineOptions& options) {
  BaselineOutcome outcome;
  Stopwatch timer;
  Accountant mem(options.memory_limit_bytes);

  auto fail_oom = [&]() {
    outcome.out_of_memory = true;
    outcome.peak_logical_bytes = mem.peak();
    outcome.elapsed_sec = timer.ElapsedSeconds();
    return outcome;
  };

  // 1. Load: one boxed row object per record.
  std::vector<RowObject> frame;
  frame.reserve(trips.size());
  spatial::Envelope extent = spatial::Envelope::Empty();
  for (const auto& t : trips) {
    RowObject row;
    row.geometry = std::make_unique<spatial::Point>(
        spatial::Point{t.lon, t.lat});
    row.attributes["time"] = static_cast<double>(t.time_sec);
    row.attributes["is_pickup"] = static_cast<double>(t.is_pickup);
    row.attributes["weight"] = 1.0;
    extent.ExpandToInclude(*row.geometry);
    frame.push_back(std::move(row));
    if (!mem.Allocate(kRowOverheadBytes)) return fail_oom();
  }
  if (frame.empty()) {
    outcome.peak_logical_bytes = mem.peak();
    outcome.elapsed_sec = timer.ElapsedSeconds();
    return outcome;
  }

  // 2. sjoin against the grid polygons via an R-tree, materializing the
  // full join product as a new frame of copied rows + cell attribute.
  spatial::GridPartitioner grid(extent, options.partitions_x,
                                options.partitions_y);
  std::vector<spatial::Polygon> cells = grid.CellPolygons();
  std::vector<spatial::StrTree::Entry> entries;
  entries.reserve(cells.size());
  for (int64_t c = 0; c < static_cast<int64_t>(cells.size()); ++c) {
    entries.push_back({cells[c].bounds(), c});
  }
  spatial::StrTree tree(std::move(entries));
  if (!mem.Allocate(static_cast<int64_t>(cells.size()) * 128)) {
    return fail_oom();
  }

  struct JoinedRow {
    RowObject row;
    int64_t cell;
  };
  std::vector<JoinedRow> joined;
  joined.reserve(frame.size());
  for (const auto& row : frame) {
    int64_t matched = -1;
    tree.Visit(spatial::Envelope(row.geometry->x, row.geometry->y,
                                 row.geometry->x, row.geometry->y),
               [&](int64_t c) {
                 if (matched < 0 && cells[c].Contains(*row.geometry)) {
                   matched = c;
                 }
               });
    if (matched < 0) {
      // Boundary-inclusive semantics: ray casting misses points lying
      // exactly on a cell edge; assign them like the grid partitioner
      // does so both pipelines produce the same tensor.
      auto cell = grid.CellOf(*row.geometry);
      if (cell.has_value()) matched = *cell;
    }
    if (matched < 0) continue;
    JoinedRow jr;
    jr.row.geometry = std::make_unique<spatial::Point>(*row.geometry);
    jr.row.attributes = row.attributes;  // full attribute copy
    jr.cell = matched;
    joined.push_back(std::move(jr));
    if (!mem.Allocate(kRowOverheadBytes + 8)) return fail_oom();
  }

  // 3. groupby (cell, time slot): materialized group lists.
  std::map<std::pair<int64_t, int64_t>, std::vector<const JoinedRow*>>
      groups;
  for (const auto& jr : joined) {
    const int64_t slot = static_cast<int64_t>(
        jr.row.attributes.at("time") / options.step_duration_sec);
    groups[{jr.cell, slot}].push_back(&jr);
    if (!mem.Allocate(sizeof(void*) + 16)) return fail_oom();
  }

  // 4. Aggregate + pivot into the dense (T, 2, H, W) tensor.
  int64_t max_slot = 0;
  for (const auto& [key, rows] : groups) {
    max_slot = std::max(max_slot, key.second);
  }
  const int64_t t = max_slot + 1;
  const int64_t h = options.partitions_y;
  const int64_t w = options.partitions_x;
  tensor::Tensor out = tensor::Tensor::Zeros({t, 2, h, w});
  if (!mem.Allocate(out.numel() * static_cast<int64_t>(sizeof(float)))) {
    return fail_oom();
  }
  float* po = out.data();
  for (const auto& [key, rows] : groups) {
    const int64_t cell = key.first;
    const int64_t slot = key.second;
    const int64_t iy = cell / w;
    const int64_t ix = cell % w;
    double pickups = 0.0;
    double dropoffs = 0.0;
    for (const JoinedRow* jr : rows) {
      if (jr->row.attributes.at("is_pickup") > 0.5) {
        pickups += 1.0;
      } else {
        dropoffs += 1.0;
      }
    }
    po[((slot * 2 + 0) * h + iy) * w + ix] = static_cast<float>(pickups);
    po[((slot * 2 + 1) * h + iy) * w + ix] = static_cast<float>(dropoffs);
  }

  outcome.st_tensor = std::move(out);
  outcome.peak_logical_bytes = mem.peak();
  outcome.elapsed_sec = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace geotorch::baseline
