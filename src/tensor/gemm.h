#ifndef GEOTORCH_TENSOR_GEMM_H_
#define GEOTORCH_TENSOR_GEMM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace geotorch::tensor {

/// Activation applied by a fused GEMM epilogue. Formulas are the exact
/// scalar expressions the unfused elementwise ops use (tensor/ops.cc),
/// so fusing them changes no per-element result.
enum class EpilogueAct : uint8_t {
  kNone = 0,
  kRelu,       // x > 0 ? x : 0
  kLeakyRelu,  // x > 0 ? x : slope * x
  kSigmoid,    // 1 / (1 + exp(-x))
};

/// Fused GEMM epilogue: bias add and activation applied inside the
/// kernel write-back while the C tile is still hot, instead of as
/// separate full-tensor passes after the GEMM returns. Per-element the
/// op order is identical to the unfused sequence (accumulate → +bias →
/// activation; for int8, dequantize → +bias → activation), and each
/// step runs as its own pass over the register tile, so fused output is
/// bitwise identical to unfused for f32 and int8. The epilogue fires
/// exactly once per element, on the final K block.
struct GemmEpilogue {
  /// Per-row bias: c[i][j] += row_bias[i]. Conv uses this (one bias per
  /// output channel; channels are rows of the (F, H·W) output).
  const float* row_bias = nullptr;
  /// Per-column bias: c[i][j] += col_bias[j]. Linear uses this (one
  /// bias per output feature; features are columns of (batch, out)).
  const float* col_bias = nullptr;
  EpilogueAct act = EpilogueAct::kNone;
  float leaky_slope = 0.01f;
};

/// Options for Gemm(). Operands are dense row-major float32; the
/// `trans_*` flags select a logically transposed operand without
/// materializing the transpose (the packing stage absorbs the layout).
struct GemmOptions {
  /// C := A_op·B_op + beta·C. With beta == 0 the output may be
  /// uninitialized (it is overwritten); beta == 1 accumulates, which is
  /// what the convolution backward passes use for `+=` semantics.
  float beta = 0.0f;
  /// When set, `a` holds A^T: stored (k, m) row-major.
  bool trans_a = false;
  /// When set, `b` holds B^T: stored (n, k) row-major.
  bool trans_b = false;
  /// Permit tiling the M×N macro-block grid across the thread pool when
  /// the default device is Device::kParallel and the problem is large
  /// enough. Calls made from inside pool workers (e.g. per-sample conv
  /// loops) degrade to serial automatically, so leaving this on is safe
  /// everywhere; set false only to force serial execution.
  bool allow_parallel = true;
  /// Optional fused epilogue (bias + activation in the write-back).
  /// Must stay valid for the duration of the call; null means the
  /// plain write-back, byte-identical to the pre-fusion kernel.
  const GemmEpilogue* epilogue = nullptr;
};

/// Blocked, packed SGEMM: C (m×n) = A_op (m×k) · B_op (k×n) + beta·C.
///
/// Cache-blocked over (MC, KC, NC) with A/B panels packed into
/// thread-local scratch (core/memory workspaces) and a register-tiled
/// MR×NR micro-kernel written to auto-vectorize. Small problems fall
/// through to the reference loop so tiny matmuls don't pay packing
/// overhead. Deterministic: the K-blocking (accumulation) order is
/// identical on the serial and parallel paths.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, const GemmOptions& opts = {});

/// Reference triple-loop kernel, compiled with the project's default
/// flags. This is the pre-blocking `MatMul`/`RawMatMul` loop, kept as
/// the correctness oracle for tests and the baseline the micro-benchmark
/// sweep measures speedups against.
void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, const GemmOptions& opts = {});

/// bf16-storage, f32-accumulate GEMM (gemm_bf16.cc): operands are
/// rounded to bf16 (round-to-nearest-even) as they are packed into the
/// panel workspaces, the micro-kernel widens them back to f32 and
/// accumulates in f32. C = A_bf16 · B_bf16 + beta·C. Same transpose /
/// parallelism semantics as Gemm(); K-accumulation order is fixed, so
/// serial == parallel bitwise. The second overload takes B already
/// converted to bf16 (row-major (k, n), no transpose) — the layer eval
/// path uses it to keep weights stored at half width.
void GemmBf16(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, const GemmOptions& opts = {});
void GemmBf16(const float* a, const uint16_t* b_bf16, float* c, int64_t m,
              int64_t k, int64_t n, const GemmOptions& opts = {});
/// A already converted to bf16, row-major (m, k), no transpose — the
/// conv eval path uses it (weights are the A operand there).
void GemmBf16(const uint16_t* a_bf16, const float* b, float* c, int64_t m,
              int64_t k, int64_t n, const GemmOptions& opts = {});

/// Pre-packed constant B operand (weights). Serving calls the same
/// GEMM repeatedly against a weight matrix that never changes, so the
/// panel-packing of B — a large share of a small-batch GEMM — can be
/// hoisted to SetPrecision time: PackBf16B lays B out in exactly the
/// blocked panel order GemmBf16 walks, and the packed overload skips
/// the per-call B pack entirely (A is still packed per call). The
/// packed blob is kernel-version-specific and must not be persisted.
struct Bf16PackedB {
  const uint16_t* data = nullptr;
};
/// Number of uint16 elements PackBf16B writes for a (k, n) matrix.
int64_t Bf16PackedBSize(int64_t k, int64_t n);
/// b: row-major (k, n) bf16, no transpose.
void PackBf16B(const uint16_t* b, int64_t k, int64_t n, uint16_t* packed);
void GemmBf16(const float* a, Bf16PackedB b, float* c, int64_t m, int64_t k,
              int64_t n, const GemmOptions& opts = {});

/// Options for GemmInt8. Scales map the int8 operands back to real
/// values: row i of A carries a_scales[i % a_scales_len] (pass len 1
/// for a per-tensor activation scale), column j of B carries
/// b_scales[j % b_scales_len] (per-output-channel weight scales).
struct Int8GemmOptions {
  const float* a_scales = nullptr;
  int64_t a_scales_len = 1;
  const float* b_scales = nullptr;
  int64_t b_scales_len = 1;
  /// C := dequant(A·B) + beta·C (beta in {0, 1} fast paths as in Gemm).
  float beta = 0.0f;
  bool allow_parallel = true;
  /// Optional fused epilogue, applied after dequantization (the int8
  /// "dequant scale" is already part of the kernel write-back): c =
  /// act(sa·sb·acc + bias). Same validity/bitwise contract as
  /// GemmOptions::epilogue.
  const GemmEpilogue* epilogue = nullptr;
};

/// int8 symmetric-quantized GEMM with i32 accumulation (gemm_int8.cc):
/// C (m×n, f32) = a_scale ⊙ (A_q (m×k, int8) · B_q (k×n, int8)) ⊙
/// b_scale + beta·C. Integer accumulation is exact, so serial and
/// parallel paths are bitwise identical; on AVX-512 VNNI hardware the
/// inner product runs on _mm512_dpwssd_epi32, elsewhere on a portable
/// int32 loop with the same results. The K dimension is blocked at
/// kKCInt8 (i32-overflow-safe: 127·127·kKCInt8 < 2^31); blocks past the
/// first dequantize-accumulate into C in f32.
void GemmInt8(const int8_t* a, const int8_t* b, float* c, int64_t m, int64_t k,
              int64_t n, const Int8GemmOptions& opts);

/// Pre-packed constant B operand for GemmInt8, mirroring Bf16PackedB
/// (same motivation; the int8 panel layout blocks K at kKCInt8, so the
/// two packed formats are not interchangeable).
struct Int8PackedB {
  const int8_t* data = nullptr;
};
/// Number of int8 elements PackInt8B writes for a (k, n) matrix.
int64_t Int8PackedBSize(int64_t k, int64_t n);
/// b: row-major (k, n) int8, no transpose.
void PackInt8B(const int8_t* b, int64_t k, int64_t n, int8_t* packed);
void GemmInt8(const int8_t* a, Int8PackedB b, float* c, int64_t m, int64_t k,
              int64_t n, const Int8GemmOptions& opts);

/// Implicit im2col view of one (C, H, W) image plane: the B operand of
/// a convolution GEMM without materializing the (C·KH·KW, OH·OW) patch
/// matrix. The packing stage gathers panel rows straight from the image
/// — row p of the virtual matrix is kernel tap (ci, ki, kj) = unflatten
/// of p, column j is output pixel (oi, oj) = unflatten of j — producing
/// byte-identical panels to packing a materialized im2col matrix, while
/// skipping the full extra write+read pass over it.
template <typename T>
struct ConvImageView {
  const T* x = nullptr;  // one sample, (c, h, w) row-major
  int64_t c = 0, h = 0, w = 0;
  int64_t kh = 0, kw = 0;
  int64_t stride = 1, pad = 0;
  int64_t oh = 0, ow = 0;

  int64_t K() const { return c * kh * kw; }
  int64_t N() const { return oh * ow; }

  /// Gathers columns [j0, j0 + len) of virtual row p into dst.
  /// Out-of-image taps read as zero, matching Im2ColInto's memset.
  /// Stride-1 spans copy their interior with memcpy (only the padded
  /// edges need element fills), so packing costs roughly what the
  /// dense pack pays — without ever writing the patch matrix.
  void GatherRow(int64_t p, int64_t j0, int64_t len, T* dst) const {
    const int64_t ci = p / (kh * kw);
    const int64_t rem = p - ci * kh * kw;
    const int64_t ki = rem / kw;
    const int64_t kj = rem - ki * kw;
    int64_t oi = j0 / ow;  // the only division; spans then walk rows
    int64_t oj0 = j0 - oi * ow;
    int64_t remaining = len;
    T* out = dst;
    const T* src_plane = x + ci * h * w;
    while (remaining > 0) {
      const int64_t span = std::min(remaining, ow - oj0);
      const int64_t ii = oi * stride + ki - pad;
      if (ii < 0 || ii >= h) {
        for (int64_t s = 0; s < span; ++s) out[s] = T{0};
      } else {
        const T* src_row = src_plane + ii * w;
        if (stride == 1) {
          const int64_t jj0 = oj0 + kj - pad;  // source col of out[0]
          int64_t s = std::min(span, std::max(int64_t{0}, -jj0));
          for (int64_t t = 0; t < s; ++t) out[t] = T{0};
          const int64_t valid = std::min(span, w - jj0);
          if (valid > s) {
            __builtin_memcpy(out + s, src_row + jj0 + s,
                             static_cast<size_t>(valid - s) * sizeof(T));
            s = valid;
          }
          for (; s < span; ++s) out[s] = T{0};
        } else {
          for (int64_t s = 0; s < span; ++s) {
            const int64_t jj = (oj0 + s) * stride + kj - pad;
            out[s] = (jj >= 0 && jj < w) ? src_row[jj] : T{0};
          }
        }
      }
      out += span;
      remaining -= span;
      oj0 = 0;
      ++oi;
    }
  }
};

/// Convolution GEMMs over an implicit im2col B operand: C (m × b.N()) =
/// A (m × b.K()) · im2col(b), same blocking, determinism, and epilogue
/// semantics as the dense overloads (the small-problem reference
/// fallback materializes the patch matrix into the im2col workspace, so
/// outputs are bitwise identical to the explicit-im2col path at every
/// size). A is the weight matrix: f32 row-major, bf16 row-major, or
/// row-quantized int8 respectively.
void GemmConv(const float* a, const ConvImageView<float>& b, float* c,
              int64_t m, const GemmOptions& opts = {});
void GemmConvBf16(const uint16_t* a_bf16, const ConvImageView<float>& b,
                  float* c, int64_t m, const GemmOptions& opts = {});
void GemmConvInt8(const int8_t* a, const ConvImageView<int8_t>& b, float* c,
                  int64_t m, const Int8GemmOptions& opts);

namespace gemm_internal {

// Blocking parameters (see DESIGN.md "GEMM kernel & parallel execution"
// for how to re-tune them).
inline constexpr int64_t kMR = 6;    // register-tile rows
inline constexpr int64_t kNR = 16;   // register-tile columns
inline constexpr int64_t kMC = 96;   // A block rows      (MC×KC panel in L2)
inline constexpr int64_t kKC = 256;  // shared K block
inline constexpr int64_t kNC = 512;  // B block columns   (KC×NC panel in L3)

// Problems with m*n*k below this run the reference loop (packing would
// dominate); at or above it the blocked kernel engages.
inline constexpr int64_t kBlockedMinWork = int64_t{1} << 15;

// Minimum m*n*k before the M×N macro-tile grid is spread over the pool.
inline constexpr int64_t kParallelMinWork = int64_t{1} << 18;

// Low-precision kernels widen the register tile to kNRLp columns (the
// bf16/int8 micro-kernels target 512-bit lanes) and block K at kKCInt8
// for the int8 path so the i32 accumulator cannot overflow:
// 127 * 127 * kKCInt8 = 1.3e8 < 2^31.
inline constexpr int64_t kNRLp = 32;
inline constexpr int64_t kKCInt8 = 8192;

// Geometry of the pre-packed low-precision B blobs: panel blocks are
// laid out jc-major (kNC column blocks), then pc (kc_block K blocks),
// each block holding ceil(nc/kNRLp) micro-panels of kNRLp columns of
// K pairs — exactly the order the GemmRegion loops consume them.
inline constexpr int64_t LpCeilDiv(int64_t a, int64_t b) {
  return (a + b - 1) / b;
}
// Total packed K extent (every K block rounds up to whole pairs).
inline int64_t LpPairedK(int64_t k, int64_t kc_block) {
  int64_t total = 0;
  for (int64_t pc = 0; pc < k; pc += kc_block) {
    const int64_t kc = k - pc < kc_block ? k - pc : kc_block;
    total += 2 * LpCeilDiv(kc, 2);
  }
  return total;
}
inline int64_t LpPackedBSize(int64_t k, int64_t n, int64_t kc_block) {
  int64_t total = 0;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = n - jc < kNC ? n - jc : kNC;
    total += LpCeilDiv(nc, kNRLp) * kNRLp * LpPairedK(k, kc_block);
  }
  return total;
}
// Element offset of the (jc, pc) block. jc is a multiple of kNC, so
// every earlier column block is full width (kNC, a multiple of kNRLp).
inline int64_t LpPackedBOffset(int64_t k, int64_t n, int64_t jc, int64_t pc,
                               int64_t kc_block) {
  const int64_t nc = n - jc < kNC ? n - jc : kNC;
  const int64_t width = LpCeilDiv(nc, kNRLp) * kNRLp;
  int64_t k_before = 0;
  for (int64_t p = 0; p < pc; p += kc_block) {
    const int64_t kc = k - p < kc_block ? k - p : kc_block;
    k_before += 2 * LpCeilDiv(kc, 2);
  }
  return jc * LpPairedK(k, kc_block) + width * k_before;
}

// Applies a fused epilogue to one written-back C row segment. Each step
// is its own pass over the segment — the same pass structure as the
// unfused full-tensor ops — so per-element results match the unfused
// path bitwise (no cross-step FMA contraction is possible).
inline void ApplyEpilogueRow(float* row, int64_t cols, const float* row_bias,
                             int64_t r, const float* col_bias,
                             const GemmEpilogue& ep) {
  if (row_bias != nullptr) {
    const float b = row_bias[r];
    for (int64_t j = 0; j < cols; ++j) row[j] += b;
  }
  if (col_bias != nullptr) {
    for (int64_t j = 0; j < cols; ++j) row[j] += col_bias[j];
  }
  switch (ep.act) {
    case EpilogueAct::kNone:
      break;
    case EpilogueAct::kRelu:
      for (int64_t j = 0; j < cols; ++j)
        row[j] = row[j] > 0.0f ? row[j] : 0.0f;
      break;
    case EpilogueAct::kLeakyRelu:
      for (int64_t j = 0; j < cols; ++j)
        row[j] = row[j] > 0.0f ? row[j] : ep.leaky_slope * row[j];
      break;
    case EpilogueAct::kSigmoid:
      for (int64_t j = 0; j < cols; ++j)
        row[j] = 1.0f / (1.0f + std::exp(-row[j]));
      break;
  }
}

}  // namespace gemm_internal

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_GEMM_H_
