#ifndef GEOTORCH_TENSOR_GEMM_H_
#define GEOTORCH_TENSOR_GEMM_H_

#include <cstdint>

namespace geotorch::tensor {

/// Options for Gemm(). Operands are dense row-major float32; the
/// `trans_*` flags select a logically transposed operand without
/// materializing the transpose (the packing stage absorbs the layout).
struct GemmOptions {
  /// C := A_op·B_op + beta·C. With beta == 0 the output may be
  /// uninitialized (it is overwritten); beta == 1 accumulates, which is
  /// what the convolution backward passes use for `+=` semantics.
  float beta = 0.0f;
  /// When set, `a` holds A^T: stored (k, m) row-major.
  bool trans_a = false;
  /// When set, `b` holds B^T: stored (n, k) row-major.
  bool trans_b = false;
  /// Permit tiling the M×N macro-block grid across the thread pool when
  /// the default device is Device::kParallel and the problem is large
  /// enough. Calls made from inside pool workers (e.g. per-sample conv
  /// loops) degrade to serial automatically, so leaving this on is safe
  /// everywhere; set false only to force serial execution.
  bool allow_parallel = true;
};

/// Blocked, packed SGEMM: C (m×n) = A_op (m×k) · B_op (k×n) + beta·C.
///
/// Cache-blocked over (MC, KC, NC) with A/B panels packed into
/// thread-local scratch (core/memory workspaces) and a register-tiled
/// MR×NR micro-kernel written to auto-vectorize. Small problems fall
/// through to the reference loop so tiny matmuls don't pay packing
/// overhead. Deterministic: the K-blocking (accumulation) order is
/// identical on the serial and parallel paths.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, const GemmOptions& opts = {});

/// Reference triple-loop kernel, compiled with the project's default
/// flags. This is the pre-blocking `MatMul`/`RawMatMul` loop, kept as
/// the correctness oracle for tests and the baseline the micro-benchmark
/// sweep measures speedups against.
void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, const GemmOptions& opts = {});

/// bf16-storage, f32-accumulate GEMM (gemm_bf16.cc): operands are
/// rounded to bf16 (round-to-nearest-even) as they are packed into the
/// panel workspaces, the micro-kernel widens them back to f32 and
/// accumulates in f32. C = A_bf16 · B_bf16 + beta·C. Same transpose /
/// parallelism semantics as Gemm(); K-accumulation order is fixed, so
/// serial == parallel bitwise. The second overload takes B already
/// converted to bf16 (row-major (k, n), no transpose) — the layer eval
/// path uses it to keep weights stored at half width.
void GemmBf16(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, const GemmOptions& opts = {});
void GemmBf16(const float* a, const uint16_t* b_bf16, float* c, int64_t m,
              int64_t k, int64_t n, const GemmOptions& opts = {});
/// A already converted to bf16, row-major (m, k), no transpose — the
/// conv eval path uses it (weights are the A operand there).
void GemmBf16(const uint16_t* a_bf16, const float* b, float* c, int64_t m,
              int64_t k, int64_t n, const GemmOptions& opts = {});

/// Pre-packed constant B operand (weights). Serving calls the same
/// GEMM repeatedly against a weight matrix that never changes, so the
/// panel-packing of B — a large share of a small-batch GEMM — can be
/// hoisted to SetPrecision time: PackBf16B lays B out in exactly the
/// blocked panel order GemmBf16 walks, and the packed overload skips
/// the per-call B pack entirely (A is still packed per call). The
/// packed blob is kernel-version-specific and must not be persisted.
struct Bf16PackedB {
  const uint16_t* data = nullptr;
};
/// Number of uint16 elements PackBf16B writes for a (k, n) matrix.
int64_t Bf16PackedBSize(int64_t k, int64_t n);
/// b: row-major (k, n) bf16, no transpose.
void PackBf16B(const uint16_t* b, int64_t k, int64_t n, uint16_t* packed);
void GemmBf16(const float* a, Bf16PackedB b, float* c, int64_t m, int64_t k,
              int64_t n, const GemmOptions& opts = {});

/// Options for GemmInt8. Scales map the int8 operands back to real
/// values: row i of A carries a_scales[i % a_scales_len] (pass len 1
/// for a per-tensor activation scale), column j of B carries
/// b_scales[j % b_scales_len] (per-output-channel weight scales).
struct Int8GemmOptions {
  const float* a_scales = nullptr;
  int64_t a_scales_len = 1;
  const float* b_scales = nullptr;
  int64_t b_scales_len = 1;
  /// C := dequant(A·B) + beta·C (beta in {0, 1} fast paths as in Gemm).
  float beta = 0.0f;
  bool allow_parallel = true;
};

/// int8 symmetric-quantized GEMM with i32 accumulation (gemm_int8.cc):
/// C (m×n, f32) = a_scale ⊙ (A_q (m×k, int8) · B_q (k×n, int8)) ⊙
/// b_scale + beta·C. Integer accumulation is exact, so serial and
/// parallel paths are bitwise identical; on AVX-512 VNNI hardware the
/// inner product runs on _mm512_dpwssd_epi32, elsewhere on a portable
/// int32 loop with the same results. The K dimension is blocked at
/// kKCInt8 (i32-overflow-safe: 127·127·kKCInt8 < 2^31); blocks past the
/// first dequantize-accumulate into C in f32.
void GemmInt8(const int8_t* a, const int8_t* b, float* c, int64_t m, int64_t k,
              int64_t n, const Int8GemmOptions& opts);

/// Pre-packed constant B operand for GemmInt8, mirroring Bf16PackedB
/// (same motivation; the int8 panel layout blocks K at kKCInt8, so the
/// two packed formats are not interchangeable).
struct Int8PackedB {
  const int8_t* data = nullptr;
};
/// Number of int8 elements PackInt8B writes for a (k, n) matrix.
int64_t Int8PackedBSize(int64_t k, int64_t n);
/// b: row-major (k, n) int8, no transpose.
void PackInt8B(const int8_t* b, int64_t k, int64_t n, int8_t* packed);
void GemmInt8(const int8_t* a, Int8PackedB b, float* c, int64_t m, int64_t k,
              int64_t n, const Int8GemmOptions& opts);

namespace gemm_internal {

// Blocking parameters (see DESIGN.md "GEMM kernel & parallel execution"
// for how to re-tune them).
inline constexpr int64_t kMR = 6;    // register-tile rows
inline constexpr int64_t kNR = 16;   // register-tile columns
inline constexpr int64_t kMC = 96;   // A block rows      (MC×KC panel in L2)
inline constexpr int64_t kKC = 256;  // shared K block
inline constexpr int64_t kNC = 512;  // B block columns   (KC×NC panel in L3)

// Problems with m*n*k below this run the reference loop (packing would
// dominate); at or above it the blocked kernel engages.
inline constexpr int64_t kBlockedMinWork = int64_t{1} << 15;

// Minimum m*n*k before the M×N macro-tile grid is spread over the pool.
inline constexpr int64_t kParallelMinWork = int64_t{1} << 18;

// Low-precision kernels widen the register tile to kNRLp columns (the
// bf16/int8 micro-kernels target 512-bit lanes) and block K at kKCInt8
// for the int8 path so the i32 accumulator cannot overflow:
// 127 * 127 * kKCInt8 = 1.3e8 < 2^31.
inline constexpr int64_t kNRLp = 32;
inline constexpr int64_t kKCInt8 = 8192;

// Geometry of the pre-packed low-precision B blobs: panel blocks are
// laid out jc-major (kNC column blocks), then pc (kc_block K blocks),
// each block holding ceil(nc/kNRLp) micro-panels of kNRLp columns of
// K pairs — exactly the order the GemmRegion loops consume them.
inline constexpr int64_t LpCeilDiv(int64_t a, int64_t b) {
  return (a + b - 1) / b;
}
// Total packed K extent (every K block rounds up to whole pairs).
inline int64_t LpPairedK(int64_t k, int64_t kc_block) {
  int64_t total = 0;
  for (int64_t pc = 0; pc < k; pc += kc_block) {
    const int64_t kc = k - pc < kc_block ? k - pc : kc_block;
    total += 2 * LpCeilDiv(kc, 2);
  }
  return total;
}
inline int64_t LpPackedBSize(int64_t k, int64_t n, int64_t kc_block) {
  int64_t total = 0;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = n - jc < kNC ? n - jc : kNC;
    total += LpCeilDiv(nc, kNRLp) * kNRLp * LpPairedK(k, kc_block);
  }
  return total;
}
// Element offset of the (jc, pc) block. jc is a multiple of kNC, so
// every earlier column block is full width (kNC, a multiple of kNRLp).
inline int64_t LpPackedBOffset(int64_t k, int64_t n, int64_t jc, int64_t pc,
                               int64_t kc_block) {
  const int64_t nc = n - jc < kNC ? n - jc : kNC;
  const int64_t width = LpCeilDiv(nc, kNRLp) * kNRLp;
  int64_t k_before = 0;
  for (int64_t p = 0; p < pc; p += kc_block) {
    const int64_t kc = k - p < kc_block ? k - p : kc_block;
    k_before += 2 * LpCeilDiv(kc, 2);
  }
  return jc * LpPairedK(k, kc_block) + width * k_before;
}

}  // namespace gemm_internal

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_GEMM_H_
