#ifndef GEOTORCH_TENSOR_GEMM_H_
#define GEOTORCH_TENSOR_GEMM_H_

#include <cstdint>

namespace geotorch::tensor {

/// Options for Gemm(). Operands are dense row-major float32; the
/// `trans_*` flags select a logically transposed operand without
/// materializing the transpose (the packing stage absorbs the layout).
struct GemmOptions {
  /// C := A_op·B_op + beta·C. With beta == 0 the output may be
  /// uninitialized (it is overwritten); beta == 1 accumulates, which is
  /// what the convolution backward passes use for `+=` semantics.
  float beta = 0.0f;
  /// When set, `a` holds A^T: stored (k, m) row-major.
  bool trans_a = false;
  /// When set, `b` holds B^T: stored (n, k) row-major.
  bool trans_b = false;
  /// Permit tiling the M×N macro-block grid across the thread pool when
  /// the default device is Device::kParallel and the problem is large
  /// enough. Calls made from inside pool workers (e.g. per-sample conv
  /// loops) degrade to serial automatically, so leaving this on is safe
  /// everywhere; set false only to force serial execution.
  bool allow_parallel = true;
};

/// Blocked, packed SGEMM: C (m×n) = A_op (m×k) · B_op (k×n) + beta·C.
///
/// Cache-blocked over (MC, KC, NC) with A/B panels packed into
/// thread-local scratch (core/memory workspaces) and a register-tiled
/// MR×NR micro-kernel written to auto-vectorize. Small problems fall
/// through to the reference loop so tiny matmuls don't pay packing
/// overhead. Deterministic: the K-blocking (accumulation) order is
/// identical on the serial and parallel paths.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, const GemmOptions& opts = {});

/// Reference triple-loop kernel, compiled with the project's default
/// flags. This is the pre-blocking `MatMul`/`RawMatMul` loop, kept as
/// the correctness oracle for tests and the baseline the micro-benchmark
/// sweep measures speedups against.
void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, const GemmOptions& opts = {});

namespace gemm_internal {

// Blocking parameters (see DESIGN.md "GEMM kernel & parallel execution"
// for how to re-tune them).
inline constexpr int64_t kMR = 6;    // register-tile rows
inline constexpr int64_t kNR = 16;   // register-tile columns
inline constexpr int64_t kMC = 96;   // A block rows      (MC×KC panel in L2)
inline constexpr int64_t kKC = 256;  // shared K block
inline constexpr int64_t kNC = 512;  // B block columns   (KC×NC panel in L3)

// Problems with m*n*k below this run the reference loop (packing would
// dominate); at or above it the blocked kernel engages.
inline constexpr int64_t kBlockedMinWork = int64_t{1} << 15;

// Minimum m*n*k before the M×N macro-tile grid is spread over the pool.
inline constexpr int64_t kParallelMinWork = int64_t{1} << 18;

}  // namespace gemm_internal

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_GEMM_H_
