#include "tensor/fusion.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace geotorch::tensor {
namespace {

bool FusionEnabledFromEnv() {
  const char* env = std::getenv("GEOTORCH_FUSION");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& FusionFlag() {
  static std::atomic<bool> flag{FusionEnabledFromEnv()};
  return flag;
}

}  // namespace

bool FusionEnabled() {
  return FusionFlag().load(std::memory_order_relaxed);
}

void SetFusionEnabled(bool on) {
  FusionFlag().store(on, std::memory_order_relaxed);
}

}  // namespace geotorch::tensor
