#include "tensor/storage.h"

#include <cstring>

#include "core/memory.h"
#include "core/storage_pool.h"

namespace geotorch::tensor {

std::shared_ptr<Storage> Storage::New(int64_t numel, bool zero) {
  auto s = std::shared_ptr<Storage>(new Storage());
  s->numel_ = numel;
  if (numel > 0) {
    const size_t bytes = static_cast<size_t>(numel) * sizeof(float);
    s->data_ = static_cast<float*>(
        StoragePool::Global().Allocate(bytes, &s->class_bytes_));
    s->pooled_ = true;
    if (zero) std::memset(s->data_, 0, bytes);
    MemoryTracker::Global().Allocate(static_cast<int64_t>(bytes));
  }
  return s;
}

std::shared_ptr<Storage> Storage::Adopt(std::vector<float> values) {
  auto s = std::shared_ptr<Storage>(new Storage());
  s->numel_ = static_cast<int64_t>(values.size());
  s->adopted_ = std::move(values);
  s->data_ = s->adopted_.data();
  MemoryTracker::Global().Allocate(s->numel_ *
                                   static_cast<int64_t>(sizeof(float)));
  return s;
}

Storage::~Storage() {
  if (numel_ > 0) {
    MemoryTracker::Global().Release(numel_ *
                                    static_cast<int64_t>(sizeof(float)));
  }
  if (pooled_ && data_ != nullptr) {
    StoragePool::Global().Deallocate(data_, class_bytes_);
  }
}

}  // namespace geotorch::tensor
