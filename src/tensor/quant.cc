#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

namespace geotorch::tensor {

void ConvertToBf16(const float* src, uint16_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = Bf16FromF32(src[i]);
}

void ConvertBf16ToF32(const uint16_t* src, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = F32FromBf16(src[i]);
}

float AbsMax(const float* x, int64_t n) {
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

float SymmetricScale(float absmax) {
  if (!(absmax > 0.0f) || !std::isfinite(absmax)) return 1.0f;
  return absmax / 127.0f;
}

void QuantizeInt8(const float* x, int64_t n, float scale, int8_t* out) {
  const float inv = 1.0f / scale;
  for (int64_t i = 0; i < n; ++i) {
    const long q = std::lrintf(x[i] * inv);
    out[i] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
  }
}

void QuantizeRowsInt8(const float* w, int64_t rows, int64_t cols, int8_t* out,
                      float* scales) {
  for (int64_t r = 0; r < rows; ++r) {
    const float s = SymmetricScale(AbsMax(w + r * cols, cols));
    scales[r] = s;
    QuantizeInt8(w + r * cols, cols, s, out + r * cols);
  }
}

void QuantizeColsInt8(const float* w, int64_t rows, int64_t cols, int8_t* out,
                      float* scales) {
  for (int64_t c = 0; c < cols; ++c) {
    float m = 0.0f;
    for (int64_t r = 0; r < rows; ++r)
      m = std::max(m, std::fabs(w[r * cols + c]));
    scales[c] = SymmetricScale(m);
  }
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    int8_t* orow = out + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const long q = std::lrintf(row[c] / scales[c]);
      orow[c] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
    }
  }
}

}  // namespace geotorch::tensor
