#ifndef GEOTORCH_TENSOR_SHAPE_H_
#define GEOTORCH_TENSOR_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace geotorch::tensor {

/// Dimension sizes of a tensor, outermost first (e.g. {N, C, H, W}).
using Shape = std::vector<int64_t>;

/// Product of all dimensions; 1 for a rank-0 (scalar) shape.
int64_t NumElements(const Shape& shape);

/// Row-major strides for a contiguous layout of `shape`.
std::vector<int64_t> ContiguousStrides(const Shape& shape);

/// "(2, 3, 4)" — for error messages.
std::string ShapeToString(const Shape& shape);

/// True if both shapes are identical.
bool SameShape(const Shape& a, const Shape& b);

/// NumPy broadcasting: aligns trailing dimensions; a dimension of 1
/// stretches to match. Aborts (GEO_CHECK) when the shapes are
/// incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// True if `from` broadcasts to `to` without error.
bool BroadcastableTo(const Shape& from, const Shape& to);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_SHAPE_H_
