#ifndef GEOTORCH_TENSOR_OPS_H_
#define GEOTORCH_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace geotorch::tensor {

// ---------------------------------------------------------------------------
// Elementwise binary ops (NumPy broadcasting). Each returns a new tensor.
// ---------------------------------------------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// max(a, b) elementwise with broadcasting.
Tensor Maximum(const Tensor& a, const Tensor& b);

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
/// a^p elementwise (p is a scalar exponent).
Tensor PowScalar(const Tensor& a, float p);

// ---------------------------------------------------------------------------
// Elementwise unary ops.
// ---------------------------------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Relu(const Tensor& a);
/// x for x > 0, slope*x otherwise.
Tensor LeakyRelu(const Tensor& a, float slope = 0.01f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
/// Clamps every element into [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);
/// Applies an arbitrary scalar function (serial; for tests and small data).
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

// ---------------------------------------------------------------------------
// In-place elementwise kernels. Each mutates its first argument, reusing
// its storage instead of allocating an output — the workhorses of the
// autograd backward pass and the fused optimizer steps. Shapes must
// match exactly (no broadcasting); all are order-independent per
// element, so parallel execution stays bitwise deterministic.
// ---------------------------------------------------------------------------
/// a *= b.
void MulInPlace(Tensor& a, const Tensor& b);
/// a = -a.
void NegInPlace(Tensor& a);
/// a += s * b.
void AddScaledInPlace(Tensor& a, const Tensor& b, float s);
/// g *= (x > 0 ? 1 : slope) — the (Leaky)ReLU backward mask, applied
/// without materializing the mask tensor.
void ReluMaskInPlace(Tensor& g, const Tensor& x, float slope = 0.0f);
/// g *= y * (1 - y) where y = sigmoid(x) (the forward output).
void SigmoidGradInPlace(Tensor& g, const Tensor& y);
/// g *= 1 - y^2 where y = tanh(x) (the forward output).
void TanhGradInPlace(Tensor& g, const Tensor& y);

/// Materializes `a` broadcast to `shape` (NumPy rules). Unlike the ops
/// above this allocates, but it replaces the old Add(Zeros(shape), a)
/// idiom with a single strided copy.
Tensor BroadcastTo(const Tensor& a, const Shape& shape);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// Sum over the given dimension. keepdim retains a size-1 dim.
Tensor Sum(const Tensor& a, int dim, bool keepdim = false);
Tensor Mean(const Tensor& a, int dim, bool keepdim = false);

/// Reduces `a` (by summation) to `target` shape, inverting broadcasting.
/// Used by autograd to fold gradients of broadcast operands.
Tensor SumToShape(const Tensor& a, const Shape& target);

/// Index of the maximum along `dim` (ties pick the first). Output drops
/// `dim`; values are exact integers stored as float.
Tensor Argmax(const Tensor& a, int dim);

// ---------------------------------------------------------------------------
// Linear algebra and layout.
// ---------------------------------------------------------------------------
/// (m,k) x (k,n) -> (m,n). Dispatches through the blocked GEMM kernel
/// (tensor/gemm.h) on the current Device backend.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// MatMul with either operand logically transposed — the packed kernel
/// consumes the transposed layout directly, so no transpose is
/// materialized. Used by autograd's MatMul backward.
Tensor MatMulT(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b);
/// 2-D transpose (cache-blocked).
Tensor Transpose2d(const Tensor& a);
/// General dimension permutation: out.shape[i] = in.shape[perm[i]].
Tensor Permute(const Tensor& a, const std::vector<int>& perm);

/// Concatenates along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int dim);
/// Sub-range [start, end) along `dim`; copies.
Tensor Slice(const Tensor& a, int dim, int64_t start, int64_t end);
/// Stacks equal-shaped tensors along a new leading dimension.
Tensor Stack(const std::vector<Tensor>& parts);

// ---------------------------------------------------------------------------
// Softmax family.
// ---------------------------------------------------------------------------
Tensor Softmax(const Tensor& a, int dim);
Tensor LogSoftmax(const Tensor& a, int dim);

// ---------------------------------------------------------------------------
// Testing helpers.
// ---------------------------------------------------------------------------
/// True when shapes match and every |a_i - b_i| <= atol + rtol*|b_i|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_OPS_H_
