#ifndef GEOTORCH_TENSOR_DEVICE_H_
#define GEOTORCH_TENSOR_DEVICE_H_

namespace geotorch::tensor {

/// Execution backend for heavy kernels (matmul, im2col convolution,
/// large elementwise loops).
///
/// The original GeoTorchAI runs its deep-learning module on either CPU
/// or GPU; this environment has no GPU, so the accelerated device is
/// simulated by a multi-threaded backend that exercises the same
/// device-dispatch code path (see DESIGN.md §1).
enum class Device {
  kSerial,    ///< single-threaded execution ("CPU" in the paper's Fig. 9)
  kParallel,  ///< thread-pool execution ("GPU" stand-in)
};

/// Returns the backend heavy kernels currently dispatch to.
Device GetDefaultDevice();

/// Sets the process-wide default backend.
void SetDefaultDevice(Device device);

/// RAII device override, used by benchmarks to time both backends.
class DeviceGuard {
 public:
  explicit DeviceGuard(Device device) : saved_(GetDefaultDevice()) {
    SetDefaultDevice(device);
  }
  ~DeviceGuard() { SetDefaultDevice(saved_); }
  DeviceGuard(const DeviceGuard&) = delete;
  DeviceGuard& operator=(const DeviceGuard&) = delete;

 private:
  Device saved_;
};

/// Human-readable backend name ("serial-cpu" / "parallel-accel").
const char* DeviceToString(Device device);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_DEVICE_H_
