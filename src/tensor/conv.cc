#include "tensor/conv.h"

#include "tensor/ops.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/check.h"
#include "core/memory.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"

namespace geotorch::tensor {
namespace {

// Device gate for per-sample (or per-plane) loops. Matmuls issued from
// inside the loop body still go through Gemm(); nested parallel dispatch
// collapses to serial on pool workers, so samples parallelize across the
// pool and each sample's GEMM runs serially within its worker.
void ForEachSample(int64_t n, const std::function<void(int64_t)>& fn) {
  if (GetDefaultDevice() == Device::kParallel && n > 1) {
    ThreadPool::Global().ParallelFor(n, fn);
  } else {
    for (int64_t i = 0; i < n; ++i) fn(i);
  }
}

// im2col core writing into caller-provided storage (a reusable
// per-thread workspace in the conv kernels, so no allocation per sample
// per step). `cols` must hold c*kh*kw * oh*ow floats; it is fully
// (re)initialized including the zero padding.
void Im2ColInto(const Tensor& x, int64_t n, int64_t kh, int64_t kw,
                const ConvSpec& spec, float* cols) {
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t w = x.size(3);
  const int64_t oh = ConvOutSize(h, kh, spec.stride, spec.padding);
  const int64_t ow = ConvOutSize(w, kw, spec.stride, spec.padding);
  std::memset(cols, 0, sizeof(float) * c * kh * kw * oh * ow);
  const float* px = x.data() + n * c * h * w;
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((ci * kh + ki) * kw + kj) * oh * ow;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * spec.stride + ki - spec.padding;
          if (ii < 0 || ii >= h) continue;
          const float* src_row = px + (ci * h + ii) * w;
          float* dst_row = dst + oi * ow;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * spec.stride + kj - spec.padding;
            if (jj < 0 || jj >= w) continue;
            dst_row[oj] = src_row[jj];
          }
        }
      }
    }
  }
}

// col2im scatter-add core reading from raw column storage.
void Col2ImAddRaw(const float* cols, Tensor& out, int64_t n, int64_t kh,
                  int64_t kw, const ConvSpec& spec) {
  const int64_t c = out.size(1);
  const int64_t h = out.size(2);
  const int64_t w = out.size(3);
  const int64_t oh = ConvOutSize(h, kh, spec.stride, spec.padding);
  const int64_t ow = ConvOutSize(w, kw, spec.stride, spec.padding);
  float* po = out.data() + n * c * h * w;
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((ci * kh + ki) * kw + kj) * oh * ow;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * spec.stride + ki - spec.padding;
          if (ii < 0 || ii >= h) continue;
          float* dst_row = po + (ci * h + ii) * w;
          const float* src_row = src + oi * ow;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * spec.stride + kj - spec.padding;
            if (jj < 0 || jj >= w) continue;
            dst_row[jj] += src_row[oj];
          }
        }
      }
    }
  }
}

}  // namespace

int64_t ConvOutSize(int64_t in, int64_t kernel, int64_t stride,
                    int64_t padding) {
  const int64_t out = (in + 2 * padding - kernel) / stride + 1;
  GEO_CHECK_GT(out, 0) << "convolution output collapsed: in=" << in
                       << " kernel=" << kernel << " stride=" << stride
                       << " padding=" << padding;
  return out;
}

Tensor Im2Col(const Tensor& x, int64_t n, int64_t kh, int64_t kw,
              const ConvSpec& spec) {
  GEO_CHECK_EQ(x.ndim(), 4);
  const int64_t c = x.size(1);
  const int64_t oh = ConvOutSize(x.size(2), kh, spec.stride, spec.padding);
  const int64_t ow = ConvOutSize(x.size(3), kw, spec.stride, spec.padding);
  Tensor cols = Tensor::Uninitialized({c * kh * kw, oh * ow});
  Im2ColInto(x, n, kh, kw, spec, cols.data());
  return cols;
}

void Col2ImAdd(const Tensor& cols, Tensor& out, int64_t n, int64_t kh,
               int64_t kw, const ConvSpec& spec) {
  GEO_CHECK_EQ(out.ndim(), 4);
  const int64_t c = out.size(1);
  const int64_t oh = ConvOutSize(out.size(2), kh, spec.stride, spec.padding);
  const int64_t ow = ConvOutSize(out.size(3), kw, spec.stride, spec.padding);
  GEO_CHECK_EQ(cols.size(0), c * kh * kw);
  GEO_CHECK_EQ(cols.size(1), oh * ow);
  Col2ImAddRaw(cols.data(), out, n, kh, kw, spec);
}

Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                     const ConvSpec& spec) {
  GEO_CHECK_EQ(x.ndim(), 4);
  GEO_CHECK_EQ(w.ndim(), 4);
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t f = w.size(0);
  GEO_CHECK_EQ(w.size(1), c) << "Conv2d channel mismatch";
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t oh = ConvOutSize(x.size(2), kh, spec.stride, spec.padding);
  const int64_t ow = ConvOutSize(x.size(3), kw, spec.stride, spec.padding);
  const bool has_bias = bias.numel() > 0;
  if (has_bias) {
    GEO_CHECK_EQ(bias.numel(), f);
  }

  Tensor out = Tensor::Uninitialized({n, f, oh, ow});
  const float* pw = w.data();
  const float* pb = has_bias ? bias.data() : nullptr;
  float* po = out.data();
  const int64_t ck = c * kh * kw;
  const int64_t l = oh * ow;

  ForEachSample(n, [&](int64_t i) {
    float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, ck * l);
    Im2ColInto(x, i, kh, kw, spec, cols);
    float* out_i = po + i * f * l;
    // out[i] = W (f, ck) x cols (ck, l); beta=0 overwrites the
    // uninitialized output plane.
    Gemm(pw, cols, out_i, f, ck, l, {.beta = 0.0f});
    if (has_bias) {
      for (int64_t fi = 0; fi < f; ++fi) {
        float* row = out_i + fi * l;
        const float b = pb[fi];
        for (int64_t j = 0; j < l; ++j) row[j] += b;
      }
    }
  });
  return out;
}

namespace {

// Shared shape bookkeeping for the low-precision forwards.
struct LpConvDims {
  int64_t n, oh, ow, ck, l;
};

LpConvDims LpConvCheck(const Tensor& x, int64_t f, int64_t c, int64_t kh,
                       int64_t kw, const Tensor& bias, const ConvSpec& spec) {
  GEO_CHECK_EQ(x.ndim(), 4);
  GEO_CHECK_EQ(x.size(1), c) << "Conv2d channel mismatch";
  LpConvDims d;
  d.n = x.size(0);
  d.oh = ConvOutSize(x.size(2), kh, spec.stride, spec.padding);
  d.ow = ConvOutSize(x.size(3), kw, spec.stride, spec.padding);
  d.ck = c * kh * kw;
  d.l = d.oh * d.ow;
  if (bias.numel() > 0) {
    GEO_CHECK_EQ(bias.numel(), f);
  }
  return d;
}

void AddBiasRows(float* out_i, const float* pb, int64_t f, int64_t l) {
  for (int64_t fi = 0; fi < f; ++fi) {
    float* row = out_i + fi * l;
    const float b = pb[fi];
    for (int64_t j = 0; j < l; ++j) row[j] += b;
  }
}

}  // namespace

Tensor Conv2dForwardBf16(const Tensor& x, const uint16_t* w_bf16, int64_t f,
                         int64_t c, int64_t kh, int64_t kw, const Tensor& bias,
                         const ConvSpec& spec) {
  const LpConvDims d = LpConvCheck(x, f, c, kh, kw, bias, spec);
  Tensor out = Tensor::Uninitialized({d.n, f, d.oh, d.ow});
  const float* pb = bias.numel() > 0 ? bias.data() : nullptr;
  float* po = out.data();
  ForEachSample(d.n, [&](int64_t i) {
    float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, d.ck * d.l);
    Im2ColInto(x, i, kh, kw, spec, cols);
    float* out_i = po + i * f * d.l;
    GemmBf16(w_bf16, cols, out_i, f, d.ck, d.l, {.beta = 0.0f});
    if (pb != nullptr) AddBiasRows(out_i, pb, f, d.l);
  });
  return out;
}

Tensor Conv2dForwardInt8(const Tensor& x, const int8_t* w_q,
                         const float* w_scales, int64_t f, int64_t c,
                         int64_t kh, int64_t kw, float act_scale,
                         const Tensor& bias, const ConvSpec& spec) {
  const LpConvDims d = LpConvCheck(x, f, c, kh, kw, bias, spec);
  // Per-tensor activation scale: static (calibrated) when provided,
  // otherwise derived from the whole batch up front — never per sample,
  // so serial and parallel schedules quantize identically.
  if (act_scale <= 0.0f) {
    act_scale = SymmetricScale(AbsMax(x.data(), x.numel()));
  }
  Tensor out = Tensor::Uninitialized({d.n, f, d.oh, d.ow});
  const float* pb = bias.numel() > 0 ? bias.data() : nullptr;
  float* po = out.data();
  ForEachSample(d.n, [&](int64_t i) {
    float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, d.ck * d.l);
    Im2ColInto(x, i, kh, kw, spec, cols);
    int8_t* colsq = reinterpret_cast<int8_t*>(
        ThreadLocalWorkspace(kWorkspaceQuant, (d.ck * d.l + 3) / 4));
    QuantizeInt8(cols, d.ck * d.l, act_scale, colsq);
    float* out_i = po + i * f * d.l;
    Int8GemmOptions opts;
    opts.a_scales = w_scales;
    opts.a_scales_len = f;
    opts.b_scales = &act_scale;
    opts.b_scales_len = 1;
    GemmInt8(w_q, colsq, out_i, f, d.ck, d.l, opts);
    if (pb != nullptr) AddBiasRows(out_i, pb, f, d.l);
  });
  return out;
}

namespace {

// True when the patch matrix of sample i IS the (C, H·W) input plane,
// so even the implicit-im2col gather can be skipped.
bool Is1x1Direct(int64_t kh, int64_t kw, const ConvSpec& spec) {
  return kh == 1 && kw == 1 && spec.stride == 1 && spec.padding == 0;
}

// Stride-1 f32 convs always go through GemmConv: past the reference
// threshold it runs the direct im2col-free kernel, which beats both
// materialize+pack and the gather-pack at every depth. For strided
// shapes (and bf16, which has no direct kernel) the implicit gather
// only beats materialize+pack when the patch matrix is shallow (few
// rows re-reading the same input plane); for deep patch matrices the
// branchy row gather loses to the memcpy-based Im2ColInto followed by
// a contiguous pack. int8 is exempt: its win comes from quantizing the
// input once instead of once per kernel-tap replica, which dominates
// at every depth.
constexpr int64_t kImplicitGatherMaxK = 64;

template <typename T>
ConvImageView<T> MakeConvView(const T* plane, int64_t c, int64_t h, int64_t w,
                              int64_t kh, int64_t kw, const ConvSpec& spec,
                              int64_t oh, int64_t ow) {
  ConvImageView<T> view;
  view.x = plane;
  view.c = c;
  view.h = h;
  view.w = w;
  view.kh = kh;
  view.kw = kw;
  view.stride = spec.stride;
  view.pad = spec.padding;
  view.oh = oh;
  view.ow = ow;
  return view;
}

}  // namespace

Tensor Conv2dForwardFused(const Tensor& x, const Tensor& w, const Tensor& bias,
                          const ConvSpec& spec, EpilogueAct act,
                          float leaky_slope) {
  GEO_CHECK_EQ(x.ndim(), 4);
  GEO_CHECK_EQ(w.ndim(), 4);
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  const int64_t f = w.size(0);
  GEO_CHECK_EQ(w.size(1), c) << "Conv2d channel mismatch";
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const LpConvDims d = LpConvCheck(x, f, c, kh, kw, bias, spec);
  GEO_OBS_COUNT("fusion.conv_calls", 1);
  Tensor out = Tensor::Uninitialized({d.n, f, d.oh, d.ow});
  GemmEpilogue ep;
  ep.row_bias = bias.numel() > 0 ? bias.data() : nullptr;
  ep.act = act;
  ep.leaky_slope = leaky_slope;
  const float* pw = w.data();
  const float* px = x.data();
  float* po = out.data();
  const bool direct = Is1x1Direct(kh, kw, spec);
  if (direct) GEO_OBS_COUNT("fusion.conv_1x1", d.n);
  const bool implicit =
      !direct && (spec.stride == 1 || d.ck <= kImplicitGatherMaxK);
  ForEachSample(d.n, [&](int64_t i) {
    float* out_i = po + i * f * d.l;
    const float* plane = px + i * c * h * wd;
    GemmOptions opts;
    opts.beta = 0.0f;
    opts.epilogue = &ep;
    if (direct) {
      // 1×1 stride-1 unpadded: the input plane is the patch matrix.
      Gemm(pw, plane, out_i, f, c, d.l, opts);
    } else if (implicit) {
      const ConvImageView<float> view =
          MakeConvView(plane, c, h, wd, kh, kw, spec, d.oh, d.ow);
      GemmConv(pw, view, out_i, f, opts);
    } else {
      float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, d.ck * d.l);
      Im2ColInto(x, i, kh, kw, spec, cols);
      Gemm(pw, cols, out_i, f, d.ck, d.l, opts);
    }
  });
  return out;
}

Tensor Conv2dForwardFusedBf16(const Tensor& x, const uint16_t* w_bf16,
                              int64_t f, int64_t c, int64_t kh, int64_t kw,
                              const Tensor& bias, const ConvSpec& spec,
                              EpilogueAct act, float leaky_slope) {
  const LpConvDims d = LpConvCheck(x, f, c, kh, kw, bias, spec);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  GEO_OBS_COUNT("fusion.conv_calls", 1);
  Tensor out = Tensor::Uninitialized({d.n, f, d.oh, d.ow});
  GemmEpilogue ep;
  ep.row_bias = bias.numel() > 0 ? bias.data() : nullptr;
  ep.act = act;
  ep.leaky_slope = leaky_slope;
  const float* px = x.data();
  float* po = out.data();
  const bool direct = Is1x1Direct(kh, kw, spec);
  if (direct) GEO_OBS_COUNT("fusion.conv_1x1", d.n);
  const bool implicit = !direct && d.ck <= kImplicitGatherMaxK;
  ForEachSample(d.n, [&](int64_t i) {
    float* out_i = po + i * f * d.l;
    const float* plane = px + i * c * h * wd;
    GemmOptions opts;
    opts.beta = 0.0f;
    opts.epilogue = &ep;
    if (direct) {
      GemmBf16(w_bf16, plane, out_i, f, c, d.l, opts);
    } else if (implicit) {
      const ConvImageView<float> view =
          MakeConvView(plane, c, h, wd, kh, kw, spec, d.oh, d.ow);
      GemmConvBf16(w_bf16, view, out_i, f, opts);
    } else {
      float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, d.ck * d.l);
      Im2ColInto(x, i, kh, kw, spec, cols);
      GemmBf16(w_bf16, cols, out_i, f, d.ck, d.l, opts);
    }
  });
  return out;
}

Tensor Conv2dForwardFusedInt8(const Tensor& x, const int8_t* w_q,
                              const float* w_scales, int64_t f, int64_t c,
                              int64_t kh, int64_t kw, float act_scale,
                              const Tensor& bias, const ConvSpec& spec,
                              EpilogueAct act, float leaky_slope) {
  const LpConvDims d = LpConvCheck(x, f, c, kh, kw, bias, spec);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  GEO_OBS_COUNT("fusion.conv_calls", 1);
  if (act_scale <= 0.0f) {
    act_scale = SymmetricScale(AbsMax(x.data(), x.numel()));
  }
  // Quantize the input batch once, up front, on the calling thread:
  // elementwise quantization commutes with the im2col gather (and the
  // zero padding quantizes to 0), so this matches quantizing the patch
  // matrix bitwise while touching each input element once instead of
  // once per kernel-tap replica. Workers read the buffer through the
  // captured pointer; their own workspace slots are untouched.
  int8_t* xq = reinterpret_cast<int8_t*>(
      ThreadLocalWorkspace(kWorkspaceQuant, (x.numel() + 3) / 4));
  QuantizeInt8(x.data(), x.numel(), act_scale, xq);
  Tensor out = Tensor::Uninitialized({d.n, f, d.oh, d.ow});
  GemmEpilogue ep;
  ep.row_bias = bias.numel() > 0 ? bias.data() : nullptr;
  ep.act = act;
  ep.leaky_slope = leaky_slope;
  float* po = out.data();
  const float act_scale_val = act_scale;
  const bool direct = Is1x1Direct(kh, kw, spec);
  if (direct) GEO_OBS_COUNT("fusion.conv_1x1", d.n);
  ForEachSample(d.n, [&](int64_t i) {
    float* out_i = po + i * f * d.l;
    const int8_t* plane = xq + i * c * h * wd;
    Int8GemmOptions opts;
    opts.a_scales = w_scales;
    opts.a_scales_len = f;
    opts.b_scales = &act_scale_val;
    opts.b_scales_len = 1;
    opts.epilogue = &ep;
    if (direct) {
      GemmInt8(w_q, plane, out_i, f, c, d.l, opts);
    } else {
      const ConvImageView<int8_t> view =
          MakeConvView(plane, c, h, wd, kh, kw, spec, d.oh, d.ow);
      GemmConvInt8(w_q, view, out_i, f, opts);
    }
  });
  return out;
}

Conv2dGrads Conv2dBackward(const Tensor& grad_out, const Tensor& x,
                           const Tensor& w, bool has_bias,
                           const ConvSpec& spec) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t f = w.size(0);
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t oh = grad_out.size(2);
  const int64_t ow = grad_out.size(3);
  const int64_t ck = c * kh * kw;
  const int64_t l = oh * ow;

  Conv2dGrads grads;
  grads.grad_x = Tensor::Zeros(x.shape());
  grads.grad_w = Tensor::Zeros(w.shape());
  grads.grad_bias = has_bias ? Tensor::Zeros({f}) : Tensor();

  const float* pg = grad_out.data();
  const float* pw = w.data();

  // Per-sample partial weight/bias grads accumulate under a lock-free
  // scheme: each worker writes into its own accumulator, merged after.
  const int workers =
      GetDefaultDevice() == Device::kParallel
          ? std::max(1, ThreadPool::Global().num_threads())
          : 1;
  std::vector<Tensor> gw_parts;
  std::vector<Tensor> gb_parts;
  for (int t = 0; t < workers; ++t) {
    gw_parts.push_back(Tensor::Zeros({f, ck}));
    if (has_bias) gb_parts.push_back(Tensor::Zeros({f}));
  }

  auto body = [&](int64_t begin, int64_t end, int worker) {
    float* gw = gw_parts[worker].data();
    float* gb = has_bias ? gb_parts[worker].data() : nullptr;
    for (int64_t i = begin; i < end; ++i) {
      const float* g_i = pg + i * f * l;
      // grad wrt weights: gw += g_i (f, l) x cols^T (l, ck). The kernel
      // consumes cols (ck, l) as a transposed operand directly.
      float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, ck * l);
      Im2ColInto(x, i, kh, kw, spec, cols);
      Gemm(g_i, cols, gw, f, l, ck, {.beta = 1.0f, .trans_b = true});
      // grad wrt input: W^T (ck, f) x g_i (f, l) -> (ck, l), col2im.
      // W (f, ck) is consumed transposed, and beta=0 overwrites the
      // workspace, so neither W^T nor a zeroed buffer is materialized.
      float* gcols = ThreadLocalWorkspace(kWorkspaceConvCols, ck * l);
      Gemm(pw, g_i, gcols, ck, f, l, {.beta = 0.0f, .trans_a = true});
      Col2ImAddRaw(gcols, grads.grad_x, i, kh, kw, spec);
      if (has_bias) {
        for (int64_t fi = 0; fi < f; ++fi) {
          const float* row = g_i + fi * l;
          double s = 0.0;
          for (int64_t j = 0; j < l; ++j) s += row[j];
          gb[fi] += static_cast<float>(s);
        }
      }
    }
  };

  if (workers > 1 && n > 1) {
    const int64_t per = (n + workers - 1) / workers;
    std::vector<std::future<void>> futs;
    for (int t = 0; t < workers; ++t) {
      const int64_t begin = t * per;
      const int64_t end = std::min<int64_t>(n, begin + per);
      if (begin >= end) break;
      futs.push_back(ThreadPool::Global().Submit(
          [&body, begin, end, t] { body(begin, end, t); }));
    }
    for (auto& fu : futs) fu.get();
  } else {
    body(0, n, 0);
  }

  for (int t = 0; t < workers; ++t) {
    grads.grad_w.Reshape({f, ck}).AddInPlace(gw_parts[t]);
    if (has_bias) grads.grad_bias.AddInPlace(gb_parts[t]);
  }
  return grads;
}

Tensor ConvTranspose2dForward(const Tensor& x, const Tensor& w,
                              const Tensor& bias, const ConvSpec& spec) {
  GEO_CHECK_EQ(x.ndim(), 4);
  GEO_CHECK_EQ(w.ndim(), 4);
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  GEO_CHECK_EQ(w.size(0), c) << "ConvTranspose2d channel mismatch";
  const int64_t f = w.size(1);
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  const int64_t oh = (h - 1) * spec.stride - 2 * spec.padding + kh;
  const int64_t ow = (wd - 1) * spec.stride - 2 * spec.padding + kw;
  GEO_CHECK(oh > 0 && ow > 0);
  const bool has_bias = bias.numel() > 0;

  const int64_t fk = f * kh * kw;
  Tensor out = Tensor::Zeros({n, f, oh, ow});
  const int64_t l = h * wd;
  const float* px = x.data();
  const float* pw = w.data();
  ForEachSample(n, [&](int64_t i) {
    // cols = W^T (fk, c) x x[i] (c, l); W (c, fk) is consumed
    // transposed in place of the old materialized (fk, c) matrix.
    float* cols = ThreadLocalWorkspace(kWorkspaceConvCols, fk * l);
    Gemm(pw, px + i * c * l, cols, fk, c, l, {.beta = 0.0f, .trans_a = true});
    Col2ImAddRaw(cols, out, i, kh, kw, spec);
  });
  if (has_bias) {
    GEO_CHECK_EQ(bias.numel(), f);
    float* po = out.data();
    const float* pb = bias.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t fi = 0; fi < f; ++fi) {
        float* plane = po + (i * f + fi) * oh * ow;
        for (int64_t j = 0; j < oh * ow; ++j) plane[j] += pb[fi];
      }
    }
  }
  return out;
}

ConvTranspose2dGrads ConvTranspose2dBackward(const Tensor& grad_out,
                                             const Tensor& x, const Tensor& w,
                                             bool has_bias,
                                             const ConvSpec& spec) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t f = w.size(1);
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t h = x.size(2);
  const int64_t wd = x.size(3);
  const int64_t l = h * wd;
  const int64_t fk = f * kh * kw;

  ConvTranspose2dGrads grads;
  grads.grad_x = Tensor::Zeros(x.shape());
  grads.grad_w = Tensor::Zeros(w.shape());
  grads.grad_bias = has_bias ? Tensor::Zeros({f}) : Tensor();

  const float* px = x.data();
  const float* pw = w.data();
  float* pgx = grads.grad_x.data();
  float* pgw = grads.grad_w.data();
  float* pgb = has_bias ? grads.grad_bias.data() : nullptr;
  const int64_t gl = grad_out.size(2) * grad_out.size(3);
  // im2col over grad_out must land back on x's spatial extent.
  GEO_CHECK_EQ(
      ConvOutSize(grad_out.size(2), kh, spec.stride, spec.padding), h);
  GEO_CHECK_EQ(
      ConvOutSize(grad_out.size(3), kw, spec.stride, spec.padding), wd);

  for (int64_t i = 0; i < n; ++i) {
    // dcols = im2col(grad_out[i]) with the same spec: (fk, l).
    float* dcols = ThreadLocalWorkspace(kWorkspaceIm2Col, fk * l);
    Im2ColInto(grad_out, i, kh, kw, spec, dcols);
    // grad_x[i] = W (c, fk) x dcols (fk, l).
    Gemm(pw, dcols, pgx + i * c * l, c, fk, l, {.beta = 0.0f});
    // grad_w += x[i] (c, l) x dcols^T (l, fk); dcols is consumed
    // transposed, dropping the old materialized Transpose2d.
    Gemm(px + i * c * l, dcols, pgw, c, l, fk, {.beta = 1.0f, .trans_b = true});
    if (has_bias) {
      const float* pg = grad_out.data() + i * f * gl;
      for (int64_t fi = 0; fi < f; ++fi) {
        double s = 0.0;
        const float* plane = pg + fi * gl;
        for (int64_t j = 0; j < gl; ++j) s += plane[j];
        pgb[fi] += static_cast<float>(s);
      }
    }
  }
  return grads;
}

std::pair<Tensor, std::vector<int64_t>> MaxPool2dForward(const Tensor& x,
                                                         int64_t kernel) {
  GEO_CHECK_EQ(x.ndim(), 4);
  GEO_CHECK_GE(kernel, 1);
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t w = x.size(3);
  GEO_CHECK(h % kernel == 0 && w % kernel == 0)
      << "MaxPool2d expects dims divisible by kernel; got " << h << "x" << w
      << " kernel " << kernel;
  const int64_t oh = h / kernel;
  const int64_t ow = w / kernel;
  Tensor out = Tensor::Uninitialized({n, c, oh, ow});
  std::vector<int64_t> argmax(out.numel());
  const float* px = x.data();
  float* po = out.data();
  int64_t* pam = argmax.data();
  // Each (n, c) plane is independent; parallelize with the same device
  // gate as the conv sample loops.
  ForEachSample(n * c, [&](int64_t nc) {
    const float* plane = px + nc * h * w;
    const int64_t plane_off = nc * h * w;
    int64_t oidx = nc * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        float best = plane[(oi * kernel) * w + oj * kernel];
        int64_t best_off = (oi * kernel) * w + oj * kernel;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            const int64_t off = (oi * kernel + ki) * w + oj * kernel + kj;
            if (plane[off] > best) {
              best = plane[off];
              best_off = off;
            }
          }
        }
        po[oidx] = best;
        pam[oidx] = plane_off + best_off;
        ++oidx;
      }
    }
  });
  return {out, std::move(argmax)};
}

Tensor MaxPool2dBackward(const Tensor& grad_out, const Shape& input_shape,
                         const std::vector<int64_t>& argmax) {
  Tensor grad_x = Tensor::Zeros(input_shape);
  GEO_CHECK_EQ(static_cast<int64_t>(argmax.size()), grad_out.numel());
  const float* pg = grad_out.data();
  float* px = grad_x.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) px[argmax[i]] += pg[i];
  return grad_x;
}

Tensor AvgPool2dForward(const Tensor& x, int64_t kernel) {
  GEO_CHECK_EQ(x.ndim(), 4);
  GEO_CHECK_GE(kernel, 1);
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t w = x.size(3);
  GEO_CHECK(h % kernel == 0 && w % kernel == 0)
      << "AvgPool2d expects dims divisible by kernel";
  const int64_t oh = h / kernel;
  const int64_t ow = w / kernel;
  Tensor out = Tensor::Uninitialized({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  const float* px = x.data();
  float* po = out.data();
  ForEachSample(n * c, [&](int64_t nc) {
    const float* plane = px + nc * h * w;
    float* out_plane = po + nc * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        float acc = 0.0f;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            acc += plane[(oi * kernel + ki) * w + oj * kernel + kj];
          }
        }
        out_plane[oi * ow + oj] = acc * inv;
      }
    }
  });
  return out;
}

Tensor AvgPool2dBackward(const Tensor& grad_out, const Shape& input_shape,
                         int64_t kernel) {
  Tensor grad_x = Tensor::Zeros(input_shape);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t h = input_shape[2];
  const int64_t w = input_shape[3];
  const int64_t oh = h / kernel;
  const int64_t ow = w / kernel;
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  const float* pg = grad_out.data();
  float* px = grad_x.data();
  ForEachSample(n * c, [&](int64_t nc) {
    const float* g_plane = pg + nc * oh * ow;
    float* x_plane = px + nc * h * w;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        const float g = g_plane[oi * ow + oj] * inv;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            x_plane[(oi * kernel + ki) * w + oj * kernel + kj] += g;
          }
        }
      }
    }
  });
  return grad_x;
}

Tensor UpsampleNearest2x(const Tensor& x) {
  GEO_CHECK_EQ(x.ndim(), 4);
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t h = x.size(2);
  const int64_t w = x.size(3);
  Tensor out = Tensor::Uninitialized({n, c, h * 2, w * 2});
  const float* px = x.data();
  float* po = out.data();
  ForEachSample(n * c, [&](int64_t nc) {
    const float* in_plane = px + nc * h * w;
    float* out_plane = po + nc * h * w * 4;
    for (int64_t i = 0; i < h; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        const float v = in_plane[i * w + j];
        float* base = out_plane + (2 * i) * (2 * w) + 2 * j;
        base[0] = v;
        base[1] = v;
        base[2 * w] = v;
        base[2 * w + 1] = v;
      }
    }
  });
  return out;
}

Tensor UpsampleNearest2xBackward(const Tensor& grad_out) {
  GEO_CHECK_EQ(grad_out.ndim(), 4);
  const int64_t n = grad_out.size(0);
  const int64_t c = grad_out.size(1);
  const int64_t oh = grad_out.size(2);
  const int64_t ow = grad_out.size(3);
  GEO_CHECK(oh % 2 == 0 && ow % 2 == 0);
  const int64_t h = oh / 2;
  const int64_t w = ow / 2;
  Tensor grad_x = Tensor::Zeros({n, c, h, w});
  const float* pg = grad_out.data();
  float* px = grad_x.data();
  ForEachSample(n * c, [&](int64_t nc) {
    const float* g_plane = pg + nc * oh * ow;
    float* x_plane = px + nc * h * w;
    for (int64_t i = 0; i < h; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        const float* base = g_plane + (2 * i) * ow + 2 * j;
        x_plane[i * w + j] = base[0] + base[1] + base[ow] + base[ow + 1];
      }
    }
  });
  return grad_x;
}

}  // namespace geotorch::tensor
