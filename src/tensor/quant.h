#ifndef GEOTORCH_TENSOR_QUANT_H_
#define GEOTORCH_TENSOR_QUANT_H_

#include <cstdint>

namespace geotorch::tensor {

/// Numeric conversion helpers for the low-precision inference path
/// (DESIGN.md §10): bf16 storage conversion and int8 symmetric
/// quantization. All conversions are element-wise and deterministic.

/// f32 -> bf16 with round-to-nearest-even (the upper 16 bits of the
/// f32 pattern after adding the rounding increment). NaNs stay NaN.
inline uint16_t Bf16FromF32(float x) {
  uint32_t u;
  __builtin_memcpy(&u, &x, sizeof(u));
  if ((u & 0x7F800000u) == 0x7F800000u && (u & 0x007FFFFFu) != 0) {
    return static_cast<uint16_t>((u >> 16) | 0x0040u);  // quiet the NaN
  }
  u += 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<uint16_t>(u >> 16);
}

/// bf16 -> f32: place the pattern in the upper half, zero the rest.
inline float F32FromBf16(uint16_t h) {
  const uint32_t u = static_cast<uint32_t>(h) << 16;
  float x;
  __builtin_memcpy(&x, &u, sizeof(x));
  return x;
}

/// f32 value rounded through bf16 and widened back — what a bf16-stored
/// operand contributes to an f32-accumulate GEMM.
inline float RoundThroughBf16(float x) { return F32FromBf16(Bf16FromF32(x)); }

void ConvertToBf16(const float* src, uint16_t* dst, int64_t n);
void ConvertBf16ToF32(const uint16_t* src, float* dst, int64_t n);

/// max(|x|) over n elements; 0 for empty input.
float AbsMax(const float* x, int64_t n);

/// Symmetric (zero_point = 0) scale mapping [-absmax, absmax] onto
/// [-127, 127]. Zero / non-finite absmax degrades to scale 1 so an
/// all-zero tensor quantizes to all-zero rather than dividing by zero.
float SymmetricScale(float absmax);

/// q = clamp(round(x / scale), -127, 127), round half to even (lrintf
/// under the default rounding mode). Dequantization is q * scale, so
/// per-element |x - q*scale| <= scale/2 whenever |x| <= 127*scale.
void QuantizeInt8(const float* x, int64_t n, float scale, int8_t* out);

/// Per-channel symmetric quantization of a (rows, cols) row-major
/// matrix: one scale per row (QuantizeRowsInt8) or per column
/// (QuantizeColsInt8). `scales` receives rows (resp. cols) entries.
void QuantizeRowsInt8(const float* w, int64_t rows, int64_t cols, int8_t* out,
                      float* scales);
void QuantizeColsInt8(const float* w, int64_t rows, int64_t cols, int8_t* out,
                      float* scales);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_QUANT_H_
