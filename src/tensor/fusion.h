#ifndef GEOTORCH_TENSOR_FUSION_H_
#define GEOTORCH_TENSOR_FUSION_H_

namespace geotorch::tensor {

/// Runtime kill switch for the fused eval path: GEMM bias+activation
/// epilogues, BatchNorm folding into Conv2d/Linear weights, and the
/// im2col-free conv lowering. Mirrors GEOTORCH_POOL /
/// GEOTORCH_SPATIAL_PARALLEL: set GEOTORCH_FUSION to "0", "off", or
/// "false" in the environment to restore the pre-fusion eval path
/// (bitwise-identical outputs for every unfolded layer; see
/// DESIGN.md §13). Training and calibration never use fusion, so the
/// switch only affects inference.
bool FusionEnabled();

/// Overrides the compiled-in default (on unless the environment says
/// otherwise). Used by tests and benches; not thread-safe with respect
/// to concurrently running forwards.
void SetFusionEnabled(bool on);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_FUSION_H_
