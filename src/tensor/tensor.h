#ifndef GEOTORCH_TENSOR_TENSOR_H_
#define GEOTORCH_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "tensor/shape.h"
#include "tensor/storage.h"

namespace geotorch::tensor {

/// A dense, contiguous, row-major float32 tensor with shared storage.
///
/// Copying a Tensor is cheap (shares storage); Clone() deep-copies.
/// Reshape() returns a tensor sharing the same storage. All ops in
/// ops.h / conv.h produce freshly allocated outputs.
class Tensor {
 public:
  /// An empty (rank-1, zero-element) tensor.
  Tensor();
  /// Zero-initialized tensor of the given shape (storage may be a
  /// recycled pool block, so zeroing is explicit, not incidental).
  explicit Tensor(Shape shape);

  // --- Factories -----------------------------------------------------
  static Tensor Zeros(Shape shape);
  /// Tensor whose contents are NOT initialized. Only for call sites
  /// that overwrite every element before reading any — with pooled
  /// storage the buffer holds stale bytes from a previous tensor.
  static Tensor Uninitialized(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Values copied from `values`; size must match the shape.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  /// A rank-0-like scalar stored as shape {1}.
  static Tensor Scalar(float value);
  /// {0, 1, ..., n-1} as a rank-1 tensor.
  static Tensor Arange(int64_t n);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor Randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  // --- Introspection ---------------------------------------------------
  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  /// Size of dimension `dim`; negative indices count from the back.
  int64_t size(int dim) const;
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return storage_->data() + offset_; }
  const float* data() const { return storage_->data() + offset_; }

  /// Element access by multi-index (bounds-checked). For tests and
  /// small-scale code; kernels use data() directly.
  float& at(std::initializer_list<int64_t> index);
  float at(std::initializer_list<int64_t> index) const;

  /// Flat element access (bounds-checked).
  float& flat(int64_t i);
  float flat(int64_t i) const;

  // --- Storage-sharing views ------------------------------------------
  /// Same elements, new shape (must preserve numel). Shares storage.
  /// One dimension may be -1 (inferred).
  Tensor Reshape(Shape shape) const;
  /// Deep copy with its own storage.
  Tensor Clone() const;
  /// True when both tensors share the same underlying buffer.
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  // --- Mutation ---------------------------------------------------------
  void Fill(float value);
  /// this += other (shapes must match exactly). In-place; used for
  /// gradient accumulation.
  void AddInPlace(const Tensor& other);
  /// this *= s.
  void ScaleInPlace(float s);

  // --- Conversion --------------------------------------------------------
  std::vector<float> ToVector() const;
  /// Compact human-readable rendering (shape + up to `max_values` values).
  std::string ToString(int64_t max_values = 16) const;

 private:
  std::shared_ptr<Storage> storage_;
  int64_t offset_ = 0;
  Shape shape_;
  int64_t numel_ = 0;
};

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_TENSOR_H_
