// bf16-storage, f32-accumulate GEMM. Same BLIS-style blocking as the
// f32 kernel in gemm.cc, with two changes:
//
//   - Operands are rounded to bf16 at packing time and stored as raw
//     uint16 in the packed panels (half the bytes of the f32 panels,
//     so the streaming operand costs half the cache/memory traffic).
//     Both panels interleave consecutive K values in PAIRS: element
//     (p, r) of an A micro-panel lives at (p/2 * kMR + r) * 2 + p%2,
//     and likewise for B with kNRLp columns. Odd K tails pad the
//     second slot of the last pair with bf16 zero.
//   - On AVX512-BF16 machines the micro-kernel consumes a pair per
//     step with _mm512_dpbf16_ps: one 32-bit broadcast of an A pair
//     against a 512-bit load of 16 interleaved B column pairs, which
//     retires 32 bf16 MACs per instruction (~2x the f32 FMA flops on
//     the bench host). Elsewhere a portable widen-and-FMA loop over
//     the same panel layout is used.
//
// Accumulation is f32 with the K-blocking order fixed across the serial
// and parallel paths, so results are bitwise identical for a given
// binary (serial == parallel), and the only difference from f32 GEMM is
// the bf16 rounding of the operands.

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "core/memory.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/device.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"

#if defined(__AVX512BF16__) && defined(__AVX512F__)
#define GEO_GEMM_BF16_DPBF16 1
#include <immintrin.h>
#endif

namespace geotorch::tensor {
namespace {

using namespace gemm_internal;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// B is either an f32 matrix (rounded to bf16 while packing) or an
// already-bf16 matrix (packed verbatim). A transposed view is only
// supported for the f32 source, which is all the callers need.
struct LpView {
  const float* a;          // one of a / a_bf16 is set
  const uint16_t* a_bf16;  // row-major (m, k), never transposed
  const float* b_f32;      // one of b_f32 / b_bf16 / packed_b is set
  const uint16_t* b_bf16;  // row-major (k, n), never transposed
  const uint16_t* packed_b;  // pre-packed panels (PackBf16B layout)
  int64_t m, k, n;
  bool ta, tb;
  // Implicit im2col B (f32 image, rounded to bf16 while packing).
  const ConvImageView<float>* conv_b = nullptr;
  uint16_t A(int64_t i, int64_t p) const {
    if (a_bf16 != nullptr) return a_bf16[i * k + p];
    return Bf16FromF32(ta ? a[p * m + i] : a[i * k + p]);
  }
  uint16_t B(int64_t p, int64_t j) const {
    if (b_bf16 != nullptr) return b_bf16[p * n + j];
    return Bf16FromF32(tb ? b_f32[j * k + p] : b_f32[p * n + j]);
  }
};

// Packs A micro-panels in the pair-interleaved bf16 layout described
// in the file comment; rows beyond mc and K beyond kc pad with zero.
void PackABf16(const LpView& v, int64_t ic, int64_t mc, int64_t pc, int64_t kc,
               uint16_t* __restrict ap) {
  const int64_t kc2 = CeilDiv(kc, 2);
  for (int64_t pi = 0; pi * kMR < mc; ++pi) {
    uint16_t* panel = ap + pi * kc2 * kMR * 2;
    const int64_t rows = std::min(kMR, mc - pi * kMR);
    const int64_t base_i = ic + pi * kMR;
    for (int64_t p2 = 0; p2 < kc2; ++p2) {
      uint16_t* dst = panel + p2 * kMR * 2;
      for (int64_t t = 0; t < 2; ++t) {
        const int64_t p = p2 * 2 + t;
        if (p < kc) {
          int64_t r = 0;
          for (; r < rows; ++r) dst[r * 2 + t] = v.A(base_i + r, pc + p);
          for (; r < kMR; ++r) dst[r * 2 + t] = 0;
        } else {
          for (int64_t r = 0; r < kMR; ++r) dst[r * 2 + t] = 0;
        }
      }
    }
  }
}

// Packs B into kNRLp-column micro-panels of pair-interleaved bf16.
void PackBBf16(const LpView& v, int64_t pc, int64_t kc, int64_t jc, int64_t nc,
               uint16_t* __restrict bp) {
  const int64_t kc2 = CeilDiv(kc, 2);
  if (v.conv_b != nullptr) {
    // Implicit im2col: gather each virtual row once at full block width
    // into an L1 stage, then deal it into the pair-interleaved panels.
    alignas(64) float stage[kNC];
    for (int64_t p = 0; p < kc; ++p) {
      v.conv_b->GatherRow(pc + p, jc, nc, stage);
      const int64_t p2 = p / 2;
      const int64_t t = p % 2;
      for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
        const int64_t cols = std::min(kNRLp, nc - pj * kNRLp);
        uint16_t* __restrict dst = bp + (pj * kc2 + p2) * kNRLp * 2;
        const float* __restrict src = stage + pj * kNRLp;
        int64_t c = 0;
        for (; c < cols; ++c) dst[c * 2 + t] = Bf16FromF32(src[c]);
        for (; c < kNRLp; ++c) dst[c * 2 + t] = 0;
      }
    }
    if (kc % 2 == 1) {
      // Odd K tail: zero the second slot of the last pair.
      const int64_t p2 = kc / 2;
      for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
        uint16_t* __restrict dst = bp + (pj * kc2 + p2) * kNRLp * 2;
        for (int64_t c = 0; c < kNRLp; ++c) dst[c * 2 + 1] = 0;
      }
    }
    return;
  }
  for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
    uint16_t* panel = bp + pj * kc2 * kNRLp * 2;
    const int64_t cols = std::min(kNRLp, nc - pj * kNRLp);
    const int64_t base_j = jc + pj * kNRLp;
    for (int64_t p2 = 0; p2 < kc2; ++p2) {
      uint16_t* dst = panel + p2 * kNRLp * 2;
      for (int64_t t = 0; t < 2; ++t) {
        const int64_t p = p2 * 2 + t;
        if (p < kc) {
          int64_t c = 0;
          for (; c < cols; ++c) dst[c * 2 + t] = v.B(pc + p, base_j + c);
          for (; c < kNRLp; ++c) dst[c * 2 + t] = 0;
        } else {
          for (int64_t c = 0; c < kNRLp; ++c) dst[c * 2 + t] = 0;
        }
      }
    }
  }
}

#if defined(GEO_GEMM_BF16_DPBF16)

// AVX512-BF16 micro-kernel: 6x32 f32 tile in acc[kMR][2] zmm, one
// vdpbf16ps per (row, half-tile) per K pair.
void MicroKernelBf16(int64_t kc2, const uint16_t* __restrict ap,
                     const uint16_t* __restrict bp, float* __restrict c,
                     int64_t ldc, int64_t rows, int64_t cols, float beta_eff,
                     const GemmEpilogue* ep, int64_t row0, int64_t col0) {
  __m512 acc[kMR][2];
  for (int64_t r = 0; r < kMR; ++r)
    for (int64_t l = 0; l < 2; ++l) acc[r][l] = _mm512_setzero_ps();
  for (int64_t p2 = 0; p2 < kc2; ++p2) {
    const uint16_t* __restrict b_slice = bp + p2 * kNRLp * 2;
    const __m512bh b0 = (__m512bh)_mm512_loadu_si512(b_slice);
    const __m512bh b1 = (__m512bh)_mm512_loadu_si512(b_slice + 32);
    const uint16_t* __restrict a_slice = ap + p2 * kMR * 2;
    for (int64_t r = 0; r < kMR; ++r) {
      int32_t pair;
      std::memcpy(&pair, a_slice + r * 2, sizeof(pair));
      const __m512bh av = (__m512bh)_mm512_set1_epi32(pair);
      acc[r][0] = _mm512_dpbf16_ps(acc[r][0], av, b0);
      acc[r][1] = _mm512_dpbf16_ps(acc[r][1], av, b1);
    }
  }
  if (rows == kMR && cols == kNRLp) {
    for (int64_t r = 0; r < kMR; ++r) {
      float* __restrict c_row = c + r * ldc;
      for (int64_t l = 0; l < 2; ++l) {
        __m512 sum = acc[r][l];
        if (beta_eff == 1.0f) {
          sum = _mm512_add_ps(_mm512_loadu_ps(c_row + l * 16), sum);
        } else if (beta_eff != 0.0f) {
          sum = _mm512_fmadd_ps(_mm512_set1_ps(beta_eff),
                                _mm512_loadu_ps(c_row + l * 16), sum);
        }
        _mm512_storeu_ps(c_row + l * 16, sum);
      }
    }
    if (ep != nullptr) {
      for (int64_t r = 0; r < rows; ++r)
        ApplyEpilogueRow(c + r * ldc, cols, ep->row_bias, row0 + r,
                         ep->col_bias != nullptr ? ep->col_bias + col0 : nullptr,
                         *ep);
    }
    return;
  }
  alignas(64) float spill[kMR * kNRLp];
  for (int64_t r = 0; r < kMR; ++r) {
    _mm512_storeu_ps(spill + r * kNRLp, acc[r][0]);
    _mm512_storeu_ps(spill + r * kNRLp + 16, acc[r][1]);
  }
  for (int64_t r = 0; r < rows; ++r) {
    const float* __restrict acc_row = spill + r * kNRLp;
    float* __restrict c_row = c + r * ldc;
    if (beta_eff == 0.0f) {
      for (int64_t j = 0; j < cols; ++j) c_row[j] = acc_row[j];
    } else if (beta_eff == 1.0f) {
      for (int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
    } else {
      for (int64_t j = 0; j < cols; ++j)
        c_row[j] = beta_eff * c_row[j] + acc_row[j];
    }
  }
  if (ep != nullptr) {
    for (int64_t r = 0; r < rows; ++r)
      ApplyEpilogueRow(c + r * ldc, cols, ep->row_bias, row0 + r,
                       ep->col_bias != nullptr ? ep->col_bias + col0 : nullptr,
                       *ep);
  }
}

#else  // !GEO_GEMM_BF16_DPBF16

// Portable fallback over the same pair-interleaved panels: widen each
// bf16 to f32 (zero-extend + 16-bit shift) and FMA with GCC vector
// extensions at the widest lane the build allows.
#if defined(__AVX512F__)
constexpr int64_t kLaneB = 16;
#elif defined(__AVX__)
constexpr int64_t kLaneB = 8;
#else
constexpr int64_t kLaneB = 4;
#endif
typedef float VecFB __attribute__((vector_size(kLaneB * 4), aligned(4)));
constexpr int64_t kLanesPerRowB = kNRLp / kLaneB;
static_assert(kNRLp % kLaneB == 0);

inline VecFB LoadLaneB(const float* p) {
  VecFB v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

void MicroKernelBf16(int64_t kc2, const uint16_t* __restrict ap,
                     const uint16_t* __restrict bp, float* __restrict c,
                     int64_t ldc, int64_t rows, int64_t cols, float beta_eff,
                     const GemmEpilogue* ep, int64_t row0, int64_t col0) {
  VecFB acc[kMR][kLanesPerRowB] = {};
  alignas(64) float bw0[kNRLp], bw1[kNRLp];
  for (int64_t p2 = 0; p2 < kc2; ++p2) {
    const uint16_t* __restrict b_slice = bp + p2 * kNRLp * 2;
    for (int64_t j = 0; j < kNRLp; ++j) {
      bw0[j] = F32FromBf16(b_slice[j * 2]);
      bw1[j] = F32FromBf16(b_slice[j * 2 + 1]);
    }
    const uint16_t* __restrict a_slice = ap + p2 * kMR * 2;
    for (int64_t r = 0; r < kMR; ++r) {
      const VecFB av0 = F32FromBf16(a_slice[r * 2]) - VecFB{};  // broadcast
      const VecFB av1 = F32FromBf16(a_slice[r * 2 + 1]) - VecFB{};
      for (int64_t l = 0; l < kLanesPerRowB; ++l)
        acc[r][l] += av0 * LoadLaneB(bw0 + l * kLaneB) +
                     av1 * LoadLaneB(bw1 + l * kLaneB);
    }
  }
  alignas(64) float spill[kMR * kNRLp];
  for (int64_t r = 0; r < kMR; ++r)
    __builtin_memcpy(spill + r * kNRLp, acc[r], sizeof(acc[r]));
  for (int64_t r = 0; r < rows; ++r) {
    const float* __restrict acc_row = spill + r * kNRLp;
    float* __restrict c_row = c + r * ldc;
    if (beta_eff == 0.0f) {
      for (int64_t j = 0; j < cols; ++j) c_row[j] = acc_row[j];
    } else if (beta_eff == 1.0f) {
      for (int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
    } else {
      for (int64_t j = 0; j < cols; ++j)
        c_row[j] = beta_eff * c_row[j] + acc_row[j];
    }
  }
  if (ep != nullptr) {
    for (int64_t r = 0; r < rows; ++r)
      ApplyEpilogueRow(c + r * ldc, cols, ep->row_bias, row0 + r,
                       ep->col_bias != nullptr ? ep->col_bias + col0 : nullptr,
                       *ep);
  }
}

#endif  // GEO_GEMM_BF16_DPBF16

void MacroKernelBf16(const uint16_t* ap, const uint16_t* bp, float* c,
                     int64_t ldc, int64_t ic, int64_t mc, int64_t jc,
                     int64_t nc, int64_t kc, float beta_eff,
                     const GemmEpilogue* ep) {
  const int64_t kc2 = CeilDiv(kc, 2);
  for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
    const int64_t cols = std::min(kNRLp, nc - pj * kNRLp);
    for (int64_t pi = 0; pi * kMR < mc; ++pi) {
      const int64_t rows = std::min(kMR, mc - pi * kMR);
      MicroKernelBf16(kc2, ap + pi * kc2 * kMR * 2, bp + pj * kc2 * kNRLp * 2,
                      c + (ic + pi * kMR) * ldc + jc + pj * kNRLp, ldc, rows,
                      cols, beta_eff, ep, ic + pi * kMR, jc + pj * kNRLp);
    }
  }
}

void GemmRegionBf16(const LpView& v, float* c, float beta, int64_t mb,
                    int64_t me, int64_t nb, int64_t ne,
                    const GemmEpilogue* epilogue) {
  for (int64_t jc = nb; jc < ne; jc += kNC) {
    const int64_t nc = std::min(kNC, ne - jc);
    for (int64_t pc = 0; pc < v.k; pc += kKC) {
      const int64_t kc = std::min(kKC, v.k - pc);
      const int64_t kc2 = CeilDiv(kc, 2);
      const GemmEpilogue* ep = (pc + kc == v.k) ? epilogue : nullptr;
      const uint16_t* bp;
      if (v.packed_b != nullptr) {
        bp = v.packed_b + LpPackedBOffset(v.k, v.n, jc, pc, kKC);
      } else {
        const int64_t b_u16s = CeilDiv(nc, kNRLp) * kNRLp * kc2 * 2;
        // The lp workspaces are float buffers reused as raw bytes.
        uint16_t* wp = reinterpret_cast<uint16_t*>(
            ThreadLocalWorkspace(kWorkspaceGemmLpB, CeilDiv(b_u16s, 2)));
        PackBBf16(v, pc, kc, jc, nc, wp);
        bp = wp;
      }
      const float beta_eff = (pc == 0) ? beta : 1.0f;
      for (int64_t ic = mb; ic < me; ic += kMC) {
        const int64_t mc = std::min(kMC, me - ic);
        const int64_t a_u16s = CeilDiv(mc, kMR) * kMR * kc2 * 2;
        uint16_t* ap = reinterpret_cast<uint16_t*>(
            ThreadLocalWorkspace(kWorkspaceGemmLpA, CeilDiv(a_u16s, 2)));
        PackABf16(v, ic, mc, pc, kc, ap);
        MacroKernelBf16(ap, bp, c, v.n, ic, mc, jc, nc, kc, beta_eff, ep);
      }
    }
  }
}

void ScaleCBf16(float* c, int64_t count, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

void GemmBf16Impl(const LpView& v, float* c, const GemmOptions& opts) {
  if (v.m <= 0 || v.n <= 0) return;
  GEO_OBS_COUNT("gemm.bf16_calls", 1);
  if (v.k <= 0) {
    ScaleCBf16(c, v.m * v.n, opts.beta);
    if (opts.epilogue != nullptr) {
      for (int64_t i = 0; i < v.m; ++i)
        ApplyEpilogueRow(c + i * v.n, v.n, opts.epilogue->row_bias, i,
                         opts.epilogue->col_bias, *opts.epilogue);
    }
    return;
  }
  const int64_t work = v.m * v.n * v.k;
  GEO_OBS_COUNT("gemm.flops", 2 * work);
  const int64_t mt = CeilDiv(v.m, kMC);
  const int64_t nt = CeilDiv(v.n, kNC);
  const bool parallel = opts.allow_parallel &&
                        GetDefaultDevice() == Device::kParallel &&
                        work >= kParallelMinWork && mt * nt > 1;
  if (!parallel) {
    GemmRegionBf16(v, c, opts.beta, 0, v.m, 0, v.n, opts.epilogue);
    return;
  }
  ThreadPool::Global().ParallelFor(mt * nt, [&](int64_t t) {
    const int64_t ti = t / nt;
    const int64_t tj = t % nt;
    GemmRegionBf16(v, c, opts.beta, ti * kMC, std::min(v.m, (ti + 1) * kMC),
                   tj * kNC, std::min(v.n, (tj + 1) * kNC), opts.epilogue);
  });
}

}  // namespace

void GemmBf16(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, const GemmOptions& opts) {
  const LpView v{a,       nullptr, b, nullptr,      nullptr,
                 m,       k,       n, opts.trans_a, opts.trans_b};
  GemmBf16Impl(v, c, opts);
}

void GemmBf16(const float* a, const uint16_t* b_bf16, float* c, int64_t m,
              int64_t k, int64_t n, const GemmOptions& opts) {
  const LpView v{a, nullptr, nullptr, b_bf16,       nullptr,
                 m, k,       n,       opts.trans_a, false};
  GemmBf16Impl(v, c, opts);
}

void GemmBf16(const uint16_t* a_bf16, const float* b, float* c, int64_t m,
              int64_t k, int64_t n, const GemmOptions& opts) {
  const LpView v{nullptr, a_bf16, b,     nullptr, nullptr,
                 m,       k,      n,     false,   opts.trans_b};
  GemmBf16Impl(v, c, opts);
}

int64_t Bf16PackedBSize(int64_t k, int64_t n) {
  return LpPackedBSize(k, n, kKC);
}

void PackBf16B(const uint16_t* b, int64_t k, int64_t n, uint16_t* packed) {
  const LpView v{nullptr, nullptr, nullptr, b,     nullptr,
                 0,       k,       n,       false, false};
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      PackBBf16(v, pc, kc, jc, nc,
                packed + LpPackedBOffset(k, n, jc, pc, kKC));
    }
  }
}

void GemmBf16(const float* a, Bf16PackedB b, float* c, int64_t m, int64_t k,
              int64_t n, const GemmOptions& opts) {
  const LpView v{a, nullptr, nullptr, nullptr,      b.data,
                 m, k,       n,       opts.trans_a, false};
  GemmBf16Impl(v, c, opts);
}

void GemmConvBf16(const uint16_t* a_bf16, const ConvImageView<float>& b,
                  float* c, int64_t m, const GemmOptions& opts) {
  GEO_OBS_COUNT("fusion.conv_implicit", 1);
  const LpView v{nullptr, a_bf16, nullptr, nullptr, nullptr,
                 m,       b.K(),  b.N(),   false,   false,  &b};
  GemmBf16Impl(v, c, opts);
}

}  // namespace geotorch::tensor
