#ifndef GEOTORCH_TENSOR_CONV_H_
#define GEOTORCH_TENSOR_CONV_H_

#include <utility>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace geotorch::tensor {

/// Spatial convolution parameters (square stride/padding kept separate
/// per axis is not needed by any model in the paper).
struct ConvSpec {
  int64_t stride = 1;
  int64_t padding = 0;
};

/// Output spatial size of a convolution: (in + 2p - k) / s + 1.
int64_t ConvOutSize(int64_t in, int64_t kernel, int64_t stride,
                    int64_t padding);

/// im2col: unfolds (C, H, W) patches of `x[n]` into a (C*KH*KW, OH*OW)
/// matrix, zero-padding out-of-range taps. `x` is (N, C, H, W); the
/// returned tensor covers sample `n` only.
Tensor Im2Col(const Tensor& x, int64_t n, int64_t kh, int64_t kw,
              const ConvSpec& spec);

/// col2im: scatter-adds a (C*KH*KW, OH*OW) matrix back into an
/// (C, H, W) image (the adjoint of Im2Col). Accumulates into `out[n]`.
void Col2ImAdd(const Tensor& cols, Tensor& out, int64_t n, int64_t kh,
               int64_t kw, const ConvSpec& spec);

/// 2-D convolution. x: (N, C, H, W), w: (F, C, KH, KW), bias: (F) or
/// empty. Returns (N, F, OH, OW). Dispatches per-sample work to the
/// current Device backend.
Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                     const ConvSpec& spec);

/// Low-precision eval-path variants of Conv2dForward (DESIGN.md §10).
/// Both take the weights flattened row-major to (F, C*KH*KW) — the
/// natural flat view of a (F, C, KH, KW) tensor.
///
/// bf16: weights pre-converted to bf16; the im2col patch matrix stays
/// f32 and is rounded to bf16 as the GEMM packs it, accumulation f32.
Tensor Conv2dForwardBf16(const Tensor& x, const uint16_t* w_bf16, int64_t f,
                         int64_t c, int64_t kh, int64_t kw, const Tensor& bias,
                         const ConvSpec& spec);

/// int8: per-output-channel symmetric weights (w_q with w_scales[F]),
/// per-tensor activation scale `act_scale` (pass 0 to derive it
/// dynamically from this batch's absmax). The im2col matrix is
/// quantized into a thread-local int8 workspace; accumulation is i32,
/// so serial and parallel runs are bitwise identical.
Tensor Conv2dForwardInt8(const Tensor& x, const int8_t* w_q,
                         const float* w_scales, int64_t f, int64_t c,
                         int64_t kh, int64_t kw, float act_scale,
                         const Tensor& bias, const ConvSpec& spec);

/// Fused eval-path convolutions (DESIGN.md §13): bias and activation run
/// as a GEMM epilogue in the kernel write-back, and the patch matrix is
/// never materialized — panels are gathered straight from the input
/// image (implicit im2col), with 1×1 stride-1 unpadded convs bypassing
/// the gather entirely (the (C, H·W) input plane IS the patch matrix).
/// `act` uses the exact elementwise formulas of tensor/ops.cc, so for
/// f32 and int8 the output is bitwise identical to Conv2dForward*
/// followed by the separate bias/activation passes. Eval-only: no
/// backward exists for these entry points.
Tensor Conv2dForwardFused(const Tensor& x, const Tensor& w, const Tensor& bias,
                          const ConvSpec& spec, EpilogueAct act,
                          float leaky_slope);

/// bf16 weights, pre-converted row-major (F, C*KH*KW).
Tensor Conv2dForwardFusedBf16(const Tensor& x, const uint16_t* w_bf16,
                              int64_t f, int64_t c, int64_t kh, int64_t kw,
                              const Tensor& bias, const ConvSpec& spec,
                              EpilogueAct act, float leaky_slope);

/// int8 weights as in Conv2dForwardInt8. The whole input batch is
/// quantized once up front (elementwise quantization commutes with the
/// im2col gather, and zero-padding quantizes to 0, so this matches the
/// unfused quantize-the-patch-matrix path bitwise) instead of
/// re-quantizing every patch-matrix copy of each pixel per sample.
Tensor Conv2dForwardFusedInt8(const Tensor& x, const int8_t* w_q,
                              const float* w_scales, int64_t f, int64_t c,
                              int64_t kh, int64_t kw, float act_scale,
                              const Tensor& bias, const ConvSpec& spec,
                              EpilogueAct act, float leaky_slope);

struct Conv2dGrads {
  Tensor grad_x;
  Tensor grad_w;
  Tensor grad_bias;  // empty if the forward had no bias
};

/// Gradients of Conv2dForward wrt input, weights, and bias.
Conv2dGrads Conv2dBackward(const Tensor& grad_out, const Tensor& x,
                           const Tensor& w, bool has_bias,
                           const ConvSpec& spec);

/// Transposed convolution ("deconvolution"). x: (N, C, H, W),
/// w: (C, F, KH, KW), bias: (F) or empty.
/// Output: (N, F, (H-1)*s - 2p + KH, (W-1)*s - 2p + KW).
Tensor ConvTranspose2dForward(const Tensor& x, const Tensor& w,
                              const Tensor& bias, const ConvSpec& spec);

struct ConvTranspose2dGrads {
  Tensor grad_x;
  Tensor grad_w;
  Tensor grad_bias;
};

ConvTranspose2dGrads ConvTranspose2dBackward(const Tensor& grad_out,
                                             const Tensor& x, const Tensor& w,
                                             bool has_bias,
                                             const ConvSpec& spec);

/// Max pooling with stride == kernel. Returns the pooled tensor and the
/// flat input offset of each winner (needed by the backward pass).
/// Pooling and upsampling kernels parallelize over the N*C plane loop
/// on Device::kParallel, with the same gate as the conv sample loops.
std::pair<Tensor, std::vector<int64_t>> MaxPool2dForward(const Tensor& x,
                                                         int64_t kernel);

/// Scatter of grad_out back through the argmax indices.
Tensor MaxPool2dBackward(const Tensor& grad_out, const Shape& input_shape,
                         const std::vector<int64_t>& argmax);

/// Average pooling with stride == kernel over (N, C, H, W).
Tensor AvgPool2dForward(const Tensor& x, int64_t kernel);
/// Adjoint: spreads each output gradient uniformly over its window.
Tensor AvgPool2dBackward(const Tensor& grad_out, const Shape& input_shape,
                         int64_t kernel);

/// Nearest-neighbour 2x upsampling of (N, C, H, W).
Tensor UpsampleNearest2x(const Tensor& x);
/// Adjoint of UpsampleNearest2x (sums each 2x2 block).
Tensor UpsampleNearest2xBackward(const Tensor& grad_out);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_CONV_H_
