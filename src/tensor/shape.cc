#include "tensor/shape.h"

#include <algorithm>

#include "core/check.h"

namespace geotorch::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    GEO_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "(";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += ")";
  return out;
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    GEO_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

bool BroadcastableTo(const Shape& from, const Shape& to) {
  if (from.size() > to.size()) return false;
  for (size_t i = 0; i < from.size(); ++i) {
    const int64_t df = from[from.size() - 1 - i];
    const int64_t dt = to[to.size() - 1 - i];
    if (df != dt && df != 1) return false;
  }
  return true;
}

}  // namespace geotorch::tensor
