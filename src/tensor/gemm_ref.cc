// Reference GEMM, deliberately kept in its own translation unit with the
// project's default portable flags: it is byte-for-byte the loop the old
// naive MatMul/RawMatMul compiled to, which keeps the speedups reported
// by bench/micro_ops.cc honest against the pre-blocking kernel.

#include <algorithm>

#include "tensor/gemm.h"

namespace geotorch::tensor {

namespace {

// Fused epilogue over the finished reference output: bias pass(es)
// then activation pass, exactly the op order of the unfused layer code
// (GEMM, then bias loop over the tensor, then activation loop), so the
// fallback stays bitwise identical to the pre-fusion eval path.
void ApplyEpilogue(float* c, int64_t m, int64_t n, const GemmEpilogue& ep) {
  for (int64_t i = 0; i < m; ++i)
    gemm_internal::ApplyEpilogueRow(c + i * n, n, ep.row_bias, i, ep.col_bias,
                                    ep);
}

}  // namespace

void ReferenceGemm(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n, const GemmOptions& opts) {
  if (m <= 0 || n <= 0) return;
  if (opts.beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (opts.beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) c[i] *= opts.beta;
  }
  if (!opts.trans_a && !opts.trans_b) {
    // The historical hot loop: row-broadcast with a zero skip (im2col
    // matrices are sparse at the borders).
    for (int64_t i = 0; i < m; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a_row[p];
        if (av == 0.0f) continue;
        const float* b_row = b + p * n;
        for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
    if (opts.epilogue != nullptr) ApplyEpilogue(c, m, n, *opts.epilogue);
    return;
  }
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = opts.trans_a ? a[p * m + i] : a[i * k + p];
      if (av == 0.0f) continue;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * (opts.trans_b ? b[j * k + p] : b[p * n + j]);
      }
    }
  }
  if (opts.epilogue != nullptr) ApplyEpilogue(c, m, n, *opts.epilogue);
}

}  // namespace geotorch::tensor
