// Blocked, packed SGEMM (BLIS-style). Structure:
//
//   for jc in N by NC:            B strip
//     for pc in K by KC:          shared-K block (accumulation order is
//                                 fixed, so serial == parallel bitwise)
//       pack B(pc:kc, jc:nc)      -> thread-local ~KC*NC panel
//       for ic in M by MC:
//         pack A(ic:mc, pc:kc)    -> thread-local ~MC*KC panel
//         for each MR*NR register tile: micro-kernel over kc
//
// The micro-kernel reads contiguous MR- and NR-wide slices of the packed
// panels, accumulates into a local MR*NR tile, and is written so the
// compiler auto-vectorizes the NR loop into FMA chains (this file is
// built with the vector ISA of the build machine; see
// src/tensor/CMakeLists.txt). Transposed operands are absorbed by the
// packing stage, so callers never materialize a transpose.
//
// Parallel execution tiles the M×N macro-block grid across the thread
// pool; each task packs into its own per-thread workspace. Nested calls
// from pool workers (per-sample conv loops) collapse to serial inside
// ThreadPool::ParallelForRange, so the kernel is re-entrant under the
// device dispatch rules in DESIGN.md.

#include "tensor/gemm.h"

#include <algorithm>

#include "core/check.h"
#include "core/memory.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/device.h"

namespace geotorch::tensor {
namespace {

using namespace gemm_internal;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Logical-element access over the (possibly transposed) operands. When
// `conv_b` is set, B is an implicit im2col view and the packing stage
// gathers panel rows straight from the image (never transposed).
struct OperandView {
  const float* a;
  const float* b;
  int64_t m, k, n;
  bool ta, tb;
  const ConvImageView<float>* conv_b = nullptr;
  float A(int64_t i, int64_t p) const { return ta ? a[p * m + i] : a[i * k + p]; }
  float B(int64_t p, int64_t j) const { return tb ? b[j * k + p] : b[p * n + j]; }
};

// Packs A(ic:ic+mc, pc:pc+kc) into kMR-row micro-panels: panel `pi`
// holds rows [pi*kMR, pi*kMR+kMR) laid out column-major (p outer, r
// inner) so the micro-kernel reads one contiguous MR-slice per k step.
// Rows past `mc` pad with zeros.
void PackABlock(const OperandView& v, int64_t ic, int64_t mc, int64_t pc,
                int64_t kc, float* __restrict ap) {
  for (int64_t pi = 0; pi * kMR < mc; ++pi) {
    float* panel = ap + pi * kc * kMR;
    const int64_t rows = std::min(kMR, mc - pi * kMR);
    const int64_t base_i = ic + pi * kMR;
    for (int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * kMR;
      int64_t r = 0;
      for (; r < rows; ++r) dst[r] = v.A(base_i + r, pc + p);
      for (; r < kMR; ++r) dst[r] = 0.0f;
    }
  }
}

// Packs B(pc:pc+kc, jc:jc+nc) into kNR-column micro-panels (p outer,
// column inner); columns past `nc` pad with zeros.
void PackBBlock(const OperandView& v, int64_t pc, int64_t kc, int64_t jc,
                int64_t nc, float* __restrict bp) {
  if (v.conv_b != nullptr) {
    // Gather each virtual row once at full block width into an L1 stage
    // (one GatherRow per K row amortizes its row-walk over all panels),
    // then deal the stage out to the kNR-column micro-panels.
    alignas(64) float stage[kNC];
    for (int64_t p = 0; p < kc; ++p) {
      v.conv_b->GatherRow(pc + p, jc, nc, stage);
      for (int64_t pj = 0; pj * kNR < nc; ++pj) {
        const int64_t cols = std::min(kNR, nc - pj * kNR);
        float* __restrict dst = bp + pj * kc * kNR + p * kNR;
        const float* __restrict src = stage + pj * kNR;
        int64_t c = 0;
        for (; c < cols; ++c) dst[c] = src[c];
        for (; c < kNR; ++c) dst[c] = 0.0f;
      }
    }
    return;
  }
  for (int64_t pj = 0; pj * kNR < nc; ++pj) {
    float* panel = bp + pj * kc * kNR;
    const int64_t cols = std::min(kNR, nc - pj * kNR);
    const int64_t base_j = jc + pj * kNR;
    if (!v.tb) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* __restrict src = v.b + (pc + p) * v.n + base_j;
        float* __restrict dst = panel + p * kNR;
        int64_t c = 0;
        for (; c < cols; ++c) dst[c] = src[c];
        for (; c < kNR; ++c) dst[c] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        float* __restrict dst = panel + p * kNR;
        int64_t c = 0;
        for (; c < cols; ++c) dst[c] = v.b[(base_j + c) * v.k + pc + p];
        for (; c < kNR; ++c) dst[c] = 0.0f;
      }
    }
  }
}

// Vector lane type for the micro-kernel accumulator. 8-float lanes map
// to one FMA per lane on AVX-class hardware; on baseline x86-64 (or any
// target without 32-byte vectors) 4-float lanes avoid double-pumped
// emulation and ABI warnings. Lanes evenly tile an NR-wide row.
#if defined(__AVX__)
typedef float VecLane __attribute__((vector_size(32), aligned(4)));
constexpr int64_t kLane = 8;
#else
typedef float VecLane __attribute__((vector_size(16), aligned(4)));
constexpr int64_t kLane = 4;
#endif
constexpr int64_t kLanesPerRow = kNR / kLane;
static_assert(kNR % kLane == 0);

inline VecLane LoadLane(const float* p) {
  VecLane v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

// kMR×kNR register tile over a packed-panel pair, merged into C at the
// end. The accumulator is a local array of vector lanes with constant
// trip counts, so it lives entirely in SIMD registers across the k
// loop; each k step reads one contiguous MR slice of A and NR slice of
// B. `beta_eff` is the caller's beta on the first K block, 1 afterwards;
// only the valid rows×cols corner is written for edge tiles. `ep` is
// non-null only on the final K block: the fused epilogue runs over the
// just-written C rows while they are still in L1 (row0/col0 locate the
// tile inside C for the bias lookups).
void MicroKernel(int64_t kc, const float* __restrict ap,
                 const float* __restrict bp, float* __restrict c, int64_t ldc,
                 int64_t rows, int64_t cols, float beta_eff,
                 const GemmEpilogue* ep, int64_t row0, int64_t col0) {
  VecLane acc[kMR][kLanesPerRow] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* __restrict a_slice = ap + p * kMR;
    const float* __restrict b_slice = bp + p * kNR;
    VecLane b_lane[kLanesPerRow];
    for (int64_t l = 0; l < kLanesPerRow; ++l)
      b_lane[l] = LoadLane(b_slice + l * kLane);
    for (int64_t r = 0; r < kMR; ++r) {
      const VecLane av = a_slice[r] - VecLane{};  // broadcast
      for (int64_t l = 0; l < kLanesPerRow; ++l)
        acc[r][l] += av * b_lane[l];
    }
  }
  if (rows == kMR && cols == kNR) {
    for (int64_t r = 0; r < kMR; ++r) {
      float* __restrict c_row = c + r * ldc;
      if (beta_eff == 0.0f) {
        for (int64_t l = 0; l < kLanesPerRow; ++l)
          __builtin_memcpy(c_row + l * kLane, &acc[r][l], sizeof(VecLane));
      } else if (beta_eff == 1.0f) {
        for (int64_t l = 0; l < kLanesPerRow; ++l) {
          const VecLane sum = LoadLane(c_row + l * kLane) + acc[r][l];
          __builtin_memcpy(c_row + l * kLane, &sum, sizeof(VecLane));
        }
      } else {
        for (int64_t l = 0; l < kLanesPerRow; ++l) {
          const VecLane sum =
              beta_eff * LoadLane(c_row + l * kLane) + acc[r][l];
          __builtin_memcpy(c_row + l * kLane, &sum, sizeof(VecLane));
        }
      }
    }
    if (ep != nullptr) {
      for (int64_t r = 0; r < rows; ++r)
        ApplyEpilogueRow(c + r * ldc, cols, ep->row_bias, row0 + r,
                         ep->col_bias != nullptr ? ep->col_bias + col0 : nullptr,
                         *ep);
    }
    return;
  }
  // Edge tile: spill the accumulator and merge the valid corner.
  alignas(64) float spill[kMR * kNR];
  for (int64_t r = 0; r < kMR; ++r)
    __builtin_memcpy(spill + r * kNR, acc[r], sizeof(acc[r]));
  for (int64_t r = 0; r < rows; ++r) {
    const float* __restrict acc_row = spill + r * kNR;
    float* __restrict c_row = c + r * ldc;
    if (beta_eff == 0.0f) {
      for (int64_t j = 0; j < cols; ++j) c_row[j] = acc_row[j];
    } else if (beta_eff == 1.0f) {
      for (int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
    } else {
      for (int64_t j = 0; j < cols; ++j)
        c_row[j] = beta_eff * c_row[j] + acc_row[j];
    }
  }
  if (ep != nullptr) {
    for (int64_t r = 0; r < rows; ++r)
      ApplyEpilogueRow(c + r * ldc, cols, ep->row_bias, row0 + r,
                       ep->col_bias != nullptr ? ep->col_bias + col0 : nullptr,
                       *ep);
  }
}

// All register tiles of one (mc × nc) macro-block against packed panels.
void MacroKernel(const float* ap, const float* bp, float* c, int64_t ldc,
                 int64_t ic, int64_t mc, int64_t jc, int64_t nc, int64_t kc,
                 float beta_eff, const GemmEpilogue* ep) {
  for (int64_t pj = 0; pj * kNR < nc; ++pj) {
    const int64_t cols = std::min(kNR, nc - pj * kNR);
    for (int64_t pi = 0; pi * kMR < mc; ++pi) {
      const int64_t rows = std::min(kMR, mc - pi * kMR);
      MicroKernel(kc, ap + pi * kc * kMR, bp + pj * kc * kNR,
                  c + (ic + pi * kMR) * ldc + jc + pj * kNR, ldc, rows, cols,
                  beta_eff, ep, ic + pi * kMR, jc + pj * kNR);
    }
  }
}

// Serial blocked GEMM over the C region [mb, me) × [nb, ne). Each
// invocation packs into the calling thread's workspace slots, so
// parallel tasks over disjoint regions never share scratch.
void GemmRegion(const OperandView& v, float* c, float beta, int64_t mb,
                int64_t me, int64_t nb, int64_t ne,
                const GemmEpilogue* epilogue) {
  for (int64_t jc = nb; jc < ne; jc += kNC) {
    const int64_t nc = std::min(kNC, ne - jc);
    for (int64_t pc = 0; pc < v.k; pc += kKC) {
      const int64_t kc = std::min(kKC, v.k - pc);
      // The epilogue fires exactly once per element: on the last K block.
      const GemmEpilogue* ep = (pc + kc == v.k) ? epilogue : nullptr;
      const int64_t b_floats = CeilDiv(nc, kNR) * kNR * kc;
      float* bp = ThreadLocalWorkspace(kWorkspaceGemmPackB, b_floats);
      PackBBlock(v, pc, kc, jc, nc, bp);
      GEO_OBS_COUNT("gemm.pack_b_bytes",
                    b_floats * static_cast<int64_t>(sizeof(float)));
      const float beta_eff = (pc == 0) ? beta : 1.0f;
      for (int64_t ic = mb; ic < me; ic += kMC) {
        const int64_t mc = std::min(kMC, me - ic);
        const int64_t a_floats = CeilDiv(mc, kMR) * kMR * kc;
        float* ap = ThreadLocalWorkspace(kWorkspaceGemmPackA, a_floats);
        PackABlock(v, ic, mc, pc, kc, ap);
        GEO_OBS_COUNT("gemm.pack_a_bytes",
                      a_floats * static_cast<int64_t>(sizeof(float)));
        MacroKernel(ap, bp, c, v.n, ic, mc, jc, nc, kc, beta_eff, ep);
      }
    }
  }
}

// Direct (im2col-free) stride-1 convolution. Instead of gathering the
// patch matrix and packing it into B panels, the register tile walks the
// image itself: for a tile of kMR output channels and kNR output columns
// of one output row, each kernel tap contributes one unaligned kNR-wide
// load from a zero-padded copy of the input plane plus one broadcast-FMA
// per channel. The staged copy means out-of-image taps participate as
// fma(w, 0, acc) — exactly the term the im2col zeros contribute — so no
// tap is skipped or reordered.
//
// Bitwise contract with the blocked path: a C element's value depends
// only on its K-order accumulation chain, never on how rows/columns are
// tiled. This kernel keeps (a) the tap order p = (ci, ki, kj), the
// im2col row order, (b) the accumulator split at kKC boundaries with the
// same first-block-writes / later-blocks-add merge, and (c) the same
// `acc += broadcast(a) * lane(b)` VecLane idiom in the same translation
// unit, so it contracts to the same FMA sequence the micro-kernel emits.
// determinism_test pins fused == unfused bitwise on top of this.
void ConvDirectKernel(const float* a, const ConvImageView<float>& b, float* c,
                      int64_t m, const GemmOptions& opts) {
  const int64_t k = b.K();
  const int64_t n = b.N();
  const int64_t ph = b.h + 2 * b.pad;
  // Row slack so the widest tile's lane loads stay inside the buffer:
  // max column read is j0 + (kw-1) + kNR-1 < (w + 2*pad) + kNR.
  const int64_t ws = b.w + 2 * b.pad + kNR;
  float* padded = ThreadLocalWorkspace(kWorkspaceIm2Col, b.c * ph * ws);
  std::fill(padded, padded + b.c * ph * ws, 0.0f);
  for (int64_t ci = 0; ci < b.c; ++ci) {
    for (int64_t ii = 0; ii < b.h; ++ii) {
      __builtin_memcpy(padded + (ci * ph + ii + b.pad) * ws + b.pad,
                       b.x + (ci * b.h + ii) * b.w,
                       static_cast<size_t>(b.w) * sizeof(float));
    }
  }
  const OperandView av{a, nullptr, m, k, n, opts.trans_a, false};
  const int64_t mtiles = CeilDiv(m, kMR);
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    float* ap = ThreadLocalWorkspace(kWorkspaceGemmPackA, mtiles * kMR * kc);
    PackABlock(av, 0, m, pc, kc, ap);
    // Per-tap base offset into the padded image; with stride 1 the
    // output-row origin then advances by one padded row per oi.
    int32_t off[kKC];
    for (int64_t idx = 0; idx < kc; ++idx) {
      const int64_t p = pc + idx;
      const int64_t ci = p / (b.kh * b.kw);
      const int64_t rem = p - ci * b.kh * b.kw;
      off[idx] = static_cast<int32_t>(
          (ci * ph + rem / b.kw) * ws + rem % b.kw);
    }
    const float beta_eff = (pc == 0) ? opts.beta : 1.0f;
    const GemmEpilogue* ep = (pc + kc == k) ? opts.epilogue : nullptr;
    for (int64_t pi = 0; pi < mtiles; ++pi) {
      const int64_t rows = std::min(kMR, m - pi * kMR);
      const float* panel = ap + pi * kc * kMR;
      for (int64_t oi = 0; oi < b.oh; ++oi) {
        const float* in_origin = padded + oi * ws;
        for (int64_t j0 = 0; j0 < b.ow; j0 += kNR) {
          const int64_t cols = std::min(kNR, b.ow - j0);
          VecLane acc[kMR][kLanesPerRow] = {};
          for (int64_t idx = 0; idx < kc; ++idx) {
            const float* __restrict bsrc = in_origin + off[idx] + j0;
            const float* __restrict a_slice = panel + idx * kMR;
            VecLane b_lane[kLanesPerRow];
            for (int64_t l = 0; l < kLanesPerRow; ++l)
              b_lane[l] = LoadLane(bsrc + l * kLane);
            for (int64_t r = 0; r < kMR; ++r) {
              const VecLane avv = a_slice[r] - VecLane{};  // broadcast
              for (int64_t l = 0; l < kLanesPerRow; ++l)
                acc[r][l] += avv * b_lane[l];
            }
          }
          float* ctile = c + pi * kMR * n + oi * b.ow + j0;
          if (rows == kMR && cols == kNR) {
            for (int64_t r = 0; r < kMR; ++r) {
              float* __restrict c_row = ctile + r * n;
              if (beta_eff == 0.0f) {
                for (int64_t l = 0; l < kLanesPerRow; ++l)
                  __builtin_memcpy(c_row + l * kLane, &acc[r][l],
                                   sizeof(VecLane));
              } else if (beta_eff == 1.0f) {
                for (int64_t l = 0; l < kLanesPerRow; ++l) {
                  const VecLane sum = LoadLane(c_row + l * kLane) + acc[r][l];
                  __builtin_memcpy(c_row + l * kLane, &sum, sizeof(VecLane));
                }
              } else {
                for (int64_t l = 0; l < kLanesPerRow; ++l) {
                  const VecLane sum =
                      beta_eff * LoadLane(c_row + l * kLane) + acc[r][l];
                  __builtin_memcpy(c_row + l * kLane, &sum, sizeof(VecLane));
                }
              }
            }
          } else {
            alignas(64) float spill[kMR * kNR];
            for (int64_t r = 0; r < kMR; ++r)
              __builtin_memcpy(spill + r * kNR, acc[r], sizeof(acc[r]));
            for (int64_t r = 0; r < rows; ++r) {
              const float* __restrict acc_row = spill + r * kNR;
              float* __restrict c_row = ctile + r * n;
              if (beta_eff == 0.0f) {
                for (int64_t j = 0; j < cols; ++j) c_row[j] = acc_row[j];
              } else if (beta_eff == 1.0f) {
                for (int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
              } else {
                for (int64_t j = 0; j < cols; ++j)
                  c_row[j] = beta_eff * c_row[j] + acc_row[j];
              }
            }
          }
          if (ep != nullptr) {
            for (int64_t r = 0; r < rows; ++r)
              ApplyEpilogueRow(
                  ctile + r * n, cols, ep->row_bias, pi * kMR + r,
                  ep->col_bias != nullptr ? ep->col_bias + oi * b.ow + j0
                                          : nullptr,
                  *ep);
          }
        }
      }
    }
  }
}

// C := beta*C for the degenerate k == 0 case.
void ScaleC(float* c, int64_t count, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

// Shared blocked dispatch for Gemm and GemmConv once the view is built
// and the reference fallback has been ruled out.
void GemmBlocked(const OperandView& v, float* c, const GemmOptions& opts,
                 int64_t work) {
  const int64_t mt = CeilDiv(v.m, kMC);
  const int64_t nt = CeilDiv(v.n, kNC);
  const bool parallel = opts.allow_parallel &&
                        GetDefaultDevice() == Device::kParallel &&
                        work >= kParallelMinWork && mt * nt > 1;
  if (!parallel) {
    GEO_OBS_COUNT("gemm.path.blocked_serial", 1);
    GemmRegion(v, c, opts.beta, 0, v.m, 0, v.n, opts.epilogue);
    return;
  }
  GEO_OBS_COUNT("gemm.path.blocked_parallel", 1);
  ThreadPool::Global().ParallelFor(mt * nt, [&](int64_t t) {
    const int64_t ti = t / nt;
    const int64_t tj = t % nt;
    GemmRegion(v, c, opts.beta, ti * kMC, std::min(v.m, (ti + 1) * kMC),
               tj * kNC, std::min(v.n, (tj + 1) * kNC), opts.epilogue);
  });
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, const GemmOptions& opts) {
  if (m <= 0 || n <= 0) return;
  GEO_OBS_COUNT("gemm.calls", 1);
  if (k <= 0) {
    ScaleC(c, m * n, opts.beta);
    if (opts.epilogue != nullptr) {
      for (int64_t i = 0; i < m; ++i)
        ApplyEpilogueRow(c + i * n, n, opts.epilogue->row_bias, i,
                         opts.epilogue->col_bias, *opts.epilogue);
    }
    return;
  }
  const int64_t work = m * n * k;
  GEO_OBS_COUNT("gemm.flops", 2 * work);
  if (work < kBlockedMinWork) {
    GEO_OBS_COUNT("gemm.path.ref", 1);
    ReferenceGemm(a, b, c, m, k, n, opts);
    return;
  }
  const OperandView v{a, b, m, k, n, opts.trans_a, opts.trans_b};
  GemmBlocked(v, c, opts, work);
}

void GemmConv(const float* a, const ConvImageView<float>& b, float* c,
              int64_t m, const GemmOptions& opts) {
  const int64_t k = b.K();
  const int64_t n = b.N();
  if (m <= 0 || n <= 0) return;
  GEO_OBS_COUNT("gemm.calls", 1);
  GEO_OBS_COUNT("fusion.conv_implicit", 1);
  const int64_t work = m * n * k;
  GEO_OBS_COUNT("gemm.flops", 2 * work);
  if (work < kBlockedMinWork) {
    // Mirror the unfused small-problem path bitwise: materialize the
    // patch matrix and run the reference loop (which applies the
    // epilogue as separate post-passes, like the unfused layer code).
    GEO_OBS_COUNT("gemm.path.ref", 1);
    float* cols = ThreadLocalWorkspace(kWorkspaceIm2Col, k * n);
    for (int64_t p = 0; p < k; ++p) b.GatherRow(p, 0, n, cols + p * n);
    ReferenceGemm(a, cols, c, m, k, n, opts);
    return;
  }
  if (b.stride == 1) {
    GEO_OBS_COUNT("gemm.path.conv_direct", 1);
    ConvDirectKernel(a, b, c, m, opts);
    return;
  }
  const OperandView v{a, nullptr, m, k, n, opts.trans_a, false, &b};
  GemmBlocked(v, c, opts, work);
}

}  // namespace geotorch::tensor
