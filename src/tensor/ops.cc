#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "core/thread_pool.h"
#include "tensor/device.h"
#include "tensor/gemm.h"

namespace geotorch::tensor {
namespace {

// Minimum element count before a kernel bothers with the thread pool.
constexpr int64_t kParallelThreshold = 1 << 15;

bool UseParallel(int64_t n) {
  return GetDefaultDevice() == Device::kParallel && n >= kParallelThreshold;
}

// Runs fn over [0, n) ranges, parallel when profitable.
void RunRanges(int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  if (UseParallel(n)) {
    ThreadPool::Global().ParallelForRange(n, fn);
  } else {
    fn(0, n);
  }
}

// Aligned (right-justified) strides of `shape` against a broadcast result
// of rank `rank`; broadcast dimensions get stride 0.
std::vector<int64_t> BroadcastStrides(const Shape& shape, size_t rank) {
  std::vector<int64_t> strides(rank, 0);
  std::vector<int64_t> natural = ContiguousStrides(shape);
  const size_t offset = rank - shape.size();
  for (size_t i = 0; i < shape.size(); ++i) {
    strides[offset + i] = (shape[i] == 1) ? 0 : natural[i];
  }
  return strides;
}

template <typename BinaryFn>
Tensor BinaryBroadcastOp(const Tensor& a, const Tensor& b, BinaryFn fn) {
  if (SameShape(a.shape(), b.shape())) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    RunRanges(a.numel(), [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i], pb[i]);
    });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const size_t rank = out_shape.size();
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), rank);
  const std::vector<int64_t> sb = BroadcastStrides(b.shape(), rank);
  const std::vector<int64_t> so = ContiguousStrides(out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  RunRanges(n, [&](int64_t begin, int64_t end) {
    std::vector<int64_t> index(rank, 0);
    // Decompose `begin` into a multi-index once, then iterate.
    int64_t rem = begin;
    for (size_t d = 0; d < rank; ++d) {
      index[d] = rem / so[d];
      rem %= so[d];
    }
    int64_t ia = 0;
    int64_t ib = 0;
    for (size_t d = 0; d < rank; ++d) {
      ia += index[d] * sa[d];
      ib += index[d] * sb[d];
    }
    for (int64_t i = begin; i < end; ++i) {
      po[i] = fn(pa[ia], pb[ib]);
      // Advance the multi-index (odometer).
      for (int d = static_cast<int>(rank) - 1; d >= 0; --d) {
        ++index[d];
        ia += sa[d];
        ib += sb[d];
        if (index[d] < out_shape[d]) break;
        index[d] = 0;
        ia -= sa[d] * out_shape[d];
        ib -= sb[d] * out_shape[d];
      }
    }
  });
  return out;
}

template <typename UnaryFn>
Tensor UnaryOp(const Tensor& a, UnaryFn fn) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  RunRanges(a.numel(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

int NormalizeDim(int dim, int rank) {
  if (dim < 0) dim += rank;
  GEO_CHECK(dim >= 0 && dim < rank) << "dim " << dim << " for rank " << rank;
  return dim;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(a, b,
                           [](float x, float y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}
Tensor PowScalar(const Tensor& a, float p) {
  return UnaryOp(a, [p](float x) { return std::pow(x, p); });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryOp(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return UnaryOp(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}
Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = fn(pa[i]);
  return out;
}

namespace {

// Shared driver for the binary in-place kernels: pd[i] = fn(pd[i], ps[i]).
template <typename BinaryFn>
void BinaryInPlace(Tensor& a, const Tensor& b, const char* name, BinaryFn fn) {
  GEO_CHECK(SameShape(a.shape(), b.shape()))
      << name << " " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
  float* pd = a.data();
  const float* ps = b.data();
  RunRanges(a.numel(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) pd[i] = fn(pd[i], ps[i]);
  });
}

}  // namespace

void MulInPlace(Tensor& a, const Tensor& b) {
  BinaryInPlace(a, b, "MulInPlace", [](float x, float y) { return x * y; });
}

void NegInPlace(Tensor& a) {
  float* pd = a.data();
  RunRanges(a.numel(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) pd[i] = -pd[i];
  });
}

void AddScaledInPlace(Tensor& a, const Tensor& b, float s) {
  BinaryInPlace(a, b, "AddScaledInPlace",
                [s](float x, float y) { return x + s * y; });
}

void ReluMaskInPlace(Tensor& g, const Tensor& x, float slope) {
  BinaryInPlace(g, x, "ReluMaskInPlace",
                [slope](float gv, float xv) {
                  return xv > 0.0f ? gv : slope * gv;
                });
}

void SigmoidGradInPlace(Tensor& g, const Tensor& y) {
  BinaryInPlace(g, y, "SigmoidGradInPlace",
                [](float gv, float yv) { return gv * yv * (1.0f - yv); });
}

void TanhGradInPlace(Tensor& g, const Tensor& y) {
  BinaryInPlace(g, y, "TanhGradInPlace",
                [](float gv, float yv) { return gv * (1.0f - yv * yv); });
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  if (SameShape(a.shape(), shape)) return a;
  GEO_CHECK(BroadcastableTo(a.shape(), shape))
      << "BroadcastTo " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);
  Tensor out = Tensor::Uninitialized(shape);
  const size_t rank = shape.size();
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), rank);
  const std::vector<int64_t> so = ContiguousStrides(shape);
  const float* pa = a.data();
  float* po = out.data();
  RunRanges(out.numel(), [&](int64_t begin, int64_t end) {
    std::vector<int64_t> index(rank, 0);
    int64_t rem = begin;
    for (size_t d = 0; d < rank; ++d) {
      index[d] = rem / so[d];
      rem %= so[d];
    }
    int64_t ia = 0;
    for (size_t d = 0; d < rank; ++d) ia += index[d] * sa[d];
    for (int64_t i = begin; i < end; ++i) {
      po[i] = pa[ia];
      for (int d = static_cast<int>(rank) - 1; d >= 0; --d) {
        ++index[d];
        ia += sa[d];
        if (index[d] < shape[d]) break;
        index[d] = 0;
        ia -= sa[d] * shape[d];
      }
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  // Kahan summation keeps large reductions accurate in float32.
  double sum = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) sum += p[i];
  return static_cast<float>(sum);
}

float MeanAll(const Tensor& a) {
  GEO_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  GEO_CHECK_GT(a.numel(), 0);
  return *std::max_element(a.data(), a.data() + a.numel());
}

float MinAll(const Tensor& a) {
  GEO_CHECK_GT(a.numel(), 0);
  return *std::min_element(a.data(), a.data() + a.numel());
}

Tensor Sum(const Tensor& a, int dim, bool keepdim) {
  dim = NormalizeDim(dim, a.ndim());
  const Shape& in_shape = a.shape();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < dim; ++d) outer *= in_shape[d];
  for (int d = dim + 1; d < a.ndim(); ++d) inner *= in_shape[d];
  const int64_t reduce = in_shape[dim];

  Shape out_shape = in_shape;
  if (keepdim) {
    out_shape[dim] = 1;
  } else {
    out_shape.erase(out_shape.begin() + dim);
    if (out_shape.empty()) out_shape = {1};
  }
  Tensor out = Tensor::Zeros(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t r = 0; r < reduce; ++r) {
      const float* src = pa + (o * reduce + r) * inner;
      float* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int dim, bool keepdim) {
  dim = NormalizeDim(dim, a.ndim());
  Tensor s = Sum(a, dim, keepdim);
  s.ScaleInPlace(1.0f / static_cast<float>(a.shape()[dim]));
  return s;
}

Tensor SumToShape(const Tensor& a, const Shape& target) {
  if (SameShape(a.shape(), target)) return a;
  GEO_CHECK(BroadcastableTo(target, a.shape()))
      << "SumToShape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(target);
  Tensor cur = a;
  // Collapse extra leading dims.
  while (cur.ndim() > static_cast<int>(target.size())) {
    cur = Sum(cur, 0, /*keepdim=*/false);
    if (cur.ndim() == 1 && target.empty()) break;
  }
  // Now same rank (or target had rank >= 1); reduce dims where target is 1.
  for (int d = 0; d < cur.ndim(); ++d) {
    if (d < static_cast<int>(target.size()) && target[d] == 1 &&
        cur.shape()[d] != 1) {
      cur = Sum(cur, d, /*keepdim=*/true);
    }
  }
  return cur.Reshape(target);
}

Tensor Argmax(const Tensor& a, int dim) {
  dim = NormalizeDim(dim, a.ndim());
  const Shape& in_shape = a.shape();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < dim; ++d) outer *= in_shape[d];
  for (int d = dim + 1; d < a.ndim(); ++d) inner *= in_shape[d];
  const int64_t reduce = in_shape[dim];
  GEO_CHECK_GT(reduce, 0);

  Shape out_shape = in_shape;
  out_shape.erase(out_shape.begin() + dim);
  if (out_shape.empty()) out_shape = {1};
  Tensor out = Tensor::Zeros(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float best = pa[o * reduce * inner + i];
      int64_t best_r = 0;
      for (int64_t r = 1; r < reduce; ++r) {
        const float v = pa[(o * reduce + r) * inner + i];
        if (v > best) {
          best = v;
          best_r = r;
        }
      }
      po[o * inner + i] = static_cast<float>(best_r);
    }
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return MatMulT(a, b, /*trans_a=*/false, /*trans_b=*/false);
}

Tensor MatMulT(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  GEO_CHECK_EQ(a.ndim(), 2);
  GEO_CHECK_EQ(b.ndim(), 2);
  const int64_t m = trans_a ? a.size(1) : a.size(0);
  const int64_t k = trans_a ? a.size(0) : a.size(1);
  GEO_CHECK_EQ(trans_b ? b.size(1) : b.size(0), k)
      << "MatMul " << ShapeToString(a.shape()) << (trans_a ? "^T" : "")
      << " x " << ShapeToString(b.shape()) << (trans_b ? "^T" : "");
  const int64_t n = trans_b ? b.size(0) : b.size(1);
  Tensor out = Tensor::Uninitialized({m, n});
  Gemm(a.data(), b.data(), out.data(), m, k, n,
       {.beta = 0.0f, .trans_a = trans_a, .trans_b = trans_b});
  return out;
}

Tensor Transpose2d(const Tensor& a) {
  GEO_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.size(0);
  const int64_t n = a.size(1);
  Tensor out = Tensor::Uninitialized({n, m});
  const float* pa = a.data();
  float* po = out.data();
  // Tiled so both the row-major read and the column-major write stay
  // within a cache-resident 32×32 block.
  constexpr int64_t kTile = 32;
  for (int64_t ib = 0; ib < m; ib += kTile) {
    const int64_t ie = std::min(m, ib + kTile);
    for (int64_t jb = 0; jb < n; jb += kTile) {
      const int64_t je = std::min(n, jb + kTile);
      for (int64_t i = ib; i < ie; ++i) {
        for (int64_t j = jb; j < je; ++j) po[j * m + i] = pa[i * n + j];
      }
    }
  }
  return out;
}

Tensor Permute(const Tensor& a, const std::vector<int>& perm) {
  GEO_CHECK_EQ(static_cast<int>(perm.size()), a.ndim());
  const int rank = a.ndim();
  Shape out_shape(rank);
  for (int d = 0; d < rank; ++d) out_shape[d] = a.shape()[perm[d]];
  Tensor out = Tensor::Uninitialized(out_shape);
  const std::vector<int64_t> in_strides = ContiguousStrides(a.shape());
  const std::vector<int64_t> out_strides = ContiguousStrides(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  std::vector<int64_t> out_index(rank, 0);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = 0;
    for (int d = 0; d < rank; ++d) src += out_index[d] * in_strides[perm[d]];
    po[i] = pa[src];
    for (int d = rank - 1; d >= 0; --d) {
      if (++out_index[d] < out_shape[d]) break;
      out_index[d] = 0;
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int dim) {
  GEO_CHECK(!parts.empty());
  const int rank = parts[0].ndim();
  dim = NormalizeDim(dim, rank);
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& t : parts) {
    GEO_CHECK_EQ(t.ndim(), rank);
    for (int d = 0; d < rank; ++d) {
      if (d != dim) {
        GEO_CHECK_EQ(t.shape()[d], out_shape[d])
            << "Concat shape mismatch on dim " << d;
      }
    }
    total += t.shape()[dim];
  }
  out_shape[dim] = total;
  Tensor out = Tensor::Uninitialized(out_shape);

  int64_t outer = 1;
  for (int d = 0; d < dim; ++d) outer *= out_shape[d];
  int64_t inner = 1;
  for (int d = dim + 1; d < rank; ++d) inner *= out_shape[d];

  float* po = out.data();
  const int64_t out_row = total * inner;
  int64_t dim_offset = 0;
  for (const Tensor& t : parts) {
    const int64_t td = t.shape()[dim];
    const float* pt = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + o * out_row + dim_offset * inner,
                  pt + o * td * inner, sizeof(float) * td * inner);
    }
    dim_offset += td;
  }
  return out;
}

Tensor Slice(const Tensor& a, int dim, int64_t start, int64_t end) {
  dim = NormalizeDim(dim, a.ndim());
  GEO_CHECK(start >= 0 && start <= end && end <= a.shape()[dim])
      << "Slice [" << start << ", " << end << ") on dim of size "
      << a.shape()[dim];
  Shape out_shape = a.shape();
  out_shape[dim] = end - start;
  Tensor out = Tensor::Uninitialized(out_shape);

  int64_t outer = 1;
  for (int d = 0; d < dim; ++d) outer *= a.shape()[d];
  int64_t inner = 1;
  for (int d = dim + 1; d < a.ndim(); ++d) inner *= a.shape()[d];
  const int64_t in_dim = a.shape()[dim];
  const int64_t out_dim = end - start;

  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * out_dim * inner,
                pa + (o * in_dim + start) * inner,
                sizeof(float) * out_dim * inner);
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  GEO_CHECK(!parts.empty());
  Shape item_shape = parts[0].shape();
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), item_shape.begin(), item_shape.end());
  Tensor out = Tensor::Uninitialized(out_shape);
  float* po = out.data();
  const int64_t item_numel = parts[0].numel();
  for (size_t i = 0; i < parts.size(); ++i) {
    GEO_CHECK(SameShape(parts[i].shape(), item_shape))
        << "Stack requires equal shapes";
    std::memcpy(po + i * item_numel, parts[i].data(),
                sizeof(float) * item_numel);
  }
  return out;
}

Tensor Softmax(const Tensor& a, int dim) {
  return Exp(LogSoftmax(a, dim));
}

Tensor LogSoftmax(const Tensor& a, int dim) {
  dim = NormalizeDim(dim, a.ndim());
  const Shape& shape = a.shape();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int d = 0; d < dim; ++d) outer *= shape[d];
  for (int d = dim + 1; d < a.ndim(); ++d) inner *= shape[d];
  const int64_t c = shape[dim];
  Tensor out = Tensor::Uninitialized(shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      const float* src = pa + o * c * inner + i;
      float* dst = po + o * c * inner + i;
      float max_v = src[0];
      for (int64_t k = 1; k < c; ++k) {
        max_v = std::max(max_v, src[k * inner]);
      }
      double sum = 0.0;
      for (int64_t k = 0; k < c; ++k) {
        sum += std::exp(static_cast<double>(src[k * inner] - max_v));
      }
      const float log_z = max_v + static_cast<float>(std::log(sum));
      for (int64_t k = 0; k < c; ++k) {
        dst[k * inner] = src[k * inner] - log_z;
      }
    }
  }
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!SameShape(a.shape(), b.shape())) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
    if (std::isnan(pa[i]) != std::isnan(pb[i])) return false;
  }
  return true;
}

}  // namespace geotorch::tensor
